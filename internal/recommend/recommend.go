// Package recommend implements the media recommendation model of Section 4.
// A user's profile H_u — the set of objects they favourited — is treated as
// a "big object" whose FIG connects only features originating in the same
// individual object (avoiding the noisy cross-object edges the paper warns
// about), and whose cliques carry the month of their source object. A
// candidate object is scored by Eq. 10: the sum of clique potentials decayed
// by δ^(t_c − t_i), so recent interests dominate (FIG-T). With δ = 1 the
// decay vanishes and the model reduces to the plain FIG recommender.
package recommend

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/numeric"
	"figfusion/internal/topk"
)

// Config assembles a Recommender.
type Config struct {
	// Params are the MRF parameters; Params.Delta is the temporal decay.
	// Zero value means mrf.DefaultParams.
	Params mrf.Params
	// Temporal selects FIG-T (Eq. 10 decay); false gives the plain FIG
	// recommender regardless of Params.Delta.
	Temporal bool
	// BuildOpts configure per-object FIG construction within profiles.
	BuildOpts fig.Options
	// EnumOpts configure clique enumeration.
	EnumOpts fig.EnumerateOptions
}

// Recommender scores candidate objects against user profiles. Safe for
// concurrent use once constructed.
type Recommender struct {
	Model  *corr.Model
	Scorer *mrf.Scorer

	temporal  bool
	buildOpts fig.Options
	enumOpts  fig.EnumerateOptions
}

// New wires a recommender over a correlation model.
func New(m *corr.Model, cfg Config) (*Recommender, error) {
	params := cfg.Params
	if len(params.Lambda) == 0 {
		params = mrf.DefaultParams()
	}
	scorer, err := mrf.NewScorer(m, params)
	if err != nil {
		return nil, fmt.Errorf("recommend: %w", err)
	}
	return &Recommender{
		Model:     m,
		Scorer:    scorer,
		temporal:  cfg.Temporal,
		buildOpts: cfg.BuildOpts,
		enumOpts:  cfg.EnumOpts,
	}, nil
}

// Temporal reports whether the recommender applies Eq. 10 decay.
func (r *Recommender) Temporal() bool { return r.temporal }

// weightedClique is a deduplicated profile clique: Weight collapses every
// timestamped occurrence into Σ_occurrences δ^(now − t_i) (or the plain
// occurrence count when decay is off), which scores identically to summing
// ϕ_rec over the raw occurrences but evaluates each potential once.
type weightedClique struct {
	clique fig.Clique
	weight float64
}

// Profile is a preprocessed user history ready for scoring.
type Profile struct {
	cliques []weightedClique
}

// Len returns the number of distinct cliques in the profile.
func (p *Profile) Len() int { return len(p.cliques) }

// BuildProfile converts a favourite history into a scored profile as of
// month now. Decay is applied per Eq. 10 when the recommender is temporal.
func (r *Recommender) BuildProfile(history []*media.Object, now int) *Profile {
	raw := fig.ProfileCliques(history, r.Model, r.buildOpts, r.enumOpts)
	delta := r.Scorer.Params.Delta
	byKey := make(map[string]int)
	p := &Profile{}
	for _, c := range raw {
		w := 1.0
		if r.temporal && delta < 1 {
			age := 0
			if c.Month >= 0 && now > c.Month {
				age = now - c.Month
			}
			w = math.Pow(delta, float64(age))
		}
		if i, ok := byKey[c.Key()]; ok {
			p.cliques[i].weight += w
			continue
		}
		byKey[c.Key()] = len(p.cliques)
		p.cliques = append(p.cliques, weightedClique{clique: c, weight: w})
	}
	return p
}

// Score computes the profile's similarity to one candidate object.
func (r *Recommender) Score(p *Profile, o *media.Object) float64 {
	var sum float64
	for _, wc := range p.cliques {
		if numeric.IsZero(wc.weight) {
			continue
		}
		sum += wc.weight * r.Scorer.Potential(wc.clique, o)
	}
	return sum
}

// Recommend ranks the candidate objects for the given history as of month
// now and returns the top k (Definition 2).
func (r *Recommender) Recommend(history []*media.Object, candidates []media.ObjectID, k, now int) []topk.Item {
	p := r.BuildProfile(history, now)
	return r.RecommendProfile(p, candidates, k)
}

// RecommendProfile ranks candidates against a prebuilt profile, letting
// callers reuse the profile across parameter sweeps. Scoring fans out
// across CPUs; results are deterministic (ties break by object ID).
func (r *Recommender) RecommendProfile(p *Profile, candidates []media.ObjectID, k int) []topk.Item {
	corpus := r.Model.Stats.Corpus()
	workers := runtime.NumCPU()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers <= 1 {
		h := topk.NewHeap(k)
		for _, oid := range candidates {
			if s := r.Score(p, corpus.Object(oid)); s > 0 {
				h.Push(topk.Item{ID: oid, Score: s})
			}
		}
		return h.Results()
	}
	partial := make([][]topk.Item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := topk.NewHeap(k)
			for i := w; i < len(candidates); i += workers {
				oid := candidates[i]
				if s := r.Score(p, corpus.Object(oid)); s > 0 {
					h.Push(topk.Item{ID: oid, Score: s})
				}
			}
			partial[w] = h.Results()
		}(w)
	}
	wg.Wait()
	h := topk.NewHeap(k)
	for _, items := range partial {
		for _, it := range items {
			h.Push(it)
		}
	}
	return h.Results()
}
