package recommend

import (
	"math"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
)

func recData(t testing.TB) *dataset.RecDataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 400
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	rc := dataset.DefaultRecConfig()
	rc.NumUsers = 12
	rc.MinHistory = 3
	rd, err := dataset.GenerateRec(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

func newRec(t testing.TB, rd *dataset.RecDataset, cfg Config) *Recommender {
	t.Helper()
	r, err := New(rd.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecommendHitsFutureFavorites(t *testing.T) {
	rd := recData(t)
	r := newRec(t, rd, Config{Temporal: true})
	p := rd.Profiles[0]
	got := r.Recommend(rd.HistoryObjects(p), rd.Candidates, 10, rd.Now)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	// Recommendations should skew towards the user's persistent topics.
	interest := make(map[int]bool)
	for _, topic := range p.Interests {
		interest[topic] = true
	}
	onTopic := 0
	for _, it := range got {
		if interest[rd.Corpus.Object(it.ID).PrimaryTopic] {
			onTopic++
		}
	}
	if onTopic < len(got)/2 {
		t.Errorf("only %d/%d recommendations on persistent topics", onTopic, len(got))
	}
}

func TestTemporalDowweightsLapsedTransient(t *testing.T) {
	rd := recData(t)
	// Find a profile with a transient interest.
	var p *dataset.Profile
	for i := range rd.Profiles {
		if rd.Profiles[i].Transient >= 0 {
			p = &rd.Profiles[i]
			break
		}
	}
	if p == nil {
		t.Skip("no transient profile in sample")
	}
	params := mrf.DefaultParams()
	params.Delta = 0.3
	temporal := newRec(t, rd, Config{Temporal: true, Params: params})
	flat := newRec(t, rd, Config{Temporal: false, Params: params})
	hist := rd.HistoryObjects(*p)
	k := 20
	tGot := temporal.Recommend(hist, rd.Candidates, k, rd.Now)
	fGot := flat.Recommend(hist, rd.Candidates, k, rd.Now)
	tTrans, fTrans := 0, 0
	for _, it := range tGot {
		if rd.Corpus.Object(it.ID).PrimaryTopic == p.Transient {
			tTrans++
		}
	}
	for _, it := range fGot {
		if rd.Corpus.Object(it.ID).PrimaryTopic == p.Transient {
			fTrans++
		}
	}
	// The transient interest lapsed before the evaluation period; decay
	// must not recommend MORE of it than the flat model.
	if tTrans > fTrans {
		t.Errorf("temporal recommends more lapsed-transient items (%d) than flat (%d)", tTrans, fTrans)
	}
}

func TestBuildProfileWeights(t *testing.T) {
	rd := recData(t)
	params := mrf.DefaultParams()
	params.Delta = 0.5
	r := newRec(t, rd, Config{Temporal: true, Params: params})
	p := rd.Profiles[0]
	hist := rd.HistoryObjects(p)
	prof := r.BuildProfile(hist, rd.Now)
	if prof.Len() == 0 {
		t.Fatal("empty profile")
	}
	// Weights are in (0, len(history)] — each occurrence contributes at
	// most δ^0 = 1.
	for _, wc := range prof.cliques {
		if wc.weight <= 0 || wc.weight > float64(len(hist)) {
			t.Errorf("weight %v out of range", wc.weight)
		}
	}
	// Non-temporal weights are integer occurrence counts.
	rFlat := newRec(t, rd, Config{Temporal: false, Params: params})
	profFlat := rFlat.BuildProfile(hist, rd.Now)
	for _, wc := range profFlat.cliques {
		if wc.weight != math.Trunc(wc.weight) {
			t.Errorf("flat weight %v not integral", wc.weight)
		}
	}
}

func TestProfileCompressionScoresExactly(t *testing.T) {
	// Compressed scoring must equal naive per-occurrence scoring.
	rd := recData(t)
	params := mrf.DefaultParams()
	params.Delta = 0.6
	r := newRec(t, rd, Config{Temporal: true, Params: params})
	p := rd.Profiles[0]
	hist := rd.HistoryObjects(p)
	prof := r.BuildProfile(hist, rd.Now)
	cand := rd.Corpus.Object(rd.Candidates[0])
	got := r.Score(prof, cand)
	// Naive: sum ϕ_rec over raw per-object cliques.
	var want float64
	for _, o := range hist {
		tmp := r.BuildProfile([]*media.Object{o}, rd.Now)
		want += r.Score(tmp, cand)
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("compressed score %v != naive %v", got, want)
	}
}

func TestRecommendDeterministic(t *testing.T) {
	rd := recData(t)
	r := newRec(t, rd, Config{Temporal: true})
	p := rd.Profiles[0]
	hist := rd.HistoryObjects(p)
	a := r.Recommend(hist, rd.Candidates, 5, rd.Now)
	b := r.Recommend(hist, rd.Candidates, 5, rd.Now)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("rank %d differs", i)
		}
	}
}

func TestNewDefaultsAndValidation(t *testing.T) {
	rd := recData(t)
	r, err := New(rd.Model(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scorer.Params.Lambda) == 0 {
		t.Error("params not defaulted")
	}
	if r.Temporal() {
		t.Error("default should be non-temporal")
	}
	if _, err := New(rd.Model(), Config{Params: mrf.Params{Lambda: []float64{1}, Alpha: 2, Delta: 1}}); err == nil {
		t.Error("want error for invalid params")
	}
}

func TestEmptyHistory(t *testing.T) {
	rd := recData(t)
	r := newRec(t, rd, Config{Temporal: true})
	got := r.Recommend(nil, rd.Candidates, 5, rd.Now)
	if len(got) != 0 {
		t.Errorf("empty history should recommend nothing, got %v", got)
	}
}

func BenchmarkRecommend(b *testing.B) {
	rd := recData(b)
	r := newRec(b, rd, Config{Temporal: true})
	p := rd.Profiles[0]
	hist := rd.HistoryObjects(p)
	prof := r.BuildProfile(hist, rd.Now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecommendProfile(prof, rd.Candidates, 10)
	}
}
