package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"figfusion/internal/obs"
)

// TestAdmissionShed: with every slot and queue position held, acquire
// sheds immediately with errShed and counts it; releasing a slot readmits.
func TestAdmissionShed(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(1, 1, reg)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Occupy the single queue position.
	queued := make(chan error, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		queued <- a.acquire(context.Background())
	}()
	<-entered
	// Spin until the waiter holds the queue token: acquire is non-blocking
	// on the shed path, so once queued reads 1 the next acquire must shed.
	for a.queued.Load() != 1 {
		runtime.Gosched()
	}
	if err := a.acquire(context.Background()); !errors.Is(err, errShed) {
		t.Fatalf("acquire = %v, want errShed", err)
	}
	if got := reg.Counter("server.shed.requests").Value(); got != 1 {
		t.Errorf("server.shed.requests = %d, want 1", got)
	}
	// Release the executing request: the queued waiter gets the slot.
	a.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	a.release()

	// A waiter whose request dies while queued surfaces ctx.Err() and is
	// not counted as shed — the server did not reject it, the client left.
	reg2 := obs.NewRegistry()
	a2 := newAdmission(1, 1, reg2)
	if err := a2.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a2.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v", err)
	}
	if got := reg2.Counter("server.shed.requests").Value(); got != 0 {
		t.Errorf("cancelled waiter counted as shed (%d)", got)
	}
	a2.release()
}

// TestAdmissionShedHTTP drives the admit middleware to saturation: with
// one slot, no queue and a handler parked on a channel, every concurrent
// request sheds with the 503/unavailable envelope and Retry-After, and
// server.shed.requests counts each one.
func TestAdmissionShedHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	s := &Server{
		opts: Options{MaxInflight: 1, MaxQueue: 0},
		adm:  newAdmission(1, 0, reg),
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	h := s.admit(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	first := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest("GET", "/v1/search?id=1&k=3", nil))
		first <- rec.Code
	}()
	<-entered // the slot is now held
	const burst = 4
	var wg sync.WaitGroup
	codes := make([]int, burst)
	retryAfter := make([]string, burst)
	envelopes := make([]ErrorResponse, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h(rec, httptest.NewRequest("GET", "/v1/search?id=1&k=3", nil))
			codes[i] = rec.Code
			retryAfter[i] = rec.Header().Get("Retry-After")
			if err := json.Unmarshal(rec.Body.Bytes(), &envelopes[i]); err != nil {
				t.Errorf("burst %d: bad JSON %q: %v", i, rec.Body.String(), err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < burst; i++ {
		if codes[i] != http.StatusServiceUnavailable {
			t.Errorf("burst %d: status = %d, want 503", i, codes[i])
			continue
		}
		if envelopes[i].Error.Code != CodeUnavailable {
			t.Errorf("burst %d: code = %q, want %q", i, envelopes[i].Error.Code, CodeUnavailable)
		}
		if retryAfter[i] == "" {
			t.Errorf("burst %d: shed 503 missing Retry-After", i)
		}
	}
	if got := reg.Counter("server.shed.requests").Value(); got != burst {
		t.Errorf("server.shed.requests = %d, want %d", got, burst)
	}
	close(release)
	if code := <-first; code != http.StatusOK {
		t.Errorf("admitted request status = %d", code)
	}
}
