package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"time"

	"figfusion/internal/obs"
)

// instrument wraps one route handler with per-route observability:
// request and error counters plus a latency histogram, all named
// http.<route>.*. Deprecated aliases additionally answer a
// "Deprecation: true" header and count under http.deprecated.requests so
// legacy traffic is visible before the aliases are removed. With
// metrics disabled the wrapper reduces to the deprecation header alone.
func (s *Server) instrument(route string, h http.HandlerFunc, deprecated bool) http.Handler {
	if s.reg == nil {
		if !deprecated {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			h(w, r)
		})
	}
	requests := s.reg.Counter("http." + route + ".requests")
	errs := s.reg.Counter("http." + route + ".errors")
	latency := s.reg.Histogram("http." + route + ".latency")
	depRequests := s.reg.Counter("http.deprecated.requests")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if deprecated {
			w.Header().Set("Deprecation", "true")
			depRequests.Inc()
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		latency.Observe(time.Since(start))
		requests.Inc()
		if sw.status >= 400 {
			errs.Inc()
		}
	})
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// envelopeHandler rewrites the mux's own plain-text 404/405 responses
// (unmatched path, wrong method) into the JSON error envelope, so every
// error leaving the server — handler-written or mux-written — has the
// same machine-readable shape. Handler responses pass through untouched:
// they set an application/json content type before writing the header.
type envelopeHandler struct {
	next http.Handler
}

func (e envelopeHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	e.next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
}

type envelopeWriter struct {
	http.ResponseWriter
	rewrote     bool
	wroteHeader bool
}

func (w *envelopeWriter) WriteHeader(status int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		w.rewrote = true
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(status)
		code := CodeNotFound
		msg := "no such route"
		if status == http.StatusMethodNotAllowed {
			code = CodeMethodNotAllowed
			msg = "method not allowed for this route"
		}
		_ = json.NewEncoder(w.ResponseWriter).Encode(ErrorResponse{Error: ErrorBody{Code: code, Message: msg}})
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.rewrote {
		// Swallow the mux's plain-text body; the envelope already went out.
		return len(b), nil
	}
	if !w.wroteHeader {
		w.wroteHeader = true
	}
	return w.ResponseWriter.Write(b)
}

// MetricsResponse is the /v1/metrics payload: the full registry snapshot
// plus the slow-query log.
type MetricsResponse struct {
	Metrics       obs.Snapshot    `json:"metrics"`
	SlowQueries   []obs.SlowQuery `json:"slowQueries"`
	SlowTotal     uint64          `json:"slowTotal"`
	SlowThreshold string          `json:"slowThreshold"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "metrics are disabled (-metrics=false)")
		return
	}
	slowQueries, slowTotal := s.slow.Snapshot()
	if slowQueries == nil {
		slowQueries = []obs.SlowQuery{}
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		Metrics:       s.reg.Snapshot(),
		SlowQueries:   slowQueries,
		SlowTotal:     slowTotal,
		SlowThreshold: s.slow.Threshold().String(),
	})
}

// handleDebugVars is the /debug/vars-style exposition: the same registry
// flattened into one JSON object of name → value (histograms appear as
// their snapshot objects), plus goroutine and heap vitals — convenient
// for expvar-shaped scrapers and `curl | jq` spelunking.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	vars := make(map[string]interface{})
	if s.reg != nil {
		snap := s.reg.Snapshot()
		for n, v := range snap.Counters {
			vars[n] = v
		}
		for n, v := range snap.Gauges {
			vars[n] = v
		}
		for n, v := range snap.Histograms {
			vars[n] = v
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	vars["runtime.goroutines"] = runtime.NumGoroutine()
	vars["runtime.heapAllocBytes"] = ms.HeapAlloc
	vars["runtime.totalAllocBytes"] = ms.TotalAlloc
	vars["runtime.numGC"] = ms.NumGC
	writeJSON(w, http.StatusOK, vars)
}
