package server

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"

	"figfusion/internal/obs"
)

// errShed marks a request admission control rejected outright: the
// inflight slots and the bounded queue were both full.
var errShed = errors.New("server: request shed by admission control")

// admission bounds the search-family routes: at most maxInflight requests
// execute, at most maxQueue more wait for a slot, and the rest shed
// immediately with 503/unavailable + Retry-After. Shedding converts
// overload into fast, explicit rejections instead of unbounded queueing —
// the p99 of an admitted request stays bounded by queue depth × service
// time no matter how far the offered load exceeds capacity.
type admission struct {
	slots    chan struct{} // semaphore: one token per executing request
	waiters  chan struct{} // semaphore: one token per queued request
	inflight atomic.Int64
	queued   atomic.Int64
	shed     *obs.Counter // nil without a registry
}

func newAdmission(maxInflight, maxQueue int, reg *obs.Registry) *admission {
	a := &admission{
		slots:   make(chan struct{}, maxInflight),
		waiters: make(chan struct{}, maxQueue),
	}
	if reg != nil {
		a.shed = reg.Counter("server.shed.requests")
		reg.Func("server.admission.inflight", a.inflight.Load)
		reg.Func("server.admission.queued", a.queued.Load)
	}
	return a
}

// acquire claims an execution slot, queueing within the bound when all
// slots are busy. It returns errShed when the queue is also full, or
// ctx.Err() when the caller's request died while queued.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	select {
	case a.waiters <- struct{}{}:
	default:
		if a.shed != nil {
			a.shed.Inc()
		}
		return errShed
	}
	a.queued.Add(1)
	defer func() {
		<-a.waiters
		a.queued.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (a *admission) release() {
	<-a.slots
	a.inflight.Add(-1)
}

// admit gates h behind admission control when it is configured
// (Options.MaxInflight > 0). Shed requests answer the 503/unavailable
// envelope; writeError stamps the contract's Retry-After header on every
// 503.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.adm == nil {
			h(w, r)
			return
		}
		if err := s.adm.acquire(r.Context()); err != nil {
			if errors.Is(err, errShed) {
				writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
					"overloaded: %d requests executing and %d queued; retry with backoff",
					s.opts.MaxInflight, s.opts.MaxQueue)
			} else {
				// The client went away while queued; the envelope is a
				// formality nobody reads, but the slot accounting matters.
				writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
					"request abandoned while queued for admission: %v", err)
			}
			return
		}
		defer s.adm.release()
		h(w, r)
	}
}
