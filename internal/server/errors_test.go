package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/shard"
)

// testShardedServer builds a server over a 2-shard router on the same
// corpus config as testServer.
func testShardedServer(t testing.TB, shards int) (*Server, *dataset.Dataset) {
	t.Helper()
	return testShardedServerOpts(t, shards, DefaultOptions())
}

// testShardedServerOpts is the same fixture with a custom Options (used
// by the query-timeout tests).
func testShardedServerOpts(t testing.TB, shards int, opts Options) (*Server, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 200
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.NewRouter(d.Model(), shard.Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return NewSharded(r, opts), d
}

// TestMethodNotAllowed pins one 405 per route: the method-qualified mux
// patterns must reject the wrong verb rather than fall through to a
// handler that would misparse the request.
func TestMethodNotAllowed(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct{ method, target string }{
		{"POST", "/v1/healthz"},
		{"PUT", "/v1/search?id=1"},
		{"POST", "/v1/objects/1"},
		{"GET", "/v1/objects"},
		{"DELETE", "/v1/objects"},
		{"GET", "/v1/recommend"},
		{"PUT", "/v1/search/batch"},
		// The retired unversioned aliases keep their method qualifiers:
		// the wrong verb is still 405, not 410.
		{"POST", "/healthz"},
		{"GET", "/objects"},
		{"GET", "/recommend"},
	}
	for _, tc := range cases {
		if code := doJSON(t, s.Handler(), tc.method, tc.target, nil, nil); code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want %d", tc.method, tc.target, code, http.StatusMethodNotAllowed)
		}
	}
}

// TestInsertMalformed walks the /v1/objects error surface: syntactically
// broken JSON, type mismatches, and feature-free objects all answer 400
// with the invalid_argument envelope.
func TestInsertMalformed(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"truncated", `{"tags":["a"`},
		{"not JSON", `tags=a`},
		{"wrong type", `{"tags":"notanarray"}`},
		{"month type", `{"tags":["topic00tag00"],"month":"five"}`},
		{"no features", `{}`},
		{"empty names", `{"tags":["",""],"users":[""]}`},
	}
	for _, tc := range cases {
		var resp ErrorResponse
		code := doJSON(t, s.Handler(), "POST", "/v1/objects", []byte(tc.body), &resp)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
		if resp.Error.Code != CodeInvalidArgument {
			t.Errorf("%s: error code = %q, want %q", tc.name, resp.Error.Code, CodeInvalidArgument)
		}
		if resp.Error.Message == "" {
			t.Errorf("%s: error message missing", tc.name)
		}
	}
}

// TestSearchMissingParams pins the bare-request errors on the GET routes.
func TestSearchMissingParams(t *testing.T) {
	s, _ := testServer(t)
	var resp ErrorResponse
	if code := doJSON(t, s.Handler(), "GET", "/v1/search", nil, &resp); code != http.StatusBadRequest {
		t.Errorf("/v1/search: status = %d, want 400", code)
	}
	if resp.Error.Code != CodeInvalidArgument || resp.Error.Message == "" {
		t.Errorf("/v1/search: envelope = %+v", resp.Error)
	}
	// text= that normalizes to nothing behaves like unknown text.
	if code := doJSON(t, s.Handler(), "GET", "/v1/search?text=%20%20", nil, nil); code != http.StatusNotFound {
		t.Errorf("blank text: status = %d, want 404", code)
	}
}

// TestShardedHealthz pins the /healthz shape under a sharded backend:
// a shards array whose object counts partition the corpus, plus the
// model generation.
func TestShardedHealthz(t *testing.T) {
	s, d := testShardedServer(t, 2)
	var resp struct {
		Status     string            `json:"status"`
		Objects    int               `json:"objects"`
		Cliques    int               `json:"cliques"`
		Generation uint64            `json:"generation"`
		Shards     []shard.ShardInfo `json:"shards"`
	}
	if code := doJSON(t, s.Handler(), "GET", "/v1/healthz", nil, &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Status != "ok" {
		t.Errorf("status field = %q", resp.Status)
	}
	if resp.Objects != d.Corpus.Len() {
		t.Errorf("objects = %d, want %d", resp.Objects, d.Corpus.Len())
	}
	if len(resp.Shards) != 2 {
		t.Fatalf("shards = %d entries, want 2", len(resp.Shards))
	}
	sum, cliques := 0, 0
	for i, si := range resp.Shards {
		if si.Shard != i {
			t.Errorf("shard[%d].Shard = %d", i, si.Shard)
		}
		sum += si.Objects
		cliques += si.Cliques
	}
	if sum != d.Corpus.Len() {
		t.Errorf("shard objects sum to %d, want %d", sum, d.Corpus.Len())
	}
	if cliques != resp.Cliques {
		t.Errorf("cliques = %d, shard sum = %d", resp.Cliques, cliques)
	}
}

// TestShardedEndToEnd drives the sharded server through the same
// search→insert→search flow the single-engine test uses.
func TestShardedEndToEnd(t *testing.T) {
	s, d := testShardedServer(t, 2)
	var sr SearchResponse
	if code := doJSON(t, s.Handler(), "GET", "/v1/search?id=5&k=4", nil, &sr); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results")
	}
	body, _ := json.Marshal(InsertRequest{Tags: []string{"topic00tag00", "topic00tag01"}, Month: 2})
	var ir InsertResponse
	if code := doJSON(t, s.Handler(), "POST", "/v1/objects", body, &ir); code != http.StatusCreated {
		t.Fatalf("insert status = %d", code)
	}
	if int(ir.ID) != d.Corpus.Len()-1 {
		t.Errorf("ID = %d, want %d", ir.ID, d.Corpus.Len()-1)
	}
	var sr2 SearchResponse
	target := fmt.Sprintf("/v1/search?text=topic00tag00+topic00tag01&k=%d", d.Corpus.Len())
	if code := doJSON(t, s.Handler(), "GET", target, nil, &sr2); code != http.StatusOK {
		t.Fatalf("post-insert search status = %d", code)
	}
	found := false
	for _, it := range sr2.Results {
		if it.ID == ir.ID {
			found = true
		}
	}
	if !found {
		t.Error("inserted object not searchable through the sharded backend")
	}
}
