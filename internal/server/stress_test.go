package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"figfusion/internal/api"
)

// TestStressMixedWorkload drives the full HTTP surface from many
// goroutines at once — searches, object reads, health checks and
// recommendations under the read lock, interleaved with ingestion under
// the write lock. Run under the race detector (`make race`, CI) this is
// the server's concurrency gate: the RWMutex discipline around
// Engine.Insert's global-statistics mutation must hold for every route.
func TestStressMixedWorkload(t *testing.T) {
	s, d := testServer(t)
	h := s.Handler()
	const (
		readers = 8
		rounds  = 12
	)
	recBody, err := json.Marshal(RecommendRequest{History: []int64{0, 1, 2}, K: 5, Now: 3})
	if err != nil {
		t.Fatal(err)
	}
	hit := func(method, target string, body []byte) int {
		var req *http.Request
		if body != nil {
			req = httptest.NewRequest(method, target, bytes.NewReader(body))
		} else {
			req = httptest.NewRequest(method, target, nil)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	// Snapshot the corpus size before traffic starts: reading it through
	// d.Corpus mid-run would bypass the server's lock. Inserts only grow
	// the corpus, so ids below the snapshot stay valid throughout.
	batchBody, err := json.Marshal(api.BatchSearchRequest{Queries: []api.SearchRequest{
		{ID: int64p(0), K: 4},
		{Text: "topic01tag01", K: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	initialLen := d.Corpus.Len()
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := (w*rounds + r) % initialLen
				var code int
				switch r % 6 {
				case 0:
					code = hit("GET", fmt.Sprintf("/v1/search?id=%d&k=5", id), nil)
				case 1:
					code = hit("GET", "/v1/healthz", nil)
				case 2:
					code = hit("GET", fmt.Sprintf("/v1/objects/%d", id), nil)
				case 3:
					// Identical across workers: exercises single-flight
					// coalescing and the generation-stamped cache while the
					// writer below invalidates it mid-run.
					code = hit("GET", "/v1/search?text=topic01tag01&k=3", nil)
				case 4:
					code = hit("POST", "/v1/recommend", recBody)
				case 5:
					code = hit("POST", "/v1/search/batch", batchBody)
				}
				// Concurrent inserts grow the corpus, never shrink it, so
				// ids probed here stay valid and every route must succeed.
				if code != http.StatusOK {
					t.Errorf("worker %d round %d: status %d", w, r, code)
					return
				}
			}
		}(w)
	}
	// One writer ingests new objects while the readers run, forcing
	// write-lock handoffs and cache invalidations mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			body, err := json.Marshal(InsertRequest{
				Tags:  []string{"topic01tag01", fmt.Sprintf("stress%02d", i)},
				Month: i % 4,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if code := hit("POST", "/v1/objects", body); code != http.StatusCreated {
				t.Errorf("insert %d: status %d", i, code)
				return
			}
		}
	}()
	wg.Wait()
}
