package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestStressMixedWorkload drives the full HTTP surface from many
// goroutines at once — searches, object reads, health checks and
// recommendations under the read lock, interleaved with ingestion under
// the write lock. Run under the race detector (`make race`, CI) this is
// the server's concurrency gate: the RWMutex discipline around
// Engine.Insert's global-statistics mutation must hold for every route.
func TestStressMixedWorkload(t *testing.T) {
	s, d := testServer(t)
	h := s.Handler()
	const (
		readers = 8
		rounds  = 12
	)
	recBody, err := json.Marshal(RecommendRequest{History: []int64{0, 1, 2}, K: 5, Now: 3})
	if err != nil {
		t.Fatal(err)
	}
	hit := func(method, target string, body []byte) int {
		var req *http.Request
		if body != nil {
			req = httptest.NewRequest(method, target, bytes.NewReader(body))
		} else {
			req = httptest.NewRequest(method, target, nil)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	// Snapshot the corpus size before traffic starts: reading it through
	// d.Corpus mid-run would bypass the server's lock. Inserts only grow
	// the corpus, so ids below the snapshot stay valid throughout.
	initialLen := d.Corpus.Len()
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := (w*rounds + r) % initialLen
				var code int
				switch r % 5 {
				case 0:
					code = hit("GET", fmt.Sprintf("/search?id=%d&k=5", id), nil)
				case 1:
					code = hit("GET", "/healthz", nil)
				case 2:
					code = hit("GET", fmt.Sprintf("/object?id=%d", id), nil)
				case 3:
					code = hit("GET", "/search?text=topic01tag01&k=3", nil)
				case 4:
					code = hit("POST", "/recommend", recBody)
				}
				// Concurrent inserts grow the corpus, never shrink it, so
				// ids probed here stay valid and every route must succeed.
				if code != http.StatusOK {
					t.Errorf("worker %d round %d: status %d", w, r, code)
					return
				}
			}
		}(w)
	}
	// One writer ingests new objects while the readers run, forcing
	// write-lock handoffs and cache invalidations mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			body, err := json.Marshal(InsertRequest{
				Tags:  []string{"topic01tag01", fmt.Sprintf("stress%02d", i)},
				Month: i % 4,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if code := hit("POST", "/objects", body); code != http.StatusCreated {
				t.Errorf("insert %d: status %d", i, code)
				return
			}
		}
	}()
	wg.Wait()
}
