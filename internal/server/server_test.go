package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

func testServer(t testing.TB) (*Server, *dataset.Dataset) {
	t.Helper()
	return testServerOpts(t, DefaultOptions())
}

// testServerOpts is the single-engine fixture with a custom Options (used
// by the legacy-route and admission tests).
func testServerOpts(t testing.TB, opts Options) (*Server, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 200
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := retrieval.NewEngine(d.Model(), retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(engine, opts), d
}

func doJSON(t *testing.T, h http.Handler, method, target string, body []byte, out interface{}) int {
	t.Helper()
	var req *http.Request
	if body != nil {
		req = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 500 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestHealthz(t *testing.T) {
	s, d := testServer(t)
	var resp map[string]interface{}
	code := doJSON(t, s.Handler(), "GET", "/v1/healthz", nil, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp["status"] != "ok" {
		t.Errorf("status field = %v", resp["status"])
	}
	if int(resp["objects"].(float64)) != d.Corpus.Len() {
		t.Errorf("objects = %v, want %d", resp["objects"], d.Corpus.Len())
	}
	if _, ok := resp["cliques"]; !ok {
		t.Error("cliques stat missing")
	}
}

func TestSearchByID(t *testing.T) {
	s, d := testServer(t)
	var resp SearchResponse
	code := doJSON(t, s.Handler(), "GET", "/v1/search?id=5&k=4", nil, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 4 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	for _, it := range resp.Results {
		if it.ID == 5 {
			t.Error("query object returned")
		}
		if it.Score <= 0 {
			t.Errorf("score = %v", it.Score)
		}
		if int(it.ID) >= d.Corpus.Len() {
			t.Errorf("ID out of range: %d", it.ID)
		}
	}
}

func TestSearchByText(t *testing.T) {
	s, _ := testServer(t)
	var resp SearchResponse
	code := doJSON(t, s.Handler(), "GET", "/v1/search?text=topic00tag00+topic00tag01&k=3", nil, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results")
	}
	// Unknown text → 404.
	if code := doJSON(t, s.Handler(), "GET", "/v1/search?text=zebra+quokka", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown text status = %d", code)
	}
}

func TestSearchValidation(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		target string
		want   int
	}{
		{"/v1/search", http.StatusBadRequest},
		{"/v1/search?id=99999", http.StatusBadRequest},
		{"/v1/search?id=abc", http.StatusBadRequest},
		{"/v1/search?id=1&k=0", http.StatusBadRequest},
		{"/v1/search?id=1&k=9999", http.StatusBadRequest},
		{"/v1/search?id=-3", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := doJSON(t, s.Handler(), "GET", tc.target, nil, nil); code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.target, code, tc.want)
		}
	}
}

func TestObjectEndpoint(t *testing.T) {
	s, d := testServer(t)
	var resp ObjectResponse
	code := doJSON(t, s.Handler(), "GET", "/v1/objects/7", nil, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.ID != 7 {
		t.Errorf("ID = %d", resp.ID)
	}
	if len(resp.Tags) == 0 || len(resp.Users) == 0 || len(resp.VisualWords) == 0 {
		t.Errorf("missing modalities: %+v", resp)
	}
	if resp.Month != d.Corpus.Object(7).Month {
		t.Errorf("month = %d", resp.Month)
	}
	if code := doJSON(t, s.Handler(), "GET", "/v1/objects/zzz", nil, nil); code != http.StatusNotFound {
		t.Errorf("bad id status = %d", code)
	}
}

func TestInsertEndpoint(t *testing.T) {
	s, d := testServer(t)
	before := d.Corpus.Len()
	body, _ := json.Marshal(InsertRequest{
		Tags:  []string{"topic00tag00", "topic00tag01"},
		Users: []string{"u_t00_00"},
		Month: 5,
	})
	var resp InsertResponse
	code := doJSON(t, s.Handler(), "POST", "/v1/objects", body, &resp)
	if code != http.StatusCreated {
		t.Fatalf("status = %d", code)
	}
	if int(resp.ID) != before {
		t.Errorf("ID = %d, want %d", resp.ID, before)
	}
	// The inserted object is immediately searchable.
	var sr SearchResponse
	if code := doJSON(t, s.Handler(), "GET",
		fmt.Sprintf("/v1/search?text=topic00tag00+topic00tag01&k=%d", d.Corpus.Len()), nil, &sr); code != http.StatusOK {
		t.Fatalf("post-insert search status = %d", code)
	}
	found := false
	for _, it := range sr.Results {
		if it.ID == resp.ID {
			found = true
		}
	}
	if !found {
		t.Error("inserted object not searchable")
	}
	// Validation.
	if code := doJSON(t, s.Handler(), "POST", "/v1/objects", []byte("{"), nil); code != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", code)
	}
	empty, _ := json.Marshal(InsertRequest{})
	if code := doJSON(t, s.Handler(), "POST", "/v1/objects", empty, nil); code != http.StatusBadRequest {
		t.Errorf("empty insert status = %d", code)
	}
}

func TestConcurrentSearchAndInsert(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w == 0 && i%3 == 0 {
					body, _ := json.Marshal(InsertRequest{Tags: []string{"topic01tag01"}})
					req := httptest.NewRequest("POST", "/v1/objects", bytes.NewReader(body))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					continue
				}
				req := httptest.NewRequest("GET", "/v1/search?id=1&k=3", nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("search status = %d", rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRecommendEndpoint(t *testing.T) {
	s, d := testServer(t)
	// History: a handful of month-0 objects of one topic.
	var hist []int64
	for _, o := range d.Corpus.Objects {
		if o.PrimaryTopic == 1 && o.Month < 3 && len(hist) < 5 {
			hist = append(hist, int64(o.ID))
		}
	}
	if len(hist) < 2 {
		t.Skip("not enough topic-1 history in sample")
	}
	body, _ := json.Marshal(RecommendRequest{History: hist, K: 5, Now: 3})
	var resp SearchResponse
	code := doJSON(t, s.Handler(), "POST", "/v1/recommend", body, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no recommendations")
	}
	histSet := make(map[int64]bool)
	for _, h := range hist {
		histSet[h] = true
	}
	onTopic := 0
	for _, it := range resp.Results {
		if histSet[it.ID] {
			t.Errorf("history object %d recommended back", it.ID)
		}
		if d.Corpus.Object(media.ObjectID(it.ID)).PrimaryTopic == 1 {
			onTopic++
		}
	}
	if onTopic < len(resp.Results)/2 {
		t.Errorf("only %d/%d recommendations on the history topic", onTopic, len(resp.Results))
	}
	// Validation.
	if code := doJSON(t, s.Handler(), "POST", "/v1/recommend", []byte("{"), nil); code != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", code)
	}
	empty, _ := json.Marshal(RecommendRequest{K: 5})
	if code := doJSON(t, s.Handler(), "POST", "/v1/recommend", empty, nil); code != http.StatusBadRequest {
		t.Errorf("empty history status = %d", code)
	}
	bad, _ := json.Marshal(RecommendRequest{History: []int64{999999}, K: 5})
	if code := doJSON(t, s.Handler(), "POST", "/v1/recommend", bad, nil); code != http.StatusBadRequest {
		t.Errorf("unknown history status = %d", code)
	}
}

// int64p returns a pointer to v, for optional wire fields.
func int64p(v int64) *int64 { return &v }
