package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"figfusion/internal/cluster"
	"figfusion/internal/dataset"
	"figfusion/internal/topk"
)

// errDown is the transport failure every downBackend call returns.
var errDown = errors.New("node down")

// downBackend fails every call — a node that is off the network. It turns
// a one-node cluster server into the degraded-cluster fixture.
type downBackend struct{}

func (downBackend) Search(ctx context.Context, req *cluster.SearchRequest) ([]topk.Item, error) {
	return nil, errDown
}
func (downBackend) Insert(ctx context.Context, req *cluster.InsertRequest) (int64, error) {
	return 0, errDown
}
func (downBackend) Objects(ctx context.Context) (int, error) { return 0, errDown }
func (downBackend) Close() error                             { return nil }

// TestErrorEnvelopeShapes pins the failure envelopes from one table: the
// degraded-cluster 503, the shed 503, the query-timeout 504 and the
// stamped-insert 409 all answer the {"error":{code,message}} shape, and
// exactly the 503s carry Retry-After — the client contract's signal that
// the request is safe to retry after backing off.
func TestErrorEnvelopeShapes(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 200
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := cluster.New(cluster.Config{
		Mirror: d.Model(),
		Nodes:  []cluster.NodeConfig{{Name: "n0", Backend: downBackend{}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	timeoutOpts := DefaultOptions()
	timeoutOpts.QueryTimeout = time.Nanosecond
	cases := []struct {
		name           string
		handler        http.Handler
		method, target string
		body           string
		status         int
		code           string
		wantRetryAfter bool
	}{
		{
			name:    "degraded cluster",
			handler: NewCluster(degraded, DefaultOptions()).Handler(),
			method:  "GET", target: "/v1/search?id=5&k=4",
			status: http.StatusServiceUnavailable, code: CodeUnavailable,
			wantRetryAfter: true,
		},
		{
			name:    "query timeout",
			handler: func() http.Handler { s, _ := testShardedServerOpts(t, 2, timeoutOpts); return s.Handler() }(),
			method:  "GET", target: "/v1/search?id=5&k=4",
			status: http.StatusGatewayTimeout, code: CodeDeadlineExceeded,
			wantRetryAfter: false,
		},
		{
			name:    "stamped insert conflict",
			handler: func() http.Handler { s, _ := testServer(t); return s.Handler() }(),
			method:  "POST", target: "/v1/objects",
			body:   `{"tags":["topic00tag00"],"month":1,"expect":7}`,
			status: http.StatusConflict, code: CodeConflict,
			wantRetryAfter: false,
		},
	}
	for _, tc := range cases {
		var req *http.Request
		if tc.body != "" {
			req = httptest.NewRequest(tc.method, tc.target, bytes.NewReader([]byte(tc.body)))
		} else {
			req = httptest.NewRequest(tc.method, tc.target, nil)
		}
		rec := httptest.NewRecorder()
		tc.handler.ServeHTTP(rec, req)
		if rec.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, rec.Code, tc.status, rec.Body.String())
			continue
		}
		var resp ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Errorf("%s: bad JSON %q: %v", tc.name, rec.Body.String(), err)
			continue
		}
		if resp.Error.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, resp.Error.Code, tc.code)
		}
		if resp.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
		if got := rec.Header().Get("Retry-After"); (got != "") != tc.wantRetryAfter {
			t.Errorf("%s: Retry-After = %q, want present=%v", tc.name, got, tc.wantRetryAfter)
		}
	}
}
