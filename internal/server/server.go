// Package server exposes the retrieval engine over a versioned HTTP/JSON
// API — the deployment surface an open-source release of the paper's
// system ships: similarity search by object ID or free text, object
// inspection, incremental ingestion, recommendation, and the
// observability surface (metrics snapshot, slow-query log, optional
// pprof).
//
// Versioned routes (v1):
//
//	GET  /v1/healthz                      liveness + corpus stats
//	GET  /v1/search?id=42&k=10            top-k similar to a corpus object
//	GET  /v1/search?text=sunset+beach&k=5 top-k for a free-text query
//	POST /v1/search                       wire search (api.SearchRequest)
//	POST /v1/search/batch                 up to api.MaxBatchQueries wire searches in one request
//	GET  /v1/objects/{id}                 one object's features and labels
//	POST /v1/objects                      insert {"tags":[],"users":[],"visualWords":[],"month":0}
//	POST /v1/recommend                    {"history":[ids],"k":10,"now":3} → FIG-T recommendations
//	GET  /v1/metrics                      metrics registry snapshot + slow-query log
//	GET  /debug/vars                      flat expvar-style view of the same registry
//	GET  /debug/pprof/*                   net/http/pprof (only with Options.Pprof)
//
// The unversioned pre-v1 routes (/healthz, /search, /object?id=,
// /objects, /recommend) are retired: by default they answer 410/gone in
// the error envelope, naming the /v1 replacement. Deployments still
// draining legacy clients can re-enable them as deprecated aliases
// (same handlers, same payloads, plus a "Deprecation: true" response
// header) with Options.LegacyRoutes.
//
// The wire contract — request/response structs, the error envelope with
// its machine-readable codes (invalid_argument, not_found,
// method_not_allowed, conflict, gone, unavailable, deadline_exceeded),
// and header conventions — lives in internal/api; this package re-exports
// the names it historically declared as aliases. Search requests run
// under a per-request budget (Options.QueryTimeout): on expiry the engine
// is cancelled between scoring stripes and the handler answers
// 504/deadline_exceeded.
//
// Three mechanisms keep the serving path standing under live traffic (see
// "Live-traffic serving" in DESIGN.md):
//
//   - Admission control (Options.MaxInflight/MaxQueue): the search-family
//     routes run at most MaxInflight strong, with at most MaxQueue more
//     waiting; beyond that the server sheds with 503/unavailable plus
//     Retry-After, counted as server.shed.requests.
//   - Coalescing (Options.Coalesce): identical in-flight searches share
//     one engine execution, and completed results are cached under a
//     generation stamp — any insert bumps the corpus-global model
//     generation, so the cache invalidates automatically (the floatcache
//     idiom).
//   - Batching (POST /v1/search/batch): one request carries many queries;
//     the single-engine path amortizes Engine.Prepare across them. Every
//     answer is byte-identical to the sequential uncached route.
//
// The server fronts either a single retrieval.Engine (New) or a sharded
// shard.Router (NewSharded). In single-engine mode searches and
// recommendations run concurrently under the server's read lock and
// ingestion takes its write lock (Engine.Insert mutates global statistics
// and caches). In sharded mode the router is the concurrency authority —
// scatter-gather searches and routed inserts carry their own locking, so
// an insert blocks searches only for the global-statistics phase and the
// one shard it lands on — and the server pins corpus reads (query parsing,
// result formatting) with the router's View.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"figfusion/internal/api"
	"figfusion/internal/cluster"
	"figfusion/internal/corr"
	"figfusion/internal/media"
	"figfusion/internal/obs"
	"figfusion/internal/recommend"
	"figfusion/internal/retrieval"
	"figfusion/internal/shard"
	"figfusion/internal/topk"
)

// Server wires an engine, a shard router, or a cluster front-end into an
// http.Handler. Construct with New, NewSharded, or NewCluster.
type Server struct {
	mu      sync.RWMutex // single-engine mode: searches share, inserts exclude
	engine  *retrieval.Engine
	router  *shard.Router
	cluster *cluster.Cluster
	model   *corr.Model
	rec     *recommend.Recommender
	opts    Options
	reg     *obs.Registry // nil when Options.Metrics is off
	slow    *obs.SlowLog  // nil when Options.Metrics is off
	adm     *admission    // nil when Options.MaxInflight is 0
	coal    *coalescer    // nil when Options.Coalesce is off
}

// New returns a server over a single engine. The recommendation endpoint
// uses a temporal (FIG-T) recommender over the same model. When
// opts.Metrics is set (the DefaultOptions state) the server builds an
// observability registry and attaches it to the engine.
func New(engine *retrieval.Engine, opts Options) *Server {
	// recommend.New only fails on invalid parameters; defaults are valid.
	rec, _ := recommend.New(engine.Model, recommend.Config{Temporal: true})
	s := &Server{engine: engine, model: engine.Model, rec: rec, opts: opts}
	if opts.Metrics {
		s.reg = obs.NewRegistry()
		s.slow = obs.NewSlowLog(64, opts.SlowQuery)
		engine.SetMetrics(s.reg, s.slow)
	}
	return s.initServing()
}

// NewSharded returns a server over a scatter-gather shard router; /healthz
// additionally reports per-shard object, clique and posting counts.
func NewSharded(router *shard.Router, opts Options) *Server {
	rec, _ := recommend.New(router.Model(), recommend.Config{Temporal: true})
	s := &Server{router: router, model: router.Model(), rec: rec, opts: opts}
	if opts.Metrics {
		s.reg = obs.NewRegistry()
		s.slow = obs.NewSlowLog(64, opts.SlowQuery)
		router.SetMetrics(s.reg, s.slow)
	}
	return s.initServing()
}

// NewCluster returns a server over a multi-node cluster front-end: the
// router role of a multi-node deployment. Searches scatter-gather across
// the cluster's nodes (degrading to flagged partial results when nodes are
// down), inserts replicate to every node with generation stamps, and the
// recommendation endpoint runs against the router's own mirror model.
func NewCluster(c *cluster.Cluster, opts Options) *Server {
	rec, _ := recommend.New(c.Model(), recommend.Config{Temporal: true})
	s := &Server{cluster: c, model: c.Model(), rec: rec, opts: opts}
	if opts.Metrics {
		s.reg = obs.NewRegistry()
		s.slow = obs.NewSlowLog(64, opts.SlowQuery)
		c.SetMetrics(s.reg)
	}
	return s.initServing()
}

// initServing attaches the live-traffic machinery — admission control and
// the coalescing result cache — per Options. Both are generic over the
// backend: admission gates the handler, coalescing keys on the
// corpus-global model generation shared by engine, router and cluster
// mirror alike.
func (s *Server) initServing() *Server {
	if s.opts.MaxInflight > 0 {
		s.adm = newAdmission(s.opts.MaxInflight, s.opts.MaxQueue, s.reg)
	}
	if s.opts.Coalesce {
		s.coal = newCoalescer(s.opts.coalesceCap(), s.model.Generation, s.reg)
	}
	return s
}

// Registry exposes the server's metrics registry (nil when metrics are
// disabled) — tests and embedding binaries read it directly.
func (s *Server) Registry() *obs.Registry { return s.reg }

// view runs fn while corpus-global state (the corpus object slice, interned
// features, statistics) is pinned against inserts: under the server's read
// lock in single-engine mode, under the router's statistics read lock in
// sharded mode. fn must not call search or insert (recursive read-locking
// deadlocks once a writer queues); handlers that need both take the lock
// in separate non-overlapping stages instead.
func (s *Server) view(fn func()) {
	switch {
	case s.cluster != nil:
		s.cluster.View(fn)
	case s.router != nil:
		s.router.View(fn)
	default:
		s.mu.RLock()
		defer s.mu.RUnlock()
		fn()
	}
}

// search dispatches one top-k search to the backend under its read
// locking, honouring ctx between scoring stripes. The bool is the
// degraded-mode flag: true when a cluster answered from a subset of its
// nodes (single-engine and sharded answers are never partial).
func (s *Server) search(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) ([]topk.Item, bool, error) {
	switch {
	case s.cluster != nil:
		res, err := s.cluster.SearchContext(ctx, q, k, exclude)
		return res.Items, res.Partial, err
	case s.router != nil:
		items, err := s.router.SearchContext(ctx, q, k, exclude)
		return items, false, err
	default:
		s.mu.RLock()
		defer s.mu.RUnlock()
		items, err := s.engine.SearchContext(ctx, q, k, exclude)
		return items, false, err
	}
}

// searchTA dispatches the literal Algorithm 1 threshold path — the wire
// protocol's ta selector.
func (s *Server) searchTA(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) ([]topk.Item, bool, error) {
	switch {
	case s.cluster != nil:
		res, err := s.cluster.SearchTAContext(ctx, q, k, exclude)
		return res.Items, res.Partial, err
	case s.router != nil:
		items, err := s.router.SearchTAContext(ctx, q, k, exclude)
		return items, false, err
	default:
		s.mu.RLock()
		defer s.mu.RUnlock()
		items, err := s.engine.SearchTAContext(ctx, q, k, exclude)
		return items, false, err
	}
}

// queryContext derives one request's search budget from Options.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.QueryTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.opts.QueryTimeout)
}

// Handler returns the route multiplexer: the /v1 API, the retired (or,
// with Options.LegacyRoutes, deprecated-but-served) unversioned aliases,
// and the debug surface, all wrapped in the per-route instrumentation
// middleware and the error-envelope rewriter. The search-family routes
// additionally pass admission control.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc, deprecated bool) {
		mux.Handle(pattern, s.instrument(name, h, deprecated))
	}
	// The versioned API. Search, batch and recommend — the routes whose
	// cost scales with corpus size — sit behind admission control; cheap
	// point lookups, ingestion and the observability surface do not.
	route("GET /v1/healthz", "healthz", s.handleHealth, false)
	route("GET /v1/search", "search", s.admit(s.handleSearch), false)
	route("POST /v1/search", "searchwire", s.admit(s.handleSearchWire), false)
	route("POST /v1/search/batch", "batch", s.admit(s.handleBatch), false)
	route("GET /v1/objects/{id}", "object", s.handleObjectV1, false)
	route("POST /v1/objects", "insert", s.handleInsert, false)
	route("POST /v1/recommend", "recommend", s.admit(s.handleRecommend), false)
	route("GET /v1/metrics", "metrics", s.handleMetrics, false)
	route("GET /v1/admin/snapshot", "snapshot", s.handleSnapshot, false)
	if s.opts.LegacyRoutes {
		// Deprecated pre-v1 aliases: same handlers and payloads, flagged
		// with a Deprecation header and counted under
		// http.deprecated.requests.
		route("GET /healthz", "healthz", s.handleHealth, true)
		route("GET /search", "search", s.admit(s.handleSearch), true)
		route("GET /object", "object", s.handleObjectLegacy, true)
		route("POST /objects", "insert", s.handleInsert, true)
		route("POST /recommend", "recommend", s.admit(s.handleRecommend), true)
	} else {
		// Retired pre-v1 aliases: 410/gone in the envelope, naming the /v1
		// replacement. Still flagged and counted as deprecated traffic so
		// operators can see who is hitting them.
		route("GET /healthz", "legacy", gone("GET /v1/healthz"), true)
		route("GET /search", "legacy", gone("GET /v1/search"), true)
		route("GET /object", "legacy", gone("GET /v1/objects/{id}"), true)
		route("POST /objects", "legacy", gone("POST /v1/objects"), true)
		route("POST /recommend", "legacy", gone("POST /v1/recommend"), true)
	}
	// Debug surface.
	route("GET /debug/vars", "debugvars", s.handleDebugVars, false)
	if s.opts.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return envelopeHandler{next: mux}
}

// gone answers a retired unversioned route with 410 in the envelope.
func gone(replacement string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusGone, CodeGone,
			"this unversioned route was retired; use %s (re-enable the alias with -legacy-routes during migration)", replacement)
	}
}

// ResultItem is one search hit.
type ResultItem = api.ResultItem

// SearchResponse is the GET /v1/search and POST /v1/recommend payload.
type SearchResponse = api.SearchResponse

// ObjectResponse is the GET /v1/objects/{id} payload.
type ObjectResponse = api.ObjectResponse

// InsertRequest is the POST /v1/objects payload.
type InsertRequest = api.InsertRequest

// InsertResponse reports the assigned ID.
type InsertResponse = api.InsertResponse

// RecommendRequest is the POST /v1/recommend payload.
type RecommendRequest = api.RecommendRequest

// Error codes of the envelope, re-exported from the api contract.
const (
	CodeInvalidArgument  = api.CodeInvalidArgument
	CodeNotFound         = api.CodeNotFound
	CodeMethodNotAllowed = api.CodeMethodNotAllowed
	CodeDeadlineExceeded = api.CodeDeadlineExceeded
	CodeUnavailable      = api.CodeUnavailable
	CodeConflict         = api.CodeConflict
	CodeGone             = api.CodeGone
)

// ErrorBody is the envelope's inner object.
type ErrorBody = api.ErrorBody

// ErrorResponse is the structured error envelope every handler answers
// with: {"error": {"code": "...", "message": "..."}}.
type ErrorResponse = api.ErrorResponse

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers the structured envelope. Every 503 — shed, degraded
// cluster, disabled feature — carries the api contract's Retry-After
// backoff hint; centralizing it here means no unavailable path can forget
// it.
func writeError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	if status == http.StatusServiceUnavailable && w.Header().Get(api.RetryAfterHeader) == "" {
		w.Header().Set(api.RetryAfterHeader, "1")
	}
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthSnapshot())
}

func (s *Server) healthSnapshot() map[string]interface{} {
	var resp map[string]interface{}
	s.view(func() {
		corpus := s.model.Stats.Corpus()
		resp = map[string]interface{}{
			"status":   "ok",
			"objects":  corpus.Len(),
			"features": corpus.Dict.Len(),
		}
		switch {
		case s.cluster != nil:
			resp["nodes"] = s.cluster.NodeInfos()
		case s.router != nil:
			// Per-shard locks nest safely under the router's statistics
			// read lock (inserts never hold a shard lock while waiting on
			// the statistics lock).
			infos := s.router.ShardInfos()
			cliques := 0
			for _, si := range infos {
				cliques += si.Cliques
			}
			resp["cliques"] = cliques
			resp["shards"] = infos
			resp["generation"] = s.router.Generation()
		case s.engine.Index != nil:
			resp["cliques"] = s.engine.Index.NumCliques()
		}
	})
	return resp
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 1000 {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, "k must be an integer in [1,1000], got %q", raw)
			return
		}
		k = v
	}
	// The handler runs in three pinned stages — parse the query, search,
	// format the results — instead of one long critical section, so a
	// sharded backend can admit routed inserts between stages. Result IDs
	// stay valid across the gaps: the corpus only ever grows.
	var q *media.Object
	exclude := retrieval.NoExclude
	label := ""
	status, errCode, errMsg := 0, "", ""
	s.view(func() {
		corpus := s.model.Stats.Corpus()
		switch {
		case r.URL.Query().Get("id") != "":
			raw := r.URL.Query().Get("id")
			id, err := strconv.Atoi(raw)
			if err != nil || id < 0 || id >= corpus.Len() {
				status, errCode = http.StatusBadRequest, CodeInvalidArgument
				errMsg = fmt.Sprintf("id must identify a corpus object in [0,%d), got %q", corpus.Len(), raw)
				return
			}
			q = corpus.Object(media.ObjectID(id))
			exclude = q.ID
			label = "id:" + raw
		case r.URL.Query().Get("text") != "":
			text := r.URL.Query().Get("text")
			var ok bool
			q, ok = api.TextQuery(corpus, text)
			if !ok {
				status, errCode = http.StatusNotFound, CodeNotFound
				errMsg = fmt.Sprintf("no term of %q matches the corpus vocabulary", text)
				return
			}
			label = "text:" + text
		default:
			status, errCode = http.StatusBadRequest, CodeInvalidArgument
			errMsg = "provide either ?id= or ?text="
		}
	})
	if status != 0 {
		writeError(w, status, errCode, "%s", errMsg)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	results, partial, err := s.coalescedSearch(ctx, q, k, exclude, false)
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	resp := SearchResponse{Query: label, Results: make([]ResultItem, 0, len(results)), Partial: partial}
	s.view(func() {
		corpus := s.model.Stats.Corpus()
		for _, it := range results {
			o := corpus.Object(it.ID)
			resp.Results = append(resp.Results, ResultItem{
				ID:    int64(o.ID),
				Score: it.Score,
				Month: o.Month,
				Tags:  featureNames(corpus, o, media.Text, 8),
			})
		}
	})
	writeJSON(w, http.StatusOK, resp)
}

// writeSearchError maps a failed search dispatch onto the envelope:
// budget expiry → 504, no answering cluster node → 503 (with the
// contract's Retry-After), anything else (the client went away) → 400 as
// a formality.
func (s *Server) writeSearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
			"search exceeded the %s query budget", s.opts.QueryTimeout)
	case errors.Is(err, cluster.ErrUnavailable):
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "search cancelled: %v", err)
	}
}

// handleSearchWire serves POST /v1/search — the wire search protocol
// shared by the typed client and the cluster tier. A shard node resolves
// the wire request against its replicated corpus and answers its
// partition's ranked top-k; the same handler on a router scatter-gathers,
// so the wire protocol composes across tiers. Bodies and scores are plain
// JSON, and Go's float64 round-trip is exact, so the hop never changes
// result bytes.
func (s *Server) handleSearchWire(w http.ResponseWriter, r *http.Request) {
	var req api.SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad JSON: %v", err)
		return
	}
	if req.K < 1 || req.K > 1000 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "k must be in [1,1000], got %d", req.K)
		return
	}
	var q *media.Object
	var rerr error
	s.view(func() {
		q, rerr = api.ResolveQuery(s.model.Stats.Corpus(), &req)
	})
	if rerr != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "%v", rerr)
		return
	}
	exclude := media.ObjectID(retrieval.NoExclude)
	if req.Exclude != nil {
		exclude = media.ObjectID(*req.Exclude)
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	results, partial, err := s.coalescedSearch(ctx, q, req.K, exclude, req.TA)
	if err != nil {
		s.writeSearchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireResponse(results, partial))
}

// wireResponse renders ranked items as the POST /v1/search payload.
func wireResponse(results []topk.Item, partial bool) api.WireSearchResponse {
	resp := api.WireSearchResponse{Results: make([]api.Item, 0, len(results)), Partial: partial}
	for _, it := range results {
		resp.Results = append(resp.Results, api.Item{ID: int64(it.ID), Score: it.Score})
	}
	return resp
}

// handleSnapshot serves GET /v1/admin/snapshot: the node's full snapshot
// set as one stream (manifest line + length-prefixed FSG1 segments) — the
// bootstrap source replacement nodes load through shard.LoadSnapshotStream.
// Only a sharded node can serve it; integrity rides on the segment CRCs
// the loader verifies.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.router == nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			"snapshot streaming requires a sharded node (run with -shards or -role shard)")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	// The status is committed; a mid-stream failure can only truncate the
	// body, which the loader's length prefixes and segment CRCs catch.
	_ = s.router.StreamSnapshot(w)
}

// handleObjectV1 serves GET /v1/objects/{id}.
func (s *Server) handleObjectV1(w http.ResponseWriter, r *http.Request) {
	s.renderObject(w, r.PathValue("id"))
}

// handleObjectLegacy serves the deprecated GET /object?id= alias.
func (s *Server) handleObjectLegacy(w http.ResponseWriter, r *http.Request) {
	s.renderObject(w, r.URL.Query().Get("id"))
}

func (s *Server) renderObject(w http.ResponseWriter, raw string) {
	var resp ObjectResponse
	status := 0
	errMsg := ""
	s.view(func() {
		corpus := s.model.Stats.Corpus()
		id, err := strconv.Atoi(raw)
		if err != nil || id < 0 || id >= corpus.Len() {
			status = http.StatusNotFound
			errMsg = fmt.Sprintf("unknown object %q", raw)
			return
		}
		o := corpus.Object(media.ObjectID(id))
		resp = ObjectResponse{
			ID:          int64(o.ID),
			Month:       o.Month,
			Tags:        featureNames(corpus, o, media.Text, 0),
			Users:       featureNames(corpus, o, media.User, 0),
			VisualWords: featureNames(corpus, o, media.Visual, 0),
		}
	})
	if status != 0 {
		writeError(w, status, CodeNotFound, "%s", errMsg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad JSON: %v", err)
		return
	}
	var feats []media.Feature
	var counts []int
	if len(req.Features) > 0 {
		// The wire form: exact (kind, name, count) triples from a cluster
		// router replicating an insert.
		var err error
		feats, counts, err = api.DecodeFeatures(req.Features)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
			return
		}
	} else {
		add := func(kind media.Kind, names []string) {
			for _, n := range names {
				if n == "" {
					continue
				}
				feats = append(feats, media.Feature{Kind: kind, Name: n})
				counts = append(counts, 1)
			}
		}
		add(media.Text, req.Tags)
		add(media.User, req.Users)
		add(media.Visual, req.VisualWords)
	}
	if len(feats) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "object must carry at least one feature")
		return
	}
	expect := -1
	if req.Expect != nil {
		expect = *req.Expect
	}
	o, err := s.insert(r.Context(), feats, counts, req.Month, expect)
	if err != nil {
		var pre *shard.PreconditionError
		switch {
		case errors.As(err, &pre) || errors.Is(err, cluster.ErrDiverged):
			writeError(w, http.StatusConflict, CodeConflict, "insert: %v", err)
		case errors.Is(err, cluster.ErrUnavailable):
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "insert: %v", err)
		default:
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, "insert: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, InsertResponse{ID: int64(o.ID)})
}

// insert dispatches ingestion to the backend. The cluster front-end
// replicates under its own serialization; the sharded router locks
// internally (global statistics phase, then the owning shard alone); the
// single engine mutates global state and takes the server's write lock —
// a deferred unlock keeps the server serviceable even if Insert panics on
// corrupt input. expect >= 0 is a generation stamp: the insert applies
// only if the corpus holds exactly that many objects.
func (s *Server) insert(ctx context.Context, feats []media.Feature, counts []int, month int, expect int) (*media.Object, error) {
	switch {
	case s.cluster != nil:
		return s.cluster.InsertContext(ctx, feats, counts, month, expect)
	case s.router != nil:
		return s.router.InsertAt(feats, counts, month, expect)
	default:
		s.mu.Lock()
		defer s.mu.Unlock()
		if got := s.model.Stats.Corpus().Len(); expect >= 0 && got != expect {
			return nil, &shard.PreconditionError{Objects: got, Expect: expect}
		}
		return s.engine.Insert(feats, counts, month)
	}
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad JSON: %v", err)
		return
	}
	if req.K < 1 || req.K > 1000 {
		req.K = 10
	}
	if len(req.History) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "history must not be empty")
		return
	}
	var resp SearchResponse
	status, errMsg := 0, ""
	// The recommender reads corpus-global statistics throughout scoring, so
	// the whole request stays pinned in one view.
	s.view(func() {
		corpus := s.model.Stats.Corpus()
		history := make([]*media.Object, 0, len(req.History))
		histSet := make(map[media.ObjectID]bool, len(req.History))
		for _, raw := range req.History {
			if raw < 0 || int(raw) >= corpus.Len() {
				status = http.StatusBadRequest
				errMsg = fmt.Sprintf("unknown history object %d", raw)
				return
			}
			id := media.ObjectID(raw)
			history = append(history, corpus.Object(id))
			histSet[id] = true
		}
		// Candidates: everything not already in the history.
		candidates := make([]media.ObjectID, 0, corpus.Len()-len(histSet))
		for i := 0; i < corpus.Len(); i++ {
			if id := media.ObjectID(i); !histSet[id] {
				candidates = append(candidates, id)
			}
		}
		results := s.rec.Recommend(history, candidates, req.K, req.Now)
		resp = SearchResponse{Query: fmt.Sprintf("recommend:%d-item history", len(history))}
		for _, it := range results {
			o := corpus.Object(it.ID)
			resp.Results = append(resp.Results, ResultItem{
				ID:    int64(o.ID),
				Score: it.Score,
				Month: o.Month,
				Tags:  featureNames(corpus, o, media.Text, 8),
			})
		}
	})
	if status != 0 {
		writeError(w, status, CodeInvalidArgument, "%s", errMsg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func featureNames(c *media.Corpus, o *media.Object, kind media.Kind, max int) []string {
	var out []string
	for _, fid := range o.Feats {
		f := c.Dict.Feature(fid)
		if f.Kind != kind {
			continue
		}
		out = append(out, f.Name)
		if max > 0 && len(out) == max {
			break
		}
	}
	return out
}
