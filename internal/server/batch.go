package server

import (
	"encoding/json"
	"net/http"

	"figfusion/internal/api"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
	"figfusion/internal/topk"
)

// handleBatch serves POST /v1/search/batch: up to api.MaxBatchQueries wire
// searches answered in order from one HTTP request. One admission slot,
// one request budget and one query-resolution view cover the whole batch,
// and the single-engine path prepares each query once and scores it under
// one read lock — the Engine.Prepare amortization. Every entry of the
// response is byte-identical to what POST /v1/search would have answered
// for that query alone: same resolution, same (deterministic) scoring,
// same JSON rendering. The batch validates and resolves completely before
// running anything, so it either runs whole or fails whole with the
// offending query index named.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad JSON: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "batch must carry at least one query")
		return
	}
	if len(req.Queries) > api.MaxBatchQueries {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			"batch carries %d queries; the limit is %d", len(req.Queries), api.MaxBatchQueries)
		return
	}
	for i := range req.Queries {
		if k := req.Queries[i].K; k < 1 || k > 1000 {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument,
				"query %d: k must be in [1,1000], got %d", i, k)
			return
		}
	}
	// Resolve every query under one pinned view: the whole batch parses
	// against one corpus snapshot, exactly as its sequential equivalent
	// would if no insert interleaved.
	queries := make([]*media.Object, len(req.Queries))
	excludes := make([]media.ObjectID, len(req.Queries))
	rerrIndex, rerrMsg := -1, ""
	s.view(func() {
		corpus := s.model.Stats.Corpus()
		for i := range req.Queries {
			q, err := api.ResolveQuery(corpus, &req.Queries[i])
			if err != nil {
				rerrIndex, rerrMsg = i, err.Error()
				return
			}
			queries[i] = q
			excludes[i] = media.ObjectID(retrieval.NoExclude)
			if ex := req.Queries[i].Exclude; ex != nil {
				excludes[i] = media.ObjectID(*ex)
			}
		}
	})
	if rerrIndex >= 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "query %d: %s", rerrIndex, rerrMsg)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	resp := api.BatchSearchResponse{Results: make([]api.WireSearchResponse, len(req.Queries))}
	if s.engine != nil {
		// Single-engine amortization: one read lock for the whole batch,
		// one Prepare per query — the clique enumeration and MRF compile
		// are paid once per query instead of once per HTTP round trip, and
		// the lock is taken once instead of per query.
		err := func() error {
			s.mu.RLock()
			defer s.mu.RUnlock()
			for i, q := range queries {
				p := s.engine.Prepare(q)
				var items []topk.Item
				var err error
				if req.Queries[i].TA {
					items, err = s.engine.SearchTAPreparedContext(ctx, p, req.Queries[i].K, excludes[i])
				} else {
					items, err = s.engine.SearchPreparedContext(ctx, p, req.Queries[i].K, excludes[i])
				}
				if err != nil {
					return err
				}
				resp.Results[i] = wireResponse(items, false)
			}
			return nil
		}()
		if err != nil {
			s.writeSearchError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Sharded and cluster backends carry their own locking and per-shard
	// prepared queries; the batch still amortizes the HTTP round trip, the
	// admission slot and the resolution view.
	for i, q := range queries {
		items, partial, err := s.dispatchSearch(ctx, q, req.Queries[i].K, excludes[i], req.Queries[i].TA)
		if err != nil {
			s.writeSearchError(w, err)
			return
		}
		resp.Results[i] = wireResponse(items, partial)
	}
	writeJSON(w, http.StatusOK, resp)
}
