package server

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"figfusion/internal/retrieval"
)

// Options is the one configuration surface of the serving binary: every
// figserver flag parses into it, and the server consumes it directly.
// Defaults live in DefaultOptions alone — Flags registers each flag with
// the receiver's current value as its default, so flag defaults and
// struct values cannot drift apart.
type Options struct {
	// Addr is the HTTP listen address.
	Addr string
	// Data is a corpus gob written by figdata; empty generates a corpus.
	Data string
	// Objects is the generated corpus size (used when Data is empty).
	Objects int
	// Seed seeds corpus generation and threshold training.
	Seed int64
	// Index is a prebuilt index: a clique-index file from figdata -index,
	// or with Shards > 1 the base path of a figdata -shards snapshot set.
	Index string
	// Shards is the engine shard count; > 1 serves scatter-gather over a
	// partitioned index.
	Shards int
	// Workers is the scoring fan-out per engine (0 = GOMAXPROCS; sharded
	// deployments usually keep 1 per shard).
	Workers int
	// CandidateCap caps scored candidates per query per engine
	// (0 = uncapped/exact).
	CandidateCap int
	// Pruning selects the top-k pruning mode: "off", "blockmax" (exact,
	// byte-identical to off), or "blockmax-quantized" (16-bit first pass
	// with exact rescoring of the survivors). The serving default is
	// blockmax — it changes no result bytes, only how many candidates are
	// scored to produce them.
	Pruning string
	// Drain is the graceful-shutdown drain timeout.
	Drain time.Duration
	// QueryTimeout bounds one search request; on expiry the handler
	// cancels the engine mid-scoring and answers with the
	// deadline_exceeded error code (0 = unbounded).
	QueryTimeout time.Duration
	// SlowQuery is the slow-query-log threshold: queries at or above it
	// are retained in the bounded slow log exposed at /v1/metrics.
	SlowQuery time.Duration
	// Metrics toggles the observability registry (counters, latency
	// histograms, slow-query log, /v1/metrics). Default on; disabling
	// reduces the serving path to the bare engine.
	Metrics bool
	// MaxInflight caps concurrently executing search-family requests
	// (search, batch, recommend); 0 disables admission control. With it
	// set, up to MaxQueue further requests wait for a slot and the rest
	// are shed with 503/unavailable + Retry-After, counted as
	// server.shed.requests.
	MaxInflight int
	// MaxQueue bounds the admission wait queue behind MaxInflight
	// (ignored when MaxInflight is 0). 0 means shed as soon as every
	// slot is busy.
	MaxQueue int
	// Coalesce enables single-flight coalescing of identical in-flight
	// searches plus the generation-stamped result cache: identical
	// concurrent queries share one engine execution, repeats are answered
	// from cache until the next insert bumps the corpus-global model
	// generation.
	Coalesce bool
	// CoalesceCap caps the result cache (entries); 0 uses the default
	// (1024). At capacity the cache flushes wholesale — entries refill in
	// one coalesced round.
	CoalesceCap int
	// LegacyRoutes re-enables the deprecated unversioned route aliases
	// (/healthz, /search, /object, /objects, /recommend) for deployments
	// still draining pre-v1 clients. Off (the default) answers them with
	// 410/gone in the error envelope, naming the /v1 replacement.
	LegacyRoutes bool
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// Role selects the multi-node serving mode: "" or "standalone" serves
	// locally (the single-binary default), "shard" serves one node's
	// partition of the shared node list, "router" scatter-gathers searches
	// and replicates inserts across the nodes.
	Role string
	// Nodes is the shared comma-separated node list (host:port or URL per
	// entry). Every node and the router must pass the identical list: the
	// entries are the identities the consistent-hash partition is computed
	// from.
	Nodes string
	// NodeName identifies which entry of Nodes this process is (role
	// "shard" only).
	NodeName string
	// Bootstrap is a peer URL to stream this node's snapshot set from at
	// startup via /v1/admin/snapshot (role "shard" only; empty builds the
	// partition's index locally).
	Bootstrap string
	// HedgeAfter enables hedged cluster requests: a node not answering
	// after max(HedgeAfter, its p99) gets a second identical request (role
	// "router" only; 0 disables hedging).
	HedgeAfter time.Duration
	// ProbeInterval is the cluster health-probe period (role "router"
	// only; 0 = the cluster default).
	ProbeInterval time.Duration
}

// DefaultOptions returns the serving defaults.
func DefaultOptions() Options {
	return Options{
		Addr:         ":8080",
		Objects:      2000,
		Seed:         1,
		Shards:       1,
		Drain:        10 * time.Second,
		QueryTimeout: 10 * time.Second,
		SlowQuery:    250 * time.Millisecond,
		Pruning:      retrieval.PruneBlockMax.String(),
		Metrics:      true,
		MaxInflight:  64,
		MaxQueue:     256,
		Coalesce:     true,
	}
}

// Flags registers every option on fs, defaulting to the receiver's
// current values. Call Validate after fs.Parse.
func (o *Options) Flags(fs *flag.FlagSet) {
	fs.StringVar(&o.Addr, "addr", o.Addr, "listen address")
	fs.StringVar(&o.Data, "data", o.Data, "corpus gob written by figdata (empty = generate)")
	fs.IntVar(&o.Objects, "objects", o.Objects, "corpus size when generating")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "generation seed")
	fs.StringVar(&o.Index, "index", o.Index, "prebuilt index: a clique-index file from figdata -index, or with -shards > 1 the base path of a snapshot set from figdata -shards")
	fs.IntVar(&o.Shards, "shards", o.Shards, "engine shards; > 1 serves scatter-gather over a partitioned index")
	fs.IntVar(&o.Workers, "workers", o.Workers, "scoring workers per engine (0 = GOMAXPROCS; sharded mode usually keeps 1 per shard)")
	fs.IntVar(&o.CandidateCap, "candidate-cap", o.CandidateCap, "cap on scored candidates per query per engine (0 = uncapped/exact)")
	fs.StringVar(&o.Pruning, "pruning", o.Pruning, "top-k pruning mode: off, blockmax (exact), or blockmax-quantized")
	fs.DurationVar(&o.Drain, "drain", o.Drain, "graceful-shutdown drain timeout")
	fs.DurationVar(&o.QueryTimeout, "query-timeout", o.QueryTimeout, "per-request search budget; expiry answers deadline_exceeded (0 = unbounded)")
	fs.DurationVar(&o.SlowQuery, "slow-query", o.SlowQuery, "slow-query-log threshold")
	fs.BoolVar(&o.Metrics, "metrics", o.Metrics, "enable the metrics registry and /v1/metrics")
	fs.IntVar(&o.MaxInflight, "max-inflight", o.MaxInflight, "admission control: concurrently executing search-family requests (0 = unbounded)")
	fs.IntVar(&o.MaxQueue, "max-queue", o.MaxQueue, "admission control: requests waiting behind -max-inflight before shedding with 503")
	fs.BoolVar(&o.Coalesce, "coalesce", o.Coalesce, "coalesce identical in-flight searches and cache results until the next insert")
	fs.IntVar(&o.CoalesceCap, "coalesce-cap", o.CoalesceCap, "coalesced result cache capacity in entries (0 = default 1024)")
	fs.BoolVar(&o.LegacyRoutes, "legacy-routes", o.LegacyRoutes, "serve the deprecated unversioned route aliases instead of answering 410/gone")
	fs.BoolVar(&o.Pprof, "pprof", o.Pprof, "mount net/http/pprof under /debug/pprof/")
	fs.StringVar(&o.Role, "role", o.Role, "multi-node role: standalone (default), shard (serve one partition of -nodes), or router (scatter-gather over -nodes)")
	fs.StringVar(&o.Nodes, "nodes", o.Nodes, "comma-separated node list shared by every role (host:port or URL per entry)")
	fs.StringVar(&o.NodeName, "node-name", o.NodeName, "which -nodes entry this process is (role shard)")
	fs.StringVar(&o.Bootstrap, "bootstrap", o.Bootstrap, "peer URL to stream this node's snapshot set from at startup (role shard)")
	fs.DurationVar(&o.HedgeAfter, "hedge-after", o.HedgeAfter, "hedged-request delay floor for slow nodes (role router; 0 = no hedging)")
	fs.DurationVar(&o.ProbeInterval, "probe-interval", o.ProbeInterval, "cluster health-probe period (role router; 0 = default)")
}

// Validate rejects option combinations the server cannot serve.
func (o Options) Validate() error {
	if o.Addr == "" {
		return fmt.Errorf("server: addr must not be empty")
	}
	if o.Data == "" && o.Objects < 1 {
		return fmt.Errorf("server: objects must be >= 1 when generating a corpus, got %d", o.Objects)
	}
	if o.Shards < 1 {
		return fmt.Errorf("server: shards must be >= 1, got %d", o.Shards)
	}
	if o.Workers < 0 {
		return fmt.Errorf("server: workers must be >= 0, got %d", o.Workers)
	}
	if o.CandidateCap < 0 {
		return fmt.Errorf("server: candidate-cap must be >= 0, got %d", o.CandidateCap)
	}
	if _, err := o.PruningMode(); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if o.Drain <= 0 {
		return fmt.Errorf("server: drain must be positive, got %s", o.Drain)
	}
	if o.QueryTimeout < 0 {
		return fmt.Errorf("server: query-timeout must be >= 0, got %s", o.QueryTimeout)
	}
	if o.SlowQuery < 0 {
		return fmt.Errorf("server: slow-query must be >= 0, got %s", o.SlowQuery)
	}
	if o.MaxInflight < 0 {
		return fmt.Errorf("server: max-inflight must be >= 0, got %d", o.MaxInflight)
	}
	if o.MaxQueue < 0 {
		return fmt.Errorf("server: max-queue must be >= 0, got %d", o.MaxQueue)
	}
	if o.CoalesceCap < 0 {
		return fmt.Errorf("server: coalesce-cap must be >= 0, got %d", o.CoalesceCap)
	}
	switch o.Role {
	case "", "standalone":
		if o.Nodes != "" || o.NodeName != "" || o.Bootstrap != "" {
			return fmt.Errorf("server: -nodes/-node-name/-bootstrap require -role shard or router")
		}
	case "shard":
		if len(o.NodeList()) == 0 {
			return fmt.Errorf("server: role shard requires the shared -nodes list")
		}
		if o.NodeName == "" {
			return fmt.Errorf("server: role shard requires -node-name (which -nodes entry this process is)")
		}
	case "router":
		if len(o.NodeList()) == 0 {
			return fmt.Errorf("server: role router requires the shared -nodes list")
		}
		if o.NodeName != "" || o.Bootstrap != "" {
			return fmt.Errorf("server: -node-name/-bootstrap apply to role shard, not router")
		}
	default:
		return fmt.Errorf("server: role must be standalone, shard or router, got %q", o.Role)
	}
	if o.HedgeAfter < 0 {
		return fmt.Errorf("server: hedge-after must be >= 0, got %s", o.HedgeAfter)
	}
	if o.ProbeInterval < 0 {
		return fmt.Errorf("server: probe-interval must be >= 0, got %s", o.ProbeInterval)
	}
	return nil
}

// NodeList splits the shared -nodes list into its entries, dropping empty
// segments (a trailing comma is not a node).
func (o Options) NodeList() []string {
	if o.Nodes == "" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(o.Nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// coalesceCap resolves the result-cache capacity, defaulting to 1024.
func (o Options) coalesceCap() int {
	if o.CoalesceCap > 0 {
		return o.CoalesceCap
	}
	return 1024
}

// PruningMode parses the Pruning option. An empty string means the zero
// Options value was used without DefaultOptions; that maps to off, the
// library default.
func (o Options) PruningMode() (retrieval.PruningMode, error) {
	if o.Pruning == "" {
		return retrieval.PruneOff, nil
	}
	return retrieval.ParsePruningMode(o.Pruning)
}
