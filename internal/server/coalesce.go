package server

import (
	"context"
	"strconv"
	"strings"
	"sync"

	"figfusion/internal/media"
	"figfusion/internal/obs"
	"figfusion/internal/topk"
)

// searchKey identifies one search's complete input: the canonical query
// (corpus ID, or interned feature list + month for ad-hoc queries), the
// depth, the exclusion and the algorithm selector. Two requests with equal
// keys must — by the engine's determinism guarantees — produce identical
// result bytes at the same model generation, which is what makes sharing
// one execution and caching its output sound.
type searchKey struct {
	query   string
	k       int
	exclude int64
	ta      bool
}

// flightKey scopes an in-flight execution to the model generation its
// leader observed: a follower only joins a flight computing against the
// generation the follower itself read, never one from before an insert.
type flightKey struct {
	gen uint64
	key searchKey
}

// flight is one in-progress search execution; followers block on done and
// read the results the leader wrote before closing it.
type flight struct {
	done    chan struct{}
	items   []topk.Item
	partial bool
	err     error
}

// cacheEntry is one completed result, valid only at the generation it was
// computed under.
type cacheEntry struct {
	gen     uint64
	items   []topk.Item
	partial bool
}

// coalescer deduplicates identical searches two ways: in-flight
// single-flight sharing (concurrent identical requests ride one engine
// execution) and a generation-stamped result cache (repeat requests skip
// the engine entirely while the corpus is unchanged). Invalidation is the
// floatcache idiom: every entry carries the corpus-global model generation
// it was computed at, lookups demand an exact match, and the store-side
// re-check discards results computed across an insert — so ingestion
// invalidates the cache automatically, with no list of keys to chase.
type coalescer struct {
	gen      func() uint64 // corpus-global model generation (atomic read)
	capacity int

	mu       sync.Mutex
	inflight map[flightKey]*flight
	cache    map[searchKey]cacheEntry

	hits, misses, shared *obs.Counter // nil without a registry
}

func newCoalescer(capacity int, gen func() uint64, reg *obs.Registry) *coalescer {
	c := &coalescer{
		gen:      gen,
		capacity: capacity,
		inflight: make(map[flightKey]*flight),
		cache:    make(map[searchKey]cacheEntry),
	}
	if reg != nil {
		c.hits = reg.Counter("server.coalesce.hits")
		c.misses = reg.Counter("server.coalesce.misses")
		c.shared = reg.Counter("server.coalesce.shared")
		reg.Func("server.coalesce.entries", func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.cache))
		})
	}
	return c
}

// do answers key from the cache, an in-flight execution, or by running the
// search itself as the flight's leader. Degraded (partial) cluster answers
// are shared with concurrent followers but never cached: the next request
// should re-ask a cluster that may have healed.
func (c *coalescer) do(ctx context.Context, key searchKey, run func(context.Context) ([]topk.Item, bool, error)) ([]topk.Item, bool, error) {
	// Read the generation before any work (the floatcache discipline):
	// results are valid only at the generation they were computed under.
	gen := c.gen()
	e, f, leader := c.acquire(gen, key)
	if f == nil {
		if c.hits != nil {
			c.hits.Inc()
		}
		return e.items, e.partial, nil
	}
	if !leader {
		if c.shared != nil {
			c.shared.Inc()
		}
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err != nil {
			// The leader failed — possibly only because its own client went
			// away. Fall back to an uncoalesced run under this request's
			// context rather than propagating a stranger's cancellation.
			return run(ctx)
		}
		return f.items, f.partial, nil
	}
	if c.misses != nil {
		c.misses.Inc()
	}
	f.items, f.partial, f.err = run(ctx)
	c.settle(gen, key, f)
	close(f.done)
	return f.items, f.partial, f.err
}

// acquire classifies the caller under one lock hold: a fresh cache entry
// (f == nil), an existing flight to follow (f, leader false), or a new
// flight this caller must lead (f, leader true).
func (c *coalescer) acquire(gen uint64, key searchKey) (cacheEntry, *flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.cache[key]; ok && e.gen == gen {
		return e, nil, false
	}
	fk := flightKey{gen: gen, key: key}
	if f, ok := c.inflight[fk]; ok {
		return cacheEntry{}, f, false
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[fk] = f
	return cacheEntry{}, f, true
}

// settle retires the flight and caches its result while it is still
// fresh. The store-side generation re-check is floatcache's second half:
// an insert that landed mid-flight changed what this query should answer,
// so a result computed across the bump must not enter the cache.
// Followers of the flight still receive it — they joined at the
// generation the leader read, when it was the freshest answer in
// progress.
func (c *coalescer) settle(gen uint64, key searchKey, f *flight) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.inflight, flightKey{gen: gen, key: key})
	if f.err == nil && !f.partial && c.gen() == gen {
		if len(c.cache) >= c.capacity {
			// Wholesale flush at capacity: entries are small and refill in
			// one coalesced round; per-entry recency tracking is not worth
			// the bookkeeping on the hot path.
			c.cache = make(map[searchKey]cacheEntry, c.capacity)
		}
		c.cache[key] = cacheEntry{gen: gen, items: f.items, partial: f.partial}
	}
}

// dispatchSearch routes one resolved query to the backend's indexed or TA
// path — the uncoalesced execution primitive shared by the coalescer, the
// batch handler and the degraded-follower fallback.
func (s *Server) dispatchSearch(ctx context.Context, q *media.Object, k int, exclude media.ObjectID, ta bool) ([]topk.Item, bool, error) {
	if ta {
		return s.searchTA(ctx, q, k, exclude)
	}
	return s.search(ctx, q, k, exclude)
}

// coalescedSearch runs one search through the coalescer when it is
// enabled; otherwise straight through to the backend.
func (s *Server) coalescedSearch(ctx context.Context, q *media.Object, k int, exclude media.ObjectID, ta bool) ([]topk.Item, bool, error) {
	if s.coal == nil {
		return s.dispatchSearch(ctx, q, k, exclude, ta)
	}
	key := searchKey{query: canonicalQuery(q), k: k, exclude: int64(exclude), ta: ta}
	return s.coal.do(ctx, key, func(ctx context.Context) ([]topk.Item, bool, error) {
		return s.dispatchSearch(ctx, q, k, exclude, ta)
	})
}

// canonicalQuery renders a resolved query object as a cache key: corpus
// objects by ID (the ID fixes the feature vector), ad-hoc objects (free
// text or wire feature lists, ID < 0) by their interned feature IDs,
// counts and month. Requests spelled differently but resolving to the same
// features coalesce.
func canonicalQuery(q *media.Object) string {
	if q.ID >= 0 {
		return "id:" + strconv.FormatInt(int64(q.ID), 10)
	}
	var b strings.Builder
	b.WriteString("f:")
	for i, fid := range q.Feats {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(fid), 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(uint64(q.Counts[i]), 10))
	}
	b.WriteString(";m:")
	b.WriteString(strconv.Itoa(q.Month))
	return b.String()
}
