package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"figfusion/internal/api"
)

// rawBody performs a request and returns the raw response bytes.
func rawBody(t *testing.T, h http.Handler, method, target string, body []byte) (int, []byte) {
	t.Helper()
	var req *http.Request
	if body != nil {
		req = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// batchQueries is the identity-test workload: ID queries, a text query, an
// exclusion and a TA query — every request shape the wire search accepts.
func batchQueries() []api.SearchRequest {
	return []api.SearchRequest{
		{ID: int64p(5), K: 4},
		{Text: "topic00tag00 topic00tag01", K: 3},
		{ID: int64p(9), K: 5, Exclude: int64p(2)},
		{ID: int64p(17), K: 4, TA: true},
		{ID: int64p(5), K: 4}, // duplicate of the first — same bytes again
	}
}

// assertBatchByteIdentity drives every query through POST /v1/search
// sequentially and through POST /v1/search/batch, and requires each batch
// entry to be byte-identical to its sequential response body.
func assertBatchByteIdentity(t *testing.T, h http.Handler, queries []api.SearchRequest) {
	t.Helper()
	sequential := make([][]byte, len(queries))
	for i, q := range queries {
		body, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		code, resp := rawBody(t, h, "POST", "/v1/search", body)
		if code != http.StatusOK {
			t.Fatalf("sequential query %d: status = %d, body %s", i, code, resp)
		}
		sequential[i] = bytes.TrimSpace(resp)
	}
	body, err := json.Marshal(api.BatchSearchRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	code, resp := rawBody(t, h, "POST", "/v1/search/batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch: status = %d, body %s", code, resp)
	}
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(resp, &batch); err != nil {
		t.Fatalf("batch: bad JSON %s: %v", resp, err)
	}
	if len(batch.Results) != len(queries) {
		t.Fatalf("batch answered %d results for %d queries", len(batch.Results), len(queries))
	}
	for i := range queries {
		if got := bytes.TrimSpace(batch.Results[i]); !bytes.Equal(got, sequential[i]) {
			t.Errorf("query %d: batch %s != sequential %s", i, got, sequential[i])
		}
	}
}

// TestBatchByteIdentitySingleEngine: every entry of a batch response is
// byte-identical to the uncached sequential POST /v1/search answer on a
// single-engine server — the Prepare-amortized path changes cost, never
// bytes. Coalescing is off so the sequential side is genuinely uncached.
func TestBatchByteIdentitySingleEngine(t *testing.T) {
	opts := DefaultOptions()
	opts.Coalesce = false
	s, _ := testServerOpts(t, opts)
	assertBatchByteIdentity(t, s.Handler(), batchQueries())
}

// TestBatchByteIdentitySharded: the same identity holds across a 2-shard
// router, where the batch loops the dispatch path instead of holding one
// engine lock.
func TestBatchByteIdentitySharded(t *testing.T) {
	opts := DefaultOptions()
	opts.Coalesce = false
	s, _ := testShardedServerOpts(t, 2, opts)
	assertBatchByteIdentity(t, s.Handler(), batchQueries())
}

// TestBatchByteIdentityAcrossInsert: the identity survives an insert — at
// the new model generation both the sequential and the batch path answer
// the post-insert truth (and with coalescing on, the cache's generation
// stamp keeps pre-insert entries from leaking into either side).
func TestBatchByteIdentityAcrossInsert(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	queries := batchQueries()
	assertBatchByteIdentity(t, h, queries)
	ins, err := json.Marshal(InsertRequest{Tags: []string{"topic00tag00", "topic00tag01"}, Month: 3})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := rawBody(t, h, "POST", "/v1/objects", ins); code != http.StatusCreated {
		t.Fatalf("insert: status = %d, body %s", code, body)
	}
	assertBatchByteIdentity(t, h, queries)
}

// TestBatchValidation pins the batch error surface: the whole batch fails
// with 400/invalid_argument naming the offending query, and never
// partially executes.
func TestBatchValidation(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	tooMany := api.BatchSearchRequest{Queries: make([]api.SearchRequest, api.MaxBatchQueries+1)}
	for i := range tooMany.Queries {
		tooMany.Queries[i] = api.SearchRequest{ID: int64p(0), K: 1}
	}
	tooManyBody, err := json.Marshal(tooMany)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		body    []byte
		wantMsg string
	}{
		{"bad JSON", []byte("{"), "bad JSON"},
		{"empty", []byte(`{"queries":[]}`), "at least one"},
		{"oversized", tooManyBody, "limit"},
		{"bad k", []byte(`{"queries":[{"id":1,"k":3},{"id":2,"k":0}]}`), "query 1"},
		{"unresolvable", []byte(`{"queries":[{"id":1,"k":3},{"id":999999,"k":3}]}`), "query 1"},
	}
	for _, tc := range cases {
		var resp ErrorResponse
		code := doJSON(t, h, "POST", "/v1/search/batch", tc.body, &resp)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
			continue
		}
		if resp.Error.Code != CodeInvalidArgument {
			t.Errorf("%s: code = %q", tc.name, resp.Error.Code)
		}
		if tc.wantMsg != "" && !bytes.Contains([]byte(resp.Error.Message), []byte(tc.wantMsg)) {
			t.Errorf("%s: message %q does not mention %q", tc.name, resp.Error.Message, tc.wantMsg)
		}
	}
}
