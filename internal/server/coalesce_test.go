package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"figfusion/internal/topk"
)

// TestCoalescerSingleFlight: a follower that arrives while an identical
// search is in flight joins it and receives the leader's results; the
// engine runs once.
func TestCoalescerSingleFlight(t *testing.T) {
	var gen atomic.Uint64
	c := newCoalescer(16, gen.Load, nil)
	key := searchKey{query: "id:5", k: 4}
	var runs atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	want := []topk.Item{{ID: 1, Score: 2.5}, {ID: 2, Score: 1.5}}
	run := func(ctx context.Context) ([]topk.Item, bool, error) {
		runs.Add(1)
		close(entered)
		<-release
		return want, false, nil
	}
	type result struct {
		items []topk.Item
		err   error
	}
	leaderDone := make(chan result, 1)
	go func() {
		items, _, err := c.do(context.Background(), key, run)
		leaderDone <- result{items, err}
	}()
	<-entered // the leader is now mid-execution
	followerDone := make(chan result, 1)
	go func() {
		items, _, err := c.do(context.Background(), key, func(ctx context.Context) ([]topk.Item, bool, error) {
			t.Error("follower ran its own search")
			return nil, false, nil
		})
		followerDone <- result{items, err}
	}()
	// The follower must be waiting on the flight, not running. There is no
	// portable way to observe "blocked", but releasing the leader and
	// checking the run counter afterwards catches a second execution.
	close(release)
	for _, ch := range []chan result{leaderDone, followerDone} {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.items) != len(want) || r.items[0] != want[0] {
			t.Errorf("items = %+v, want %+v", r.items, want)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("search ran %d times, want 1", got)
	}
	// A third call after completion is a cache hit — still one run.
	items, _, err := c.do(context.Background(), key, run)
	if err != nil || len(items) != 2 {
		t.Fatalf("cached call: %v, %v", items, err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("cache hit re-ran the search (%d runs)", got)
	}
}

// TestCoalescerGenerationInvalidation: bumping the model generation makes
// every cached entry stale — the next identical query runs the engine
// again; a result computed across the bump never enters the cache.
func TestCoalescerGenerationInvalidation(t *testing.T) {
	var gen atomic.Uint64
	c := newCoalescer(16, gen.Load, nil)
	key := searchKey{query: "id:5", k: 4}
	var runs atomic.Int64
	run := func(ctx context.Context) ([]topk.Item, bool, error) {
		runs.Add(1)
		return []topk.Item{{ID: 1, Score: 1}}, false, nil
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.do(context.Background(), key, run); err != nil {
			t.Fatal(err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("pre-bump runs = %d, want 1", got)
	}
	gen.Add(1) // an insert landed
	if _, _, err := c.do(context.Background(), key, run); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("post-bump runs = %d, want 2", got)
	}
	// A result computed across a bump is shared but not cached: the next
	// call at the new generation must run again. A fresh key avoids the
	// still-valid cache entry from the run above.
	key2 := searchKey{query: "id:6", k: 4}
	bumpMid := func(ctx context.Context) ([]topk.Item, bool, error) {
		runs.Add(1)
		gen.Add(1)
		return []topk.Item{{ID: 2, Score: 1}}, false, nil
	}
	if _, _, err := c.do(context.Background(), key2, bumpMid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.do(context.Background(), key2, run); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 4 {
		t.Errorf("mid-flight bump runs = %d, want 4 (stale result must not be cached)", got)
	}
}

// TestCoalescerPartialNotCached: degraded (partial) answers are shared
// with concurrent followers but never cached — the next request re-asks a
// cluster that may have healed.
func TestCoalescerPartialNotCached(t *testing.T) {
	var gen atomic.Uint64
	c := newCoalescer(16, gen.Load, nil)
	key := searchKey{query: "id:5", k: 4}
	var runs atomic.Int64
	partialRun := func(ctx context.Context) ([]topk.Item, bool, error) {
		runs.Add(1)
		return []topk.Item{{ID: 1, Score: 1}}, true, nil
	}
	if _, partial, err := c.do(context.Background(), key, partialRun); err != nil || !partial {
		t.Fatalf("partial = %v, err = %v", partial, err)
	}
	if _, _, err := c.do(context.Background(), key, partialRun); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("runs = %d, want 2 (partial answers must not be cached)", got)
	}
}

// TestCoalescedSearchHTTP drives concurrent identical queries through the
// full HTTP stack: every response is byte-identical, the engine executes
// fewer times than requests arrive, and an insert invalidates the cache.
func TestCoalescedSearchHTTP(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := rawBody(t, h, "GET", "/v1/search?id=3&k=5", nil)
			if code != http.StatusOK {
				t.Errorf("request %d: status = %d", i, code)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("response %d differs: %s vs %s", i, bodies[i], bodies[0])
		}
	}
	reg := s.Registry()
	total := reg.Counter("retrieval.search.total").Value()
	misses := reg.Counter("server.coalesce.misses").Value()
	hits := reg.Counter("server.coalesce.hits").Value()
	shared := reg.Counter("server.coalesce.shared").Value()
	if total != misses {
		t.Errorf("engine ran %d times but misses = %d", total, misses)
	}
	if hits+shared+misses != n {
		t.Errorf("hits %d + shared %d + misses %d != %d requests", hits, shared, misses, n)
	}
	// Every request after the first either joined the flight or hit the
	// cache; with an 8-way burst at least one must have been deduplicated.
	if hits+shared == 0 {
		t.Error("no request was coalesced")
	}

	// An insert bumps the corpus-global generation: the cached entry is
	// stale and the next identical query runs the engine again.
	ins, err := json.Marshal(InsertRequest{Tags: []string{"topic00tag00"}, Month: 1})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := rawBody(t, h, "POST", "/v1/objects", ins); code != http.StatusCreated {
		t.Fatalf("insert: status = %d, body %s", code, body)
	}
	if code, _ := rawBody(t, h, "GET", "/v1/search?id=3&k=5", nil); code != http.StatusOK {
		t.Fatal("post-insert search failed")
	}
	if got := reg.Counter("retrieval.search.total").Value(); got != total+1 {
		t.Errorf("post-insert engine runs = %d, want %d (cache must miss after a generation bump)", got, total+1)
	}
	if got := reg.Counter("server.coalesce.misses").Value(); got != misses+1 {
		t.Errorf("post-insert misses = %d, want %d", got, misses+1)
	}
}
