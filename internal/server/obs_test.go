package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"figfusion/internal/dataset"
	"figfusion/internal/mrf"
	"figfusion/internal/retrieval"
)

// TestMetricsShape drives a known request sequence and pins what
// /v1/metrics must report afterwards: per-route request/error counters,
// per-route and per-stage latency histograms with non-zero counts, the
// query-path counters, and the cache gauges.
func TestMetricsShape(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	// Known sequence: 3 good searches, 1 bad search, 1 healthz.
	for i := 0; i < 3; i++ {
		if code := doJSON(t, h, "GET", "/v1/search?id=5&k=4", nil, nil); code != http.StatusOK {
			t.Fatalf("warm search %d: status = %d", i, code)
		}
	}
	if code := doJSON(t, h, "GET", "/v1/search", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad search: status = %d", code)
	}
	if code := doJSON(t, h, "GET", "/v1/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: status = %d", code)
	}

	var resp MetricsResponse
	if code := doJSON(t, h, "GET", "/v1/metrics", nil, &resp); code != http.StatusOK {
		t.Fatalf("metrics: status = %d", code)
	}
	m := resp.Metrics

	if got := m.Counters["http.search.requests"]; got != 4 {
		t.Errorf("http.search.requests = %d, want 4", got)
	}
	if got := m.Counters["http.search.errors"]; got != 1 {
		t.Errorf("http.search.errors = %d, want 1", got)
	}
	if got := m.Counters["http.healthz.requests"]; got != 1 {
		t.Errorf("http.healthz.requests = %d, want 1", got)
	}
	hs, ok := m.Histograms["http.search.latency"]
	if !ok || hs.Count != 4 || len(hs.Buckets) == 0 {
		t.Errorf("http.search.latency = %+v", hs)
	}

	// Engine-side: the three identical searches coalesce — the first is a
	// cache miss that runs the indexed path once, the other two are served
	// from the generation-stamped result cache without touching the engine.
	if got := m.Counters["retrieval.search.total"]; got != 1 {
		t.Errorf("retrieval.search.total = %d, want 1", got)
	}
	if got := m.Counters["retrieval.search.path.index"]; got != 1 {
		t.Errorf("retrieval.search.path.index = %d, want 1", got)
	}
	if got := m.Counters["retrieval.candidates.scored"]; got == 0 {
		t.Error("retrieval.candidates.scored = 0")
	}
	if got := m.Histograms["retrieval.search.latency"].Count; got != 1 {
		t.Errorf("retrieval.search.latency count = %d, want 1", got)
	}
	if got := m.Counters["server.coalesce.misses"]; got != 1 {
		t.Errorf("server.coalesce.misses = %d, want 1", got)
	}
	if got := m.Counters["server.coalesce.hits"]; got != 2 {
		t.Errorf("server.coalesce.hits = %d, want 2", got)
	}
	for _, stage := range []string{"prepare", "score"} {
		if got := m.Histograms["retrieval.stage."+stage].Count; got == 0 {
			t.Errorf("retrieval.stage.%s count = 0", stage)
		}
	}

	// Scorer cache gauges are folded in as func gauges.
	for _, name := range []string{
		"cache.cosine.hits", "cache.cosine.misses",
		"cache.cors.hits", "cache.cors.misses",
		"cache.smooth.hits", "cache.smooth.misses",
	} {
		if _, ok := m.Gauges[name]; !ok {
			t.Errorf("gauge %s missing", name)
		}
	}

	// Slow log: present, never null, threshold echoed.
	if resp.SlowQueries == nil {
		t.Error("slowQueries is null")
	}
	if resp.SlowThreshold != DefaultOptions().SlowQuery.String() {
		t.Errorf("slowThreshold = %q", resp.SlowThreshold)
	}
}

// TestMetricsDisabled: -metrics=false answers 503 unavailable on
// /v1/metrics and serves searches without a registry.
func TestMetricsDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.Metrics = false
	s, _ := testShardedServerOpts(t, 1, opts)
	if s.Registry() != nil {
		t.Fatal("registry attached despite -metrics=false")
	}
	if code := doJSON(t, s.Handler(), "GET", "/v1/search?id=5&k=4", nil, nil); code != http.StatusOK {
		t.Errorf("search status = %d", code)
	}
	code, resp := doError(t, s.Handler(), "GET", "/v1/metrics")
	if code != http.StatusServiceUnavailable {
		t.Errorf("metrics status = %d, want 503", code)
	}
	if resp.Error.Code != CodeUnavailable {
		t.Errorf("code = %q, want %q", resp.Error.Code, CodeUnavailable)
	}
}

// doError performs a request and decodes the error envelope regardless
// of status class (doJSON skips decoding on 5xx).
func doError(t *testing.T, h http.Handler, method, target string) (int, ErrorResponse) {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, target, rec.Body.String(), err)
	}
	return rec.Code, resp
}

// TestQueryTimeout: an unmeetable -query-timeout cancels the sharded
// search mid-flight and surfaces as 504 deadline_exceeded.
func TestQueryTimeout(t *testing.T) {
	opts := DefaultOptions()
	opts.QueryTimeout = time.Nanosecond
	s, _ := testShardedServerOpts(t, 2, opts)
	code, resp := doError(t, s.Handler(), "GET", "/v1/search?id=5&k=4")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
	if resp.Error.Code != CodeDeadlineExceeded {
		t.Errorf("code = %q, want %q", resp.Error.Code, CodeDeadlineExceeded)
	}
	// Timeouts never enter the coalescer's result cache: the identical
	// retry fails with the same budget rather than replaying a stale error.
	if code, resp := doError(t, s.Handler(), "GET", "/v1/search?id=5&k=4"); code != http.StatusGatewayTimeout {
		t.Errorf("repeat search status = %d, want 504", code)
	} else if resp.Error.Code != CodeDeadlineExceeded {
		t.Errorf("repeat search code = %q", resp.Error.Code)
	}
}

// TestDeprecatedAliases: with -legacy-routes the unversioned routes still
// answer but carry a Deprecation header and count under
// http.deprecated.requests; the /v1 routes carry no such header.
func TestDeprecatedAliases(t *testing.T) {
	opts := DefaultOptions()
	opts.LegacyRoutes = true
	s, _ := testServerOpts(t, opts)
	h := s.Handler()

	req := httptest.NewRequest("GET", "/search?id=5&k=2", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("legacy /search status = %d", rec.Code)
	}
	if rec.Header().Get("Deprecation") != "true" {
		t.Error("legacy /search missing Deprecation header")
	}

	req = httptest.NewRequest("GET", "/v1/search?id=5&k=2", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/search status = %d", rec.Code)
	}
	if rec.Header().Get("Deprecation") != "" {
		t.Error("/v1/search carries a Deprecation header")
	}

	if got := s.Registry().Counter("http.deprecated.requests").Value(); got != 1 {
		t.Errorf("http.deprecated.requests = %d, want 1", got)
	}
}

// TestLegacyRoutesGone: by default the unversioned aliases are retired —
// every one answers 410 with the gone envelope naming its /v1
// replacement, still flagged Deprecation and counted as deprecated
// traffic so operators can see who is hitting them.
func TestLegacyRoutesGone(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	cases := []struct{ method, target, replacement string }{
		{"GET", "/healthz", "/v1/healthz"},
		{"GET", "/search?id=5&k=2", "/v1/search"},
		{"GET", "/object?id=5", "/v1/objects/{id}"},
		{"POST", "/objects", "/v1/objects"},
		{"POST", "/recommend", "/v1/recommend"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, tc.target, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusGone {
			t.Errorf("%s %s: status = %d, want 410", tc.method, tc.target, rec.Code)
			continue
		}
		var resp ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", tc.method, tc.target, rec.Body.String(), err)
		}
		if resp.Error.Code != CodeGone {
			t.Errorf("%s %s: code = %q, want %q", tc.method, tc.target, resp.Error.Code, CodeGone)
		}
		if !strings.Contains(resp.Error.Message, tc.replacement) {
			t.Errorf("%s %s: message %q does not name %s", tc.method, tc.target, resp.Error.Message, tc.replacement)
		}
		if rec.Header().Get("Deprecation") != "true" {
			t.Errorf("%s %s: missing Deprecation header", tc.method, tc.target)
		}
	}
	if got := s.Registry().Counter("http.deprecated.requests").Value(); got != uint64(len(cases)) {
		t.Errorf("http.deprecated.requests = %d, want %d", got, len(cases))
	}
}

// TestEnvelopeOnMuxErrors: 404s and 405s generated by the mux itself
// (no handler involved) still answer the JSON envelope.
func TestEnvelopeOnMuxErrors(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		method, target string
		status         int
		code           string
	}{
		{"GET", "/v1/nope", http.StatusNotFound, CodeNotFound},
		{"DELETE", "/v1/search", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		var resp ErrorResponse
		if got := doJSON(t, s.Handler(), tc.method, tc.target, nil, &resp); got != tc.status {
			t.Errorf("%s %s: status = %d, want %d", tc.method, tc.target, got, tc.status)
		}
		if resp.Error.Code != tc.code {
			t.Errorf("%s %s: code = %q, want %q", tc.method, tc.target, resp.Error.Code, tc.code)
		}
	}
}

// TestObjectV1PathParam: /v1/objects/{id} resolves via the path value.
func TestObjectV1PathParam(t *testing.T) {
	s, _ := testServer(t)
	var resp ObjectResponse
	if code := doJSON(t, s.Handler(), "GET", "/v1/objects/7", nil, &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.ID != 7 {
		t.Errorf("ID = %d", resp.ID)
	}
	var eresp ErrorResponse
	if code := doJSON(t, s.Handler(), "GET", "/v1/objects/zzz", nil, &eresp); code != http.StatusNotFound {
		t.Errorf("bad id status = %d", code)
	}
	if eresp.Error.Code != CodeNotFound {
		t.Errorf("bad id code = %q", eresp.Error.Code)
	}
}

// TestPprofGate: /debug/pprof/ is absent by default and mounts with
// Options.Pprof.
func TestPprofGate(t *testing.T) {
	s, _ := testServer(t)
	if code := doJSON(t, s.Handler(), "GET", "/debug/pprof/", nil, nil); code != http.StatusNotFound {
		t.Errorf("pprof mounted without the flag: status = %d", code)
	}
	opts := DefaultOptions()
	opts.Pprof = true
	sp, _ := testShardedServerOpts(t, 1, opts)
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	sp.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index status = %d", rec.Code)
	}
}

// TestOptionsValidate walks the rejection surface of Options.Validate.
func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	mutate := func(f func(*Options)) Options {
		o := DefaultOptions()
		f(&o)
		return o
	}
	cases := []struct {
		name string
		o    Options
		want string
	}{
		{"empty addr", mutate(func(o *Options) { o.Addr = "" }), "addr"},
		{"zero objects", mutate(func(o *Options) { o.Objects = 0 }), "objects"},
		{"zero shards", mutate(func(o *Options) { o.Shards = 0 }), "shards"},
		{"negative workers", mutate(func(o *Options) { o.Workers = -1 }), "workers"},
		{"negative cap", mutate(func(o *Options) { o.CandidateCap = -1 }), "candidate-cap"},
		{"zero drain", mutate(func(o *Options) { o.Drain = 0 }), "drain"},
		{"negative timeout", mutate(func(o *Options) { o.QueryTimeout = -time.Second }), "query-timeout"},
		{"negative slow", mutate(func(o *Options) { o.SlowQuery = -time.Second }), "slow-query"},
		{"unknown pruning", mutate(func(o *Options) { o.Pruning = "wand" }), "pruning"},
		{"negative inflight", mutate(func(o *Options) { o.MaxInflight = -1 }), "max-inflight"},
		{"negative queue", mutate(func(o *Options) { o.MaxQueue = -1 }), "max-queue"},
		{"negative coalesce cap", mutate(func(o *Options) { o.CoalesceCap = -1 }), "coalesce-cap"},
	}
	for _, tc := range cases {
		err := tc.o.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// A corpus file lifts the generated-corpus requirement.
	withData := mutate(func(o *Options) { o.Data = "corpus.gob"; o.Objects = 0 })
	if err := withData.Validate(); err != nil {
		t.Errorf("data-backed options rejected: %v", err)
	}
	// Every named pruning mode is accepted and resolves; the empty string
	// defaults to exact unpruned search.
	for _, mode := range []string{"off", "blockmax", "blockmax-quantized"} {
		o := mutate(func(o *Options) { o.Pruning = mode })
		if err := o.Validate(); err != nil {
			t.Errorf("pruning=%q rejected: %v", mode, err)
		}
		if m, err := o.PruningMode(); err != nil || m.String() != mode {
			t.Errorf("pruning=%q resolved to %v, %v", mode, m, err)
		}
	}
	empty := mutate(func(o *Options) { o.Pruning = "" })
	if m, err := empty.PruningMode(); err != nil || m != retrieval.PruneOff {
		t.Errorf("empty pruning resolved to %v, %v; want off", m, err)
	}
	if got := DefaultOptions().Pruning; got != retrieval.PruneBlockMax.String() {
		t.Errorf("serving default pruning = %q, want blockmax", got)
	}
}

// TestMetricsPruneCounters: a server fronting a pruned engine reports the
// admission gate's work through the retrieval.prune.* counters on
// /v1/metrics. The engine runs the smoothing-free parameter set where the
// candidate gate is active on the Search path the HTTP handler drives.
func TestMetricsPruneCounters(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 200
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := mrf.DefaultParams()
	params.Alpha = 0
	engine, err := retrieval.NewEngine(d.Model(), retrieval.Config{
		Params:  params,
		Pruning: retrieval.PruneBlockMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New(engine, DefaultOptions()).Handler()
	for i := 0; i < 10; i++ {
		target := fmt.Sprintf("/v1/search?id=%d&k=5", i)
		if code := doJSON(t, h, "GET", target, nil, nil); code != http.StatusOK {
			t.Fatalf("search %d: status = %d", i, code)
		}
	}
	var resp MetricsResponse
	if code := doJSON(t, h, "GET", "/v1/metrics", nil, &resp); code != http.StatusOK {
		t.Fatalf("metrics: status = %d", code)
	}
	m := resp.Metrics
	if got := m.Counters["retrieval.prune.candidates.admitted"]; got == 0 {
		t.Error("retrieval.prune.candidates.admitted = 0")
	}
	if got := m.Counters["retrieval.prune.candidates.skipped"]; got == 0 {
		t.Error("retrieval.prune.candidates.skipped = 0")
	}
	if _, ok := m.Counters["retrieval.prune.blocks.skipped"]; !ok {
		t.Error("retrieval.prune.blocks.skipped missing from /v1/metrics")
	}
}
