package cluster

import (
	"fmt"
	"time"

	"figfusion/internal/obs"
)

// Metric names the cluster registers. Per-node latency histograms carry
// the node number (cluster.node.00.latency, …) so a slow or flapping node
// is visible directly in a metrics snapshot.
const (
	metricSearchTotal  = "cluster.search.total"
	metricNodeRequests = "cluster.node.requests"
	metricNodeErrors   = "cluster.node.errors"
	metricHedgeFired   = "cluster.hedge.fired"
	metricHedgeWon     = "cluster.hedge.won"
	metricFanout       = "cluster.fanout.latency"
	metricStraggler    = "cluster.straggler.gap"
	metricInserts      = "cluster.inserts.total"
)

// clusterMetrics is the router front-end's instrument bundle: fan-out
// latency and straggler gap over nodes (the cluster-level analogue of the
// shard router's per-shard spread), node request/error counters, hedging
// effectiveness, and insert routing counters. Nil = instrumentation off —
// except the per-node latency histograms, which live on the nodes
// themselves because hedge delays derive from them.
type clusterMetrics struct {
	searches  *obs.Counter
	requests  *obs.Counter
	errors    *obs.Counter
	hedged    *obs.Counter
	hedgeWins *obs.Counter
	fanout    *obs.Histogram
	straggler *obs.Histogram
	inserts   *obs.Counter
	nodeIns   []*obs.Counter
}

func (m *clusterMetrics) search() {
	if m == nil {
		return
	}
	m.searches.Inc()
}

func (m *clusterMetrics) request() {
	if m == nil {
		return
	}
	m.requests.Inc()
}

func (m *clusterMetrics) nodeError() {
	if m == nil {
		return
	}
	m.errors.Inc()
}

func (m *clusterMetrics) hedgeFire() {
	if m == nil {
		return
	}
	m.hedged.Inc()
}

func (m *clusterMetrics) hedgeWin() {
	if m == nil {
		return
	}
	m.hedgeWins.Inc()
}

// observeFanout records the per-node latencies of one scatter and their
// straggler gap (only meaningful past one answering node).
func (m *clusterMetrics) observeFanout(durs []time.Duration) {
	if m == nil || len(durs) == 0 {
		return
	}
	min, max := durs[0], durs[0]
	for _, d := range durs {
		m.fanout.Observe(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if len(durs) > 1 {
		m.straggler.Observe(max - min)
	}
}

// insert counts one replicated insert against its owning node.
func (m *clusterMetrics) insert(node int) {
	if m == nil {
		return
	}
	m.inserts.Inc()
	m.nodeIns[node].Inc()
}

// SetMetrics attaches (or detaches, with a nil registry) observability.
// The always-on per-node latency histograms are published into the
// registry rather than created by it; func gauges report how many nodes
// are currently healthy and how many have diverged. Call after
// construction, never concurrently with serving.
func (c *Cluster) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		c.metrics = nil
		return
	}
	m := &clusterMetrics{
		searches:  reg.Counter(metricSearchTotal),
		requests:  reg.Counter(metricNodeRequests),
		errors:    reg.Counter(metricNodeErrors),
		hedged:    reg.Counter(metricHedgeFired),
		hedgeWins: reg.Counter(metricHedgeWon),
		fanout:    reg.Histogram(metricFanout),
		straggler: reg.Histogram(metricStraggler),
		inserts:   reg.Counter(metricInserts),
		nodeIns:   make([]*obs.Counter, len(c.nodes)),
	}
	for i, n := range c.nodes {
		m.nodeIns[i] = reg.Counter(fmt.Sprintf("cluster.node.%02d.inserts", i))
		reg.SetHistogram(fmt.Sprintf("cluster.node.%02d.latency", i), n.latency)
	}
	nodes := c.nodes
	reg.Func("cluster.node.healthy", func() int64 {
		var n int64
		for _, nd := range nodes {
			if nd.healthy.Load() {
				n++
			}
		}
		return n
	})
	reg.Func("cluster.node.divergent", func() int64 {
		var n int64
		for _, nd := range nodes {
			if nd.divergent.Load() {
				n++
			}
		}
		return n
	})
	c.metrics = m
}
