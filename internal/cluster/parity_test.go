// Cluster parity and degraded-mode tests live in the external test
// package: the HTTP legs stand up real figserver handlers, and the server
// package imports cluster, so an internal test file would be an import
// cycle.
package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"figfusion/internal/cluster"
	"figfusion/internal/corr"
	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
	"figfusion/internal/server"
	"figfusion/internal/shard"
)

// testData mirrors the shard package's small deterministic corpus: every
// call generates an independent copy of the identical dataset, so each
// system under comparison (reference engine, every node, every mirror)
// owns a corpus it can mutate.
func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 150
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testSystem(t testing.TB) (*dataset.Dataset, *corr.Model) {
	t.Helper()
	d := testData(t)
	m := d.Model()
	m.TrainThresholds(100, 0.35, rand.New(rand.NewSource(13)))
	return d, m
}

// testNodeRouter builds node `me` of an n-node deployment: its own copy of
// the shared dataset, partitioned by the shared assignment, with two
// internal engine shards so the cluster merge nests over the router merge.
func testNodeRouter(t testing.TB, assign *cluster.Assignment, me int) *shard.Router {
	t.Helper()
	_, m := testSystem(t)
	r, err := shard.NewRouter(m, shard.Config{Shards: 2, Retrieval: retrieval.Config{}, Owns: assign.Owns(me)})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testNodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	return names
}

func testAssignment(t testing.TB, n int) *cluster.Assignment {
	t.Helper()
	assign, err := cluster.NewAssignment(testNodeNames(n))
	if err != nil {
		t.Fatal(err)
	}
	return assign
}

// localCluster assembles an n-node cluster over in-process backends.
func localCluster(t testing.TB, n int) (*cluster.Cluster, *dataset.Dataset) {
	t.Helper()
	assign := testAssignment(t, n)
	nodes := make([]cluster.NodeConfig, n)
	for i := range nodes {
		nodes[i] = cluster.NodeConfig{Name: assign.Names()[i], Backend: cluster.NewLocalBackend(testNodeRouter(t, assign, i))}
	}
	d, m := testSystem(t)
	c, err := cluster.New(cluster.Config{Mirror: m, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

// nodeServer exposes one shard node over loopback HTTP through the real
// figserver handler stack.
func nodeServer(t testing.TB, router *shard.Router) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.NewSharded(router, server.DefaultOptions()).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// httpCluster assembles an n-node cluster whose nodes are real figserver
// handlers behind loopback HTTP — the full wire path: query encoding, JSON
// float round-trips, error envelopes, pooled connections.
func httpCluster(t testing.TB, n int) (*cluster.Cluster, *dataset.Dataset) {
	t.Helper()
	assign := testAssignment(t, n)
	nodes := make([]cluster.NodeConfig, n)
	for i := range nodes {
		ts := nodeServer(t, testNodeRouter(t, assign, i))
		nodes[i] = cluster.NodeConfig{Name: assign.Names()[i], Backend: cluster.NewHTTPBackend(ts.URL)}
	}
	d, m := testSystem(t)
	c, err := cluster.New(cluster.Config{Mirror: m, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, d
}

// clusterSearchBytes serializes the full Search and SearchTA rankings at
// full float precision, in the exact format the shard package's parity
// test uses — and fails the test on any partial answer, since parity runs
// against fully healthy clusters.
func clusterSearchBytes(t testing.TB, c *cluster.Cluster, corpus *media.Corpus, queries []media.ObjectID) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, id := range queries {
		q := corpus.Object(id)
		res := c.Search(q, 10, q.ID)
		if res.Partial {
			t.Fatalf("query %d: unexpected partial result from a healthy cluster", id)
		}
		for _, it := range res.Items {
			fmt.Fprintf(&buf, "%d>%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
		res = c.SearchTA(q, 10, q.ID)
		if res.Partial {
			t.Fatalf("query %d: unexpected partial TA result from a healthy cluster", id)
		}
		for _, it := range res.Items {
			fmt.Fprintf(&buf, "%d~%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// engineSearchBytes is the single-engine reference serialization.
func engineSearchBytes(e *retrieval.Engine, corpus *media.Corpus, queries []media.ObjectID) []byte {
	var buf bytes.Buffer
	for _, id := range queries {
		q := corpus.Object(id)
		for _, it := range e.Search(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d>%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
		for _, it := range e.SearchTA(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d~%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// applyInserts mirrors the shard parity test's mixed insert batch:
// existing tags, brand-new tags (feature interning), users, varying months.
func applyInserts(t *testing.T, ins func(feats []media.Feature, counts []int, month int) (*media.Object, error)) {
	t.Helper()
	for j := 0; j < 10; j++ {
		feats := []media.Feature{
			{Kind: media.Text, Name: fmt.Sprintf("topic%02dtag%02d", j%5, j%8)},
			{Kind: media.Text, Name: fmt.Sprintf("topic%02dtag%02d", (j+1)%5, (j+3)%8)},
			{Kind: media.Text, Name: fmt.Sprintf("freshtag%02d", j)},
		}
		if j%2 == 0 {
			feats = append(feats, media.Feature{Kind: media.User, Name: fmt.Sprintf("u_t%02d_%02d", j%5, j%8)})
		}
		counts := make([]int, len(feats))
		for i := range counts {
			counts[i] = 1 + i%2
		}
		if _, err := ins(feats, counts, j%6); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterScatterGatherParity is the multi-node tier's determinism
// contract, the cluster counterpart of the shard package's
// TestScatterGatherParity: over identical corpora, Search and SearchTA
// results are byte-identical between a single engine, a router over
// in-process LocalBackends, and a router over loopback-HTTP backends at
// 1, 2 and 4 nodes — before a round of replicated inserts and after it.
// The cluster merge nests over each node's own 2-shard merge, so the test
// also covers associativity of the ranked fold.
func TestClusterScatterGatherParity(t *testing.T) {
	refD, refM := testSystem(t)
	ref, err := retrieval.NewEngine(refM, retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]media.ObjectID, 20)
	for i := range queries {
		queries[i] = media.ObjectID(i)
	}
	refBefore := engineSearchBytes(ref, refD.Corpus, queries)

	type sys struct {
		label string
		n     int
		c     *cluster.Cluster
		d     *dataset.Dataset
	}
	var systems []sys
	for _, n := range []int{1, 2, 4} {
		lc, ld := localCluster(t, n)
		systems = append(systems, sys{label: "local", n: n, c: lc, d: ld})
		hc, hd := httpCluster(t, n)
		systems = append(systems, sys{label: "http", n: n, c: hc, d: hd})
	}
	for _, s := range systems {
		if got := clusterSearchBytes(t, s.c, s.d.Corpus, queries); !bytes.Equal(got, refBefore) {
			t.Fatalf("%s nodes=%d: pre-insert results diverge from single engine (%d vs %d bytes)",
				s.label, s.n, len(got), len(refBefore))
		}
	}

	// A round of replicated inserts must preserve parity: the single engine
	// ingests through Engine.Insert, each cluster through the stamped
	// owner-first replication path.
	applyInserts(t, ref.Insert)
	for _, s := range systems {
		applyInserts(t, s.c.Insert)
	}
	grown := append(append([]media.ObjectID(nil), queries...),
		media.ObjectID(150), media.ObjectID(155), media.ObjectID(159))
	refAfter := engineSearchBytes(ref, refD.Corpus, grown)
	if bytes.Equal(refAfter, refBefore) {
		t.Fatal("inserts did not change reference results; parity check is vacuous")
	}
	for _, s := range systems {
		for _, n := range s.c.NodeInfos() {
			if !n.Healthy || n.Divergent {
				t.Fatalf("%s nodes=%d: node %s unhealthy or divergent after replicated inserts: %+v", s.label, s.n, n.Name, n)
			}
		}
		if got := clusterSearchBytes(t, s.c, s.d.Corpus, grown); !bytes.Equal(got, refAfter) {
			t.Fatalf("%s nodes=%d: post-insert results diverge from single engine", s.label, s.n)
		}
	}
}

// TestClusterSearchCancellation pins the cancellation contract: a done
// context fails the query with ctx.Err() — it does not degrade to a
// partial result, over local and HTTP transports alike.
func TestClusterSearchCancellation(t *testing.T) {
	for _, mk := range []struct {
		label string
		build func(testing.TB, int) (*cluster.Cluster, *dataset.Dataset)
	}{
		{"local", localCluster},
		{"http", httpCluster},
	} {
		c, d := mk.build(t, 2)
		q := d.Corpus.Object(0)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := c.SearchContext(ctx, q, 10, q.ID); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: cancelled search returned %v, want context.Canceled", mk.label, err)
		}
		// Cancellation must not have demoted any node: the nodes did
		// nothing wrong.
		c.Probe(context.Background())
		for _, n := range c.NodeInfos() {
			if !n.Healthy {
				t.Errorf("%s: node %s unhealthy after a cancelled query", mk.label, n.Name)
			}
		}
	}
}
