package cluster_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"figfusion/internal/cluster"
	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/obs"
	"figfusion/internal/retrieval"
	"figfusion/internal/server"
	"figfusion/internal/shard"
	"figfusion/internal/topk"
)

// flakyBackend wraps a Backend with a kill switch, so tests can take a
// node down and bring it back without tearing down transport state.
type flakyBackend struct {
	cluster.Backend
	down atomic.Bool
}

var errNodeDown = errors.New("flaky: node is down")

func (f *flakyBackend) Search(ctx context.Context, req *cluster.SearchRequest) ([]topk.Item, error) {
	if f.down.Load() {
		return nil, errNodeDown
	}
	return f.Backend.Search(ctx, req)
}

func (f *flakyBackend) Insert(ctx context.Context, req *cluster.InsertRequest) (int64, error) {
	if f.down.Load() {
		return 0, errNodeDown
	}
	return f.Backend.Insert(ctx, req)
}

func (f *flakyBackend) Objects(ctx context.Context) (int, error) {
	if f.down.Load() {
		return 0, errNodeDown
	}
	return f.Backend.Objects(ctx)
}

// flakyCluster builds an n-node local cluster whose backends can be killed
// and revived, returning the node routers for direct tampering and replay.
func flakyCluster(t testing.TB, n int) (*cluster.Cluster, *dataset.Dataset, []*flakyBackend, []*shard.Router) {
	t.Helper()
	assign := testAssignment(t, n)
	backends := make([]*flakyBackend, n)
	routers := make([]*shard.Router, n)
	nodes := make([]cluster.NodeConfig, n)
	for i := range nodes {
		routers[i] = testNodeRouter(t, assign, i)
		backends[i] = &flakyBackend{Backend: cluster.NewLocalBackend(routers[i])}
		nodes[i] = cluster.NodeConfig{Name: assign.Names()[i], Backend: backends[i]}
	}
	d, m := testSystem(t)
	c, err := cluster.New(cluster.Config{Mirror: m, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return c, d, backends, routers
}

// TestAssignmentPartition pins the partition contract: NodeFor is a pure
// deterministic function of the node-name list, the per-node Owns
// predicates are disjoint and exhaustive, and every node owns something at
// realistic corpus sizes.
func TestAssignmentPartition(t *testing.T) {
	const n, objects = 4, 2000
	a := testAssignment(t, n)
	b := testAssignment(t, n)
	counts := make([]int, n)
	for id := 0; id < objects; id++ {
		oid := media.ObjectID(id)
		owner := a.NodeFor(oid)
		if got := b.NodeFor(oid); got != owner {
			t.Fatalf("object %d: two assignments over the same names disagree (%d vs %d)", id, owner, got)
		}
		owners := 0
		for node := 0; node < n; node++ {
			if a.Owns(node)(oid) {
				owners++
				if node != owner {
					t.Fatalf("object %d: owned by node %d but NodeFor says %d", id, node, owner)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("object %d has %d owners, want exactly 1", id, owners)
		}
		counts[owner]++
	}
	for node, got := range counts {
		if got == 0 {
			t.Fatalf("node %d owns no objects out of %d — degenerate partition", node, objects)
		}
	}
	if _, err := cluster.NewAssignment([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate node names were accepted")
	}
	if _, err := cluster.NewAssignment(nil); err == nil {
		t.Fatal("empty node list was accepted")
	}
}

// TestClusterDegradedPartialResults pins the acceptance scenario: killing
// a node mid-serving degrades searches to flagged partial results instead
// of failures, and killing every node fails with ErrUnavailable.
func TestClusterDegradedPartialResults(t *testing.T) {
	c, d, backends, _ := flakyCluster(t, 3)
	q := d.Corpus.Object(3)
	res := c.Search(q, 10, q.ID)
	if res.Partial || len(res.Items) == 0 {
		t.Fatalf("healthy cluster answered partial=%v with %d items", res.Partial, len(res.Items))
	}
	full := res.Items

	backends[1].down.Store(true)
	res = c.Search(q, 10, q.ID)
	if !res.Partial {
		t.Fatal("search with a dead node was not flagged partial")
	}
	if len(res.Items) == 0 {
		t.Fatal("partial result carried no items from the surviving nodes")
	}
	if len(res.Items) > len(full) {
		t.Fatalf("partial result has %d items, full had %d", len(res.Items), len(full))
	}
	infos := c.NodeInfos()
	if infos[1].Healthy {
		t.Fatal("dead node still marked healthy after a failed search")
	}
	// Subsequent searches skip the dead node without contacting it.
	if res = c.Search(q, 10, q.ID); !res.Partial {
		t.Fatal("follow-up search was not flagged partial")
	}

	backends[0].down.Store(true)
	backends[2].down.Store(true)
	if _, err := c.SearchContext(context.Background(), q, 10, q.ID); !errors.Is(err, cluster.ErrUnavailable) {
		t.Fatalf("all-nodes-dead search returned %v, want ErrUnavailable", err)
	}

	// Revival: probes restore the nodes and full results resume.
	for _, b := range backends {
		b.down.Store(false)
	}
	c.Probe(context.Background())
	for i, ni := range c.NodeInfos() {
		if !ni.Healthy || ni.Divergent {
			t.Fatalf("node %d not restored by probe: %+v", i, ni)
		}
	}
	res = c.Search(q, 10, q.ID)
	if res.Partial {
		t.Fatal("search still partial after all nodes revived")
	}
}

// TestClusterDivergenceAndReplay drives the generation-stamp protocol end
// to end: a node that misses a replicated insert is marked divergent and
// skipped (searches degrade to partial), probes alone cannot clear it
// while its corpus size disagrees with the mirror, and once an operator
// replays the missed insert (stamped, through InsertAt) the next probe
// restores it.
func TestClusterDivergenceAndReplay(t *testing.T) {
	c, _, backends, routers := flakyCluster(t, 2)
	feats := []media.Feature{{Kind: media.Text, Name: "divergence-probe-tag"}}
	counts := []int{1}

	// Kill the node that does NOT own the next object ID, so the insert
	// commits on the owner and the dead node misses the replication.
	nextID := media.ObjectID(c.Model().Stats.Corpus().Len())
	lost := 1 - c.Assignment().NodeFor(nextID)
	backends[lost].down.Store(true)
	o, err := c.Insert(feats, counts, 2)
	if err != nil {
		t.Fatalf("insert with down non-owner failed: %v", err)
	}
	if !c.NodeInfos()[lost].Divergent {
		t.Fatal("node that missed a replicated insert was not marked divergent")
	}

	// Back up, but still missing the insert: probe must keep it divergent.
	backends[lost].down.Store(false)
	c.Probe(context.Background())
	ni := c.NodeInfos()[lost]
	if !ni.Healthy {
		t.Fatal("revived node not marked healthy by probe")
	}
	if !ni.Divergent {
		t.Fatal("probe cleared divergence while the node's corpus still disagrees with the mirror")
	}
	q := o
	if res := c.Search(q, 10, -1); !res.Partial {
		t.Fatal("search over a divergent node was not flagged partial")
	}

	// Stale stamps refuse directly at the node.
	wrongExpect := routers[lost].Model().Stats.Corpus().Len() + 5
	if _, err := backends[lost].Insert(context.Background(), &cluster.InsertRequest{
		Features: cluster.EncodeFeatures(feats, counts), Month: 2, Expect: &wrongExpect,
	}); !errors.Is(err, cluster.ErrDiverged) {
		t.Fatalf("stale stamp returned %v, want ErrDiverged", err)
	}

	// Operator replay: apply the missed insert with its original stamp,
	// then probe — the node's corpus matches the mirror again.
	if _, err := routers[lost].InsertAt(feats, counts, 2, int(o.ID)); err != nil {
		t.Fatalf("replaying the missed insert: %v", err)
	}
	c.Probe(context.Background())
	if ni := c.NodeInfos()[lost]; !ni.Healthy || ni.Divergent {
		t.Fatalf("node not restored after replay + probe: %+v", ni)
	}
	if res := c.Search(q, 10, -1); res.Partial {
		t.Fatal("search still partial after the node caught up")
	}
}

// TestSnapshotBootstrapOverHTTP replaces a node from a live peer: stream
// the snapshot set over /v1/admin/snapshot, rebuild a router for the same
// partition with LoadSnapshotStream, and require byte-identical rankings
// from the replacement.
func TestSnapshotBootstrapOverHTTP(t *testing.T) {
	assign := testAssignment(t, 2)
	orig := testNodeRouter(t, assign, 0)
	ts := nodeServer(t, orig)

	rc, err := cluster.FetchSnapshot(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	_, m2 := testSystem(t)
	m2.Thresholds = orig.Model().Thresholds
	repl, man, err := shard.LoadSnapshotStream(m2, shard.Config{Owns: assign.Owns(0)}, rc)
	if err != nil {
		t.Fatal(err)
	}
	if man.Objects != orig.Model().Stats.Corpus().Len() {
		t.Fatalf("manifest cut at %d objects, corpus has %d", man.Objects, orig.Model().Stats.Corpus().Len())
	}
	corpus := orig.Model().Stats.Corpus()
	for id := 0; id < 10; id++ {
		q := corpus.Object(media.ObjectID(id))
		want := orig.Search(q, 10, q.ID)
		got := repl.Search(q, 10, q.ID)
		if len(want) != len(got) {
			t.Fatalf("query %d: %d vs %d results", id, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d rank %d: %+v vs %+v", id, i, want[i], got[i])
			}
		}
	}

	// The stream carries the node's partition; a different node's config
	// must refuse it rather than serve the wrong slice.
	rc2, err := cluster.FetchSnapshot(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	_, m3 := testSystem(t)
	if _, _, err := shard.LoadSnapshotStream(m3, shard.Config{Owns: assign.Owns(1)}, rc2); err == nil {
		t.Fatal("a snapshot of node 0's partition loaded under node 1's config")
	}

	// Standalone (non-sharded) servers refuse to stream.
	_, sm := testSystem(t)
	eng, err := retrieval.NewEngine(sm, retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(server.New(eng, server.DefaultOptions()).Handler())
	t.Cleanup(single.Close)
	if _, err := cluster.FetchSnapshot(context.Background(), single.URL); err == nil {
		t.Fatal("single-engine server streamed a snapshot")
	}
}

// slowBackend adds a fixed delay in front of a Backend — enough for the
// hedge timer to fire on every request.
type slowBackend struct {
	cluster.Backend
	delay time.Duration
}

func (s *slowBackend) Search(ctx context.Context, req *cluster.SearchRequest) ([]topk.Item, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Backend.Search(ctx, req)
}

// TestClusterHedgedRequests pins that hedging fires on slow nodes and
// never changes result bytes: the hedged answer matches an unhedged
// cluster over the same data.
func TestClusterHedgedRequests(t *testing.T) {
	assign := testAssignment(t, 2)
	build := func(hedge time.Duration) (*cluster.Cluster, *dataset.Dataset) {
		nodes := make([]cluster.NodeConfig, 2)
		for i := range nodes {
			var b cluster.Backend = cluster.NewLocalBackend(testNodeRouter(t, assign, i))
			if hedge > 0 {
				b = &slowBackend{Backend: b, delay: 4 * time.Millisecond}
			}
			nodes[i] = cluster.NodeConfig{Name: assign.Names()[i], Backend: b}
		}
		d, m := testSystem(t)
		c, err := cluster.New(cluster.Config{Mirror: m, Nodes: nodes, HedgeAfter: hedge})
		if err != nil {
			t.Fatal(err)
		}
		return c, d
	}
	plain, pd := build(0)
	hedged, hd := build(time.Millisecond)
	reg := obs.NewRegistry()
	hedged.SetMetrics(reg)
	for id := 0; id < 5; id++ {
		q := pd.Corpus.Object(media.ObjectID(id))
		want := plain.Search(q, 10, q.ID)
		hq := hd.Corpus.Object(media.ObjectID(id))
		got := hedged.Search(hq, 10, hq.ID)
		if got.Partial || len(want.Items) != len(got.Items) {
			t.Fatalf("query %d: hedged answer partial=%v len=%d, want len=%d", id, got.Partial, len(got.Items), len(want.Items))
		}
		for i := range want.Items {
			if want.Items[i] != got.Items[i] {
				t.Fatalf("query %d rank %d: hedged %+v vs plain %+v", id, i, got.Items[i], want.Items[i])
			}
		}
	}
	if fired := reg.Snapshot().Counters["cluster.hedge.fired"]; fired == 0 {
		t.Fatal("hedge never fired despite every node being slower than the hedge delay")
	}
}

// TestClusterMetricsNames pins the observability surface: the instruments
// the issue names must all appear in a registry snapshot after serving.
func TestClusterMetricsNames(t *testing.T) {
	c, d, _, _ := flakyCluster(t, 2)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	q := d.Corpus.Object(0)
	c.Search(q, 5, q.ID)
	applyInsertsOne(t, c)
	snap := reg.Snapshot()
	for _, name := range []string{"cluster.search.total", "cluster.node.requests", "cluster.inserts.total"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s not incremented (have %v)", name, snap.Counters)
		}
	}
	for _, name := range []string{"cluster.node.errors", "cluster.hedge.fired", "cluster.hedge.won"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s not registered", name)
		}
	}
	for _, name := range []string{"cluster.fanout.latency", "cluster.node.00.latency", "cluster.node.01.latency"} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %s not registered", name)
		}
	}
	if snap.Histograms["cluster.node.00.latency"].Count == 0 {
		t.Error("per-node latency histogram recorded nothing")
	}
	for _, name := range []string{"cluster.node.healthy", "cluster.node.divergent"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not registered", name)
		}
	}
	if got := snap.Gauges["cluster.node.healthy"]; got != 2 {
		t.Errorf("cluster.node.healthy = %d, want 2", got)
	}
}

func applyInsertsOne(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	if _, err := c.Insert([]media.Feature{{Kind: media.Text, Name: "metrics-tag"}}, []int{1}, 1); err != nil {
		t.Fatal(err)
	}
}
