package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"figfusion/internal/media"
	"figfusion/internal/shard"
	"figfusion/internal/topk"
)

// ErrDiverged marks a node whose corpus no longer matches the router's: a
// stamped insert found the node at the wrong corpus size (over HTTP, a
// 409/conflict envelope). The router stops routing to the node until a
// probe sees it back in sync (or it is re-bootstrapped from a snapshot).
var ErrDiverged = errors.New("cluster: node state has diverged")

// ErrUnavailable marks a query or insert no node could serve.
var ErrUnavailable = errors.New("cluster: no healthy node available")

// Backend is the query/insert surface of one shard node, abstracted over
// transport: LocalBackend serves an in-process shard.Router, HTTPBackend
// speaks the /v1 JSON protocol to a remote figserver. Implementations must
// be safe for concurrent use and honour ctx cancellation.
type Backend interface {
	// Search runs one wire search and returns the node's ranked partial
	// top-k over its partition.
	Search(ctx context.Context, req *SearchRequest) ([]topk.Item, error)
	// Insert applies one replicated insert, returning the assigned object
	// ID. A stamped request (req.Expect set) fails with an error wrapping
	// ErrDiverged when the node's corpus size does not match the stamp.
	Insert(ctx context.Context, req *InsertRequest) (int64, error)
	// Objects reports the node's corpus size — the health and divergence
	// probe.
	Objects(ctx context.Context) (int, error)
	// Close releases transport resources.
	Close() error
}

// LocalBackend adapts an in-process shard.Router to the Backend surface.
// It resolves wire requests exactly as a remote node's handler would —
// same decode path, same corpus lookup — so a cluster over LocalBackends
// is the wire-free reference the HTTP parity tests compare against.
type LocalBackend struct {
	router *shard.Router
}

// NewLocalBackend wraps router.
func NewLocalBackend(router *shard.Router) *LocalBackend {
	return &LocalBackend{router: router}
}

// Router exposes the wrapped router (tests kill and revive nodes around it).
func (b *LocalBackend) Router() *shard.Router { return b.router }

// Search implements Backend.
func (b *LocalBackend) Search(ctx context.Context, req *SearchRequest) ([]topk.Item, error) {
	var q *media.Object
	var rerr error
	b.router.View(func() {
		q, rerr = ResolveQuery(b.router.Model().Stats.Corpus(), req)
	})
	if rerr != nil {
		return nil, rerr
	}
	exclude := media.ObjectID(-1)
	if req.Exclude != nil {
		exclude = media.ObjectID(*req.Exclude)
	}
	if req.TA {
		return b.router.SearchTAContext(ctx, q, req.K, exclude)
	}
	return b.router.SearchContext(ctx, q, req.K, exclude)
}

// Insert implements Backend.
func (b *LocalBackend) Insert(_ context.Context, req *InsertRequest) (int64, error) {
	feats, counts, err := DecodeFeatures(req.Features)
	if err != nil {
		return 0, err
	}
	expect := -1
	if req.Expect != nil {
		expect = *req.Expect
	}
	o, err := b.router.InsertAt(feats, counts, req.Month, expect)
	if err != nil {
		var pre *shard.PreconditionError
		if errors.As(err, &pre) {
			return 0, fmt.Errorf("%w: %v", ErrDiverged, err)
		}
		return 0, err
	}
	return int64(o.ID), nil
}

// Objects implements Backend.
func (b *LocalBackend) Objects(_ context.Context) (int, error) {
	n := 0
	b.router.View(func() { n = b.router.Model().Stats.Corpus().Len() })
	return n, nil
}

// Close implements Backend (nothing to release in-process).
func (b *LocalBackend) Close() error { return nil }

// HTTPBackend speaks the /v1 JSON protocol to a remote figserver node over
// a reusable connection pool. One HTTPBackend per node; requests multiplex
// over pooled keep-alive connections.
type HTTPBackend struct {
	base   string
	client *http.Client
}

// NewHTTPBackend returns a backend for the node at base (a URL such as
// http://host:8080; a bare host:port gets the http scheme).
func NewHTTPBackend(base string) *HTTPBackend {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	transport := &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPBackend{base: base, client: &http.Client{Transport: transport}}
}

// Base returns the node's base URL.
func (b *HTTPBackend) Base() string { return b.base }

// Search implements Backend over POST /v1/search.
func (b *HTTPBackend) Search(ctx context.Context, req *SearchRequest) ([]topk.Item, error) {
	var resp SearchResponse
	if err := b.postJSON(ctx, "/v1/search", req, &resp); err != nil {
		return nil, err
	}
	items := make([]topk.Item, len(resp.Results))
	for i, it := range resp.Results {
		items[i] = topk.Item{ID: media.ObjectID(it.ID), Score: it.Score}
	}
	return items, nil
}

// Insert implements Backend over POST /v1/objects.
func (b *HTTPBackend) Insert(ctx context.Context, req *InsertRequest) (int64, error) {
	var resp struct {
		ID int64 `json:"id"`
	}
	if err := b.postJSON(ctx, "/v1/objects", req, &resp); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Objects implements Backend over GET /v1/healthz.
func (b *HTTPBackend) Objects(ctx context.Context) (int, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/healthz", nil)
	if err != nil {
		return 0, err
	}
	var resp struct {
		Objects int `json:"objects"`
	}
	if err := b.do(httpReq, &resp); err != nil {
		return 0, err
	}
	return resp.Objects, nil
}

// Close implements Backend: drops the pooled connections.
func (b *HTTPBackend) Close() error {
	b.client.CloseIdleConnections()
	return nil
}

// postJSON sends one JSON request body and decodes the JSON response.
func (b *HTTPBackend) postJSON(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	return b.do(httpReq, out)
}

// do executes the request and decodes a success body into out, or an error
// envelope into a Go error — a 409/conflict envelope wraps ErrDiverged so
// the router's divergence handling is transport-agnostic.
func (b *HTTPBackend) do(httpReq *http.Request, out interface{}) error {
	resp, err := b.client.Do(httpReq)
	if err != nil {
		return fmt.Errorf("cluster: %s %s: %w", httpReq.Method, httpReq.URL.Path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if jerr := json.Unmarshal(raw, &envelope); jerr != nil || envelope.Error.Code == "" {
		return fmt.Errorf("cluster: %s %s: HTTP %d", httpReq.Method, httpReq.URL.Path, resp.StatusCode)
	}
	if envelope.Error.Code == "conflict" {
		return fmt.Errorf("%w: %s", ErrDiverged, envelope.Error.Message)
	}
	return fmt.Errorf("cluster: %s %s: %s: %s", httpReq.Method, httpReq.URL.Path, envelope.Error.Code, envelope.Error.Message)
}

// FetchSnapshot streams a node's snapshot set from GET /v1/admin/snapshot
// — the bootstrap source for a replacement node of the same partition.
// The caller must Close the reader; shard.LoadSnapshotStream verifies the
// FSG1 section CRCs as it decodes.
func FetchSnapshot(ctx context.Context, base string) (io.ReadCloser, error) {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/admin/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, fmt.Errorf("cluster: snapshot fetch from %s: HTTP %d: %s", base, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return resp.Body, nil
}
