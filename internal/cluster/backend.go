package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"figfusion/internal/api"
	"figfusion/internal/client"
	"figfusion/internal/media"
	"figfusion/internal/shard"
	"figfusion/internal/topk"
)

// ErrDiverged marks a node whose corpus no longer matches the router's: a
// stamped insert found the node at the wrong corpus size (over HTTP, a
// 409/conflict envelope). The router stops routing to the node until a
// probe sees it back in sync (or it is re-bootstrapped from a snapshot).
var ErrDiverged = errors.New("cluster: node state has diverged")

// ErrUnavailable marks a query or insert no node could serve.
var ErrUnavailable = errors.New("cluster: no healthy node available")

// Backend is the query/insert surface of one shard node, abstracted over
// transport: LocalBackend serves an in-process shard.Router, HTTPBackend
// speaks the /v1 JSON protocol to a remote figserver. Implementations must
// be safe for concurrent use and honour ctx cancellation.
type Backend interface {
	// Search runs one wire search and returns the node's ranked partial
	// top-k over its partition.
	Search(ctx context.Context, req *SearchRequest) ([]topk.Item, error)
	// Insert applies one replicated insert, returning the assigned object
	// ID. A stamped request (req.Expect set) fails with an error wrapping
	// ErrDiverged when the node's corpus size does not match the stamp.
	Insert(ctx context.Context, req *InsertRequest) (int64, error)
	// Objects reports the node's corpus size — the health and divergence
	// probe.
	Objects(ctx context.Context) (int, error)
	// Close releases transport resources.
	Close() error
}

// LocalBackend adapts an in-process shard.Router to the Backend surface.
// It resolves wire requests exactly as a remote node's handler would —
// same decode path, same corpus lookup — so a cluster over LocalBackends
// is the wire-free reference the HTTP parity tests compare against.
type LocalBackend struct {
	router *shard.Router
}

// NewLocalBackend wraps router.
func NewLocalBackend(router *shard.Router) *LocalBackend {
	return &LocalBackend{router: router}
}

// Router exposes the wrapped router (tests kill and revive nodes around it).
func (b *LocalBackend) Router() *shard.Router { return b.router }

// Search implements Backend.
func (b *LocalBackend) Search(ctx context.Context, req *SearchRequest) ([]topk.Item, error) {
	var q *media.Object
	var rerr error
	b.router.View(func() {
		q, rerr = ResolveQuery(b.router.Model().Stats.Corpus(), req)
	})
	if rerr != nil {
		return nil, rerr
	}
	exclude := media.ObjectID(-1)
	if req.Exclude != nil {
		exclude = media.ObjectID(*req.Exclude)
	}
	if req.TA {
		return b.router.SearchTAContext(ctx, q, req.K, exclude)
	}
	return b.router.SearchContext(ctx, q, req.K, exclude)
}

// Insert implements Backend.
func (b *LocalBackend) Insert(_ context.Context, req *InsertRequest) (int64, error) {
	feats, counts, err := DecodeFeatures(req.Features)
	if err != nil {
		return 0, err
	}
	expect := -1
	if req.Expect != nil {
		expect = *req.Expect
	}
	o, err := b.router.InsertAt(feats, counts, req.Month, expect)
	if err != nil {
		var pre *shard.PreconditionError
		if errors.As(err, &pre) {
			return 0, fmt.Errorf("%w: %v", ErrDiverged, err)
		}
		return 0, err
	}
	return int64(o.ID), nil
}

// Objects implements Backend.
func (b *LocalBackend) Objects(_ context.Context) (int, error) {
	n := 0
	b.router.View(func() { n = b.router.Model().Stats.Corpus().Len() })
	return n, nil
}

// Close implements Backend (nothing to release in-process).
func (b *LocalBackend) Close() error { return nil }

// HTTPBackend speaks the /v1 JSON protocol to a remote figserver node
// through the shared typed client (internal/client). One HTTPBackend per
// node; requests multiplex over the client's pooled keep-alive
// connections. Retries are disabled: the router owns failover — a failed
// node is demoted and its partition re-asked elsewhere, so a
// transport-level retry would only double the traffic to a node that is
// already in trouble.
type HTTPBackend struct {
	c *client.Client
}

// NewHTTPBackend returns a backend for the node at base (a URL such as
// http://host:8080; a bare host:port gets the http scheme).
func NewHTTPBackend(base string) *HTTPBackend {
	return &HTTPBackend{c: client.New(base, client.WithRetries(0))}
}

// Base returns the node's base URL.
func (b *HTTPBackend) Base() string { return b.c.Base() }

// Search implements Backend over POST /v1/search.
func (b *HTTPBackend) Search(ctx context.Context, req *SearchRequest) ([]topk.Item, error) {
	resp, err := b.c.Search(ctx, req)
	if err != nil {
		return nil, wireErr(http.MethodPost, "/v1/search", err)
	}
	items := make([]topk.Item, len(resp.Results))
	for i, it := range resp.Results {
		items[i] = topk.Item{ID: media.ObjectID(it.ID), Score: it.Score}
	}
	return items, nil
}

// Insert implements Backend over POST /v1/objects.
func (b *HTTPBackend) Insert(ctx context.Context, req *InsertRequest) (int64, error) {
	resp, err := b.c.Insert(ctx, req)
	if err != nil {
		return 0, wireErr(http.MethodPost, "/v1/objects", err)
	}
	return resp.ID, nil
}

// Objects implements Backend over GET /v1/healthz.
func (b *HTTPBackend) Objects(ctx context.Context) (int, error) {
	resp, err := b.c.Healthz(ctx)
	if err != nil {
		return 0, wireErr(http.MethodGet, "/v1/healthz", err)
	}
	return resp.Objects, nil
}

// Close implements Backend: drops the pooled connections.
func (b *HTTPBackend) Close() error { return b.c.Close() }

// wireErr maps a client error onto the router's error surface: a
// 409/conflict envelope wraps ErrDiverged so divergence handling stays
// transport-agnostic; everything else keeps the method and path for the
// operator's logs.
func wireErr(method, path string, err error) error {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		if apiErr.Code == api.CodeConflict {
			return fmt.Errorf("%w: %s", ErrDiverged, apiErr.Message)
		}
		if apiErr.Code == "" {
			return fmt.Errorf("cluster: %s %s: HTTP %d", method, path, apiErr.Status)
		}
		return fmt.Errorf("cluster: %s %s: %s: %s", method, path, apiErr.Code, apiErr.Message)
	}
	return fmt.Errorf("cluster: %w", err)
}

// FetchSnapshot streams a node's snapshot set from GET /v1/admin/snapshot
// — the bootstrap source for a replacement node of the same partition.
// The caller must Close the reader; shard.LoadSnapshotStream verifies the
// FSG1 section CRCs as it decodes.
func FetchSnapshot(ctx context.Context, base string) (io.ReadCloser, error) {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/admin/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, fmt.Errorf("cluster: snapshot fetch from %s: HTTP %d: %s", base, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return resp.Body, nil
}
