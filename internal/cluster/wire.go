// The cluster tier's wire vocabulary is the shared /v1 contract in
// internal/api: searches and replicated inserts between a router
// front-end and its shard nodes are plain POST /v1/search and
// POST /v1/objects bodies, so a shard node is just a figserver and any
// /v1 client can talk to it. The aliases below keep the cluster package's
// historical names; the structs themselves live in api, where a
// cross-package test pins their JSON field names.
package cluster

import (
	"figfusion/internal/api"
	"figfusion/internal/media"
)

// Feature is one modality-qualified feature count on the wire.
type Feature = api.Feature

// SearchRequest is the POST /v1/search body.
type SearchRequest = api.SearchRequest

// Item is one ranked hit on the wire.
type Item = api.Item

// SearchResponse is the POST /v1/search payload — the wire form, ranked
// (id, score) pairs plus the degraded-answer flag.
type SearchResponse = api.WireSearchResponse

// InsertRequest is the replicated-insert body a router sends each node.
type InsertRequest = api.InsertRequest

// EncodeQuery renders a query object for the wire: corpus objects by ID,
// ad-hoc objects (ID < 0, e.g. text queries) by feature list resolved
// through dict.
func EncodeQuery(dict *media.Dictionary, q *media.Object, k int, exclude media.ObjectID, ta bool) *SearchRequest {
	return api.EncodeQuery(dict, q, k, exclude, ta)
}

// ResolveQuery rebuilds the query object a SearchRequest describes against
// a corpus; see api.ResolveQuery.
func ResolveQuery(corpus *media.Corpus, req *SearchRequest) (*media.Object, error) {
	return api.ResolveQuery(corpus, req)
}

// EncodeFeatures renders an insert's exact feature/count pairs for the
// wire; DecodeFeatures inverts it.
func EncodeFeatures(feats []media.Feature, counts []int) []Feature {
	return api.EncodeFeatures(feats, counts)
}

// DecodeFeatures parses wire features back into the (features, counts)
// pair Corpus.Add consumes.
func DecodeFeatures(wire []Feature) ([]media.Feature, []int, error) {
	return api.DecodeFeatures(wire)
}
