// Wire types of the cluster tier: the JSON bodies that carry searches and
// replicated inserts between a router front-end and its shard nodes over
// the /v1 protocol (POST /v1/search, POST /v1/objects). The encoding is
// parity-preserving: queries travel by corpus ID when the query is a
// corpus object (both sides resolve the same object from their replicated
// corpora) and by (kind, name, count) feature lists otherwise, and scores
// come back as JSON float64 values, which Go marshals in shortest-exact
// form and parses back to the identical bits — so router-over-HTTP results
// are byte-identical to router-over-local.
package cluster

import (
	"fmt"

	"figfusion/internal/media"
)

// Feature is one modality-qualified feature count on the wire.
type Feature struct {
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// SearchRequest is the POST /v1/search body: a query by corpus object ID
// (ID set) or by explicit features (ID nil), the ranking depth, the
// excluded object (nil = none), and the algorithm selector (TA = the
// literal Algorithm 1 threshold path instead of the indexed MRF search).
type SearchRequest struct {
	ID       *int64    `json:"id,omitempty"`
	Features []Feature `json:"features,omitempty"`
	Month    int       `json:"month,omitempty"`
	K        int       `json:"k"`
	Exclude  *int64    `json:"exclude,omitempty"`
	TA       bool      `json:"ta,omitempty"`
}

// Item is one ranked hit on the wire.
type Item struct {
	ID    int64   `json:"id"`
	Score float64 `json:"score"`
}

// SearchResponse is the POST /v1/search payload. Partial marks a degraded
// answer: a router that skipped dead or diverged nodes reports the hits it
// could gather instead of failing the query.
type SearchResponse struct {
	Results []Item `json:"results"`
	Partial bool   `json:"partial,omitempty"`
}

// InsertRequest is the replicated-insert body a router sends each node:
// the object's exact features and counts plus the generation stamp
// (Expect = the router's pre-insert corpus length). A node whose corpus is
// not exactly Expect objects answers 409/conflict instead of applying —
// the divergence signal of multi-node ingestion.
type InsertRequest struct {
	Features []Feature `json:"features"`
	Month    int       `json:"month"`
	Expect   *int      `json:"expect,omitempty"`
}

// EncodeQuery renders a query object for the wire: corpus objects by ID,
// ad-hoc objects (ID < 0, e.g. text queries) by feature list resolved
// through dict.
func EncodeQuery(dict *media.Dictionary, q *media.Object, k int, exclude media.ObjectID, ta bool) *SearchRequest {
	req := &SearchRequest{K: k, TA: ta, Month: q.Month}
	if exclude >= 0 {
		ex := int64(exclude)
		req.Exclude = &ex
	}
	if q.ID >= 0 {
		id := int64(q.ID)
		req.ID = &id
		return req
	}
	req.Features = make([]Feature, 0, len(q.Feats))
	for i, fid := range q.Feats {
		f := dict.Feature(fid)
		req.Features = append(req.Features, Feature{Kind: f.Kind.String(), Name: f.Name, Count: int(q.Counts[i])})
	}
	return req
}

// ResolveQuery rebuilds the query object a SearchRequest describes against
// a corpus: ID requests resolve to the corpus object (erroring when out of
// range), feature requests intern nothing — features the corpus has never
// seen are dropped, exactly as the server's free-text path drops unknown
// terms — and error when nothing matches.
func ResolveQuery(corpus *media.Corpus, req *SearchRequest) (*media.Object, error) {
	if req.ID != nil {
		id := *req.ID
		if id < 0 || id >= int64(corpus.Len()) {
			return nil, fmt.Errorf("query id must identify a corpus object in [0,%d), got %d", corpus.Len(), id)
		}
		return corpus.Object(media.ObjectID(id)), nil
	}
	fcs := make([]media.FeatureCount, 0, len(req.Features))
	for _, f := range req.Features {
		kind, err := parseKind(f.Kind)
		if err != nil {
			return nil, err
		}
		fid, ok := corpus.Dict.Lookup(media.Feature{Kind: kind, Name: f.Name})
		if !ok {
			continue
		}
		count := f.Count
		if count < 1 {
			count = 1
		}
		fcs = append(fcs, media.FeatureCount{FID: fid, Count: uint16(count)})
	}
	if len(fcs) == 0 {
		return nil, fmt.Errorf("no query feature matches the corpus vocabulary")
	}
	return media.NewObject(-1, fcs, req.Month), nil
}

// EncodeFeatures renders an insert's exact feature/count pairs for the
// wire; DecodeFeatures inverts it.
func EncodeFeatures(feats []media.Feature, counts []int) []Feature {
	out := make([]Feature, len(feats))
	for i, f := range feats {
		out[i] = Feature{Kind: f.Kind.String(), Name: f.Name, Count: counts[i]}
	}
	return out
}

// DecodeFeatures parses wire features back into the (features, counts)
// pair Corpus.Add consumes.
func DecodeFeatures(wire []Feature) ([]media.Feature, []int, error) {
	feats := make([]media.Feature, len(wire))
	counts := make([]int, len(wire))
	for i, f := range wire {
		kind, err := parseKind(f.Kind)
		if err != nil {
			return nil, nil, err
		}
		feats[i] = media.Feature{Kind: kind, Name: f.Name}
		counts[i] = f.Count
	}
	return feats, counts, nil
}

// parseKind inverts media.Kind.String.
func parseKind(s string) (media.Kind, error) {
	switch s {
	case "text":
		return media.Text, nil
	case "visual":
		return media.Visual, nil
	case "user":
		return media.User, nil
	case "audio":
		return media.Audio, nil
	}
	return 0, fmt.Errorf("unknown feature kind %q (want text, visual, user or audio)", s)
}
