package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"figfusion/internal/cluster"
	"figfusion/internal/media"
)

// TestClusterStressNodeChurn races scatter-gather searches, replicated
// inserts, and health probes against nodes dying and reviving — the
// cluster-tier entry in the -race CI job. The assertions are structural
// (no data races, no panics, every answer either fails cleanly or carries
// a coherent flag); the byte-level answers under churn are inherently
// timing-dependent and are pinned by the parity and degraded-mode tests
// instead.
func TestClusterStressNodeChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const nodes = 3
	c, d, backends, _ := flakyCluster(t, nodes)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Searchers: hammer the scatter path over a fixed query block.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				// Pin the corpus read against racing mirror appends, as the
				// server's handlers do.
				var q *media.Object
				c.View(func() { q = d.Corpus.Object(media.ObjectID((g*7 + i) % 100)) })
				res, err := c.SearchContext(ctx, q, 10, q.ID)
				if err != nil {
					if errors.Is(err, cluster.ErrUnavailable) || ctx.Err() != nil {
						continue
					}
					t.Errorf("searcher %d: %v", g, err)
					return
				}
				if !res.Partial && len(res.Items) == 0 {
					t.Errorf("searcher %d: full (non-partial) answer with zero items", g)
					return
				}
			}
		}(g)
	}

	// Inserter: replicated inserts interleave with the churn. Inserts may
	// fail when the owner is down (ErrUnavailable once it is marked, a
	// direct node-down failure in the race before) — both are the designed
	// refusal, not an error.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			feats := []media.Feature{{Kind: media.Text, Name: fmt.Sprintf("churn-tag-%03d", i)}}
			if _, err := c.InsertContext(ctx, feats, []int{1}, i%6, -1); err != nil &&
				!errors.Is(err, cluster.ErrUnavailable) && !errors.Is(err, errNodeDown) && ctx.Err() == nil {
				t.Errorf("inserter: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Killer: cycle each node down and back up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 20; round++ {
			b := backends[round%nodes]
			b.down.Store(true)
			time.Sleep(2 * time.Millisecond)
			b.down.Store(false)
			c.Probe(ctx)
		}
	}()

	wg.Wait()

	// Settle: revive everything and let probes restore eligibility. Nodes
	// that missed inserts while down stay divergent by design; they must
	// still be healthy (reachable) and the cluster must answer.
	for _, b := range backends {
		b.down.Store(false)
	}
	c.Probe(context.Background())
	for i, ni := range c.NodeInfos() {
		if !ni.Healthy {
			t.Errorf("node %d unreachable after churn settled: %+v", i, ni)
		}
	}
	q := d.Corpus.Object(0)
	if _, err := c.SearchContext(context.Background(), q, 10, q.ID); err != nil {
		t.Fatalf("cluster cannot answer after churn settled: %v", err)
	}
}
