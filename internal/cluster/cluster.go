// Package cluster is the multi-node serving tier: a router front-end that
// scatter-gathers searches across N shard nodes — in-process or remote
// over the /v1 wire — and replicates inserts to all of them.
//
// The parity contract extends the shard package's: every node runs a
// shard.Router whose Owns predicate restricts indexing to the rendezvous
// partition of one shared node list, while every node's statistics cover
// the whole corpus (inserts replicate everywhere; only the owner indexes).
// Partitions are disjoint and exhaustive and every score is computed from
// corpus-global statistics, so folding the per-node top-k lists under
// topk.MergeRanked's total order reproduces the single-engine ranking byte
// for byte — over LocalBackends and over loopback HTTP alike, because Go's
// JSON float64 round-trip is exact.
//
// Failure policy: a node that errors on a search is marked unhealthy and
// its partition is skipped — the query degrades to a flagged partial
// result instead of failing. A node that misses or refuses a stamped
// insert is marked diverged and skipped until a probe sees its corpus size
// back in line with the router's mirror (typically after an operator
// re-bootstraps it from a peer snapshot). Tail latency is bounded by
// hedged requests: after a per-node p99-derived delay the router fires a
// second identical request at the node and takes whichever answers first —
// identical requests are deterministic, so hedging never changes bytes.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"figfusion/internal/corr"
	"figfusion/internal/media"
	"figfusion/internal/obs"
	"figfusion/internal/shard"
	"figfusion/internal/topk"
)

// NodeConfig names one shard node and the transport to reach it.
type NodeConfig struct {
	Name    string
	Backend Backend
}

// Config assembles a Cluster.
type Config struct {
	// Mirror is the router's own corpus-global model: it resolves and
	// formats queries, stamps replicated inserts, and is the reference the
	// divergence probes compare node corpus sizes against. It must be built
	// from the same dataset as every node's model.
	Mirror *corr.Model
	// Nodes lists the shard nodes in the order the shared -nodes list
	// declares them; the rendezvous assignment hashes their names.
	Nodes []NodeConfig
	// HedgeAfter enables hedged search requests: a node that has not
	// answered after max(HedgeAfter, its observed p99) gets a second
	// identical request, first answer wins. 0 disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the health-probe period for Start (0 = default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one node probe (0 = default 1s).
	ProbeTimeout time.Duration
}

// node is one shard node's runtime state. healthy and divergent are
// independent: an unreachable node is unhealthy; a reachable node whose
// corpus drifted from the mirror is divergent. Either excludes the node
// from serving.
type node struct {
	name      string
	backend   Backend
	healthy   atomic.Bool
	divergent atomic.Bool
	// latency is always on (not just under SetMetrics): the hedging delay
	// derives from its p99.
	latency *obs.Histogram
}

func (n *node) eligible() bool { return n.healthy.Load() && !n.divergent.Load() }

// Cluster is the router front-end over N shard nodes. Construct with New;
// safe for concurrent use.
type Cluster struct {
	mirror *corr.Model
	assign *Assignment
	nodes  []*node

	hedgeAfter   time.Duration
	probeEvery   time.Duration
	probeTimeout time.Duration

	// statsMu guards the mirror's corpus-global state, with the same
	// reader/writer split as shard.Router.statsMu: query resolution and
	// result formatting hold it shared, the mirror phase of a replicated
	// insert holds it exclusively.
	statsMu sync.RWMutex
	// insertMu serializes replicated inserts end to end — the stamp
	// protocol needs the mirror length and the node fan-out to change
	// atomically with respect to other inserts.
	insertMu sync.Mutex

	metrics *clusterMetrics
}

// hedgeMinSamples is how many latency observations a node needs before its
// own p99 (rather than the configured floor) drives the hedge delay.
const hedgeMinSamples = 16

// New assembles a cluster over cfg.Nodes. All nodes start healthy; the
// first failed request or probe demotes them.
func New(cfg Config) (*Cluster, error) {
	if cfg.Mirror == nil {
		return nil, fmt.Errorf("cluster: Config.Mirror must be set")
	}
	names := make([]string, len(cfg.Nodes))
	for i, nc := range cfg.Nodes {
		if nc.Backend == nil {
			return nil, fmt.Errorf("cluster: node %d (%q) has no backend", i, nc.Name)
		}
		names[i] = nc.Name
	}
	assign, err := NewAssignment(names)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		mirror:       cfg.Mirror,
		assign:       assign,
		nodes:        make([]*node, len(cfg.Nodes)),
		hedgeAfter:   cfg.HedgeAfter,
		probeEvery:   cfg.ProbeInterval,
		probeTimeout: cfg.ProbeTimeout,
	}
	if c.probeEvery <= 0 {
		c.probeEvery = 2 * time.Second
	}
	if c.probeTimeout <= 0 {
		c.probeTimeout = time.Second
	}
	for i, nc := range cfg.Nodes {
		n := &node{name: nc.Name, backend: nc.Backend, latency: obs.NewHistogram(obs.DefaultLatencyBuckets())}
		n.healthy.Store(true)
		c.nodes[i] = n
	}
	return c, nil
}

// Model returns the router's mirror model. Reads of the corpus it serves
// must be pinned with View when inserts may race.
func (c *Cluster) Model() *corr.Model { return c.mirror }

// Assignment returns the partition map (shared with shard nodes via the
// node-name list).
func (c *Cluster) Assignment() *Assignment { return c.assign }

// View runs fn while the mirror's corpus-global state is pinned against
// replicated inserts — the hook HTTP handlers use to parse queries and
// format results. fn must not call the cluster's own search or insert
// methods (recursive read-locking deadlocks once a writer queues).
func (c *Cluster) View(fn func()) {
	c.statsMu.RLock()
	defer c.statsMu.RUnlock()
	fn()
}

// corpusLen reads the mirror corpus size under the statistics read lock.
func (c *Cluster) corpusLen() int {
	c.statsMu.RLock()
	defer c.statsMu.RUnlock()
	return c.mirror.Stats.Corpus().Len()
}

// Result is one scatter-gather answer. Partial marks a degraded answer:
// one or more nodes were skipped (dead or diverged), so Items covers only
// the partitions that answered.
type Result struct {
	Items   []topk.Item
	Partial bool
}

// Search scatter-gathers the indexed MRF search across the nodes.
func (c *Cluster) Search(q *media.Object, k int, exclude media.ObjectID) Result {
	out, _ := c.SearchContext(context.Background(), q, k, exclude)
	return out
}

// SearchContext is Search under a context: node requests carry ctx, and a
// done context aborts the scatter with ctx.Err() (node failures degrade to
// a partial result instead).
func (c *Cluster) SearchContext(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) (Result, error) {
	return c.scatter(ctx, c.encode(q, k, exclude, false), k)
}

// SearchTA scatter-gathers the literal Algorithm 1 threshold path.
func (c *Cluster) SearchTA(q *media.Object, k int, exclude media.ObjectID) Result {
	out, _ := c.SearchTAContext(context.Background(), q, k, exclude)
	return out
}

// SearchTAContext is SearchTA under a context, with SearchContext's
// cancellation contract.
func (c *Cluster) SearchTAContext(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) (Result, error) {
	return c.scatter(ctx, c.encode(q, k, exclude, true), k)
}

// encode renders the query for the wire under the mirror's read lock (the
// dictionary may grow under a racing insert).
func (c *Cluster) encode(q *media.Object, k int, exclude media.ObjectID, ta bool) *SearchRequest {
	c.statsMu.RLock()
	defer c.statsMu.RUnlock()
	return EncodeQuery(c.mirror.Stats.Corpus().Dict, q, k, exclude, ta)
}

// scatter fans the request out to every eligible node in parallel, folds
// the per-node top-k lists under MergeRanked's total order, and applies
// the degraded-mode policy: skipped and failed nodes flag the result
// partial, a done ctx fails the query, and no answering node at all fails
// it with ErrUnavailable.
func (c *Cluster) scatter(ctx context.Context, req *SearchRequest, k int) (Result, error) {
	c.metrics.search()
	type nodeOut struct {
		items   []topk.Item
		err     error
		dur     time.Duration
		skipped bool
	}
	outs := make([]nodeOut, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		if !n.eligible() {
			outs[i].skipped = true
			continue
		}
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			start := time.Now()
			items, err := c.callNode(ctx, n, req)
			outs[i] = nodeOut{items: items, err: err, dur: time.Since(start)}
		}(i, n)
	}
	wg.Wait()
	partial := false
	lists := make([][]topk.Item, 0, len(c.nodes))
	var durs []time.Duration
	for i, out := range outs {
		if out.skipped {
			partial = true
			continue
		}
		durs = append(durs, out.dur)
		if out.err != nil {
			if ctx.Err() != nil {
				return Result{}, ctx.Err()
			}
			c.metrics.nodeError()
			c.nodes[i].healthy.Store(false)
			partial = true
			continue
		}
		lists = append(lists, out.items)
	}
	c.metrics.observeFanout(durs)
	if len(lists) == 0 {
		return Result{}, fmt.Errorf("%w: all %d nodes failed or were skipped", ErrUnavailable, len(c.nodes))
	}
	return Result{Items: topk.MergeRanked(lists, k), Partial: partial}, nil
}

// callNode runs one node request, hedged when configured: if the first
// attempt has not answered within the node's hedge delay, an identical
// second attempt races it and the first answer wins (the loser is
// cancelled). Both attempts are the same deterministic computation, so the
// winner's identity never changes result bytes.
func (c *Cluster) callNode(ctx context.Context, n *node, req *SearchRequest) ([]topk.Item, error) {
	c.metrics.request()
	delay := c.hedgeDelay(n)
	if delay <= 0 {
		start := time.Now()
		items, err := n.backend.Search(ctx, req)
		n.latency.Observe(time.Since(start))
		return items, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type attempt struct {
		items  []topk.Item
		err    error
		hedged bool
		dur    time.Duration
	}
	ch := make(chan attempt, 2) // buffered: the losing attempt must not block on send
	run := func(hedged bool) {
		start := time.Now()
		items, err := n.backend.Search(hctx, req)
		ch <- attempt{items: items, err: err, hedged: hedged, dur: time.Since(start)}
	}
	go run(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var first attempt
	select {
	case first = <-ch:
		n.latency.Observe(first.dur)
		return first.items, first.err
	case <-timer.C:
		c.metrics.hedgeFire()
		go run(true)
		first = <-ch
	}
	if first.err != nil {
		// The first finisher failed; the other attempt may still succeed.
		if second := <-ch; second.err == nil {
			first = second
		}
	}
	n.latency.Observe(first.dur)
	if first.err == nil && first.hedged {
		c.metrics.hedgeWin()
	}
	return first.items, first.err
}

// hedgeDelay derives one node's hedge delay: its observed p99 once enough
// samples exist, floored by the configured HedgeAfter; 0 = hedging off.
func (c *Cluster) hedgeDelay(n *node) time.Duration {
	if c.hedgeAfter <= 0 {
		return 0
	}
	snap := n.latency.Snapshot()
	if snap.Count < hedgeMinSamples {
		return c.hedgeAfter
	}
	if p99 := time.Duration(snap.P99Ms * float64(time.Millisecond)); p99 > c.hedgeAfter {
		return p99
	}
	return c.hedgeAfter
}

// Insert replicates one new object to every node (the owner first) and the
// mirror.
func (c *Cluster) Insert(feats []media.Feature, counts []int, month int) (*media.Object, error) {
	return c.InsertContext(context.Background(), feats, counts, month, -1)
}

// InsertContext is the stamped replicated insert. The new object's ID is
// the mirror's pre-insert corpus length; every node request carries it as
// the expect stamp, so a drifted node refuses instead of mis-assigning.
// Order is owner-first: the owning node must index the object for it to be
// retrievable, so its failure fails the insert; after the owner and the
// mirror commit, a non-owner failure only marks that node diverged (its
// statistics missed the append) and the insert still succeeds. When expect
// >= 0 the caller's own stamp is checked against the mirror first.
func (c *Cluster) InsertContext(ctx context.Context, feats []media.Feature, counts []int, month int, expect int) (*media.Object, error) {
	if err := validateInsert(feats, counts); err != nil {
		return nil, err
	}
	c.insertMu.Lock()
	defer c.insertMu.Unlock()
	id := c.corpusLen()
	if expect >= 0 && id != expect {
		return nil, &shard.PreconditionError{Objects: id, Expect: expect}
	}
	wire := &InsertRequest{Features: EncodeFeatures(feats, counts), Month: month, Expect: &id}
	owner := c.assign.NodeFor(media.ObjectID(id))
	own := c.nodes[owner]
	if !own.eligible() {
		return nil, fmt.Errorf("%w: owner node %s of object %d is down or diverged", ErrUnavailable, own.name, id)
	}
	if _, err := own.backend.Insert(ctx, wire); err != nil {
		c.noteInsertFailure(own, err)
		return nil, fmt.Errorf("cluster: insert on owner node %s: %w", own.name, err)
	}
	o, err := c.appendMirror(feats, counts, month)
	if err != nil {
		// validateInsert makes mirror appends infallible in practice; a
		// failure here means owner and mirror have skewed, so stop serving
		// through the owner until a probe or re-bootstrap reconciles.
		own.divergent.Store(true)
		return nil, fmt.Errorf("cluster: mirror append after owner commit: %w", err)
	}
	c.metrics.insert(owner)
	for i, n := range c.nodes {
		if i == owner {
			continue
		}
		if !n.healthy.Load() {
			// A dead node misses this insert; flag it now so it does not
			// serve stale statistics when it comes back.
			n.divergent.Store(true)
			continue
		}
		if _, err := n.backend.Insert(ctx, wire); err != nil {
			c.metrics.nodeError()
			c.noteInsertFailure(n, err)
		}
	}
	return o, nil
}

// noteInsertFailure demotes a node after a failed replicated insert: a
// refused stamp means it had already drifted; any other failure means it
// just missed this insert (and is likely unreachable).
func (c *Cluster) noteInsertFailure(n *node, err error) {
	if errors.Is(err, ErrDiverged) {
		n.divergent.Store(true)
		return
	}
	n.healthy.Store(false)
	n.divergent.Store(true)
}

// validateInsert pre-checks what Corpus.Add would reject, so the mirror
// append after the owner's commit cannot fail on bad input.
func validateInsert(feats []media.Feature, counts []int) error {
	if len(feats) == 0 {
		return fmt.Errorf("cluster: insert needs at least one feature")
	}
	if len(feats) != len(counts) {
		return fmt.Errorf("cluster: %d features but %d counts", len(feats), len(counts))
	}
	for i, n := range counts {
		if n < 1 {
			return fmt.Errorf("cluster: feature %d has count %d, want >= 1", i, n)
		}
	}
	return nil
}

// appendMirror grows the mirror's corpus and statistics under the
// exclusive statistics lock. The mirror carries no index; invalidating the
// cache advances the model generation exactly as a node's append does.
func (c *Cluster) appendMirror(feats []media.Feature, counts []int, month int) (*media.Object, error) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	corpus := c.mirror.Stats.Corpus()
	o, err := corpus.Add(feats, counts, month)
	if err != nil {
		return nil, err
	}
	if err := c.mirror.Stats.Append(o); err != nil {
		return nil, err
	}
	c.mirror.InvalidateCache()
	return o, nil
}

// Start launches the background health-probe loop; it stops when ctx is
// done. Call at most once.
func (c *Cluster) Start(ctx context.Context) {
	go c.probeLoop(ctx)
}

func (c *Cluster) probeLoop(ctx context.Context) {
	ticker := time.NewTicker(c.probeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.Probe(ctx)
		}
	}
}

// Probe runs one health pass over every node: an answering node is
// healthy; an answering node whose corpus size matches the mirror is also
// back in sync, clearing any divergence flag (a node that missed inserts
// stays diverged until re-bootstrapped, since its size cannot catch up on
// its own). Exported so tests and operators can force a pass.
func (c *Cluster) Probe(ctx context.Context) {
	for _, n := range c.nodes {
		pctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
		objects, err := n.backend.Objects(pctx)
		cancel()
		if err != nil {
			n.healthy.Store(false)
			continue
		}
		n.healthy.Store(true)
		if n.divergent.Load() && objects == c.corpusLen() {
			n.divergent.Store(false)
		}
	}
}

// NodeInfo is one node's health snapshot — the per-node stats the server's
// /v1/healthz reports in router mode.
type NodeInfo struct {
	Node      int    `json:"node"`
	Name      string `json:"name"`
	Healthy   bool   `json:"healthy"`
	Divergent bool   `json:"divergent"`
}

// NodeInfos snapshots every node's health state.
func (c *Cluster) NodeInfos() []NodeInfo {
	infos := make([]NodeInfo, len(c.nodes))
	for i, n := range c.nodes {
		infos[i] = NodeInfo{Node: i, Name: n.name, Healthy: n.healthy.Load(), Divergent: n.divergent.Load()}
	}
	return infos
}

// Close releases every backend's transport resources.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
