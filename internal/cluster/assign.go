// Consistent shard→node assignment by rendezvous (highest-random-weight)
// hashing: every object ID scores once against every node name and lives
// on the highest-scoring node. The map is a pure function of the node-name
// list, so a router and its shard nodes agree on the partition by sharing
// one -nodes list, with no coordination service; and removing one node
// reassigns only that node's objects.
package cluster

import (
	"fmt"
	"hash/fnv"

	"figfusion/internal/media"
)

// Assignment is the partition map over an ordered node-name list.
type Assignment struct {
	names []string
	seeds []uint64
}

// NewAssignment builds the map. Names must be non-empty and unique — they
// are the identity the hash scores against, so two nodes sharing a name
// would claim the same partition.
func NewAssignment(names []string) (*Assignment, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: assignment needs at least one node")
	}
	a := &Assignment{names: append([]string(nil), names...), seeds: make([]uint64, len(names))}
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("cluster: node %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", name)
		}
		seen[name] = true
		h := fnv.New64a()
		h.Write([]byte(name))
		a.seeds[i] = h.Sum64()
	}
	return a, nil
}

// Len returns the node count.
func (a *Assignment) Len() int { return len(a.names) }

// Names returns the node-name list in declaration order.
func (a *Assignment) Names() []string { return append([]string(nil), a.names...) }

// NodeFor returns the index of the node owning id: the argmax of the
// per-node rendezvous scores, ties broken to the lower index (the mixer
// makes ties vanishingly rare; the break only needs to be deterministic).
func (a *Assignment) NodeFor(id media.ObjectID) int {
	best, bestScore := 0, mix(a.seeds[0]^uint64(id))
	for i := 1; i < len(a.seeds); i++ {
		if s := mix(a.seeds[i] ^ uint64(id)); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Owns returns node's partition predicate — the shard.Config.Owns value a
// shard node runs under.
func (a *Assignment) Owns(node int) func(media.ObjectID) bool {
	return func(id media.ObjectID) bool { return a.NodeFor(id) == node }
}

// Index returns the position of name in the node list.
func (a *Assignment) Index(name string) (int, error) {
	for i, n := range a.names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cluster: node name %q is not in the node list %v", name, a.names)
}

// mix is the splitmix64 finalizer — the same avalanche shard.ShardOf uses,
// here scrambling (node seed XOR object ID) into a rendezvous score.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
