package audio

import (
	"math"
	"math/rand"
	"testing"
)

func TestExtractFrameDescriptors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	wave := Synthesize([]float64{440}, 4, 0, rng)
	descs, err := ExtractFrameDescriptors(wave)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 4 {
		t.Fatalf("frames = %d, want 4", len(descs))
	}
	// Each descriptor is L1-normalised.
	for f, d := range descs {
		var sum float64
		for _, v := range d {
			if v < 0 {
				t.Fatalf("frame %d: negative energy %v", f, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("frame %d: L1 = %v, want 1", f, sum)
		}
	}
	// The dominant band must be the probe nearest 440 Hz.
	want := 0
	for i, f := range probes {
		if math.Abs(f-440) < math.Abs(probes[want]-440) {
			want = i
		}
	}
	got := 0
	for i, v := range descs[0] {
		if v > descs[0][got] {
			got = i
		}
	}
	if got != want {
		t.Errorf("dominant band = %d (%.0f Hz), want %d (%.0f Hz)", got, probes[got], want, probes[want])
	}
}

func TestExtractTooShort(t *testing.T) {
	if _, err := ExtractFrameDescriptors(make([]float64, FrameSize-1)); err == nil {
		t.Error("want error for short waveform")
	}
}

func TestExtractSilence(t *testing.T) {
	descs, err := ExtractFrameDescriptors(make([]float64, FrameSize*2))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range descs {
		for _, v := range d {
			if v != 0 {
				t.Fatal("silence should give zero descriptors")
			}
		}
	}
}

func TestDifferentChordsSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	low := Synthesize([]float64{220, 330}, 3, 0.05, rng)
	high := Synthesize([]float64{1500, 2200}, 3, 0.05, rng)
	dl, err := ExtractFrameDescriptors(low)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := ExtractFrameDescriptors(high)
	if err != nil {
		t.Fatal(err)
	}
	// Within-chord frames must be closer than cross-chord frames.
	within := dl[0].Distance(dl[1])
	cross := dl[0].Distance(dh[0])
	if within >= cross {
		t.Errorf("within-chord distance %v not below cross-chord %v", within, cross)
	}
}

func TestVocabularySeparatesChords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	chords := [][]float64{{220, 330}, {700, 1050}, {1800, 2700}}
	var samples []Descriptor
	var perChord [][]Descriptor
	for _, chord := range chords {
		wave := Synthesize(chord, 6, 0.05, rng)
		descs, err := ExtractFrameDescriptors(wave)
		if err != nil {
			t.Fatal(err)
		}
		perChord = append(perChord, descs)
		samples = append(samples, descs...)
	}
	voc, err := TrainVocabulary(samples, 3, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	// All frames of one chord quantize to the same audio word, and
	// different chords to different words.
	words := make([]int, len(chords))
	for ci, descs := range perChord {
		w := voc.Quantize(descs[0])
		for _, d := range descs[1:] {
			if voc.Quantize(d) != w {
				t.Fatalf("chord %d frames split across words", ci)
			}
		}
		words[ci] = w
	}
	if words[0] == words[1] || words[1] == words[2] || words[0] == words[2] {
		t.Errorf("chords collide: %v", words)
	}
}

func TestGoertzelMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	frame := make([]float64, FrameSize)
	for i := range frame {
		frame[i] = rng.NormFloat64()
	}
	for _, f := range []float64{200, 440, 1000} {
		got := goertzel(frame, f)
		// Naive DFT magnitude² at the same (non-integer-bin) frequency.
		w := 2 * math.Pi * f / SampleRate
		var re, im float64
		for n, x := range frame {
			re += x * math.Cos(w*float64(n))
			im -= x * math.Sin(w*float64(n))
		}
		want := re*re + im*im
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("goertzel(%v Hz) = %v, want %v", f, got, want)
		}
	}
}

func BenchmarkExtractFrameDescriptors(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	wave := Synthesize([]float64{440, 880}, 8, 0.05, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractFrameDescriptors(wave); err != nil {
			b.Fatal(err)
		}
	}
}
