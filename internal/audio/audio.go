// Package audio is the music-content substrate realising the paper's
// extension claim ("our solution can be easily extended to facilitate other
// social media environments, such as video and music", Section 3.1). It
// mirrors the visual pipeline one-to-one: raw audio frames yield 16-D
// spectral descriptors, k-means clusters them into a vocabulary of "audio
// words" (the audio analogue of [25]'s visual words, as used for music
// discovery in [21]), and a track is represented by the set of audio words
// it contains. Descriptor distance drives intra-type FIG edges exactly as
// for visual words.
//
// Descriptors are computed from scratch with a bank of Goertzel filters —
// single-bin DFT energy probes — over 16 log-spaced bands, a lightweight
// stand-in for the MFCC front ends of the music-retrieval literature.
package audio

import (
	"fmt"
	"math"
	"math/rand"

	"figfusion/internal/vq"
)

// SampleRate is the (synthetic) sampling rate in Hz.
const SampleRate = 8000

// FrameSize is the number of samples per analysis frame (64 ms at 8 kHz).
const FrameSize = 512

// NumBands is the number of spectral bands per descriptor (= vq.Dim).
const NumBands = vq.Dim

// Descriptor is one frame's spectral energy profile.
type Descriptor = vq.Descriptor

// Vocabulary is a trained audio-word codebook.
type Vocabulary = vq.Vocabulary

// TrainVocabulary clusters frame descriptors into k audio words.
func TrainVocabulary(samples []Descriptor, k, maxIter int, rng *rand.Rand) (*Vocabulary, error) {
	return vq.TrainVocabulary(samples, k, maxIter, rng)
}

// TrainVocabularyWorkers is TrainVocabulary with a bounded fan-out
// (0 = NumCPU); output is byte-identical at any worker count.
func TrainVocabularyWorkers(samples []Descriptor, k, maxIter int, rng *rand.Rand, workers int) (*Vocabulary, error) {
	return vq.TrainVocabularyWorkers(samples, k, maxIter, rng, workers)
}

// bandFrequencies returns the 16 log-spaced probe frequencies between
// 100 Hz and the Nyquist margin.
func bandFrequencies() [NumBands]float64 {
	var freqs [NumBands]float64
	lo, hi := 100.0, float64(SampleRate)/2*0.9
	ratio := math.Pow(hi/lo, 1/float64(NumBands-1))
	f := lo
	for i := range freqs {
		freqs[i] = f
		f *= ratio
	}
	return freqs
}

var probes = bandFrequencies()

// goertzel returns the squared magnitude of the DFT of frame at frequency
// f, via the Goertzel recurrence.
func goertzel(frame []float64, f float64) float64 {
	w := 2 * math.Pi * f / SampleRate
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range frame {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	return s1*s1 + s2*s2 - coeff*s1*s2
}

// ExtractFrameDescriptors splits the waveform into FrameSize frames (a
// trailing partial frame is dropped) and computes one descriptor per frame:
// the Goertzel energies at the 16 probe frequencies, L1-normalised so the
// descriptor captures spectral shape rather than loudness. Silent frames
// yield the zero descriptor.
func ExtractFrameDescriptors(wave []float64) ([]Descriptor, error) {
	if len(wave) < FrameSize {
		return nil, fmt.Errorf("audio: waveform of %d samples shorter than one frame (%d)", len(wave), FrameSize)
	}
	var descs []Descriptor
	for off := 0; off+FrameSize <= len(wave); off += FrameSize {
		frame := wave[off : off+FrameSize]
		var d Descriptor
		var total float64
		for i, f := range probes {
			e := goertzel(frame, f)
			if e < 0 {
				e = 0 // numerical noise
			}
			d[i] = e
			total += e
		}
		if total > 0 {
			d.Scale(1 / total)
		}
		descs = append(descs, d)
	}
	return descs, nil
}

// Synthesize renders nFrames of audio as a sum of sinusoids at the given
// frequencies with unit amplitudes, plus white noise of the given standard
// deviation — the synthetic stand-in for real music clips (a "chord" per
// genre palette entry).
func Synthesize(freqs []float64, nFrames int, noise float64, rng *rand.Rand) []float64 {
	n := nFrames * FrameSize
	wave := make([]float64, n)
	for _, f := range freqs {
		w := 2 * math.Pi * f / SampleRate
		phase := rng.Float64() * 2 * math.Pi
		for i := range wave {
			wave[i] += math.Sin(w*float64(i) + phase)
		}
	}
	if noise > 0 {
		for i := range wave {
			wave[i] += rng.NormFloat64() * noise
		}
	}
	return wave
}
