// Package vision implements the visual-content substrate of the paper
// (Section 5.1.3): raw block features extracted from images are clustered by
// k-means into a vocabulary of "visual words", and each image is represented
// by the set of visual words it contains. Each visual word is a 16-D feature
// vector; Euclidean distance between words drives intra-type edges in the
// Feature Interaction Graph (Section 3.2). The descriptor and codebook
// machinery is the shared vector-quantization layer of internal/vq; this
// package adds the image model and the block-feature extraction.
//
// The paper uses SIFT-like raw features from Flickr photographs. Operating
// offline without an image corpus, this package processes synthetic
// grayscale images whose block statistics follow per-topic mixtures (see
// internal/dataset), which preserves the property the FIG model consumes:
// images about the same topic share visual words, and visual words of the
// same topic are close in descriptor space.
package vision

import (
	"fmt"
	"math"
	"math/rand"

	"figfusion/internal/vq"
)

// DescriptorDim is the dimensionality of a block descriptor.
const DescriptorDim = vq.Dim

// Descriptor is one raw block feature vector.
type Descriptor = vq.Descriptor

// Vocabulary is a trained visual-word codebook: each centroid is one visual
// word. The paper clusters raw block features into 1022 visual words with
// k-means (Section 5.1.3).
type Vocabulary = vq.Vocabulary

// ErrTooFewSamples is returned when training has fewer samples than words.
var ErrTooFewSamples = vq.ErrTooFewSamples

// TrainVocabulary clusters block descriptors into k visual words (k-means++
// seeding, Lloyd iterations).
func TrainVocabulary(samples []Descriptor, k, maxIter int, rng *rand.Rand) (*Vocabulary, error) {
	return vq.TrainVocabulary(samples, k, maxIter, rng)
}

// TrainVocabularyWorkers is TrainVocabulary with a bounded fan-out
// (0 = NumCPU); output is byte-identical at any worker count.
func TrainVocabularyWorkers(samples []Descriptor, k, maxIter int, rng *rand.Rand, workers int) (*Vocabulary, error) {
	return vq.TrainVocabularyWorkers(samples, k, maxIter, rng, workers)
}

// Image is a synthetic grayscale image with intensities in [0, 1].
type Image struct {
	W, H int
	Pix  []float64 // row-major, len == W*H
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the intensity at (x, y).
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set writes the intensity at (x, y), clamping to [0, 1].
func (im *Image) Set(x, y int, v float64) {
	im.Pix[y*im.W+x] = math.Max(0, math.Min(1, v))
}

// BlockSize is the side length of the uniformly distributed equal-size
// blocks the paper divides images into (16×16 pixels, Section 5.1.3).
const BlockSize = 16

// ExtractBlockDescriptors divides the image into BlockSize×BlockSize blocks
// and computes one 16-D descriptor per block: the mean intensities of the
// block's 4×4 sub-cells. Blocks that would overrun the image are skipped, so
// images must be at least one block in each dimension to yield features.
func ExtractBlockDescriptors(im *Image) ([]Descriptor, error) {
	if im.W < BlockSize || im.H < BlockSize {
		return nil, fmt.Errorf("vision: image %dx%d smaller than block size %d", im.W, im.H, BlockSize)
	}
	const cells = 4                // 4×4 grid of sub-cells per block
	const cell = BlockSize / cells // 4 pixels per sub-cell side
	var descs []Descriptor
	for by := 0; by+BlockSize <= im.H; by += BlockSize {
		for bx := 0; bx+BlockSize <= im.W; bx += BlockSize {
			var d Descriptor
			for cy := 0; cy < cells; cy++ {
				for cx := 0; cx < cells; cx++ {
					var sum float64
					for y := 0; y < cell; y++ {
						for x := 0; x < cell; x++ {
							sum += im.At(bx+cx*cell+x, by+cy*cell+y)
						}
					}
					d[cy*cells+cx] = sum / (cell * cell)
				}
			}
			descs = append(descs, d)
		}
	}
	return descs, nil
}
