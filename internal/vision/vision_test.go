package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDescriptorDistance(t *testing.T) {
	var a, b Descriptor
	a[0] = 3
	b[1] = 4
	if got := a.Distance(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := a.Distance(a); got != 0 {
		t.Errorf("self distance = %v, want 0", got)
	}
}

func TestDescriptorDistanceMetricProperties(t *testing.T) {
	// Map arbitrary float64s into a bounded range so squaring cannot
	// overflow; the metric laws are about finite geometry.
	gen := func(vals [DescriptorDim]float64) Descriptor {
		var d Descriptor
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			d[i] = math.Mod(v, 1000)
		}
		return d
	}
	symmetric := func(x, y [DescriptorDim]float64) bool {
		a, b := gen(x), gen(y)
		return math.Abs(a.Distance(b)-b.Distance(a)) < 1e-9
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	triangle := func(x, y, z [DescriptorDim]float64) bool {
		a, b, c := gen(x), gen(y), gen(z)
		ab, bc, ac := a.Distance(b), b.Distance(c), a.Distance(c)
		return ac <= ab+bc+1e-6*(1+ac)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestImageSetClamps(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(0, 0, 2)
	if im.At(0, 0) != 1 {
		t.Errorf("Set should clamp to 1, got %v", im.At(0, 0))
	}
	im.Set(1, 1, -3)
	if im.At(1, 1) != 0 {
		t.Errorf("Set should clamp to 0, got %v", im.At(1, 1))
	}
}

func TestExtractBlockDescriptors(t *testing.T) {
	im := NewImage(BlockSize*2, BlockSize)
	// Left block all 0.5, right block all 1.0.
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			if x < BlockSize {
				im.Set(x, y, 0.5)
			} else {
				im.Set(x, y, 1.0)
			}
		}
	}
	descs, err := ExtractBlockDescriptors(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 2 {
		t.Fatalf("got %d descriptors, want 2", len(descs))
	}
	for i := range descs[0] {
		if math.Abs(descs[0][i]-0.5) > 1e-12 {
			t.Errorf("left block cell %d = %v, want 0.5", i, descs[0][i])
		}
		if math.Abs(descs[1][i]-1.0) > 1e-12 {
			t.Errorf("right block cell %d = %v, want 1.0", i, descs[1][i])
		}
	}
}

func TestExtractBlockDescriptorsTooSmall(t *testing.T) {
	if _, err := ExtractBlockDescriptors(NewImage(8, 8)); err == nil {
		t.Error("want error for image smaller than one block")
	}
}

func TestExtractBlockDescriptorsIgnoresPartialBlocks(t *testing.T) {
	im := NewImage(BlockSize+7, BlockSize+3)
	descs, err := ExtractBlockDescriptors(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 {
		t.Errorf("got %d descriptors, want 1 (partial blocks skipped)", len(descs))
	}
}

// clusteredSamples returns n samples around each of the given centers with
// small noise.
func clusteredSamples(centers []Descriptor, n int, noise float64, rng *rand.Rand) []Descriptor {
	var out []Descriptor
	for _, c := range centers {
		for i := 0; i < n; i++ {
			d := c
			for j := range d {
				d[j] += rng.NormFloat64() * noise
			}
			out = append(out, d)
		}
	}
	return out
}

func wellSeparatedCenters(k int) []Descriptor {
	centers := make([]Descriptor, k)
	for i := range centers {
		centers[i][i%DescriptorDim] = 10 * float64(1+i/DescriptorDim)
	}
	return centers
}

func TestTrainVocabularyRecoverscenters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := wellSeparatedCenters(4)
	samples := clusteredSamples(centers, 50, 0.05, rng)
	voc, err := TrainVocabulary(samples, 4, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if voc.Size() != 4 {
		t.Fatalf("Size = %d, want 4", voc.Size())
	}
	// Every true center must have a vocabulary word within noise distance.
	for i, c := range centers {
		w := voc.Quantize(c)
		if d := voc.Centroids[w].Distance(c); d > 0.5 {
			t.Errorf("center %d: nearest word at distance %v, want < 0.5", i, d)
		}
	}
	// Samples from the same cluster quantize to the same word.
	for ci := range centers {
		first := voc.Quantize(samples[ci*50])
		for s := 1; s < 50; s++ {
			if got := voc.Quantize(samples[ci*50+s]); got != first {
				t.Fatalf("cluster %d sample %d quantized to %d, want %d", ci, s, got, first)
			}
		}
	}
}

func TestTrainVocabularyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]Descriptor, 3)
	if _, err := TrainVocabulary(samples, 0, 10, rng); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := TrainVocabulary(samples, 5, 10, rng); err == nil {
		t.Error("want error for too few samples")
	}
}

func TestTrainVocabularyDegenerateSamples(t *testing.T) {
	// All samples identical: training must still return k centroids.
	rng := rand.New(rand.NewSource(2))
	samples := make([]Descriptor, 10)
	voc, err := TrainVocabulary(samples, 3, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if voc.Size() != 3 {
		t.Errorf("Size = %d, want 3", voc.Size())
	}
}

func TestQuantizeAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	centers := wellSeparatedCenters(3)
	samples := clusteredSamples(centers, 30, 0.05, rng)
	voc, err := TrainVocabulary(samples, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	words := voc.QuantizeAll(samples[:5])
	if len(words) != 5 {
		t.Fatalf("len = %d, want 5", len(words))
	}
	for i, w := range words {
		if w != voc.Quantize(samples[i]) {
			t.Errorf("QuantizeAll[%d] = %d disagrees with Quantize", i, w)
		}
	}
}

func TestWordSimilarityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	centers := wellSeparatedCenters(3)
	samples := clusteredSamples(centers, 20, 0.05, rng)
	voc, err := TrainVocabulary(samples, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < voc.Size(); i++ {
		for j := 0; j < voc.Size(); j++ {
			s := voc.WordSimilarity(i, j)
			if s <= 0 || s > 1 {
				t.Errorf("WordSimilarity(%d,%d) = %v, out of (0,1]", i, j, s)
			}
			if i == j && s != 1 {
				t.Errorf("self similarity = %v, want 1", s)
			}
		}
	}
}

func BenchmarkQuantize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	centers := wellSeparatedCenters(16)
	samples := clusteredSamples(centers, 20, 0.1, rng)
	voc, err := TrainVocabulary(samples, 16, 30, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		voc.Quantize(samples[i%len(samples)])
	}
}

func BenchmarkTrainVocabulary(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	centers := wellSeparatedCenters(8)
	samples := clusteredSamples(centers, 100, 0.1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainVocabulary(samples, 8, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}
