// Package floatcache provides the sharded, generation-stamped float64
// memoisation cache behind the query hot path. The memoised quantities
// (correlation cosines, clique CorS weights, per-(feature, object)
// smoothing sums) are all derived from corpus-global statistics, which
// gives them two properties this cache encodes:
//
//   - They are read by every concurrent query, so a single global mutex
//     serialises the whole serving path. Entries are striped over
//     fixed-size shards by key hash, each behind its own RWMutex, so
//     concurrent readers of different shards never contend.
//   - They all become stale at once when the corpus grows. Instead of
//     relying on every cache owner being explicitly Reset (the stale-cache
//     hazard: engines cloned via WithParams share the model but own their
//     scorer), each shard is stamped with the generation of the statistics
//     its entries were computed from. A lookup under a newer generation is
//     a miss, and the next store under the newer generation drops the
//     shard wholesale — caches self-invalidate.
//
// Soundness caveat: the statistics a value is computed from and the
// generation counter are read at different instants, so a stamp is only
// guaranteed truthful when statistics mutation is externally serialized
// against readers — which the engine provides (Engine.Insert is documented
// as not safe concurrently with searches; corr.Stats.Append then
// InvalidateCache happen before any post-insert read). Callers that fill
// these caches additionally re-load the generation after computing and
// discard on a mismatch, which narrows — but, absent that serialization,
// cannot eliminate — the window in which a value derived from post-insert
// statistics could be stored under the pre-insert stamp.
package floatcache

import (
	"sync"
	"sync/atomic"
)

// numShards is the stripe width. Power of two so the hash folds with a
// mask; 32 shards keep worst-case contention low well past the core
// counts this engine targets while costing only a few hundred bytes per
// cache when idle.
const numShards = 32

// Cache is a sharded map[K]float64 with generation-stamped shards.
// The zero value is unusable; construct with New. Safe for concurrent use.
type Cache[K comparable] struct {
	hash   func(K) uint64
	shards [numShards]shard[K]
}

type shard[K comparable] struct {
	mu  sync.RWMutex
	gen uint64
	m   map[K]float64
	// Hit/miss tallies live per shard so concurrent readers of different
	// shards never share a counter cache line; Stats sums them on demand.
	// Misses are exact (a miss precedes an expensive recompute, so one
	// atomic add is noise); hits are sampled — see hitSampleShift.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// hitSampleShift controls hit-count sampling: only keys whose top
// hitSampleShift hash bits are zero (1 in 2^hitSampleShift) bump the hit
// counter, and Stats scales the tally back up. The hit path runs tens of
// thousands of times per query inside MRF scoring, where an atomic
// read-modify-write per call costs double-digit percent of query
// throughput; sampling reduces that to a shift-and-compare on a hash the
// lookup has already computed. The shard index uses the low hash bits,
// so sampling on the top bits stays independent of shard placement.
const hitSampleShift = 5

// New returns a cache distributing keys with the given hash function.
func New[K comparable](hash func(K) uint64) *Cache[K] {
	return &Cache[K]{hash: hash}
}

func (c *Cache[K]) shardFor(key K) *shard[K] {
	return &c.shards[c.hash(key)&(numShards-1)]
}

// Get returns the value stored for key at generation gen. Values stored
// under an older generation are invisible (the shard self-invalidates on
// the next Put instead of being cleared eagerly).
func (c *Cache[K]) Get(gen uint64, key K) (float64, bool) {
	h := c.hash(key)
	sh := &c.shards[h&(numShards-1)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.gen != gen || sh.m == nil {
		sh.misses.Add(1)
		return 0, false
	}
	v, ok := sh.m[key]
	if ok {
		if h>>(64-hitSampleShift) == 0 {
			sh.hits.Add(1)
		}
	} else {
		sh.misses.Add(1)
	}
	return v, ok
}

// Put stores a value computed from generation-gen statistics. A shard
// still holding an older generation is dropped and restamped; a value
// computed against statistics older than the shard's is discarded (it
// lost the race with an invalidation and must not poison the new
// generation).
func (c *Cache[K]) Put(gen uint64, key K, v float64) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.gen > gen {
		return
	}
	if sh.gen < gen || sh.m == nil {
		sh.m = make(map[K]float64)
		sh.gen = gen
	}
	sh.m[key] = v
}

// Reset drops every shard's entries immediately, keeping generation
// stamps. Generation bumps make explicit resets unnecessary for
// correctness; Reset exists to release memory eagerly.
func (c *Cache[K]) Reset() {
	for i := range c.shards {
		c.shards[i].reset()
	}
}

func (sh *shard[K]) reset() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m = nil
}

// Len returns the total number of live entries (diagnostics only).
func (c *Cache[K]) Len() int {
	total := 0
	for i := range c.shards {
		total += c.shards[i].length()
	}
	return total
}

func (sh *shard[K]) length() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.m)
}

// Stats returns the cumulative hit and miss counts across all shards —
// the observability hook the serving metrics expose. Misses are exact;
// hits are a sampled estimate (1-in-2^hitSampleShift of the key space is
// tallied and scaled back up, see hitSampleShift), so the hit figure is
// statistical: accurate to a few percent once lookups number in the
// thousands, coarse below that. Counts survive generation bumps and
// Reset: they describe the cache's lifetime effectiveness, not its
// current contents.
func (c *Cache[K]) Stats() (hits, misses uint64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits << hitSampleShift, misses
}

// HashString is the FNV-1a hash of a string key, inlined to avoid the
// per-call allocations of hash/fnv's streaming interface.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// HashUint64 finalizes an integer key with the splitmix64 mixer, so keys
// differing only in high bits still spread across shards.
func HashUint64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
