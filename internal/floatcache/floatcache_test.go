package floatcache

import (
	"sync"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New[uint64](HashUint64)
	if _, ok := c.Get(0, 7); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(0, 7, 3.5)
	v, ok := c.Get(0, 7)
	if !ok || v != 3.5 {
		t.Fatalf("Get = %v, %v after Put", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestGenerationInvalidates(t *testing.T) {
	c := New[string](HashString)
	c.Put(1, "k", 2.0)
	if _, ok := c.Get(2, "k"); ok {
		t.Fatal("old-generation value visible under new generation")
	}
	// A store under the new generation drops the stale shard.
	c.Put(2, "k", 9.0)
	if v, ok := c.Get(2, "k"); !ok || v != 9.0 {
		t.Fatalf("Get = %v, %v under generation 2", v, ok)
	}
	if _, ok := c.Get(1, "k"); ok {
		t.Fatal("restamped shard still serves the old generation")
	}
}

func TestStaleComputeDiscarded(t *testing.T) {
	c := New[uint64](HashUint64)
	c.Put(5, 1, 1.0) // shard now at generation 5
	c.Put(3, 1, 9.9) // a compute that started before the invalidation
	if v, ok := c.Get(5, 1); !ok || v != 1.0 {
		t.Fatalf("stale Put poisoned the shard: %v, %v", v, ok)
	}
}

func TestResetDropsEntries(t *testing.T) {
	c := New[uint64](HashUint64)
	for i := uint64(0); i < 100; i++ {
		c.Put(1, i, float64(i))
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Reset", c.Len())
	}
	if _, ok := c.Get(1, 3); ok {
		t.Fatal("Reset cache reported a hit")
	}
	// Still usable at the same generation.
	c.Put(1, 3, 4.0)
	if v, ok := c.Get(1, 3); !ok || v != 4.0 {
		t.Fatalf("Get = %v, %v after Reset+Put", v, ok)
	}
}

func TestConcurrentMixedGenerations(t *testing.T) {
	c := New[uint64](HashUint64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				gen := uint64(i % 3)
				key := uint64(i % 64)
				if v, ok := c.Get(gen, key); ok && v != float64(key) {
					t.Errorf("wrong value %v for key %d", v, key)
					return
				}
				c.Put(gen, key, float64(key))
			}
		}(w)
	}
	wg.Wait()
}

func TestHashSpread(t *testing.T) {
	hit := make(map[uint64]bool)
	for i := uint64(0); i < 4096; i++ {
		hit[HashUint64(i)&(numShards-1)] = true
	}
	if len(hit) != numShards {
		t.Errorf("sequential integer keys reach %d/%d shards", len(hit), numShards)
	}
	hit = make(map[uint64]bool)
	for _, s := range []string{"a", "b", "ab", "ba", "abc", "", "xyzzy", "clique"} {
		hit[HashString(s)&(numShards-1)] = true
	}
	if len(hit) < 4 {
		t.Errorf("string keys bunch into %d shards", len(hit))
	}
}

// TestStats pins the observability contract: misses are exact, hits are a
// sampled estimate that converges once lookups are numerous, and counts
// survive Reset.
func TestStats(t *testing.T) {
	c := New[uint64](HashUint64)
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("fresh cache stats = %d/%d", h, m)
	}
	const keys = 10000
	for i := uint64(0); i < keys; i++ {
		if _, ok := c.Get(1, i); ok {
			t.Fatalf("phantom hit for key %d", i)
		}
		c.Put(1, i, float64(i))
	}
	if _, m := c.Stats(); m != keys {
		t.Errorf("misses = %d, want exactly %d", m, keys)
	}
	const rounds = 10
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < keys; i++ {
			if _, ok := c.Get(1, i); !ok {
				t.Fatalf("lost key %d", i)
			}
		}
	}
	hits, misses := c.Stats()
	if misses != keys {
		t.Errorf("misses moved to %d after hit-only traffic", misses)
	}
	// 100k uniform lookups: the sampled estimate should land within 25%.
	want := uint64(rounds * keys)
	if hits < want*3/4 || hits > want*5/4 {
		t.Errorf("sampled hits = %d, want within 25%% of %d", hits, want)
	}
	c.Reset()
	if h, m := c.Stats(); h != hits || m != misses {
		t.Errorf("Reset changed stats: %d/%d -> %d/%d", hits, misses, h, m)
	}
}
