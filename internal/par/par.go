// Package par provides the small deterministic fan-out helpers shared by
// the offline build paths (vocabulary k-means, threshold training, index
// weighting, λ search). The pattern every caller follows is the one the
// repo's determinism contract requires: the parallel stage computes pure
// per-item values into fixed slots of a preallocated slice, and every
// order-sensitive step — floating-point accumulation, rng draws — runs
// serially in item order. Under that discipline the output is byte-identical
// at any worker count.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a configured fan-out (0 = NumCPU, mirroring
// retrieval.Config.Workers) against n items, clamping to [1, n].
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Range splits [0, n) into one contiguous chunk per worker and runs body
// over each chunk, inline when one worker suffices. Chunks never overlap,
// so bodies may write per-index slots without locks.
func Range(n, workers int, body func(lo, hi int)) {
	w := Workers(workers, n)
	if w <= 1 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
