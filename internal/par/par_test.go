package par

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestWorkersResolution(t *testing.T) {
	ncpu := runtime.NumCPU()
	cases := []struct {
		workers, n, want int
	}{
		{1, 100, 1},
		{4, 100, 4},
		{4, 3, 3},          // never more workers than items
		{0, 1 << 30, ncpu}, // 0 = NumCPU
		{-1, 1 << 30, ncpu},
		{0, 0, 1}, // empty range still resolves to one (inline) worker
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.workers, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestRangeCoversEachIndexOnce is the contract Range's callers rely on when
// writing per-index slots without locks: every index in [0, n) is visited by
// exactly one body call, and chunks are contiguous.
func TestRangeCoversEachIndexOnce(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 97)
		workers := int(wRaw%9) - 1 // includes -1 and 0
		visits := make([]int32, n)
		var mu sync.Mutex
		chunks := 0
		Range(n, workers, func(lo, hi int) {
			mu.Lock()
			chunks++
			mu.Unlock()
			if lo > hi || lo < 0 || hi > n {
				t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				mu.Lock()
				visits[i]++
				mu.Unlock()
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Errorf("n=%d workers=%d: index %d visited %d times", n, workers, i, v)
				return false
			}
		}
		if n > 0 && chunks > Workers(workers, n) {
			t.Errorf("n=%d workers=%d: %d chunks exceed worker cap %d", n, workers, chunks, Workers(workers, n))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRangeInlineWhenSerial pins the w ≤ 1 fast path: with one worker the
// body must run on the calling goroutine (callers may rely on this for
// rng-bearing serial paths).
func TestRangeInlineWhenSerial(t *testing.T) {
	ran := false
	Range(10, 1, func(lo, hi int) {
		ran = true
		if lo != 0 || hi != 10 {
			t.Errorf("serial chunk [%d, %d), want [0, 10)", lo, hi)
		}
	})
	if !ran {
		t.Fatal("body never ran")
	}
}
