package experiments

import (
	"fmt"
	"math/rand"

	"figfusion/internal/baselines"
	"figfusion/internal/dataset"
	"figfusion/internal/eval"
	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/recommend"
)

// figure10Deltas is the decay grid of Figure 10.
var figure10Deltas = []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.1}

// recommendNs are the N values of Figure 11.
var recommendNs = []int{10, 20, 30, 40, 50}

// Figure10 reproduces "Recommendation Performance of Varied Decaying
// Parameter": Precision@10 of the temporal FIG-T recommender as δ sweeps
// from 1 (no decay) down to 0.1, for the full model and the Text/User
// single-modality variants the paper plots alongside it. The paper's shape:
// precision improves as δ drops from 1 to ≈0.4, then degrades when decay
// de-validates early history entirely.
func Figure10(o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	cfg, rc := o.recConfig()
	rd, err := dataset.GenerateRec(cfg, rc)
	if err != nil {
		return nil, err
	}
	model := rd.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))
	variants := []struct {
		label string
		kinds []media.Kind
	}{
		{"Text", []media.Kind{media.Text}},
		{"User", []media.Kind{media.User}},
		{"FIG", nil},
	}
	cols := make([]string, len(figure10Deltas))
	for i, dlt := range figure10Deltas {
		cols[i] = fmt.Sprintf("δ=%.1f", dlt)
	}
	t := &Table{
		Title:   "Figure 10: Recommendation Precision@10 vs decay parameter δ",
		Columns: cols,
		Note: fmt.Sprintf("|D|=%d, %d users with interest drift, P@10 against held-out favourites",
			rd.Corpus.Len(), len(rd.Profiles)),
	}
	for _, variant := range variants {
		vals := make([]float64, len(figure10Deltas))
		for i, dlt := range figure10Deltas {
			params := mrf.DefaultParams()
			params.Delta = dlt
			rec, err := recommend.New(model, recommend.Config{
				Temporal:  true,
				Params:    params,
				BuildOpts: fig.Options{Kinds: variant.kinds},
			})
			if err != nil {
				return nil, err
			}
			p := eval.RecommendationPrecision(eval.FIGRecSystem{Rec: rec, Label: variant.label}, rd, []int{10})
			vals[i] = p[10]
		}
		t.Rows = append(t.Rows, Row{Label: variant.label, Values: vals})
	}
	return t, nil
}

// Figure11 reproduces "Performance with Varied N": recommendation
// Precision@N of FIG-T and FIG against the RB, TP and LSA baselines, all
// scoring the newly incoming candidate set against the user profile.
func Figure11(o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	cfg, rc := o.recConfig()
	rd, err := dataset.GenerateRec(cfg, rc)
	if err != nil {
		return nil, err
	}
	model := rd.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))

	figT, err := recommend.New(model, recommend.Config{Temporal: true})
	if err != nil {
		return nil, err
	}
	figPlain, err := recommend.New(model, recommend.Config{Temporal: false})
	if err != nil {
		return nil, err
	}
	lsa, err := baselines.TrainLSA(rd.Corpus, baselines.LSAConfig{Rank: 24, Iters: 10, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	// RankBoost trains on retrieval-style queries over the history months.
	rng := rand.New(rand.NewSource(o.Seed + 21))
	trainQ := rd.SampleQueries(o.TrainQueries, rng)
	rbCfg := baselines.DefaultRBConfig()
	rbCfg.Seed = o.Seed
	rb, err := baselines.TrainRB(rd.Corpus, trainQ, dataset.Relevant, rbCfg)
	if err != nil {
		return nil, err
	}
	systems := []eval.RecSystem{
		eval.FIGRecSystem{Rec: figT},
		eval.FIGRecSystem{Rec: figPlain},
		eval.BaselineRecSystem{Scorer: rb, Corpus: rd.Corpus},
		eval.BaselineRecSystem{Scorer: baselines.NewTP(rd.Corpus), Corpus: rd.Corpus},
		eval.BaselineRecSystem{Scorer: lsa, Corpus: rd.Corpus},
	}
	t := &Table{
		Title:   "Figure 11: Recommendation Precision@N, FIG-T/FIG vs baselines",
		Columns: nColumns(recommendNs),
		Note: fmt.Sprintf("|D|=%d, %d users, candidates = %d newly incoming objects",
			rd.Corpus.Len(), len(rd.Profiles), len(rd.Candidates)),
	}
	for _, sys := range systems {
		p := eval.RecommendationPrecision(sys, rd, recommendNs)
		t.Rows = append(t.Rows, Row{Label: sys.Name(), Values: valuesFor(p, recommendNs)})
	}
	return t, nil
}
