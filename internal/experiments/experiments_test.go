package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps the full experiment drivers runnable in unit tests.
func tinyOptions() Options {
	return Options{
		Seed:         1,
		Scale:        200,
		Queries:      4,
		TrainQueries: 4,
		RecScale:     350,
		RecUsers:     6,
	}
}

func TestTableFormatAndAccessors(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"P@3", "P@5"},
		Rows: []Row{
			{Label: "FIG", Values: []float64{0.9, 0.8}},
			{Label: "LSA", Values: []float64{0.7, 0.6}},
		},
		Note: "hello",
	}
	out := tab.Format()
	for _, want := range []string{"demo", "P@3", "FIG", "0.9000", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	if v, ok := tab.Get("FIG", "P@5"); !ok || v != 0.8 {
		t.Errorf("Get = %v,%v", v, ok)
	}
	if _, ok := tab.Get("FIG", "P@99"); ok {
		t.Error("Get with unknown column should miss")
	}
	if _, ok := tab.Get("XYZ", "P@3"); ok {
		t.Error("Get with unknown row should miss")
	}
	if r, ok := tab.Row("LSA"); !ok || r.Values[0] != 0.7 {
		t.Errorf("Row = %v,%v", r, ok)
	}
	if _, ok := tab.Row("nope"); ok {
		t.Error("Row with unknown label should miss")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	bad := DefaultOptions()
	bad.Scale = 10
	if err := bad.validate(); err == nil {
		t.Error("want error for tiny scale")
	}
	bad2 := DefaultOptions()
	bad2.Queries = 0
	if err := bad2.validate(); err == nil {
		t.Error("want error for zero queries")
	}
}

func TestFigure5Shape(t *testing.T) {
	tab, err := Figure5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 combinations", len(tab.Rows))
	}
	if len(tab.Columns) != 4 {
		t.Fatalf("columns = %d", len(tab.Columns))
	}
	for _, r := range tab.Rows {
		for i, v := range r.Values {
			if v < 0 || v > 1 {
				t.Errorf("%s %s = %v out of range", r.Label, tab.Columns[i], v)
			}
		}
	}
	// The headline qualitative claim: full FIG ≥ visual-only.
	figP, _ := tab.Get("FIG", "P@10")
	visP, _ := tab.Get("Visual", "P@10")
	if figP < visP {
		t.Errorf("FIG P@10 (%v) below Visual-only (%v)", figP, visP)
	}
}

func TestFigure6Qualitative(t *testing.T) {
	out, err := Figure6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 6", "query tags:", "shared tags:", "shared users:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure6 output missing %q", want)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	tab, err := Figure7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []string{"FIG", "RB", "TP", "LSA"}
	if len(tab.Rows) != len(wantRows) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, w := range wantRows {
		if tab.Rows[i].Label != w {
			t.Errorf("row %d = %s, want %s", i, tab.Rows[i].Label, w)
		}
	}
}

func TestFigure8And9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep is slow")
	}
	tab8, err := Figure8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab8.Rows) != 4 || len(tab8.Columns) != 5 {
		t.Fatalf("fig8 shape %dx%d", len(tab8.Rows), len(tab8.Columns))
	}
	tab9, err := Figure9(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab9.Rows) != 4 || len(tab9.Columns) != 5 {
		t.Fatalf("fig9 shape %dx%d", len(tab9.Rows), len(tab9.Columns))
	}
	// Times are positive.
	for _, r := range tab9.Rows {
		for _, v := range r.Values {
			if v <= 0 {
				t.Errorf("%s time %v not positive", r.Label, v)
			}
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	tab, err := Figure10(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want Text/User/FIG", len(tab.Rows))
	}
	if len(tab.Columns) != 6 {
		t.Fatalf("columns = %d, want 6 deltas", len(tab.Columns))
	}
}

func TestFigure11Shape(t *testing.T) {
	tab, err := Figure11(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []string{"FIG-T", "FIG", "RB", "TP", "LSA"}
	if len(tab.Rows) != len(wantRows) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, w := range wantRows {
		if tab.Rows[i].Label != w {
			t.Errorf("row %d = %s, want %s", i, tab.Rows[i].Label, w)
		}
	}
}

func TestRankMetricsTableShape(t *testing.T) {
	tab, err := RankMetricsTable(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Columns) != 3 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	for _, r := range tab.Rows {
		for i, v := range r.Values {
			if v < 0 || v > 1 {
				t.Errorf("%s %s = %v", r.Label, tab.Columns[i], v)
			}
		}
	}
}

func TestMusicTableShape(t *testing.T) {
	tab, err := MusicTable(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for i, v := range r.Values {
			if v < 0 || v > 1 {
				t.Errorf("%s %s = %v", r.Label, tab.Columns[i], v)
			}
		}
	}
	// Fused FIG must beat the weakest single modality and be far above
	// chance; at this tiny scale (4 genres) the strongest single modality
	// can edge out the fusion, so no stricter ordering is asserted here —
	// the full-scale shape lives in EXPERIMENTS.md.
	figP, _ := tab.Get("FIG", "P@10")
	worst := 1.0
	for _, label := range []string{"Audio", "Text", "User"} {
		if v, ok := tab.Get(label, "P@10"); ok && v < worst {
			worst = v
		}
	}
	if figP < worst {
		t.Errorf("FIG P@10 (%v) below weakest single modality (%v)", figP, worst)
	}
	if figP < 0.3 {
		t.Errorf("FIG P@10 = %v, no better than chance", figP)
	}
}
