package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
	"figfusion/internal/shard"
)

// ShardResult is one measured configuration of the shard-scaling bench:
// a shard count (0 marks the unsharded single-engine baseline) driven by
// some number of client goroutines.
type ShardResult struct {
	Name          string  `json:"name"`
	Shards        int     `json:"shards"`
	Goroutines    int     `json:"goroutines"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"nsPerOp"`
	QueriesPerSec float64 `json:"queriesPerSec"`
}

// ShardRun is one complete shard-scaling measurement on one code revision.
// Runs accumulate in BENCH_shard.json so the scatter-gather overhead is
// tracked across PRs alongside the single-engine baseline it must not
// fall below.
type ShardRun struct {
	Label      string        `json:"label"`
	GoVersion  string        `json:"goVersion"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      int           `json:"scale"`
	Queries    int           `json:"queries"`
	K          int           `json:"k"`
	Results    []ShardResult `json:"results"`
}

// ShardPerf measures scatter-gather query throughput against the
// single-engine baseline on the same corpus: serial latency and 4-client
// throughput for the unsharded engine, then for routers at 1/2/4/NumCPU
// shards. All systems search the same trained model read-only, so one
// generated corpus serves every configuration.
func ShardPerf(o Options, label string) (*ShardRun, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	m := d.Model()
	m.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))
	queries := make([]*media.Object, 0, o.Queries)
	for _, id := range d.SampleQueries(o.Queries, rand.New(rand.NewSource(o.Seed+7))) {
		queries = append(queries, d.Corpus.Object(id))
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no queries sampled")
	}
	const k = 10
	run := &ShardRun{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      o.Scale,
		Queries:    len(queries),
		K:          k,
	}

	measure := func(name string, shards, goroutines int, search func(q *media.Object)) {
		r := testing.Benchmark(func(b *testing.B) {
			if goroutines <= 1 {
				for i := 0; i < b.N; i++ {
					search(queries[i%len(queries)])
				}
				return
			}
			var wg sync.WaitGroup
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < b.N; i += goroutines {
						search(queries[i%len(queries)])
					}
				}(w)
			}
			wg.Wait()
		})
		sr := ShardResult{
			Name:       name,
			Shards:     shards,
			Goroutines: goroutines,
			Iterations: r.N,
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
		}
		if sr.NsPerOp > 0 {
			sr.QueriesPerSec = 1e9 / sr.NsPerOp
		}
		run.Results = append(run.Results, sr)
	}

	engine, err := retrieval.NewEngine(m, retrieval.Config{})
	if err != nil {
		return nil, err
	}
	measure("engine/serial", 0, 1, func(q *media.Object) { engine.Search(q, k, q.ID) })
	measure("engine/clients=4", 0, 4, func(q *media.Object) { engine.Search(q, k, q.ID) })

	for _, n := range shardScalePoints() {
		r, err := shard.NewRouter(m, shard.Config{Shards: n})
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", n, err)
		}
		measure(fmt.Sprintf("router/shards=%d/serial", n), n, 1,
			func(q *media.Object) { r.Search(q, k, q.ID) })
		measure(fmt.Sprintf("router/shards=%d/clients=4", n), n, 4,
			func(q *media.Object) { r.Search(q, k, q.ID) })
	}
	return run, nil
}

// shardScalePoints is the deduplicated 1/2/4/NumCPU ladder the parity test
// also pins.
func shardScalePoints() []int {
	points := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	out := points[:0]
	for _, n := range points {
		if n >= 1 && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
