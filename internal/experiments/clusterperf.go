package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"

	"figfusion/internal/cluster"
	"figfusion/internal/corr"
	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
	"figfusion/internal/server"
	"figfusion/internal/shard"
)

// ClusterResult is one measured configuration of the multi-node serving
// bench: a transport ("", "local" or "http") driven by some number of
// client goroutines (nodes 0 marks the single-engine baseline).
type ClusterResult struct {
	Name          string  `json:"name"`
	Nodes         int     `json:"nodes"`
	Transport     string  `json:"transport,omitempty"`
	Goroutines    int     `json:"goroutines"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"nsPerOp"`
	QueriesPerSec float64 `json:"queriesPerSec"`
}

// ClusterRun is one complete multi-node serving measurement on one code
// revision. Runs accumulate in BENCH_cluster.json so the wire tax of the
// /v1 hop — the spread between router-over-in-process and
// router-over-loopback-HTTP — is tracked across PRs alongside the
// single-engine baseline.
type ClusterRun struct {
	Label      string          `json:"label"`
	GoVersion  string          `json:"goVersion"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Scale      int             `json:"scale"`
	Queries    int             `json:"queries"`
	K          int             `json:"k"`
	Nodes      int             `json:"nodes"`
	Results    []ClusterResult `json:"results"`
}

// clusterPerfNodes is the fixed deployment size the bench measures: big
// enough that fan-out, folding and the wire actually occur, small enough
// that a laptop run finishes promptly.
const clusterPerfNodes = 2

// ClusterPerf measures multi-node scatter-gather query throughput at a
// fixed node count over both backends against the single-engine baseline:
// serial latency and 4-client throughput for the bare engine, the cluster
// over in-process LocalBackends, and the same cluster shape over loopback
// HTTP through the full figserver handler stack. All systems search the
// same trained model read-only, so one generated corpus serves every
// configuration and the spread between the rows is pure serving-tier
// overhead.
func ClusterPerf(o Options, label string) (*ClusterRun, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	m := d.Model()
	m.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))
	queries := make([]*media.Object, 0, o.Queries)
	for _, id := range d.SampleQueries(o.Queries, rand.New(rand.NewSource(o.Seed+7))) {
		queries = append(queries, d.Corpus.Object(id))
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no queries sampled")
	}
	const k = 10
	run := &ClusterRun{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      o.Scale,
		Queries:    len(queries),
		K:          k,
		Nodes:      clusterPerfNodes,
	}

	measure := func(name, transport string, nodes, goroutines int, search func(q *media.Object)) {
		r := testing.Benchmark(func(b *testing.B) {
			if goroutines <= 1 {
				for i := 0; i < b.N; i++ {
					search(queries[i%len(queries)])
				}
				return
			}
			var wg sync.WaitGroup
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < b.N; i += goroutines {
						search(queries[i%len(queries)])
					}
				}(w)
			}
			wg.Wait()
		})
		cr := ClusterResult{
			Name:       name,
			Nodes:      nodes,
			Transport:  transport,
			Goroutines: goroutines,
			Iterations: r.N,
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
		}
		if cr.NsPerOp > 0 {
			cr.QueriesPerSec = 1e9 / cr.NsPerOp
		}
		run.Results = append(run.Results, cr)
	}

	engine, err := retrieval.NewEngine(m, retrieval.Config{})
	if err != nil {
		return nil, err
	}
	measure("engine/serial", "", 0, 1, func(q *media.Object) { engine.Search(q, k, q.ID) })
	measure("engine/clients=4", "", 0, 4, func(q *media.Object) { engine.Search(q, k, q.ID) })

	// The node routers and mirror share the trained model read-only: the
	// bench never inserts, so the replication machinery is idle and the
	// measurement isolates the serving path.
	names := make([]string, clusterPerfNodes)
	for i := range names {
		names[i] = fmt.Sprintf("bench-node%d", i)
	}
	assign, err := cluster.NewAssignment(names)
	if err != nil {
		return nil, err
	}
	routers := make([]*shard.Router, clusterPerfNodes)
	for i := range routers {
		routers[i], err = shard.NewRouter(m, shard.Config{Shards: 1, Owns: assign.Owns(i)})
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
	}

	local, err := newBenchCluster(m, names, func(i int) (cluster.Backend, error) {
		return cluster.NewLocalBackend(routers[i]), nil
	})
	if err != nil {
		return nil, err
	}
	measure("cluster/local/serial", "local", clusterPerfNodes, 1, func(q *media.Object) { local.Search(q, k, q.ID) })
	measure("cluster/local/clients=4", "local", clusterPerfNodes, 4, func(q *media.Object) { local.Search(q, k, q.ID) })

	// Loopback HTTP: each node behind a real figserver handler on its own
	// listener — JSON encode/decode, pooled keep-alive connections, the
	// whole wire.
	var servers []*http.Server
	defer func() {
		for _, hs := range servers {
			hs.Close()
		}
	}()
	remote, err := newBenchCluster(m, names, func(i int) (cluster.Backend, error) {
		opts := server.DefaultOptions()
		opts.Metrics = false
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return nil, lerr
		}
		hs := &http.Server{Handler: server.NewSharded(routers[i], opts).Handler()}
		servers = append(servers, hs)
		go hs.Serve(ln)
		return cluster.NewHTTPBackend(ln.Addr().String()), nil
	})
	if err != nil {
		return nil, err
	}
	defer remote.Close()
	measure("cluster/http/serial", "http", clusterPerfNodes, 1, func(q *media.Object) { remote.Search(q, k, q.ID) })
	measure("cluster/http/clients=4", "http", clusterPerfNodes, 4, func(q *media.Object) { remote.Search(q, k, q.ID) })
	return run, nil
}

// newBenchCluster assembles a cluster over backends produced per node.
func newBenchCluster(m *corr.Model, names []string, backend func(i int) (cluster.Backend, error)) (*cluster.Cluster, error) {
	nodes := make([]cluster.NodeConfig, len(names))
	for i, name := range names {
		b, err := backend(i)
		if err != nil {
			return nil, err
		}
		nodes[i] = cluster.NodeConfig{Name: name, Backend: b}
	}
	return cluster.New(cluster.Config{Mirror: m, Nodes: nodes})
}
