package experiments

import (
	"fmt"
	"math/rand"

	"figfusion/internal/baselines"
	"figfusion/internal/dataset"
	"figfusion/internal/eval"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/retrieval"
)

// Options scale the experiments. The paper's corpora (236,600 and 207,909
// objects) are reachable by raising Scale/RecScale; the defaults keep a
// full figbench run to a few minutes on a laptop while preserving the
// structural ratios (topic counts, feature densities, query counts).
type Options struct {
	// Seed drives every random choice.
	Seed int64
	// Scale is the retrieval corpus size |D_ret| (paper: 236,600).
	Scale int
	// Queries is the number of evaluation queries (paper: 20).
	Queries int
	// TrainQueries is the number of queries used to fit RankBoost and the
	// MRF λ-training, disjoint from the evaluation queries.
	TrainQueries int
	// RecScale is the recommendation corpus size |D_rec| (paper: 207,909).
	RecScale int
	// RecUsers is the number of evaluation users (paper: 279).
	RecUsers int
}

// DefaultOptions returns the laptop-scale setup.
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		Scale:        1200,
		Queries:      20,
		TrainQueries: 20,
		RecScale:     1500,
		RecUsers:     30,
	}
}

func (o Options) validate() error {
	if o.Scale < 100 || o.RecScale < 100 {
		return fmt.Errorf("experiments: Scale/RecScale too small (%d/%d), need ≥ 100", o.Scale, o.RecScale)
	}
	if o.Queries < 1 || o.TrainQueries < 1 || o.RecUsers < 1 {
		return fmt.Errorf("experiments: Queries/TrainQueries/RecUsers must be positive")
	}
	return nil
}

// retrievalConfig derives the corpus generator configuration for retrieval
// experiments from the scale.
func (o Options) retrievalConfig() dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.NumObjects = o.Scale
	// Topic diversity grows with corpus size, as on a real media site —
	// this is what makes a fixed-rank latent space increasingly lossy
	// (the paper's core argument against global early fusion).
	cfg.NumTopics = topicsForScale(o.Scale)
	return cfg
}

func topicsForScale(scale int) int {
	t := scale / 40
	if t < 8 {
		t = 8
	}
	if t > 48 {
		t = 48
	}
	return t
}

func (o Options) recConfig() (dataset.Config, dataset.RecConfig) {
	cfg := dataset.DefaultConfig()
	cfg.Seed = o.Seed + 1000
	cfg.NumObjects = o.RecScale
	cfg.NumTopics = topicsForScale(o.RecScale)
	rc := dataset.DefaultRecConfig()
	rc.NumUsers = o.RecUsers
	return cfg, rc
}

// splitQueries samples disjoint train and eval query sets.
func splitQueries(d *dataset.Dataset, o Options) (train, evalQ []media.ObjectID) {
	rng := rand.New(rand.NewSource(o.Seed + 7))
	all := d.SampleQueries(o.TrainQueries+o.Queries, rng)
	return all[:o.TrainQueries], all[o.TrainQueries:]
}

// buildBaselineSystems trains LSA and RankBoost on a dataset and returns
// the three baseline systems in paper order (RB, TP, LSA).
func buildBaselineSystems(d *dataset.Dataset, trainQ []media.ObjectID, seed int64) ([]eval.System, error) {
	lsa, err := baselines.TrainLSA(d.Corpus, baselines.LSAConfig{Rank: 24, Iters: 10, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("train LSA: %w", err)
	}
	rbCfg := baselines.DefaultRBConfig()
	rbCfg.Seed = seed
	rb, err := baselines.TrainRB(d.Corpus, trainQ, dataset.Relevant, rbCfg)
	if err != nil {
		return nil, fmt.Errorf("train RB: %w", err)
	}
	return []eval.System{
		eval.BaselineSystem{Scorer: rb, Corpus: d.Corpus},
		eval.BaselineSystem{Scorer: baselines.NewTP(d.Corpus), Corpus: d.Corpus},
		eval.BaselineSystem{Scorer: lsa, Corpus: d.Corpus},
	}, nil
}

// buildFIGSystem constructs the FIG engine with trained correlation
// thresholds over the dataset. When training queries are supplied, the MRF
// λ/α parameters are trained by coordinate ascent on mean Precision@10 over
// them — the rank-metric training of [16] the paper adopts (Section 5.2).
func buildFIGSystem(d *dataset.Dataset, cfg retrieval.Config, seed int64, trainQ []media.ObjectID) (eval.FIGSystem, error) {
	m := d.Model()
	m.TrainThresholds(200, 0.35, rand.New(rand.NewSource(seed+13)))
	engine, err := retrieval.NewEngine(m, cfg)
	if err != nil {
		return eval.FIGSystem{}, err
	}
	if len(trainQ) > 0 {
		base := engine.Scorer.Params
		objective := func(p mrf.Params) float64 {
			cand, err := engine.WithParams(p)
			if err != nil {
				return -1
			}
			prec := eval.RetrievalPrecisionWorkers(eval.FIGSystem{Engine: cand}, d.Corpus, trainQ,
				[]int{10}, dataset.Relevant, cfg.Workers)
			return prec[10]
		}
		best, _ := mrf.Train(base, objective, 2)
		engine, err = engine.WithParams(best)
		if err != nil {
			return eval.FIGSystem{}, err
		}
	}
	return eval.FIGSystem{Engine: engine}, nil
}
