package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"figfusion/internal/dataset"
	"figfusion/internal/eval"
	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/mrf"
	"figfusion/internal/par"
	"figfusion/internal/retrieval"
	"figfusion/internal/vision"
)

// BuildPhase is one measured phase of the engine build path, timed once at
// Workers=1 (the serial reference) and once at Workers=NumCPU.
type BuildPhase struct {
	Name       string  `json:"name"`
	SerialMs   float64 `json:"serialMs"`
	ParallelMs float64 `json:"parallelMs"`
	Speedup    float64 `json:"speedup"`
}

// BuildRun is one complete measurement of the offline build path on one
// code revision. Runs accumulate in BENCH_build.json so the build-time
// trajectory is tracked across PRs alongside the query-path trajectory in
// BENCH_retrieval.json.
type BuildRun struct {
	Label           string       `json:"label"`
	GoVersion       string       `json:"goVersion"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Workers         int          `json:"workers"`
	Scale           int          `json:"scale"`
	TrainQueries    int          `json:"trainQueries"`
	Phases          []BuildPhase `json:"phases"`
	SerialTotalMs   float64      `json:"serialTotalMs"`
	ParallelTotalMs float64      `json:"parallelTotalMs"`
	Speedup         float64      `json:"speedup"`
}

// buildPhaseNames are the four offline hot paths, in pipeline order.
var buildPhaseNames = [4]string{"vocabulary", "stats+thresholds", "index", "lambda"}

// BuildPerf measures the four phases of the offline build path — visual
// vocabulary k-means, statistics + threshold training, clique index build
// with Eq. 9 weighting, and the §3.4 λ/α coordinate ascent — each timed at
// Workers=1 and again at Workers=NumCPU over a fresh model and engine, so
// neither leg inherits the other's warm caches. The workload is derived
// entirely from o.Seed/o.Scale/o.TrainQueries, so two runs on the same
// revision measure the same work.
func BuildPerf(o Options, label string) (*BuildRun, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	serial, err := buildPhaseTimes(o, 1)
	if err != nil {
		return nil, err
	}
	parallel, err := buildPhaseTimes(o, 0)
	if err != nil {
		return nil, err
	}
	run := &BuildRun{
		Label:        label,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      par.Workers(0, o.Scale),
		Scale:        o.Scale,
		TrainQueries: o.TrainQueries,
	}
	for i, name := range buildPhaseNames {
		p := BuildPhase{Name: name, SerialMs: serial[i], ParallelMs: parallel[i]}
		if p.ParallelMs > 0 {
			p.Speedup = p.SerialMs / p.ParallelMs
		}
		run.Phases = append(run.Phases, p)
		run.SerialTotalMs += p.SerialMs
		run.ParallelTotalMs += p.ParallelMs
	}
	if run.ParallelTotalMs > 0 {
		run.Speedup = run.SerialTotalMs / run.ParallelTotalMs
	}
	return run, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// buildPhaseTimes runs the full build pipeline once at the given fan-out
// and returns the per-phase wall-clock times in buildPhaseNames order.
func buildPhaseTimes(o Options, workers int) ([4]float64, error) {
	var out [4]float64
	seed := o.Seed

	// Phase 1: visual-vocabulary k-means over synthesized descriptors
	// (Scale*5 samples around 32 prototypes, k=64, 10 Lloyd iterations) —
	// a vocabulary-training workload larger than the one hidden inside
	// dataset.Generate, timed in isolation.
	vrng := rand.New(rand.NewSource(seed + 21))
	protos := make([]vision.Descriptor, 32)
	for p := range protos {
		for c := range protos[p] {
			protos[p][c] = vrng.Float64()
		}
	}
	samples := make([]vision.Descriptor, o.Scale*5)
	for i := range samples {
		proto := protos[vrng.Intn(len(protos))]
		for c := range samples[i] {
			samples[i][c] = proto[c] + vrng.NormFloat64()*0.05
		}
	}
	t0 := time.Now()
	if _, err := vision.TrainVocabularyWorkers(samples, 64, 10, rand.New(rand.NewSource(seed+22)), workers); err != nil {
		return out, err
	}
	out[0] = msSince(t0)

	// Corpus for the remaining phases (generation itself is not a measured
	// phase; its vocabulary training is the workload phase 1 isolates).
	cfg := o.retrievalConfig()
	cfg.Workers = workers
	d, err := dataset.Generate(cfg)
	if err != nil {
		return out, err
	}

	// Phase 2: statistics + threshold training.
	t0 = time.Now()
	m := d.Model()
	m.TrainThresholdsWorkers(200, 0.35, rand.New(rand.NewSource(seed+13)), workers)
	out[1] = msSince(t0)

	// Phase 3: clique index build + Eq. 9 weighting.
	t0 = time.Now()
	inv := index.BuildWorkers(m, fig.Options{}, fig.EnumerateOptions{}, workers)
	out[2] = msSince(t0)

	// Phase 4: λ/α coordinate ascent on mean P@10 over training queries.
	engine, err := retrieval.NewEngine(m, retrieval.Config{Index: inv, Workers: workers})
	if err != nil {
		return out, err
	}
	queries := d.SampleQueries(o.TrainQueries, rand.New(rand.NewSource(seed+7)))
	if len(queries) == 0 {
		return out, fmt.Errorf("experiments: no training queries sampled")
	}
	objective := func(p mrf.Params) float64 {
		cand, err := engine.WithParams(p)
		if err != nil {
			return -1
		}
		prec := eval.RetrievalPrecisionWorkers(eval.FIGSystem{Engine: cand}, d.Corpus, queries,
			[]int{10}, dataset.Relevant, workers)
		return prec[10]
	}
	t0 = time.Now()
	mrf.Train(engine.Scorer.Params, objective, 2)
	out[3] = msSince(t0)
	return out, nil
}
