// Package experiments regenerates every figure of the paper's evaluation
// (Section 5) as a text table: Figure 5 (feature combinations), Figure 6
// (qualitative query result), Figure 7 (retrieval precision vs baselines),
// Figures 8–9 (scalability of precision and query time), Figure 10
// (decay-parameter sweep) and Figure 11 (recommendation precision vs
// baselines). Each driver is deterministic for a given Options value and is
// shared by cmd/figbench and the root bench_test.go harness.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a titled grid of float series.
type Table struct {
	Title string
	// Columns are the value column names (e.g. "P@3", "P@5").
	Columns []string
	// Rows are the systems/series.
	Rows []Row
	// Note carries caveats (scaled sizes, substitutions).
	Note string
}

// Row is one labelled series.
type Row struct {
	Label  string
	Values []float64
}

// Get returns the value at (rowLabel, column), with ok=false when absent.
func (t *Table) Get(rowLabel, column string) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && col < len(r.Values) {
			return r.Values[col], true
		}
	}
	return 0, false
}

// Row returns the series with the given label.
func (t *Table) Row(label string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	labelWidth := len("system")
	for _, r := range t.Rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	colWidth := 9
	for _, c := range t.Columns {
		if len(c)+2 > colWidth {
			colWidth = len(c) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", labelWidth+2, "system")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", colWidth, c)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", labelWidth+2+colWidth*len(t.Columns)))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelWidth+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*.4f", colWidth, v)
		}
		b.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}
