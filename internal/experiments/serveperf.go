package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"time"

	"figfusion/internal/client"
	"figfusion/internal/dataset"
	"figfusion/internal/loadgen"
	"figfusion/internal/retrieval"
	"figfusion/internal/server"
)

// ServeRun is one live-traffic serving measurement on one code revision:
// a closed-loop capacity phase followed by an open-loop overload phase at
// 2× the measured capacity. Runs accumulate in BENCH_serve.json so the
// serving tier's capacity and its behaviour past it — shed rate, and the
// p99 of the requests it does admit — are tracked across PRs.
type ServeRun struct {
	Label      string `json:"label"`
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Scale      int    `json:"scale"`
	// MaxInflight/MaxQueue are the admission-control settings under test.
	MaxInflight int `json:"maxInflight"`
	MaxQueue    int `json:"maxQueue"`
	// OverloadFactor is the offered-load multiple of measured capacity.
	OverloadFactor float64 `json:"overloadFactor"`
	// Closed is the capacity phase: closed-loop workers, throughput
	// adapts to the server. Closed.AchievedRate is the capacity estimate.
	Closed loadgen.Report `json:"closed"`
	// Overload is the open-loop phase at OverloadFactor × capacity.
	Overload loadgen.Report `json:"overload"`
	// ShedRequests is the server's own server.shed.requests counter after
	// the overload phase — the server-side record of explicit rejections.
	ShedRequests uint64 `json:"shedRequests"`
}

// serveOverloadFactor is how far past measured capacity the overload
// phase pushes: 2× is comfortably beyond scheduling noise, so a healthy
// admission controller must shed.
const serveOverloadFactor = 2.0

// ServePerf measures the serving tier under live traffic: it boots a real
// figserver (single-engine role, admission control on, coalescing off so
// every request pays the engine and the capacity number means engine
// capacity), measures closed-loop capacity, then offers 2× that rate open
// loop. Healthy behaviour — the regression gate's definition — is that
// the server sheds the excess explicitly (Overload.Shed > 0, mirrored by
// its own shed counter) while the p99 of the requests it admits stays
// bounded instead of growing with the offered load.
func ServePerf(ctx context.Context, o Options, label string) (*ServeRun, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	m := d.Model()
	m.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))
	engine, err := retrieval.NewEngine(m, retrieval.Config{})
	if err != nil {
		return nil, err
	}

	opts := server.DefaultOptions()
	// Small fixed admission bounds keep the phase durations short and the
	// run reproducible across machines: capacity is then ~(inflight ×
	// per-query throughput), and queue depth bounds the admitted p99.
	opts.MaxInflight = 4
	opts.MaxQueue = 8
	// Coalescing off: the zipfian workload would otherwise serve mostly
	// from cache and the "capacity" number would measure map lookups.
	opts.Coalesce = false
	srv := server.New(engine, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	c := client.New(ln.Addr().String(), client.WithRetries(0))
	defer c.Close()

	run := &ServeRun{
		Label:          label,
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Scale:          o.Scale,
		MaxInflight:    opts.MaxInflight,
		MaxQueue:       opts.MaxQueue,
		OverloadFactor: serveOverloadFactor,
	}

	// Phase 1 — capacity: closed loop with enough workers to keep every
	// admission slot and queue position occupied without shedding hard.
	run.Closed, err = loadgen.Run(ctx, c, loadgen.Config{
		Concurrency: opts.MaxInflight + opts.MaxQueue,
		Duration:    2 * time.Second,
		Warmup:      500 * time.Millisecond,
		Seed:        o.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: capacity phase: %w", err)
	}
	if run.Closed.OK == 0 {
		return nil, fmt.Errorf("experiments: capacity phase served nothing: %v", run.Closed)
	}

	// Phase 2 — overload: offer a fixed 2× capacity open loop. The
	// outstanding window is wide so the load generator keeps offering
	// instead of becoming the queue itself.
	offered := serveOverloadFactor * run.Closed.AchievedRate
	run.Overload, err = loadgen.Run(ctx, c, loadgen.Config{
		Rate:           offered,
		MaxOutstanding: 1024,
		Duration:       2 * time.Second,
		Warmup:         500 * time.Millisecond,
		Seed:           o.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: overload phase: %w", err)
	}
	if reg := srv.Registry(); reg != nil {
		run.ShedRequests = reg.Counter("server.shed.requests").Value()
	}
	return run, nil
}

// LastServeRunMatching scans the bench file at path backwards for the
// most recent run comparable to run — same scale and same admission
// settings, so capacity numbers from other shapes interleaving in the
// file never poison the regression comparison. It returns (nil, false,
// nil) when the file is missing or holds no comparable run.
func LastServeRunMatching(path string, run *ServeRun) (*ServeRun, bool, error) {
	raws, err := BenchRuns(path)
	if err != nil {
		return nil, false, err
	}
	for i := len(raws) - 1; i >= 0; i-- {
		var prev ServeRun
		if err := json.Unmarshal(raws[i], &prev); err != nil {
			return nil, false, fmt.Errorf("bench: %s: decoding run %d: %w", path, i, err)
		}
		if prev.Scale == run.Scale && prev.MaxInflight == run.MaxInflight && prev.MaxQueue == run.MaxQueue {
			return &prev, true, nil
		}
	}
	return nil, false, nil
}

// CheckServeRun validates the healthy-overload contract on a completed
// run: the server shed explicitly, nothing failed with a non-shed error,
// and the admitted p99 stayed within bound × the uncontended capacity
// p99. It returns a descriptive error naming the first violated clause.
func CheckServeRun(run *ServeRun, p99Bound float64) error {
	if run.Overload.Shed == 0 {
		return fmt.Errorf("serve: overload at %.0f req/s shed nothing — admission control is not engaging", run.Overload.OfferedRate)
	}
	if run.ShedRequests == 0 {
		return fmt.Errorf("serve: loadgen saw %d sheds but server.shed.requests = 0", run.Overload.Shed)
	}
	if run.Overload.Errors > 0 {
		return fmt.Errorf("serve: %d non-shed errors under overload — failures must be explicit 503s", run.Overload.Errors)
	}
	if run.Closed.P99Ms > 0 && run.Overload.P99Ms > p99Bound*run.Closed.P99Ms {
		return fmt.Errorf("serve: admitted p99 %.2fms under overload exceeds %.1f× capacity-phase p99 %.2fms — queueing is unbounded",
			run.Overload.P99Ms, p99Bound, run.Closed.P99Ms)
	}
	return nil
}
