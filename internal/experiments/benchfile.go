package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchFile is the on-disk shape shared by the tracked benchmark files
// (BENCH_retrieval.json, BENCH_build.json): one benchmark identity plus an
// append-only list of runs, one per measured revision, so each file records
// a performance trajectory across PRs. Runs are kept as raw JSON so the
// same recording code serves files with different run schemas (PerfRun,
// BuildRun).
type BenchFile struct {
	Benchmark string            `json:"benchmark"`
	Command   string            `json:"command"`
	Runs      []json.RawMessage `json:"runs"`
}

// AppendBenchRun appends one run to the benchmark file at path, creating
// the file — with the given benchmark description and reproduction command
// — if it does not exist yet. It returns the total number of recorded runs.
func AppendBenchRun(path, benchmark, command string, run any) (int, error) {
	pf := BenchFile{Benchmark: benchmark, Command: command}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &pf); err != nil {
			return 0, fmt.Errorf("bench: %s exists but is not a benchmark file: %w", path, err)
		}
	}
	raw, err := json.Marshal(run)
	if err != nil {
		return 0, err
	}
	pf.Runs = append(pf.Runs, raw)
	out, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return 0, err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return 0, err
	}
	return len(pf.Runs), nil
}

// BenchRuns returns every raw run recorded in the benchmark file at path,
// oldest first; nil (with no error) when the file does not exist yet.
func BenchRuns(path string) ([]json.RawMessage, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var pf BenchFile
	if err := json.Unmarshal(raw, &pf); err != nil {
		return nil, fmt.Errorf("bench: %s exists but is not a benchmark file: %w", path, err)
	}
	return pf.Runs, nil
}

// LastRun decodes the most recent run recorded in the benchmark file at
// path into out. It reports false when the file does not exist or holds
// no runs yet, so callers can treat a fresh file as "no baseline".
func LastRun(path string, out any) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	var pf BenchFile
	if err := json.Unmarshal(raw, &pf); err != nil {
		return false, fmt.Errorf("bench: %s exists but is not a benchmark file: %w", path, err)
	}
	if len(pf.Runs) == 0 {
		return false, nil
	}
	if err := json.Unmarshal(pf.Runs[len(pf.Runs)-1], out); err != nil {
		return false, fmt.Errorf("bench: %s: decoding last run: %w", path, err)
	}
	return true, nil
}
