package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"figfusion/internal/dataset"
	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/par"
)

// LoadResult is one measured cold-start path: snapshot size, best-of-reps
// load wall time, and the steady-state heap the loaded index holds.
type LoadResult struct {
	Name           string  `json:"name"` // gob/serial, segment/serial, segment/parallel
	Bytes          int64   `json:"bytes"`
	LoadMs         float64 `json:"loadMs"`
	HeapBytes      int64   `json:"heapBytes"`      // measured live heap delta after GC
	EstimatedBytes int64   `json:"estimatedBytes"` // index.MemoryBytes self-report
}

// LoadRun is one complete cold-start measurement on one code revision.
// Runs accumulate in BENCH_load.json, tracking the snapshot-size and
// load-time trajectory across PRs.
type LoadRun struct {
	Label      string       `json:"label"`
	GoVersion  string       `json:"goVersion"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Scale      int          `json:"scale"`
	Cliques    int          `json:"cliques"`
	Postings   int          `json:"postings"`
	Results    []LoadResult `json:"results"`
	// SizeRatio is segment bytes / gob bytes (< 1 means smaller).
	SizeRatio float64 `json:"sizeRatio"`
	// SegmentVsGob is gob/serial load time over segment/parallel load time
	// (> 1 means the segment path is faster cold-start).
	SegmentVsGob float64 `json:"segmentVsGob"`
	// ParallelSpeedup is segment/serial over segment/parallel.
	ParallelSpeedup float64 `json:"parallelSpeedup"`
}

const loadReps = 5

// LoadPerf measures the index cold-start path at o.Scale: it builds the
// clique index once, snapshots it in both formats (in memory — the
// measurement isolates decode cost from disk cache behaviour), and times
// legacy-gob load, serial segment load, and parallel segment load,
// recording best-of-5 wall times and the post-GC live-heap delta each
// loaded index retains. The workload derives entirely from o.Seed/o.Scale,
// so two runs on the same revision measure the same work.
func LoadPerf(o Options, label string) (*LoadRun, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	m := d.Model()
	m.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))
	inv := index.Build(m, fig.Options{}, fig.EnumerateOptions{})
	gen := m.Generation()

	var segBuf, gobBuf bytes.Buffer
	if err := inv.SaveAt(&segBuf, gen); err != nil {
		return nil, err
	}
	if err := inv.SaveLegacyGob(&gobBuf, gen); err != nil {
		return nil, err
	}

	run := &LoadRun{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    par.Workers(0, inv.NumCliques()),
		Scale:      o.Scale,
		Cliques:    inv.NumCliques(),
		Postings:   inv.Postings(),
	}
	cases := []struct {
		name    string
		data    []byte
		workers int
	}{
		{"gob/serial", gobBuf.Bytes(), 1},
		{"segment/serial", segBuf.Bytes(), 1},
		{"segment/parallel", segBuf.Bytes(), 0},
	}
	for _, c := range cases {
		r, err := measureLoad(c.name, c.data, c.workers)
		if err != nil {
			return nil, err
		}
		run.Results = append(run.Results, *r)
	}
	if g := loadResult(run, "gob/serial"); g.Bytes > 0 {
		run.SizeRatio = float64(loadResult(run, "segment/serial").Bytes) / float64(g.Bytes)
	}
	segPar := loadResult(run, "segment/parallel").LoadMs
	if segPar > 0 {
		run.SegmentVsGob = loadResult(run, "gob/serial").LoadMs / segPar
		run.ParallelSpeedup = loadResult(run, "segment/serial").LoadMs / segPar
	}
	return run, nil
}

// measureLoad times loadReps cold loads of one snapshot (best wall time
// wins) and measures the live heap the final loaded index retains across a
// GC — the steady-state cost of keeping it resident.
func measureLoad(name string, data []byte, workers int) (*LoadResult, error) {
	res := &LoadResult{Name: name, Bytes: int64(len(data))}
	var inv *index.Inverted
	for rep := 0; rep < loadReps; rep++ {
		inv = nil
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		got, err := index.LoadWorkers(bytes.NewReader(data), workers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		if rep == 0 || ms < res.LoadMs {
			res.LoadMs = ms
		}
		inv = got
		if rep == loadReps-1 {
			runtime.GC()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			res.HeapBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)
			res.EstimatedBytes = inv.MemoryBytes()
		}
	}
	runtime.KeepAlive(inv)
	return res, nil
}

// loadResult extracts the named result from a run (zero value if absent).
func loadResult(run *LoadRun, name string) LoadResult {
	for _, r := range run.Results {
		if r.Name == name {
			return r
		}
	}
	return LoadResult{}
}

// LastLoadRunMatching returns the most recent run in the benchmark file
// with the same workload shape (scale) as run, for regression gating;
// runs at other scales interleave in the file without poisoning the
// comparison.
func LastLoadRunMatching(path string, run *LoadRun) (*LoadRun, bool, error) {
	raws, err := BenchRuns(path)
	if err != nil {
		return nil, false, err
	}
	for i := len(raws) - 1; i >= 0; i-- {
		var prev LoadRun
		if err := json.Unmarshal(raws[i], &prev); err != nil {
			return nil, false, fmt.Errorf("bench: %s: decoding run %d: %w", path, i, err)
		}
		if prev.Scale == run.Scale && len(prev.Results) > 0 {
			return &prev, true, nil
		}
	}
	return nil, false, nil
}
