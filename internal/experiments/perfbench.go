package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/obs"
	"figfusion/internal/retrieval"
)

// PerfResult is one measured micro-benchmark: ns/op and allocations per
// operation come from testing.Benchmark, queries/sec is derived for the
// search benches (one op = one completed query, regardless of how many
// goroutines issued it).
type PerfResult struct {
	Name          string  `json:"name"`
	Goroutines    int     `json:"goroutines,omitempty"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"nsPerOp"`
	AllocsPerOp   int64   `json:"allocsPerOp"`
	BytesPerOp    int64   `json:"bytesPerOp"`
	QueriesPerSec float64 `json:"queriesPerSec,omitempty"`
}

// PerfRun is one complete measurement of the retrieval query path on one
// code revision. Runs accumulate in BENCH_retrieval.json so the perf
// trajectory of the query path is tracked across PRs.
type PerfRun struct {
	Label        string       `json:"label"`
	GoVersion    string       `json:"goVersion"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	Scale        int          `json:"scale"`
	Queries      int          `json:"queries"`
	K            int          `json:"k"`
	CandidateCap int          `json:"candidateCap"`
	Results      []PerfResult `json:"results"`
}

// RetrievalPerf measures the indexed query path: serial Search, Search
// under 1/4/NumCPU concurrent client goroutines, and the literal
// Algorithm 1 SearchTA path. The corpus, thresholds and query sample are
// all derived from o.Seed, so two runs on the same revision measure the
// same workload.
func RetrievalPerf(o Options, label string, candidateCap int) (*PerfRun, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	m := d.Model()
	m.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))
	// The engine carries a live metrics registry and slow log, exactly as
	// the serving binary runs it: the tracked baseline prices in the
	// instrumentation overhead rather than measuring a configuration no
	// deployment uses.
	engine, err := retrieval.NewEngine(m, retrieval.Config{
		CandidateCap: candidateCap,
		Metrics:      obs.NewRegistry(),
		SlowLog:      obs.NewSlowLog(64, 250*time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	queries := make([]*media.Object, 0, o.Queries)
	for _, id := range d.SampleQueries(o.Queries, rand.New(rand.NewSource(o.Seed+7))) {
		queries = append(queries, d.Corpus.Object(id))
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no queries sampled")
	}
	const k = 10
	run := &PerfRun{
		Label:        label,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Scale:        o.Scale,
		Queries:      len(queries),
		K:            k,
		CandidateCap: candidateCap,
	}

	measure := func(name string, goroutines int, body func(b *testing.B)) {
		r := testing.Benchmark(body)
		pr := PerfResult{
			Name:        name,
			Goroutines:  goroutines,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if pr.NsPerOp > 0 {
			pr.QueriesPerSec = 1e9 / pr.NsPerOp
		}
		run.Results = append(run.Results, pr)
	}

	// Serial latency of one indexed query.
	measure("search/serial", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			engine.Search(q, k, q.ID)
		}
	})
	// Concurrent client throughput: b.N queries split across g goroutines;
	// ns/op is wall-clock per completed query.
	gs := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, g := range gs {
		if g < 1 || seen[g] {
			continue
		}
		seen[g] = true
		g := g
		measure(fmt.Sprintf("search/concurrent/goroutines=%d", g), g, func(b *testing.B) {
			b.ReportAllocs()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < b.N; i += g {
						q := queries[i%len(queries)]
						engine.Search(q, k, q.ID)
					}
				}(w)
			}
			wg.Wait()
		})
	}
	// The literal Algorithm 1 path for reference.
	measure("searchTA/serial", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			engine.SearchTA(q, k, q.ID)
		}
	})
	return run, nil
}
