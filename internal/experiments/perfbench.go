package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"figfusion/internal/corr"
	"figfusion/internal/dataset"
	"figfusion/internal/eval"
	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/media"
	"figfusion/internal/obs"
	"figfusion/internal/retrieval"
)

// PerfResult is one measured micro-benchmark: ns/op and allocations per
// operation come from testing.Benchmark, queries/sec is derived for the
// search benches (one op = one completed query, regardless of how many
// goroutines issued it).
type PerfResult struct {
	Name          string  `json:"name"`
	Goroutines    int     `json:"goroutines,omitempty"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"nsPerOp"`
	AllocsPerOp   int64   `json:"allocsPerOp"`
	BytesPerOp    int64   `json:"bytesPerOp"`
	QueriesPerSec float64 `json:"queriesPerSec,omitempty"`
}

// PerfRun is one complete measurement of the retrieval query path on one
// code revision. Runs accumulate in BENCH_retrieval.json so the perf
// trajectory of the query path is tracked across PRs. Runs at different
// scales or pruning modes interleave in the same file; regression gates
// compare like with like through LastPerfRunMatching.
type PerfRun struct {
	Label         string       `json:"label"`
	GoVersion     string       `json:"goVersion"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Scale         int          `json:"scale"`
	Queries       int          `json:"queries"`
	K             int          `json:"k"`
	CandidateCap  int          `json:"candidateCap"`
	Pruning       string       `json:"pruning,omitempty"`
	PrecisionAt10 float64      `json:"precisionAt10,omitempty"`
	Results       []PerfResult `json:"results"`
}

// matchesBaseline reports whether prev measured the same workload shape as
// run — same scale, candidate cap and pruning mode — and may serve as its
// regression baseline. Runs recorded before the pruning field existed
// decode with an empty Pruning, which matched today's "off".
func (run *PerfRun) matchesBaseline(prev *PerfRun) bool {
	return prev.Scale == run.Scale &&
		prev.CandidateCap == run.CandidateCap &&
		normalizePruning(prev.Pruning) == normalizePruning(run.Pruning)
}

func normalizePruning(s string) string {
	if s == "" {
		return retrieval.PruneOff.String()
	}
	return s
}

// LastPerfRunMatching returns the most recent recorded run measuring the
// same workload shape as ref (see matchesBaseline), so a gate against the
// file compares like with like even when runs at other scales or pruning
// modes were appended since.
func LastPerfRunMatching(path string, ref *PerfRun) (*PerfRun, bool, error) {
	raws, err := BenchRuns(path)
	if err != nil {
		return nil, false, err
	}
	for i := len(raws) - 1; i >= 0; i-- {
		var prev PerfRun
		if err := json.Unmarshal(raws[i], &prev); err != nil {
			return nil, false, fmt.Errorf("bench: %s: decoding run %d: %w", path, i, err)
		}
		if ref.matchesBaseline(&prev) {
			return &prev, true, nil
		}
	}
	return nil, false, nil
}

// perfWorkload is the shared fixture of a query-path measurement: one
// generated corpus, trained model, prebuilt index and query sample. A
// pruning sweep measures several engine configurations over one workload,
// so building it once keeps the sweep's runs strictly comparable (and a
// -scale 4000 build out of the per-mode loop).
type perfWorkload struct {
	o       Options
	d       *dataset.Dataset
	model   *corr.Model
	index   *index.Inverted
	queries []*media.Object
}

func newPerfWorkload(o Options) (*perfWorkload, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	m := d.Model()
	m.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))
	// Same build NewEngine would run for a zero-options config.
	inv := index.BuildWorkers(m, fig.Options{}, fig.EnumerateOptions{}, 0)
	queries := make([]*media.Object, 0, o.Queries)
	for _, id := range d.SampleQueries(o.Queries, rand.New(rand.NewSource(o.Seed+7))) {
		queries = append(queries, d.Corpus.Object(id))
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no queries sampled")
	}
	return &perfWorkload{o: o, d: d, model: m, index: inv, queries: queries}, nil
}

// RetrievalPerf measures the indexed query path: serial Search, Search
// under 1/4/NumCPU concurrent client goroutines, and the literal
// Algorithm 1 SearchTA path, under the given pruning mode. The corpus,
// thresholds and query sample are all derived from o.Seed, so two runs on
// the same revision measure the same workload.
func RetrievalPerf(o Options, label string, candidateCap int, pruning retrieval.PruningMode) (*PerfRun, error) {
	w, err := newPerfWorkload(o)
	if err != nil {
		return nil, err
	}
	return w.measure(label, candidateCap, pruning)
}

// PrunePerf measures the query path once per pruning mode over one shared
// workload, returning one run per mode (labelled "<label>/<mode>").
func PrunePerf(o Options, label string, candidateCap int, modes []retrieval.PruningMode) ([]*PerfRun, error) {
	w, err := newPerfWorkload(o)
	if err != nil {
		return nil, err
	}
	runs := make([]*PerfRun, 0, len(modes))
	for _, mode := range modes {
		run, err := w.measure(fmt.Sprintf("%s/%s", label, mode), candidateCap, mode)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

func (w *perfWorkload) measure(label string, candidateCap int, pruning retrieval.PruningMode) (*PerfRun, error) {
	// The engine carries a live metrics registry and slow log, exactly as
	// the serving binary runs it: the tracked baseline prices in the
	// instrumentation overhead rather than measuring a configuration no
	// deployment uses.
	engine, err := retrieval.NewEngine(w.model, retrieval.Config{
		Index:        w.index,
		CandidateCap: candidateCap,
		Pruning:      pruning,
		Metrics:      obs.NewRegistry(),
		SlowLog:      obs.NewSlowLog(64, 250*time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	queries := w.queries
	const k = 10
	run := &PerfRun{
		Label:        label,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Scale:        w.o.Scale,
		Queries:      len(queries),
		K:            k,
		CandidateCap: candidateCap,
		Pruning:      pruning.String(),
	}

	measure := func(name string, goroutines int, body func(b *testing.B)) {
		r := testing.Benchmark(body)
		pr := PerfResult{
			Name:        name,
			Goroutines:  goroutines,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if pr.NsPerOp > 0 {
			pr.QueriesPerSec = 1e9 / pr.NsPerOp
		}
		run.Results = append(run.Results, pr)
	}

	// Serial latency of one indexed query.
	measure("search/serial", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			engine.Search(q, k, q.ID)
		}
	})
	// Concurrent client throughput: b.N queries split across g goroutines;
	// ns/op is wall-clock per completed query.
	gs := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, g := range gs {
		if g < 1 || seen[g] {
			continue
		}
		seen[g] = true
		g := g
		measure(fmt.Sprintf("search/concurrent/goroutines=%d", g), g, func(b *testing.B) {
			b.ReportAllocs()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < b.N; i += g {
						q := queries[i%len(queries)]
						engine.Search(q, k, q.ID)
					}
				}(w)
			}
			wg.Wait()
		})
	}
	// The literal Algorithm 1 path for reference.
	measure("searchTA/serial", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			engine.SearchTA(q, k, q.ID)
		}
	})
	// Mean Precision@k over the query sample against the planted-topic
	// ground truth, so a pruning sweep's quality column (EXPERIMENTS.md
	// ablation table) regenerates with the throughput numbers. Exact modes
	// must land on identical values; quantized mode may not.
	qids := make([]media.ObjectID, len(queries))
	for i, q := range queries {
		qids[i] = q.ID
	}
	sys := eval.FIGSystem{Engine: engine, Label: label}
	run.PrecisionAt10 = eval.RetrievalPrecision(sys, w.d.Corpus, qids, []int{k}, dataset.Relevant)[k]
	return run, nil
}
