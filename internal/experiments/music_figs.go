package experiments

import (
	"fmt"
	"math/rand"

	"figfusion/internal/dataset"
	"figfusion/internal/eval"
	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

// MusicTable is the extension experiment for the paper's claim that the
// solution "can be easily extended to facilitate other social media
// environments, such as video and music": the Figure 5-style modality
// ablation on a music corpus ⟨tags, audio words, listeners⟩, genre-planted
// relevance.
func MusicTable(o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	cfg := dataset.DefaultMusicConfig()
	cfg.Seed = o.Seed + 2000
	cfg.NumTracks = o.Scale
	cfg.NumGenres = topicsForScale(o.Scale) / 2
	if cfg.NumGenres < 4 {
		cfg.NumGenres = 4
	}
	d, err := dataset.GenerateMusic(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed + 23))
	queries := d.SampleQueries(o.Queries, rng)
	combos := []struct {
		label string
		kinds []media.Kind
	}{
		{"Audio", []media.Kind{media.Audio}},
		{"Text", []media.Kind{media.Text}},
		{"User", []media.Kind{media.User}},
		{"Audio+Text", []media.Kind{media.Audio, media.Text}},
		{"Text+User", []media.Kind{media.Text, media.User}},
		{"FIG", nil},
	}
	t := &Table{
		Title:   "Extension: music retrieval Precision@N by feature combination",
		Columns: nColumns(retrievalNs),
		Note: fmt.Sprintf("%d tracks, %d genres, %d queries, genre-planted relevance",
			d.Corpus.Len(), cfg.NumGenres, len(queries)),
	}
	model := d.Model()
	model.TrainThresholds(200, 0.35, rand.New(rand.NewSource(o.Seed+13)))
	for _, combo := range combos {
		engine, err := retrieval.NewEngine(model, retrieval.Config{
			BuildOpts: fig.Options{Kinds: combo.kinds},
		})
		if err != nil {
			return nil, err
		}
		sys := eval.FIGSystem{Engine: engine, Label: combo.label}
		p := eval.RetrievalPrecision(sys, d.Corpus, queries, retrievalNs, dataset.Relevant)
		t.Rows = append(t.Rows, Row{Label: combo.label, Values: valuesFor(p, retrievalNs)})
	}
	return t, nil
}
