package experiments

import (
	"fmt"
	"sort"
	"strings"

	"figfusion/internal/dataset"
	"figfusion/internal/eval"
	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

// retrievalNs are the N values of Figures 5 and 7.
var retrievalNs = []int{3, 5, 10, 20}

// Figure5 reproduces "Retrieval Performance with Varied Feature
// Combinations": Precision@N of the FIG model restricted to each modality
// subset. The paper's finding — visual weakest alone, text strongest
// single, and the full three-way combination best — is a property of the
// feature fusion, not of the corpus scale.
func Figure5(o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	trainQ, evalQ := splitQueries(d, o)
	// Train Λ once on the full model; the modality-restricted variants
	// reuse the trained parameters (λ depends only on clique size).
	fullSys, err := buildFIGSystem(d, retrieval.Config{}, o.Seed, trainQ)
	if err != nil {
		return nil, err
	}
	trained := fullSys.Engine.Scorer.Params
	combos := []struct {
		label string
		kinds []media.Kind
	}{
		{"Visual", []media.Kind{media.Visual}},
		{"Text", []media.Kind{media.Text}},
		{"User", []media.Kind{media.User}},
		{"Visual+Text", []media.Kind{media.Visual, media.Text}},
		{"Visual+User", []media.Kind{media.Visual, media.User}},
		{"Text+User", []media.Kind{media.Text, media.User}},
		{"FIG", nil},
	}
	t := &Table{
		Title:   "Figure 5: Retrieval Precision@N with varied feature combinations",
		Columns: nColumns(retrievalNs),
		Note:    fmt.Sprintf("|D|=%d, %d queries, planted-topic relevance", d.Corpus.Len(), len(evalQ)),
	}
	for _, combo := range combos {
		sys := fullSys
		if combo.kinds != nil {
			sys, err = buildFIGSystem(d, retrieval.Config{
				Params:    trained,
				BuildOpts: fig.Options{Kinds: combo.kinds},
			}, o.Seed, nil)
			if err != nil {
				return nil, fmt.Errorf("figure5 %s: %w", combo.label, err)
			}
		}
		p := eval.RetrievalPrecision(sys, d.Corpus, evalQ, retrievalNs, dataset.Relevant)
		t.Rows = append(t.Rows, Row{Label: combo.label, Values: valuesFor(p, retrievalNs)})
	}
	return t, nil
}

// Figure6 reproduces the qualitative query example: one query and its top
// results, annotated with the tags and users they share with the query —
// demonstrating, as in the paper, that matches combine visual, textual and
// user evidence.
func Figure6(o Options) (string, error) {
	if err := o.validate(); err != nil {
		return "", err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return "", err
	}
	sys, err := buildFIGSystem(d, retrieval.Config{}, o.Seed, nil)
	if err != nil {
		return "", err
	}
	q := d.Corpus.Object(media.ObjectID(o.Seed % int64(d.Corpus.Len())))
	results := sys.Search(q, 4, q.ID)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Example query result (query object %d, topic %d)\n", q.ID, q.PrimaryTopic)
	fmt.Fprintf(&b, "query tags: %s\n", strings.Join(featureNames(d, q, media.Text, 6), ", "))
	for rank, it := range results {
		obj := d.Corpus.Object(it.ID)
		fmt.Fprintf(&b, "result %d: object %d (topic %d, score %.4f)\n", rank+1, obj.ID, obj.PrimaryTopic, it.Score)
		fmt.Fprintf(&b, "  shared tags:  %s\n", strings.Join(sharedNames(d, q, obj, media.Text, 6), ", "))
		fmt.Fprintf(&b, "  shared users: %s\n", strings.Join(sharedNames(d, q, obj, media.User, 6), ", "))
	}
	return b.String(), nil
}

// Figure7 reproduces "Retrieval Performance with Varied N": Precision@N of
// FIG against the RB, TP and LSA baselines.
func Figure7(o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	trainQ, evalQ := splitQueries(d, o)
	figSys, err := buildFIGSystem(d, retrieval.Config{}, o.Seed, trainQ)
	if err != nil {
		return nil, err
	}
	base, err := buildBaselineSystems(d, trainQ, o.Seed)
	if err != nil {
		return nil, err
	}
	systems := append([]eval.System{figSys}, base...)
	t := &Table{
		Title:   "Figure 7: Retrieval Precision@N, FIG vs baselines",
		Columns: nColumns(retrievalNs),
		Note:    fmt.Sprintf("|D|=%d, %d eval queries, RB trained on %d held-out queries", d.Corpus.Len(), len(evalQ), len(trainQ)),
	}
	for _, sys := range systems {
		p := eval.RetrievalPrecision(sys, d.Corpus, evalQ, retrievalNs, dataset.Relevant)
		t.Rows = append(t.Rows, Row{Label: sys.Name(), Values: valuesFor(p, retrievalNs)})
	}
	return t, nil
}

// sizeFractions mirror the paper's 50K/100K/150K/200K/236K splits as
// fractions of the configured scale.
var sizeFractions = []float64{0.21, 0.42, 0.63, 0.85, 1.0}

// Figure8 reproduces "Retrieval Performance with Different Data Size":
// Precision@10 of all four systems over nested corpus prefixes.
func Figure8(o Options) (*Table, error) {
	return scalabilityFigure(o, false)
}

// Figure9 reproduces "Efficiency of Media Retrieval": mean seconds per
// query over the same corpus prefixes.
func Figure9(o Options) (*Table, error) {
	return scalabilityFigure(o, true)
}

func scalabilityFigure(o Options, timing bool) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	full, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(sizeFractions))
	cols := make([]string, len(sizeFractions))
	for i, f := range sizeFractions {
		sizes[i] = int(f * float64(full.Corpus.Len()))
		cols[i] = fmt.Sprintf("%d", sizes[i])
	}
	title := "Figure 8: Retrieval Precision@10 vs data size"
	if timing {
		title = "Figure 9: Mean time per query (ms) vs data size"
	}
	t := &Table{
		Title:   title,
		Columns: cols,
		Note:    "sizes are nested prefixes of one corpus (paper: 50K..236K)",
	}
	// Train Λ once on the full corpus and reuse it for every prefix: the
	// prefixes share the corpus's statistical structure, and retraining
	// per size would confound the scalability measurement.
	fullTrainQ, _ := splitQueries(full, o)
	fullSys, err := buildFIGSystem(full, retrieval.Config{}, o.Seed, fullTrainQ)
	if err != nil {
		return nil, err
	}
	trained := fullSys.Engine.Scorer.Params
	series := map[string][]float64{}
	var order []string
	for _, n := range sizes {
		d := full
		if n < full.Corpus.Len() {
			d, err = full.Subset(n)
			if err != nil {
				return nil, err
			}
		}
		trainQ, evalQ := splitQueries(d, o)
		figSys := fullSys
		if d != full {
			figSys, err = buildFIGSystem(d, retrieval.Config{Params: trained}, o.Seed, nil)
			if err != nil {
				return nil, err
			}
		}
		base, err := buildBaselineSystems(d, trainQ, o.Seed)
		if err != nil {
			return nil, err
		}
		systems := append([]eval.System{figSys}, base...)
		for _, sys := range systems {
			var v float64
			if timing {
				v = float64(eval.RetrievalTime(sys, d.Corpus, evalQ, 10).Microseconds()) / 1000.0
			} else {
				v = eval.RetrievalPrecision(sys, d.Corpus, evalQ, []int{10}, dataset.Relevant)[10]
			}
			if _, seen := series[sys.Name()]; !seen {
				order = append(order, sys.Name())
			}
			series[sys.Name()] = append(series[sys.Name()], v)
		}
	}
	for _, name := range order {
		t.Rows = append(t.Rows, Row{Label: name, Values: series[name]})
	}
	return t, nil
}

func nColumns(ns []int) []string {
	cols := make([]string, len(ns))
	for i, n := range ns {
		cols[i] = fmt.Sprintf("P@%d", n)
	}
	return cols
}

func valuesFor(p map[int]float64, ns []int) []float64 {
	vals := make([]float64, len(ns))
	for i, n := range ns {
		vals[i] = p[n]
	}
	return vals
}

// featureNames lists up to max feature names of one kind in an object.
func featureNames(d *dataset.Dataset, o *media.Object, kind media.Kind, max int) []string {
	var names []string
	for _, fid := range o.Feats {
		f := d.Corpus.Dict.Feature(fid)
		if f.Kind == kind {
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	if len(names) > max {
		names = names[:max]
	}
	return names
}

// sharedNames lists up to max feature names of one kind shared by both
// objects.
func sharedNames(d *dataset.Dataset, a, b *media.Object, kind media.Kind, max int) []string {
	var names []string
	for _, fid := range a.Feats {
		f := d.Corpus.Dict.Feature(fid)
		if f.Kind == kind && b.Has(fid) {
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	if len(names) > max {
		names = names[:max]
	}
	if len(names) == 0 {
		return []string{"(none)"}
	}
	return names
}

// RankMetricsTable is an extension experiment beyond the paper's
// Precision@N: MAP, MRR and NDCG@20 of FIG against the baselines on the
// retrieval corpus, using the rank-accuracy metric class of the paper's
// cited evaluation survey [10].
func RankMetricsTable(o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	d, err := dataset.Generate(o.retrievalConfig())
	if err != nil {
		return nil, err
	}
	trainQ, evalQ := splitQueries(d, o)
	figSys, err := buildFIGSystem(d, retrieval.Config{}, o.Seed, trainQ)
	if err != nil {
		return nil, err
	}
	base, err := buildBaselineSystems(d, trainQ, o.Seed)
	if err != nil {
		return nil, err
	}
	counts := eval.TopicCounts(d.Corpus)
	totalRelevant := func(q *media.Object) int { return counts[q.PrimaryTopic] - 1 }
	t := &Table{
		Title:   "Extension: rank-accuracy metrics at depth 20 (MAP / MRR / NDCG)",
		Columns: []string{"MAP", "MRR", "NDCG"},
		Note:    fmt.Sprintf("|D|=%d, %d eval queries, planted-topic relevance", d.Corpus.Len(), len(evalQ)),
	}
	for _, sys := range append([]eval.System{figSys}, base...) {
		m := eval.RetrievalRankMetrics(sys, d.Corpus, evalQ, 20, dataset.Relevant, totalRelevant)
		t.Rows = append(t.Rows, Row{Label: sys.Name(), Values: []float64{m.MAP, m.MRR, m.NDCG}})
	}
	return t, nil
}
