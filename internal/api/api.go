// Package api is the single source of truth for the /v1 wire contract:
// the JSON request/response bodies, the structured error envelope with its
// machine-readable codes, and the header conventions every /v1 server and
// client follows. internal/server implements the contract, internal/client
// speaks it, and internal/cluster rides it between a router front-end and
// its shard nodes — none of them declares wire shapes of its own, so the
// format cannot drift between callers.
//
// Error envelope. Every non-2xx response carries
//
//	{"error": {"code": "...", "message": "..."}}
//
// with one of the Code* constants below. Statuses map conventionally
// (StatusFor): invalid_argument → 400, not_found → 404,
// method_not_allowed → 405, conflict → 409, gone → 410, unavailable → 503,
// deadline_exceeded → 504.
//
// Header conventions:
//
//   - Every 503/unavailable response — load shed, degraded cluster, or a
//     feature the deployment cannot serve — sets Retry-After (delay
//     seconds), so clients back off an amount the server chose rather than
//     guessing.
//   - Deprecated route aliases set "Deprecation: true" when served at all;
//     by default they answer 410/gone instead (server.Options.LegacyRoutes).
package api

import "net/http"

// Error codes of the /v1 envelope.
const (
	// CodeInvalidArgument (400) rejects a malformed or out-of-range
	// request.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound (404) answers a lookup of an object or route that does
	// not exist.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed (405) answers a known route with the wrong verb.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeConflict (409) answers a stamped insert whose Expect does not
	// match the node's corpus size — the divergence signal of multi-node
	// replication.
	CodeConflict = "conflict"
	// CodeGone (410) answers a retired route: the unversioned pre-v1
	// aliases once their deprecation window closes.
	CodeGone = "gone"
	// CodeUnavailable (503) answers work the deployment cannot take on
	// right now: admission control shed it, every cluster node is out, or
	// the feature is disabled. The response always carries Retry-After.
	CodeUnavailable = "unavailable"
	// CodeDeadlineExceeded (504) answers a search that outran its
	// per-request budget.
	CodeDeadlineExceeded = "deadline_exceeded"
)

// RetryAfterHeader is the backoff hint every 503/unavailable response
// carries: an integral number of seconds the client should wait before
// retrying. internal/client honours it.
const RetryAfterHeader = "Retry-After"

// DeprecationHeader flags a response served from a deprecated route alias.
const DeprecationHeader = "Deprecation"

// ErrorBody is the envelope's inner object.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the structured error envelope every /v1 handler
// answers with: {"error": {"code": "...", "message": "..."}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// StatusFor maps an envelope code onto its conventional HTTP status.
// Unknown codes map to 500 — a server bug, not a contract state.
func StatusFor(code string) int {
	switch code {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeConflict:
		return http.StatusConflict
	case CodeGone:
		return http.StatusGone
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}
