package api_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"figfusion/internal/api"
	"figfusion/internal/cluster"
	"figfusion/internal/server"
)

// The /v1 wire format is an external contract: these literals are the
// bytes on the wire, and changing any of them breaks deployed clients and
// mixed-version clusters. A failure here means a field name, omission rule
// or code string drifted — fix the code, not the test, unless the change
// is a deliberate, versioned protocol revision.
func TestWireFieldNamesPinned(t *testing.T) {
	id := int64(42)
	ex := int64(7)
	expect := 99
	cases := []struct {
		name string
		v    interface{}
		want string
	}{
		{
			"searchRequestByID",
			api.SearchRequest{ID: &id, K: 10, Exclude: &ex, TA: true},
			`{"id":42,"k":10,"exclude":7,"ta":true}`,
		},
		{
			"searchRequestByText",
			api.SearchRequest{Text: "sunset beach", K: 5},
			`{"text":"sunset beach","k":5}`,
		},
		{
			"searchRequestByFeatures",
			api.SearchRequest{Features: []api.Feature{{Kind: "text", Name: "sunset", Count: 2}}, Month: 3, K: 1},
			`{"features":[{"kind":"text","name":"sunset","count":2}],"month":3,"k":1}`,
		},
		{
			"wireSearchResponse",
			api.WireSearchResponse{Results: []api.Item{{ID: 4, Score: 0.5}}, Partial: true},
			`{"results":[{"id":4,"score":0.5}],"partial":true}`,
		},
		{
			"batchSearchRequest",
			api.BatchSearchRequest{Queries: []api.SearchRequest{{ID: &id, K: 3}}},
			`{"queries":[{"id":42,"k":3}]}`,
		},
		{
			"batchSearchResponse",
			api.BatchSearchResponse{Results: []api.WireSearchResponse{{Results: []api.Item{}}}},
			`{"results":[{"results":[]}]}`,
		},
		{
			"resultItem",
			api.ResultItem{ID: 1, Score: 2.5, Month: 6, Tags: []string{"a"}},
			`{"id":1,"score":2.5,"month":6,"tags":["a"]}`,
		},
		{
			"searchResponse",
			api.SearchResponse{Query: "id:1", Results: []api.ResultItem{}},
			`{"query":"id:1","results":[]}`,
		},
		{
			"objectResponse",
			api.ObjectResponse{ID: 3, Month: 1, Tags: []string{"t"}, Users: []string{"u"}, VisualWords: []string{"v"}},
			`{"id":3,"month":1,"tags":["t"],"users":["u"],"visualWords":["v"]}`,
		},
		{
			"insertRequestNamedLists",
			api.InsertRequest{Tags: []string{"t"}, Users: []string{"u"}, VisualWords: []string{"v"}, Month: 2},
			`{"tags":["t"],"users":["u"],"visualWords":["v"],"month":2}`,
		},
		{
			"insertRequestReplicated",
			api.InsertRequest{Features: []api.Feature{{Kind: "user", Name: "u1", Count: 1}}, Month: 0, Expect: &expect},
			`{"features":[{"kind":"user","name":"u1","count":1}],"month":0,"expect":99}`,
		},
		{
			"insertResponse",
			api.InsertResponse{ID: 100},
			`{"id":100}`,
		},
		{
			"recommendRequest",
			api.RecommendRequest{History: []int64{1, 2}, K: 10, Now: 3},
			`{"history":[1,2],"k":10,"now":3}`,
		},
		{
			"healthResponse",
			api.HealthResponse{Status: "ok", Objects: 10, Features: 20},
			`{"status":"ok","objects":10,"features":20}`,
		},
		{
			"errorEnvelope",
			api.ErrorResponse{Error: api.ErrorBody{Code: api.CodeUnavailable, Message: "shed"}},
			`{"error":{"code":"unavailable","message":"shed"}}`,
		},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s: wire bytes drifted:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}
}

// Every consumer package must speak the identical types — the aliases in
// internal/cluster and internal/server are the api structs, not copies.
// These assignments fail to compile if any package grows its own wire
// shape again.
func TestWireTypesShared(t *testing.T) {
	var sr api.SearchRequest
	var _ cluster.SearchRequest = sr
	var wr api.WireSearchResponse
	var _ cluster.SearchResponse = wr
	var f api.Feature
	var _ cluster.Feature = f
	var ir api.InsertRequest
	var _ cluster.InsertRequest = ir
	var _ server.InsertRequest = ir
	var rr api.SearchResponse
	var _ server.SearchResponse = rr
	var ri api.ResultItem
	var _ server.ResultItem = ri
	var or api.ObjectResponse
	var _ server.ObjectResponse = or
	var eb api.ErrorBody
	var _ server.ErrorBody = eb
	var er api.ErrorResponse
	var _ server.ErrorResponse = er
}

func TestErrorCodeStatuses(t *testing.T) {
	want := map[string]int{
		api.CodeInvalidArgument:  http.StatusBadRequest,
		api.CodeNotFound:         http.StatusNotFound,
		api.CodeMethodNotAllowed: http.StatusMethodNotAllowed,
		api.CodeConflict:         http.StatusConflict,
		api.CodeGone:             http.StatusGone,
		api.CodeUnavailable:      http.StatusServiceUnavailable,
		api.CodeDeadlineExceeded: http.StatusGatewayTimeout,
	}
	for code, status := range want {
		if got := api.StatusFor(code); got != status {
			t.Errorf("StatusFor(%q) = %d, want %d", code, got, status)
		}
	}
	if got := api.StatusFor("no_such_code"); got != http.StatusInternalServerError {
		t.Errorf("StatusFor(unknown) = %d, want 500", got)
	}
}
