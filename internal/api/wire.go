// Wire types of the /v1 protocol: the JSON bodies that carry searches,
// recommendations and inserts between clients, router front-ends and shard
// nodes. The encoding is parity-preserving: queries travel by corpus ID
// when the query is a corpus object (both sides resolve the same object
// from their replicated corpora) and by (kind, name, count) feature lists
// otherwise, and scores come back as JSON float64 values, which Go
// marshals in shortest-exact form and parses back to the identical bits —
// so results over the wire are byte-identical to results in-process.
package api

import (
	"fmt"

	"figfusion/internal/media"
	"figfusion/internal/textproc"
)

// Feature is one modality-qualified feature count on the wire.
type Feature struct {
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// SearchRequest is the POST /v1/search body: a query by corpus object ID
// (ID set), by free text (Text set; the server resolves terms against its
// corpus vocabulary), or by explicit features, plus the ranking depth, the
// excluded object (nil = none), and the algorithm selector (TA = the
// literal Algorithm 1 threshold path instead of the indexed MRF search).
type SearchRequest struct {
	ID       *int64    `json:"id,omitempty"`
	Text     string    `json:"text,omitempty"`
	Features []Feature `json:"features,omitempty"`
	Month    int       `json:"month,omitempty"`
	K        int       `json:"k"`
	Exclude  *int64    `json:"exclude,omitempty"`
	TA       bool      `json:"ta,omitempty"`
}

// Item is one ranked hit on the wire.
type Item struct {
	ID    int64   `json:"id"`
	Score float64 `json:"score"`
}

// WireSearchResponse is the POST /v1/search payload. Partial marks a
// degraded answer: a router that skipped dead or diverged nodes reports
// the hits it could gather instead of failing the query.
type WireSearchResponse struct {
	Results []Item `json:"results"`
	Partial bool   `json:"partial,omitempty"`
}

// BatchSearchRequest is the POST /v1/search/batch body: up to
// MaxBatchQueries independent searches answered in order from one request.
// The server validates and resolves every query before running any, so a
// batch either runs whole or fails whole with the offending index named.
type BatchSearchRequest struct {
	Queries []SearchRequest `json:"queries"`
}

// MaxBatchQueries bounds one batch request — a batch is an amortization
// unit, not a bulk-export channel.
const MaxBatchQueries = 256

// BatchSearchResponse answers a batch: Results[i] is exactly the
// WireSearchResponse that POST /v1/search would have returned for
// Queries[i].
type BatchSearchResponse struct {
	Results []WireSearchResponse `json:"results"`
}

// ResultItem is one search hit of the rendered (human-facing) responses:
// the wire Item plus the object's month and a few tags for display.
type ResultItem struct {
	ID    int64    `json:"id"`
	Score float64  `json:"score"`
	Month int      `json:"month"`
	Tags  []string `json:"tags,omitempty"`
}

// SearchResponse is the GET /v1/search and POST /v1/recommend payload.
// Partial marks a degraded cluster answer: one or more nodes were down or
// diverged, so the results cover only the partitions that answered.
type SearchResponse struct {
	Query   string       `json:"query"`
	Results []ResultItem `json:"results"`
	Partial bool         `json:"partial,omitempty"`
}

// ObjectResponse is the GET /v1/objects/{id} payload.
type ObjectResponse struct {
	ID          int64    `json:"id"`
	Month       int      `json:"month"`
	Tags        []string `json:"tags"`
	Users       []string `json:"users"`
	VisualWords []string `json:"visualWords"`
}

// InsertRequest is the POST /v1/objects payload. Public clients send the
// named feature lists (tags/users/visualWords, each at count 1); a cluster
// router replicating an insert to a shard node sends the exact
// (kind, name, count) feature triples plus the generation stamp instead —
// Expect is the router's pre-insert corpus length, and a node whose corpus
// is not exactly that size answers 409/conflict rather than mis-assigning
// the object ID.
type InsertRequest struct {
	Tags        []string  `json:"tags,omitempty"`
	Users       []string  `json:"users,omitempty"`
	VisualWords []string  `json:"visualWords,omitempty"`
	Features    []Feature `json:"features,omitempty"`
	Month       int       `json:"month"`
	Expect      *int      `json:"expect,omitempty"`
}

// InsertResponse reports the assigned ID.
type InsertResponse struct {
	ID int64 `json:"id"`
}

// RecommendRequest is the POST /v1/recommend payload: the caller's
// favourite history as corpus object IDs, the recommendation depth, and
// the current month for the Eq. 10 decay.
type RecommendRequest struct {
	History []int64 `json:"history"`
	K       int     `json:"k"`
	Now     int     `json:"now"`
}

// HealthResponse is the machine-read subset of the GET /v1/healthz
// payload. Servers enrich it per backend (shard tables, node lists,
// generation); the fields here are the ones every deployment reports and
// clients key on.
type HealthResponse struct {
	Status   string `json:"status"`
	Objects  int    `json:"objects"`
	Features int    `json:"features"`
}

// EncodeQuery renders a query object for the wire: corpus objects by ID,
// ad-hoc objects (ID < 0, e.g. text queries) by feature list resolved
// through dict.
func EncodeQuery(dict *media.Dictionary, q *media.Object, k int, exclude media.ObjectID, ta bool) *SearchRequest {
	req := &SearchRequest{K: k, TA: ta, Month: q.Month}
	if exclude >= 0 {
		ex := int64(exclude)
		req.Exclude = &ex
	}
	if q.ID >= 0 {
		id := int64(q.ID)
		req.ID = &id
		return req
	}
	req.Features = make([]Feature, 0, len(q.Feats))
	for i, fid := range q.Feats {
		f := dict.Feature(fid)
		req.Features = append(req.Features, Feature{Kind: f.Kind.String(), Name: f.Name, Count: int(q.Counts[i])})
	}
	return req
}

// ResolveQuery rebuilds the query object a SearchRequest describes against
// a corpus: ID requests resolve to the corpus object (erroring when out of
// range), Text requests run the free-text pipeline against the corpus
// vocabulary, and feature requests intern nothing — features the corpus
// has never seen are dropped, exactly as the free-text path drops unknown
// terms — and error when nothing matches.
func ResolveQuery(corpus *media.Corpus, req *SearchRequest) (*media.Object, error) {
	if req.ID != nil {
		id := *req.ID
		if id < 0 || id >= int64(corpus.Len()) {
			return nil, fmt.Errorf("query id must identify a corpus object in [0,%d), got %d", corpus.Len(), id)
		}
		return corpus.Object(media.ObjectID(id)), nil
	}
	if req.Text != "" {
		q, ok := TextQuery(corpus, req.Text)
		if !ok {
			return nil, fmt.Errorf("no term of %q matches the corpus vocabulary", req.Text)
		}
		return q, nil
	}
	fcs := make([]media.FeatureCount, 0, len(req.Features))
	for _, f := range req.Features {
		kind, err := parseKind(f.Kind)
		if err != nil {
			return nil, err
		}
		fid, ok := corpus.Dict.Lookup(media.Feature{Kind: kind, Name: f.Name})
		if !ok {
			continue
		}
		count := f.Count
		if count < 1 {
			count = 1
		}
		fcs = append(fcs, media.FeatureCount{FID: fid, Count: uint16(count)})
	}
	if len(fcs) == 0 {
		return nil, fmt.Errorf("no query feature matches the corpus vocabulary")
	}
	return media.NewObject(-1, fcs, req.Month), nil
}

// TextQuery resolves free text into an ad-hoc query object against the
// corpus vocabulary: terms are normalized without stemming first, falling
// back to their stems, and unknown terms are dropped. ok is false when no
// term matched. This mirrors the root package's TextQuery without
// importing it (which would be an import cycle for the server).
func TextQuery(c *media.Corpus, text string) (*media.Object, bool) {
	pipeline := textproc.NewPipeline(textproc.WithoutStemming())
	var fcs []media.FeatureCount
	for _, term := range pipeline.Normalize(text) {
		fid, ok := c.Dict.Lookup(media.Feature{Kind: media.Text, Name: term})
		if !ok {
			fid, ok = c.Dict.Lookup(media.Feature{Kind: media.Text, Name: textproc.Stem(term)})
		}
		if !ok {
			continue
		}
		fcs = append(fcs, media.FeatureCount{FID: fid, Count: 1})
	}
	if len(fcs) == 0 {
		return nil, false
	}
	return media.NewObject(-1, fcs, 0), true
}

// EncodeFeatures renders an insert's exact feature/count pairs for the
// wire; DecodeFeatures inverts it.
func EncodeFeatures(feats []media.Feature, counts []int) []Feature {
	out := make([]Feature, len(feats))
	for i, f := range feats {
		out[i] = Feature{Kind: f.Kind.String(), Name: f.Name, Count: counts[i]}
	}
	return out
}

// DecodeFeatures parses wire features back into the (features, counts)
// pair Corpus.Add consumes.
func DecodeFeatures(wire []Feature) ([]media.Feature, []int, error) {
	feats := make([]media.Feature, len(wire))
	counts := make([]int, len(wire))
	for i, f := range wire {
		kind, err := parseKind(f.Kind)
		if err != nil {
			return nil, nil, err
		}
		feats[i] = media.Feature{Kind: kind, Name: f.Name}
		counts[i] = f.Count
	}
	return feats, counts, nil
}

// parseKind inverts media.Kind.String.
func parseKind(s string) (media.Kind, error) {
	switch s {
	case "text":
		return media.Text, nil
	case "visual":
		return media.Visual, nil
	case "user":
		return media.User, nil
	case "audio":
		return media.Audio, nil
	}
	return 0, fmt.Errorf("unknown feature kind %q (want text, visual, user or audio)", s)
}
