package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags use of math/rand's process-global convenience
// functions (rand.Intn, rand.Float64, rand.Seed, ...) and time-based
// seeding. Every experiment figure in EXPERIMENTS.md must be exactly
// reproducible from a dataset seed, so randomness flows through an
// injected seeded *rand.Rand; constructors (rand.New, rand.NewSource,
// rand.NewZipf) are the sanctioned way to build one.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "flags package-global math/rand calls and time-based seeding; inject a seeded *rand.Rand",
	Run:  runGlobalRand,
}

// globalRandOK are the math/rand functions that construct injectable
// generators rather than touching the global source.
var globalRandOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runGlobalRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // method on an injected *rand.Rand — exactly what we want
			}
			name := fn.Name()
			switch {
			case name == "Seed":
				p.Reportf(call.Pos(), "rand.Seed reseeds the process-global source; construct rand.New(rand.NewSource(seed)) and inject it")
			case !globalRandOK[name]:
				p.Reportf(call.Pos(), "rand.%s draws from the process-global source; figures must be reproducible — inject a seeded *rand.Rand", name)
			default:
				if arg := timeBasedArg(p, call); arg != nil {
					p.Reportf(arg.Pos(), "seeding rand.%s from the clock defeats reproducibility; derive the seed from the experiment configuration", name)
				}
			}
			return true
		})
	}
}

// timeBasedArg returns the first argument subtree that calls time.Now
// (the canonical nondeterministic seed), or nil.
func timeBasedArg(p *Pass, call *ast.CallExpr) ast.Expr {
	for _, arg := range call.Args {
		var hit bool
		ast.Inspect(arg, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
			if ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				hit = true
				return false
			}
			return true
		})
		if hit {
			return arg
		}
	}
	return nil
}
