// Package analysis is figlint's engine: a stdlib-only static-analysis
// driver (go/parser + go/types, no x/tools) with a suite of analyzers
// enforcing the invariants the FIG reproduction depends on but the Go
// compiler cannot see — epsilon discipline on similarity scores,
// injected randomness for reproducible figures, deterministic ordering
// of ranked output, and lock/goroutine hygiene on the serving path.
//
// Vetted exceptions are annotated in source with a pragma on, or on the
// line above, the offending line:
//
//	//figlint:allow floatcmp -- exact tie-break keeps Less a total order
//
// The reason after “--” is mandatory: an allowance without a
// justification is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		GlobalRand,
		MapOrder,
		LockSafety,
		NakedGo,
		LockOrder,
		GenStamp,
		ParDet,
		CtxFlow,
		ErrEnvelope,
	}
}

// Lookup resolves analyzer names (comma-separated) against the suite.
func Lookup(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to each package, filters findings through the
// //figlint:allow pragmas, and returns the surviving diagnostics sorted by
// position. Malformed pragmas are reported as "pragma" diagnostics.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows, pragmaDiags := collectAllows(pkg, analyzers)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.Info,
				diags:     &raw,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if allows.allowed(d) {
				continue
			}
			diags = append(diags, d)
		}
		diags = append(diags, pragmaDiags...)
		diags = append(diags, allows.unusedDiags(analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
