package analysis

import (
	"go/ast"
	"go/types"
)

// LockSafety enforces two invariants on the serving path's mutexes:
// every Lock/RLock in a function is paired with a deferred
// Unlock/RUnlock on the same mutex in the same function (a panic between
// a manual Lock/Unlock pair wedges every later request), and sync
// primitives are never declared as by-value parameters, results or
// receivers (a copied mutex guards nothing). Short manual critical
// sections that deliberately avoid defer must either move into a small
// helper with defer or carry //figlint:allow locksafety -- reason.
var LockSafety = &Analyzer{
	Name: "locksafety",
	Doc:  "flags Lock without defer Unlock in the same function, and sync types passed by value",
	Run:  runLockSafety,
}

func runLockSafety(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSyncByValue(p, n.Recv, n.Type)
				if n.Body != nil {
					checkLockDefer(p, n.Body)
				}
			case *ast.FuncLit:
				checkSyncByValue(p, nil, n.Type)
				checkLockDefer(p, n.Body)
			}
			return true
		})
	}
}

type lockSite struct {
	call *ast.CallExpr
	recv string
	read bool // RLock rather than Lock
}

// checkLockDefer scans one function scope (excluding nested function
// literals, which have their own defer stack) for Lock calls lacking a
// matching deferred Unlock.
func checkLockDefer(p *Pass, body *ast.BlockStmt) {
	var locks []lockSite
	deferred := make(map[string]bool) // recv text + flavor of deferred unlocks
	walkScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, recv, name := syncMethodCall(p, n.X); call != nil {
				switch name {
				case "Lock":
					locks = append(locks, lockSite{call, recv, false})
				case "RLock":
					locks = append(locks, lockSite{call, recv, true})
				}
			}
		case *ast.DeferStmt:
			if _, recv, name := syncMethodCall(p, n.Call); name == "Unlock" || name == "RUnlock" {
				deferred[recv+"/"+name] = true
			}
		}
	})
	for _, l := range locks {
		want := l.recv + "/Unlock"
		verb := "Lock"
		if l.read {
			want = l.recv + "/RUnlock"
			verb = "RLock"
		}
		if !deferred[want] {
			p.Reportf(l.call.Pos(), "%s.%s() without a matching defer in this function; a panic in the critical section leaves the mutex held — use defer %s.%s() or //figlint:allow locksafety -- reason",
				l.recv, verb, l.recv, want[len(l.recv)+1:])
		}
	}
}

// syncMethodCall unwraps e as a call to a method of package sync,
// returning the call, the receiver's source text, and the method name.
func syncMethodCall(p *Pass, e ast.Expr) (*ast.CallExpr, string, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", ""
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", ""
	}
	return call, types.ExprString(sel.X), fn.Name()
}

// walkScope visits the statements of one function body without
// descending into nested function literals.
func walkScope(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// syncValueTypes are the sync primitives that must not be copied.
var syncValueTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Map": true, "Pool": true, "Cond": true,
}

func checkSyncByValue(p *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			named, ok := t.(*types.Named)
			if !ok {
				continue
			}
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncValueTypes[obj.Name()] {
				p.Reportf(field.Type.Pos(), "sync.%s %s by value copies the lock state; use *sync.%s", obj.Name(), what, obj.Name())
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}
