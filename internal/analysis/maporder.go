package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags slices built by ranging over a map that then escape the
// function (returned, stored, serialized) without a deterministic sort,
// and direct serialization from inside a map-range body. Go randomizes
// map iteration order, so ranked top-k lists, persisted index rows and
// figure tables assembled this way differ between runs even with a fixed
// dataset seed — the cross-run determinism EXPERIMENTS.md promises
// requires every map-derived ordering to be re-sorted with a total
// order (score, then object ID).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map-iteration results that escape without a deterministic sort",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapOrder(p, fd.Body)
			}
		}
	}
}

func checkMapOrder(p *Pass, body *ast.BlockStmt) {
	var loops []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isMapType(p, r.X) {
			loops = append(loops, r)
		}
		return true
	})
	for _, loop := range loops {
		checkSerializeInLoop(p, loop)
		for _, obj := range appendTargets(p, loop) {
			checkEscapeWithoutSort(p, body, loop, obj)
		}
	}
}

func isMapType(p *Pass, e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// appendTargets returns the objects of local slice variables appended to
// inside the loop body (s = append(s, ...)).
func appendTargets(p *Pass, loop *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(p, call, "append") {
			return true
		}
		obj := p.TypesInfo.ObjectOf(id)
		if obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// checkSerializeInLoop flags writes to an output stream from inside the
// map-range body: fmt.Print/Fprint families and Encoder.Encode calls.
func checkSerializeInLoop(p *Pass, loop *ast.RangeStmt) {
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		name := fn.Name()
		switch {
		case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
			p.Reportf(call.Pos(), "fmt.%s inside a map-range body emits in nondeterministic order; collect, sort, then print", name)
		case name == "Encode" && fn.Type().(*types.Signature).Recv() != nil:
			p.Reportf(call.Pos(), "Encode inside a map-range body serializes in nondeterministic order; collect, sort, then encode")
		}
		return true
	})
}

// checkEscapeWithoutSort reports the loop if obj escapes the function
// after the loop with no intervening deterministic sort.
func checkEscapeWithoutSort(p *Pass, body *ast.BlockStmt, loop *ast.RangeStmt, obj types.Object) {
	sorted := false
	var escape ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= loop.End() {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if !exprContainsObj(p, n, obj) {
				return true
			}
			switch {
			case isSortLike(p, n):
				sorted = true
			case isBuiltin(p, n, "append", "len", "cap", "copy", "delete"):
				// growth or size queries, order-insensitive
			default:
				if escape == nil {
					escape = n
				}
			}
			return false // args already scanned; don't double-report nested calls
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := r.(*ast.Ident); ok && p.TypesInfo.ObjectOf(id) == obj {
					if escape == nil {
						escape = n
					}
				}
			}
		case *ast.SendStmt:
			if exprContainsObj(p, n.Value, obj) && escape == nil {
				escape = n
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if _, isCall := r.(*ast.CallExpr); isCall {
					continue // handled by the CallExpr case
				}
				if exprContainsObj(p, r, obj) && escape == nil {
					escape = n
				}
			}
		}
		return true
	})
	if escape != nil && !sorted {
		p.Reportf(loop.Pos(), "slice %q is built by ranging over a map and escapes without a deterministic sort; sort with a total order (e.g. score then ID) before it leaves the function", obj.Name())
	}
}

// isSortLike recognizes calls that impose a deterministic order: anything
// from package sort or slices, and helpers whose name mentions sorting.
func isSortLike(p *Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if path := fn.Pkg().Path(); path == "sort" || path == "slices" {
				return true
			}
		}
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

func isBuiltin(p *Pass, call *ast.CallExpr, names ...string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := p.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return false
	}
	for _, n := range names {
		if id.Name == n {
			return true
		}
	}
	return false
}

func exprContainsObj(p *Pass, e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.TypesInfo.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
