// Fixture for the errenvelope analyzer. The package is named server so
// the envelope rule applies; writeError stands in for the real /v1
// envelope helper.
package server

import (
	"encoding/json"
	"net/http"
)

// writeError is the envelope helper: every error becomes a JSON body.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status) // silent: non-constant status is the helper's own plumbing
	_ = json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{"code": code, "message": msg}})
}

func rawError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad request", http.StatusBadRequest) // want "bypasses the /v1 JSON error envelope"
}

func bareHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNotFound) // want "no JSON envelope body"
}

func bareHeaderLiteral(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(500) // want "no JSON envelope body"
}

func enveloped(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusBadRequest, "bad_query", "missing id") // silent: the envelope path
}

func success(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusCreated) // silent: success statuses need no envelope
	_ = json.NewEncoder(w).Encode(map[string]bool{"ok": true})
}

// statusWriter mirrors the instrumentation middleware: forwarding a
// recorded, non-constant status is the plumbing envelopes ride on.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) flush(w http.ResponseWriter) {
	w.WriteHeader(sw.status) // silent: dynamic status forward
}

func pragmaCase(w http.ResponseWriter, r *http.Request) {
	//figlint:allow errenvelope -- fixture: raw probe endpoint predating the envelope
	http.Error(w, "gone", http.StatusGone) // silent: allowed above
}
