// Fixture proving nakedgo only applies to the serving-path packages:
// this package is not named server or retrieval, so the naked goroutine
// below must stay silent.
package fixture

func spawnNaked() {
	go func() { // silent: package out of nakedgo's scope
		work()
	}()
}

func work() {}
