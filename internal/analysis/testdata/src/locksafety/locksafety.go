// Fixture for the locksafety analyzer.
package fixture

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

func (s *store) manualUnlock(k string) int {
	s.mu.Lock() // want "without a matching defer"
	v := s.data[k]
	s.mu.Unlock()
	return v
}

func (s *store) deferred(k string) int {
	s.mu.Lock() // silent: deferred unlock below
	defer s.mu.Unlock()
	return s.data[k]
}

func (s *store) flavorMismatch(k string) int {
	s.rw.RLock() // want "without a matching defer"
	defer s.rw.Unlock()
	return s.data[k]
}

func (s *store) deferredRead(k string) int {
	s.rw.RLock() // silent: matching RUnlock deferred
	defer s.rw.RUnlock()
	return s.data[k]
}

func (s *store) wrongMutex(other *sync.Mutex) {
	s.mu.Lock() // want "without a matching defer"
	defer other.Unlock()
}

func (s *store) literalScope() func() {
	return func() {
		s.mu.Lock() // want "without a matching defer"
		s.data["x"]++
		s.mu.Unlock()
	}
}

func (s *store) literalDeferred() func() {
	return func() {
		s.mu.Lock() // silent: defer inside the same literal
		defer s.mu.Unlock()
		s.data["x"]++
	}
}

func byValue(mu sync.Mutex) {} // want "by value"

func byPointer(mu *sync.Mutex) {} // silent: pointer

func wgValue(wg sync.WaitGroup) {} // want "by value"

func returnsOnce() sync.Once { // want "by value"
	return sync.Once{}
}
