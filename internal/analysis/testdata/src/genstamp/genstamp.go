// Fixture for the genstamp analyzer: generation-stamped cache fills must
// re-load the generation after computing and discard on mismatch. The
// local Cache/model stubs mirror internal/floatcache's Put shape.
package fixture

type Cache struct{ m map[string]float64 }

func (c *Cache) Put(gen uint64, key string, v float64) { c.m[key] = v }

type pool struct{}

// Put here has one argument, like sync.Pool's — never a stamped fill.
func (p *pool) Put(v interface{}) {}

type model struct{ gen uint64 }

func (m *model) Generation() uint64 { return m.gen }

func compute() float64 { return 1.0 }

// guarded is the blessed idiom: capture, compute, re-check, fill.
func guarded(m *model, c *Cache, key string) float64 {
	gen := m.Generation()
	v := compute()
	if m.Generation() == gen {
		c.Put(gen, key, v) // silent: guarded by the re-check above
	}
	return v
}

// guardedFlipped writes the comparison the other way round.
func guardedFlipped(m *model, c *Cache, key string) float64 {
	gen := m.Generation()
	v := compute()
	if gen == m.Generation() {
		c.Put(gen, key, v) // silent: same guard, operands swapped
	}
	return v
}

// guardedCompound keeps the re-check inside a compound condition.
func guardedCompound(m *model, c *Cache, key string, ok bool) float64 {
	gen := m.Generation()
	v := compute()
	if ok && m.Generation() == gen {
		c.Put(gen, key, v) // silent: the && arm carries the re-check
	}
	return v
}

// unguarded publishes a value computed against possibly-superseded state.
func unguarded(m *model, c *Cache, key string) float64 {
	gen := m.Generation()
	v := compute()
	c.Put(gen, key, v) // want "not guarded by a post-compute generation re-check"
	return v
}

// wrongGuard re-checks a different expression than the one stamped in.
func wrongGuard(m *model, c *Cache, key string, other uint64) float64 {
	gen := m.Generation()
	v := compute()
	if m.Generation() == other {
		c.Put(gen, key, v) // want "not guarded by a post-compute generation re-check"
	}
	return v
}

// closureGuard: a guard in the enclosing function does not cover a fill
// inside a nested literal — the race window is the literal's own.
func closureGuard(m *model, c *Cache, key string) func() {
	gen := m.Generation()
	v := compute()
	if m.Generation() == gen {
		return func() {
			c.Put(gen, key, v) // want "not guarded by a post-compute generation re-check"
		}
	}
	return nil
}

// poolPut: one-argument Puts are not stamped fills.
func poolPut(p *pool) {
	p.Put(42) // silent: not a generation-stamped cache
}

// pragmaCase keeps the vetted-exception path covered.
func pragmaCase(m *model, c *Cache, key string) {
	gen := m.Generation()
	v := compute()
	//figlint:allow genstamp -- fixture: single-threaded fill, no generation race
	c.Put(gen, key, v) // silent: allowed above
}
