// Fixture for the //figlint:allow pragma machinery.
package fixture

func standalone(a, b float64) bool {
	//figlint:allow floatcmp -- fixture: standalone pragma suppresses the next line
	return a == b // silent: allowed above
}

func trailing(a, b float64) bool {
	return a == b //figlint:allow floatcmp -- fixture: trailing pragma suppresses its own line
}

func missingReason(a, b float64) bool {
	//figlint:allow floatcmp // want "needs a justification"
	return a == b // want "floating-point"
}

func unknownName(a, b float64) bool {
	//figlint:allow nosuchcheck -- some reason // want "unknown analyzer"
	return a == b // want "floating-point"
}

func wrongAnalyzer(a, b float64) bool {
	//figlint:allow maporder -- fixture: names the wrong analyzer, so floatcmp still fires // want "suppresses nothing"
	return a == b // want "floating-point"
}

func multiName(a, b float64) bool {
	//figlint:allow floatcmp,maporder -- fixture: lists several analyzers
	return a == b // silent: floatcmp among the allowed names
}
