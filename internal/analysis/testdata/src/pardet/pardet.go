// Fixture for the pardet analyzer: closures handed to par.Range may only
// fill disjoint slots indexed by their own loop variable. The local par
// stub mirrors internal/par's API shape.
package fixture

import "math/rand"

type parAPI struct{}

func (parAPI) Range(n, workers int, body func(lo, hi int)) { body(0, n) }
func (parAPI) Workers(workers, n int) int                  { return 1 }

var par parAPI

type result struct{ v float64 }

func slotFill(n int) []float64 {
	slots := make([]float64, n)
	par.Range(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			slots[i] = float64(i) // silent: disjoint slot indexed by the loop variable
		}
	})
	return slots
}

func structSlotFill(n int) []result {
	slots := make([]result, n)
	par.Range(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			slots[i].v = float64(i) // silent: field of a disjoint slot
		}
	})
	return slots
}

func capturedAccumulate(n int) float64 {
	var total float64
	par.Range(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += float64(i) // want "write to captured total"
		}
	})
	return total
}

func sharedAppend(n int) []float64 {
	var out []float64
	par.Range(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out = append(out, float64(i)) // want "append to captured out"
		}
	})
	return out
}

func mapWrite(n int) map[int]float64 {
	m := make(map[int]float64)
	par.Range(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m[i] = float64(i) // want "write to captured map m"
		}
	})
	return m
}

func fixedSlot(n int) []float64 {
	slots := make([]float64, n)
	par.Range(n, 4, func(lo, hi int) {
		slots[0] = 1 // want "not derived from the loop variable"
	})
	return slots
}

func rngDraw(n int, rng *rand.Rand) []float64 {
	slots := make([]float64, n)
	par.Range(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			slots[i] = rng.Float64() // want "rng draw inside a parallel body"
		}
	})
	return slots
}

func localState(n int) []float64 {
	slots := make([]float64, n)
	par.Range(n, 4, func(lo, hi int) {
		sum := 0.0 // silent: closure-local accumulator
		for i := lo; i < hi; i++ {
			sum += float64(i)
			slots[i] = sum
		}
	})
	return slots
}

func serialAppend(n int) []float64 {
	// Outside a parallel body the same shapes are fine.
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // silent: serial path
	}
	return out
}

func pragmaCase(n int) float64 {
	var total float64
	par.Range(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			//figlint:allow pardet -- fixture: single worker pinned by the caller
			total += float64(i) // silent: allowed above
		}
	})
	return total
}
