// Fixture for the floatcmp analyzer: positive cases carry want comments,
// everything else must stay silent.
package fixture

func epsEq(a, b float64) bool { return a-b < 1e-9 && b-a < 1e-9 }

type myFloat float64

func compare(a, b float64, f32 float32, m myFloat, i, j int) bool {
	if a == b { // want "floating-point"
		return true
	}
	if a != b { // want "floating-point"
		return false
	}
	_ = a == 0            // want "floating-point"
	_ = f32 == float32(b) // want "floating-point"
	_ = m == myFloat(a)   // want "floating-point"

	switch a { // want "switch on a floating-point"
	case 1.0:
	}

	if i == j { // silent: integer comparison
		return true
	}
	if epsEq(a, b) { // silent: epsilon helper
		return true
	}
	const c1, c2 = 1.5, 2.5
	_ = c1 == c2 // silent: both operands constant, folded at compile time
	s := "x"
	_ = s == "y" // silent: strings
	switch i {   // silent: integer switch
	case 1:
	}
	return false
}
