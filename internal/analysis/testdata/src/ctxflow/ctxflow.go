// Fixture for the ctxflow analyzer. The package is named retrieval so the
// exported-entry-point rule applies.
package retrieval

import "context"

type Item struct{ Score float64 }

type Engine struct{}

func (e *Engine) run(ctx context.Context, q string, k int) []Item { return nil }

// SearchContext is the cancellable form — context parameter, no findings.
func (e *Engine) SearchContext(ctx context.Context, q string, k int) ([]Item, error) {
	return e.run(ctx, q, k), nil
}

// Search delegates: Background as a direct argument of the call to
// SearchContext is the sanctioned wrapper idiom.
func (e *Engine) Search(q string, k int) []Item {
	out, _ := e.SearchContext(context.Background(), q, k)
	return out
}

// SearchTA neither takes a context nor delegates — the hung-shard shape.
func (e *Engine) SearchTA(q string, k int) []Item { // want "neither takes a context.Context nor delegates"
	return e.run(context.TODO(), q, k) // want "detaches this call tree from request cancellation"
}

// SearchDirect takes the context itself.
func (e *Engine) SearchDirect(ctx context.Context, q string, k int) []Item {
	return e.run(ctx, q, k)
}

// RecommendContext + Recommend: the delegation rule covers the recommend
// surface too.
func (e *Engine) RecommendContext(ctx context.Context, user string, k int) ([]Item, error) {
	return e.run(ctx, user, k), nil
}

func (e *Engine) Recommend(user string, k int) []Item {
	out, _ := e.RecommendContext(context.Background(), user, k)
	return out
}

// helper mints a Background outside any delegation call.
func (e *Engine) helper(q string) []Item {
	ctx := context.Background() // want "detaches this call tree from request cancellation"
	return e.run(ctx, q, 1)
}

// wrongDelegate calls some other *Context function; Background is not
// sanctioned by a name mismatch.
func (e *Engine) wrongDelegate(q string, k int) []Item {
	out, _ := e.SearchContext(context.Background(), q, k) // want "detaches this call tree from request cancellation"
	return out
}

// unexported blocking helpers are not entry points.
func (e *Engine) searchLocal(q string, k int) []Item {
	return nil
}

// SearchStats is exported but its body delegates, so only the delegation
// rule applies and it is satisfied.
func (e *Engine) SearchStats(q string) []Item {
	out, _ := e.SearchStatsContext(context.Background(), q)
	return out
}

func (e *Engine) SearchStatsContext(ctx context.Context, q string) ([]Item, error) {
	return e.run(ctx, q, 1), nil
}

// pragmaCase keeps the vetted-exception path covered.
func (e *Engine) pragmaCase(q string) []Item {
	//figlint:allow ctxflow -- fixture: offline tool path, cancellation owned by the caller
	ctx := context.Background() // silent: allowed above
	return e.run(ctx, q, 1)
}
