// Fixture for the lockorder analyzer. The package is named shard so the
// tier table (shard.Router.insertMu > shard.Router.statsMu >
// shard.shardState.mu) applies.
package shard

import "sync"

type shardState struct {
	mu      sync.RWMutex
	objects int
}

type Router struct {
	insertMu sync.Mutex
	statsMu  sync.RWMutex
	shards   []*shardState
}

// legalInsert mirrors the real routed-insert protocol: insertMu for the
// whole insert, statsMu only for the global phase (released before the
// shard phase), then the owning shard's lock. Every edge descends, the
// insertMu→shard edge legitimately skips tier 1.
func (r *Router) legalInsert() {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	r.appendObject() // silent: insertMu → statsMu descends
	sh := r.shards[0]
	sh.mu.Lock() // silent: insertMu → shard mu skips a tier downward
	sh.objects++
	sh.mu.Unlock()
}

func (r *Router) appendObject() {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
}

// invertedInsert takes the statistics lock first and then tries to start
// an insert — the tier-1-before-tier-0 inversion that deadlocks against
// legalInsert.
func (r *Router) invertedInsert() {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.insertMu.Lock() // want "must only be descended"
	r.insertMu.Unlock()
}

// shardThenStats reads shard state and then reaches back up for the
// global statistics — ascending from tier 2 to tier 1.
func (r *Router) shardThenStats(sh *shardState) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r.statsMu.RLock() // want "must only be descended"
	defer r.statsMu.RUnlock()
}

// View pins the statistics; viewTwice re-enters it through a call while
// the read lock is already held — a deadlock once a writer queues between
// the two acquisitions.
func (r *Router) View(fn func()) {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	fn()
}

func (r *Router) viewTwice() {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	r.View(func() {}) // want "not reentrant"
}

// Two untiered locks acquired in opposite orders in different functions:
// neither order is blessed, so both edges of the cycle report.
var (
	muA sync.Mutex
	muB sync.Mutex
)

func abOrder() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want "lock-order cycle"
	muB.Unlock()
}

func baOrder() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want "lock-order cycle"
	muA.Unlock()
}

// goroutineScope: a spawned worker's acquisitions do not extend the
// parent's held set — no insertMu→statsMu-inversion edge exists here.
func (r *Router) goroutineScope() {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	go func() {
		r.insertMu.Lock() // silent: goroutine body starts with an empty held set
		r.insertMu.Unlock()
	}()
}

// gatherStyle: a function literal passed to a call while statsMu is held
// runs under it — its shard-lock acquisition descends, staying silent.
func (r *Router) gatherStyle() {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	r.each(func(sh *shardState) {
		sh.mu.RLock() // silent: statsMu → shard mu descends
		defer sh.mu.RUnlock()
	})
}

func (r *Router) each(fn func(*shardState)) {
	for _, sh := range r.shards {
		fn(sh)
	}
}

// released: an explicit unlock before the next acquisition leaves no held
// edge at all.
func (r *Router) released() {
	r.statsMu.Lock()
	r.statsMu.Unlock()
	r.insertMu.Lock() // silent: statsMu was released first
	defer r.insertMu.Unlock()
}

// pragmaCase: a vetted inversion stays suppressible.
func (r *Router) pragmaCase(sh *shardState) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	//figlint:allow lockorder -- fixture: vetted exception keeps the pragma path covered
	r.statsMu.RLock() // silent: allowed above
	defer r.statsMu.RUnlock()
}
