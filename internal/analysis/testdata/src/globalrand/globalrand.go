// Fixture for the globalrand analyzer.
package fixture

import (
	"math/rand"
	"time"
)

func draws() int {
	rand.Seed(42)                      // want "rand.Seed reseeds the process-global source"
	n := rand.Intn(10)                 // want "process-global"
	f := rand.Float64()                // want "process-global"
	rand.Shuffle(3, func(i, j int) {}) // want "process-global"
	_ = rand.Perm(4)                   // want "process-global"

	rng := rand.New(rand.NewSource(7)) // silent: injected constructor chain
	n += rng.Intn(10)                  // silent: method on the injected generator
	f += rng.Float64()                 // silent
	_ = f

	bad := rand.New(rand.NewSource(time.Now().UnixNano())) // want "clock"
	_ = bad.Intn(2)                                        // silent: the construction was the offence
	return n
}
