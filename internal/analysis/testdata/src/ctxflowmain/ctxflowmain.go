// Scope fixture for ctxflow: package main owns the root context, so
// minting Background here is exactly right and produces nothing.
package main

import "context"

func run(ctx context.Context) error { return nil }

func main() {
	ctx := context.Background() // silent: main owns the root context
	_ = run(ctx)
}
