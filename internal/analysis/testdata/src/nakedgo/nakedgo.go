// Fixture for the nakedgo analyzer. The package is named "server" so the
// serving-path scoping applies (see nakedGoPackages).
package server

import "sync"

func spawnNaked() {
	go func() { // want "neither recovers panics nor signals"
		work()
	}()
}

func spawnWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // silent: WaitGroup signals completion
		defer wg.Done()
		work()
	}()
}

func spawnChan() <-chan int {
	ch := make(chan int, 1)
	go func() { // silent: channel send signals completion
		ch <- workValue()
	}()
	return ch
}

func spawnRecover() {
	go func() { // silent: recovers panics
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		work()
	}()
}

func spawnClose(done chan struct{}) {
	go func() { // silent: close signals completion
		defer close(done)
		work()
	}()
}

func spawnNamed() {
	go work() // silent: only func literals are checked
}

func work()          {}
func workValue() int { return 1 }
