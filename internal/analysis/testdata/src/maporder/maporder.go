// Fixture for the maporder analyzer.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "escapes without a deterministic sort"
		out = append(out, k)
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m { // silent: sorted before returning
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysSortSlice(m map[string]int) []string {
	var out []string
	for k := range m { // silent: sort.Slice imposes a total order
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func localOnly(m map[string]int) int {
	var vals []int
	for _, v := range m { // silent: the slice never escapes
		vals = append(vals, v)
	}
	return len(vals)
}

func passUnsorted(m map[string]int, sink func([]string)) {
	var out []string
	for k := range m { // want "escapes without a deterministic sort"
		out = append(out, k)
	}
	sink(out)
}

func printLoop(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map-range body emits"
	}
}

func sliceRange(xs []int) []int {
	var out []int
	for _, v := range xs { // silent: ranging a slice is ordered
		out = append(out, v)
	}
	return out
}
