package analysis

import (
	"go/ast"
	"go/types"
)

// ParDet enforces the determinism contract PR 3 established for parallel
// stages: a closure handed to par.Range (or sized by par.Workers) may only
// write per-item slots of a preallocated slice, indexed by its own loop
// variable. Everything else a parallel body might do to captured state —
// accumulate into a captured scalar, append to a shared slice, write a
// map, draw from an rng — either races outright or makes the result
// depend on goroutine interleaving and worker count, breaking the
// byte-identical-at-any-fan-out guarantee the benchmarks and snapshot
// tests pin. Floating-point accumulations and rng draws belong on the
// serial path in sample order (see vq.TrainVocabularyWorkers for the
// canonical split).
var ParDet = &Analyzer{
	Name: "pardet",
	Doc:  "flags non-slot writes, appends, map writes, and rng draws inside par.Range/par.Workers closures",
	Run:  runParDet,
}

func runParDet(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkParBody(p, lit)
				}
			}
			return true
		})
	}
}

// isParCall matches par.Range(...) / par.Workers(...) by selector shape so
// golden fixtures can model the par package with a local stub.
func isParCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "par" {
		return false
	}
	return sel.Sel.Name == "Range" || sel.Sel.Name == "Workers"
}

// checkParBody scans one parallel closure for writes that escape the
// per-slot discipline and for rng draws.
func checkParBody(p *Pass, lit *ast.FuncLit) {
	captured := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End())
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() == ":=" {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				checkParWrite(p, lit, captured, lhs, rhs)
			}
		case *ast.IncDecStmt:
			checkParWrite(p, lit, captured, n.X, nil)
		case *ast.CallExpr:
			if fn := calledFunc(p, n); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					p.Reportf(n.Pos(), "rng draw inside a parallel body makes the stream depend on goroutine interleaving; draw on the serial path in sample order")
				}
			}
		}
		return true
	})
}

// checkParWrite classifies one assignment target inside a parallel body.
// The legal shape is a disjoint-slot write: an access chain rooted in a
// captured slice where some index is derived from the closure's own loop
// variable (slots[i], pairs[i].v, rows[i][j]). Everything else on a
// captured root is reported.
func checkParWrite(p *Pass, lit *ast.FuncLit, captured func(types.Object) bool, lhs, rhs ast.Expr) {
	root := exprRootIdent(lhs)
	if root == nil || !captured(p.TypesInfo.ObjectOf(root)) {
		return
	}
	hasIndex, viaMap, localIdx := classifyAccess(p, lit, lhs)
	if viaMap {
		p.Reportf(lhs.Pos(), "write to captured map %s inside a parallel body; map writes race — collect per-item results into slice slots and fold serially", root.Name)
		return
	}
	if hasIndex {
		if !localIdx {
			p.Reportf(lhs.Pos(), "indexed write to captured %s is not derived from the loop variable; parallel bodies must write disjoint slots", root.Name)
		}
		return
	}
	if _, ok := lhs.(*ast.Ident); ok {
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				p.Reportf(lhs.Pos(), "append to captured %s inside a parallel body races and its element order depends on worker count; preallocate and fill fixed slots instead", root.Name)
				return
			}
		}
		p.Reportf(lhs.Pos(), "write to captured %s inside a parallel body; parallel bodies must write disjoint slots of a preallocated slice, accumulations belong on the serial path", root.Name)
		return
	}
	p.Reportf(lhs.Pos(), "write through captured %s inside a parallel body; shared structure mutation races across workers", root.Name)
}

// classifyAccess unwraps an lvalue's access chain, reporting whether it
// indexes at all, whether any level indexes a map, and whether any index
// expression mentions an identifier declared inside the closure (the loop
// variable or something derived from it).
func classifyAccess(p *Pass, lit *ast.FuncLit, lhs ast.Expr) (hasIndex, viaMap, localIdx bool) {
	e := lhs
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			hasIndex = true
			if tv, ok := p.TypesInfo.Types[t.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					viaMap = true
				}
			}
			ast.Inspect(t.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := p.TypesInfo.ObjectOf(id); obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
						localIdx = true
					}
				}
				return !localIdx
			})
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		default:
			return hasIndex, viaMap, localIdx
		}
	}
}

// exprRootIdent unwraps selectors, derefs, parens, and indexes down to the
// base identifier of an lvalue.
func exprRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// calledFunc resolves the *types.Func a call invokes, if any.
func calledFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
