package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != on floating-point operands, including switch
// statements whose tag is a float. MRF log-potentials, clique CorS
// weights, and similarity scores are all accumulated floats; exact
// equality on them is almost always a latent bug (two mathematically
// equal scores rarely compare equal after different summation orders).
// Use an epsilon comparison (internal/numeric) or, where exact equality
// is the point — total-order tie-breaking, zero-value sentinels —
// annotate with //figlint:allow floatcmp -- reason.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point operands; scores need epsilon comparison",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(p, n.X) && !isFloat(p, n.Y) {
					return true
				}
				if isConst(p, n.X) && isConst(p, n.Y) {
					return true // folded at compile time; no runtime rounding involved
				}
				p.Reportf(n.OpPos, "%s on floating-point operands; use an epsilon comparison (internal/numeric) or //figlint:allow floatcmp -- reason", n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(p, n.Tag) {
					p.Reportf(n.Tag.Pos(), "switch on a floating-point value compares cases with ==; use epsilon comparisons")
				}
			}
			return true
		})
	}
}

func isFloat(p *Pass, e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
