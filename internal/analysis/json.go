package analysis

import (
	"encoding/json"
	"io"
)

// JSONDiagnostic is the machine-readable form of one finding — the schema
// `figlint -json` emits and the CI problem matcher parses. File is the
// path exactly as the run resolved it (figlint shortens to
// working-directory-relative before encoding).
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON encodes diagnostics as a JSON array (never null — an empty
// run encodes as []) with a trailing newline. rel, when non-nil, maps each
// diagnostic's filename before encoding.
func WriteJSON(w io.Writer, diags []Diagnostic, rel func(string) string) error {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel != nil {
			file = rel(file)
		}
		out = append(out, JSONDiagnostic{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
