package analysis

import (
	"strings"
)

const pragmaPrefix = "//figlint:allow"

// allowKey identifies one (file, line, analyzer) allowance.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

func (s allowSet) allowed(d Diagnostic) bool {
	return s[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
}

// collectAllows scans a package's comments for //figlint:allow pragmas.
// A pragma suppresses the named analyzers on its own line (trailing
// comment) and on the line immediately after the comment group
// (standalone comment). Syntax:
//
//	//figlint:allow name[,name...] -- reason
//
// Pragmas with no analyzer names, an unknown analyzer name, or no reason
// are reported as diagnostics themselves so vetted exceptions stay
// auditable.
func collectAllows(pkg *Package, analyzers []*Analyzer) (allowSet, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	allows := make(allowSet)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				report := func(msg string) {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "pragma", Message: msg})
				}
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //figlint:allowed — not ours.
					continue
				}
				names, reason, found := strings.Cut(rest, "--")
				if !found || strings.TrimSpace(reason) == "" {
					report(`allow pragma needs a justification: //figlint:allow name[,name] -- reason`)
					continue
				}
				fields := strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				if len(fields) == 0 {
					report(`allow pragma names no analyzer: //figlint:allow name[,name] -- reason`)
					continue
				}
				ok := true
				for _, n := range fields {
					if !known[n] {
						report("allow pragma names unknown analyzer " + quote(n))
						ok = false
					}
				}
				if !ok {
					continue
				}
				// The pragma covers its own line (trailing form) and the
				// line after the comment's end (standalone form).
				endLine := pkg.Fset.Position(c.End()).Line
				for _, n := range fields {
					allows[allowKey{pos.Filename, pos.Line, n}] = true
					allows[allowKey{pos.Filename, endLine + 1, n}] = true
				}
			}
		}
	}
	return allows, diags
}

func quote(s string) string { return `"` + s + `"` }
