package analysis

import (
	"go/token"
	"strings"
)

const pragmaPrefix = "//figlint:allow"

// allowKey identifies one (file, line, analyzer) allowance.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// pragmaRec is one parsed allow pragma; used tracks whether any diagnostic
// was actually suppressed through it, so dead pragmas can be reported.
type pragmaRec struct {
	pos   token.Position
	names []string
	used  bool
}

// allowSet indexes every (file, line, analyzer) allowance back to its
// pragma of origin.
type allowSet struct {
	keys    map[allowKey]*pragmaRec
	pragmas []*pragmaRec
}

func (s *allowSet) allowed(d Diagnostic) bool {
	rec := s.keys[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
	if rec == nil {
		return false
	}
	rec.used = true
	return true
}

// unusedDiags reports pragmas that suppressed nothing this run. A pragma
// is only judged when every analyzer it names is in the running set — a
// partial -run invocation cannot tell whether the others would have used
// it.
func (s *allowSet) unusedDiags(analyzers []*Analyzer) []Diagnostic {
	running := make(map[string]bool)
	for _, a := range analyzers {
		running[a.Name] = true
	}
	var out []Diagnostic
	for _, rec := range s.pragmas {
		if rec.used {
			continue
		}
		judgeable := true
		for _, n := range rec.names {
			if !running[n] {
				judgeable = false
			}
		}
		if !judgeable {
			continue
		}
		out = append(out, Diagnostic{Pos: rec.pos, Analyzer: "pragma", Message: "allow pragma suppresses nothing; delete it or move it onto the offending line"})
	}
	return out
}

// collectAllows scans a package's comments for //figlint:allow pragmas.
// A pragma suppresses the named analyzers on its own line (trailing
// comment) and on the line immediately after the comment group
// (standalone comment). Syntax:
//
//	//figlint:allow name[,name...] -- reason
//
// Pragmas with no analyzer names, an unknown analyzer name, or no reason
// are reported as diagnostics themselves so vetted exceptions stay
// auditable; a well-formed pragma that ends up suppressing nothing is
// reported after the run (see allowSet.unusedDiags) so stale allowances
// don't linger as silent holes.
func collectAllows(pkg *Package, analyzers []*Analyzer) (*allowSet, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	allows := &allowSet{keys: make(map[allowKey]*pragmaRec)}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				report := func(msg string) {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "pragma", Message: msg})
				}
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //figlint:allowed — not ours.
					continue
				}
				names, reason, found := strings.Cut(rest, "--")
				if !found || strings.TrimSpace(reason) == "" {
					report(`allow pragma needs a justification: //figlint:allow name[,name] -- reason`)
					continue
				}
				fields := strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				if len(fields) == 0 {
					report(`allow pragma names no analyzer: //figlint:allow name[,name] -- reason`)
					continue
				}
				ok := true
				for _, n := range fields {
					if !known[n] {
						report("allow pragma names unknown analyzer " + quote(n))
						ok = false
					}
				}
				if !ok {
					continue
				}
				// The pragma covers its own line (trailing form) and the
				// line after the comment's end (standalone form).
				endLine := pkg.Fset.Position(c.End()).Line
				rec := &pragmaRec{pos: pos, names: fields}
				allows.pragmas = append(allows.pragmas, rec)
				for _, n := range fields {
					allows.keys[allowKey{pos.Filename, pos.Line, n}] = rec
					allows.keys[allowKey{pos.Filename, endLine + 1, n}] = rec
				}
			}
		}
	}
	return allows, diags
}

func quote(s string) string { return `"` + s + `"` }
