package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the cancellation contract on the serving path: every
// exported blocking entry point in the retrieval, shard, and server layers
// must either take a context.Context or be a thin wrapper delegating to
// its *Context variant, and context.Background()/context.TODO() may not be
// minted below main — a Background smuggled into a library call detaches
// that subtree from request cancellation, so a hung shard pins goroutines
// for the life of the process. The one sanctioned Background is the
// delegation idiom itself:
//
//	func (e *Engine) Search(q …) { return e.SearchContext(context.Background(), q…) }
//
// where Background's nil Done channel makes the cancellation checks free
// for callers that opted out. Tests and package main (which owns signal
// handling and the root context) are exempt.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background/TODO below main and exported blocking entry points with no context variant",
	Run:  runCtxFlow,
}

// ctxEntryPkgs are the serving layers whose exported Search*/Recommend*
// entry points must be cancellable. Keyed by package name so golden
// fixtures can exercise the rule.
var ctxEntryPkgs = map[string]bool{"retrieval": true, "shard": true, "server": true, "cluster": true}

func runCtxFlow(p *Pass) {
	if p.Pkg != nil && p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxCreation(p, fd)
			if ctxEntryPkgs[p.Pkg.Name()] {
				checkCtxEntryPoint(p, fd)
			}
		}
	}
}

// checkCtxCreation flags context.Background()/TODO() calls in fd unless
// the call is an argument of the delegation call fd → fdContext.
func checkCtxCreation(p *Pass, fd *ast.FuncDecl) {
	delegate := fd.Name.Name + "Context"
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := contextCtorName(p, call)
		if name == "" {
			return true
		}
		// Walk out one level: the sanctioned shape is Background() sitting
		// directly in the argument list of a call to <fd.Name>Context.
		if len(stack) >= 2 {
			if outer, ok := stack[len(stack)-2].(*ast.CallExpr); ok && calleeName(outer) == delegate {
				for _, arg := range outer.Args {
					if arg == ast.Expr(call) {
						return true
					}
				}
			}
		}
		p.Reportf(call.Pos(), "context.%s() below main detaches this call tree from request cancellation; accept a context.Context or delegate to a *Context variant", name)
		return true
	})
}

// contextCtorName returns "Background"/"TODO" when call is the
// corresponding context constructor, else "".
func contextCtorName(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// calleeName extracts the bare name a call invokes (x.F(...) and F(...)
// both yield "F").
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkCtxEntryPoint flags an exported Search*/Recommend* declaration that
// neither takes a context nor delegates to its *Context variant.
func checkCtxEntryPoint(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || strings.HasSuffix(name, "Context") {
		return
	}
	if !strings.HasPrefix(name, "Search") && !strings.HasPrefix(name, "Recommend") {
		return
	}
	if hasContextParam(p, fd) {
		return
	}
	delegates := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && calleeName(call) == name+"Context" {
			delegates = true
		}
		return !delegates
	})
	if !delegates {
		p.Reportf(fd.Name.Pos(), "exported blocking entry point %s neither takes a context.Context nor delegates to %sContext; a hung downstream call cannot be cancelled", name, name)
	}
}

// hasContextParam reports whether fd declares a context.Context parameter.
func hasContextParam(p *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := p.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}
