package analysis

import (
	"go/ast"
	"go/types"
)

// GenStamp enforces the generation-stamped cache-fill contract from the
// PR 2 stale-weight incident: a goroutine that computes a value for a
// floatcache entry races with model mutation, so the fill must capture the
// generation before computing, recompute nothing under a lock, and only
// Put if the model is still at the captured generation. Concretely, every
// call of the form
//
//	cache.Put(gen, key, v)
//
// must sit inside an if-statement whose condition compares gen (the
// stamped first argument) against a fresh generation load:
//
//	if m.Generation() == gen { cache.Put(gen, key, v) }
//
// An unguarded Put publishes a value computed against superseded weights
// under the new generation's stamp, and every reader until the next bump
// gets the stale score back. The check is syntactic on purpose: the guard
// belongs in the same function as the fill, where the race window is
// visible to the reader.
var GenStamp = &Analyzer{
	Name: "genstamp",
	Doc:  "flags generation-stamped cache fills with no post-compute generation re-check",
	Run:  runGenStamp,
}

func runGenStamp(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGenStampFunc(p, fd.Body)
		}
	}
}

// checkGenStampFunc walks one function body keeping the ancestor stack so
// a Put site can look outward for its guarding if-statement.
func checkGenStampFunc(p *Pass, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isCachePut(p, call) {
			return true
		}
		if !genGuarded(p, stack, call.Args[0]) {
			p.Reportf(call.Pos(), "cache fill is not guarded by a post-compute generation re-check; wrap it in `if <model>.Generation() == %s { ... }` so a concurrent weight refresh discards the stale value", types.ExprString(call.Args[0]))
		}
		return true
	})
}

// isCachePut reports whether call is a generation-stamped cache fill: a
// method named Put taking (generation, key, value) on a named Cache type.
// The shape test (rather than resolving figfusion/internal/floatcache)
// keeps the analyzer checkable against stdlib-only golden fixtures;
// one-argument Puts like sync.Pool's never match.
func isCachePut(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 3 {
		return false
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return namedTypeName(recv.Type()) == "Cache"
}

// genGuarded reports whether some enclosing if-statement's condition
// compares the stamped generation expression against a fresh load (any
// call on the other side of an == — Generation(), gen.Load(), …).
func genGuarded(p *Pass, stack []ast.Node, genArg ast.Expr) bool {
	want := types.ExprString(genArg)
	for i := len(stack) - 1; i >= 0; i-- {
		// The guard must live in the same function as the fill.
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return false
		}
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condRechecksGen(ifs.Cond, want) {
			return true
		}
	}
	return false
}

// condRechecksGen looks through a condition (including && / || arms) for
// an equality with the stamped generation on one side and a call-bearing
// expression — the re-load — on the other.
func condRechecksGen(cond ast.Expr, want string) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op.String() {
	case "&&", "||":
		return condRechecksGen(bin.X, want) || condRechecksGen(bin.Y, want)
	case "==":
		if types.ExprString(bin.X) == want && containsCall(bin.Y) {
			return true
		}
		if types.ExprString(bin.Y) == want && containsCall(bin.X) {
			return true
		}
	}
	return false
}

// containsCall reports whether e contains any call expression.
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}
