package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds a static lock-acquisition graph per package from every
// sync.Mutex/RWMutex Lock/RLock site: an edge A→B means B is acquired (or
// a callee that acquires B is called) while A is held. Two properties are
// enforced on the graph. First, the documented serving-tier hierarchy
//
//	Router.insertMu (tier 0) > Router.statsMu (tier 1) > shardState.mu (tier 2)
//
// must only ever be descended: acquiring a lock at the same or an earlier
// tier than one already held (statsMu under a shard lock, insertMu under
// statsMu, statsMu under statsMu) is the deadlock PR 4's three-tier insert
// protocol exists to prevent. Acquisitions may legitimately skip a tier
// downward — a routed insert indexes the owning shard after releasing the
// statistics lock — which the held-set tracking models exactly. Second,
// untiered locks must not form acquisition cycles (A under B in one
// function, B under A in another), including the one-lock cycle of
// re-acquiring a lock the current call path already holds.
//
// The graph is interprocedural within one package: each function's
// transitive acquisition set is computed to a fixed point, and a call made
// while holding a lock contributes edges to everything the callee (or a
// function-literal argument it may invoke synchronously) can acquire.
// Goroutine bodies start with an empty held set — a spawned worker does
// not inherit its parent's acquisition order.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags mutex acquisitions that violate the insertMu > statsMu > shard-mu hierarchy or form cycles",
	Run:  runLockOrder,
}

// lockTiers encodes the documented hierarchy, keyed by the node names
// nodeForLockExpr produces (package name, owning type, field). Scoping by
// package name lets the golden fixture exercise the tiers.
var lockTiers = map[string]int{
	"shard.Router.insertMu": 0,
	"shard.Router.statsMu":  1,
	"shard.shardState.mu":   2,
}

// lockNode is one canonical lock identity: all instances of a struct field
// share a node (every shardState.mu is "the per-shard tier"), package-level
// vars get their own node, and locals are keyed by declaration.
type lockNode string

// lockEdge is one "B acquired while A held" observation, pinned to the
// position that created it.
type lockEdge struct {
	from, to lockNode
	pos      token.Pos
}

// edgeSite keys one observation for dedup.
type edgeSite struct {
	from, to lockNode
	pos      token.Pos
}

type lockOrderPass struct {
	p *Pass
	// units maps each declared function to its body, summary holds the
	// fixed-point transitive acquisition sets.
	units   map[*types.Func]*ast.FuncDecl
	summary map[*types.Func]map[lockNode]bool
	edges   []lockEdge
	seen    map[edgeSite]bool
	// inlineLits are function literals scanned at their call site (passed
	// as an argument while locks were held); the top-level walk skips them.
	inlineLits map[*ast.FuncLit]bool
}

func runLockOrder(p *Pass) {
	lo := &lockOrderPass{
		p:          p,
		units:      make(map[*types.Func]*ast.FuncDecl),
		summary:    make(map[*types.Func]map[lockNode]bool),
		seen:       make(map[edgeSite]bool),
		inlineLits: make(map[*ast.FuncLit]bool),
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				lo.units[fn] = fd
			}
		}
	}
	lo.computeSummaries()
	for _, fd := range lo.sortedUnits() {
		lo.scanScope(fd.Body, nil)
	}
	// Function literals not invoked at a lock-holding call site run with an
	// empty held set (goroutine bodies, stored callbacks).
	for _, fd := range lo.sortedUnits() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && !lo.inlineLits[lit] {
				lo.scanScope(lit.Body, nil)
			}
			return true
		})
	}
	lo.report()
}

func (lo *lockOrderPass) sortedUnits() []*ast.FuncDecl {
	decls := make([]*ast.FuncDecl, 0, len(lo.units))
	for _, fd := range lo.units {
		decls = append(decls, fd)
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].Pos() < decls[j].Pos() })
	return decls
}

// computeSummaries iterates the per-function transitive acquisition sets
// to a fixed point: direct acquisitions anywhere in the body (nested
// literals included — a stored callback may run under the caller's locks)
// plus everything same-package callees acquire.
func (lo *lockOrderPass) computeSummaries() {
	direct := make(map[*types.Func]map[lockNode]bool)
	calls := make(map[*types.Func]map[*types.Func]bool)
	for fn, fd := range lo.units {
		acq := make(map[lockNode]bool)
		callees := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, name := lo.mutexCall(call); recv != nil && (name == "Lock" || name == "RLock") {
				acq[lo.nodeFor(recv)] = true
				return true
			}
			if callee := lo.calleeFunc(call); callee != nil {
				if _, ok := lo.units[callee]; ok {
					callees[callee] = true
				}
			}
			return true
		})
		direct[fn] = acq
		calls[fn] = callees
		lo.summary[fn] = acq
	}
	for changed := true; changed; {
		changed = false
		for fn := range lo.units {
			merged := make(map[lockNode]bool, len(lo.summary[fn]))
			for n := range direct[fn] {
				merged[n] = true
			}
			for callee := range calls[fn] {
				for n := range lo.summary[callee] {
					merged[n] = true
				}
			}
			if len(merged) != len(lo.summary[fn]) {
				lo.summary[fn] = merged
				changed = true
			}
		}
	}
}

// scanScope walks one function scope in source order tracking the held
// set: direct acquisitions and lock-holding calls add edges, explicit
// unlocks release, deferred unlocks hold to scope end. Nested literals are
// scanned only when passed to a call made in this scope (synchronous
// invocation under the current held set); goroutines start empty.
func (lo *lockOrderPass) scanScope(body *ast.BlockStmt, held []lockNode) {
	held = append([]lockNode(nil), held...)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held for the rest of the
			// scope; a deferred helper call is not an acquisition order.
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				lo.inlineLits[lit] = true
				lo.scanScope(lit.Body, nil)
			}
			return false
		case *ast.CallExpr:
			if recv, name := lo.mutexCall(n); recv != nil {
				node := lo.nodeFor(recv)
				switch name {
				case "Lock", "RLock":
					for _, h := range held {
						lo.addEdge(h, node, n.Pos())
					}
					held = append(held, node)
				case "Unlock", "RUnlock":
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == node {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if len(held) > 0 {
				if callee := lo.calleeFunc(n); callee != nil {
					for node := range lo.summary[callee] {
						for _, h := range held {
							lo.addEdge(h, node, n.Pos())
						}
					}
				}
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						lo.inlineLits[lit] = true
						lo.scanScope(lit.Body, held)
					}
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// addEdge records one acquisition observation. Every site is kept — a
// violation must report (and be pragma-suppressible) where it happens, not
// only at the edge's first occurrence. Duplicate observations at one
// position (held-set fan-out) collapse.
func (lo *lockOrderPass) addEdge(from, to lockNode, pos token.Pos) {
	key := edgeSite{from: from, to: to, pos: pos}
	if lo.seen[key] {
		return
	}
	lo.seen[key] = true
	lo.edges = append(lo.edges, lockEdge{from: from, to: to, pos: pos})
}

// report classifies the accumulated edges: self-edges (re-acquisition on
// one call path), tier inversions, and cycles among the rest.
func (lo *lockOrderPass) report() {
	cyclic := lo.cyclicEdges()
	for _, e := range lo.edges {
		fromTier, fromTiered := lockTiers[string(e.from)]
		toTier, toTiered := lockTiers[string(e.to)]
		switch {
		case e.from == e.to:
			lo.p.Reportf(e.pos, "%s acquired while a call path already holds it; sync mutexes are not reentrant and a queued writer deadlocks recursive read-locks", e.to)
		case fromTiered && toTiered:
			// Tiered pairs answer to the hierarchy alone: the inverted edge
			// reports, the legal descending edge stays silent even when an
			// inversion elsewhere closes a cycle through it.
			if fromTier >= toTier {
				lo.p.Reportf(e.pos, "%s (tier %d) acquired while holding %s (tier %d); the lock hierarchy insertMu > statsMu > per-shard must only be descended", e.to, toTier, e.from, fromTier)
			}
		case cyclic[[2]lockNode{e.from, e.to}]:
			lo.p.Reportf(e.pos, "acquisition edge %s → %s participates in a lock-order cycle; pick one order and use it everywhere", e.from, e.to)
		}
	}
}

// cyclicEdges returns the edges inside a strongly connected component of
// the acquisition graph (self-edges and tier inversions report separately).
func (lo *lockOrderPass) cyclicEdges() map[[2]lockNode]bool {
	adj := make(map[lockNode][]lockNode)
	for _, e := range lo.edges {
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	// reaches reports whether to is reachable from from.
	reaches := func(from, to lockNode) bool {
		seen := map[lockNode]bool{}
		stack := []lockNode{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	out := make(map[[2]lockNode]bool)
	for _, e := range lo.edges {
		if e.from != e.to && reaches(e.to, e.from) {
			out[[2]lockNode{e.from, e.to}] = true
		}
	}
	return out
}

// mutexCall unwraps call as sync.Mutex/RWMutex method invocation,
// returning the receiver expression and method name.
func (lo *lockOrderPass) mutexCall(call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := lo.p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, ""
	}
	name := recv.Type().String()
	if name != "*sync.Mutex" && name != "*sync.RWMutex" {
		return nil, ""
	}
	return sel.X, fn.Name()
}

// calleeFunc resolves a call's target as a declared function or method.
func (lo *lockOrderPass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := lo.p.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := lo.p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// nodeFor canonicalizes the expression a mutex method was invoked on.
// Struct fields collapse to package.Type.field (every instance of a
// per-shard lock is the same tier), package-level vars to package.name,
// locals to their declaration site.
func (lo *lockOrderPass) nodeFor(recv ast.Expr) lockNode {
	pkgName := ""
	if lo.p.Pkg != nil {
		pkgName = lo.p.Pkg.Name()
	}
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := lo.p.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			owner := namedTypeName(sel.Recv())
			return lockNode(fmt.Sprintf("%s.%s.%s", pkgName, owner, sel.Obj().Name()))
		}
		// Package-qualified var: pkg.mu.Lock().
		if obj, ok := lo.p.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return lockNode(fmt.Sprintf("%s.%s", pkgName, obj.Name()))
		}
	case *ast.Ident:
		if obj := lo.p.TypesInfo.ObjectOf(e); obj != nil {
			if obj.Parent() == lo.p.Pkg.Scope() {
				return lockNode(fmt.Sprintf("%s.%s", pkgName, obj.Name()))
			}
			return lockNode(fmt.Sprintf("local:%s@%d", obj.Name(), obj.Pos()))
		}
	case *ast.ParenExpr:
		return lo.nodeFor(e.X)
	case *ast.StarExpr:
		return lo.nodeFor(e.X)
	}
	return lockNode("expr:" + types.ExprString(recv))
}

// namedTypeName unwraps pointers and generic instantiations down to the
// defining type's name.
func namedTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return t.String()
		}
	}
}
