package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "/tmp/repo/internal/x/x.go", Line: 12, Column: 3},
			Analyzer: "floatcmp",
			Message:  "== on floating-point operands",
		},
		{
			Pos:      token.Position{Filename: "/tmp/repo/internal/y/y.go", Line: 7, Column: 9},
			Analyzer: "lockorder",
			Message:  "hierarchy must only be descended",
		},
	}
	var buf bytes.Buffer
	rel := func(f string) string { return strings.TrimPrefix(f, "/tmp/repo/") }
	if err := WriteJSON(&buf, diags, rel); err != nil {
		t.Fatal(err)
	}
	var got []JSONDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	want := []JSONDiagnostic{
		{File: "internal/x/x.go", Line: 12, Col: 3, Analyzer: "floatcmp", Message: "== on floating-point operands"},
		{File: "internal/y/y.go", Line: 7, Col: 9, Analyzer: "lockorder", Message: "hierarchy must only be descended"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWriteJSONEmpty: a clean run encodes as an empty array, never null —
// downstream jq/matcher tooling relies on the array shape.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty run encodes as %q, want []", buf.String())
	}
}
