package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package: the unit analyzers run over.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds type-checker complaints about the target package
	// itself (imported packages' errors are swallowed). A non-empty list
	// usually means the tree does not build; diagnostics may be incomplete.
	TypeErrors []error
}

// Loader type-checks packages from source using only the standard library:
// module-internal import paths resolve against the module root, everything
// else against GOROOT (including GOROOT's vendored dependencies). Checked
// imports are cached, so loading a whole module checks each dependency
// once.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds in-package _test.go files to target packages.
	IncludeTests bool

	ctx        build.Context
	moduleRoot string
	modulePath string
	targets    map[string]bool
	cache      map[string]*Package
	inFlight   map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir. It reads
// the module path from go.mod; dir may be the module root or any directory
// inside it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	return newLoader(root, modPath), nil
}

func newLoader(root, modPath string) *Loader {
	ctx := build.Default
	// Pure-Go file selection: cgo-gated files drag in import "C" plumbing
	// that a source-based type-checker has no business resolving.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ctx:        ctx,
		moduleRoot: root,
		modulePath: modPath,
		targets:    make(map[string]bool),
		cache:      make(map[string]*Package),
		inFlight:   make(map[string]bool),
	}
}

func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s has no module line", gm)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// LoadModule loads every package under the module root (testdata and
// hidden directories excluded) and returns them sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.moduleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if l.hasGoFiles(p) {
			rel, err := filepath.Rel(l.moduleRoot, p)
			if err != nil {
				return err
			}
			ip := l.modulePath
			if rel != "." {
				ip = l.modulePath + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return l.LoadPackages(paths)
}

// LoadPackages loads the given module-internal import paths as analysis
// targets (full syntax, comments, and type information retained).
func (l *Loader) LoadPackages(paths []string) ([]*Package, error) {
	for _, p := range paths {
		l.targets[p] = true
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory outside any module (e.g. a testdata
// fixture) as a target package importing only the standard library.
func LoadDir(dir string, includeTests bool) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ip := "fixture/" + filepath.Base(abs)
	l := newLoader(abs, ip)
	l.IncludeTests = includeTests
	pkgs, err := l.LoadPackages([]string{ip})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// ImportPathFor maps a directory (absolute or relative to the working
// directory) to its module-internal import path.
func (l *Loader) ImportPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.moduleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.modulePath)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer over the loader's cache.
func (l *Loader) Import(path string) (*types.Package, error) {
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.modulePath {
		return l.moduleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), nil
	}
	goroot := runtime.GOROOT()
	for _, d := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (module %s; only stdlib and module-internal imports are supported)", path, l.modulePath)
}

func (l *Loader) load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{PkgPath: path, Fset: l.Fset, Types: types.Unsafe}, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.inFlight[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.inFlight[path] = true
	defer delete(l.inFlight, path)

	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	target := l.targets[path]
	names := append([]string(nil), bp.GoFiles...)
	if target && l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)

	mode := parser.SkipObjectResolution
	if target {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}

	pkg := &Package{PkgPath: path, Dir: dir, Fset: l.Fset}
	var info *types.Info
	if target {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if target {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	if target {
		pkg.Files = files
		pkg.Info = info
	}
	l.cache[path] = pkg
	return pkg, nil
}
