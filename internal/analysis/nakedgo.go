package analysis

import (
	"go/ast"
	"go/types"
)

// NakedGo polices goroutine hygiene in the serving-path packages
// (internal/server, internal/retrieval): a `go func` literal must either
// recover panics (a panic in a request-scoped goroutine kills the whole
// server) or signal completion through a WaitGroup or channel (a fire-
// and-forget worker writing shared partial results races the reader).
// Worker-pool goroutines with `defer wg.Done()` and channel-producing
// goroutines both satisfy the check.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "flags go func literals in server/retrieval that neither recover panics nor signal completion",
	Run:  runNakedGo,
}

// nakedGoPackages names the packages under the serving path. Scoping is
// by package name so fixture packages exercise the analyzer too.
var nakedGoPackages = map[string]bool{
	"server":    true,
	"retrieval": true,
}

func runNakedGo(p *Pass) {
	if p.Pkg == nil || !nakedGoPackages[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !recoversPanics(p, lit.Body) && !signalsCompletion(p, lit.Body) {
				p.Reportf(g.Pos(), "goroutine neither recovers panics nor signals completion; a panic here crashes the server and nothing can wait for the work — add defer/recover or a WaitGroup/channel")
			}
			return true
		})
	}
}

// recoversPanics reports whether the body calls the recover builtin
// (typically inside a deferred function literal).
func recoversPanics(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
			if _, ok := p.TypesInfo.Uses[id].(*types.Builtin); ok {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// signalsCompletion reports whether the body sends on or closes a
// channel, or calls sync.WaitGroup.Done.
func signalsCompletion(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isBuiltin(p, n, "close") {
				found = true
				break
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
