package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// testFixture loads one testdata package, runs the given analyzers, and
// checks the diagnostics against the fixture's `// want "regexp"`
// comments: every want must be hit on its line, and every diagnostic
// must be wanted. Lines without a want comment therefore double as
// negative cases.
func testFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", dir), false)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Fatalf("fixture %s does not type-check: %v", dir, e)
	}
	diags := Run([]*Package{pkg}, analyzers)

	wantRe := regexp.MustCompile(`want "([^"]*)"`)
	type want struct {
		re      *regexp.Regexp
		line    int
		matched bool
	}
	var wants []*want
	byLine := make(map[int][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := pkg.Fset.Position(c.Pos()).Line
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q at line %d: %v", m[1], line, err)
					}
					w := &want{re: re, line: line}
					wants = append(wants, w)
					byLine[line] = append(byLine[line], w)
				}
			}
		}
	}
	if len(wants) == 0 {
		// A scope fixture: the package must produce no diagnostics at all.
		for _, d := range diags {
			t.Errorf("unexpected diagnostic in want-free fixture: %s", d)
		}
		return
	}
	for _, d := range diags {
		hit := false
		for _, w := range byLine[d.Pos.Line] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic matched want %q at %s line %d", w.re, dir, w.line)
		}
	}
}

func TestFloatCmpGolden(t *testing.T)    { testFixture(t, "floatcmp", FloatCmp) }
func TestGlobalRandGolden(t *testing.T)  { testFixture(t, "globalrand", GlobalRand) }
func TestMapOrderGolden(t *testing.T)    { testFixture(t, "maporder", MapOrder) }
func TestLockSafetyGolden(t *testing.T)  { testFixture(t, "locksafety", LockSafety) }
func TestNakedGoGolden(t *testing.T)     { testFixture(t, "nakedgo", NakedGo) }
func TestLockOrderGolden(t *testing.T)   { testFixture(t, "lockorder", LockOrder) }
func TestGenStampGolden(t *testing.T)    { testFixture(t, "genstamp", GenStamp) }
func TestParDetGolden(t *testing.T)      { testFixture(t, "pardet", ParDet) }
func TestCtxFlowGolden(t *testing.T)     { testFixture(t, "ctxflow", CtxFlow) }
func TestErrEnvelopeGolden(t *testing.T) { testFixture(t, "errenvelope", ErrEnvelope) }

// TestNakedGoScope proves the package-name scoping: identical naked
// goroutines outside server/retrieval produce nothing.
func TestNakedGoScope(t *testing.T) { testFixture(t, "nakedgoscope", NakedGo) }

// TestCtxFlowMainScope proves package main is exempt: minting the root
// context there produces nothing.
func TestCtxFlowMainScope(t *testing.T) { testFixture(t, "ctxflowmain", CtxFlow) }

// TestAllowPragmas runs the full suite over the pragma fixture: valid
// pragmas suppress, malformed ones are themselves diagnosed.
func TestAllowPragmas(t *testing.T) { testFixture(t, "allow", All()...) }
