package analysis

import (
	"strings"
	"testing"
)

func TestLookup(t *testing.T) {
	all, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("suite has %d analyzers, want 10", len(all))
	}
	two, err := Lookup("nakedgo, floatcmp")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "nakedgo" || two[1].Name != "floatcmp" {
		t.Fatalf("Lookup order not preserved: %v", []string{two[0].Name, two[1].Name})
	}
	if _, err := Lookup("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("Lookup(bogus) error = %v, want mention of the unknown name", err)
	}
}

func TestImportPathFor(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	ip, err := l.ImportPathFor(".")
	if err != nil {
		t.Fatal(err)
	}
	if ip != "figfusion/internal/analysis" {
		t.Fatalf("ImportPathFor(.) = %q", ip)
	}
	if _, err := l.ImportPathFor("/"); err == nil {
		t.Fatal("ImportPathFor outside the module must fail")
	}
}

// TestModuleIsClean is the dogfood gate: the suite must report nothing on
// the repository itself (every real finding was fixed or carries a
// justified pragma). CI enforces the same property via `go run
// ./cmd/figlint ./...`; keeping it as a test makes `go test ./...`
// self-contained.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module enumeration looks broken", len(pkgs))
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.PkgPath, e)
		}
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("finding on clean tree: %s", d)
	}
}
