package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrEnvelope keeps every error leaving the HTTP layer inside the /v1
// JSON envelope: handlers must report failures through the envelope
// helper (writeError), never by http.Error — which emits text/plain and
// bypasses the {error: {code, message}} contract clients parse — or by a
// bare WriteHeader with a literal 4xx/5xx status, which sends an error
// status with no body at all. WriteHeader calls forwarding a non-constant
// status (the instrumentation and envelope-rewriting middleware wrappers)
// are the plumbing the envelope is built on and stay legal. Scoped to
// packages named "server", where the envelope helper lives.
var ErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc:  "flags raw http.Error and bare constant WriteHeader(4xx/5xx) in the server package",
	Run:  runErrEnvelope,
}

func runErrEnvelope(p *Pass) {
	if p.Pkg == nil || p.Pkg.Name() != "server" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
				p.Reportf(call.Pos(), "http.Error bypasses the /v1 JSON error envelope; use the envelope helper so clients get {error: {code, message}}")
				return true
			}
			if fn.Name() == "WriteHeader" && len(call.Args) == 1 {
				if status, ok := constStatus(p, call.Args[0]); ok && status >= 400 && status <= 599 {
					p.Reportf(call.Pos(), "bare WriteHeader(%d) sends an error status with no JSON envelope body; use the envelope helper", status)
				}
			}
			return true
		})
	}
}

// constStatus evaluates arg as a compile-time integer constant. Dynamic
// statuses (middleware forwarding a recorded code) return false.
func constStatus(p *Pass, arg ast.Expr) (int64, bool) {
	tv, ok := p.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
