// Package social models the user substrate of a social media site: users,
// interest groups and group membership. The paper derives user–user
// correlation from shared group membership (Section 3.2: "If two users
// belong to the same group, two users are considered to be correlated"),
// and uses uploaders plus users who marked an image as "favorite" as the
// user features of an object.
package social

import "sort"

// UserID identifies a user. IDs are dense small integers assigned by the
// Network in registration order, mirroring Flickr's numeric user IDs.
type UserID int32

// GroupID identifies an interest group.
type GroupID int32

// Network is the registry of users and their group memberships. It is
// append-only; reads are safe for concurrent use once population stops.
type Network struct {
	names   []string
	ids     map[string]UserID
	groups  [][]GroupID // user -> sorted group list
	members map[GroupID][]UserID
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		ids:     make(map[string]UserID),
		members: make(map[GroupID][]UserID),
	}
}

// AddUser registers a user with the given group memberships and returns the
// assigned ID. Registering an existing name merges the new groups into the
// user's membership.
func (n *Network) AddUser(name string, groups []GroupID) UserID {
	id, ok := n.ids[name]
	if !ok {
		id = UserID(len(n.names))
		n.names = append(n.names, name)
		n.ids[name] = id
		n.groups = append(n.groups, nil)
	}
	for _, g := range groups {
		if n.hasGroup(id, g) {
			continue
		}
		n.groups[id] = insertSorted(n.groups[id], g)
		n.members[g] = append(n.members[g], id)
	}
	return id
}

func insertSorted(s []GroupID, g GroupID) []GroupID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= g })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = g
	return s
}

func (n *Network) hasGroup(u UserID, g GroupID) bool {
	s := n.groups[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= g })
	return i < len(s) && s[i] == g
}

// Len returns the number of registered users.
func (n *Network) Len() int { return len(n.names) }

// Name returns the registered name for an ID.
func (n *Network) Name(id UserID) string { return n.names[id] }

// Lookup returns the ID for a user name.
func (n *Network) Lookup(name string) (UserID, bool) {
	id, ok := n.ids[name]
	return id, ok
}

// Groups returns the sorted group memberships of a user.
func (n *Network) Groups(id UserID) []GroupID { return n.groups[id] }

// Members returns the users in a group in registration order.
func (n *Network) Members(g GroupID) []UserID { return n.members[g] }

// Correlated reports whether two users share at least one group — the
// paper's binary intra-type correlation rule for user nodes.
func (n *Network) Correlated(a, b UserID) bool {
	ga, gb := n.groups[a], n.groups[b]
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i] == gb[j]:
			return true
		case ga[i] < gb[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// GroupSimilarity returns the Jaccard similarity of two users' group sets,
// a graded version of Correlated used where the model needs a correlation
// strength (the smoothing term of Eq. 7) rather than a binary edge decision.
// Users with no groups score 0 with everyone, including themselves.
func (n *Network) GroupSimilarity(a, b UserID) float64 {
	ga, gb := n.groups[a], n.groups[b]
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i] == gb[j]:
			inter++
			i++
			j++
		case ga[i] < gb[j]:
			i++
		default:
			j++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}
