package social

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddUserAssignsDenseIDs(t *testing.T) {
	n := NewNetwork()
	a := n.AddUser("alice", []GroupID{1})
	b := n.AddUser("bob", []GroupID{2})
	if a != 0 || b != 1 {
		t.Errorf("IDs = %d,%d want 0,1", a, b)
	}
	if n.Len() != 2 {
		t.Errorf("Len = %d, want 2", n.Len())
	}
	if n.Name(a) != "alice" {
		t.Errorf("Name(0) = %q", n.Name(a))
	}
	if id, ok := n.Lookup("bob"); !ok || id != b {
		t.Errorf("Lookup(bob) = %v,%v", id, ok)
	}
	if _, ok := n.Lookup("carol"); ok {
		t.Error("Lookup(carol) should miss")
	}
}

func TestAddUserMergesGroups(t *testing.T) {
	n := NewNetwork()
	id := n.AddUser("alice", []GroupID{3, 1})
	again := n.AddUser("alice", []GroupID{2, 1})
	if id != again {
		t.Fatalf("re-adding changed ID: %d vs %d", id, again)
	}
	got := n.Groups(id)
	want := []GroupID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Groups = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Groups = %v, want %v", got, want)
		}
	}
}

func TestMembers(t *testing.T) {
	n := NewNetwork()
	a := n.AddUser("alice", []GroupID{7})
	b := n.AddUser("bob", []GroupID{7})
	n.AddUser("carol", []GroupID{8})
	got := n.Members(7)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Members(7) = %v, want [%d %d]", got, a, b)
	}
	if len(n.Members(99)) != 0 {
		t.Error("Members of unknown group should be empty")
	}
}

func TestCorrelated(t *testing.T) {
	n := NewNetwork()
	a := n.AddUser("alice", []GroupID{1, 5})
	b := n.AddUser("bob", []GroupID{5, 9})
	c := n.AddUser("carol", []GroupID{2})
	d := n.AddUser("dave", nil)
	if !n.Correlated(a, b) {
		t.Error("alice and bob share group 5")
	}
	if n.Correlated(a, c) {
		t.Error("alice and carol share nothing")
	}
	if n.Correlated(a, d) || n.Correlated(d, d) {
		t.Error("groupless users correlate with no one")
	}
}

func TestGroupSimilarity(t *testing.T) {
	n := NewNetwork()
	a := n.AddUser("alice", []GroupID{1, 2, 3})
	b := n.AddUser("bob", []GroupID{2, 3, 4})
	c := n.AddUser("carol", nil)
	if got := n.GroupSimilarity(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.5 (2 shared / 4 union)", got)
	}
	if got := n.GroupSimilarity(a, a); got != 1 {
		t.Errorf("self similarity = %v, want 1", got)
	}
	if got := n.GroupSimilarity(a, c); got != 0 {
		t.Errorf("similarity with groupless = %v, want 0", got)
	}
}

func TestGroupSimilarityProperties(t *testing.T) {
	n := NewNetwork()
	users := []UserID{
		n.AddUser("u0", []GroupID{1}),
		n.AddUser("u1", []GroupID{1, 2}),
		n.AddUser("u2", []GroupID{2, 3}),
		n.AddUser("u3", []GroupID{4}),
		n.AddUser("u4", nil),
	}
	f := func(i, j uint) bool {
		a := users[i%uint(len(users))]
		b := users[j%uint(len(users))]
		s := n.GroupSimilarity(a, b)
		if s < 0 || s > 1 {
			return false
		}
		if s != n.GroupSimilarity(b, a) {
			return false
		}
		// Positive similarity iff Correlated.
		return (s > 0) == n.Correlated(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCorrelated(b *testing.B) {
	n := NewNetwork()
	u1 := n.AddUser("a", []GroupID{1, 3, 5, 7, 9, 11})
	u2 := n.AddUser("b", []GroupID{2, 4, 6, 8, 10, 11})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Correlated(u1, u2)
	}
}
