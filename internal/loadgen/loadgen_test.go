package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"figfusion/internal/api"
	"figfusion/internal/client"
)

// fakeServer answers the /v1 surface instantly, counting calls per route.
type fakeServer struct {
	searches, recommends, inserts, healthz atomic.Int64
	shedEvery                              int64 // every Nth search sheds (0 = never)
	objects                                int
}

func (f *fakeServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		n := f.searches.Add(1)
		if f.shedEvery > 0 && n%f.shedEvery == 0 {
			w.Header().Set(api.RetryAfterHeader, "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.ErrorBody{Code: api.CodeUnavailable, Message: "overloaded"}})
			return
		}
		var req api.SearchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == nil || *req.ID < 0 || *req.ID >= int64(f.objects) {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.ErrorBody{Code: api.CodeInvalidArgument, Message: "bad id"}})
			return
		}
		_ = json.NewEncoder(w).Encode(api.WireSearchResponse{Results: []api.Item{{ID: 1, Score: 1}}})
	})
	mux.HandleFunc("POST /v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		f.recommends.Add(1)
		_ = json.NewEncoder(w).Encode(api.SearchResponse{Results: []api.ResultItem{{ID: 1, Score: 1}}})
	})
	mux.HandleFunc("POST /v1/objects", func(w http.ResponseWriter, r *http.Request) {
		var req api.InsertRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Tags) == 0 {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.ErrorBody{Code: api.CodeInvalidArgument, Message: "no tags"}})
			return
		}
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(api.InsertResponse{ID: f.inserts.Add(1)})
	})
	mux.HandleFunc("GET /v1/objects/{id}", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(api.ObjectResponse{ID: 0, Tags: []string{"alpha", "beta"}})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		f.healthz.Add(1)
		_ = json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok", Objects: f.objects})
	})
	return mux
}

func runAgainst(t *testing.T, f *fakeServer, cfg Config) Report {
	t.Helper()
	ts := httptest.NewServer(f.handler())
	defer ts.Close()
	c := client.New(ts.URL, client.WithRetries(0))
	defer c.Close()
	r, err := Run(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestClosedLoopCounts: a pure-search closed loop answers only OKs and
// the ledger adds up.
func TestClosedLoopCounts(t *testing.T) {
	f := &fakeServer{objects: 100}
	r := runAgainst(t, f, Config{Concurrency: 4, Duration: 200 * time.Millisecond, Seed: 7})
	if r.OK == 0 {
		t.Fatalf("no successful requests: %v", r)
	}
	if r.Shed != 0 || r.Errors != 0 || r.Dropped != 0 {
		t.Errorf("unexpected failures: %v", r)
	}
	if r.Sent != r.OK {
		t.Errorf("sent %d != ok %d", r.Sent, r.OK)
	}
	if r.AchievedRate <= 0 {
		t.Errorf("achieved rate = %v", r.AchievedRate)
	}
}

// TestSizingProbe: Objects=0 sizes the ID space from /v1/healthz, and
// every generated ID stays inside it (the fake 400s on out-of-range IDs).
func TestSizingProbe(t *testing.T) {
	f := &fakeServer{objects: 10}
	r := runAgainst(t, f, Config{Concurrency: 2, Duration: 100 * time.Millisecond, Seed: 3})
	if f.healthz.Load() == 0 {
		t.Error("healthz sizing probe never ran")
	}
	if r.Errors != 0 {
		t.Errorf("out-of-range IDs generated: %v", r)
	}
}

// TestMixRoutes: all three operation types reach their routes, and insert
// bodies replay the template fetched from the live corpus.
func TestMixRoutes(t *testing.T) {
	f := &fakeServer{objects: 50}
	r := runAgainst(t, f, Config{
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Seed:        11,
		Mix:         Mix{Search: 2, Recommend: 1, Insert: 1},
	})
	if r.Errors != 0 {
		t.Errorf("errors: %v", r)
	}
	if f.searches.Load() == 0 || f.recommends.Load() == 0 || f.inserts.Load() == 0 {
		t.Errorf("mix did not reach all routes: searches %d recommends %d inserts %d",
			f.searches.Load(), f.recommends.Load(), f.inserts.Load())
	}
}

// TestShedCounting: 503 envelopes land in Shed, not Errors — the metric
// the overload experiment gates on.
func TestShedCounting(t *testing.T) {
	f := &fakeServer{objects: 100, shedEvery: 3}
	r := runAgainst(t, f, Config{Concurrency: 4, Duration: 200 * time.Millisecond, Seed: 5})
	if r.Shed == 0 {
		t.Fatalf("no sheds recorded: %v", r)
	}
	if r.Errors != 0 {
		t.Errorf("sheds misclassified as errors: %v", r)
	}
	if r.ShedRate() <= 0 || r.ShedRate() >= 1 {
		t.Errorf("shed rate = %v", r.ShedRate())
	}
}

// TestOpenLoopOffersLoad: the open loop sends at roughly the offered rate
// independent of concurrency, and reports the offered rate back.
func TestOpenLoopOffersLoad(t *testing.T) {
	f := &fakeServer{objects: 100}
	r := runAgainst(t, f, Config{Rate: 500, Duration: 400 * time.Millisecond, Seed: 9})
	if r.OfferedRate != 500 {
		t.Errorf("offered rate = %v", r.OfferedRate)
	}
	if r.OK == 0 {
		t.Fatalf("no successful requests: %v", r)
	}
	// Scheduling jitter allowed, but the total must be in the right
	// decade: 500/s for 0.4s ≈ 200 arrivals.
	if r.Sent < 50 || r.Sent > 400 {
		t.Errorf("sent %d requests at 500/s over 400ms", r.Sent)
	}
}

// TestWarmupExcluded: requests before the warmup deadline never enter the
// ledger.
func TestWarmupExcluded(t *testing.T) {
	f := &fakeServer{objects: 100}
	r := runAgainst(t, f, Config{
		Concurrency: 2,
		Warmup:      150 * time.Millisecond,
		Duration:    150 * time.Millisecond,
		Seed:        13,
	})
	if r.OK == 0 {
		t.Fatalf("no recorded requests: %v", r)
	}
	if r.Sent >= f.searches.Load() {
		t.Errorf("ledger (%d) includes warmup traffic (server saw %d)", r.Sent, f.searches.Load())
	}
}
