// Package loadgen generates live /v1 traffic against a running figserver
// (any -role) through the shared typed client — the measurement half of
// the serving tier. It models the workload the paper's social-media
// setting implies: query popularity is zipfian (a few hot objects draw
// most of the traffic — exactly the distribution the server's coalescing
// cache exploits), with a configurable mix of searches, recommendations
// and inserts.
//
// Two driving modes:
//
//   - Closed loop (Rate == 0): Concurrency workers each keep exactly one
//     request outstanding. Throughput adapts to the server — this measures
//     capacity.
//   - Open loop (Rate > 0): arrivals are scheduled at the configured rate
//     regardless of how fast responses come back, the way real users
//     arrive. MaxOutstanding bounds the in-flight window; arrivals past it
//     count as Dropped (the queue the client refused to build). This
//     measures behaviour under a fixed offered load — including overload,
//     where the server's admission control must shed rather than collapse.
//
// Latencies are recorded in an obs.Histogram over the standard bucket
// layout, but only for admitted (2xx) requests and only after Warmup:
// shed requests answer in microseconds and would flatter the percentiles.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"figfusion/internal/api"
	"figfusion/internal/client"
	"figfusion/internal/obs"
)

// Mix weights the operation types; a zero Mix defaults to searches only.
type Mix struct {
	// Search weights POST /v1/search wire queries.
	Search int
	// Recommend weights POST /v1/recommend with a short zipfian history.
	Recommend int
	// Insert weights POST /v1/objects, replaying feature names sampled
	// from the live corpus so inserts always resolve.
	Insert int
}

func (m Mix) total() int { return m.Search + m.Recommend + m.Insert }

// Config parameterizes one load run.
type Config struct {
	// Objects is the query ID space; 0 asks the server's /v1/healthz.
	Objects int
	// Mix is the operation mix (zero value = all searches).
	Mix Mix
	// K is the result depth per search (default 10).
	K int
	// Concurrency is the closed-loop worker count (default 8); in open
	// loop it is ignored.
	Concurrency int
	// Rate is the open-loop offered load in requests/second; 0 selects
	// the closed loop.
	Rate float64
	// MaxOutstanding bounds open-loop in-flight requests (default 256).
	MaxOutstanding int
	// Duration is the measured window (default 5s).
	Duration time.Duration
	// Warmup runs traffic without recording first (default 0).
	Warmup time.Duration
	// Seed feeds the per-worker deterministic generators.
	Seed int64
	// ZipfS is the zipfian skew exponent (> 1; default 1.2).
	ZipfS float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.K <= 0 {
		out.K = 10
	}
	if out.Concurrency <= 0 {
		out.Concurrency = 8
	}
	if out.MaxOutstanding <= 0 {
		out.MaxOutstanding = 256
	}
	if out.Duration <= 0 {
		out.Duration = 5 * time.Second
	}
	if out.ZipfS <= 1 {
		out.ZipfS = 1.2
	}
	if out.Mix.total() <= 0 {
		out.Mix = Mix{Search: 1}
	}
	return out
}

// Report is one run's outcome.
type Report struct {
	// Sent counts requests that reached the wire (excludes Dropped).
	Sent int64 `json:"sent"`
	// OK counts 2xx answers.
	OK int64 `json:"ok"`
	// Shed counts 503/unavailable rejections — admission-control sheds
	// and degraded-cluster refusals.
	Shed int64 `json:"shed"`
	// Errors counts every other failure (transport, 4xx, 5xx).
	Errors int64 `json:"errors"`
	// Dropped counts open-loop arrivals past MaxOutstanding that were
	// never sent.
	Dropped int64 `json:"dropped"`
	// Duration is the measured window (excludes warmup).
	Duration time.Duration `json:"duration"`
	// OfferedRate echoes Config.Rate (0 in closed loop).
	OfferedRate float64 `json:"offeredRate,omitempty"`
	// AchievedRate is OK answers per second of measured window.
	AchievedRate float64 `json:"achievedRate"`
	// P50Ms, P95Ms, P99Ms are admitted-request latency percentiles.
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// ShedRate is the fraction of wire requests the server shed.
func (r Report) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

func (r Report) String() string {
	return fmt.Sprintf("sent %d ok %d shed %d (%.1f%%) errors %d dropped %d in %v — %.0f req/s, p50 %.2fms p95 %.2fms p99 %.2fms",
		r.Sent, r.OK, r.Shed, 100*r.ShedRate(), r.Errors, r.Dropped, r.Duration.Round(time.Millisecond),
		r.AchievedRate, r.P50Ms, r.P95Ms, r.P99Ms)
}

// gen builds one worker's deterministic request stream.
type gen struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	cfg  Config
	tags []string // insert template sampled from the live corpus
}

func newGen(seed int64, cfg Config, tags []string) *gen {
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if cfg.Objects > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Objects-1))
	}
	return &gen{rng: rng, zipf: zipf, cfg: cfg, tags: tags}
}

// id draws a zipfian object ID.
func (g *gen) id() int64 {
	if g.zipf == nil {
		return 0
	}
	return int64(g.zipf.Uint64())
}

// draw picks the next request from the mix, consuming randomness now so
// the returned thunk can run outside any lock guarding the generator.
func (g *gen) draw() func(context.Context, *client.Client) error {
	pick := g.rng.Intn(g.cfg.Mix.total())
	switch {
	case pick < g.cfg.Mix.Search:
		id := g.id()
		return func(ctx context.Context, c *client.Client) error {
			_, err := c.Search(ctx, &api.SearchRequest{ID: &id, K: g.cfg.K, Exclude: &id})
			return err
		}
	case pick < g.cfg.Mix.Search+g.cfg.Mix.Recommend:
		hist := []int64{g.id(), g.id(), g.id()}
		return func(ctx context.Context, c *client.Client) error {
			_, err := c.Recommend(ctx, &api.RecommendRequest{History: hist, K: g.cfg.K})
			return err
		}
	default:
		month := int(g.id()) % 12
		return func(ctx context.Context, c *client.Client) error {
			_, err := c.Insert(ctx, &api.InsertRequest{Tags: g.tags, Month: month})
			return err
		}
	}
}

// state accumulates one run's measurements.
type state struct {
	recording            atomic.Bool
	sent, ok, shed, errs atomic.Int64
	dropped              atomic.Int64
	hist                 *obs.Histogram
}

// record classifies one response. Latency is observed only for admitted
// requests while recording is on.
func (st *state) record(err error, elapsed time.Duration) {
	if !st.recording.Load() {
		return
	}
	st.sent.Add(1)
	if err == nil {
		st.ok.Add(1)
		st.hist.Observe(elapsed)
		return
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
		st.shed.Add(1)
		return
	}
	st.errs.Add(1)
}

// Run drives cfg traffic against the server behind c and reports the
// measured window. The client should be configured with WithRetries(0):
// a retrying client hides exactly the sheds this tool exists to count.
func Run(ctx context.Context, c *client.Client, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Objects <= 0 {
		health, err := c.Healthz(ctx)
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: sizing probe: %w", err)
		}
		cfg.Objects = health.Objects
	}
	if cfg.Objects <= 0 {
		return Report{}, fmt.Errorf("loadgen: server reports an empty corpus")
	}
	var tags []string
	if cfg.Mix.Insert > 0 {
		// Sample a live object's tags as the insert template: its names
		// are in-vocabulary by construction, so inserts exercise the write
		// path instead of bouncing off validation.
		o, err := c.Object(ctx, 0)
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: insert template fetch: %w", err)
		}
		if tags = o.Tags; len(tags) > 4 {
			tags = tags[:4]
		}
		if len(tags) == 0 {
			return Report{}, fmt.Errorf("loadgen: object 0 has no tags to replay as inserts")
		}
	}
	st := &state{hist: obs.NewHistogram(obs.DefaultLatencyBuckets())}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if cfg.Warmup <= 0 {
		st.recording.Store(true)
	} else {
		warm := time.AfterFunc(cfg.Warmup, func() { st.recording.Store(true) })
		defer warm.Stop()
	}
	stop := time.AfterFunc(cfg.Warmup+cfg.Duration, cancel)
	defer stop.Stop()
	start := time.Now()

	if cfg.Rate > 0 {
		runOpen(ctx, c, cfg, st, tags)
	} else {
		runClosed(ctx, c, cfg, st, tags)
	}
	measured := time.Since(start) - cfg.Warmup
	if measured <= 0 {
		measured = time.Since(start)
	}
	snap := st.hist.Snapshot()
	r := Report{
		Sent:        st.sent.Load(),
		OK:          st.ok.Load(),
		Shed:        st.shed.Load(),
		Errors:      st.errs.Load(),
		Dropped:     st.dropped.Load(),
		Duration:    measured,
		OfferedRate: cfg.Rate,
		P50Ms:       snap.P50Ms,
		P95Ms:       snap.P95Ms,
		P99Ms:       snap.P99Ms,
	}
	r.AchievedRate = float64(r.OK) / measured.Seconds()
	return r, nil
}

// runClosed keeps Concurrency requests outstanding until ctx is done.
func runClosed(ctx context.Context, c *client.Client, cfg Config, st *state, tags []string) {
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := newGen(cfg.Seed+int64(w)*7919, cfg, tags)
			for ctx.Err() == nil {
				do := g.draw()
				t0 := time.Now()
				err := do(ctx, c)
				if ctx.Err() != nil && err != nil {
					return // shutdown race, not a server answer
				}
				st.record(err, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
}

// runOpen schedules arrivals at cfg.Rate from the run's start, bounding
// in-flight requests with a semaphore; arrivals past the bound drop.
func runOpen(ctx context.Context, c *client.Client, cfg Config, st *state, tags []string) {
	sem := make(chan struct{}, cfg.MaxOutstanding)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	// One generator feeds all arrivals: the schedule is fixed, only the
	// execution is concurrent. Requests are drawn on the scheduling
	// goroutine — cheap relative to the interval at any rate a test box
	// can offer — and executed in their own goroutines.
	g := newGen(cfg.Seed, cfg, tags)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; ; i++ {
		next := start.Add(time.Duration(i) * interval)
		if d := time.Until(next); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				wg.Wait()
				return
			}
		}
		if ctx.Err() != nil {
			wg.Wait()
			return
		}
		select {
		case sem <- struct{}{}:
		default:
			if st.recording.Load() {
				st.dropped.Add(1)
			}
			continue
		}
		do := g.draw()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			err := do(ctx, c)
			if ctx.Err() != nil && err != nil {
				return
			}
			st.record(err, time.Since(t0))
		}()
	}
}
