// Package eval implements the evaluation protocol of Section 5.1.4:
// Precision@N over sampled query objects for retrieval (with the planted
// primary topic standing in for the paper's three human evaluators) and
// Precision@N against held-out future favourites for recommendation, plus
// per-query wall-clock timing for the efficiency study (Figure 9).
package eval

import (
	"time"

	"figfusion/internal/baselines"
	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/par"
	"figfusion/internal/recommend"
	"figfusion/internal/retrieval"
	"figfusion/internal/topk"
)

// System is anything that can answer top-k similarity queries over a
// corpus. Both the FIG engine and the baselines adapt to it.
type System interface {
	Name() string
	Search(q *media.Object, k int, exclude media.ObjectID) []topk.Item
	SearchAmong(q *media.Object, candidates []media.ObjectID, k int) []topk.Item
}

// FIGSystem adapts retrieval.Engine to System.
type FIGSystem struct {
	Engine *retrieval.Engine
	Label  string
}

// Name implements System.
func (f FIGSystem) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "FIG"
}

// Search implements System.
func (f FIGSystem) Search(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	return f.Engine.Search(q, k, exclude)
}

// SearchAmong implements System by scoring only the candidates with the
// engine's MRF model.
func (f FIGSystem) SearchAmong(q *media.Object, candidates []media.ObjectID, k int) []topk.Item {
	cliques := f.Engine.QueryCliques(q)
	corpus := f.Engine.Model.Stats.Corpus()
	h := topk.NewHeap(k)
	for _, oid := range candidates {
		if s := f.Engine.Scorer.Score(cliques, corpus.Object(oid)); s > 0 {
			h.Push(topk.Item{ID: oid, Score: s})
		}
	}
	return h.Results()
}

// BaselineSystem adapts a baselines.Scorer to System.
type BaselineSystem struct {
	Scorer baselines.Scorer
	Corpus *media.Corpus
}

// Name implements System.
func (b BaselineSystem) Name() string { return b.Scorer.Name() }

// Search implements System.
func (b BaselineSystem) Search(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	return baselines.Search(b.Scorer, b.Corpus, q, k, exclude)
}

// SearchAmong implements System.
func (b BaselineSystem) SearchAmong(q *media.Object, candidates []media.ObjectID, k int) []topk.Item {
	return baselines.SearchAmong(b.Scorer, b.Corpus, q, candidates, k)
}

// Precision returns the fraction of results the relevance oracle accepts.
// Empty result lists score 0.
func Precision(q *media.Object, results []topk.Item, corpus *media.Corpus,
	relevant func(q, o *media.Object) bool) float64 {
	if len(results) == 0 {
		return 0
	}
	rel := 0
	for _, it := range results {
		if relevant(q, corpus.Object(it.ID)) {
			rel++
		}
	}
	return float64(rel) / float64(len(results))
}

// RetrievalPrecision runs every query through the system once at the
// largest N and reports mean Precision@N for each requested N. Queries are
// evaluated concurrently across every CPU; see RetrievalPrecisionWorkers to
// pin the fan-out.
func RetrievalPrecision(sys System, corpus *media.Corpus, queries []media.ObjectID,
	ns []int, relevant func(q, o *media.Object) bool) map[int]float64 {
	return RetrievalPrecisionWorkers(sys, corpus, queries, ns, relevant, 0)
}

// RetrievalPrecisionWorkers is RetrievalPrecision with a bounded fan-out
// (0 = NumCPU). The result is identical at any worker count: each worker
// evaluates whole queries — the System must be safe for concurrent
// searches, as retrieval.Engine and the baselines are — into fixed
// per-query slots, and the per-query precisions are summed serially in
// query order, so the floating-point reduction never depends on the
// fan-out. This is the λ-training objective's hot loop: the §3.4
// coordinate ascent calls it once per candidate parameter point.
func RetrievalPrecisionWorkers(sys System, corpus *media.Corpus, queries []media.ObjectID,
	ns []int, relevant func(q, o *media.Object) bool, workers int) map[int]float64 {
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	precs := make([][]float64, len(queries))
	par.Range(len(queries), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			qid := queries[i]
			q := corpus.Object(qid)
			results := sys.Search(q, maxN, qid)
			row := make([]float64, len(ns))
			for j, n := range ns {
				top := results
				if len(top) > n {
					top = top[:n]
				}
				row[j] = Precision(q, top, corpus, relevant)
			}
			precs[i] = row
		}
	})
	sums := make(map[int]float64, len(ns))
	for _, row := range precs {
		for j, n := range ns {
			sums[n] += row[j]
		}
	}
	out := make(map[int]float64, len(ns))
	for _, n := range ns {
		out[n] = sums[n] / float64(len(queries))
	}
	return out
}

// RetrievalTime reports the mean wall-clock time per query at depth k.
func RetrievalTime(sys System, corpus *media.Corpus, queries []media.ObjectID, k int) time.Duration {
	start := time.Now()
	for _, qid := range queries {
		sys.Search(corpus.Object(qid), k, qid)
	}
	return time.Since(start) / time.Duration(len(queries))
}

// RecSystem is anything that can recommend candidates for a user history.
type RecSystem interface {
	Name() string
	Recommend(history []*media.Object, candidates []media.ObjectID, k, now int) []topk.Item
}

// FIGRecSystem adapts recommend.Recommender to RecSystem.
type FIGRecSystem struct {
	Rec   *recommend.Recommender
	Label string
}

// Name implements RecSystem.
func (f FIGRecSystem) Name() string {
	if f.Label != "" {
		return f.Label
	}
	if f.Rec.Temporal() {
		return "FIG-T"
	}
	return "FIG"
}

// Recommend implements RecSystem.
func (f FIGRecSystem) Recommend(history []*media.Object, candidates []media.ObjectID, k, now int) []topk.Item {
	return f.Rec.Recommend(history, candidates, k, now)
}

// BaselineRecSystem adapts a baseline scorer to RecSystem via the naive
// "big object" profile of Section 4 (the baselines have no temporal model,
// so the union is their only option — "the retrieval algorithms of these
// approaches can be used only with minor modification").
type BaselineRecSystem struct {
	Scorer baselines.Scorer
	Corpus *media.Corpus
}

// Name implements RecSystem.
func (b BaselineRecSystem) Name() string { return b.Scorer.Name() }

// Recommend implements RecSystem.
func (b BaselineRecSystem) Recommend(history []*media.Object, candidates []media.ObjectID, k, now int) []topk.Item {
	profile := media.UnionObject(media.ObjectID(-1), history)
	return baselines.SearchAmong(b.Scorer, b.Corpus, profile, candidates, k)
}

// RecommendationPrecision reports mean Precision@N over the dataset's user
// profiles: the fraction of the top-N recommendations that the user
// actually favourited in the held-out months.
func RecommendationPrecision(sys RecSystem, rd *dataset.RecDataset, ns []int) map[int]float64 {
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	sums := make(map[int]float64, len(ns))
	for _, p := range rd.Profiles {
		history := rd.HistoryObjects(p)
		results := sys.Recommend(history, rd.Candidates, maxN, rd.Now)
		for _, n := range ns {
			top := results
			if len(top) > n {
				top = top[:n]
			}
			if len(top) == 0 {
				continue
			}
			hits := 0
			for _, it := range top {
				if p.Future[it.ID] {
					hits++
				}
			}
			sums[n] += float64(hits) / float64(len(top))
		}
	}
	out := make(map[int]float64, len(ns))
	for _, n := range ns {
		out[n] = sums[n] / float64(len(rd.Profiles))
	}
	return out
}
