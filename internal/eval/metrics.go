package eval

import (
	"math"

	"figfusion/internal/media"
	"figfusion/internal/numeric"
	"figfusion/internal/topk"
)

// Rank-accuracy metrics complementing Precision@N. The paper's cited
// survey (Herlocker et al. [10]) distinguishes predictive, classification
// and rank accuracy metric classes; the paper itself reports the
// classification metric Precision@N, and these rank metrics extend the
// harness for finer-grained comparisons.

// AveragePrecision computes AP of a ranked result list against a relevance
// oracle: the mean of precision-at-i over the ranks i holding relevant
// results, normalised by min(|results|, totalRelevant). A zero
// totalRelevant yields 0.
func AveragePrecision(q *media.Object, results []topk.Item, corpus *media.Corpus,
	relevant func(q, o *media.Object) bool, totalRelevant int) float64 {
	if totalRelevant <= 0 || len(results) == 0 {
		return 0
	}
	var sum float64
	hits := 0
	for i, it := range results {
		if relevant(q, corpus.Object(it.ID)) {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	denom := totalRelevant
	if len(results) < denom {
		denom = len(results)
	}
	return sum / float64(denom)
}

// ReciprocalRank returns 1/rank of the first relevant result (0 if none).
func ReciprocalRank(q *media.Object, results []topk.Item, corpus *media.Corpus,
	relevant func(q, o *media.Object) bool) float64 {
	for i, it := range results {
		if relevant(q, corpus.Object(it.ID)) {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// NDCG computes the normalised discounted cumulative gain at the list
// depth with binary gains: DCG = Σ rel_i / log2(i+1), normalised by the
// ideal DCG for min(|results|, totalRelevant) relevant results in front.
func NDCG(q *media.Object, results []topk.Item, corpus *media.Corpus,
	relevant func(q, o *media.Object) bool, totalRelevant int) float64 {
	if len(results) == 0 || totalRelevant <= 0 {
		return 0
	}
	var dcg float64
	for i, it := range results {
		if relevant(q, corpus.Object(it.ID)) {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := totalRelevant
	if len(results) < ideal {
		ideal = len(results)
	}
	var idcg float64
	for i := 0; i < ideal; i++ {
		idcg += 1 / math.Log2(float64(i)+2)
	}
	if numeric.IsZero(idcg) {
		return 0
	}
	return dcg / idcg
}

// RankMetrics aggregates MAP, MRR and mean NDCG of a system over queries at
// depth k. totalRelevant maps each query to its corpus-wide relevant count
// (for the planted corpus, the number of same-topic objects minus one).
type RankMetrics struct {
	MAP  float64
	MRR  float64
	NDCG float64
}

// RetrievalRankMetrics evaluates a system's ranked lists with the rank
// metrics at depth k.
func RetrievalRankMetrics(sys System, corpus *media.Corpus, queries []media.ObjectID,
	k int, relevant func(q, o *media.Object) bool, totalRelevant func(q *media.Object) int) RankMetrics {
	var m RankMetrics
	if len(queries) == 0 {
		return m
	}
	for _, qid := range queries {
		q := corpus.Object(qid)
		results := sys.Search(q, k, qid)
		tr := totalRelevant(q)
		m.MAP += AveragePrecision(q, results, corpus, relevant, tr)
		m.MRR += ReciprocalRank(q, results, corpus, relevant)
		m.NDCG += NDCG(q, results, corpus, relevant, tr)
	}
	n := float64(len(queries))
	m.MAP /= n
	m.MRR /= n
	m.NDCG /= n
	return m
}

// TopicCounts returns, for a planted corpus, the number of objects per
// primary topic — the totalRelevant source for rank metrics.
func TopicCounts(corpus *media.Corpus) map[int]int {
	counts := make(map[int]int)
	for _, o := range corpus.Objects {
		if o.PrimaryTopic >= 0 {
			counts[o.PrimaryTopic]++
		}
	}
	return counts
}
