package eval

import (
	"math"
	"math/rand"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
	"figfusion/internal/topk"
)

// metricWorld builds a 5-object corpus where objects 1,2 share topic 0 with
// the query (object 0) and objects 3,4 are topic 1.
func metricWorld(t *testing.T) (*media.Corpus, *media.Object) {
	t.Helper()
	c := media.NewCorpus()
	for i := 0; i < 5; i++ {
		o, err := c.Add([]media.Feature{{Kind: media.Text, Name: string(rune('a' + i))}}, []int{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			o.PrimaryTopic = 0
		} else {
			o.PrimaryTopic = 1
		}
	}
	return c, c.Object(0)
}

func items(ids ...media.ObjectID) []topk.Item {
	out := make([]topk.Item, len(ids))
	for i, id := range ids {
		out[i] = topk.Item{ID: id, Score: float64(len(ids) - i)}
	}
	return out
}

func TestAveragePrecision(t *testing.T) {
	c, q := metricWorld(t)
	// Results: rel, irrel, rel → AP = (1/1 + 2/3)/2 = 0.8333 (2 relevant
	// in corpus besides the query).
	got := AveragePrecision(q, items(1, 3, 2), c, dataset.Relevant, 2)
	want := (1.0 + 2.0/3) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %v, want %v", got, want)
	}
	// Perfect ranking → 1.
	if got := AveragePrecision(q, items(1, 2), c, dataset.Relevant, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AP = %v", got)
	}
	// No relevant results → 0.
	if got := AveragePrecision(q, items(3, 4), c, dataset.Relevant, 2); got != 0 {
		t.Errorf("all-irrelevant AP = %v", got)
	}
	// Degenerate inputs.
	if AveragePrecision(q, nil, c, dataset.Relevant, 2) != 0 {
		t.Error("empty results AP should be 0")
	}
	if AveragePrecision(q, items(1), c, dataset.Relevant, 0) != 0 {
		t.Error("zero totalRelevant AP should be 0")
	}
	// Short list normalised by list length: one relevant at rank 1 of a
	// 1-item list with 2 relevant overall → AP 1.
	if got := AveragePrecision(q, items(1), c, dataset.Relevant, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("short-list AP = %v, want 1", got)
	}
}

func TestReciprocalRank(t *testing.T) {
	c, q := metricWorld(t)
	if got := ReciprocalRank(q, items(3, 4, 1), c, dataset.Relevant); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("RR = %v, want 1/3", got)
	}
	if got := ReciprocalRank(q, items(1), c, dataset.Relevant); got != 1 {
		t.Errorf("RR = %v, want 1", got)
	}
	if got := ReciprocalRank(q, items(3, 4), c, dataset.Relevant); got != 0 {
		t.Errorf("RR = %v, want 0", got)
	}
}

func TestNDCG(t *testing.T) {
	c, q := metricWorld(t)
	// Perfect ranking of both relevant objects → 1.
	if got := NDCG(q, items(1, 2, 3), c, dataset.Relevant, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect NDCG = %v", got)
	}
	// Relevant at ranks 2,3: DCG = 1/log2(3)+1/log2(4); IDCG = 1+1/log2(3).
	got := NDCG(q, items(3, 1, 2), c, dataset.Relevant, 2)
	want := (1/math.Log2(3) + 0.5) / (1 + 1/math.Log2(3))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NDCG = %v, want %v", got, want)
	}
	if NDCG(q, nil, c, dataset.Relevant, 2) != 0 {
		t.Error("empty NDCG should be 0")
	}
	// NDCG is monotone under rank improvement of a relevant item.
	worse := NDCG(q, items(3, 4, 1), c, dataset.Relevant, 2)
	better := NDCG(q, items(3, 1, 4), c, dataset.Relevant, 2)
	if better <= worse {
		t.Errorf("NDCG not monotone: %v vs %v", better, worse)
	}
}

func TestTopicCounts(t *testing.T) {
	c, _ := metricWorld(t)
	counts := TopicCounts(c)
	if counts[0] != 3 || counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestRetrievalRankMetricsEndToEnd(t *testing.T) {
	d := testData(t)
	e, err := retrieval.NewEngine(d.Model(), retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	counts := TopicCounts(d.Corpus)
	rng := rand.New(rand.NewSource(15))
	queries := d.SampleQueries(5, rng)
	m := RetrievalRankMetrics(FIGSystem{Engine: e}, d.Corpus, queries, 10,
		dataset.Relevant, func(q *media.Object) int { return counts[q.PrimaryTopic] - 1 })
	for name, v := range map[string]float64{"MAP": m.MAP, "MRR": m.MRR, "NDCG": m.NDCG} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of range", name, v)
		}
	}
	// A planted corpus should give a strong MRR (first result usually
	// relevant).
	if m.MRR < 0.5 {
		t.Errorf("MRR = %v, implausibly low", m.MRR)
	}
	// Empty query set → zero value.
	zero := RetrievalRankMetrics(FIGSystem{Engine: e}, d.Corpus, nil, 10,
		dataset.Relevant, func(*media.Object) int { return 1 })
	if zero.MAP != 0 || zero.MRR != 0 || zero.NDCG != 0 {
		t.Errorf("empty-query metrics = %+v", zero)
	}
}
