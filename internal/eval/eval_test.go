package eval

import (
	"math/rand"
	"testing"

	"figfusion/internal/baselines"
	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/recommend"
	"figfusion/internal/retrieval"
	"figfusion/internal/topk"
)

func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 180
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPrecision(t *testing.T) {
	c := media.NewCorpus()
	var objs []*media.Object
	for i := 0; i < 4; i++ {
		o, err := c.Add([]media.Feature{{Kind: media.Text, Name: string(rune('a' + i))}}, []int{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		o.PrimaryTopic = i % 2
		objs = append(objs, o)
	}
	q := objs[0] // topic 0
	results := []topk.Item{{ID: 1, Score: 1}, {ID: 2, Score: 0.5}, {ID: 3, Score: 0.2}}
	// objects 1,3 are topic 1; object 2 is topic 0 → precision 1/3.
	got := Precision(q, results, c, dataset.Relevant)
	if got != 1.0/3 {
		t.Errorf("Precision = %v, want 1/3", got)
	}
	if Precision(q, nil, c, dataset.Relevant) != 0 {
		t.Error("empty results should score 0")
	}
}

func TestFIGSystemAdapters(t *testing.T) {
	d := testData(t)
	e, err := retrieval.NewEngine(d.Model(), retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys := FIGSystem{Engine: e}
	if sys.Name() != "FIG" {
		t.Errorf("Name = %q", sys.Name())
	}
	if (FIGSystem{Engine: e, Label: "FIG-text"}).Name() != "FIG-text" {
		t.Error("Label override broken")
	}
	q := d.Corpus.Object(0)
	res := sys.Search(q, 5, q.ID)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	cands := []media.ObjectID{res[0].ID, res[1].ID}
	among := sys.SearchAmong(q, cands, 5)
	if len(among) == 0 {
		t.Fatal("SearchAmong empty")
	}
	for _, it := range among {
		if it.ID != cands[0] && it.ID != cands[1] {
			t.Errorf("result %v outside candidates", it)
		}
	}
}

func TestRetrievalPrecisionMonotoneSystems(t *testing.T) {
	d := testData(t)
	e, err := retrieval.NewEngine(d.Model(), retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	figSys := FIGSystem{Engine: e}
	tpSys := BaselineSystem{Scorer: baselines.NewTP(d.Corpus), Corpus: d.Corpus}
	rng := rand.New(rand.NewSource(9))
	queries := d.SampleQueries(6, rng)
	ns := []int{3, 5, 10}
	for _, sys := range []System{figSys, tpSys} {
		p := RetrievalPrecision(sys, d.Corpus, queries, ns, dataset.Relevant)
		for _, n := range ns {
			if p[n] < 0 || p[n] > 1 {
				t.Errorf("%s P@%d = %v out of range", sys.Name(), n, p[n])
			}
		}
		// Planted topics: both systems must beat random (1/5) at N=3.
		if p[3] < 0.2 {
			t.Errorf("%s P@3 = %v, no better than random", sys.Name(), p[3])
		}
	}
}

func TestRetrievalTime(t *testing.T) {
	d := testData(t)
	e, err := retrieval.NewEngine(d.Model(), retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	queries := d.SampleQueries(3, rng)
	dur := RetrievalTime(FIGSystem{Engine: e}, d.Corpus, queries, 10)
	if dur <= 0 {
		t.Errorf("duration = %v", dur)
	}
}

func TestRecommendationPrecision(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 400
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	rc := dataset.DefaultRecConfig()
	rc.NumUsers = 8
	rc.MinHistory = 3
	rd, err := dataset.GenerateRec(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := recommend.New(rd.Model(), recommend.Config{Temporal: true})
	if err != nil {
		t.Fatal(err)
	}
	figT := FIGRecSystem{Rec: r}
	if figT.Name() != "FIG-T" {
		t.Errorf("Name = %q", figT.Name())
	}
	rFlat, err := recommend.New(rd.Model(), recommend.Config{Temporal: false})
	if err != nil {
		t.Fatal(err)
	}
	if (FIGRecSystem{Rec: rFlat}).Name() != "FIG" {
		t.Error("non-temporal name should be FIG")
	}
	tpSys := BaselineRecSystem{Scorer: baselines.NewTP(rd.Corpus), Corpus: rd.Corpus}
	if tpSys.Name() != "TP" {
		t.Errorf("baseline rec name = %q", tpSys.Name())
	}
	ns := []int{5, 10}
	for _, sys := range []RecSystem{figT, tpSys} {
		p := RecommendationPrecision(sys, rd, ns)
		for _, n := range ns {
			if p[n] < 0 || p[n] > 1 {
				t.Errorf("%s P@%d = %v out of range", sys.Name(), n, p[n])
			}
		}
	}
	// FIG-T should beat the naive TP union profile on drifting users.
	pFig := RecommendationPrecision(figT, rd, []int{10})
	pTP := RecommendationPrecision(tpSys, rd, []int{10})
	if pFig[10] == 0 && pTP[10] == 0 {
		t.Skip("both systems scored zero; corpus too small to compare")
	}
	t.Logf("FIG-T P@10=%v TP P@10=%v", pFig[10], pTP[10])
}
