// Package classify implements the classification application the paper's
// introduction lists alongside retrieval and recommendation ("media
// retrieval, recommendation, classification, etc."): a k-nearest-neighbour
// topic classifier whose neighbourhood is defined by the FIG/MRF similarity.
// An unlabelled object is classified by a similarity-weighted vote of its
// top-k most similar labelled objects — the natural way to reuse the fusion
// model for labelling, and the extension experiment of DESIGN.md.
package classify

import (
	"fmt"

	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

// Classifier labels objects by weighted kNN over a retrieval engine. The
// training labels come from a caller-supplied oracle (in experiments, the
// planted topics of the labelled portion of the corpus).
type Classifier struct {
	engine *retrieval.Engine
	labels map[media.ObjectID]int
	k      int
}

// New builds a classifier over an engine and a label map. k is the
// neighbourhood size; values < 1 default to 10.
func New(engine *retrieval.Engine, labels map[media.ObjectID]int, k int) (*Classifier, error) {
	if engine == nil {
		return nil, fmt.Errorf("classify: nil engine")
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("classify: no labelled objects")
	}
	if k < 1 {
		k = 10
	}
	return &Classifier{engine: engine, labels: labels, k: k}, nil
}

// Classify predicts a label for the object by similarity-weighted majority
// vote over its labelled neighbours. ok is false when no labelled
// neighbour was found (the object shares no clique with any labelled
// object).
func (c *Classifier) Classify(o *media.Object) (label int, ok bool) {
	// Over-fetch so that unlabelled neighbours (the query's own unlabelled
	// cohort) do not starve the vote.
	results := c.engine.Search(o, 4*c.k, o.ID)
	votes := make(map[int]float64)
	voters := 0
	for _, it := range results {
		lbl, labelled := c.labels[it.ID]
		if !labelled {
			continue
		}
		votes[lbl] += it.Score
		voters++
		if voters == c.k {
			break
		}
	}
	if voters == 0 {
		return 0, false
	}
	best, bestVote := 0, -1.0
	for lbl, v := range votes {
		//figlint:allow floatcmp -- exact tie-break by smallest label keeps the argmax independent of map iteration order; an epsilon band here would be order-sensitive
		if v > bestVote || (v == bestVote && lbl < best) {
			best, bestVote = lbl, v
		}
	}
	return best, true
}

// Accuracy classifies every object in the test set and returns the
// fraction predicted correctly according to the truth oracle. Objects with
// no labelled neighbour count as errors.
func (c *Classifier) Accuracy(test []*media.Object, truth func(*media.Object) int) float64 {
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for _, o := range test {
		if lbl, ok := c.Classify(o); ok && lbl == truth(o) {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}
