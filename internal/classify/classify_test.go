package classify

import (
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

func setup(t testing.TB) (*dataset.Dataset, *retrieval.Engine) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 300
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := retrieval.NewEngine(d.Model(), retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d, e
}

// split labels the first 200 objects, leaving 100 as the test set.
func split(d *dataset.Dataset) (map[media.ObjectID]int, []*media.Object) {
	labels := make(map[media.ObjectID]int)
	var test []*media.Object
	for _, o := range d.Corpus.Objects {
		if int(o.ID) < 200 {
			labels[o.ID] = o.PrimaryTopic
		} else {
			test = append(test, o)
		}
	}
	return labels, test
}

func TestClassifierBeatsChance(t *testing.T) {
	d, e := setup(t)
	labels, test := split(d)
	c, err := New(e, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	acc := c.Accuracy(test, func(o *media.Object) int { return o.PrimaryTopic })
	// 5 topics → chance is 0.2; the fusion similarity must do much better.
	if acc < 0.5 {
		t.Errorf("accuracy = %v, want well above chance (0.2)", acc)
	}
	t.Logf("kNN accuracy over %d test objects: %.3f", len(test), acc)
}

func TestClassifyVotesWeighted(t *testing.T) {
	d, e := setup(t)
	labels, _ := split(d)
	c, err := New(e, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A labelled object classifies as its own topic (its near-duplicates
	// dominate the vote).
	o := d.Corpus.Object(10)
	lbl, ok := c.Classify(o)
	if !ok {
		t.Fatal("no labelled neighbours")
	}
	if lbl != o.PrimaryTopic {
		t.Errorf("label = %d, want %d", lbl, o.PrimaryTopic)
	}
}

func TestClassifyNoNeighbours(t *testing.T) {
	d, e := setup(t)
	labels, _ := split(d)
	c, err := New(e, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	// An object with only out-of-corpus features has no neighbours.
	alien := media.NewObject(99999, []media.FeatureCount{
		{FID: media.FID(d.Corpus.Dict.Len() + 3), Count: 1},
	}, 0)
	if _, ok := c.Classify(alien); ok {
		t.Error("alien object should have no labelled neighbours")
	}
}

func TestNewValidation(t *testing.T) {
	d, e := setup(t)
	if _, err := New(nil, map[media.ObjectID]int{0: 0}, 5); err == nil {
		t.Error("want error for nil engine")
	}
	if _, err := New(e, nil, 5); err == nil {
		t.Error("want error for empty labels")
	}
	// k < 1 defaults.
	c, err := New(e, map[media.ObjectID]int{0: d.Corpus.Object(0).PrimaryTopic}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.k != 10 {
		t.Errorf("k = %d, want default 10", c.k)
	}
}

func TestAccuracyEmptyTestSet(t *testing.T) {
	d, e := setup(t)
	labels, _ := split(d)
	c, err := New(e, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Accuracy(nil, func(*media.Object) int { return 0 }); got != 0 {
		t.Errorf("empty test accuracy = %v", got)
	}
}
