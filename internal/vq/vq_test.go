package vq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func clustered(centers []Descriptor, n int, noise float64, rng *rand.Rand) []Descriptor {
	var out []Descriptor
	for _, c := range centers {
		for i := 0; i < n; i++ {
			d := c
			for j := range d {
				d[j] += rng.NormFloat64() * noise
			}
			out = append(out, d)
		}
	}
	return out
}

func separated(k int) []Descriptor {
	centers := make([]Descriptor, k)
	for i := range centers {
		centers[i][i%Dim] = 10 * float64(1+i/Dim)
	}
	return centers
}

func TestTrainRecoversCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := separated(5)
	samples := clustered(centers, 40, 0.05, rng)
	voc, err := TrainVocabulary(samples, 5, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range centers {
		w := voc.Quantize(c)
		if d := voc.Centroids[w].Distance(c); d > 0.5 {
			t.Errorf("center %d: nearest word at distance %v", i, d)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := TrainVocabulary(make([]Descriptor, 3), 0, 5, rng); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := TrainVocabulary(make([]Descriptor, 2), 5, 5, rng); err == nil {
		t.Error("want error for too few samples")
	}
}

func TestDescriptorOps(t *testing.T) {
	var a, b Descriptor
	a[0], b[0] = 1, 4
	if got := a.Distance(b); got != 3 {
		t.Errorf("Distance = %v", got)
	}
	a.Add(b)
	if a[0] != 5 {
		t.Errorf("Add: %v", a[0])
	}
	a.Scale(0.2)
	if a[0] != 1 {
		t.Errorf("Scale: %v", a[0])
	}
}

func TestQuantizeIsNearestProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	centers := separated(6)
	samples := clustered(centers, 25, 0.2, rng)
	voc, err := TrainVocabulary(samples, 6, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Quantize must return the argmin of WordDistance for any sample.
	f := func(idx uint) bool {
		s := samples[idx%uint(len(samples))]
		w := voc.Quantize(s)
		best := voc.Centroids[w].Distance(s)
		for _, c := range voc.Centroids {
			if c.Distance(s) < best-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordSimilaritySelf(t *testing.T) {
	voc := &Vocabulary{Centroids: separated(3)}
	for i := 0; i < 3; i++ {
		if got := voc.WordSimilarity(i, i); got != 1 {
			t.Errorf("self similarity = %v", got)
		}
	}
	if s := voc.WordSimilarity(0, 1); s <= 0 || s >= 1 {
		t.Errorf("cross similarity = %v out of (0,1)", s)
	}
	if math.Abs(voc.WordSimilarity(0, 1)-voc.WordSimilarity(1, 0)) > 1e-15 {
		t.Error("similarity not symmetric")
	}
}
