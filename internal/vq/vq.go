// Package vq provides the vector-quantization machinery shared by the
// content-feature substrates: fixed-dimension descriptors, k-means++/Lloyd
// codebook training, and quantization of raw descriptors into "words".
// The paper builds its visual words this way (Section 5.1.3, following
// [25]); the audio extension reuses the identical pipeline over spectral
// frame descriptors, which is why the machinery lives modality-neutral.
package vq

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"figfusion/internal/numeric"
	"figfusion/internal/par"
)

// Dim is the dimensionality of a descriptor. The paper uses 16-D visual
// word vectors (Section 3.2).
const Dim = 16

// Descriptor is one raw feature vector.
type Descriptor [Dim]float64

// Distance returns the Euclidean distance between two descriptors, the
// metric the paper uses between visual words.
func (d Descriptor) Distance(o Descriptor) float64 {
	var sum float64
	for i := range d {
		diff := d[i] - o[i]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// Add accumulates o into d (used by k-means centroid updates).
func (d *Descriptor) Add(o Descriptor) {
	for i := range d {
		d[i] += o[i]
	}
}

// Scale multiplies every component by f.
func (d *Descriptor) Scale(f float64) {
	for i := range d {
		d[i] *= f
	}
}

// Vocabulary is a trained codebook: each centroid is one word. It is
// immutable after training and safe for concurrent reads.
type Vocabulary struct {
	Centroids []Descriptor
}

// ErrTooFewSamples is returned when training has fewer samples than words.
var ErrTooFewSamples = errors.New("vq: fewer samples than requested words")

// TrainVocabulary clusters samples into k words using k-means++ seeding
// followed by Lloyd iterations. Training stops when assignments stabilise
// or maxIter is reached. The rng makes training reproducible. The
// assignment fan-out uses every CPU; see TrainVocabularyWorkers to pin it.
func TrainVocabulary(samples []Descriptor, k, maxIter int, rng *rand.Rand) (*Vocabulary, error) {
	return TrainVocabularyWorkers(samples, k, maxIter, rng, 0)
}

// TrainVocabularyWorkers is TrainVocabulary with a bounded fan-out:
// workers caps the goroutines striping the Lloyd assignment step and the
// k-means++ distance passes (0 = NumCPU). Training is deterministic —
// byte-identical centroids at any worker count — because the parallel
// stages only compute pure per-sample values into fixed slots; every
// floating-point accumulation (centroid sums, the D² seeding mass) and
// every rng draw stays on the serial path in sample order.
func TrainVocabularyWorkers(samples []Descriptor, k, maxIter int, rng *rand.Rand, workers int) (*Vocabulary, error) {
	if k <= 0 {
		return nil, fmt.Errorf("vq: k must be positive, got %d", k)
	}
	if len(samples) < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewSamples, len(samples), k)
	}
	centroids := seedPlusPlus(samples, k, rng, workers)
	assign := make([]int, len(samples))
	for i := range assign {
		assign[i] = -1
	}
	next := make([]int, len(samples))
	for iter := 0; iter < maxIter; iter++ {
		// Assignment is a pure per-sample argmin, so it stripes freely.
		par.Range(len(samples), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				next[i] = nearest(centroids, samples[i])
			}
		})
		changed := false
		for i := range samples {
			if next[i] != assign[i] {
				assign[i] = next[i]
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Centroid accumulation runs serially in sample order so the
		// floating-point summation order never depends on the fan-out.
		counts := make([]int, k)
		sums := make([]Descriptor, k)
		for i, s := range samples {
			c := assign[i]
			counts[c]++
			sums[c].Add(s)
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random sample; this keeps
				// the vocabulary at full size, as the paper's fixed-size
				// codebook requires.
				centroids[c] = samples[rng.Intn(len(samples))]
				continue
			}
			sums[c].Scale(1 / float64(counts[c]))
			centroids[c] = sums[c]
		}
	}
	return &Vocabulary{Centroids: centroids}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
// The distance pass against the latest centroid fans out; the D² mass and
// the weighted draw accumulate serially in sample order.
func seedPlusPlus(samples []Descriptor, k int, rng *rand.Rand, workers int) []Descriptor {
	centroids := make([]Descriptor, 0, k)
	centroids = append(centroids, samples[rng.Intn(len(samples))])
	dist2 := make([]float64, len(samples))
	newD2 := make([]float64, len(samples))
	for len(centroids) < k {
		last := centroids[len(centroids)-1]
		par.Range(len(samples), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				d := samples[i].Distance(last)
				newD2[i] = d * d
			}
		})
		var total float64
		first := len(centroids) == 1
		for i := range samples {
			if first || newD2[i] < dist2[i] {
				dist2[i] = newD2[i]
			}
			total += dist2[i]
		}
		if numeric.IsZero(total) {
			// All remaining samples coincide with chosen centroids; fall
			// back to uniform sampling so we still return k centroids.
			centroids = append(centroids, samples[rng.Intn(len(samples))])
			continue
		}
		r := rng.Float64() * total
		idx := len(samples) - 1
		var acc float64
		for i, d2 := range dist2 {
			acc += d2
			if acc >= r {
				idx = i
				break
			}
		}
		centroids = append(centroids, samples[idx])
	}
	return centroids
}

// nearest returns the index of the centroid closest to s. It compares
// squared distances (the argmin is the same, sqrt is monotone) and abandons
// a candidate as soon as its partial sum exceeds the best seen, which skips
// most of the component loop once a close centroid is found.
func nearest(centroids []Descriptor, s Descriptor) int {
	best, bestDist := 0, math.Inf(1)
	for c := range centroids {
		if d2 := centroids[c].distance2Within(s, bestDist); d2 < bestDist {
			best, bestDist = c, d2
		}
	}
	return best
}

// distance2Within returns the squared Euclidean distance between d and o,
// early-exiting once the partial sum reaches limit (the returned value is
// then only a lower bound, but already ≥ limit, so an argmin comparing
// against limit rejects it either way).
func (d Descriptor) distance2Within(o Descriptor, limit float64) float64 {
	var sum float64
	for i := 0; i < Dim; i += 4 {
		d0 := d[i] - o[i]
		d1 := d[i+1] - o[i+1]
		d2 := d[i+2] - o[i+2]
		d3 := d[i+3] - o[i+3]
		sum += d0*d0 + d1*d1 + d2*d2 + d3*d3
		if sum >= limit {
			return sum
		}
	}
	return sum
}

// Size returns the number of words.
func (v *Vocabulary) Size() int { return len(v.Centroids) }

// Quantize maps a raw descriptor to the index of its nearest word.
func (v *Vocabulary) Quantize(d Descriptor) int { return nearest(v.Centroids, d) }

// QuantizeAll maps a set of descriptors to word indices.
func (v *Vocabulary) QuantizeAll(descs []Descriptor) []int {
	words := make([]int, len(descs))
	for i, d := range descs {
		words[i] = v.Quantize(d)
	}
	return words
}

// WordDistance returns the Euclidean distance between two words.
func (v *Vocabulary) WordDistance(i, j int) float64 {
	return v.Centroids[i].Distance(v.Centroids[j])
}

// WordSimilarity converts word distance into a similarity in (0, 1]:
// 1/(1+dist). The FIG edge construction compares this against a trained
// threshold for intra-type content edges (Section 3.2).
func (v *Vocabulary) WordSimilarity(i, j int) float64 {
	return 1 / (1 + v.WordDistance(i, j))
}
