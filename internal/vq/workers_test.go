package vq

import (
	"math/rand"
	"runtime"
	"testing"
)

// trainAt runs one complete vocabulary training at the given fan-out from a
// fixed seed; every call sees the identical sample set and rng stream.
func trainAt(t *testing.T, workers int) *Vocabulary {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	centers := separated(6)
	samples := clustered(centers, 30, 0.15, rng)
	voc, err := TrainVocabularyWorkers(samples, 6, 25, rand.New(rand.NewSource(12)), workers)
	if err != nil {
		t.Fatal(err)
	}
	return voc
}

// TestTrainVocabularyWorkersDeterministic is the vq leg of the build-path
// determinism contract: the k-means++ seeding and Lloyd iterations must
// produce bit-identical centroids at any worker count, because the parallel
// passes only fill per-sample slots while every rng draw and floating-point
// accumulation stays serial in sample order.
func TestTrainVocabularyWorkersDeterministic(t *testing.T) {
	ref := trainAt(t, 1)
	for _, w := range []int{2, 3, 4, 0, runtime.NumCPU()} {
		voc := trainAt(t, w)
		if len(voc.Centroids) != len(ref.Centroids) {
			t.Fatalf("workers=%d: %d centroids, want %d", w, len(voc.Centroids), len(ref.Centroids))
		}
		for i := range ref.Centroids {
			if voc.Centroids[i] != ref.Centroids[i] {
				t.Fatalf("workers=%d: centroid %d differs from serial result", w, i)
			}
		}
	}
	// The unbounded entry point is the workers=0 case by definition.
	rng := rand.New(rand.NewSource(11))
	samples := clustered(separated(6), 30, 0.15, rng)
	voc, err := TrainVocabulary(samples, 6, 25, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Centroids {
		if voc.Centroids[i] != ref.Centroids[i] {
			t.Fatalf("TrainVocabulary diverges from TrainVocabularyWorkers at centroid %d", i)
		}
	}
}

// TestNearestMatchesExhaustive pins the early-exit squared-distance argmin
// against the public Distance: for every sample the assigned word must be a
// true nearest centroid.
func TestNearestMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	centers := separated(8)
	samples := clustered(centers, 20, 0.4, rng)
	voc, err := TrainVocabulary(samples, 8, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range samples {
		w := voc.Quantize(s)
		got := voc.Centroids[w].Distance(s)
		for ci, c := range voc.Centroids {
			if d := c.Distance(s); d < got-1e-12 {
				t.Fatalf("sample %d: Quantize chose word %d at %v, but centroid %d is nearer at %v", si, w, got, ci, d)
			}
		}
	}
}

func BenchmarkTrainVocabularySerial(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	samples := clustered(separated(6), 50, 0.15, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainVocabularyWorkers(samples, 6, 10, rand.New(rand.NewSource(12)), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainVocabularyParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	samples := clustered(separated(6), 50, 0.15, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainVocabularyWorkers(samples, 6, 10, rand.New(rand.NewSource(12)), 0); err != nil {
			b.Fatal(err)
		}
	}
}
