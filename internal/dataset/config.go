// Package dataset generates the synthetic stand-in for the paper's two
// Flickr crawls (Section 5.1.2): Dret, 236,600 "interesting" images with
// tags and users for retrieval evaluation, and Drec, the favourite histories
// of 279 users for recommendation evaluation.
//
// Real Flickr data is unavailable offline, so the generator plants a topic
// model: each topic owns a tag vocabulary (grouped under hypernyms in the
// lexicon taxonomy), a palette of visual block prototypes, and a user
// community sharing an interest group. An object drawn from a topic samples
// correlated tags, users and visual words — exactly the multi-modal
// correlation structure the FIG model exploits — plus cross-topic noise.
// The planted primary topic doubles as relevance ground truth, replacing
// the paper's three human evaluators with a deterministic judgment.
package dataset

import "fmt"

// Config controls corpus generation. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// NumObjects is |D|.
	NumObjects int
	// NumTopics is the number of planted topics.
	NumTopics int
	// Months spans the corpus timeline (the paper crawls 2008.1–2008.6,
	// i.e. 6 months).
	Months int

	// TagsPerTopic is each topic's private tag vocabulary size.
	TagsPerTopic int
	// NoiseTags is the size of the shared cross-topic tag vocabulary.
	NoiseTags int
	// TagsPerObject is the mean number of tags per object.
	TagsPerObject int
	// NoiseTagProb is the probability a tag is drawn from the noise
	// vocabulary instead of the topic vocabulary.
	NoiseTagProb float64

	// UsersPerTopic is each topic community's size.
	UsersPerTopic int
	// UsersPerObject is the mean number of user features per object
	// (uploader plus favouriters).
	UsersPerObject int
	// NoiseUserProb is the probability a user comes from a random
	// community rather than the object's topic community.
	NoiseUserProb float64
	// ExtraGroupProb is the probability a user joins one extra random
	// interest group beyond the community group.
	ExtraGroupProb float64

	// PrototypesPerTopic is the number of visual block prototypes per
	// topic palette, drawn from the shared pool.
	PrototypesPerTopic int
	// PrototypePool is the size of the global prototype pool topics draw
	// their palettes from. A pool not much larger than a single palette
	// forces topics to share visual words — the "semantic gap" that makes
	// the visual feature the weakest single modality in the paper's
	// Figure 5.
	PrototypePool int
	// ImageBlocks is the number of 16×16 blocks per image side; images
	// are (16·ImageBlocks)² pixels.
	ImageBlocks int
	// VisualVocab is the k of the k-means visual vocabulary. The paper
	// uses 1022 words; scaled corpora use proportionally fewer.
	VisualVocab int
	// VisualNoise is the per-pixel noise added when rendering blocks;
	// higher values blur topic palettes together (the "semantic gap").
	VisualNoise float64
	// BackgroundBlockProb is the probability a block is drawn from the
	// global pool instead of the topic palette — skies, walls and other
	// topic-agnostic image content.
	BackgroundBlockProb float64
	// VocabTrainImages is the number of images sampled to train the
	// visual vocabulary.
	VocabTrainImages int
	// KMeansIters bounds vocabulary training.
	KMeansIters int

	// SecondaryTopicProb is the probability an object mixes in a second
	// topic (contributing some of its tags/users/blocks).
	SecondaryTopicProb float64

	// Workers bounds the fan-out of vocabulary training (0 = NumCPU,
	// mirroring retrieval.Config.Workers). Generation is deterministic at
	// any worker count.
	Workers int
}

// DefaultConfig returns a laptop-scale configuration that preserves the
// paper's structural ratios (vocab sizes and feature densities scale with
// the corpus).
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		NumObjects:          2000,
		NumTopics:           16,
		Months:              6,
		TagsPerTopic:        30,
		NoiseTags:           160,
		TagsPerObject:       6,
		NoiseTagProb:        0.3,
		UsersPerTopic:       40,
		UsersPerObject:      3,
		NoiseUserProb:       0.3,
		ExtraGroupProb:      0.3,
		PrototypesPerTopic:  3,
		PrototypePool:       10,
		ImageBlocks:         3,
		VisualVocab:         40,
		VisualNoise:         0.25,
		BackgroundBlockProb: 0.4,
		VocabTrainImages:    200,
		KMeansIters:         15,
		SecondaryTopicProb:  0.3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumObjects < 1:
		return fmt.Errorf("dataset: NumObjects = %d", c.NumObjects)
	case c.NumTopics < 2:
		return fmt.Errorf("dataset: NumTopics = %d, need ≥ 2", c.NumTopics)
	case c.Months < 1:
		return fmt.Errorf("dataset: Months = %d", c.Months)
	case c.TagsPerTopic < 1 || c.TagsPerObject < 1:
		return fmt.Errorf("dataset: tag parameters must be positive")
	case c.UsersPerTopic < 1 || c.UsersPerObject < 1:
		return fmt.Errorf("dataset: user parameters must be positive")
	case c.PrototypesPerTopic < 1 || c.ImageBlocks < 1 || c.PrototypePool < 1:
		return fmt.Errorf("dataset: visual parameters must be positive")
	case c.VisualVocab < 2:
		return fmt.Errorf("dataset: VisualVocab = %d, need ≥ 2", c.VisualVocab)
	case c.VocabTrainImages < 1:
		return fmt.Errorf("dataset: VocabTrainImages = %d", c.VocabTrainImages)
	case c.NoiseTagProb < 0 || c.NoiseTagProb > 1 ||
		c.NoiseUserProb < 0 || c.NoiseUserProb > 1 ||
		c.ExtraGroupProb < 0 || c.ExtraGroupProb > 1 ||
		c.BackgroundBlockProb < 0 || c.BackgroundBlockProb > 1 ||
		c.SecondaryTopicProb < 0 || c.SecondaryTopicProb > 1:
		return fmt.Errorf("dataset: probabilities must be in [0,1]")
	case c.VisualNoise < 0:
		return fmt.Errorf("dataset: VisualNoise = %v", c.VisualNoise)
	}
	return nil
}
