package dataset

import (
	"fmt"
	"math/rand"

	"figfusion/internal/media"
)

// RecConfig controls generation of user favourite histories (the Drec crawl
// of Section 5.1.2: per-user favourite images over six months, the first
// three modelling interest, the rest held out for evaluation).
type RecConfig struct {
	// NumUsers is the number of evaluation users (the paper keeps 279).
	NumUsers int
	// PersistentTopics is how many long-running interests each user has
	// (the "cosmetic and fashion" common interest of Figure 4).
	PersistentTopics int
	// TransientProb is the probability a user also has a transient
	// interest confined to a month window (the "Obama during the
	// election" example).
	TransientProb float64
	// TransientMonths is the length of the transient window, which starts
	// at month 0: transient interests are bursts that lapse before the
	// evaluation period (the paper's "Obama during the 2008 election").
	TransientMonths int
	// TransientBoost multiplies the favourite rate during the transient
	// window — bursts are intense while they last.
	TransientBoost int
	// FavoritesPerMonth is how many objects a user favourites per active
	// topic per month.
	FavoritesPerMonth int
	// TrainMonths splits the timeline: months < TrainMonths form the
	// history H_u, the rest are the evaluation period.
	TrainMonths int
	// MinHistory drops users with fewer history favourites, mirroring
	// the paper's 100–1000 favourite filter.
	MinHistory int
}

// DefaultRecConfig returns a laptop-scale recommendation setup.
func DefaultRecConfig() RecConfig {
	return RecConfig{
		NumUsers:          40,
		PersistentTopics:  2,
		TransientProb:     0.7,
		TransientMonths:   2,
		TransientBoost:    2,
		FavoritesPerMonth: 4,
		TrainMonths:       3,
		MinHistory:        6,
	}
}

// Validate reports configuration errors (cfg is the corpus config the
// recommendation layer sits on).
func (rc RecConfig) Validate(cfg Config) error {
	switch {
	case rc.NumUsers < 1:
		return fmt.Errorf("dataset: NumUsers = %d", rc.NumUsers)
	case rc.PersistentTopics < 1 || rc.PersistentTopics > cfg.NumTopics:
		return fmt.Errorf("dataset: PersistentTopics = %d with %d topics", rc.PersistentTopics, cfg.NumTopics)
	case rc.TransientProb < 0 || rc.TransientProb > 1:
		return fmt.Errorf("dataset: TransientProb = %v", rc.TransientProb)
	case rc.TransientMonths < 1:
		return fmt.Errorf("dataset: TransientMonths = %d", rc.TransientMonths)
	case rc.TransientBoost < 1:
		return fmt.Errorf("dataset: TransientBoost = %d", rc.TransientBoost)
	case rc.FavoritesPerMonth < 1:
		return fmt.Errorf("dataset: FavoritesPerMonth = %d", rc.FavoritesPerMonth)
	case rc.TrainMonths < 1 || rc.TrainMonths >= cfg.Months:
		return fmt.Errorf("dataset: TrainMonths = %d must split the %d-month timeline", rc.TrainMonths, cfg.Months)
	case rc.MinHistory < 0:
		return fmt.Errorf("dataset: MinHistory = %d", rc.MinHistory)
	}
	return nil
}

// Profile is one evaluation user: their interest schedule, the favourite
// history H_u (training months) and the held-out future favourites that
// serve as the correct recommendations (the paper treats "the image in the
// 'favorite' list" as the correct recommendation).
type Profile struct {
	Interests      []int // persistent topics
	Transient      int   // transient topic, -1 if none
	TransientStart int
	TransientEnd   int // exclusive
	History        []media.ObjectID
	Future         map[media.ObjectID]bool
}

// RecDataset is a corpus plus user histories and the candidate pool of
// newly incoming objects.
type RecDataset struct {
	*Dataset
	RC       RecConfig
	Profiles []Profile
	// Candidates are the objects in the evaluation months, the "newly
	// incoming set" recommendations are drawn from.
	Candidates []media.ObjectID
	// Now is the recommendation timestamp t_c (the first eval month).
	Now int
}

// GenerateRec builds a corpus and layers user favourite histories with
// interest drift on top of it.
func GenerateRec(cfg Config, rc RecConfig) (*RecDataset, error) {
	if err := rc.Validate(cfg); err != nil {
		return nil, err
	}
	d, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	return GenerateRecFrom(d, cfg.NumTopics, cfg.Months, rc, cfg.Seed+1)
}

// GenerateRecFrom layers user favourite histories over an existing dataset
// — any dataset with planted primary topics and month labels, including
// music corpora from GenerateMusic. numTopics and months describe the
// dataset's label spaces.
func GenerateRecFrom(d *Dataset, numTopics, months int, rc RecConfig, seed int64) (*RecDataset, error) {
	if numTopics < rc.PersistentTopics+1 {
		return nil, fmt.Errorf("dataset: %d topics cannot support %d persistent interests", numTopics, rc.PersistentTopics)
	}
	if rc.TrainMonths < 1 || rc.TrainMonths >= months {
		return nil, fmt.Errorf("dataset: TrainMonths = %d must split the %d-month timeline", rc.TrainMonths, months)
	}
	rng := rand.New(rand.NewSource(seed))
	// Index objects by (topic, month).
	byTopicMonth := make([][][]media.ObjectID, numTopics)
	for t := range byTopicMonth {
		byTopicMonth[t] = make([][]media.ObjectID, months)
	}
	for _, o := range d.Corpus.Objects {
		if o.PrimaryTopic < 0 || o.PrimaryTopic >= numTopics || o.Month < 0 || o.Month >= months {
			return nil, fmt.Errorf("dataset: object %d labels (%d, %d) outside (%d topics, %d months)",
				o.ID, o.PrimaryTopic, o.Month, numTopics, months)
		}
		byTopicMonth[o.PrimaryTopic][o.Month] = append(byTopicMonth[o.PrimaryTopic][o.Month], o.ID)
	}
	rd := &RecDataset{Dataset: d, RC: rc, Now: rc.TrainMonths}
	for _, o := range d.Corpus.Objects {
		if o.Month >= rc.TrainMonths {
			rd.Candidates = append(rd.Candidates, o.ID)
		}
	}
	for u := 0; u < rc.NumUsers; u++ {
		p := buildProfile(numTopics, months, rc, byTopicMonth, rng)
		if len(p.History) < rc.MinHistory || len(p.Future) == 0 {
			continue
		}
		rd.Profiles = append(rd.Profiles, p)
	}
	if len(rd.Profiles) == 0 {
		return nil, fmt.Errorf("dataset: no user passed the history filter; corpus too small for %+v", rc)
	}
	return rd, nil
}

func buildProfile(numTopics, months int, rc RecConfig, byTopicMonth [][][]media.ObjectID, rng *rand.Rand) Profile {
	p := Profile{Transient: -1, Future: make(map[media.ObjectID]bool)}
	perm := rng.Perm(numTopics)
	p.Interests = append(p.Interests, perm[:rc.PersistentTopics]...)
	if rng.Float64() < rc.TransientProb {
		p.Transient = perm[rc.PersistentTopics]
		// Transients are early bursts that lapse well before the
		// train/eval split — the drift signal the decay model exploits.
		p.TransientStart = 0
		p.TransientEnd = rc.TransientMonths
		if p.TransientEnd > rc.TrainMonths {
			p.TransientEnd = rc.TrainMonths
		}
	}
	for month := 0; month < months; month++ {
		type draw struct {
			topic int
			count int
		}
		var draws []draw
		for _, topic := range p.Interests {
			draws = append(draws, draw{topic, rc.FavoritesPerMonth})
		}
		if p.Transient >= 0 && month >= p.TransientStart && month < p.TransientEnd {
			draws = append(draws, draw{p.Transient, rc.FavoritesPerMonth * rc.TransientBoost})
		}
		for _, dr := range draws {
			pool := byTopicMonth[dr.topic][month]
			for f := 0; f < dr.count && len(pool) > 0; f++ {
				oid := pool[rng.Intn(len(pool))]
				if month < rc.TrainMonths {
					p.History = append(p.History, oid)
				} else {
					p.Future[oid] = true
				}
			}
		}
	}
	p.History = dedupIDs(p.History)
	return p
}

func dedupIDs(ids []media.ObjectID) []media.ObjectID {
	seen := make(map[media.ObjectID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// HistoryObjects resolves a profile's history IDs into objects.
func (rd *RecDataset) HistoryObjects(p Profile) []*media.Object {
	out := make([]*media.Object, len(p.History))
	for i, id := range p.History {
		out[i] = rd.Corpus.Object(id)
	}
	return out
}
