package dataset

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"figfusion/internal/corr"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
	"figfusion/internal/social"
	"figfusion/internal/vision"
)

// Dataset is a generated corpus together with every substrate the
// correlation model needs. It corresponds to Dret of Section 5.1.2.
type Dataset struct {
	Config   Config
	Corpus   *media.Corpus
	Taxonomy *lexicon.Taxonomy
	Vocab    *vision.Vocabulary
	Network  *social.Network

	// VisualWord maps interned visual features to vocabulary indices;
	// UserOf maps interned user features to network users. Both feed
	// corr.NewModel.
	VisualWord map[media.FID]int
	UserOf     map[media.FID]social.UserID

	// AudioVocab and AudioWord are set by GenerateMusic (the music
	// extension); nil/empty for photo corpora.
	AudioVocab *vision.Vocabulary
	AudioWord  map[media.FID]int

	topicTags  [][]string            // topic -> tag names
	topicUsers [][]string            // topic -> community user names
	protos     [][]vision.Descriptor // topic -> visual palette
	pool       []vision.Descriptor   // global prototype pool
	noiseTags  []string
}

// Generate builds a dataset from the configuration.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Config:     cfg,
		Corpus:     media.NewCorpus(),
		Network:    social.NewNetwork(),
		VisualWord: make(map[media.FID]int),
		UserOf:     make(map[media.FID]social.UserID),
	}
	d.buildVocabularies(rng)
	if err := d.buildTaxonomy(); err != nil {
		return nil, err
	}
	d.buildCommunities(rng)
	d.buildPalettes(rng)
	if err := d.trainVisualVocabulary(rng); err != nil {
		return nil, err
	}
	if err := d.populate(rng); err != nil {
		return nil, err
	}
	d.buildFeatureMaps()
	return d, nil
}

func (d *Dataset) buildVocabularies(rng *rand.Rand) {
	cfg := d.Config
	d.topicTags = make([][]string, cfg.NumTopics)
	for t := range d.topicTags {
		tags := make([]string, cfg.TagsPerTopic)
		for i := range tags {
			tags[i] = fmt.Sprintf("topic%02dtag%02d", t, i)
		}
		d.topicTags[t] = tags
	}
	d.noiseTags = make([]string, cfg.NoiseTags)
	for i := range d.noiseTags {
		d.noiseTags[i] = fmt.Sprintf("noise%03d", i)
	}
}

// buildTaxonomy groups each topic's tags under a shared hypernym, with
// topics paired into domains; noise tags land in small "misc" groups so
// they too have some (spurious) lexical structure, as real free-form tags
// do.
func (d *Dataset) buildTaxonomy() error {
	var groups []lexicon.TopicGroup
	for t, tags := range d.topicTags {
		groups = append(groups, lexicon.TopicGroup{
			Name:   fmt.Sprintf("topic%02d", t),
			Domain: fmt.Sprintf("domain%d", t/4),
			Words:  tags,
		})
	}
	const miscGroups = 8
	misc := make([][]string, miscGroups)
	for i, tag := range d.noiseTags {
		misc[i%miscGroups] = append(misc[i%miscGroups], tag)
	}
	for i, words := range misc {
		if len(words) == 0 {
			continue
		}
		groups = append(groups, lexicon.TopicGroup{
			Name:   fmt.Sprintf("misc%d", i),
			Domain: "miscellany",
			Words:  words,
		})
	}
	tax, err := lexicon.Generate(groups)
	if err != nil {
		return err
	}
	d.Taxonomy = tax
	return nil
}

func (d *Dataset) buildCommunities(rng *rand.Rand) {
	cfg := d.Config
	d.topicUsers = make([][]string, cfg.NumTopics)
	extraBase := social.GroupID(cfg.NumTopics)
	for t := range d.topicUsers {
		users := make([]string, cfg.UsersPerTopic)
		for i := range users {
			name := fmt.Sprintf("u_t%02d_%02d", t, i)
			groups := []social.GroupID{social.GroupID(t)}
			if rng.Float64() < cfg.ExtraGroupProb {
				groups = append(groups, extraBase+social.GroupID(rng.Intn(10)))
			}
			d.Network.AddUser(name, groups)
			users[i] = name
		}
		d.topicUsers[t] = users
	}
}

// buildPalettes draws a global pool of block prototypes and gives each
// topic a palette sampled from it. Sharing the pool across topics is what
// creates the semantic gap: the same visual words appear under many topics,
// so the visual modality alone under-determines the topic, as low-level
// content features do for real photographs.
func (d *Dataset) buildPalettes(rng *rand.Rand) {
	cfg := d.Config
	pool := make([]vision.Descriptor, cfg.PrototypePool)
	for p := range pool {
		for c := range pool[p] {
			pool[p][c] = rng.Float64()
		}
	}
	d.pool = pool
	d.protos = make([][]vision.Descriptor, cfg.NumTopics)
	for t := range d.protos {
		ps := make([]vision.Descriptor, cfg.PrototypesPerTopic)
		for p := range ps {
			ps[p] = pool[rng.Intn(len(pool))]
		}
		d.protos[t] = ps
	}
}

// renderImage paints an image whose 16×16 blocks realise the given
// prototypes plus pixel noise, then the standard extraction pipeline
// recovers (noisy) descriptors from it — the full camera-to-feature path.
func (d *Dataset) renderImage(blocks []vision.Descriptor, rng *rand.Rand) *vision.Image {
	nb := d.Config.ImageBlocks
	im := vision.NewImage(nb*vision.BlockSize, nb*vision.BlockSize)
	noise := d.Config.VisualNoise
	for b, proto := range blocks {
		bx := (b % nb) * vision.BlockSize
		by := (b / nb) * vision.BlockSize
		for cy := 0; cy < 4; cy++ {
			for cx := 0; cx < 4; cx++ {
				mean := proto[cy*4+cx]
				for y := 0; y < 4; y++ {
					for x := 0; x < 4; x++ {
						im.Set(bx+cx*4+x, by+cy*4+y, mean+rng.NormFloat64()*noise)
					}
				}
			}
		}
	}
	return im
}

// sampleBlocks picks one prototype per image block: usually from the
// topic's palette, otherwise a topic-agnostic background block from the
// global pool.
func (d *Dataset) sampleBlocks(topic int, rng *rand.Rand) []vision.Descriptor {
	nb := d.Config.ImageBlocks * d.Config.ImageBlocks
	blocks := make([]vision.Descriptor, nb)
	palette := d.protos[topic]
	for i := range blocks {
		if rng.Float64() < d.Config.BackgroundBlockProb {
			blocks[i] = d.pool[rng.Intn(len(d.pool))]
		} else {
			blocks[i] = palette[rng.Intn(len(palette))]
		}
	}
	return blocks
}

func (d *Dataset) trainVisualVocabulary(rng *rand.Rand) error {
	cfg := d.Config
	var samples []vision.Descriptor
	for i := 0; i < cfg.VocabTrainImages; i++ {
		topic := rng.Intn(cfg.NumTopics)
		im := d.renderImage(d.sampleBlocks(topic, rng), rng)
		descs, err := vision.ExtractBlockDescriptors(im)
		if err != nil {
			return err
		}
		samples = append(samples, descs...)
	}
	voc, err := vision.TrainVocabularyWorkers(samples, cfg.VisualVocab, cfg.KMeansIters, rng, cfg.Workers)
	if err != nil {
		return err
	}
	d.Vocab = voc
	return nil
}

func (d *Dataset) populate(rng *rand.Rand) error {
	cfg := d.Config
	for i := 0; i < cfg.NumObjects; i++ {
		topic := rng.Intn(cfg.NumTopics)
		second := -1
		if rng.Float64() < cfg.SecondaryTopicProb {
			second = rng.Intn(cfg.NumTopics)
			if second == topic {
				second = -1
			}
		}
		month := rng.Intn(cfg.Months)
		feats, counts := d.sampleFeatures(topic, second, rng)
		o, err := d.Corpus.Add(feats, counts, month)
		if err != nil {
			return err
		}
		o.PrimaryTopic = topic
		o.Topics = []int{topic}
		if second >= 0 {
			o.Topics = append(o.Topics, second)
		}
	}
	return nil
}

// sampleFeatures draws one object's tags, users and visual words.
func (d *Dataset) sampleFeatures(topic, second int, rng *rand.Rand) ([]media.Feature, []int) {
	cfg := d.Config
	var feats []media.Feature
	var counts []int
	add := func(f media.Feature) {
		feats = append(feats, f)
		counts = append(counts, 1)
	}
	pickTopic := func() int {
		if second >= 0 && rng.Float64() < 0.3 {
			return second
		}
		return topic
	}
	// Tags.
	for n := 0; n < cfg.TagsPerObject; n++ {
		var tag string
		if rng.Float64() < cfg.NoiseTagProb {
			tag = d.noiseTags[rng.Intn(len(d.noiseTags))]
		} else {
			tt := d.topicTags[pickTopic()]
			tag = tt[rng.Intn(len(tt))]
		}
		add(media.Feature{Kind: media.Text, Name: tag})
	}
	// Users.
	for n := 0; n < cfg.UsersPerObject; n++ {
		var community []string
		if rng.Float64() < cfg.NoiseUserProb {
			community = d.topicUsers[rng.Intn(cfg.NumTopics)]
		} else {
			community = d.topicUsers[pickTopic()]
		}
		add(media.Feature{Kind: media.User, Name: community[rng.Intn(len(community))]})
	}
	// Visual words via the render→extract→quantize pipeline.
	blocks := d.sampleBlocks(topic, rng)
	if second >= 0 {
		// The secondary topic contributes roughly a third of the blocks.
		pal := d.protos[second]
		for b := range blocks {
			if rng.Float64() < 0.33 {
				blocks[b] = pal[rng.Intn(len(pal))]
			}
		}
	}
	im := d.renderImage(blocks, rng)
	descs, err := vision.ExtractBlockDescriptors(im)
	if err == nil {
		// The paper represents an image by "a group of visual words
		// contained in the image" — a set, so repeated blocks do not
		// inflate the visual mass of the object.
		seen := make(map[int]bool)
		for _, w := range d.Vocab.QuantizeAll(descs) {
			if seen[w] {
				continue
			}
			seen[w] = true
			add(media.Feature{Kind: media.Visual, Name: "vw" + strconv.Itoa(w)})
		}
	}
	return feats, counts
}

// buildFeatureMaps wires interned visual/user FIDs back to their substrate
// identities.
func (d *Dataset) buildFeatureMaps() {
	for fid := media.FID(0); int(fid) < d.Corpus.Dict.Len(); fid++ {
		f := d.Corpus.Dict.Feature(fid)
		switch f.Kind {
		case media.Visual:
			if w, err := strconv.Atoi(strings.TrimPrefix(f.Name, "vw")); err == nil {
				d.VisualWord[fid] = w
			}
		case media.Audio:
			if d.AudioWord == nil {
				d.AudioWord = make(map[media.FID]int)
			}
			if w, err := strconv.Atoi(strings.TrimPrefix(f.Name, "aw")); err == nil {
				d.AudioWord[fid] = w
			}
		case media.User:
			if uid, ok := d.Network.Lookup(f.Name); ok {
				d.UserOf[fid] = uid
			}
		}
	}
}

// Model wires the dataset's substrates into a correlation model, including
// the audio substrate for music corpora.
func (d *Dataset) Model() *corr.Model {
	stats := corr.NewStats(d.Corpus)
	m := corr.NewModel(stats, d.Taxonomy, d.Vocab, d.Network, d.VisualWord, d.UserOf)
	if d.AudioVocab != nil {
		m.SetAudio(d.AudioVocab, d.AudioWord)
	}
	return m
}

// Relevant reports whether two objects share their primary planted topic —
// the ground-truth relevance judgment standing in for the paper's human
// evaluators.
func Relevant(a, b *media.Object) bool {
	return a.PrimaryTopic >= 0 && a.PrimaryTopic == b.PrimaryTopic
}

// SampleQueries picks n distinct object IDs to use as query objects,
// mirroring the paper's "20 randomly selected images are used as query".
func (d *Dataset) SampleQueries(n int, rng *rand.Rand) []media.ObjectID {
	if n > d.Corpus.Len() {
		n = d.Corpus.Len()
	}
	perm := rng.Perm(d.Corpus.Len())
	out := make([]media.ObjectID, n)
	for i := 0; i < n; i++ {
		out[i] = media.ObjectID(perm[i])
	}
	return out
}

// Subset returns a new Dataset over the first n objects of d, sharing the
// taxonomy, visual vocabulary and user network but rebuilding the corpus
// (and with it document frequencies and feature maps). The Figure 8/9
// scalability experiments evaluate nested corpus prefixes this way, like
// the paper's 50K–236K splits of the same crawl.
func (d *Dataset) Subset(n int) (*Dataset, error) {
	if n < 1 || n > d.Corpus.Len() {
		return nil, fmt.Errorf("dataset: subset size %d out of [1, %d]", n, d.Corpus.Len())
	}
	sub := &Dataset{
		Config:     d.Config,
		Corpus:     media.NewCorpus(),
		Taxonomy:   d.Taxonomy,
		Vocab:      d.Vocab,
		Network:    d.Network,
		VisualWord: make(map[media.FID]int),
		UserOf:     make(map[media.FID]social.UserID),
		topicTags:  d.topicTags,
		topicUsers: d.topicUsers,
		protos:     d.protos,
		pool:       d.pool,
		noiseTags:  d.noiseTags,
	}
	sub.Config.NumObjects = n
	for i := 0; i < n; i++ {
		src := d.Corpus.Object(media.ObjectID(i))
		feats := make([]media.Feature, len(src.Feats))
		counts := make([]int, len(src.Feats))
		for j, fid := range src.Feats {
			feats[j] = d.Corpus.Dict.Feature(fid)
			counts[j] = int(src.Counts[j])
		}
		o, err := sub.Corpus.Add(feats, counts, src.Month)
		if err != nil {
			return nil, err
		}
		o.PrimaryTopic = src.PrimaryTopic
		o.Topics = append([]int(nil), src.Topics...)
	}
	sub.buildFeatureMaps()
	return sub, nil
}
