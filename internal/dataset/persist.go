package dataset

import (
	"encoding/gob"
	"fmt"
	"io"

	"figfusion/internal/media"
	"figfusion/internal/social"
	"figfusion/internal/vision"
)

// snapshot is the gob wire format of a Dataset. It stores the substrate
// definitions (tag vocabularies, user communities with group memberships,
// visual prototypes, the trained visual vocabulary) and every object's raw
// features, so Load can rebuild the dataset through the same public APIs
// that Generate uses.
type snapshot struct {
	Config     Config
	TopicTags  [][]string
	NoiseTags  []string
	TopicUsers [][]string
	UserGroups [][]social.GroupID // parallel to flattened TopicUsers order
	Protos     [][]vision.Descriptor
	Pool       []vision.Descriptor
	Centroids  []vision.Descriptor
	Objects    []objectSnapshot
}

type objectSnapshot struct {
	Feats        []media.Feature
	Counts       []uint16
	Month        int
	PrimaryTopic int
	Topics       []int
}

// Save writes the dataset to w in gob format.
func (d *Dataset) Save(w io.Writer) error {
	snap := snapshot{
		Config:     d.Config,
		TopicTags:  d.topicTags,
		NoiseTags:  d.noiseTags,
		TopicUsers: d.topicUsers,
		Protos:     d.protos,
		Pool:       d.pool,
		Centroids:  d.Vocab.Centroids,
	}
	for _, community := range d.topicUsers {
		for _, name := range community {
			id, ok := d.Network.Lookup(name)
			if !ok {
				return fmt.Errorf("dataset: user %q missing from network", name)
			}
			snap.UserGroups = append(snap.UserGroups, d.Network.Groups(id))
		}
	}
	for _, o := range d.Corpus.Objects {
		os := objectSnapshot{
			Counts:       append([]uint16(nil), o.Counts...),
			Month:        o.Month,
			PrimaryTopic: o.PrimaryTopic,
			Topics:       append([]int(nil), o.Topics...),
		}
		for _, fid := range o.Feats {
			os.Feats = append(os.Feats, d.Corpus.Dict.Feature(fid))
		}
		snap.Objects = append(snap.Objects, os)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	d := &Dataset{
		Config:     snap.Config,
		Corpus:     media.NewCorpus(),
		Network:    social.NewNetwork(),
		Vocab:      &vision.Vocabulary{Centroids: snap.Centroids},
		VisualWord: make(map[media.FID]int),
		UserOf:     make(map[media.FID]social.UserID),
		topicTags:  snap.TopicTags,
		topicUsers: snap.TopicUsers,
		protos:     snap.Protos,
		pool:       snap.Pool,
		noiseTags:  snap.NoiseTags,
	}
	if err := d.buildTaxonomy(); err != nil {
		return nil, err
	}
	i := 0
	for _, community := range snap.TopicUsers {
		for _, name := range community {
			if i >= len(snap.UserGroups) {
				return nil, fmt.Errorf("dataset: user groups truncated")
			}
			d.Network.AddUser(name, snap.UserGroups[i])
			i++
		}
	}
	for _, os := range snap.Objects {
		counts := make([]int, len(os.Counts))
		for j, c := range os.Counts {
			counts[j] = int(c)
		}
		o, err := d.Corpus.Add(os.Feats, counts, os.Month)
		if err != nil {
			return nil, err
		}
		o.PrimaryTopic = os.PrimaryTopic
		o.Topics = os.Topics
	}
	d.buildFeatureMaps()
	return d, nil
}
