package dataset

import (
	"bytes"
	"math/rand"
	"testing"

	"figfusion/internal/media"
)

// smallConfig keeps unit tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumObjects = 120
	cfg.NumTopics = 4
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	return cfg
}

func TestGenerateBasicShape(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Corpus.Len() != 120 {
		t.Errorf("corpus size = %d", d.Corpus.Len())
	}
	if d.Vocab.Size() != 12 {
		t.Errorf("visual vocab = %d", d.Vocab.Size())
	}
	if d.Network.Len() != 4*8 {
		t.Errorf("users = %d, want 32", d.Network.Len())
	}
	// Every object has all three modalities, a topic, and a valid month.
	for _, o := range d.Corpus.Objects {
		var kinds [media.NumKinds]int
		for _, fid := range o.Feats {
			kinds[d.Corpus.KindOf(fid)]++
		}
		if kinds[media.Text] == 0 || kinds[media.Visual] == 0 || kinds[media.User] == 0 {
			t.Fatalf("object %d missing a modality: %v", o.ID, kinds)
		}
		if o.PrimaryTopic < 0 || o.PrimaryTopic >= 4 {
			t.Fatalf("object %d topic = %d", o.ID, o.PrimaryTopic)
		}
		if o.Month < 0 || o.Month >= d.Config.Months {
			t.Fatalf("object %d month = %d", o.ID, o.Month)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Corpus.Dict.Len() != b.Corpus.Dict.Len() {
		t.Fatalf("dict sizes differ: %d vs %d", a.Corpus.Dict.Len(), b.Corpus.Dict.Len())
	}
	for i, oa := range a.Corpus.Objects {
		ob := b.Corpus.Objects[i]
		if oa.PrimaryTopic != ob.PrimaryTopic || oa.Month != ob.Month || oa.Len() != ob.Len() {
			t.Fatalf("object %d differs between runs", i)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Corpus.Objects {
		if a.Corpus.Objects[i].PrimaryTopic != b.Corpus.Objects[i].PrimaryTopic {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical topic assignments")
	}
}

func TestFeatureMapsResolve(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	visual, user := 0, 0
	for fid := media.FID(0); int(fid) < d.Corpus.Dict.Len(); fid++ {
		switch d.Corpus.Dict.Feature(fid).Kind {
		case media.Visual:
			w, ok := d.VisualWord[fid]
			if !ok {
				t.Fatalf("visual FID %d unmapped", fid)
			}
			if w < 0 || w >= d.Vocab.Size() {
				t.Fatalf("visual word %d out of range", w)
			}
			visual++
		case media.User:
			if _, ok := d.UserOf[fid]; !ok {
				t.Fatalf("user FID %d unmapped", fid)
			}
			user++
		}
	}
	if visual == 0 || user == 0 {
		t.Errorf("no visual (%d) or user (%d) features interned", visual, user)
	}
}

func TestTopicCoherence(t *testing.T) {
	// Same-topic objects must share more features than cross-topic
	// objects on average — the property all experiments rely on.
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sameSum, crossSum float64
	var sameN, crossN int
	objs := d.Corpus.Objects
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			ov := overlap(objs[i], objs[j])
			if objs[i].PrimaryTopic == objs[j].PrimaryTopic {
				sameSum += ov
				sameN++
			} else {
				crossSum += ov
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Skip("degenerate sample")
	}
	if sameSum/float64(sameN) <= crossSum/float64(crossN) {
		t.Errorf("same-topic overlap %v not above cross-topic %v",
			sameSum/float64(sameN), crossSum/float64(crossN))
	}
}

func overlap(a, b *media.Object) float64 {
	shared := 0
	for _, f := range a.Feats {
		if b.Has(f) {
			shared++
		}
	}
	return float64(shared)
}

func TestModelWiring(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := d.Model()
	if m.Stats.Corpus() != d.Corpus {
		t.Error("model not wired to corpus")
	}
	// Correlation between two tags of the same topic must beat two tags
	// of different topics (WUP via the generated taxonomy).
	t0a, ok1 := d.Corpus.Dict.Lookup(media.Feature{Kind: media.Text, Name: "topic00tag00"})
	t0b, ok2 := d.Corpus.Dict.Lookup(media.Feature{Kind: media.Text, Name: "topic00tag01"})
	t1a, ok3 := d.Corpus.Dict.Lookup(media.Feature{Kind: media.Text, Name: "topic01tag00"})
	if !ok1 || !ok2 || !ok3 {
		t.Skip("expected tags not present in this sample")
	}
	if m.Cor(t0a, t0b) <= m.Cor(t0a, t1a) {
		t.Errorf("intra-topic Cor %v not above cross-topic %v", m.Cor(t0a, t0b), m.Cor(t0a, t1a))
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumObjects = 0 },
		func(c *Config) { c.NumTopics = 1 },
		func(c *Config) { c.Months = 0 },
		func(c *Config) { c.TagsPerTopic = 0 },
		func(c *Config) { c.UsersPerObject = 0 },
		func(c *Config) { c.PrototypesPerTopic = 0 },
		func(c *Config) { c.VisualVocab = 1 },
		func(c *Config) { c.VocabTrainImages = 0 },
		func(c *Config) { c.NoiseTagProb = 1.5 },
		func(c *Config) { c.SecondaryTopicProb = -0.1 },
		func(c *Config) { c.VisualNoise = -1 },
	}
	for i, mutate := range cases {
		cfg := smallConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSampleQueries(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	qs := d.SampleQueries(10, rng)
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := make(map[media.ObjectID]bool)
	for _, q := range qs {
		if seen[q] {
			t.Error("duplicate query")
		}
		seen[q] = true
	}
	// Requesting more than |D| clamps.
	if got := d.SampleQueries(10_000, rng); len(got) != d.Corpus.Len() {
		t.Errorf("clamp failed: %d", len(got))
	}
}

func TestRelevant(t *testing.T) {
	a := &media.Object{PrimaryTopic: 2}
	b := &media.Object{PrimaryTopic: 2}
	c := &media.Object{PrimaryTopic: 3}
	u := &media.Object{PrimaryTopic: -1}
	if !Relevant(a, b) {
		t.Error("same topic should be relevant")
	}
	if Relevant(a, c) {
		t.Error("different topics should not be relevant")
	}
	if Relevant(u, u) {
		t.Error("unlabeled objects are never relevant")
	}
}

func TestGenerateRec(t *testing.T) {
	cfg := smallConfig()
	cfg.NumObjects = 400
	rc := DefaultRecConfig()
	rc.NumUsers = 10
	rc.MinHistory = 3
	rd, err := GenerateRec(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Profiles) == 0 {
		t.Fatal("no profiles")
	}
	if rd.Now != rc.TrainMonths {
		t.Errorf("Now = %d, want %d", rd.Now, rc.TrainMonths)
	}
	candSet := make(map[media.ObjectID]bool)
	for _, id := range rd.Candidates {
		candSet[id] = true
		if rd.Corpus.Object(id).Month < rc.TrainMonths {
			t.Fatal("candidate from training months")
		}
	}
	for _, p := range rd.Profiles {
		if len(p.History) < rc.MinHistory {
			t.Errorf("history too short: %d", len(p.History))
		}
		for _, id := range p.History {
			if rd.Corpus.Object(id).Month >= rc.TrainMonths {
				t.Error("history object from eval months")
			}
		}
		for id := range p.Future {
			if !candSet[id] {
				t.Error("future favourite outside candidate pool")
			}
		}
		// History objects match the user's interests.
		hist := rd.HistoryObjects(p)
		for _, o := range hist {
			ok := false
			for _, topic := range p.Interests {
				if o.PrimaryTopic == topic {
					ok = true
				}
			}
			if p.Transient >= 0 && o.PrimaryTopic == p.Transient {
				ok = true
			}
			if !ok {
				t.Errorf("history object topic %d not among interests", o.PrimaryTopic)
			}
		}
		// Transient interests end before the evaluation period.
		if p.Transient >= 0 && p.TransientEnd > rc.TrainMonths {
			t.Errorf("transient window leaks into eval months: end=%d", p.TransientEnd)
		}
	}
}

func TestGenerateRecValidate(t *testing.T) {
	cfg := smallConfig()
	bad := DefaultRecConfig()
	bad.TrainMonths = cfg.Months // must split
	if _, err := GenerateRec(cfg, bad); err == nil {
		t.Error("want error for non-splitting TrainMonths")
	}
	bad2 := DefaultRecConfig()
	bad2.PersistentTopics = cfg.NumTopics + 1
	if _, err := GenerateRec(cfg, bad2); err == nil {
		t.Error("want error for too many persistent topics")
	}
	bad3 := DefaultRecConfig()
	bad3.NumUsers = 0
	if _, err := GenerateRec(cfg, bad3); err == nil {
		t.Error("want error for zero users")
	}
}

func TestSubset(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := d.Subset(50)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Corpus.Len() != 50 {
		t.Fatalf("subset size = %d", sub.Corpus.Len())
	}
	// Objects preserved in order with labels.
	for i := 0; i < 50; i++ {
		a := d.Corpus.Object(media.ObjectID(i))
		b := sub.Corpus.Object(media.ObjectID(i))
		if a.PrimaryTopic != b.PrimaryTopic || a.Month != b.Month || a.Len() != b.Len() {
			t.Fatalf("object %d differs in subset", i)
		}
		if a.TotalCount() != b.TotalCount() {
			t.Fatalf("object %d counts differ", i)
		}
	}
	// Feature maps resolve in the new dictionary.
	for fid := media.FID(0); int(fid) < sub.Corpus.Dict.Len(); fid++ {
		switch sub.Corpus.Dict.Feature(fid).Kind {
		case media.Visual:
			if _, ok := sub.VisualWord[fid]; !ok {
				t.Fatalf("visual FID %d unmapped in subset", fid)
			}
		case media.User:
			if _, ok := sub.UserOf[fid]; !ok {
				t.Fatalf("user FID %d unmapped in subset", fid)
			}
		}
	}
	// Bounds checked.
	if _, err := d.Subset(0); err == nil {
		t.Error("want error for subset 0")
	}
	if _, err := d.Subset(d.Corpus.Len() + 1); err == nil {
		t.Error("want error for oversize subset")
	}
	// The subset can power a working model.
	m := sub.Model()
	if m.Stats.Corpus().Len() != 50 {
		t.Error("subset model corpus mismatch")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Corpus.Len() != d.Corpus.Len() {
		t.Fatalf("corpus size %d != %d", got.Corpus.Len(), d.Corpus.Len())
	}
	if got.Corpus.Dict.Len() != d.Corpus.Dict.Len() {
		t.Fatalf("dict size %d != %d", got.Corpus.Dict.Len(), d.Corpus.Dict.Len())
	}
	if got.Vocab.Size() != d.Vocab.Size() {
		t.Fatalf("vocab size %d != %d", got.Vocab.Size(), d.Vocab.Size())
	}
	if got.Network.Len() != d.Network.Len() {
		t.Fatalf("network size %d != %d", got.Network.Len(), d.Network.Len())
	}
	for i, oa := range d.Corpus.Objects {
		ob := got.Corpus.Objects[i]
		if oa.PrimaryTopic != ob.PrimaryTopic || oa.Month != ob.Month ||
			oa.Len() != ob.Len() || oa.TotalCount() != ob.TotalCount() {
			t.Fatalf("object %d differs after round trip", i)
		}
		for j, fid := range oa.Feats {
			fa := d.Corpus.Dict.Feature(fid)
			fb := got.Corpus.Dict.Feature(ob.Feats[j])
			if fa != fb {
				t.Fatalf("object %d feature %d: %v != %v", i, j, fa, fb)
			}
		}
	}
	// Substrates are functional: same WUP values, same user correlations.
	if a, _ := d.Taxonomy.WUP("topic00tag00", "topic00tag01"); a > 0 {
		b, _ := got.Taxonomy.WUP("topic00tag00", "topic00tag01")
		if a != b {
			t.Errorf("WUP differs after round trip: %v vs %v", a, b)
		}
	}
	// A loaded dataset powers a working model end to end.
	m := got.Model()
	if m.Stats.Corpus().Len() != got.Corpus.Len() {
		t.Error("loaded model corpus mismatch")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("want error for garbage input")
	}
}
