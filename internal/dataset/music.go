package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"figfusion/internal/audio"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
	"figfusion/internal/social"
)

// MusicConfig controls generation of a music corpus (the last.fm-style
// environment of the paper's extension claim): tracks carry tags, audio
// words and listeners, correlated within planted genres.
type MusicConfig struct {
	// Seed makes generation reproducible.
	Seed int64
	// NumTracks is |D|.
	NumTracks int
	// NumGenres is the number of planted genres.
	NumGenres int
	// Months spans the corpus timeline.
	Months int

	// TagsPerGenre / NoiseTags / TagsPerTrack / NoiseTagProb mirror the
	// photo generator's tag model.
	TagsPerGenre int
	NoiseTags    int
	TagsPerTrack int
	NoiseTagProb float64

	// ListenersPerGenre / ListenersPerTrack / NoiseListenerProb mirror
	// the user model ("scrobblers" instead of favouriters).
	ListenersPerGenre int
	ListenersPerTrack int
	NoiseListenerProb float64

	// ChordsPerGenre is each genre's audio palette size, drawn from a
	// global pool of ChordPool chords (shared chords = the audio
	// semantic gap).
	ChordsPerGenre int
	ChordPool      int
	// FramesPerTrack is the rendered clip length in analysis frames.
	FramesPerTrack int
	// AudioVocab is the audio-word codebook size.
	AudioVocab int
	// AudioNoise is the synthesis noise level.
	AudioNoise float64
	// VocabTrainTracks is the number of clips used to train the codebook.
	VocabTrainTracks int
	// KMeansIters bounds codebook training.
	KMeansIters int

	// SecondaryGenreProb is the probability a track blends two genres.
	SecondaryGenreProb float64

	// Workers bounds the fan-out of codebook training (0 = NumCPU).
	// Generation is deterministic at any worker count.
	Workers int
}

// DefaultMusicConfig returns a laptop-scale music corpus configuration.
func DefaultMusicConfig() MusicConfig {
	return MusicConfig{
		Seed:               1,
		NumTracks:          1000,
		NumGenres:          10,
		Months:             6,
		TagsPerGenre:       20,
		NoiseTags:          100,
		TagsPerTrack:       5,
		NoiseTagProb:       0.3,
		ListenersPerGenre:  30,
		ListenersPerTrack:  3,
		NoiseListenerProb:  0.3,
		ChordsPerGenre:     3,
		ChordPool:          12,
		FramesPerTrack:     4,
		AudioVocab:         24,
		AudioNoise:         0.1,
		VocabTrainTracks:   60,
		KMeansIters:        12,
		SecondaryGenreProb: 0.25,
	}
}

// Validate reports configuration errors.
func (c MusicConfig) Validate() error {
	switch {
	case c.NumTracks < 1:
		return fmt.Errorf("dataset: NumTracks = %d", c.NumTracks)
	case c.NumGenres < 2:
		return fmt.Errorf("dataset: NumGenres = %d, need ≥ 2", c.NumGenres)
	case c.Months < 1:
		return fmt.Errorf("dataset: Months = %d", c.Months)
	case c.TagsPerGenre < 1 || c.TagsPerTrack < 1:
		return fmt.Errorf("dataset: tag parameters must be positive")
	case c.ListenersPerGenre < 1 || c.ListenersPerTrack < 1:
		return fmt.Errorf("dataset: listener parameters must be positive")
	case c.ChordsPerGenre < 1 || c.ChordPool < 1 || c.FramesPerTrack < 1:
		return fmt.Errorf("dataset: audio parameters must be positive")
	case c.AudioVocab < 2 || c.VocabTrainTracks < 1:
		return fmt.Errorf("dataset: codebook parameters must be positive")
	case c.NoiseTagProb < 0 || c.NoiseTagProb > 1 ||
		c.NoiseListenerProb < 0 || c.NoiseListenerProb > 1 ||
		c.SecondaryGenreProb < 0 || c.SecondaryGenreProb > 1:
		return fmt.Errorf("dataset: probabilities must be in [0,1]")
	case c.AudioNoise < 0:
		return fmt.Errorf("dataset: AudioNoise = %v", c.AudioNoise)
	}
	return nil
}

// chord is one palette entry: a small set of sinusoid frequencies.
type chord []float64

// GenerateMusic builds a music dataset: tracks ⟨T, A, U⟩ with genre-planted
// correlation across tags, audio words and listeners. The returned Dataset
// carries an audio vocabulary instead of a visual one; its Model() wires
// the audio dispatch automatically.
func GenerateMusic(cfg MusicConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Corpus:     media.NewCorpus(),
		Network:    social.NewNetwork(),
		VisualWord: make(map[media.FID]int),
		UserOf:     make(map[media.FID]social.UserID),
		AudioWord:  make(map[media.FID]int),
	}
	// Genre tag vocabularies and taxonomy.
	genreTags := make([][]string, cfg.NumGenres)
	var groups []lexicon.TopicGroup
	for g := range genreTags {
		tags := make([]string, cfg.TagsPerGenre)
		for i := range tags {
			tags[i] = fmt.Sprintf("genre%02dtag%02d", g, i)
		}
		genreTags[g] = tags
		groups = append(groups, lexicon.TopicGroup{
			Name:   fmt.Sprintf("genre%02d", g),
			Domain: fmt.Sprintf("style%d", g/3),
			Words:  tags,
		})
	}
	noiseTags := make([]string, cfg.NoiseTags)
	for i := range noiseTags {
		noiseTags[i] = fmt.Sprintf("mnoise%03d", i)
	}
	if len(noiseTags) > 0 {
		groups = append(groups, lexicon.TopicGroup{Name: "miscmusic", Domain: "miscellany", Words: noiseTags})
	}
	tax, err := lexicon.Generate(groups)
	if err != nil {
		return nil, err
	}
	d.Taxonomy = tax
	// Listener communities.
	listeners := make([][]string, cfg.NumGenres)
	for g := range listeners {
		names := make([]string, cfg.ListenersPerGenre)
		for i := range names {
			name := fmt.Sprintf("l_g%02d_%02d", g, i)
			d.Network.AddUser(name, []social.GroupID{social.GroupID(g)})
			names[i] = name
		}
		listeners[g] = names
	}
	// Chord pool and genre palettes.
	// Roots log-spaced over ~150–2400 Hz, jittered, so chords spread the
	// audible band; each chord is root + fifth + octave.
	pool := make([]chord, cfg.ChordPool)
	for i := range pool {
		root := 150 * math.Pow(16, (float64(i)+rng.Float64())/float64(cfg.ChordPool))
		pool[i] = chord{root, root * 1.5, root * 2}
	}
	palettes := make([][]chord, cfg.NumGenres)
	for g := range palettes {
		p := make([]chord, cfg.ChordsPerGenre)
		for i := range p {
			p[i] = pool[rng.Intn(len(pool))]
		}
		palettes[g] = p
	}
	// Audio codebook from training clips.
	var samples []audio.Descriptor
	for i := 0; i < cfg.VocabTrainTracks; i++ {
		g := rng.Intn(cfg.NumGenres)
		descs, err := renderTrack(palettes[g], cfg, rng)
		if err != nil {
			return nil, err
		}
		samples = append(samples, descs...)
	}
	vocab, err := audio.TrainVocabularyWorkers(samples, cfg.AudioVocab, cfg.KMeansIters, rng, cfg.Workers)
	if err != nil {
		return nil, err
	}
	d.AudioVocab = vocab
	// Tracks.
	for i := 0; i < cfg.NumTracks; i++ {
		genre := rng.Intn(cfg.NumGenres)
		second := -1
		if rng.Float64() < cfg.SecondaryGenreProb {
			second = rng.Intn(cfg.NumGenres)
			if second == genre {
				second = -1
			}
		}
		var feats []media.Feature
		var counts []int
		add := func(f media.Feature) {
			feats = append(feats, f)
			counts = append(counts, 1)
		}
		pick := func() int {
			if second >= 0 && rng.Float64() < 0.3 {
				return second
			}
			return genre
		}
		for n := 0; n < cfg.TagsPerTrack; n++ {
			if len(noiseTags) > 0 && rng.Float64() < cfg.NoiseTagProb {
				add(media.Feature{Kind: media.Text, Name: noiseTags[rng.Intn(len(noiseTags))]})
			} else {
				tags := genreTags[pick()]
				add(media.Feature{Kind: media.Text, Name: tags[rng.Intn(len(tags))]})
			}
		}
		for n := 0; n < cfg.ListenersPerTrack; n++ {
			community := listeners[pick()]
			if rng.Float64() < cfg.NoiseListenerProb {
				community = listeners[rng.Intn(cfg.NumGenres)]
			}
			add(media.Feature{Kind: media.User, Name: community[rng.Intn(len(community))]})
		}
		descs, err := renderTrack(palettes[pick()], cfg, rng)
		if err != nil {
			return nil, err
		}
		seen := make(map[int]bool)
		for _, w := range vocab.QuantizeAll(descs) {
			if seen[w] {
				continue
			}
			seen[w] = true
			add(media.Feature{Kind: media.Audio, Name: "aw" + strconv.Itoa(w)})
		}
		o, err := d.Corpus.Add(feats, counts, rng.Intn(cfg.Months))
		if err != nil {
			return nil, err
		}
		o.PrimaryTopic = genre
		o.Topics = []int{genre}
		if second >= 0 {
			o.Topics = append(o.Topics, second)
		}
	}
	d.buildFeatureMaps()
	return d, nil
}

// renderTrack synthesizes one clip from a genre palette (one chord per
// frame-sized segment) and extracts its frame descriptors.
func renderTrack(palette []chord, cfg MusicConfig, rng *rand.Rand) ([]audio.Descriptor, error) {
	var wave []float64
	for f := 0; f < cfg.FramesPerTrack; f++ {
		c := palette[rng.Intn(len(palette))]
		wave = append(wave, audio.Synthesize(c, 1, cfg.AudioNoise, rng)...)
	}
	return audio.ExtractFrameDescriptors(wave)
}
