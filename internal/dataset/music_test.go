package dataset

import (
	"testing"

	"figfusion/internal/media"
)

func smallMusicConfig() MusicConfig {
	cfg := DefaultMusicConfig()
	cfg.NumTracks = 150
	cfg.NumGenres = 4
	cfg.TagsPerGenre = 8
	cfg.NoiseTags = 20
	cfg.ListenersPerGenre = 8
	cfg.AudioVocab = 10
	cfg.VocabTrainTracks = 20
	cfg.FramesPerTrack = 2
	cfg.KMeansIters = 8
	return cfg
}

func TestGenerateMusicShape(t *testing.T) {
	d, err := GenerateMusic(smallMusicConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Corpus.Len() != 150 {
		t.Fatalf("tracks = %d", d.Corpus.Len())
	}
	if d.AudioVocab == nil || d.AudioVocab.Size() != 10 {
		t.Fatal("audio vocabulary missing")
	}
	// Every track carries text, audio and user features; no visual.
	for _, o := range d.Corpus.Objects {
		var kinds [media.NumKinds]int
		for _, fid := range o.Feats {
			kinds[d.Corpus.KindOf(fid)]++
		}
		if kinds[media.Text] == 0 || kinds[media.Audio] == 0 || kinds[media.User] == 0 {
			t.Fatalf("track %d missing modality: %v", o.ID, kinds)
		}
		if kinds[media.Visual] != 0 {
			t.Fatalf("track %d has visual features", o.ID)
		}
		if o.PrimaryTopic < 0 || o.PrimaryTopic >= 4 {
			t.Fatalf("track %d genre = %d", o.ID, o.PrimaryTopic)
		}
	}
	// Audio feature map resolves.
	audioFeats := 0
	for fid := media.FID(0); int(fid) < d.Corpus.Dict.Len(); fid++ {
		if d.Corpus.KindOf(fid) == media.Audio {
			w, ok := d.AudioWord[fid]
			if !ok || w < 0 || w >= d.AudioVocab.Size() {
				t.Fatalf("audio FID %d unmapped", fid)
			}
			audioFeats++
		}
	}
	if audioFeats == 0 {
		t.Fatal("no audio features interned")
	}
}

func TestGenerateMusicDeterministic(t *testing.T) {
	cfg := smallMusicConfig()
	a, err := GenerateMusic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMusic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Corpus.Dict.Len() != b.Corpus.Dict.Len() {
		t.Fatal("dict sizes differ")
	}
	for i := range a.Corpus.Objects {
		if a.Corpus.Objects[i].PrimaryTopic != b.Corpus.Objects[i].PrimaryTopic {
			t.Fatal("genres differ between runs")
		}
	}
}

func TestGenerateMusicModelDispatch(t *testing.T) {
	d, err := GenerateMusic(smallMusicConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := d.Model()
	if m.AudioVocab == nil {
		t.Fatal("audio substrate not wired")
	}
	// Find two audio features and check Cor dispatches to word similarity.
	var a, b media.FID = -1, -1
	for fid := media.FID(0); int(fid) < d.Corpus.Dict.Len(); fid++ {
		if d.Corpus.KindOf(fid) == media.Audio {
			if a < 0 {
				a = fid
			} else {
				b = fid
				break
			}
		}
	}
	if b < 0 {
		t.Skip("fewer than two audio words in sample")
	}
	want := d.AudioVocab.WordSimilarity(d.AudioWord[a], d.AudioWord[b])
	if got := m.Cor(a, b); got != want {
		t.Errorf("audio Cor = %v, want word similarity %v", got, want)
	}
}

func TestMusicConfigValidate(t *testing.T) {
	if err := smallMusicConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []func(*MusicConfig){
		func(c *MusicConfig) { c.NumTracks = 0 },
		func(c *MusicConfig) { c.NumGenres = 1 },
		func(c *MusicConfig) { c.Months = 0 },
		func(c *MusicConfig) { c.TagsPerTrack = 0 },
		func(c *MusicConfig) { c.ListenersPerGenre = 0 },
		func(c *MusicConfig) { c.ChordPool = 0 },
		func(c *MusicConfig) { c.AudioVocab = 1 },
		func(c *MusicConfig) { c.NoiseTagProb = -0.1 },
		func(c *MusicConfig) { c.AudioNoise = -1 },
	}
	for i, mutate := range cases {
		cfg := smallMusicConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestMusicGenreCoherence(t *testing.T) {
	d, err := GenerateMusic(smallMusicConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sameSum, crossSum float64
	var sameN, crossN int
	objs := d.Corpus.Objects
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			ov := overlap(objs[i], objs[j])
			if objs[i].PrimaryTopic == objs[j].PrimaryTopic {
				sameSum += ov
				sameN++
			} else {
				crossSum += ov
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Skip("degenerate sample")
	}
	if sameSum/float64(sameN) <= crossSum/float64(crossN) {
		t.Errorf("same-genre overlap %v not above cross-genre %v",
			sameSum/float64(sameN), crossSum/float64(crossN))
	}
}

func TestGenerateRecFromMusic(t *testing.T) {
	cfg := smallMusicConfig()
	cfg.NumTracks = 400
	d, err := GenerateMusic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRecConfig()
	rc.NumUsers = 8
	rc.MinHistory = 3
	rd, err := GenerateRecFrom(d, cfg.NumGenres, cfg.Months, rc, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Profiles) == 0 {
		t.Fatal("no music profiles")
	}
	for _, p := range rd.Profiles {
		for _, id := range p.History {
			if rd.Corpus.Object(id).Month >= rc.TrainMonths {
				t.Fatal("history leaks into eval months")
			}
		}
	}
	// Validation paths.
	if _, err := GenerateRecFrom(d, 1, cfg.Months, rc, 1); err == nil {
		t.Error("want error for too few topics")
	}
	badRC := rc
	badRC.TrainMonths = cfg.Months
	if _, err := GenerateRecFrom(d, cfg.NumGenres, cfg.Months, badRC, 1); err == nil {
		t.Error("want error for non-splitting TrainMonths")
	}
}
