package corr

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"figfusion/internal/lexicon"
	"figfusion/internal/media"
	"figfusion/internal/social"
	"figfusion/internal/vision"
)

// buildTinyCorpus constructs a 4-object corpus with known co-occurrence:
//
//	o0: cat(2), dog(1), u1(1)
//	o1: cat(1), u1(1)
//	o2: dog(2), u2(1)
//	o3: car(1), u2(1)
func buildTinyCorpus(t testing.TB) (*media.Corpus, map[string]media.FID) {
	t.Helper()
	c := media.NewCorpus()
	add := func(feats []media.Feature, counts []int) {
		t.Helper()
		if _, err := c.Add(feats, counts, 0); err != nil {
			t.Fatal(err)
		}
	}
	tf := func(n string) media.Feature { return media.Feature{Kind: media.Text, Name: n} }
	uf := func(n string) media.Feature { return media.Feature{Kind: media.User, Name: n} }
	add([]media.Feature{tf("cat"), tf("dog"), uf("u1")}, []int{2, 1, 1})
	add([]media.Feature{tf("cat"), uf("u1")}, []int{1, 1})
	add([]media.Feature{tf("dog"), uf("u2")}, []int{2, 1})
	add([]media.Feature{tf("car"), uf("u2")}, []int{1, 1})
	ids := make(map[string]media.FID)
	for _, name := range []string{"cat", "dog", "car"} {
		id, ok := c.Dict.Lookup(tf(name))
		if !ok {
			t.Fatalf("missing %s", name)
		}
		ids[name] = id
	}
	for _, name := range []string{"u1", "u2"} {
		id, ok := c.Dict.Lookup(uf(name))
		if !ok {
			t.Fatalf("missing %s", name)
		}
		ids[name] = id
	}
	return c, ids
}

func TestStatsMoments(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	cat := ids["cat"]
	// cat counts: [2,1,0,0] → Σ=3, Σ²=5, mean=0.75, var=5/4−0.5625=0.6875
	if got := s.Mean(cat); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Mean = %v, want 0.75", got)
	}
	if got := s.Variance(cat); math.Abs(got-0.6875) > 1e-12 {
		t.Errorf("Variance = %v, want 0.6875", got)
	}
	if got := s.Norm(cat); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Errorf("Norm = %v, want sqrt(5)", got)
	}
	if got := len(s.Postings(cat)); got != 2 {
		t.Errorf("Postings len = %d, want 2", got)
	}
	if got := s.Postings(media.FID(999)); got != nil {
		t.Errorf("Postings of unknown FID = %v, want nil", got)
	}
}

func TestStatsDotAndCosine(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	cat, dog, car, u1 := ids["cat"], ids["dog"], ids["car"], ids["u1"]
	// cat·dog: only o0 → 2*1 = 2.
	if got := s.Dot(cat, dog); got != 2 {
		t.Errorf("Dot(cat,dog) = %v, want 2", got)
	}
	// cosine = 2 / (sqrt(5)*sqrt(5)) = 0.4 (dog: [1,0,2,0] → Σ²=5)
	if got := s.Cosine(cat, dog); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Cosine(cat,dog) = %v, want 0.4", got)
	}
	// cat and car never co-occur.
	if got := s.Cosine(cat, car); got != 0 {
		t.Errorf("Cosine(cat,car) = %v, want 0", got)
	}
	// cat·u1 = 2*1 + 1*1 = 3 → cosine = 3/(sqrt(5)*sqrt(2))
	want := 3 / (math.Sqrt(5) * math.Sqrt(2))
	if got := s.Cosine(cat, u1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cosine(cat,u1) = %v, want %v", got, want)
	}
	// Symmetry.
	if s.Cosine(cat, dog) != s.Cosine(dog, cat) {
		t.Error("Cosine not symmetric")
	}
}

func TestCorSPair(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	cat, dog := ids["cat"], ids["dog"]
	// Manual CorS for cat=[2,1,0,0], dog=[1,0,2,0]:
	// means .75/.75; var cat 0.6875; dog: Σ=3, Σ²=5 → same.
	sd := math.Sqrt(0.6875)
	want := 0.0
	catV := []float64{2, 1, 0, 0}
	dogV := []float64{1, 0, 2, 0}
	for i := range catV {
		want += (catV[i] - 0.75) / sd * (dogV[i] - 0.75) / sd
	}
	if got := s.CorS([]media.FID{cat, dog}); math.Abs(got-want) > 1e-9 {
		t.Errorf("CorS = %v, want %v", got, want)
	}
}

func TestCorSTriple(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	fids := []media.FID{ids["cat"], ids["dog"], ids["u1"]}
	// Brute-force reference over all objects.
	want := bruteCorS(s, fids)
	if got := s.CorS(fids); math.Abs(got-want) > 1e-9 {
		t.Errorf("CorS = %v, want %v", got, want)
	}
}

// bruteCorS computes Eq. 8 by the definition, iterating every object.
func bruteCorS(s *Stats, fids []media.FID) float64 {
	corpus := s.Corpus()
	var sum float64
	for _, o := range corpus.Objects {
		term := 1.0
		for _, fid := range fids {
			term *= (float64(o.Count(fid)) - s.Mean(fid)) / math.Sqrt(s.Variance(fid))
		}
		sum += term
	}
	return sum
}

func TestCorSMatchesBruteForceProperty(t *testing.T) {
	// Random corpora: union+correction must equal the full-scan definition.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := media.NewCorpus()
		nObj := 3 + rng.Intn(10)
		vocab := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < nObj; i++ {
			var feats []media.Feature
			var counts []int
			for _, w := range vocab {
				if rng.Float64() < 0.5 {
					feats = append(feats, media.Feature{Kind: media.Text, Name: w})
					counts = append(counts, 1+rng.Intn(3))
				}
			}
			if len(feats) == 0 {
				feats = append(feats, media.Feature{Kind: media.Text, Name: "a"})
				counts = append(counts, 1)
			}
			if _, err := c.Add(feats, counts, 0); err != nil {
				return false
			}
		}
		s := NewStats(c)
		var fids []media.FID
		for _, w := range vocab {
			if id, ok := c.Dict.Lookup(media.Feature{Kind: media.Text, Name: w}); ok {
				fids = append(fids, id)
			}
		}
		if len(fids) < 2 {
			return true
		}
		k := 2 + rng.Intn(3)
		if k > len(fids) {
			k = len(fids)
		}
		pick := fids[:k]
		got := s.CorS(pick)
		want := bruteCorS(s, pick)
		if math.IsNaN(want) || math.IsInf(want, 0) {
			return true // constant feature; CorS returns 0 by contract
		}
		return math.Abs(got-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCorSSingletonAndDegenerate(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	if got := s.CorS([]media.FID{ids["cat"]}); got != 1 {
		t.Errorf("singleton CorS = %v, want 1", got)
	}
	if got := s.CorS(nil); got != 1 {
		t.Errorf("empty CorS = %v, want 1", got)
	}
	// A feature present in every object with the same count has zero
	// variance → CorS 0.
	c2 := media.NewCorpus()
	for i := 0; i < 3; i++ {
		if _, err := c2.Add([]media.Feature{{Kind: media.Text, Name: "const"}, {Kind: media.Text, Name: "x"}},
			[]int{1, 1 + i%2}, 0); err != nil {
			t.Fatal(err)
		}
	}
	s2 := NewStats(c2)
	cf, _ := c2.Dict.Lookup(media.Feature{Kind: media.Text, Name: "const"})
	xf, _ := c2.Dict.Lookup(media.Feature{Kind: media.Text, Name: "x"})
	if got := s2.CorS([]media.FID{cf, xf}); got != 0 {
		t.Errorf("CorS with constant feature = %v, want 0", got)
	}
}

func buildModel(t testing.TB) (*Model, map[string]media.FID) {
	t.Helper()
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	tax, err := lexicon.Generate([]lexicon.TopicGroup{
		{Name: "animal", Domain: "living", Words: []string{"cat", "dog"}},
		{Name: "vehicle", Domain: "artifact", Words: []string{"car"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := social.NewNetwork()
	u1 := net.AddUser("u1", []social.GroupID{1})
	u2 := net.AddUser("u2", []social.GroupID{2})
	userOf := map[media.FID]social.UserID{ids["u1"]: u1, ids["u2"]: u2}
	m := NewModel(s, tax, nil, net, nil, userOf)
	return m, ids
}

func TestModelCorDispatch(t *testing.T) {
	m, ids := buildModel(t)
	// Text×Text uses WUP: cat/dog share "animal" → 0.75.
	if got := m.Cor(ids["cat"], ids["dog"]); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Cor(cat,dog) = %v, want WUP 0.75", got)
	}
	// cat vs car meet at root → 0.25 by WUP, NOT cosine 0.
	if got := m.Cor(ids["cat"], ids["car"]); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Cor(cat,car) = %v, want WUP 0.25", got)
	}
	// User×User uses group similarity: disjoint groups → 0.
	if got := m.Cor(ids["u1"], ids["u2"]); got != 0 {
		t.Errorf("Cor(u1,u2) = %v, want 0", got)
	}
	// Inter-type falls back to cosine.
	want := 3 / (math.Sqrt(5) * math.Sqrt(2))
	if got := m.Cor(ids["cat"], ids["u1"]); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cor(cat,u1) = %v, want cosine %v", got, want)
	}
	// Identity.
	if got := m.Cor(ids["cat"], ids["cat"]); got != 1 {
		t.Errorf("Cor(x,x) = %v, want 1", got)
	}
}

func TestModelCorrelated(t *testing.T) {
	m, ids := buildModel(t)
	// Default text threshold 0.6: cat-dog (0.75) edge, cat-car (0.25) no.
	if !m.Correlated(ids["cat"], ids["dog"]) {
		t.Error("cat-dog should be correlated")
	}
	if m.Correlated(ids["cat"], ids["car"]) {
		t.Error("cat-car should not be correlated")
	}
	if m.Correlated(ids["cat"], ids["cat"]) {
		t.Error("no self loops")
	}
}

func TestModelVisualDispatch(t *testing.T) {
	c := media.NewCorpus()
	v0 := media.Feature{Kind: media.Visual, Name: "vw0"}
	v1 := media.Feature{Kind: media.Visual, Name: "vw1"}
	if _, err := c.Add([]media.Feature{v0, v1}, []int{1, 1}, 0); err != nil {
		t.Fatal(err)
	}
	s := NewStats(c)
	var c0, c1 vision.Descriptor
	c1[0] = 3 // distance 3 → similarity 0.25
	voc := &vision.Vocabulary{Centroids: []vision.Descriptor{c0, c1}}
	f0, _ := c.Dict.Lookup(v0)
	f1, _ := c.Dict.Lookup(v1)
	m := NewModel(s, nil, voc, nil, map[media.FID]int{f0: 0, f1: 1}, nil)
	if got := m.Cor(f0, f1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("visual Cor = %v, want 0.25", got)
	}
}

func TestModelFallsBackToCosineWithoutSubstrates(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	m := NewModel(s, nil, nil, nil, nil, nil)
	// Without a taxonomy, text×text uses cosine: cat-dog co-occur once.
	if got := m.Cor(ids["cat"], ids["dog"]); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Cor = %v, want cosine 0.4", got)
	}
}

func TestModelCosineCache(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	m := NewModel(NewStats(c), nil, nil, nil, nil, nil)
	a := m.Cor(ids["cat"], ids["u1"])
	b := m.Cor(ids["u1"], ids["cat"]) // must hit the symmetric cache entry
	if a != b {
		t.Errorf("cached cosine asymmetric: %v vs %v", a, b)
	}
	if n := m.cache.Len(); n != 1 {
		t.Errorf("cache size = %d, want 1", n)
	}
}

func TestTrainThresholds(t *testing.T) {
	m, _ := buildModel(t)
	rng := rand.New(rand.NewSource(42))
	before := m.Thresholds
	m.TrainThresholds(100, 0.5, rng)
	// Text threshold must have moved to a sampled WUP value.
	if m.Thresholds[media.Text][media.Text] == before[media.Text][media.Text] &&
		m.Thresholds[media.Text][media.User] == before[media.Text][media.User] {
		t.Error("training did not update any threshold")
	}
	// Thresholds stay within the similarity range.
	for a := 0; a < media.NumKinds; a++ {
		for b := 0; b < media.NumKinds; b++ {
			if th := m.Thresholds[a][b]; th < 0 || th > 1 {
				t.Errorf("threshold[%d][%d] = %v out of range", a, b, th)
			}
		}
	}
}

func TestTrainThresholdsNoSamplesKeepsDefaults(t *testing.T) {
	c := media.NewCorpus()
	m := NewModel(NewStats(c), nil, nil, nil, nil, nil)
	want := m.Thresholds
	m.TrainThresholds(10, 0.5, rand.New(rand.NewSource(1)))
	if m.Thresholds != want {
		t.Error("thresholds changed on empty corpus")
	}
}

func BenchmarkCosine(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	c := media.NewCorpus()
	vocab := make([]media.Feature, 50)
	for i := range vocab {
		vocab[i] = media.Feature{Kind: media.Text, Name: string(rune('a'+i%26)) + string(rune('a'+i/26))}
	}
	for i := 0; i < 2000; i++ {
		var feats []media.Feature
		var counts []int
		for _, f := range vocab {
			if rng.Float64() < 0.2 {
				feats = append(feats, f)
				counts = append(counts, 1)
			}
		}
		if len(feats) == 0 {
			continue
		}
		if _, err := c.Add(feats, counts, 0); err != nil {
			b.Fatal(err)
		}
	}
	s := NewStats(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cosine(media.FID(i%50), media.FID((i+13)%50))
	}
}

func BenchmarkCorS3(b *testing.B) {
	c, ids := buildTinyCorpus(b)
	s := NewStats(c)
	fids := []media.FID{ids["cat"], ids["dog"], ids["u1"]}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.CorS(fids)
	}
}

func TestTrainThresholdsSymmetric(t *testing.T) {
	m, _ := buildModel(t)
	m.TrainThresholds(200, 0.4, rand.New(rand.NewSource(6)))
	for a := 0; a < media.NumKinds; a++ {
		for b := 0; b < media.NumKinds; b++ {
			if m.Thresholds[a][b] != m.Thresholds[b][a] {
				t.Errorf("thresholds asymmetric at (%d,%d): %v vs %v",
					a, b, m.Thresholds[a][b], m.Thresholds[b][a])
			}
		}
	}
}

func TestCorrelatedSymmetric(t *testing.T) {
	m, ids := buildModel(t)
	names := []string{"cat", "dog", "car", "u1", "u2"}
	for _, a := range names {
		for _, b := range names {
			if m.Correlated(ids[a], ids[b]) != m.Correlated(ids[b], ids[a]) {
				t.Errorf("Correlated(%s,%s) asymmetric", a, b)
			}
		}
	}
}

func TestStatsAppendMatchesRebuild(t *testing.T) {
	// Property: a corpus built incrementally via Append has statistics
	// identical to one scanned from scratch.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := media.NewCorpus()
		s := NewStats(c) // empty
		vocab := []string{"a", "b", "c", "d"}
		for i := 0; i < 8; i++ {
			var feats []media.Feature
			var counts []int
			for _, w := range vocab {
				if rng.Float64() < 0.6 {
					feats = append(feats, media.Feature{Kind: media.Text, Name: w})
					counts = append(counts, 1+rng.Intn(3))
				}
			}
			if len(feats) == 0 {
				feats = append(feats, media.Feature{Kind: media.Text, Name: "a"})
				counts = append(counts, 1)
			}
			o, err := c.Add(feats, counts, 0)
			if err != nil {
				return false
			}
			if err := s.Append(o); err != nil {
				return false
			}
		}
		fresh := NewStats(c)
		for fid := media.FID(0); int(fid) < c.Dict.Len(); fid++ {
			if math.Abs(s.Mean(fid)-fresh.Mean(fid)) > 1e-12 ||
				math.Abs(s.Variance(fid)-fresh.Variance(fid)) > 1e-12 ||
				math.Abs(s.Norm(fid)-fresh.Norm(fid)) > 1e-12 {
				return false
			}
			a := s.Postings(fid)
			b := fresh.Postings(fid)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsAppendValidation(t *testing.T) {
	c, _ := buildTinyCorpus(t)
	s := NewStats(c)
	// An object not in the corpus is rejected.
	foreign := media.NewObject(99, nil, 0)
	if err := s.Append(foreign); err == nil {
		t.Error("want error for foreign object")
	}
	// Re-appending an accounted object breaks posting order.
	if err := s.Append(c.Object(0)); err == nil {
		t.Error("want error for out-of-order append")
	}
}

func TestTableStats(t *testing.T) {
	m, _ := buildModel(t)
	rng := rand.New(rand.NewSource(9))
	m.TrainThresholds(100, 0.4, rng)
	stats := m.TableStats(100, rng)
	if len(stats) == 0 {
		t.Fatal("no table stats")
	}
	seen := make(map[[2]media.Kind]bool)
	for _, st := range stats {
		if st.KindA > st.KindB {
			t.Errorf("unordered pair %v×%v", st.KindA, st.KindB)
		}
		key := [2]media.Kind{st.KindA, st.KindB}
		if seen[key] {
			t.Errorf("duplicate table %v", key)
		}
		seen[key] = true
		if st.Samples <= 0 {
			t.Errorf("%v×%v: no samples", st.KindA, st.KindB)
		}
		if st.Mean < 0 || st.Mean > 1 || st.Max < st.Mean {
			t.Errorf("%v×%v: mean %v max %v inconsistent", st.KindA, st.KindB, st.Mean, st.Max)
		}
		if st.EdgeRate < 0 || st.EdgeRate > 1 {
			t.Errorf("%v×%v: edge rate %v", st.KindA, st.KindB, st.EdgeRate)
		}
	}
	// The tiny corpus has text pairs and text–user pairs within objects
	// (never two users in one object, so no U×U samples).
	for _, want := range [][2]media.Kind{
		{media.Text, media.Text}, {media.Text, media.User},
	} {
		if !seen[want] {
			t.Errorf("table %v×%v missing", want[0], want[1])
		}
	}
	if seen[[2]media.Kind{media.User, media.User}] {
		t.Error("U×U table should be empty for single-user objects")
	}
	// Formatting includes every table row.
	out := FormatTableStats(stats)
	for _, st := range stats {
		label := st.KindA.String() + "×" + st.KindB.String()
		if !strings.Contains(out, label) {
			t.Errorf("format missing %q:\n%s", label, out)
		}
	}
}

func TestTableStatsEmptyCorpus(t *testing.T) {
	m := NewModel(NewStats(media.NewCorpus()), nil, nil, nil, nil, nil)
	if got := m.TableStats(50, rand.New(rand.NewSource(1))); len(got) != 0 {
		t.Errorf("empty corpus stats = %v", got)
	}
}
