package corr

import (
	"math"
	"testing"

	"figfusion/internal/media"
)

// TestCliqueWeight pins the Eq. 9 importance weight served by both the
// scorer and the inverted index: 0 for the empty set, standardized
// dispersion sd/mean for singletons, and CorS normalized by |D| (clamped
// non-negative) for larger cliques.
func TestCliqueWeight(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	if got := s.CliqueWeight(nil); got != 0 {
		t.Errorf("empty CliqueWeight = %v, want 0", got)
	}
	// cat counts are [2,1,0,0]: mean 0.75, variance 0.6875.
	want := math.Sqrt(0.6875) / 0.75
	if got := s.CliqueWeight([]media.FID{ids["cat"]}); math.Abs(got-want) > 1e-12 {
		t.Errorf("singleton CliqueWeight = %v, want %v", got, want)
	}
	pair := []media.FID{ids["cat"], ids["dog"]}
	raw := s.CorS(pair) / float64(c.Len())
	if raw < 0 {
		raw = 0
	}
	if got := s.CliqueWeight(pair); got != raw {
		t.Errorf("pair CliqueWeight = %v, want CorS/|D| = %v", got, raw)
	}
	// cat and car never co-occur and are anti-correlated; the clamp must
	// map the negative CorS to 0 rather than a score-negating weight.
	anti := []media.FID{ids["cat"], ids["car"]}
	if s.CorS(anti) >= 0 {
		t.Fatalf("fixture drift: CorS(cat,car) = %v, want negative", s.CorS(anti))
	}
	if got := s.CliqueWeight(anti); got != 0 {
		t.Errorf("anti-correlated CliqueWeight = %v, want 0", got)
	}
}

// TestCliqueWeightZeroMeanSingleton covers the mean = 0 guard: a feature
// can enter the dictionary without corpus mass (e.g. vocabulary padding);
// its weight must be 0, not NaN.
func TestCliqueWeightZeroMeanSingleton(t *testing.T) {
	c, _ := buildTinyCorpus(t)
	s := NewStats(c)
	ghost := media.FID(c.Dict.Len() + 5)
	if got := s.CliqueWeight([]media.FID{ghost}); got != 0 {
		t.Errorf("zero-mean singleton CliqueWeight = %v, want 0", got)
	}
}
