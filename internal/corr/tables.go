package corr

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"figfusion/internal/media"
)

// PairTableStats summarises one of the six pair-wise feature correlation
// tables of Section 3.5 (T×T, V×V, U×U, T×V, T×U, V×U — plus the audio
// pairs when that modality is present): the distribution of correlations
// among co-occurring feature pairs and the fraction admitted as FIG edges
// by the trained threshold.
type PairTableStats struct {
	KindA, KindB media.Kind
	// Samples is the number of co-occurring pairs sampled.
	Samples int
	// Mean and Max of the sampled correlations.
	Mean, Max float64
	// Threshold is the trained edge threshold for this kind pair.
	Threshold float64
	// EdgeRate is the fraction of sampled pairs above the threshold.
	EdgeRate float64
}

// TableStats samples feature pairs co-occurring within objects and
// summarises every kind-pair correlation table. It is the introspection
// companion to TrainThresholds, using the same sampling scheme.
func (m *Model) TableStats(sampleObjects int, rng *rand.Rand) []PairTableStats {
	corpus := m.Stats.Corpus()
	type bucket struct {
		values []float64
	}
	var buckets [media.NumKinds][media.NumKinds]bucket
	if corpus.Len() > 0 && sampleObjects > 0 {
		for s := 0; s < sampleObjects; s++ {
			o := corpus.Object(media.ObjectID(rng.Intn(corpus.Len())))
			const maxPairsPerObject = 200
			pairs := 0
			for i := 0; i < len(o.Feats) && pairs < maxPairsPerObject; i++ {
				for j := i + 1; j < len(o.Feats) && pairs < maxPairsPerObject; j++ {
					a, b := o.Feats[i], o.Feats[j]
					ka, kb := corpus.KindOf(a), corpus.KindOf(b)
					if ka > kb {
						ka, kb = kb, ka
					}
					buckets[ka][kb].values = append(buckets[ka][kb].values, m.Cor(a, b))
					pairs++
				}
			}
		}
	}
	var out []PairTableStats
	for a := 0; a < media.NumKinds; a++ {
		for b := a; b < media.NumKinds; b++ {
			vals := buckets[a][b].values
			if len(vals) == 0 {
				continue
			}
			st := PairTableStats{
				KindA:     media.Kind(a),
				KindB:     media.Kind(b),
				Samples:   len(vals),
				Threshold: m.Thresholds[a][b],
			}
			for _, v := range vals {
				st.Mean += v
				if v > st.Max {
					st.Max = v
				}
				if v > st.Threshold {
					st.EdgeRate++
				}
			}
			st.Mean /= float64(len(vals))
			st.EdgeRate /= float64(len(vals))
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].KindA != out[j].KindA {
			return out[i].KindA < out[j].KindA
		}
		return out[i].KindB < out[j].KindB
	})
	return out
}

// FormatTableStats renders the table summaries as aligned text.
func FormatTableStats(stats []PairTableStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %8s %8s %10s %9s\n",
		"table", "pairs", "mean", "max", "threshold", "edgeRate")
	for _, st := range stats {
		fmt.Fprintf(&b, "%-16s %8d %8.4f %8.4f %10.4f %9.4f\n",
			st.KindA.String()+"×"+st.KindB.String(),
			st.Samples, st.Mean, st.Max, st.Threshold, st.EdgeRate)
	}
	return b.String()
}
