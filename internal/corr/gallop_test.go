package corr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"figfusion/internal/media"
	"figfusion/internal/numeric"
)

// linearDot is the reference intersection: the plain two-cursor merge the
// galloping path must reproduce term by term. Implemented against the same
// postings/counts the production Dot reads, with the same short-list-first
// orientation, so the floating-point sum order is identical by construction.
func linearDot(s *Stats, a, b media.FID) float64 {
	pa, pb := s.Postings(a), s.Postings(b)
	if len(pa) > len(pb) {
		pa, pb = pb, pa
		a, b = b, a
	}
	ca, cb := s.counts(a), s.counts(b)
	var dot float64
	j := 0
	for i, oid := range pa {
		for j < len(pb) && pb[j] < oid {
			j++
		}
		if j < len(pb) && pb[j] == oid {
			dot += float64(ca[i]) * float64(cb[j])
		}
	}
	return dot
}

// skewedCorpus builds a corpus whose posting lists force the galloping
// branch: "common" occurs in all n objects, "rare" in every strideth one, so
// the length ratio is the stride.
func skewedCorpus(t testing.TB, n, stride int, rng *rand.Rand) (*media.Corpus, media.FID, media.FID) {
	t.Helper()
	c := media.NewCorpus()
	common := media.Feature{Kind: media.Text, Name: "common"}
	rare := media.Feature{Kind: media.Text, Name: "rare"}
	for i := 0; i < n; i++ {
		feats := []media.Feature{common}
		counts := []int{1 + rng.Intn(4)}
		if i%stride == 0 {
			feats = append(feats, rare)
			counts = append(counts, 1+rng.Intn(4))
		}
		if _, err := c.Add(feats, counts, 0); err != nil {
			t.Fatal(err)
		}
	}
	cf, _ := c.Dict.Lookup(common)
	rf, _ := c.Dict.Lookup(rare)
	return c, cf, rf
}

// TestDotGallopsOnSkewedLists exercises the galloping branch directly: with
// a length skew far beyond gallopSkew the result must equal the linear
// merge's bit for bit (identical matches in identical order) and the
// brute-force per-object sum.
func TestDotGallopsOnSkewedLists(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, stride := range []int{gallopSkew + 1, 50, 250} {
		c, cf, rf := skewedCorpus(t, 2000, stride, rng)
		s := NewStats(c)
		if long, short := len(s.Postings(cf)), len(s.Postings(rf)); long <= gallopSkew*short {
			t.Fatalf("stride %d: skew %d/%d does not engage galloping (need > %d×)", stride, long, short, gallopSkew)
		}
		want := linearDot(s, cf, rf)
		var brute float64
		for _, o := range c.Objects {
			brute += float64(o.Count(cf)) * float64(o.Count(rf))
		}
		if got := s.Dot(cf, rf); got != want || got != brute {
			t.Errorf("stride %d: Dot = %v, linear merge %v, brute force %v", stride, got, want, brute)
		}
		// Symmetry: orientation swap must not change the result.
		if s.Dot(cf, rf) != s.Dot(rf, cf) {
			t.Errorf("stride %d: Dot not symmetric", stride)
		}
	}
}

// TestDotMatchesLinearMergeProperty covers the whole skew spectrum with
// random corpora: whatever branch Dot takes, it must agree exactly with the
// linear merge (all counts are small integers, so both sums are exact).
func TestDotMatchesLinearMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := media.NewCorpus()
		n := 20 + rng.Intn(300)
		pa := 0.02 + rng.Float64()*0.9 // occurrence probabilities with wild skew
		pb := 0.02 + rng.Float64()*0.9
		fa := media.Feature{Kind: media.Text, Name: "a"}
		fb := media.Feature{Kind: media.Text, Name: "b"}
		for i := 0; i < n; i++ {
			var feats []media.Feature
			var counts []int
			if rng.Float64() < pa {
				feats = append(feats, fa)
				counts = append(counts, 1+rng.Intn(5))
			}
			if rng.Float64() < pb {
				feats = append(feats, fb)
				counts = append(counts, 1+rng.Intn(5))
			}
			if len(feats) == 0 {
				feats = append(feats, media.Feature{Kind: media.Text, Name: "pad"})
				counts = append(counts, 1)
			}
			if _, err := c.Add(feats, counts, 0); err != nil {
				return false
			}
		}
		ida, oka := c.Dict.Lookup(fa)
		idb, okb := c.Dict.Lookup(fb)
		if !oka || !okb {
			return true
		}
		s := NewStats(c)
		return s.Dot(ida, idb) == linearDot(s, ida, idb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGallopToProperty pins gallopTo against the linear scan it replaces on
// random sorted lists: the landing index must be the first position ≥ from
// whose element is ≥ target.
func TestGallopToProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		list := make([]media.ObjectID, n)
		v := 0
		for i := range list {
			v += 1 + rng.Intn(5)
			list[i] = media.ObjectID(v)
		}
		from := 0
		if n > 0 {
			from = rng.Intn(n + 1)
		}
		target := media.ObjectID(rng.Intn(v + 10))
		want := from
		for want < len(list) && list[want] < target {
			want++
		}
		return gallopTo(list, from, target) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// unionCorS is the pre-streaming reference: materialise the sorted union of
// the clique's posting lists, then walk it accumulating the standardized
// products in the same per-object, fids-ordered sequence CorSWith streams.
// The cursor merge must reproduce it bit for bit.
func unionCorS(s *Stats, fids []media.FID) float64 {
	if len(fids) <= 1 {
		return 1
	}
	n := s.corpus.Len()
	if n == 0 {
		return 0
	}
	k := len(fids)
	means := make([]float64, k)
	sds := make([]float64, k)
	for j, fid := range fids {
		means[j] = s.Mean(fid)
		v := s.Variance(fid)
		if numeric.IsZero(v) {
			return 0
		}
		sds[j] = math.Sqrt(v)
	}
	seen := map[media.ObjectID]bool{}
	var union []media.ObjectID
	for _, fid := range fids {
		for _, oid := range s.Postings(fid) {
			if !seen[oid] {
				seen[oid] = true
				union = append(union, oid)
			}
		}
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	var sum float64
	for _, oid := range union {
		o := s.corpus.Object(oid)
		term := 1.0
		for j, fid := range fids {
			term *= (float64(o.Count(fid)) - means[j]) / sds[j]
		}
		sum += term
	}
	absent := 1.0
	for j := range fids {
		absent *= -means[j] / sds[j]
	}
	sum += float64(n-len(union)) * absent
	return sum
}

// TestCorSWithMatchesUnionReference asserts exact (bit-level) agreement
// between the streaming cursor merge and the materialised-union reference on
// random corpora — the property the index's stored CorS column depends on.
func TestCorSWithMatchesUnionReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := media.NewCorpus()
		nObj := 4 + rng.Intn(40)
		vocab := []string{"a", "b", "c", "d", "e", "f"}
		for i := 0; i < nObj; i++ {
			var feats []media.Feature
			var counts []int
			for _, w := range vocab {
				if rng.Float64() < 0.4 {
					feats = append(feats, media.Feature{Kind: media.Text, Name: w})
					counts = append(counts, 1+rng.Intn(3))
				}
			}
			if len(feats) == 0 {
				feats = append(feats, media.Feature{Kind: media.Text, Name: "a"})
				counts = append(counts, 1)
			}
			if _, err := c.Add(feats, counts, 0); err != nil {
				return false
			}
		}
		s := NewStats(c)
		var fids []media.FID
		for _, w := range vocab {
			if id, ok := c.Dict.Lookup(media.Feature{Kind: media.Text, Name: w}); ok {
				fids = append(fids, id)
			}
		}
		if len(fids) < 2 {
			return true
		}
		k := 2 + rng.Intn(len(fids)-1)
		pick := fids[:k]
		var ws WeightScratch
		// Exact equality, twice through the same scratch: reuse must not
		// leak state between calls.
		first := s.CorSWith(pick, &ws)
		if first != unionCorS(s, pick) {
			t.Errorf("seed %d k=%d: streaming CorS %v != union reference %v", seed, k, first, unionCorS(s, pick))
			return false
		}
		return s.CorSWith(pick, &ws) == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCliqueWeightWithScratchReuse: one scratch serving many cliques of
// varying size must give the same weights as fresh scratch per call.
func TestCliqueWeightWithScratchReuse(t *testing.T) {
	c, ids := buildTinyCorpus(t)
	s := NewStats(c)
	cliques := [][]media.FID{
		{ids["cat"]},
		{ids["cat"], ids["dog"]},
		{ids["cat"], ids["dog"], ids["u1"]},
		{ids["dog"], ids["u2"]},
		nil,
		{ids["cat"], ids["car"]},
	}
	var shared WeightScratch
	for i, fids := range cliques {
		if got, want := s.CliqueWeightWith(fids, &shared), s.CliqueWeight(fids); got != want {
			t.Errorf("clique %d: shared-scratch weight %v != fresh-scratch %v", i, got, want)
		}
	}
}

// TestTrainThresholdsWorkersDeterministic: training must land on identical
// thresholds at any fan-out — pair sampling (the rng stream) stays serial
// and the quantiles are taken over sample lists assembled in sample order.
func TestTrainThresholdsWorkersDeterministic(t *testing.T) {
	trainAt := func(workers int) Thresholds {
		m, _ := buildModel(t)
		m.TrainThresholdsWorkers(150, 0.4, rand.New(rand.NewSource(21)), workers)
		return m.Thresholds
	}
	ref := trainAt(1)
	for _, w := range []int{2, 3, 4, 0} {
		if got := trainAt(w); got != ref {
			t.Errorf("workers=%d: thresholds %v differ from serial %v", w, got, ref)
		}
	}
}

// benchStats builds a corpus shaped like the index weighting workload: a
// few hundred objects over a medium vocabulary, yielding posting lists long
// enough that per-call scratch allocation shows up.
func benchStats(b *testing.B) (*Stats, [][]media.FID) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	c := media.NewCorpus()
	vocab := make([]media.Feature, 40)
	for i := range vocab {
		vocab[i] = media.Feature{Kind: media.Text, Name: fmt.Sprintf("w%02d", i)}
	}
	for i := 0; i < 400; i++ {
		var feats []media.Feature
		var counts []int
		for _, f := range vocab {
			if rng.Float64() < 0.15 {
				feats = append(feats, f)
				counts = append(counts, 1+rng.Intn(3))
			}
		}
		if len(feats) == 0 {
			feats = append(feats, vocab[0])
			counts = append(counts, 1)
		}
		if _, err := c.Add(feats, counts, 0); err != nil {
			b.Fatal(err)
		}
	}
	s := NewStats(c)
	var cliques [][]media.FID
	for i := 0; i+2 < len(vocab); i++ {
		a, _ := c.Dict.Lookup(vocab[i])
		bb, _ := c.Dict.Lookup(vocab[i+1])
		cc, _ := c.Dict.Lookup(vocab[i+2])
		cliques = append(cliques, []media.FID{a, bb}, []media.FID{a, bb, cc})
	}
	return s, cliques
}

// BenchmarkCliqueWeightFreshScratch measures the old per-call cost (every
// call allocates its own scratch, as CliqueWeight does).
func BenchmarkCliqueWeightFreshScratch(b *testing.B) {
	s, cliques := benchStats(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CliqueWeight(cliques[i%len(cliques)])
	}
}

// BenchmarkCliqueWeightSharedScratch measures the bulk-weighting path the
// index build uses: one scratch reused across every clique.
func BenchmarkCliqueWeightSharedScratch(b *testing.B) {
	s, cliques := benchStats(b)
	var ws WeightScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CliqueWeightWith(cliques[i%len(cliques)], &ws)
	}
}
