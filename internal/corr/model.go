package corr

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"figfusion/internal/floatcache"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
	"figfusion/internal/par"
	"figfusion/internal/social"
	"figfusion/internal/vision"
)

// Thresholds holds the trained correlation threshold for each ordered kind
// pair; the table is kept symmetric by construction. An edge is drawn in a
// FIG iff Cor(n1, n2) exceeds the threshold for the nodes' kinds
// (Section 3.2).
type Thresholds [media.NumKinds][media.NumKinds]float64

// DefaultThresholds are used until TrainThresholds is called. They reflect
// the scales of the underlying similarity functions: WUP for text (same
// hypernym group ⇒ ≥ ~0.7), 1/(1+d) for visual words, Jaccard for users
// (any shared group), cosine co-occurrence for inter-type pairs.
func DefaultThresholds() Thresholds {
	var th Thresholds
	for a := 0; a < media.NumKinds; a++ {
		for b := 0; b < media.NumKinds; b++ {
			th[a][b] = 0.1 // inter-type cosine default
		}
	}
	th[media.Text][media.Text] = 0.6
	th[media.Visual][media.Visual] = 0.5
	th[media.Audio][media.Audio] = 0.5
	th[media.User][media.User] = 1e-9
	return th
}

// Model evaluates Cor(·,·) between interned features, dispatching on the
// modality pair exactly as Section 3.2 prescribes:
//
//	text × text     → WUP over the taxonomy (falling back to Eq. 1 for
//	                  out-of-taxonomy words, which the paper notes is an
//	                  orthogonal choice);
//	visual × visual → similarity from Euclidean distance between the
//	                  corresponding 16-D visual words;
//	user × user     → shared-group correlation (graded by Jaccard);
//	inter-type      → Eq. 1 statistical co-occurrence cosine.
//
// Cosine evaluations are memoised; the Model is safe for concurrent use.
type Model struct {
	Stats      *Stats
	Taxonomy   *lexicon.Taxonomy
	Vocab      *vision.Vocabulary
	Network    *social.Network
	VisualWord map[media.FID]int           // FID → visual word index
	UserOf     map[media.FID]social.UserID // FID → user
	Thresholds Thresholds

	// AudioVocab/AudioWord extend the dispatch to the audio modality
	// (music corpora); set via SetAudio.
	AudioVocab *vision.Vocabulary
	AudioWord  map[media.FID]int

	// gen counts invalidations of the corpus-global statistics. Every
	// cache derived from them — the cosine cache here, the scorer-side
	// CorS and smoothing caches — stamps its entries with the generation
	// they were computed from, so caches owned by engines that never hear
	// about an insert (WithParams clones share the Model but own their
	// Scorer) still self-invalidate.
	gen   atomic.Uint64
	cache *floatcache.Cache[uint64]
}

// NewModel wires a correlation model over the given substrates. Any of
// taxonomy, vocab or network may be nil, in which case the corresponding
// intra-type rule falls back to the Eq. 1 cosine.
func NewModel(stats *Stats, tax *lexicon.Taxonomy, vocab *vision.Vocabulary, net *social.Network,
	visualWord map[media.FID]int, userOf map[media.FID]social.UserID) *Model {
	return &Model{
		Stats:      stats,
		Taxonomy:   tax,
		Vocab:      vocab,
		Network:    net,
		VisualWord: visualWord,
		UserOf:     userOf,
		Thresholds: DefaultThresholds(),
		cache:      floatcache.New[uint64](floatcache.HashUint64),
	}
}

// Generation returns the current statistics generation. It increases on
// every InvalidateCache; derived caches compare it against the stamp of
// their entries.
func (m *Model) Generation() uint64 { return m.gen.Load() }

// CacheStats returns the cosine cache's lifetime hit and miss counts —
// the observability hook the serving metrics expose. Misses are exact;
// hits are a sampled estimate (see floatcache.Cache.Stats).
func (m *Model) CacheStats() (hits, misses uint64) { return m.cache.Stats() }

// Cor returns the correlation between two interned features in [0, 1].
func (m *Model) Cor(a, b media.FID) float64 {
	if a == b {
		return 1
	}
	dict := m.Stats.Corpus().Dict
	fa, fb := dict.Feature(a), dict.Feature(b)
	if fa.Kind == fb.Kind {
		switch fa.Kind {
		case media.Text:
			if m.Taxonomy != nil {
				if wup, ok := m.Taxonomy.WUP(fa.Name, fb.Name); ok {
					return wup
				}
			}
		case media.Visual:
			if m.Vocab != nil {
				wa, oka := m.VisualWord[a]
				wb, okb := m.VisualWord[b]
				if oka && okb {
					return m.Vocab.WordSimilarity(wa, wb)
				}
			}
		case media.User:
			if m.Network != nil {
				ua, oka := m.UserOf[a]
				ub, okb := m.UserOf[b]
				if oka && okb {
					return m.Network.GroupSimilarity(ua, ub)
				}
			}
		case media.Audio:
			if m.AudioVocab != nil {
				wa, oka := m.AudioWord[a]
				wb, okb := m.AudioWord[b]
				if oka && okb {
					return m.AudioVocab.WordSimilarity(wa, wb)
				}
			}
		}
	}
	return m.cosine(a, b)
}

// SetAudio wires the audio-word substrate into the model's intra-type
// dispatch, extending the fusion to music corpora. The vocabulary shares
// the vector-quantization type of the visual substrate.
func (m *Model) SetAudio(vocab *vision.Vocabulary, words map[media.FID]int) {
	m.AudioVocab = vocab
	m.AudioWord = words
}

func (m *Model) cosine(a, b media.FID) float64 {
	if a > b {
		a, b = b, a
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	gen := m.gen.Load()
	if v, ok := m.cache.Get(gen, key); ok {
		return v
	}
	v := m.Stats.Cosine(a, b)
	// Store only if the generation is unchanged since the pre-compute
	// load: a value derived from post-insert statistics must not be
	// stamped with the pre-insert generation, where same-generation
	// readers would trust it. (See the floatcache package comment for why
	// this check narrows, but external serialization of stats mutation
	// eliminates, the race.)
	if m.gen.Load() == gen {
		m.cache.Put(gen, key, v)
	}
	return v
}

// Correlated reports whether the trained threshold admits an edge between
// the two features (Section 3.2).
func (m *Model) Correlated(a, b media.FID) bool {
	if a == b {
		return false // no self loops in a FIG
	}
	dict := m.Stats.Corpus().Dict
	ka := dict.Feature(a).Kind
	kb := dict.Feature(b).Kind
	return m.Cor(a, b) > m.Thresholds[ka][kb]
}

// TrainThresholds learns one threshold per kind pair from the corpus, the
// paper's "trained correlation threshold". For each kind pair it samples
// correlations of feature pairs co-occurring within sampled objects and sets
// the threshold at the given upper quantile (e.g. quantile 0.2 keeps the
// top 20% strongest co-occurring pairs as edges). Kind pairs with no samples
// keep their previous thresholds. The correlation evaluations fan out over
// every CPU; see TrainThresholdsWorkers to pin the fan-out.
func (m *Model) TrainThresholds(sampleObjects int, quantile float64, rng *rand.Rand) {
	m.TrainThresholdsWorkers(sampleObjects, quantile, rng, 0)
}

// TrainThresholdsWorkers is TrainThresholds with a bounded fan-out
// (0 = NumCPU). The trained thresholds are identical at any worker count:
// pair sampling stays serial (the rng draw order is untouched), the workers
// only evaluate Cor — a pure function of the immutable corpus statistics —
// into fixed slots of the sampled-pair slice, and the quantiles are taken
// over the per-kind-pair sample lists assembled serially in sample order.
func (m *Model) TrainThresholdsWorkers(sampleObjects int, quantile float64, rng *rand.Rand, workers int) {
	corpus := m.Stats.Corpus()
	if corpus.Len() == 0 || sampleObjects <= 0 {
		return
	}
	quantile = math.Max(0, math.Min(1, quantile))
	type sampledPair struct {
		a, b   media.FID
		ka, kb media.Kind
		v      float64
	}
	var pairsList []sampledPair
	for s := 0; s < sampleObjects; s++ {
		o := corpus.Object(media.ObjectID(rng.Intn(corpus.Len())))
		// Bound per-object pair work so a few giant objects cannot dominate
		// the training budget.
		const maxPairsPerObject = 200
		pairs := 0
		for i := 0; i < len(o.Feats) && pairs < maxPairsPerObject; i++ {
			for j := i + 1; j < len(o.Feats) && pairs < maxPairsPerObject; j++ {
				a, b := o.Feats[i], o.Feats[j]
				pairsList = append(pairsList, sampledPair{
					a: a, b: b,
					ka: corpus.KindOf(a), kb: corpus.KindOf(b),
				})
				pairs++
			}
		}
	}
	// Cor is safe for concurrent use (the cosine cache is sharded), so the
	// evaluations stripe freely; each worker writes only its own slots.
	par.Range(len(pairsList), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pairsList[i].v = m.Cor(pairsList[i].a, pairsList[i].b)
		}
	})
	samples := make([][media.NumKinds][]float64, media.NumKinds)
	for _, p := range pairsList {
		samples[p.ka][p.kb] = append(samples[p.ka][p.kb], p.v)
		if p.ka != p.kb {
			samples[p.kb][p.ka] = append(samples[p.kb][p.ka], p.v)
		}
	}
	for a := 0; a < media.NumKinds; a++ {
		for b := 0; b < media.NumKinds; b++ {
			vals := samples[a][b]
			if len(vals) == 0 {
				continue
			}
			sort.Float64s(vals)
			idx := int(float64(len(vals)) * (1 - quantile))
			if idx >= len(vals) {
				idx = len(vals) - 1
			}
			if idx < 0 {
				idx = 0
			}
			m.Thresholds[a][b] = vals[idx]
		}
	}
}

// InvalidateCache advances the statistics generation and drops memoised
// cosine correlations. Call after appending objects to the underlying
// statistics: co-occurrence cosines are corpus-global and shift with
// every insertion. Downstream caches stamped with the old generation
// (scorer CorS and smoothing sums, including those held by WithParams
// clones that share this model) go stale automatically.
func (m *Model) InvalidateCache() {
	m.gen.Add(1)
	m.cache.Reset()
}
