// Package corr implements the correlation machinery of the paper:
//
//   - Eq. 1 — the statistical co-occurrence correlation between two features,
//     the cosine of their object-incidence vectors, used for inter-type edges
//     and available for intra-type edges;
//   - the six pair-wise feature correlation tables (T×T, V×V, U×U, T×V,
//     T×U, V×U) consulted when building Feature Interaction Graphs
//     (Section 3.5);
//   - Eq. 8 — CorS, the multi-feature standardized co-moment (covariance
//     generalised beyond two variables) that weights cliques in Eq. 9;
//   - the trained correlation threshold that decides which correlations
//     become FIG edges (Section 3.2).
package corr

import (
	"fmt"
	"math"
	"sort"

	"figfusion/internal/media"
	"figfusion/internal/numeric"
)

// Stats holds per-feature corpus statistics: posting lists and frequency
// moments. It is built once per corpus and is safe for concurrent reads.
type Stats struct {
	corpus   *media.Corpus
	postings [][]media.ObjectID // FID -> sorted objects containing it
	pcounts  [][]uint16         // FID -> counts aligned with postings
	sumCount []float64          // FID -> Σ_i n_{f,i}
	sumSq    []float64          // FID -> Σ_i n_{f,i}²
}

// NewStats scans the corpus and builds posting lists and moments.
func NewStats(c *media.Corpus) *Stats {
	nf := c.Dict.Len()
	s := &Stats{
		corpus:   c,
		postings: make([][]media.ObjectID, nf),
		pcounts:  make([][]uint16, nf),
		sumCount: make([]float64, nf),
		sumSq:    make([]float64, nf),
	}
	for _, o := range c.Objects {
		for i, fid := range o.Feats {
			cnt := float64(o.Counts[i])
			s.postings[fid] = append(s.postings[fid], o.ID)
			s.pcounts[fid] = append(s.pcounts[fid], o.Counts[i])
			s.sumCount[fid] += cnt
			s.sumSq[fid] += cnt * cnt
		}
	}
	return s
}

// Corpus returns the corpus the stats were built from.
func (s *Stats) Corpus() *media.Corpus { return s.corpus }

// Postings returns the sorted list of objects containing fid.
func (s *Stats) Postings(fid media.FID) []media.ObjectID {
	if int(fid) >= len(s.postings) {
		return nil
	}
	return s.postings[fid]
}

// Norm returns |n⃗| of Eq. 1: the Euclidean norm of the feature's
// object-incidence vector.
func (s *Stats) Norm(fid media.FID) float64 {
	if int(fid) >= len(s.sumSq) {
		return 0
	}
	return math.Sqrt(s.sumSq[fid])
}

// Mean returns the mean frequency n̄_j of Eq. 8 across all objects.
func (s *Stats) Mean(fid media.FID) float64 {
	if int(fid) >= len(s.sumCount) || s.corpus.Len() == 0 {
		return 0
	}
	return s.sumCount[fid] / float64(s.corpus.Len())
}

// Variance returns the population variance var(n_j) of Eq. 8.
func (s *Stats) Variance(fid media.FID) float64 {
	if int(fid) >= len(s.sumSq) || s.corpus.Len() == 0 {
		return 0
	}
	n := float64(s.corpus.Len())
	mean := s.sumCount[fid] / n
	v := s.sumSq[fid]/n - mean*mean
	if v < 0 {
		return 0 // numerical noise
	}
	return v
}

// gallopSkew is the length ratio beyond which Dot switches from the linear
// merge to galloping: exponential search only wins once one list is much
// longer than the other, otherwise the doubling probes cost more than the
// straight scan they replace.
const gallopSkew = 8

// Dot returns n⃗1·n⃗2: the sum over objects of the product of the two
// features' frequencies, computed by intersecting posting lists. Counts
// ride alongside the postings, so no per-match corpus lookups are needed.
// When the list lengths are skewed more than gallopSkew×, the scan of the
// longer list gallops (exponential search then binary refinement); the
// matches — and therefore the floating-point sum — are identical to the
// linear merge's, as the property test cross-checks.
func (s *Stats) Dot(a, b media.FID) float64 {
	pa, pb := s.Postings(a), s.Postings(b)
	if len(pa) > len(pb) {
		pa, pb = pb, pa
		a, b = b, a
	}
	ca, cb := s.counts(a), s.counts(b)
	var dot float64
	j := 0
	gallop := len(pb) > gallopSkew*len(pa)
	for i, oid := range pa {
		if gallop {
			j = gallopTo(pb, j, oid)
		} else {
			for j < len(pb) && pb[j] < oid {
				j++
			}
		}
		if j < len(pb) && pb[j] == oid {
			dot += float64(ca[i]) * float64(cb[j])
		}
	}
	return dot
}

// gallopTo returns the smallest index ≥ from with list[index] ≥ target,
// probing at exponentially growing strides and binary-searching the last
// bracket. Equivalent to advancing linearly, in O(log gap).
func gallopTo(list []media.ObjectID, from int, target media.ObjectID) int {
	if from >= len(list) || list[from] >= target {
		return from
	}
	step := 1
	lo := from
	hi := from + step
	for hi < len(list) && list[hi] < target {
		lo = hi
		step *= 2
		hi = lo + step
	}
	if hi > len(list) {
		hi = len(list)
	}
	// Invariant: list[lo] < target, and list[hi] ≥ target if hi < len.
	return lo + sort.Search(hi-lo, func(i int) bool { return list[lo+i] >= target })
}

func (s *Stats) counts(fid media.FID) []uint16 {
	if int(fid) >= len(s.pcounts) {
		return nil
	}
	return s.pcounts[fid]
}

// Cosine computes Eq. 1: Cor(n1, n2) = n⃗1·n⃗2 / (|n⃗1|·|n⃗2|).
// Features that never occur give 0.
func (s *Stats) Cosine(a, b media.FID) float64 {
	na, nb := s.Norm(a), s.Norm(b)
	if numeric.IsZero(na) || numeric.IsZero(nb) {
		return 0
	}
	return s.Dot(a, b) / (na * nb)
}

// CorS computes Eq. 8 for the features of a clique:
//
//	CorS(n1..nk) = Σ_{i=1..|D|} Π_{j=1..k} (n_{j,i} − n̄_j) / sd(n_j)
//
// For k = 2 this is |D|·Pearson-correlation (the paper notes it reduces to
// covariance). For k = 1 the sum is identically zero by construction, so
// CorS is defined as 1 for singleton cliques — singleton cliques carry no
// interaction information to weight (Section 3.4 uses CorS to code the
// importance of multi-feature cliques).
//
// The exact sum is computed by streaming a cursor merge over the features'
// posting lists — visiting each union object once, in ascending ID order,
// without materialising the union — and adding an analytic correction for
// the objects containing none of the features, whose per-object term is
// the constant Π_j (−n̄_j / sd_j).
func (s *Stats) CorS(fids []media.FID) float64 {
	var ws WeightScratch
	return s.CorSWith(fids, &ws)
}

// WeightScratch holds the reusable per-call state of CorSWith and
// CliqueWeightWith, so bulk callers (the index build's weighting loop
// recomputes Eq. 9 for every distinct clique) avoid re-allocating cursor
// and moment slices tens of thousands of times. A scratch value must not
// be shared between concurrent calls; give each worker its own.
type WeightScratch struct {
	means, sds []float64
	lists      [][]media.ObjectID
	counts     [][]uint16
	cursors    []int
}

func (ws *WeightScratch) reset(k int) {
	if cap(ws.means) < k {
		ws.means = make([]float64, k)
		ws.sds = make([]float64, k)
		ws.lists = make([][]media.ObjectID, k)
		ws.counts = make([][]uint16, k)
		ws.cursors = make([]int, k)
	}
	ws.means = ws.means[:k]
	ws.sds = ws.sds[:k]
	ws.lists = ws.lists[:k]
	ws.counts = ws.counts[:k]
	ws.cursors = ws.cursors[:k]
	for j := range ws.cursors {
		ws.cursors[j] = 0
	}
}

// CorSWith is CorS using caller-provided scratch space.
func (s *Stats) CorSWith(fids []media.FID, ws *WeightScratch) float64 {
	if len(fids) <= 1 {
		return 1
	}
	n := s.corpus.Len()
	if n == 0 {
		return 0
	}
	k := len(fids)
	ws.reset(k)
	for j, fid := range fids {
		ws.means[j] = s.Mean(fid)
		v := s.Variance(fid)
		if numeric.IsZero(v) {
			return 0 // a constant feature correlates with nothing
		}
		ws.sds[j] = math.Sqrt(v)
		ws.lists[j] = s.Postings(fid)
		ws.counts[j] = s.counts(fid)
	}
	// k-way cursor merge: every iteration handles the smallest object ID
	// any cursor points at, multiplying the standardized per-feature terms
	// in fids order — the same product order the materialised-union loop
	// used, so the floating-point result is bit-identical.
	var sum float64
	unionLen := 0
	for {
		const noObject = media.ObjectID(^uint32(0) >> 1)
		next := noObject
		for j := range ws.lists {
			if c := ws.cursors[j]; c < len(ws.lists[j]) && ws.lists[j][c] < next {
				next = ws.lists[j][c]
			}
		}
		if next == noObject {
			break
		}
		unionLen++
		term := 1.0
		for j := range ws.lists {
			var cnt float64
			if c := ws.cursors[j]; c < len(ws.lists[j]) && ws.lists[j][c] == next {
				cnt = float64(ws.counts[j][c])
				ws.cursors[j] = c + 1
			}
			term *= (cnt - ws.means[j]) / ws.sds[j]
		}
		sum += term
	}
	// All-absent objects contribute the constant term.
	absentTerm := 1.0
	for j := range fids {
		absentTerm *= -ws.means[j] / ws.sds[j]
	}
	sum += float64(n-unionLen) * absentTerm
	return sum
}

// CliqueWeight returns the Eq. 9 importance weight of a clique's feature
// set, the single definition served both by the scorer's query-time cache
// and by the CorS column the inverted index stores per entry (so indexed
// search paths can skip recomputing it).
//
// For two or more features this is Eq. 8 normalized by |D| (for k = 2
// exactly the Pearson correlation), clamped non-negative: anti-correlated
// feature sets contribute nothing rather than negating the score. For
// singleton cliques Eq. 8 is identically zero by construction, so the
// weight is the feature's standardized dispersion sd(n)/mean(n) — the
// k = 1 analogue of the same standardized co-moment, which for binary
// features equals √((|D|−df)/df), an idf-like measure that damps
// uninformative high-document-frequency features (most visibly the shared
// visual words). The relative scale between clique sizes is absorbed by
// the trained λ parameters.
func (s *Stats) CliqueWeight(fids []media.FID) float64 {
	var ws WeightScratch
	return s.CliqueWeightWith(fids, &ws)
}

// CliqueWeightWith is CliqueWeight using caller-provided scratch space; see
// WeightScratch. The index build's weighting loop calls this once per
// distinct clique with a per-worker scratch.
func (s *Stats) CliqueWeightWith(fids []media.FID, ws *WeightScratch) float64 {
	var v float64
	switch {
	case len(fids) == 0:
		return 0
	case len(fids) == 1:
		if mean := s.Mean(fids[0]); mean > 0 {
			v = math.Sqrt(s.Variance(fids[0])) / mean
		}
	default:
		if n := s.corpus.Len(); n > 0 {
			v = s.CorSWith(fids, ws) / float64(n)
		}
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Append folds one newly added corpus object into the statistics: posting
// lists and frequency moments grow in place. The object must already be in
// the corpus this Stats was built from (same ObjectID space) and must have
// an ID larger than any previously accounted object, so posting lists stay
// sorted. Callers owning derived caches (correlation cosines, CorS) must
// invalidate them; corpus-level statistics shift with every insertion.
func (s *Stats) Append(o *media.Object) error {
	if int(o.ID) >= s.corpus.Len() || s.corpus.Object(o.ID) != o {
		return fmt.Errorf("corr: object %d is not part of the corpus", o.ID)
	}
	for i, fid := range o.Feats {
		for int(fid) >= len(s.postings) {
			s.postings = append(s.postings, nil)
			s.pcounts = append(s.pcounts, nil)
			s.sumCount = append(s.sumCount, 0)
			s.sumSq = append(s.sumSq, 0)
		}
		if n := len(s.postings[fid]); n > 0 && s.postings[fid][n-1] >= o.ID {
			return fmt.Errorf("corr: object %d appended out of order for feature %d", o.ID, fid)
		}
		cnt := float64(o.Counts[i])
		s.postings[fid] = append(s.postings[fid], o.ID)
		s.pcounts[fid] = append(s.pcounts[fid], o.Counts[i])
		s.sumCount[fid] += cnt
		s.sumSq[fid] += cnt * cnt
	}
	return nil
}
