package clustering

import (
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

func setup(t testing.TB) (*dataset.Dataset, *retrieval.Engine) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 200
	cfg.NumTopics = 4
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clustering scores directly; skip the index.
	e, err := retrieval.NewEngine(d.Model(), retrieval.Config{SkipIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, e
}

func allIDs(d *dataset.Dataset) []media.ObjectID {
	ids := make([]media.ObjectID, d.Corpus.Len())
	for i := range ids {
		ids[i] = media.ObjectID(i)
	}
	return ids
}

func TestKMedoidsPurityBeatsChance(t *testing.T) {
	d, e := setup(t)
	res, err := KMedoids(e, allIDs(d), Config{K: 4, MaxIter: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	purity := res.Purity(d.Corpus)
	// 4 planted topics; random assignment gives purity ≈ 0.3 (majority
	// share under uniform topics). Fused similarity must do much better.
	if purity < 0.55 {
		t.Errorf("purity = %v, want well above chance", purity)
	}
	t.Logf("k-medoids purity over %d objects: %.3f, sizes %v",
		len(res.Objects), purity, res.Sizes(4))
	// Every object assigned to a valid cluster.
	for i, c := range res.Assign {
		if c < 0 || c >= 4 {
			t.Fatalf("object %d assigned to %d", i, c)
		}
	}
	if len(res.Medoids) != 4 {
		t.Fatalf("medoids = %d", len(res.Medoids))
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	d, e := setup(t)
	cfg := Config{K: 3, MaxIter: 4, Seed: 7}
	a, err := KMedoids(e, allIDs(d), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMedoids(e, allIDs(d), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestKMedoidsValidation(t *testing.T) {
	d, e := setup(t)
	ids := allIDs(d)
	if _, err := KMedoids(nil, ids, Config{K: 2}); err == nil {
		t.Error("want error for nil engine")
	}
	if _, err := KMedoids(e, ids, Config{K: 0}); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := KMedoids(e, ids[:2], Config{K: 5}); err == nil {
		t.Error("want error for k > objects")
	}
}

func TestKMedoidsSubsetAndSmallK(t *testing.T) {
	d, e := setup(t)
	ids := allIDs(d)[:30]
	res, err := KMedoids(e, ids, Config{K: 2, MaxIter: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 30 {
		t.Fatalf("objects = %d", len(res.Objects))
	}
	sizes := res.Sizes(2)
	if sizes[0]+sizes[1] != 30 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestPurityEmpty(t *testing.T) {
	r := &Result{}
	if got := r.Purity(media.NewCorpus()); got != 0 {
		t.Errorf("empty purity = %v", got)
	}
}
