// Package clustering implements the clustering application from the paper's
// introduction ("retrieval, recommendation, classification, clustering, and
// so on"): k-medoids over the FIG/MRF similarity. Medoids are corpus
// objects, so the asymmetric similarity score s(medoid → object) is
// directly the clique-potential sum the retrieval engine computes, and no
// vector-space embedding is needed — exactly the point of similarity-based
// clustering over fused features.
package clustering

import (
	"fmt"
	"math/rand"

	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

// Result is a clustering outcome.
type Result struct {
	// Medoids holds the representative object of each cluster.
	Medoids []media.ObjectID
	// Assign maps every clustered object index (position in the input
	// slice) to its cluster.
	Assign []int
	// Objects echoes the clustered object IDs, parallel to Assign.
	Objects []media.ObjectID
}

// Config controls k-medoids.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds the assignment/update sweeps.
	MaxIter int
	// UpdateSample bounds the member sample used when re-electing a
	// cluster's medoid (the full quadratic update is needless at our
	// similarity cost); values < 1 default to 16.
	UpdateSample int
	// Seed drives medoid seeding and sampling.
	Seed int64
}

// KMedoids clusters the given objects. The engine supplies the similarity;
// its index is not required (scoring is direct).
func KMedoids(engine *retrieval.Engine, objects []media.ObjectID, cfg Config) (*Result, error) {
	if engine == nil {
		return nil, fmt.Errorf("cluster: nil engine")
	}
	if cfg.K < 1 || cfg.K > len(objects) {
		return nil, fmt.Errorf("cluster: k = %d with %d objects", cfg.K, len(objects))
	}
	if cfg.MaxIter < 1 {
		cfg.MaxIter = 10
	}
	if cfg.UpdateSample < 1 {
		cfg.UpdateSample = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := engine.Model.Stats.Corpus()

	// Clique sets per prospective medoid, cached.
	cliqueCache := make(map[media.ObjectID][]fig.Clique)
	cliquesOf := func(id media.ObjectID) []fig.Clique {
		if c, ok := cliqueCache[id]; ok {
			return c
		}
		c := engine.QueryCliques(corpus.Object(id))
		cliqueCache[id] = c
		return c
	}
	similarity := func(medoid, obj media.ObjectID) float64 {
		return engine.Scorer.Score(cliquesOf(medoid), corpus.Object(obj))
	}

	// Seed medoids with distinct random objects.
	perm := rng.Perm(len(objects))
	medoids := make([]media.ObjectID, cfg.K)
	for i := 0; i < cfg.K; i++ {
		medoids[i] = objects[perm[i]]
	}
	assign := make([]int, len(objects))
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Assignment step.
		changed := false
		for i, obj := range objects {
			best, bestSim := 0, similarity(medoids[0], obj)
			for c := 1; c < cfg.K; c++ {
				if s := similarity(medoids[c], obj); s > bestSim {
					best, bestSim = c, s
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Update step: re-elect each cluster's medoid as the member with
		// the highest total similarity to a sample of its members.
		for c := 0; c < cfg.K; c++ {
			var members []media.ObjectID
			for i, obj := range objects {
				if assign[i] == c {
					members = append(members, obj)
				}
			}
			if len(members) == 0 {
				// Empty cluster: re-seed with a random object.
				medoids[c] = objects[rng.Intn(len(objects))]
				continue
			}
			sample := members
			if len(sample) > cfg.UpdateSample {
				idx := rng.Perm(len(members))[:cfg.UpdateSample]
				sample = make([]media.ObjectID, len(idx))
				for j, i := range idx {
					sample[j] = members[i]
				}
			}
			bestMedoid, bestTotal := medoids[c], -1.0
			candidates := members
			if len(candidates) > cfg.UpdateSample {
				idx := rng.Perm(len(members))[:cfg.UpdateSample]
				candidates = make([]media.ObjectID, len(idx))
				for j, i := range idx {
					candidates[j] = members[i]
				}
			}
			for _, cand := range candidates {
				var total float64
				for _, m := range sample {
					total += similarity(cand, m)
				}
				if total > bestTotal {
					bestMedoid, bestTotal = cand, total
				}
			}
			medoids[c] = bestMedoid
		}
	}
	return &Result{
		Medoids: medoids,
		Assign:  assign,
		Objects: append([]media.ObjectID(nil), objects...),
	}, nil
}

// Purity evaluates a clustering against the planted primary topics: the
// fraction of objects belonging to their cluster's majority topic.
func (r *Result) Purity(corpus *media.Corpus) float64 {
	if len(r.Objects) == 0 {
		return 0
	}
	majority := make(map[int]map[int]int) // cluster -> topic -> count
	for i, obj := range r.Objects {
		c := r.Assign[i]
		if majority[c] == nil {
			majority[c] = make(map[int]int)
		}
		majority[c][corpus.Object(obj).PrimaryTopic]++
	}
	total := 0
	for _, topics := range majority {
		best := 0
		for _, n := range topics {
			if n > best {
				best = n
			}
		}
		total += best
	}
	return float64(total) / float64(len(r.Objects))
}

// Sizes returns the member count of each cluster.
func (r *Result) Sizes(k int) []int {
	sizes := make([]int, k)
	for _, c := range r.Assign {
		if c >= 0 && c < k {
			sizes[c]++
		}
	}
	return sizes
}
