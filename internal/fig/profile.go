package fig

import (
	"figfusion/internal/corr"
	"figfusion/internal/media"
)

// ProfileCliques builds the timestamped clique set of a user profile Hu
// (Section 4). The profile is the "big object" union of the user's history,
// but — as the paper prescribes to avoid noisy edges — feature nodes are
// connected only when they come from the same individual object. Each
// clique therefore originates in exactly one history object and carries that
// object's month as its timestamp t_i for the temporal potential of Eq. 10.
//
// Cliques recurring across several history objects are kept once per
// occurrence: Eq. 10 sums δ^(t_c − t_i) over all timestamped cliques, so a
// recurring interest legitimately contributes once per month it recurs.
func ProfileCliques(history []*media.Object, m *corr.Model, bopts Options, eopts EnumerateOptions) []Clique {
	var out []Clique
	for _, o := range history {
		g := Build(o, m, bopts)
		out = append(out, g.Cliques(eopts)...)
	}
	return out
}
