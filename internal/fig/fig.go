// Package fig implements the Feature Interaction Graph of Section 3.2, the
// paper's central representation: a multimedia object becomes an undirected
// graph with a virtual root for the object itself, one node per feature, an
// edge from the root to every feature, and an edge between two feature nodes
// iff their correlation exceeds the trained threshold. Cliques of this graph
// (complete subgraphs containing the root and at least one feature node) are
// the units the MRF similarity model scores and the inverted index is keyed
// on.
package fig

import (
	"encoding/binary"
	"sort"

	"figfusion/internal/corr"
	"figfusion/internal/media"
)

// Graph is the FIG of one object. The virtual root is implicit: it is
// adjacent to every node in Nodes. Adjacency lists are sorted by FID.
type Graph struct {
	Object *media.Object
	Nodes  []media.FID
	adj    map[media.FID][]media.FID
}

// Options configure FIG construction.
type Options struct {
	// Kinds restricts the graph to features of the given modalities; empty
	// means all modalities. Used by the Figure 5 feature-combination study.
	Kinds []media.Kind
	// Keep, when non-nil, restricts nodes to features in the set (the
	// min-document-frequency pruning of Section 5.1.3).
	Keep map[media.FID]bool
	// MaxNodes caps the number of feature nodes (0 = unlimited). Nodes are
	// kept in object order, which for generated corpora is insertion order.
	MaxNodes int
}

func (o Options) admits(kind media.Kind) bool {
	if len(o.Kinds) == 0 {
		return true
	}
	for _, k := range o.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// Build constructs the FIG for an object: one node per (kept) feature, and
// an edge between every pair the correlation model admits.
func Build(o *media.Object, m *corr.Model, opts Options) *Graph {
	corpus := m.Stats.Corpus()
	nf := media.FID(corpus.Dict.Len())
	g := &Graph{Object: o, adj: make(map[media.FID][]media.FID)}
	for _, fid := range o.Feats {
		// External query objects may carry features unknown to the
		// corpus; they correlate with nothing and are dropped.
		if fid < 0 || fid >= nf {
			continue
		}
		if opts.Keep != nil && !opts.Keep[fid] {
			continue
		}
		if !opts.admits(corpus.KindOf(fid)) {
			continue
		}
		g.Nodes = append(g.Nodes, fid)
		if opts.MaxNodes > 0 && len(g.Nodes) >= opts.MaxNodes {
			break
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i] < g.Nodes[j] })
	for i := 0; i < len(g.Nodes); i++ {
		for j := i + 1; j < len(g.Nodes); j++ {
			a, b := g.Nodes[i], g.Nodes[j]
			if m.Correlated(a, b) {
				g.adj[a] = append(g.adj[a], b)
				g.adj[b] = append(g.adj[b], a)
			}
		}
	}
	for fid := range g.adj {
		nb := g.adj[fid]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// Len returns the number of feature nodes.
func (g *Graph) Len() int { return len(g.Nodes) }

// Edges returns the number of feature–feature edges (excluding the implicit
// root edges).
func (g *Graph) Edges() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// Adjacent reports whether two feature nodes are linked.
func (g *Graph) Adjacent(a, b media.FID) bool {
	nb := g.adj[a]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= b })
	return i < len(nb) && nb[i] == b
}

// Neighbors returns the sorted neighbour list of a feature node.
func (g *Graph) Neighbors(fid media.FID) []media.FID { return g.adj[fid] }

// Clique is a complete subgraph of a FIG: the (implicit) virtual root plus
// Feats, which is sorted and duplicate-free. Month carries the timestamp the
// recommendation model attaches to cliques (Section 4); -1 means untimed.
type Clique struct {
	Feats []media.FID
	Month int
}

// Size returns |c|: the number of vertices including the virtual root, the
// quantity the λ parameters of the MRF are keyed on (Section 3.4).
func (c Clique) Size() int { return len(c.Feats) + 1 }

// Key returns a canonical byte-string key for the clique's feature set,
// independent of Month, suitable as an inverted-index map key.
func (c Clique) Key() string { return KeyOf(c.Feats) }

// KeyOf is the one canonical clique-key encoder: the feature IDs as
// big-endian uint32s, concatenated. Everything that keys on a clique's
// feature set — Clique.Key, the inverted index's persisted rows — must go
// through this function; KeyFeats is its inverse.
func KeyOf(fids []media.FID) string {
	buf := make([]byte, 4*len(fids))
	for i, fid := range fids {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(fid))
	}
	return string(buf)
}

// KeyFeats decodes a clique key back into its FIDs.
func KeyFeats(key string) []media.FID {
	fids := make([]media.FID, len(key)/4)
	for i := range fids {
		fids[i] = media.FID(binary.BigEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return fids
}

// EnumerateOptions bound clique enumeration.
type EnumerateOptions struct {
	// MaxFeatures caps the number of feature nodes per clique (clique size
	// minus the root). The paper's examples use up to three features; the
	// ablation benches sweep this. Values < 1 default to 3.
	MaxFeatures int
	// MaxCliques caps the total number of cliques produced (0 = unlimited).
	// Enumeration is deterministic, so truncation is stable.
	MaxCliques int
}

func (o EnumerateOptions) maxFeatures() int {
	if o.MaxFeatures < 1 {
		return 3
	}
	return o.MaxFeatures
}

// Cliques enumerates every clique of the FIG with the virtual root and at
// least one feature node, up to the configured bounds. Because the root is
// adjacent to all feature nodes, this equals enumerating the cliques of the
// feature-node subgraph, including singletons. Enumeration extends each
// clique only with higher-numbered common neighbours, so each clique is
// produced exactly once, in lexicographic order of its sorted feature set.
func (g *Graph) Cliques(opts EnumerateOptions) []Clique {
	maxF := opts.maxFeatures()
	var out []Clique
	month := -1
	if g.Object != nil {
		month = g.Object.Month
	}
	var grow func(current []media.FID, candidates []media.FID) bool
	emit := func(feats []media.FID) bool {
		c := Clique{Feats: append([]media.FID(nil), feats...), Month: month}
		out = append(out, c)
		return opts.MaxCliques > 0 && len(out) >= opts.MaxCliques
	}
	grow = func(current, candidates []media.FID) bool {
		if emit(current) {
			return true
		}
		if len(current) >= maxF {
			return false
		}
		for i, cand := range candidates {
			next := intersectSorted(candidates[i+1:], g.adj[cand])
			if grow(append(current, cand), next) {
				return true
			}
		}
		return false
	}
	for i, n := range g.Nodes {
		// Candidates: higher-numbered neighbours of n.
		var higher []media.FID
		for _, nb := range g.adj[n] {
			if nb > n {
				higher = append(higher, nb)
			}
		}
		_ = i
		if grow([]media.FID{n}, higher) {
			break
		}
	}
	return out
}

// intersectSorted returns the intersection of two sorted FID slices.
func intersectSorted(a, b []media.FID) []media.FID {
	var out []media.FID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
