package fig

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"figfusion/internal/corr"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
)

// testWorld builds a corpus and correlation model where text edges are
// decided by a generated taxonomy:
//
//	hamster–animal–vegetable form one "pets" hypernym group (WUP 0.75 > 0.6)
//	car is in another domain (WUP 0.25 with the others)
//
// Object o0 carries hamster, animal, vegetable, car and user u1.
func testWorld(t testing.TB) (*media.Corpus, *corr.Model, *media.Object, map[string]media.FID) {
	t.Helper()
	c := media.NewCorpus()
	tf := func(n string) media.Feature { return media.Feature{Kind: media.Text, Name: n} }
	uf := func(n string) media.Feature { return media.Feature{Kind: media.User, Name: n} }
	o0, err := c.Add(
		[]media.Feature{tf("hamster"), tf("animal"), tf("vegetable"), tf("car"), uf("u1")},
		[]int{1, 1, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A couple more objects so cosine correlations are non-trivial.
	if _, err := c.Add([]media.Feature{tf("hamster"), uf("u1")}, []int{2, 1}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add([]media.Feature{tf("car")}, []int{1}, 4); err != nil {
		t.Fatal(err)
	}
	tax, err := lexicon.Generate([]lexicon.TopicGroup{
		{Name: "pets", Domain: "living", Words: []string{"hamster", "animal", "vegetable"}},
		{Name: "vehicle", Domain: "artifact", Words: []string{"car"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := corr.NewModel(corr.NewStats(c), tax, nil, nil, nil, nil)
	// Make inter-type edges predictable: only very strong cosine pairs.
	m.Thresholds[media.Text][media.User] = 0.99
	m.Thresholds[media.User][media.Text] = 0.99
	ids := make(map[string]media.FID)
	for _, n := range []string{"hamster", "animal", "vegetable", "car"} {
		id, _ := c.Dict.Lookup(tf(n))
		ids[n] = id
	}
	id, _ := c.Dict.Lookup(uf("u1"))
	ids["u1"] = id
	return c, m, o0, ids
}

func TestBuildEdges(t *testing.T) {
	_, m, o0, ids := testWorld(t)
	g := Build(o0, m, Options{})
	if g.Len() != 5 {
		t.Fatalf("nodes = %d, want 5", g.Len())
	}
	// The three pets-group words form a triangle.
	for _, pair := range [][2]string{{"hamster", "animal"}, {"hamster", "vegetable"}, {"animal", "vegetable"}} {
		if !g.Adjacent(ids[pair[0]], ids[pair[1]]) {
			t.Errorf("edge %v missing", pair)
		}
	}
	// car links to nobody in the pets group.
	for _, w := range []string{"hamster", "animal", "vegetable"} {
		if g.Adjacent(ids["car"], ids[w]) {
			t.Errorf("unexpected edge car-%s", w)
		}
	}
	if g.Edges() != 3 {
		t.Errorf("Edges = %d, want 3", g.Edges())
	}
}

func TestBuildKindsFilter(t *testing.T) {
	_, m, o0, ids := testWorld(t)
	g := Build(o0, m, Options{Kinds: []media.Kind{media.Text}})
	if g.Len() != 4 {
		t.Fatalf("nodes = %d, want 4 text nodes", g.Len())
	}
	for _, n := range g.Nodes {
		if n == ids["u1"] {
			t.Error("user node should be filtered out")
		}
	}
	gu := Build(o0, m, Options{Kinds: []media.Kind{media.User}})
	if gu.Len() != 1 || gu.Nodes[0] != ids["u1"] {
		t.Errorf("user-only graph nodes = %v", gu.Nodes)
	}
}

func TestBuildKeepFilter(t *testing.T) {
	_, m, o0, ids := testWorld(t)
	keep := map[media.FID]bool{ids["hamster"]: true, ids["car"]: true}
	g := Build(o0, m, Options{Keep: keep})
	if g.Len() != 2 {
		t.Fatalf("nodes = %d, want 2", g.Len())
	}
}

func TestBuildMaxNodes(t *testing.T) {
	_, m, o0, _ := testWorld(t)
	g := Build(o0, m, Options{MaxNodes: 2})
	if g.Len() != 2 {
		t.Errorf("nodes = %d, want 2", g.Len())
	}
}

func cliqueSets(cliques []Clique) [][]media.FID {
	out := make([][]media.FID, len(cliques))
	for i, c := range cliques {
		out[i] = c.Feats
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func TestCliquesEnumeration(t *testing.T) {
	_, m, o0, ids := testWorld(t)
	g := Build(o0, m, Options{})
	cliques := g.Cliques(EnumerateOptions{MaxFeatures: 3})
	// Expected: 5 singletons, 3 edges (pets triangle), 1 triangle = 9.
	if len(cliques) != 9 {
		t.Fatalf("cliques = %d, want 9: %v", len(cliques), cliqueSets(cliques))
	}
	// The triangle must be present.
	tri := []media.FID{ids["hamster"], ids["animal"], ids["vegetable"]}
	sort.Slice(tri, func(i, j int) bool { return tri[i] < tri[j] })
	found := false
	for _, c := range cliques {
		if reflect.DeepEqual(c.Feats, tri) {
			found = true
			if c.Size() != 4 {
				t.Errorf("triangle Size = %d, want 4 (3 features + root)", c.Size())
			}
			if c.Month != o0.Month {
				t.Errorf("clique Month = %d, want %d", c.Month, o0.Month)
			}
		}
	}
	if !found {
		t.Error("pets triangle clique missing")
	}
	// All cliques are complete subgraphs with sorted features.
	for _, c := range cliques {
		if !sort.SliceIsSorted(c.Feats, func(i, j int) bool { return c.Feats[i] < c.Feats[j] }) {
			t.Errorf("clique %v not sorted", c.Feats)
		}
		for i := 0; i < len(c.Feats); i++ {
			for j := i + 1; j < len(c.Feats); j++ {
				if !g.Adjacent(c.Feats[i], c.Feats[j]) {
					t.Errorf("clique %v not complete", c.Feats)
				}
			}
		}
	}
}

func TestCliquesMaxFeatures(t *testing.T) {
	_, m, o0, _ := testWorld(t)
	g := Build(o0, m, Options{})
	cliques := g.Cliques(EnumerateOptions{MaxFeatures: 1})
	if len(cliques) != 5 {
		t.Errorf("MaxFeatures=1: %d cliques, want 5 singletons", len(cliques))
	}
	cliques2 := g.Cliques(EnumerateOptions{MaxFeatures: 2})
	if len(cliques2) != 8 {
		t.Errorf("MaxFeatures=2: %d cliques, want 8", len(cliques2))
	}
	// Default (0) behaves as 3.
	if got := len(g.Cliques(EnumerateOptions{})); got != 9 {
		t.Errorf("default MaxFeatures: %d cliques, want 9", got)
	}
}

func TestCliquesMaxCliques(t *testing.T) {
	_, m, o0, _ := testWorld(t)
	g := Build(o0, m, Options{})
	cliques := g.Cliques(EnumerateOptions{MaxFeatures: 3, MaxCliques: 4})
	if len(cliques) != 4 {
		t.Errorf("MaxCliques=4: got %d", len(cliques))
	}
	// Truncation is deterministic.
	again := g.Cliques(EnumerateOptions{MaxFeatures: 3, MaxCliques: 4})
	if !reflect.DeepEqual(cliqueSets(cliques), cliqueSets(again)) {
		t.Error("truncated enumeration not deterministic")
	}
}

func TestCliquesNoDuplicates(t *testing.T) {
	_, m, o0, _ := testWorld(t)
	g := Build(o0, m, Options{})
	cliques := g.Cliques(EnumerateOptions{MaxFeatures: 4})
	seen := make(map[string]bool)
	for _, c := range cliques {
		k := c.Key()
		if seen[k] {
			t.Errorf("duplicate clique %v", c.Feats)
		}
		seen[k] = true
	}
}

func TestCliqueKeyRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		fids := make([]media.FID, len(raw))
		for i, r := range raw {
			fids[i] = media.FID(r)
		}
		c := Clique{Feats: fids}
		got := KeyFeats(c.Key())
		if len(got) != len(fids) {
			return false
		}
		for i := range fids {
			if got[i] != fids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCliqueKeyDistinguishes(t *testing.T) {
	a := Clique{Feats: []media.FID{1, 2}}
	b := Clique{Feats: []media.FID{1, 3}}
	if a.Key() == b.Key() {
		t.Error("distinct cliques share a key")
	}
	// Month does not affect the key.
	c := Clique{Feats: []media.FID{1, 2}, Month: 7}
	if a.Key() != c.Key() {
		t.Error("Month must not affect Key")
	}
}

func TestProfileCliquesPerObjectEdges(t *testing.T) {
	c, m, _, ids := testWorld(t)
	// History: object 1 has {hamster, u1} at month 3; object 2 {car} at 4.
	history := []*media.Object{c.Object(1), c.Object(2)}
	cliques := ProfileCliques(history, m, Options{}, EnumerateOptions{MaxFeatures: 3})
	// Object 1: hamster, u1 singletons (+edge iff correlated); object 2: car.
	byMonth := map[int]int{}
	for _, cl := range cliques {
		byMonth[cl.Month]++
		// No clique may mix features that only co-occur across objects:
		// hamster (obj 1) and car (obj 2) must never share a clique.
		hasHam, hasCar := false, false
		for _, f := range cl.Feats {
			if f == ids["hamster"] {
				hasHam = true
			}
			if f == ids["car"] {
				hasCar = true
			}
		}
		if hasHam && hasCar {
			t.Errorf("cross-object clique %v", cl.Feats)
		}
	}
	if byMonth[3] == 0 || byMonth[4] == 0 {
		t.Errorf("cliques missing months: %v", byMonth)
	}
}

func BenchmarkBuildAndEnumerate(b *testing.B) {
	_, m, o0, _ := testWorld(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := Build(o0, m, Options{})
		g.Cliques(EnumerateOptions{MaxFeatures: 3})
	}
}
