package index

import (
	"figfusion/internal/corr"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
)

// BlockLen is the posting-block length of the block-max summaries: every
// entry's sorted posting list is cut into runs of up to BlockLen object
// IDs, each summarised by its ID range and the maxima of the two
// candidate-dependent components of the Eq. 7 conditional. The length
// trades summary footprint (one 40-byte block row per run) against pruning
// granularity (the lazy TA path scores a whole run the moment its bound
// surfaces). 64 keeps the summary under 8% of the posting list's
// footprint; halving it measured slower on the tracked -scale 4000 TA
// series — finer blocks mean more frontier-heap traffic, which costs
// more than the extra skipped potentials save.
const BlockLen = 64

// Block is one run's summary in row form — the shape the legacy gob wire
// format persists and the tests assemble expectations in. In memory the
// summaries are stored columnar (see BlockSlice); Block exists at the
// boundaries where a whole row is handled at once.
type Block struct {
	MinID media.ObjectID
	MaxID media.ObjectID
	MaxSF float64
	MaxSM float64
	MinSM float64
}

// BlockSlice is a columnar view over an entry's block summaries: five
// parallel arrays, one element per block of up to BlockLen postings. MaxSF
// and MaxSM are maxima of the parameter-independent conditional components
// returned by mrf.Scorer.PotentialParts — set-frequency ratio and
// smoothing mean — so one stored summary serves any (α, λ, CorS): the
// query-time upper bound for a clique with weighted lambda wl is
//
//	wl · ((1−α)·MaxSF[i] + α·MaxSM[i])
//
// inflated by the pruning layer's reassociation slack. MaxSM may be
// negative (the smoothing correction subtracts clique-internal
// correlations); a block whose bound comes out ≤ 0 can only hold postings
// the unpruned paths would drop too. MinSM — the most negative smoothing
// mean in the block — exists purely for the slack: the floating-point
// error of the bound comparison is relative to the magnitudes of the terms
// involved, not to their (possibly cancelling) sum, so the inflation term
// needs the largest |sm| in the block, which is max(|MaxSM|, |MinSM[i]|).
//
// On a sealed index the five arrays are sub-slices of the index's shared
// columnar arenas — the pruned TA path aliases MinID/MaxID directly as its
// random-access search arrays, with no per-query copy.
type BlockSlice struct {
	MinID []media.ObjectID
	MaxID []media.ObjectID
	MaxSF []float64
	MaxSM []float64
	MinSM []float64
}

// Len returns the number of blocks in the view.
func (b BlockSlice) Len() int { return len(b.MinID) }

// Block assembles row i of the view — the boundary helper for the gob wire
// format and tests; hot paths read the columns directly.
func (b BlockSlice) Block(i int) Block {
	return Block{MinID: b.MinID[i], MaxID: b.MaxID[i], MaxSF: b.MaxSF[i], MaxSM: b.MaxSM[i], MinSM: b.MinSM[i]}
}

// blockSliceOf builds an owned columnar view from row form (the legacy gob
// decode path), backed by two allocations regardless of block count.
func blockSliceOf(rows []Block) BlockSlice {
	n := len(rows)
	if n == 0 {
		return BlockSlice{}
	}
	ids := make([]media.ObjectID, 2*n)
	fs := make([]float64, 3*n)
	b := BlockSlice{
		MinID: ids[:n:n], MaxID: ids[n : 2*n : 2*n],
		MaxSF: fs[:n:n], MaxSM: fs[n : 2*n : 2*n], MinSM: fs[2*n : 3*n : 3*n],
	}
	for i, r := range rows {
		b.MinID[i], b.MaxID[i] = r.MinID, r.MaxID
		b.MaxSF[i], b.MaxSM[i], b.MinSM[i] = r.MaxSF, r.MaxSM, r.MinSM
	}
	return b
}

// rows converts the view back to row form (the legacy gob encode path).
func (b BlockSlice) rows() []Block {
	if b.Len() == 0 {
		return nil
	}
	out := make([]Block, b.Len())
	for i := range out {
		out[i] = b.Block(i)
	}
	return out
}

// BlocksAt returns the entry's block summaries if they were computed at
// the given statistics generation — the same freshness contract as CorSAt.
// Both components depend on corpus-global state (object totals and the
// correlation tables), so after an Insert the blocks of untouched entries
// describe a corpus that no longer exists; serving them would silently
// break the admission bound, the same failure class as the stale-weight
// bug the generation stamps were introduced for.
func (e *Entry) BlocksAt(gen uint64) (BlockSlice, bool) {
	if e.corsGen != gen || e.blocks.Len() == 0 {
		return BlockSlice{}, false
	}
	return e.blocks, true
}

// blockScorer returns the scorer the build uses to evaluate
// PotentialParts. The parameters are placeholders — both components are
// parameter-independent — but a scorer needs a valid set to construct, and
// sharing one across the build lets the per-(feature, object) smoothing
// cache amortise across entries that share features.
func blockScorer(m *corr.Model) *mrf.Scorer {
	s, err := mrf.NewScorer(m, mrf.Params{Lambda: []float64{1}, Delta: 1})
	if err != nil {
		// Params above are statically valid; reaching here is a bug.
		panic("index: blockScorer: " + err.Error())
	}
	return s
}

// computeBlocks (re)builds an entry's block summaries from the current
// corpus, into owned columnar storage (sealing later migrates it into the
// shared arenas). Callers stamp the entry's generation alongside, as with
// CorS.
//
// An entry whose feature set names FIDs outside the dictionary (possible
// through Insert with caller-synthesized cliques) gets blocks without
// smoothing summaries: the correlation tables cannot describe unknown
// features — the scoring paths would equally fail on such an entry — while
// the set-frequency component needs only the candidate's own counts and
// stays exact (an unknown feature never occurs in a candidate, so its
// set frequency, like its conditional, is zero).
func computeBlocks(s *mrf.Scorer, corpus *media.Corpus, e *Entry) {
	n := len(e.Objects)
	if n == 0 {
		e.blocks = BlockSlice{}
		return
	}
	known := true
	for _, fid := range e.Feats {
		if int(fid) >= corpus.Dict.Len() {
			known = false
			break
		}
	}
	nb := (n + BlockLen - 1) / BlockLen
	ids := make([]media.ObjectID, 2*nb)
	fs := make([]float64, 3*nb)
	b := BlockSlice{
		MinID: ids[:nb:nb], MaxID: ids[nb : 2*nb : 2*nb],
		MaxSF: fs[:nb:nb], MaxSM: fs[nb : 2*nb : 2*nb], MinSM: fs[2*nb : 3*nb : 3*nb],
	}
	for bi := 0; bi < nb; bi++ {
		lo := bi * BlockLen
		hi := lo + BlockLen
		if hi > n {
			hi = n
		}
		b.MinID[bi], b.MaxID[bi] = e.Objects[lo], e.Objects[hi-1]
		first := true
		for _, oid := range e.Objects[lo:hi] {
			var sf, sm float64
			if known {
				sf, sm = s.PotentialParts(e.Feats, corpus.Object(oid))
			}
			if first || sf > b.MaxSF[bi] {
				b.MaxSF[bi] = sf
			}
			if first || sm > b.MaxSM[bi] {
				b.MaxSM[bi] = sm
			}
			if first || sm < b.MinSM[bi] {
				b.MinSM[bi] = sm
			}
			first = false
		}
	}
	e.blocks = b
}
