package index

import (
	"bytes"
	"encoding/gob"
	"testing"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
)

// blockWorld is a corpus wide enough that common cliques span several
// posting blocks: every object carries "common" (200 postings, 4 blocks),
// halves and thirds carry "even"/"third".
func blockWorld(t testing.TB) (*media.Corpus, *corr.Model) {
	t.Helper()
	c := media.NewCorpus()
	tf := func(n string) media.Feature { return media.Feature{Kind: media.Text, Name: n} }
	for i := 0; i < 200; i++ {
		names := []string{"common"}
		if i%2 == 0 {
			names = append(names, "even")
		}
		if i%3 == 0 {
			names = append(names, "third")
		}
		feats := make([]media.Feature, len(names))
		counts := make([]int, len(names))
		for j, n := range names {
			feats[j] = tf(n)
			counts[j] = 1 + (i+j)%3
		}
		if _, err := c.Add(feats, counts, i%12); err != nil {
			t.Fatal(err)
		}
	}
	tax, err := lexicon.Generate([]lexicon.TopicGroup{
		{Name: "stuff", Domain: "things", Words: []string{"common", "even", "third"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, corr.NewModel(corr.NewStats(c), tax, nil, nil, nil, nil)
}

// TestBlocksCoverPostings: every entry's summaries partition its posting
// list into BlockLen runs whose ID ranges are exactly the runs' first and
// last postings, and they are served fresh at the build generation.
func TestBlocksCoverPostings(t *testing.T) {
	_, m := blockWorld(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	gen := m.Generation()
	multi := 0
	for _, e := range inv.Entries() {
		blocks, ok := e.BlocksAt(gen)
		if !ok {
			t.Fatalf("entry %v: no fresh blocks at build generation", e.Feats)
		}
		want := (len(e.Objects) + BlockLen - 1) / BlockLen
		if blocks.Len() != want {
			t.Fatalf("entry %v: %d blocks over %d postings, want %d", e.Feats, blocks.Len(), len(e.Objects), want)
		}
		if want > 1 {
			multi++
		}
		for bi := 0; bi < blocks.Len(); bi++ {
			b := blocks.Block(bi)
			lo := bi * BlockLen
			hi := lo + BlockLen
			if hi > len(e.Objects) {
				hi = len(e.Objects)
			}
			if b.MinID != e.Objects[lo] || b.MaxID != e.Objects[hi-1] {
				t.Fatalf("entry %v block %d: range [%d,%d], postings run [%d,%d]",
					e.Feats, bi, b.MinID, b.MaxID, e.Objects[lo], e.Objects[hi-1])
			}
			for _, oid := range e.Objects[lo:hi] {
				if oid < b.MinID || oid > b.MaxID {
					t.Fatalf("entry %v block %d: posting %d outside [%d,%d]", e.Feats, bi, oid, b.MinID, b.MaxID)
				}
			}
		}
	}
	if multi == 0 {
		t.Fatal("no multi-block entry in fixture; coverage test is vacuous")
	}
}

// TestBlockBoundsSound: for every posting, the covering block's summary
// dominates the posting's actual conditional components — the property the
// query-time admission bound is assembled from.
func TestBlockBoundsSound(t *testing.T) {
	_, m := blockWorld(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	s := blockScorer(m)
	corpus := m.Stats.Corpus()
	for _, e := range inv.Entries() {
		blocks, ok := e.BlocksAt(m.Generation())
		if !ok {
			t.Fatalf("entry %v: no fresh blocks", e.Feats)
		}
		for j, oid := range e.Objects {
			b := blocks.Block(j / BlockLen)
			sf, sm := s.PotentialParts(e.Feats, corpus.Object(oid))
			if sf > b.MaxSF {
				t.Fatalf("entry %v posting %d: sf %v exceeds block MaxSF %v", e.Feats, oid, sf, b.MaxSF)
			}
			if sm > b.MaxSM {
				t.Fatalf("entry %v posting %d: sm %v exceeds block MaxSM %v", e.Feats, oid, sm, b.MaxSM)
			}
			if sm < b.MinSM {
				t.Fatalf("entry %v posting %d: sm %v below block MinSM %v", e.Feats, oid, sm, b.MinSM)
			}
		}
	}
}

// TestBlocksSaveLoadRoundTrip: summaries persist bit-exactly and come back
// fresh (generation 0, matching a freshly constructed model).
func TestBlocksSaveLoadRoundTrip(t *testing.T) {
	_, m := blockWorld(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	gen := m.Generation()
	var buf bytes.Buffer
	if err := inv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range inv.Entries() {
		eb, ok := e.BlocksAt(gen)
		if !ok {
			t.Fatalf("entry %v: no fresh blocks before save", e.Feats)
		}
		le, ok := got.Lookup(fig.Clique{Feats: e.Feats})
		if !ok {
			t.Fatalf("clique %v missing after load", e.Feats)
		}
		lb, ok := le.BlocksAt(0)
		if !ok {
			t.Fatalf("entry %v: blocks not fresh after load", e.Feats)
		}
		if lb.Len() != eb.Len() {
			t.Fatalf("entry %v: %d blocks after load, want %d", e.Feats, lb.Len(), eb.Len())
		}
		for i := 0; i < lb.Len(); i++ {
			if lb.Block(i) != eb.Block(i) {
				t.Fatalf("entry %v block %d differs after load: %+v vs %+v", e.Feats, i, lb.Block(i), eb.Block(i))
			}
		}
	}
}

// TestLoadLegacyStreamWithoutBlocks: files written before the Blocks field
// existed decode into entries with no summaries, which BlocksAt reports as
// unprunable rather than failing — old snapshots keep loading and simply
// search unpruned.
func TestLoadLegacyStreamWithoutBlocks(t *testing.T) {
	type legacyEntry struct {
		Feats   []media.FID
		CorS    float64
		Objects []media.ObjectID
		Fresh   bool
	}
	rows := []legacyEntry{
		{Feats: []media.FID{1}, CorS: 0.5, Objects: []media.ObjectID{0, 3, 7}, Fresh: true},
		{Feats: []media.FID{1, 2}, CorS: 0.25, Objects: []media.ObjectID{3}, Fresh: false},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rows); err != nil {
		t.Fatal(err)
	}
	inv, err := Load(&buf)
	if err != nil {
		t.Fatalf("legacy stream rejected: %v", err)
	}
	for _, row := range rows {
		e, ok := inv.Lookup(fig.Clique{Feats: row.Feats})
		if !ok {
			t.Fatalf("clique %v missing", row.Feats)
		}
		if e.CorS != row.CorS || len(e.Objects) != len(row.Objects) {
			t.Fatalf("entry %v corrupted by legacy decode", row.Feats)
		}
		if _, ok := e.BlocksAt(0); ok {
			t.Fatalf("entry %v: legacy entry served blocks it cannot have", row.Feats)
		}
	}
}

// TestInsertRefreshesBlocks pins the freshness half of the admission
// bound's correctness: every Insert recomputes the summaries of the
// entries it touches (stamping them at the new generation) and leaves
// untouched entries' summaries stale — BlocksAt must refuse those, since
// they describe pre-insert corpus statistics.
func TestInsertRefreshesBlocks(t *testing.T) {
	c, m := blockWorld(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	tf := func(n string) media.Feature { return media.Feature{Kind: media.Text, Name: n} }
	o, err := c.Add([]media.Feature{tf("common"), tf("even")}, []int{2, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Stats.Append(o); err != nil {
		t.Fatal(err)
	}
	m.InvalidateCache()
	commonID, _ := c.Dict.Lookup(tf("common"))
	evenID, _ := c.Dict.Lookup(tf("even"))
	thirdID, _ := c.Dict.Lookup(tf("third"))
	touched := []fig.Clique{{Feats: []media.FID{commonID}}, {Feats: []media.FID{evenID}}}
	if err := inv.Insert(o.ID, touched, m); err != nil {
		t.Fatal(err)
	}
	gen := m.Generation()
	for _, q := range touched {
		e, ok := inv.Lookup(q)
		if !ok {
			t.Fatalf("touched clique %v missing", q.Feats)
		}
		blocks, ok := e.BlocksAt(gen)
		if !ok {
			t.Fatalf("touched entry %v: blocks not refreshed by Insert", q.Feats)
		}
		if want := (len(e.Objects) + BlockLen - 1) / BlockLen; blocks.Len() != want {
			t.Fatalf("touched entry %v: %d blocks over %d postings, want %d", q.Feats, blocks.Len(), len(e.Objects), want)
		}
		if last := blocks.Block(blocks.Len() - 1); last.MaxID != o.ID {
			t.Fatalf("touched entry %v: last block ends at %d, inserted object is %d", q.Feats, last.MaxID, o.ID)
		}
	}
	ue, ok := inv.Lookup(fig.Clique{Feats: []media.FID{thirdID}})
	if !ok {
		t.Fatal("untouched clique missing")
	}
	if _, ok := ue.BlocksAt(gen); ok {
		t.Fatal("untouched entry served stale blocks as fresh after Insert")
	}
	if _, ok := ue.BlocksAt(gen - 1); !ok {
		t.Fatal("untouched entry lost its build-generation blocks")
	}
}
