// Package index implements the inverted list on cliques of Section 3.5:
// every database object is converted to its Feature Interaction Graph, the
// graph's cliques are enumerated, and for each clique the index stores the
// correlation strength CorS of its features together with the list of
// objects containing the clique. At query time the index yields, for every
// clique of the query's FIG, the candidate objects sharing that clique —
// Algorithm 1's InvList(c_i) — so retrieval avoids a sequential scan of D.
package index

import (
	"fmt"
	"sort"
	"sync"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/par"
)

// Entry is one inverted-list row: the clique's correlation-strength weight
// and the sorted postings of objects whose FIG contains the clique. CorS
// is the Eq. 9 importance weight as defined by corr.Stats.CliqueWeight —
// exactly the value the MRF scorer would compute at query time, so the
// indexed search paths serve it from here instead of recomputing it.
//
// CliqueWeight depends on corpus-global statistics, so a stored CorS is
// only the scorer's value for the corpus state it was computed from. Each
// entry therefore carries the corr.Model statistics generation of that
// computation; readers go through CorSAt, which refuses to serve a value
// from another generation.
type Entry struct {
	Feats   []media.FID
	CorS    float64
	Objects []media.ObjectID

	// Blocks are the block-max summaries over Objects (see blocks.go).
	// They share corsGen: blocks and CorS are always recomputed together,
	// and both go stale together when the corpus moves on. Read through
	// BlocksAt.
	Blocks []Block

	// corsGen is the model generation CorS was computed at. staleGen
	// marks a value known to predate the current corpus (set by Load for
	// entries that were already stale when saved).
	corsGen uint64
}

// staleGen is a generation stamp no live model ever reaches, marking an
// entry whose CorS must not be served at any generation.
const staleGen = ^uint64(0)

// CorSAt returns the stored Eq. 9 weight if it was computed at the given
// statistics generation. After an Insert grew the corpus, entries the
// insert did not touch fail this check and callers must recompute through
// the scorer (whose cache is stamped with the same generations).
func (e *Entry) CorSAt(gen uint64) (float64, bool) {
	if e.corsGen != gen {
		return 0, false
	}
	return e.CorS, true
}

// Inverted is the clique inverted index. It is immutable after Build and
// safe for concurrent reads.
type Inverted struct {
	entries map[string]*Entry
	// gen is the model generation of the most recent full or partial CorS
	// refresh (Build, Insert or Load); an entry is up to date iff its own
	// stamp equals it. Save uses this to persist staleness.
	gen uint64
}

// Build constructs the index over the model's corpus: each object's FIG is
// built with bopts and its cliques enumerated with eopts (the same options
// later used on queries, so query cliques line up with indexed cliques).
// FIG construction and entry weighting fan out across CPUs; see
// BuildWorkers to pin the fan-out. The result is deterministic.
func Build(m *corr.Model, bopts fig.Options, eopts fig.EnumerateOptions) *Inverted {
	return BuildWorkers(m, bopts, eopts, 0)
}

// BuildWorkers is Build with a bounded fan-out (0 = NumCPU, mirroring
// retrieval.Config.Workers). The index is identical at any worker count:
// the FIG stage merges per-worker results in object-ID order, and the
// closing weighting stage stripes the entries — sorted once by clique key —
// across workers that each write only their own disjoint entries, computing
// the corpus-global Eq. 9 weight with a per-worker scratch.
func BuildWorkers(m *corr.Model, bopts fig.Options, eopts fig.EnumerateOptions, wopt int) *Inverted {
	return BuildOwnedWorkers(m, bopts, eopts, wopt, nil)
}

// BuildOwnedWorkers builds the index over the subset of corpus objects for
// which owns returns true (nil = every object) — the per-shard builder of
// the scatter-gather serving subsystem. Only the postings are partitioned:
// each entry's CorS stays the corpus-global Eq. 9 weight computed from the
// full statistics, so a shard scores its candidates exactly as a corpus-wide
// index would. Deterministic at any worker count, same as BuildWorkers.
func BuildOwnedWorkers(m *corr.Model, bopts fig.Options, eopts fig.EnumerateOptions, wopt int, owns func(media.ObjectID) bool) *Inverted {
	corpus := m.Stats.Corpus()
	n := corpus.Len()
	workers := par.Workers(wopt, n)
	type objCliques struct {
		id      media.ObjectID
		cliques []fig.Clique
	}
	results := make([][]objCliques, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				o := corpus.Object(media.ObjectID(i))
				if owns != nil && !owns(o.ID) {
					continue
				}
				g := fig.Build(o, m, bopts)
				results[w] = append(results[w], objCliques{id: o.ID, cliques: g.Cliques(eopts)})
			}
		}(w)
	}
	wg.Wait()

	inv := &Inverted{entries: make(map[string]*Entry)}
	// Merge in object-ID order so postings come out sorted. Worker w visited
	// IDs w, w+workers, … in increasing order and kept only the owned ones,
	// so replaying the same stripe walk with a filter consumes each worker's
	// list exactly in step.
	cursors := make([]int, workers)
	for i := 0; i < n; i++ {
		if owns != nil && !owns(media.ObjectID(i)) {
			continue
		}
		w := i % workers
		oc := results[w][cursors[w]]
		cursors[w]++
		for _, c := range oc.cliques {
			key := c.Key()
			e, ok := inv.entries[key]
			if !ok {
				e = &Entry{Feats: append([]media.FID(nil), c.Feats...)}
				inv.entries[key] = e
			}
			if len(e.Objects) == 0 || e.Objects[len(e.Objects)-1] != oc.id {
				e.Objects = append(e.Objects, oc.id)
			}
		}
	}
	// Attach the stored correlation-strength weights (the Eq. 9 quantity
	// the scorer applies, already clamped non-negative), stamped with the
	// statistics generation they were computed from. This loop dominates
	// the build at scale — one posting-list merge plus z-score pass per
	// distinct clique — and every weight is a pure function of one entry
	// and the immutable statistics, so entries stripe across workers
	// writing disjoint rows (trivially deterministic; the key sort only
	// keeps the partitioning stable).
	gen := m.Generation()
	inv.gen = gen
	keys := make([]string, 0, len(inv.entries))
	for key := range inv.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	bs := blockScorer(m)
	par.Range(len(keys), wopt, func(lo, hi int) {
		var ws corr.WeightScratch
		for i := lo; i < hi; i++ {
			e := inv.entries[keys[i]]
			e.CorS = m.Stats.CliqueWeightWith(e.Feats, &ws)
			computeBlocks(bs, corpus, e)
			e.corsGen = gen
		}
	})
	return inv
}

// Lookup returns the index entry for a clique's feature set.
func (inv *Inverted) Lookup(c fig.Clique) (*Entry, bool) {
	e, ok := inv.entries[c.Key()]
	return e, ok
}

// LookupKey is Lookup with a precomputed clique key (fig.Clique.Key) —
// for callers resolving the same cliques against many shard indexes.
func (inv *Inverted) LookupKey(key string) (*Entry, bool) {
	e, ok := inv.entries[key]
	return e, ok
}

// NumCliques returns the number of distinct indexed cliques.
func (inv *Inverted) NumCliques() int { return len(inv.entries) }

// Postings returns the total number of postings across all cliques.
func (inv *Inverted) Postings() int {
	total := 0
	for _, e := range inv.entries {
		total += len(e.Objects)
	}
	return total
}

// Entries returns all entries sorted by descending posting-list length,
// useful for diagnostics and the Figure 6 qualitative drill-down.
func (inv *Inverted) Entries() []*Entry {
	out := make([]*Entry, 0, len(inv.entries))
	for _, e := range inv.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Objects) != len(out[j].Objects) {
			return len(out[i].Objects) > len(out[j].Objects)
		}
		return lessFIDs(out[i].Feats, out[j].Feats)
	})
	return out
}

func lessFIDs(a, b []media.FID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Insert adds one object's cliques to the index: new postings are appended
// (the object ID must exceed all indexed IDs so lists stay sorted) and the
// stored CorS and block summaries of every touched clique are recomputed
// from the model's current statistics and stamped with its generation.
// Entries the insert does not touch keep their old generation stamp:
// CliqueWeight and the block maxima are corpus-global, so their stored
// values no longer describe the grown corpus, and CorSAt/BlocksAt report
// them stale — the indexed search paths then fall back to the scorer
// (respectively, to unpruned scoring) instead of serving diverged state.
// Build from scratch refreshes (and restamps) everything.
func (inv *Inverted) Insert(id media.ObjectID, cliques []fig.Clique, m *corr.Model) error {
	touched := make([]*Entry, 0, len(cliques))
	for _, c := range cliques {
		key := c.Key()
		e, ok := inv.entries[key]
		if !ok {
			e = &Entry{Feats: append([]media.FID(nil), c.Feats...)}
			inv.entries[key] = e
		}
		if n := len(e.Objects); n > 0 && e.Objects[n-1] >= id {
			if e.Objects[n-1] == id {
				continue // duplicate clique of the same object
			}
			return fmt.Errorf("index: object %d inserted out of order", id)
		}
		e.Objects = append(e.Objects, id)
		touched = append(touched, e)
	}
	gen := m.Generation()
	inv.gen = gen
	bs := blockScorer(m)
	corpus := m.Stats.Corpus()
	for _, e := range touched {
		e.CorS = m.Stats.CliqueWeight(e.Feats)
		computeBlocks(bs, corpus, e)
		e.corsGen = gen
	}
	return nil
}
