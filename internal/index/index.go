// Package index implements the inverted list on cliques of Section 3.5:
// every database object is converted to its Feature Interaction Graph, the
// graph's cliques are enumerated, and for each clique the index stores the
// correlation strength CorS of its features together with the list of
// objects containing the clique. At query time the index yields, for every
// clique of the query's FIG, the candidate objects sharing that clique —
// Algorithm 1's InvList(c_i) — so retrieval avoids a sequential scan of D.
//
// Memory layout: after Build or Load the index is sealed into flat arenas —
// all postings in one shared []media.ObjectID, all feature lists in one
// shared []media.FID, all block summaries in columnar float64/ObjectID
// arrays, and all entry headers in one []Entry slice — with each Entry
// holding (offset, length) views into the shared storage. A
// millions-of-objects index is then a handful of large allocations instead
// of per-clique pointer soup, which is what keeps steady-state RSS
// postings-sized and lets the segment loader reconstruct the index with a
// few bulk copies. Insert still works after sealing: entry views carry
// capacity == length, so appending a posting copy-on-writes that one entry
// out of the arena without disturbing its neighbours.
package index

import (
	"fmt"
	"sort"
	"sync"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/par"
)

// Entry is one inverted-list row: the clique's correlation-strength weight
// and the sorted postings of objects whose FIG contains the clique. CorS
// is the Eq. 9 importance weight as defined by corr.Stats.CliqueWeight —
// exactly the value the MRF scorer would compute at query time, so the
// indexed search paths serve it from here instead of recomputing it.
//
// CliqueWeight depends on corpus-global statistics, so a stored CorS is
// only the scorer's value for the corpus state it was computed from. Each
// entry therefore carries the corr.Model statistics generation of that
// computation; readers go through CorSAt, which refuses to serve a value
// from another generation.
//
// Feats and Objects are views into the index's shared arenas once the
// index is sealed (they carry cap == len, so appends copy out rather than
// clobber a neighbour's postings); block summaries live behind BlocksAt as
// columnar views for the same reason.
type Entry struct {
	Feats   []media.FID
	CorS    float64
	Objects []media.ObjectID

	// blocks are the block-max summaries over Objects (see blocks.go),
	// stored columnar. They share corsGen: blocks and CorS are always
	// recomputed together, and both go stale together when the corpus
	// moves on. Read through BlocksAt.
	blocks BlockSlice

	// corsGen is the model generation CorS was computed at. staleGen
	// marks a value known to predate the current corpus (set by Load for
	// entries that were already stale when saved).
	corsGen uint64
}

// staleGen is a generation stamp no live model ever reaches, marking an
// entry whose CorS must not be served at any generation.
const staleGen = ^uint64(0)

// CorSAt returns the stored Eq. 9 weight if it was computed at the given
// statistics generation. After an Insert grew the corpus, entries the
// insert did not touch fail this check and callers must recompute through
// the scorer (whose cache is stamped with the same generations).
func (e *Entry) CorSAt(gen uint64) (float64, bool) {
	if e.corsGen != gen {
		return 0, false
	}
	return e.CorS, true
}

// arena is the sealed index's flat backing storage. keys is the sorted,
// interned clique-key table (the same string instances the lookup map
// keys on); ents holds every entry header in key order; the remaining
// slices back the per-entry views. Sealing never appends to these — an
// Insert that grows an entry copies that entry's view out instead — so
// *Entry pointers into ents stay valid for the life of the index.
type arena struct {
	keys  []string
	ents  []Entry
	feats []media.FID
	posts []media.ObjectID

	// Columnar block-summary storage, aligned across the five arrays.
	blkMinID []media.ObjectID
	blkMaxID []media.ObjectID
	blkMaxSF []float64
	blkMaxSM []float64
	blkMinSM []float64
}

// Inverted is the clique inverted index. It is immutable after Build and
// safe for concurrent reads.
type Inverted struct {
	entries map[string]*Entry
	// gen is the model generation of the most recent full or partial CorS
	// refresh (Build, Insert or Load); an entry is up to date iff its own
	// stamp equals it. Save uses this to persist staleness.
	gen uint64
	// arena is the flat backing storage (nil only mid-construction; Build
	// and Load both seal before returning).
	arena *arena
	// extraKeys are clique keys Insert added after sealing, unsorted.
	// SaveAt merges them with the arena's sorted key table instead of
	// re-sorting the whole key space on every save.
	extraKeys []string
	// loadStats records how the index was loaded (nil for built indexes);
	// see LoadStats.
	loadStats *LoadStats
}

// Build constructs the index over the model's corpus: each object's FIG is
// built with bopts and its cliques enumerated with eopts (the same options
// later used on queries, so query cliques line up with indexed cliques).
// FIG construction and entry weighting fan out across CPUs; see
// BuildWorkers to pin the fan-out. The result is deterministic.
func Build(m *corr.Model, bopts fig.Options, eopts fig.EnumerateOptions) *Inverted {
	return BuildWorkers(m, bopts, eopts, 0)
}

// BuildWorkers is Build with a bounded fan-out (0 = NumCPU, mirroring
// retrieval.Config.Workers). The index is identical at any worker count:
// the FIG stage merges per-worker results in object-ID order, and the
// closing weighting stage stripes the entries — sorted once by clique key —
// across workers that each write only their own disjoint entries, computing
// the corpus-global Eq. 9 weight with a per-worker scratch.
func BuildWorkers(m *corr.Model, bopts fig.Options, eopts fig.EnumerateOptions, wopt int) *Inverted {
	return BuildOwnedWorkers(m, bopts, eopts, wopt, nil)
}

// BuildOwnedWorkers builds the index over the subset of corpus objects for
// which owns returns true (nil = every object) — the per-shard builder of
// the scatter-gather serving subsystem. Only the postings are partitioned:
// each entry's CorS stays the corpus-global Eq. 9 weight computed from the
// full statistics, so a shard scores its candidates exactly as a corpus-wide
// index would. Deterministic at any worker count, same as BuildWorkers.
func BuildOwnedWorkers(m *corr.Model, bopts fig.Options, eopts fig.EnumerateOptions, wopt int, owns func(media.ObjectID) bool) *Inverted {
	corpus := m.Stats.Corpus()
	n := corpus.Len()
	workers := par.Workers(wopt, n)
	type objCliques struct {
		id      media.ObjectID
		cliques []fig.Clique
	}
	results := make([][]objCliques, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				o := corpus.Object(media.ObjectID(i))
				if owns != nil && !owns(o.ID) {
					continue
				}
				g := fig.Build(o, m, bopts)
				results[w] = append(results[w], objCliques{id: o.ID, cliques: g.Cliques(eopts)})
			}
		}(w)
	}
	wg.Wait()

	inv := &Inverted{entries: make(map[string]*Entry)}
	// Merge in object-ID order so postings come out sorted. Worker w visited
	// IDs w, w+workers, … in increasing order and kept only the owned ones,
	// so replaying the same stripe walk with a filter consumes each worker's
	// list exactly in step.
	cursors := make([]int, workers)
	for i := 0; i < n; i++ {
		if owns != nil && !owns(media.ObjectID(i)) {
			continue
		}
		w := i % workers
		oc := results[w][cursors[w]]
		cursors[w]++
		for _, c := range oc.cliques {
			key := c.Key()
			e, ok := inv.entries[key]
			if !ok {
				e = &Entry{Feats: append([]media.FID(nil), c.Feats...)}
				inv.entries[key] = e
			}
			if len(e.Objects) == 0 || e.Objects[len(e.Objects)-1] != oc.id {
				e.Objects = append(e.Objects, oc.id)
			}
		}
	}
	// Attach the stored correlation-strength weights (the Eq. 9 quantity
	// the scorer applies, already clamped non-negative), stamped with the
	// statistics generation they were computed from. This loop dominates
	// the build at scale — one posting-list merge plus z-score pass per
	// distinct clique — and every weight is a pure function of one entry
	// and the immutable statistics, so entries stripe across workers
	// writing disjoint rows (trivially deterministic; the key sort only
	// keeps the partitioning stable).
	gen := m.Generation()
	inv.gen = gen
	keys := make([]string, 0, len(inv.entries))
	for key := range inv.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	bs := blockScorer(m)
	par.Range(len(keys), wopt, func(lo, hi int) {
		var ws corr.WeightScratch
		for i := lo; i < hi; i++ {
			e := inv.entries[keys[i]]
			e.CorS = m.Stats.CliqueWeightWith(e.Feats, &ws)
			computeBlocks(bs, corpus, e)
			e.corsGen = gen
		}
	})
	inv.seal(keys)
	return inv
}

// seal flattens the index's per-entry storage into shared arenas: one copy
// pass in sorted-key order, after which the map's values point into the
// arena's entry slice and every per-entry slice from construction is
// garbage. keys must be the sorted key table covering exactly the map.
func (inv *Inverted) seal(keys []string) {
	a := &arena{keys: keys, ents: make([]Entry, len(keys))}
	var nFeats, nPosts, nBlocks int
	for _, k := range keys {
		e := inv.entries[k]
		nFeats += len(e.Feats)
		nPosts += len(e.Objects)
		nBlocks += e.blocks.Len()
	}
	a.feats = make([]media.FID, 0, nFeats)
	a.posts = make([]media.ObjectID, 0, nPosts)
	a.blkMinID = make([]media.ObjectID, 0, nBlocks)
	a.blkMaxID = make([]media.ObjectID, 0, nBlocks)
	a.blkMaxSF = make([]float64, 0, nBlocks)
	a.blkMaxSM = make([]float64, 0, nBlocks)
	a.blkMinSM = make([]float64, 0, nBlocks)
	for i, k := range keys {
		e := inv.entries[k]
		fo, po, bo := len(a.feats), len(a.posts), len(a.blkMinID)
		a.feats = append(a.feats, e.Feats...)
		a.posts = append(a.posts, e.Objects...)
		a.blkMinID = append(a.blkMinID, e.blocks.MinID...)
		a.blkMaxID = append(a.blkMaxID, e.blocks.MaxID...)
		a.blkMaxSF = append(a.blkMaxSF, e.blocks.MaxSF...)
		a.blkMaxSM = append(a.blkMaxSM, e.blocks.MaxSM...)
		a.blkMinSM = append(a.blkMinSM, e.blocks.MinSM...)
		a.ents[i] = Entry{
			Feats:   a.feats[fo:len(a.feats):len(a.feats)],
			CorS:    e.CorS,
			Objects: a.posts[po:len(a.posts):len(a.posts)],
			blocks:  a.blockView(bo, len(a.blkMinID)),
			corsGen: e.corsGen,
		}
		inv.entries[k] = &a.ents[i]
	}
	inv.arena = a
	inv.extraKeys = nil
}

// blockView returns the columnar view over block rows [lo, hi), capped so
// appends copy out of the arena.
func (a *arena) blockView(lo, hi int) BlockSlice {
	return BlockSlice{
		MinID: a.blkMinID[lo:hi:hi],
		MaxID: a.blkMaxID[lo:hi:hi],
		MaxSF: a.blkMaxSF[lo:hi:hi],
		MaxSM: a.blkMaxSM[lo:hi:hi],
		MinSM: a.blkMinSM[lo:hi:hi],
	}
}

// sortedKeys returns every clique key in sorted order, reusing the sealed
// arena's interned key table: with no post-seal inserts it is returned
// as-is (zero allocation), otherwise the few inserted keys are sorted and
// merged with it. Only an unsealed index (never produced by Build or Load)
// pays a full collect-and-sort.
func (inv *Inverted) sortedKeys() []string {
	if inv.arena != nil && len(inv.extraKeys) == 0 {
		return inv.arena.keys
	}
	if inv.arena != nil {
		extras := append([]string(nil), inv.extraKeys...)
		sort.Strings(extras)
		base := inv.arena.keys
		out := make([]string, 0, len(base)+len(extras))
		i, j := 0, 0
		for i < len(base) && j < len(extras) {
			if base[i] <= extras[j] {
				out = append(out, base[i])
				i++
			} else {
				out = append(out, extras[j])
				j++
			}
		}
		out = append(out, base[i:]...)
		out = append(out, extras[j:]...)
		return out
	}
	keys := make([]string, 0, len(inv.entries))
	for k := range inv.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Lookup returns the index entry for a clique's feature set.
func (inv *Inverted) Lookup(c fig.Clique) (*Entry, bool) {
	e, ok := inv.entries[c.Key()]
	return e, ok
}

// LookupKey is Lookup with a precomputed clique key (fig.Clique.Key) —
// for callers resolving the same cliques against many shard indexes.
func (inv *Inverted) LookupKey(key string) (*Entry, bool) {
	e, ok := inv.entries[key]
	return e, ok
}

// NumCliques returns the number of distinct indexed cliques.
func (inv *Inverted) NumCliques() int { return len(inv.entries) }

// Postings returns the total number of postings across all cliques.
func (inv *Inverted) Postings() int {
	total := 0
	for _, e := range inv.entries {
		total += len(e.Objects)
	}
	return total
}

// MemoryBytes estimates the index's resident heap footprint: the arena
// payloads (postings, feature lists, columnar block summaries, entry
// headers, key bytes) plus a fixed per-entry estimate for the lookup map's
// bucket overhead. Entries grown or added by Insert after sealing are
// counted through the same per-entry accounting. The number is an
// estimate — Go's allocator rounds size classes — but it tracks the real
// footprint closely enough for the index.resident.bytes gauge to be
// meaningful.
func (inv *Inverted) MemoryBytes() int64 {
	// Per-entry fixed cost: the Entry header (three slice headers, a
	// float64, a uint64, the BlockSlice's five slice headers ≈ 200 B) plus
	// the lookup map's per-key bucket share (string header + pointer +
	// bucket overhead ≈ 48 B).
	const perEntry = 248
	var b int64
	var nPosts, nFeats, nBlocks, keyBytes int64
	if inv.arena != nil {
		nPosts = int64(cap(inv.arena.posts))
		nFeats = int64(cap(inv.arena.feats))
		nBlocks = int64(cap(inv.arena.blkMinID))
		for _, k := range inv.arena.keys {
			keyBytes += int64(len(k))
		}
		// Entries copied out of the arena by Insert double-count their
		// arena slots; that slack is real (the arena keeps the dead bytes).
		for _, k := range inv.extraKeys {
			keyBytes += int64(len(k))
			e := inv.entries[k]
			nPosts += int64(cap(e.Objects))
			nFeats += int64(cap(e.Feats))
			nBlocks += int64(cap(e.blocks.MinID))
		}
	} else {
		for k, e := range inv.entries {
			keyBytes += int64(len(k))
			nPosts += int64(cap(e.Objects))
			nFeats += int64(cap(e.Feats))
			nBlocks += int64(cap(e.blocks.MinID))
		}
	}
	b += nPosts * 4            // postings
	b += nFeats * 4            // feature lists
	b += nBlocks * (2*4 + 3*8) // columnar block summaries
	b += keyBytes              // interned key bytes (map and table share them)
	b += int64(len(inv.entries)) * perEntry
	return b
}

// Entries returns all entries sorted by descending posting-list length,
// useful for diagnostics and the Figure 6 qualitative drill-down.
func (inv *Inverted) Entries() []*Entry {
	out := make([]*Entry, 0, len(inv.entries))
	for _, e := range inv.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Objects) != len(out[j].Objects) {
			return len(out[i].Objects) > len(out[j].Objects)
		}
		return lessFIDs(out[i].Feats, out[j].Feats)
	})
	return out
}

func lessFIDs(a, b []media.FID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Insert adds one object's cliques to the index: new postings are appended
// (the object ID must exceed all indexed IDs so lists stay sorted) and the
// stored CorS and block summaries of every touched clique are recomputed
// from the model's current statistics and stamped with its generation.
// Entries the insert does not touch keep their old generation stamp:
// CliqueWeight and the block maxima are corpus-global, so their stored
// values no longer describe the grown corpus, and CorSAt/BlocksAt report
// them stale — the indexed search paths then fall back to the scorer
// (respectively, to unpruned scoring) instead of serving diverged state.
// Build from scratch refreshes (and restamps) everything.
//
// On a sealed index the append copy-on-writes the touched entry's views
// out of the shared arenas (their capacity equals their length), so
// neighbouring entries' postings are never disturbed; new cliques get
// individually allocated entries tracked in extraKeys for SaveAt's merge.
func (inv *Inverted) Insert(id media.ObjectID, cliques []fig.Clique, m *corr.Model) error {
	touched := make([]*Entry, 0, len(cliques))
	for _, c := range cliques {
		key := c.Key()
		e, ok := inv.entries[key]
		if !ok {
			e = &Entry{Feats: append([]media.FID(nil), c.Feats...)}
			inv.entries[key] = e
			if inv.arena != nil {
				inv.extraKeys = append(inv.extraKeys, key)
			}
		}
		if n := len(e.Objects); n > 0 && e.Objects[n-1] >= id {
			if e.Objects[n-1] == id {
				continue // duplicate clique of the same object
			}
			return fmt.Errorf("index: object %d inserted out of order", id)
		}
		e.Objects = append(e.Objects, id)
		touched = append(touched, e)
	}
	gen := m.Generation()
	inv.gen = gen
	bs := blockScorer(m)
	corpus := m.Stats.Corpus()
	for _, e := range touched {
		e.CorS = m.Stats.CliqueWeight(e.Feats)
		computeBlocks(bs, corpus, e)
		e.corsGen = gen
	}
	return nil
}
