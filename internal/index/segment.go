// Binary segment snapshot format ("FSG1"): the persisted form of the
// inverted index, designed so that loading is a handful of bulk decodes
// into the flat arenas of index.go rather than a row-at-a-time rebuild,
// and so the snapshot is postings-sized, not framing-sized.
//
// Layout (all fixed-width integers little-endian):
//
//	header   32 B   magic "FSG1" · version u32 · flags u32 ·
//	                sectionCount u32 · generation u64 · entryCount u64
//	dir      4×24 B per section: kind u32 · reserved u32 · offset u64 · length u64
//	tables          per-entry varint directory, in clique-key order:
//	                uvarint featCount · uvarint featBytes ·
//	                uvarint postCount · uvarint postBytes · uvarint blockCount
//	meta            CorS f64[n], then freshness bitmap ⌈n/8⌉ B
//	streams         per-entry feature streams concatenated (varint-delta:
//	                uvarint(first FID), then uvarint gaps), then per-entry
//	                posting streams concatenated (varint-delta, same shape)
//	blocks          columnar block summaries: maxSF f64[Σb] · maxSM f64[Σb] ·
//	                minSM f64[Σb]
//	trailer  20 B   CRC32-IEEE of each section payload (4×u32), then
//	                CRC32-IEEE of header+directory (u32)
//
// Everything derivable is derived instead of stored: clique keys are
// fig.KeyOf of the feature list, recomputed on load into the interned key
// table; block ID ranges (MinID/MaxID) are the first and last posting of
// each BlockLen run, reconstructed from the decoded postings — an entry's
// blockCount must be 0 or exactly ⌈postCount/BlockLen⌉, which the writer
// enforces by refusing to persist summaries that don't partition the
// posting list. Feature lists and posting lists are strictly increasing,
// so both delta-varint-code to ~1–2 bytes per element; the block maxima
// stay raw f64 because the pruned search paths must see bit-exact bounds.
//
// The load path is a cheap serial prefix scan of the tables section (five
// uvarints per entry, yielding every per-entry payload offset), then
// parallel decode: workers take disjoint entry ranges and write fixed,
// precomputed arena slots — the package determinism contract — so the
// loaded index is identical at any worker count.
//
// Every malformed input must fail with an "index: segment: ..." error —
// never a panic, never a silently partial index. The reader therefore
// validates the full structure (magic, version, directory contiguity,
// per-section CRCs, table consistency, cross-section totals) before and
// during decode, and bounds every read against the declared section.
package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"sync"

	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/par"
)

const (
	segMagic       = "FSG1"
	segVersion     = 1
	segHeaderLen   = 32
	segDirEntryLen = 24
	segNumSections = 4
	segTrailerLen  = 4*segNumSections + 4
	segDirStart    = segHeaderLen
	segPayloadOff  = segHeaderLen + segNumSections*segDirEntryLen
)

// Section indices, in file order.
const (
	segSecTables = iota
	segSecMeta
	segSecStreams
	segSecBlocks
)

var segSectionNames = [segNumSections]string{"tables", "meta", "streams", "blocks"}

func segErrf(format string, args ...any) error {
	return fmt.Errorf("index: segment: "+format, args...)
}

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// deltaStreamLen returns the varint-delta-encoded size of one strictly
// increasing int32 list (postings or feature lists).
func deltaStreamLen[T ~int32](vals []T) int {
	if len(vals) == 0 {
		return 0
	}
	n := uvarintLen(uint64(uint32(vals[0])))
	for i := 1; i < len(vals); i++ {
		n += uvarintLen(uint64(uint32(vals[i]) - uint32(vals[i-1])))
	}
	return n
}

// persistableBlocks reports how many block summaries of e the format can
// carry: the full set when they partition the posting list into BlockLen
// runs (always true for computeBlocks output, and what lets the reader
// rebuild MinID/MaxID from the postings), zero otherwise — an entry
// without persisted summaries loads as unprunable, which the pruning
// layer already treats as "search this list unpruned".
func persistableBlocks(e *Entry) int {
	nb := e.blocks.Len()
	if nb == 0 || nb != (len(e.Objects)+BlockLen-1)/BlockLen {
		return 0
	}
	for bi := 0; bi < nb; bi++ {
		lo := bi * BlockLen
		hi := lo + BlockLen
		if hi > len(e.Objects) {
			hi = len(e.Objects)
		}
		if e.blocks.MinID[bi] != e.Objects[lo] || e.blocks.MaxID[bi] != e.Objects[hi-1] {
			return 0
		}
	}
	return nb
}

// segWriter streams one section: bytes go to the buffered writer while a
// CRC32 accumulates, with sticky error handling.
type segWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	buf [binary.MaxVarintLen64]byte
	err error
}

func (s *segWriter) bytes(p []byte) {
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(p); err != nil {
		s.err = err
		return
	}
	s.crc.Write(p)
}

func (s *segWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(s.buf[:4], v)
	s.bytes(s.buf[:4])
}

func (s *segWriter) f64(v float64) {
	binary.LittleEndian.PutUint64(s.buf[:8], math.Float64bits(v))
	s.bytes(s.buf[:8])
}

func (s *segWriter) uvarint(v uint64) {
	n := binary.PutUvarint(s.buf[:], v)
	s.bytes(s.buf[:n])
}

// deltaStream writes one strictly increasing int32 list in varint-delta
// form.
func (s *segWriter) deltaStream(vals []media.ObjectID) {
	for i, v := range vals {
		if i == 0 {
			s.uvarint(uint64(uint32(v)))
		} else {
			s.uvarint(uint64(uint32(v) - uint32(vals[i-1])))
		}
	}
}

// endSection returns the finished section's CRC and resets for the next.
func (s *segWriter) endSection() uint32 {
	c := s.crc.Sum32()
	s.crc.Reset()
	return c
}

// writeSegment writes the index in segment format. gen is the freshness
// authority, exactly as in SaveAt: an entry is persisted fresh iff its
// CorS/blocks were computed at that generation.
func (inv *Inverted) writeSegment(w io.Writer, gen uint64) error {
	keys := inv.sortedKeys()
	n := len(keys)
	ents := make([]*Entry, n)
	featBytes := make([]int, n)
	postBytes := make([]int, n)
	blkCount := make([]int, n)
	var tablesLen, streamsLen, totalBlocks int
	for i, k := range keys {
		e := inv.entries[k]
		if e == nil {
			return segErrf("write: no entry for key %q", k)
		}
		for j := 1; j < len(e.Feats); j++ {
			if e.Feats[j] <= e.Feats[j-1] {
				return segErrf("write: entry %q has an unsorted feature list", k)
			}
		}
		ents[i] = e
		featBytes[i] = deltaStreamLen(e.Feats)
		postBytes[i] = deltaStreamLen(e.Objects)
		blkCount[i] = persistableBlocks(e)
		totalBlocks += blkCount[i]
		streamsLen += featBytes[i] + postBytes[i]
		tablesLen += uvarintLen(uint64(len(e.Feats))) + uvarintLen(uint64(featBytes[i])) +
			uvarintLen(uint64(len(e.Objects))) + uvarintLen(uint64(postBytes[i])) +
			uvarintLen(uint64(blkCount[i]))
	}
	metaLen := 8*n + (n+7)/8
	blocksLen := 24 * totalBlocks

	// Header + directory, checksummed together into the trailer.
	hdr := make([]byte, segPayloadOff)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 0) // flags
	binary.LittleEndian.PutUint32(hdr[12:], segNumSections)
	binary.LittleEndian.PutUint64(hdr[16:], gen)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(n))
	off := uint64(segPayloadOff)
	for i, ln := range []int{tablesLen, metaLen, streamsLen, blocksLen} {
		d := hdr[segDirStart+i*segDirEntryLen:]
		binary.LittleEndian.PutUint32(d, uint32(i+1)) // kind
		binary.LittleEndian.PutUint32(d[4:], 0)       // reserved
		binary.LittleEndian.PutUint64(d[8:], off)
		binary.LittleEndian.PutUint64(d[16:], uint64(ln))
		off += uint64(ln)
	}
	headerCRC := crc32.ChecksumIEEE(hdr)

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr); err != nil {
		return segErrf("write: %w", err)
	}
	s := &segWriter{w: bw, crc: crc32.NewIEEE()}
	var crcs [segNumSections]uint32

	// tables: the per-entry varint directory.
	for i, e := range ents {
		s.uvarint(uint64(len(e.Feats)))
		s.uvarint(uint64(featBytes[i]))
		s.uvarint(uint64(len(e.Objects)))
		s.uvarint(uint64(postBytes[i]))
		s.uvarint(uint64(blkCount[i]))
	}
	crcs[segSecTables] = s.endSection()

	// meta: CorS values, then the freshness bitmap.
	for _, e := range ents {
		s.f64(e.CorS)
	}
	var bit, acc byte
	for _, e := range ents {
		if e.corsGen == gen {
			acc |= 1 << bit
		}
		if bit++; bit == 8 {
			s.bytes([]byte{acc})
			bit, acc = 0, 0
		}
	}
	if bit != 0 {
		s.bytes([]byte{acc})
	}
	crcs[segSecMeta] = s.endSection()

	// streams: feature streams, then posting streams.
	for _, e := range ents {
		for j, fid := range e.Feats {
			if j == 0 {
				s.uvarint(uint64(uint32(fid)))
			} else {
				s.uvarint(uint64(uint32(fid) - uint32(e.Feats[j-1])))
			}
		}
	}
	for _, e := range ents {
		s.deltaStream(e.Objects)
	}
	crcs[segSecStreams] = s.endSection()

	// blocks: the three columnar float arrays.
	for _, col := range [3]func(BlockSlice) []float64{
		func(b BlockSlice) []float64 { return b.MaxSF },
		func(b BlockSlice) []float64 { return b.MaxSM },
		func(b BlockSlice) []float64 { return b.MinSM },
	} {
		for i, e := range ents {
			for _, v := range col(e.blocks)[:blkCount[i]] {
				s.f64(v)
			}
		}
	}
	crcs[segSecBlocks] = s.endSection()

	for _, c := range crcs {
		s.u32(c)
	}
	s.u32(headerCRC)
	if s.err != nil {
		return segErrf("write: %w", s.err)
	}
	if err := bw.Flush(); err != nil {
		return segErrf("write: %w", err)
	}
	return nil
}

// segLayout is the validated frame of a segment file: header fields,
// section byte ranges (contiguous by construction) and the trailer CRCs.
type segLayout struct {
	version   uint32
	gen       uint64
	n         int
	secOff    [segNumSections]int
	secLen    [segNumSections]int
	crcs      [segNumSections]uint32
	headerCRC uint32
}

func (l *segLayout) section(data []byte, i int) []byte {
	return data[l.secOff[i] : l.secOff[i]+l.secLen[i]]
}

// parseSegLayout validates everything outside the section payloads: magic,
// version, directory shape and contiguity, and the header checksum.
func parseSegLayout(data []byte) (*segLayout, error) {
	if len(data) < segPayloadOff+segTrailerLen {
		return nil, segErrf("truncated: %d bytes, need at least %d for header+trailer", len(data), segPayloadOff+segTrailerLen)
	}
	if string(data[:4]) != segMagic {
		return nil, segErrf("bad magic %q", data[:4])
	}
	l := &segLayout{version: binary.LittleEndian.Uint32(data[4:])}
	if l.version != segVersion {
		return nil, segErrf("unsupported format version %d (want %d)", l.version, segVersion)
	}
	if sc := binary.LittleEndian.Uint32(data[12:]); sc != segNumSections {
		return nil, segErrf("unexpected section count %d (want %d)", sc, segNumSections)
	}
	l.gen = binary.LittleEndian.Uint64(data[16:])
	nEnt := binary.LittleEndian.Uint64(data[24:])
	if nEnt > math.MaxInt32 {
		return nil, segErrf("implausible entry count %d", nEnt)
	}
	l.n = int(nEnt)
	trailer := data[len(data)-segTrailerLen:]
	for i := range l.crcs {
		l.crcs[i] = binary.LittleEndian.Uint32(trailer[4*i:])
	}
	l.headerCRC = binary.LittleEndian.Uint32(trailer[4*segNumSections:])
	if got := crc32.ChecksumIEEE(data[:segPayloadOff]); got != l.headerCRC {
		return nil, segErrf("header checksum mismatch: file says %08x, computed %08x", l.headerCRC, got)
	}
	payloadEnd := uint64(len(data) - segTrailerLen)
	want := uint64(segPayloadOff)
	for i := 0; i < segNumSections; i++ {
		d := data[segDirStart+i*segDirEntryLen:]
		if kind := binary.LittleEndian.Uint32(d); kind != uint32(i+1) {
			return nil, segErrf("directory entry %d has kind %d (want %d)", i, kind, i+1)
		}
		off := binary.LittleEndian.Uint64(d[8:])
		ln := binary.LittleEndian.Uint64(d[16:])
		if off != want {
			return nil, segErrf("%s section at offset %d, want %d (sections must be contiguous)", segSectionNames[i], off, want)
		}
		if ln > payloadEnd-off {
			return nil, segErrf("%s section of %d bytes overruns the file", segSectionNames[i], ln)
		}
		l.secOff[i], l.secLen[i] = int(off), int(ln)
		want = off + ln
	}
	if want != payloadEnd {
		return nil, segErrf("%d bytes of trailing garbage between sections and trailer", payloadEnd-want)
	}
	return l, nil
}

// segTables is the prefix-scanned per-entry directory: cumulative counts
// and byte offsets for every payload, plus the totals they imply. All
// cross-section consistency is validated here, so the parallel decode can
// slice blindly.
type segTables struct {
	featCnt []int // n+1, cumulative feature counts
	featOff []int // n+1, cumulative feature-stream byte offsets
	postCnt []int // n+1, cumulative posting counts
	postOff []int // n+1, cumulative posting-stream byte offsets (within the postings region)
	blkCnt  []int // n+1, cumulative block counts

	totalFeats  int
	totalPosts  int
	totalBlocks int
	featRegion  int // bytes of the streams section holding feature streams
}

// parseSegTables runs the serial prefix scan of the tables section,
// validating each record and the cross-section totals.
func parseSegTables(data []byte, l *segLayout) (*segTables, error) {
	n := l.n
	if wantMeta := 8*n + (n+7)/8; l.secLen[segSecMeta] != wantMeta {
		return nil, segErrf("meta section is %d bytes, want %d for %d entries", l.secLen[segSecMeta], wantMeta, n)
	}
	streamsLen := l.secLen[segSecStreams]
	t := &segTables{
		featCnt: make([]int, n+1),
		featOff: make([]int, n+1),
		postCnt: make([]int, n+1),
		postOff: make([]int, n+1),
		blkCnt:  make([]int, n+1),
	}
	raw := l.section(data, segSecTables)
	pos := 0
	next := func(what string, i int, bound int) (int, error) {
		v, sz := binary.Uvarint(raw[pos:])
		if sz <= 0 {
			return 0, segErrf("entry %d: tables section ends mid-%s", i, what)
		}
		pos += sz
		if v > uint64(bound) {
			return 0, segErrf("entry %d: %s %d exceeds bound %d", i, what, v, bound)
		}
		return int(v), nil
	}
	for i := 0; i < n; i++ {
		fc, err := next("feature count", i, streamsLen)
		if err != nil {
			return nil, err
		}
		fb, err := next("feature bytes", i, streamsLen)
		if err != nil {
			return nil, err
		}
		pc, err := next("posting count", i, streamsLen)
		if err != nil {
			return nil, err
		}
		pb, err := next("posting bytes", i, streamsLen)
		if err != nil {
			return nil, err
		}
		// A varint element takes at least one byte.
		if fc > fb || pc > pb {
			return nil, segErrf("entry %d: %d+%d elements cannot fit in %d+%d stream bytes", i, fc, pc, fb, pb)
		}
		wantBlocks := (pc + BlockLen - 1) / BlockLen
		bc, err := next("block count", i, wantBlocks)
		if err != nil {
			return nil, err
		}
		if bc != 0 && bc != wantBlocks {
			return nil, segErrf("entry %d: %d blocks cannot partition %d postings (want 0 or %d)", i, bc, pc, wantBlocks)
		}
		t.featCnt[i+1] = t.featCnt[i] + fc
		t.featOff[i+1] = t.featOff[i] + fb
		t.postCnt[i+1] = t.postCnt[i] + pc
		t.postOff[i+1] = t.postOff[i] + pb
		t.blkCnt[i+1] = t.blkCnt[i] + bc
		if t.featOff[i+1]+t.postOff[i+1] > streamsLen {
			return nil, segErrf("entry %d: streams overrun the section (%d+%d of %d bytes)", i, t.featOff[i+1], t.postOff[i+1], streamsLen)
		}
	}
	if pos != len(raw) {
		return nil, segErrf("%d bytes of trailing garbage in the tables section", len(raw)-pos)
	}
	t.totalFeats = t.featCnt[n]
	t.totalPosts = t.postCnt[n]
	t.totalBlocks = t.blkCnt[n]
	t.featRegion = t.featOff[n]
	if t.featRegion+t.postOff[n] != streamsLen {
		return nil, segErrf("streams section holds %d bytes, tables account for %d", streamsLen, t.featRegion+t.postOff[n])
	}
	if want := 24 * t.totalBlocks; l.secLen[segSecBlocks] != want {
		return nil, segErrf("blocks section is %d bytes, want %d for %d blocks", l.secLen[segSecBlocks], want, t.totalBlocks)
	}
	return t, nil
}

// decodeDelta decodes one varint-delta stream of want strictly increasing
// int32 values into dst (len(dst) == want), returning a descriptive error
// on any malformation.
func decodeDelta[T ~int32](seg []byte, dst []T, i int, what string) error {
	pos, prev := 0, uint64(0)
	for j := range dst {
		v, sz := binary.Uvarint(seg[pos:])
		if sz <= 0 {
			return segErrf("entry %d: %s stream ends mid-varint", i, what)
		}
		pos += sz
		if v > math.MaxUint32 {
			// Also rules out uint64 wraparound in the delta sum below
			// sneaking past the int32 range check.
			return segErrf("entry %d: %s varint %d out of range", i, what, v)
		}
		if j > 0 {
			if v == 0 {
				return segErrf("entry %d: zero %s delta (duplicate value)", i, what)
			}
			v += prev
		}
		if v > math.MaxInt32 {
			return segErrf("entry %d: %s value %d overflows int32", i, what, v)
		}
		dst[j] = T(v)
		prev = v
	}
	if pos != len(seg) {
		return segErrf("entry %d: %d unconsumed bytes in %s range", i, len(seg)-pos, what)
	}
	return nil
}

// readSegment decodes a segment snapshot into a sealed index, fanning the
// per-section CRC verification and the per-entry payload decodes out over
// workers (0 = NumCPU). Decode targets are fixed, disjoint arena slots, so
// the result is identical at any worker count.
func readSegment(data []byte, workers int) (*Inverted, error) {
	l, err := parseSegLayout(data)
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}

	// Verify payload integrity before trusting any of it. CRC32 cannot be
	// split mid-section without a combine step, so parallelism is across
	// the four sections.
	par.Range(segNumSections, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if got := crc32.ChecksumIEEE(l.section(data, i)); got != l.crcs[i] {
				fail(segErrf("%s section checksum mismatch: file says %08x, computed %08x", segSectionNames[i], l.crcs[i], got))
			}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}

	t, err := parseSegTables(data, l)
	if err != nil {
		return nil, err
	}
	n := l.n

	a := &arena{
		keys:     make([]string, n),
		ents:     make([]Entry, n),
		feats:    make([]media.FID, t.totalFeats),
		posts:    make([]media.ObjectID, t.totalPosts),
		blkMinID: make([]media.ObjectID, t.totalBlocks),
		blkMaxID: make([]media.ObjectID, t.totalBlocks),
		blkMaxSF: make([]float64, t.totalBlocks),
		blkMaxSM: make([]float64, t.totalBlocks),
		blkMinSM: make([]float64, t.totalBlocks),
	}

	meta := l.section(data, segSecMeta)
	corsData, freshBits := meta[:8*n], meta[8*n:]
	streams := l.section(data, segSecStreams)
	featRegion, postRegion := streams[:t.featRegion], streams[t.featRegion:]

	par.Range(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fo, f1 := t.featCnt[i], t.featCnt[i+1]
			fv := a.feats[fo:f1:f1]
			if err := decodeDelta(featRegion[t.featOff[i]:t.featOff[i+1]], fv, i, "feature"); err != nil {
				fail(err)
				return
			}
			a.keys[i] = fig.KeyOf(fv)

			po, p1 := t.postCnt[i], t.postCnt[i+1]
			pv := a.posts[po:p1:p1]
			if err := decodeDelta(postRegion[t.postOff[i]:t.postOff[i+1]], pv, i, "posting"); err != nil {
				fail(err)
				return
			}

			// Rebuild the block ID ranges from the postings they summarize.
			bo, b1 := t.blkCnt[i], t.blkCnt[i+1]
			for bi := 0; bi < b1-bo; bi++ {
				plo := bi * BlockLen
				phi := plo + BlockLen
				if phi > len(pv) {
					phi = len(pv)
				}
				a.blkMinID[bo+bi] = pv[plo]
				a.blkMaxID[bo+bi] = pv[phi-1]
			}

			gen := uint64(staleGen)
			if freshBits[i/8]&(1<<(i%8)) != 0 {
				gen = 0
			}
			a.ents[i] = Entry{
				Feats:   fv,
				CorS:    math.Float64frombits(binary.LittleEndian.Uint64(corsData[8*i:])),
				Objects: pv,
				blocks:  a.blockView(bo, b1),
				corsGen: gen,
			}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}

	// The columnar float arrays decode independently of the entry loop.
	tb := t.totalBlocks
	blk := l.section(data, segSecBlocks)
	maxSF, maxSM, minSM := blk, blk[8*tb:], blk[16*tb:]
	par.Range(tb, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.blkMaxSF[i] = math.Float64frombits(binary.LittleEndian.Uint64(maxSF[8*i:]))
			a.blkMaxSM[i] = math.Float64frombits(binary.LittleEndian.Uint64(maxSM[8*i:]))
			a.blkMinSM[i] = math.Float64frombits(binary.LittleEndian.Uint64(minSM[8*i:]))
		}
	})

	// Serial assembly: the lookup map interns the same key instances as
	// the arena table. Entries loaded fresh are stamped generation 0, the
	// stamp of a freshly constructed model over the paired dataset.
	inv := &Inverted{entries: make(map[string]*Entry, n), arena: a}
	for i := range a.keys {
		if i > 0 && a.keys[i] <= a.keys[i-1] {
			return nil, segErrf("entries out of clique-key order at %d", i)
		}
		inv.entries[a.keys[i]] = &a.ents[i]
	}
	return inv, nil
}

// SectionInfo describes one segment section for inspection tooling.
type SectionInfo struct {
	Name  string
	Bytes int64
	CRC   uint32
	OK    bool // stored CRC matches the payload
}

// SnapshotInfo is what figdata -inspect prints: the header of either
// snapshot format plus cheaply derivable totals.
type SnapshotInfo struct {
	Format     string // "segment" or "gob"
	Version    uint32 // 0 for gob
	Generation uint64 // save-time freshness authority (segment only)
	Bytes      int64
	Entries    int
	Feats      int64
	Postings   int64
	Blocks     int64
	Fresh      int           // entries persisted as fresh
	Sections   []SectionInfo // segment only
	HeaderCRC  uint32        // segment only
}

// inspectSegment summarises a segment file without building the index:
// layout, the tables prefix scan and checksums only — the streams
// themselves are read just by the CRC pass.
func inspectSegment(data []byte) (*SnapshotInfo, error) {
	l, err := parseSegLayout(data)
	if err != nil {
		return nil, err
	}
	t, err := parseSegTables(data, l)
	if err != nil {
		return nil, err
	}
	info := &SnapshotInfo{
		Format:     "segment",
		Version:    l.version,
		Generation: l.gen,
		Bytes:      int64(len(data)),
		Entries:    l.n,
		Feats:      int64(t.totalFeats),
		Postings:   int64(t.totalPosts),
		Blocks:     int64(t.totalBlocks),
		HeaderCRC:  l.headerCRC,
	}
	for i := 0; i < segNumSections; i++ {
		info.Sections = append(info.Sections, SectionInfo{
			Name:  segSectionNames[i],
			Bytes: int64(l.secLen[i]),
			CRC:   l.crcs[i],
			OK:    crc32.ChecksumIEEE(l.section(data, i)) == l.crcs[i],
		})
	}
	meta := l.section(data, segSecMeta)[8*l.n:]
	for i := 0; i < l.n; i++ {
		if meta[i/8]&(1<<(i%8)) != 0 {
			info.Fresh++
		}
	}
	return info, nil
}
