package index

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
)

// widerWorld builds a corpus big enough that BuildWorkers actually stripes:
// dozens of objects drawing random subsets from two topic vocabularies, so
// the index holds enough distinct cliques for multi-worker FIG enumeration
// and weighting chunks.
func widerWorld(t testing.TB) *corr.Model {
	t.Helper()
	pets := []string{"hamster", "animal", "vegetable", "cat", "dog", "fur"}
	vehicles := []string{"car", "engine", "wheel", "road"}
	rng := rand.New(rand.NewSource(4))
	c := media.NewCorpus()
	add := func(vocab []string) {
		var feats []media.Feature
		var counts []int
		for _, n := range vocab {
			if rng.Float64() < 0.5 {
				feats = append(feats, media.Feature{Kind: media.Text, Name: n})
				counts = append(counts, 1+rng.Intn(2))
			}
		}
		if len(feats) == 0 {
			feats = append(feats, media.Feature{Kind: media.Text, Name: vocab[0]})
			counts = append(counts, 1)
		}
		if _, err := c.Add(feats, counts, rng.Intn(6)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			add(pets)
		} else {
			add(vehicles)
		}
	}
	tax, err := lexicon.Generate([]lexicon.TopicGroup{
		{Name: "pets", Domain: "living", Words: pets},
		{Name: "vehicles", Domain: "artifact", Words: vehicles},
	})
	if err != nil {
		t.Fatal(err)
	}
	return corr.NewModel(corr.NewStats(c), tax, nil, nil, nil, nil)
}

func saveBytes(t testing.TB, inv *Inverted) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := inv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBuildWorkersDeterministic: the striped FIG enumeration and the
// chunked weighting loop must assemble a byte-identical index (same
// cliques, postings, CorS weights, serialization) at any worker count.
func TestBuildWorkersDeterministic(t *testing.T) {
	m := widerWorld(t)
	opts, eopts := fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3}
	ref := BuildWorkers(m, opts, eopts, 1)
	if ref.NumCliques() < 10 {
		t.Fatalf("fixture too small to exercise striping: %d cliques", ref.NumCliques())
	}
	refBytes := saveBytes(t, ref)
	for _, w := range []int{2, 3, 4, 0, runtime.NumCPU()} {
		inv := BuildWorkers(m, opts, eopts, w)
		if got := saveBytes(t, inv); !bytes.Equal(got, refBytes) {
			t.Errorf("workers=%d: persisted index differs from serial build (%d vs %d bytes)", w, len(got), len(refBytes))
		}
	}
	// Build is the workers=0 case by definition.
	if got := saveBytes(t, Build(m, opts, eopts)); !bytes.Equal(got, refBytes) {
		t.Error("Build diverges from BuildWorkers")
	}
}

// TestBuildWorkersConcurrentStress hammers the build fan-out from several
// goroutines sharing one model — the correlation caches behind CliqueWeight
// are shared mutable state, so this is the -race probe for the weighting
// stripes.
func TestBuildWorkersConcurrentStress(t *testing.T) {
	m := widerWorld(t)
	opts, eopts := fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3}
	want := saveBytes(t, BuildWorkers(m, opts, eopts, 1))
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				inv := BuildWorkers(m, opts, eopts, workers)
				if got := saveBytes(t, inv); !bytes.Equal(got, want) {
					t.Errorf("workers=%d round %d: concurrent build diverged", workers, round)
					return
				}
			}
		}(1 + g%4)
	}
	wg.Wait()
}
