package index

import (
	"bytes"
	"sort"
	"testing"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
)

// world: three objects over a small pets/vehicles vocabulary.
func world(t testing.TB) (*media.Corpus, *corr.Model, map[string]media.FID) {
	t.Helper()
	c := media.NewCorpus()
	tf := func(n string) media.Feature { return media.Feature{Kind: media.Text, Name: n} }
	add := func(names []string, month int) {
		t.Helper()
		feats := make([]media.Feature, len(names))
		counts := make([]int, len(names))
		for i, n := range names {
			feats[i] = tf(n)
			counts[i] = 1
		}
		if _, err := c.Add(feats, counts, month); err != nil {
			t.Fatal(err)
		}
	}
	add([]string{"hamster", "animal"}, 0)
	add([]string{"hamster", "animal", "vegetable"}, 1)
	add([]string{"car", "engine"}, 2)
	tax, err := lexicon.Generate([]lexicon.TopicGroup{
		{Name: "pets", Domain: "living", Words: []string{"hamster", "animal", "vegetable"}},
		{Name: "vehicles", Domain: "artifact", Words: []string{"car", "engine"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := corr.NewModel(corr.NewStats(c), tax, nil, nil, nil, nil)
	ids := make(map[string]media.FID)
	for _, n := range []string{"hamster", "animal", "vegetable", "car", "engine"} {
		id, ok := c.Dict.Lookup(tf(n))
		if !ok {
			t.Fatalf("missing %s", n)
		}
		ids[n] = id
	}
	return c, m, ids
}

func sortedPair(a, b media.FID) []media.FID {
	s := []media.FID{a, b}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func TestBuildPostings(t *testing.T) {
	_, m, ids := world(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	// Singleton clique {hamster} appears in objects 0 and 1.
	e, ok := inv.Lookup(fig.Clique{Feats: []media.FID{ids["hamster"]}})
	if !ok {
		t.Fatal("hamster clique missing")
	}
	if len(e.Objects) != 2 || e.Objects[0] != 0 || e.Objects[1] != 1 {
		t.Errorf("postings = %v, want [0 1]", e.Objects)
	}
	// Pair clique {hamster, animal} (taxonomy edge) in objects 0 and 1.
	pe, ok := inv.Lookup(fig.Clique{Feats: sortedPair(ids["hamster"], ids["animal"])})
	if !ok {
		t.Fatal("hamster-animal clique missing")
	}
	if len(pe.Objects) != 2 {
		t.Errorf("pair postings = %v", pe.Objects)
	}
	// Vehicles clique only in object 2.
	ve, ok := inv.Lookup(fig.Clique{Feats: sortedPair(ids["car"], ids["engine"])})
	if !ok {
		t.Fatal("car-engine clique missing")
	}
	if len(ve.Objects) != 1 || ve.Objects[0] != 2 {
		t.Errorf("vehicle postings = %v", ve.Objects)
	}
	// Cross-topic cliques must not exist.
	if _, ok := inv.Lookup(fig.Clique{Feats: sortedPair(ids["hamster"], ids["car"])}); ok {
		t.Error("hamster-car clique should not be indexed")
	}
}

func TestBuildPostingsSorted(t *testing.T) {
	_, m, _ := world(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	for _, e := range inv.Entries() {
		if !sort.SliceIsSorted(e.Objects, func(i, j int) bool { return e.Objects[i] < e.Objects[j] }) {
			t.Errorf("postings of %v not sorted: %v", e.Feats, e.Objects)
		}
	}
}

func TestCorSStored(t *testing.T) {
	_, m, ids := world(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	e, ok := inv.Lookup(fig.Clique{Feats: sortedPair(ids["hamster"], ids["animal"])})
	if !ok {
		t.Fatal("clique missing")
	}
	want := m.Stats.CliqueWeight(e.Feats)
	if e.CorS != want {
		t.Errorf("CorS = %v, want %v", e.CorS, want)
	}
	if e.CorS <= 0 {
		t.Errorf("hamster/animal co-occur in both pets objects; CorS = %v, want > 0", e.CorS)
	}
}

func TestNumCliquesAndPostings(t *testing.T) {
	_, m, _ := world(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	if inv.NumCliques() == 0 {
		t.Fatal("no cliques indexed")
	}
	if inv.Postings() < inv.NumCliques() {
		t.Errorf("postings %d < cliques %d", inv.Postings(), inv.NumCliques())
	}
	entries := inv.Entries()
	if len(entries) != inv.NumCliques() {
		t.Errorf("Entries len %d != NumCliques %d", len(entries), inv.NumCliques())
	}
	// Entries sorted by posting length descending.
	for i := 1; i < len(entries); i++ {
		if len(entries[i].Objects) > len(entries[i-1].Objects) {
			t.Error("Entries not sorted by posting length")
		}
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	c := media.NewCorpus()
	m := corr.NewModel(corr.NewStats(c), nil, nil, nil, nil, nil)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{})
	if inv.NumCliques() != 0 {
		t.Errorf("NumCliques = %d, want 0", inv.NumCliques())
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, m, _ := world(t)
	a := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	b := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	if a.NumCliques() != b.NumCliques() || a.Postings() != b.Postings() {
		t.Error("parallel build not deterministic")
	}
	ea, eb := a.Entries(), b.Entries()
	for i := range ea {
		if ea[i].CorS != eb[i].CorS || len(ea[i].Objects) != len(eb[i].Objects) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestQueryCliquesHitIndexedCliques(t *testing.T) {
	// Integration: cliques of a query built with the same options must be
	// found in the index when the query shares features with the corpus.
	c, m, _ := world(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	q := c.Object(1) // in-corpus object as query
	g := fig.Build(q, m, fig.Options{})
	hits := 0
	for _, cl := range g.Cliques(fig.EnumerateOptions{MaxFeatures: 3}) {
		if e, ok := inv.Lookup(cl); ok {
			hits++
			found := false
			for _, oid := range e.Objects {
				if oid == q.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("query object missing from its own clique postings %v", cl.Feats)
			}
		}
	}
	if hits == 0 {
		t.Error("no query cliques found in index")
	}
}

func BenchmarkBuild(b *testing.B) {
	_, m, _ := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, m, _ := world(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	var buf bytes.Buffer
	if err := inv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCliques() != inv.NumCliques() || got.Postings() != inv.Postings() {
		t.Fatalf("shape differs: %d/%d vs %d/%d",
			got.NumCliques(), got.Postings(), inv.NumCliques(), inv.Postings())
	}
	// Every entry matches by key, CorS and postings.
	for _, e := range inv.Entries() {
		le, ok := got.Lookup(fig.Clique{Feats: e.Feats})
		if !ok {
			t.Fatalf("clique %v missing after load", e.Feats)
		}
		if le.CorS != e.CorS || len(le.Objects) != len(e.Objects) {
			t.Fatalf("entry %v differs after load", e.Feats)
		}
		for i := range e.Objects {
			if le.Objects[i] != e.Objects[i] {
				t.Fatalf("postings of %v differ", e.Feats)
			}
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("want error for garbage")
	}
}

func TestInsertIntoIndex(t *testing.T) {
	c, m, ids := world(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	before := inv.Postings()
	// A new object (appended to the corpus) with an existing singleton
	// clique plus a brand-new one.
	o, err := c.Add([]media.Feature{
		{Kind: media.Text, Name: "hamster"},
		{Kind: media.Text, Name: "newtag"},
	}, []int{1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the statistics and bump the generation the way Engine.Insert
	// does before touching the index.
	if err := m.Stats.Append(o); err != nil {
		t.Fatal(err)
	}
	m.InvalidateCache()
	cliques := []fig.Clique{
		{Feats: []media.FID{ids["hamster"]}},
		{Feats: []media.FID{ids["hamster"] + 100}}, // synthetic new clique key
	}
	if err := inv.Insert(o.ID, cliques, m); err != nil {
		t.Fatal(err)
	}
	if inv.Postings() != before+2 {
		t.Errorf("postings = %d, want %d", inv.Postings(), before+2)
	}
	e, ok := inv.Lookup(cliques[0])
	if !ok || e.Objects[len(e.Objects)-1] != o.ID {
		t.Error("inserted posting missing")
	}
	// Touched entries are restamped with the post-insert generation;
	// untouched entries report stale there but stay valid at the build
	// generation.
	gen := m.Generation()
	for _, c := range cliques {
		te, ok := inv.Lookup(c)
		if !ok {
			t.Fatalf("touched clique %v missing", c.Feats)
		}
		if _, ok := te.CorSAt(gen); !ok {
			t.Errorf("touched entry %v not fresh at generation %d", te.Feats, gen)
		}
	}
	ve, ok := inv.Lookup(fig.Clique{Feats: sortedPair(ids["car"], ids["engine"])})
	if !ok {
		t.Fatal("car-engine clique missing")
	}
	if _, ok := ve.CorSAt(gen); ok {
		t.Error("untouched entry served as fresh after insert")
	}
	if _, ok := ve.CorSAt(gen - 1); !ok {
		t.Error("untouched entry no longer valid at its build generation")
	}
	// Out-of-order insert rejected.
	if err := inv.Insert(0, cliques, m); err == nil {
		t.Error("want error for out-of-order insert")
	}
}
