package index

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"figfusion/internal/fig"
	"figfusion/internal/media"
)

// buildWithStale builds the blockWorld index and then inserts one object
// touching two cliques (one existing, one new), so the result exercises
// every persistence case at once: fresh entries, stale entries, a sealed
// arena, and a post-seal extraKeys entry.
func buildWithStale(t *testing.T) (*Inverted, uint64) {
	t.Helper()
	c, m := blockWorld(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	tf := func(n string) media.Feature { return media.Feature{Kind: media.Text, Name: n} }
	o, err := c.Add([]media.Feature{tf("common"), tf("fresh-tag")}, []int{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Stats.Append(o); err != nil {
		t.Fatal(err)
	}
	m.InvalidateCache()
	commonID, _ := c.Dict.Lookup(tf("common"))
	newID, _ := c.Dict.Lookup(tf("fresh-tag"))
	cliques := []fig.Clique{
		{Feats: []media.FID{commonID}},
		{Feats: []media.FID{newID}}, // not indexed before: exercises extraKeys
	}
	if err := inv.Insert(o.ID, cliques, m); err != nil {
		t.Fatal(err)
	}
	return inv, m.Generation()
}

// entriesEqual compares two indexes entry by entry, including freshness at
// wantGen and the block summaries.
func entriesEqual(t *testing.T, want, got *Inverted, wantGen, gotGen uint64) {
	t.Helper()
	if got.NumCliques() != want.NumCliques() || got.Postings() != want.Postings() {
		t.Fatalf("shape differs: %d cliques/%d postings vs %d/%d",
			got.NumCliques(), got.Postings(), want.NumCliques(), want.Postings())
	}
	for _, e := range want.Entries() {
		le, ok := got.LookupKey(fig.KeyOf(e.Feats))
		if !ok {
			t.Fatalf("clique %v missing", e.Feats)
		}
		if le.CorS != e.CorS {
			t.Fatalf("entry %v: CorS %v vs %v", e.Feats, le.CorS, e.CorS)
		}
		if len(le.Objects) != len(e.Objects) {
			t.Fatalf("entry %v: %d postings vs %d", e.Feats, len(le.Objects), len(e.Objects))
		}
		for i := range e.Objects {
			if le.Objects[i] != e.Objects[i] {
				t.Fatalf("entry %v: posting %d is %d, want %d", e.Feats, i, le.Objects[i], e.Objects[i])
			}
		}
		_, wantFresh := e.CorSAt(wantGen)
		_, gotFresh := le.CorSAt(gotGen)
		if wantFresh != gotFresh {
			t.Fatalf("entry %v: fresh=%v, want %v", e.Feats, gotFresh, wantFresh)
		}
		wb, wok := e.BlocksAt(wantGen)
		gb, gok := le.BlocksAt(gotGen)
		if wok != gok || wb.Len() != gb.Len() {
			t.Fatalf("entry %v: blocks (%v,%d) vs (%v,%d)", e.Feats, gok, gb.Len(), wok, wb.Len())
		}
		for i := 0; i < wb.Len(); i++ {
			if wb.Block(i) != gb.Block(i) {
				t.Fatalf("entry %v block %d: %+v vs %+v", e.Feats, i, gb.Block(i), wb.Block(i))
			}
		}
	}
}

// TestSegmentRoundTrip: a save at the current generation round-trips
// entries, postings, block summaries and per-entry staleness exactly, at
// any loader fan-out, through the sealed-arena and extraKeys paths alike.
func TestSegmentRoundTrip(t *testing.T) {
	inv, gen := buildWithStale(t)
	var buf bytes.Buffer
	if err := inv.SaveAt(&buf, gen); err != nil {
		t.Fatal(err)
	}
	if !isSegment(buf.Bytes()) {
		t.Fatal("Save did not write segment magic")
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := LoadWorkers(bytes.NewReader(buf.Bytes()), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		entriesEqual(t, inv, got, gen, 0)
	}
}

// TestSegmentSaveDeterministic: the same index serializes to the same
// bytes, save after save.
func TestSegmentSaveDeterministic(t *testing.T) {
	inv, gen := buildWithStale(t)
	var a, b bytes.Buffer
	if err := inv.SaveAt(&a, gen); err != nil {
		t.Fatal(err)
	}
	if err := inv.SaveAt(&b, gen); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same index differ")
	}
}

// TestSegmentEmptyRoundTrip: a zero-entry index survives the format.
func TestSegmentEmptyRoundTrip(t *testing.T) {
	inv := &Inverted{entries: make(map[string]*Entry)}
	inv.seal(nil)
	var buf bytes.Buffer
	if err := inv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCliques() != 0 {
		t.Fatalf("NumCliques = %d, want 0", got.NumCliques())
	}
}

func segmentBytes(t *testing.T) []byte {
	t.Helper()
	inv, gen := buildWithStale(t)
	var buf bytes.Buffer
	if err := inv.SaveAt(&buf, gen); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func wantSegmentError(t *testing.T, data []byte, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: reader panicked: %v", what, r)
		}
	}()
	inv, err := readSegment(data, 4)
	if err == nil {
		t.Fatalf("%s: corrupt segment loaded without error", what)
	}
	if inv != nil {
		t.Fatalf("%s: error return carried a partial index", what)
	}
	if !strings.HasPrefix(err.Error(), "index: segment: ") {
		t.Fatalf("%s: error %q lacks the index: segment: prefix", what, err)
	}
}

// TestSegmentTruncation: every proper prefix of a valid segment file is
// rejected with a descriptive error — no panic, no partial index.
func TestSegmentTruncation(t *testing.T) {
	data := segmentBytes(t)
	for n := 0; n < len(data); n++ {
		wantSegmentError(t, data[:n], "truncated")
	}
}

// TestSegmentBitFlips: flipping any single bit of a valid segment file is
// detected. Every byte is covered by the header checksum, a section
// checksum, or is itself part of the checksum trailer.
func TestSegmentBitFlips(t *testing.T) {
	data := segmentBytes(t)
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit += 3 {
			copy(mut, data)
			mut[i] ^= 1 << bit
			wantSegmentError(t, mut, "bit-flipped")
		}
	}
}

// TestSegmentGarbage: structurally invalid inputs with a valid magic fail
// descriptively rather than panicking or over-allocating.
func TestSegmentGarbage(t *testing.T) {
	cases := map[string][]byte{
		"magic only":   []byte(segMagic),
		"short header": append([]byte(segMagic), make([]byte, 10)...),
		"zeroed frame": append([]byte(segMagic), make([]byte, 400)...),
		"huge entrycount": func() []byte {
			b := make([]byte, 4096)
			copy(b, segMagic)
			b[4] = segVersion
			b[12] = segNumSections
			for i := 24; i < 32; i++ {
				b[i] = 0xff // entryCount = 2^64-1
			}
			return b
		}(),
	}
	for name, data := range cases {
		wantSegmentError(t, data, name)
	}
	// And through the public entry point, with a bad magic falling back to
	// the gob path: still an error, never a panic.
	if _, err := Load(bytes.NewReader([]byte("NOTASEGMENTFILE"))); err == nil {
		t.Fatal("garbage without segment magic loaded without error")
	}
}

// TestSegmentVersionGate: a bumped format version is refused up front.
func TestSegmentVersionGate(t *testing.T) {
	data := append([]byte(nil), segmentBytes(t)...)
	data[4] = segVersion + 1
	wantSegmentError(t, data, "future version")
}

// TestLoadStatsRecorded: loads report format, size and fan-out.
func TestLoadStatsRecorded(t *testing.T) {
	inv, gen := buildWithStale(t)
	var seg bytes.Buffer
	if err := inv.SaveAt(&seg, gen); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWorkers(bytes.NewReader(seg.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	st := got.LoadStats()
	if st == nil || st.Format != "segment" || st.Bytes != int64(seg.Len()) || st.Workers != 2 {
		t.Fatalf("segment load stats = %+v", st)
	}
	var legacy bytes.Buffer
	if err := inv.SaveLegacyGob(&legacy, gen); err != nil {
		t.Fatal(err)
	}
	lg, err := Load(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st := lg.LoadStats(); st == nil || st.Format != "gob" || st.Bytes != int64(legacy.Len()) {
		t.Fatalf("legacy load stats = %+v", st)
	}
	if inv.LoadStats() != nil {
		t.Fatal("built index reports load stats")
	}
}

// TestInspectSnapshot: the inspector agrees with the index it summarizes,
// in both formats.
func TestInspectSnapshot(t *testing.T) {
	inv, gen := buildWithStale(t)
	var seg, legacy bytes.Buffer
	if err := inv.SaveAt(&seg, gen); err != nil {
		t.Fatal(err)
	}
	if err := inv.SaveLegacyGob(&legacy, gen); err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for _, e := range inv.Entries() {
		if _, ok := e.CorSAt(gen); ok {
			fresh++
		}
	}
	si, err := InspectSnapshot(bytes.NewReader(seg.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if si.Format != "segment" || si.Version != segVersion || si.Generation != gen {
		t.Fatalf("segment header = %+v", si)
	}
	if si.Entries != inv.NumCliques() || si.Postings != int64(inv.Postings()) || si.Fresh != fresh {
		t.Fatalf("segment totals = %+v, want %d entries / %d postings / %d fresh",
			si, inv.NumCliques(), inv.Postings(), fresh)
	}
	if len(si.Sections) != segNumSections {
		t.Fatalf("%d sections, want %d", len(si.Sections), segNumSections)
	}
	var sum int64 = segPayloadOff + segTrailerLen
	for _, s := range si.Sections {
		if !s.OK {
			t.Fatalf("section %s reports checksum mismatch on a clean file", s.Name)
		}
		sum += s.Bytes
	}
	if sum != si.Bytes {
		t.Fatalf("sections+frame = %d bytes, file is %d", sum, si.Bytes)
	}
	gi, err := InspectSnapshot(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gi.Format != "gob" || gi.Entries != si.Entries || gi.Postings != si.Postings ||
		gi.Blocks != si.Blocks || gi.Fresh != si.Fresh {
		t.Fatalf("gob inspect %+v disagrees with segment inspect %+v", gi, si)
	}
	// The corrupted-section case still inspects, flagging the section.
	data := append([]byte(nil), seg.Bytes()...)
	data[len(data)-segTrailerLen-1] ^= 0x40 // last payload byte (blocks section)
	ci, err := InspectSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if ci.Sections[3].OK {
		t.Fatal("inspect did not flag the corrupted blocks section")
	}
}

// TestKeyEncoderParity: the index's persisted/interned keys and
// fig.Clique.Key are the same encoder — a clique addressed either way hits
// the same entry, including after a snapshot round trip.
func TestKeyEncoderParity(t *testing.T) {
	_, m := blockWorld(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	var buf bytes.Buffer
	if err := inv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range inv.Entries() {
		key := fig.Clique{Feats: e.Feats}.Key()
		if key != fig.KeyOf(e.Feats) {
			t.Fatalf("Clique.Key and KeyOf disagree for %v", e.Feats)
		}
		if le, ok := got.LookupKey(key); !ok || len(le.Objects) != len(e.Objects) {
			t.Fatalf("clique %v not addressable by Clique.Key after round trip", e.Feats)
		}
		if feats := fig.KeyFeats(key); len(feats) != len(e.Feats) {
			t.Fatalf("KeyFeats inverse broken for %v", e.Feats)
		}
	}
}

// TestLegacyGobFixture: a committed pre-segment-format snapshot still
// loads and matches a freshly built index over the same corpus. Regenerate
// with FIG_REGEN_FIXTURE=1 go test ./internal/index -run LegacyGobFixture
// (only needed if blockWorld or the legacy wire struct changes — the
// point of the fixture is that the bytes on disk never have to).
func TestLegacyGobFixture(t *testing.T) {
	path := filepath.Join("testdata", "legacy_v1.gob")
	_, m := blockWorld(t)
	inv := Build(m, fig.Options{}, fig.EnumerateOptions{MaxFeatures: 3})
	gen := m.Generation()
	if os.Getenv("FIG_REGEN_FIXTURE") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := inv.SaveLegacyGob(&buf, gen); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, buf.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("legacy fixture rejected: %v", err)
	}
	if st := got.LoadStats(); st == nil || st.Format != "gob" {
		t.Fatalf("fixture load stats = %+v, want gob", st)
	}
	entriesEqual(t, inv, got, gen, 0)
}
