package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/par"
)

// wireEntry is the gob form of one inverted-list row — the legacy snapshot
// format, kept so snapshots written before the binary segment format still
// load (read-only: Save always writes segments now). Fresh records whether
// the row's CorS matched the corpus statistics when the index was saved:
// an index that received Inserts carries entries whose stored weights
// predate the grown corpus, and Load must not resurrect those as
// authoritative. (Files written before the field existed decode with
// Fresh == false, which errs on the safe side: the indexed paths fall
// back to the scorer instead of serving a possibly diverged weight.)
type wireEntry struct {
	Feats   []media.FID
	CorS    float64
	Objects []media.ObjectID
	Fresh   bool
	// Blocks are the block-max summaries (blocks.go). Added after the
	// field set above shipped: gob decodes files written without it into
	// a nil slice, and BlocksAt treats an entry with no blocks as
	// unprunable — old snapshots load fine and simply search unpruned
	// until the next Build or Insert refreshes them.
	Blocks []Block
}

// Save writes the index to w in the binary segment format (segment.go).
// Combined with the dataset's own Save, a deployment can persist
// everything a serving engine needs and skip the O(|D|) clique enumeration
// at startup. Entries are emitted in clique-key order so the same index
// always serializes to the same bytes. Freshness is judged against the
// index's own last refresh generation — correct for an index that hears
// about every model invalidation (Build, or Insert on a single-index
// engine); sharded indexes must use SaveAt.
func (inv *Inverted) Save(w io.Writer) error {
	return inv.SaveAt(w, inv.gen)
}

// SaveAt is Save with the freshness authority made explicit: a row is
// persisted as fresh iff its CorS was computed at generation gen. A shard
// of a partitioned index only refreshes its own entries when an insert
// routes to it, so its internal refresh generation lags the shared model
// whenever another shard ingested last — judging freshness against the lag
// would resurrect weights of an intermediate corpus state as authoritative
// on Load. Callers holding a corpus-global model pass m.Generation().
func (inv *Inverted) SaveAt(w io.Writer, gen uint64) error {
	return inv.writeSegment(w, gen)
}

// SaveLegacyGob writes the pre-segment gob snapshot format, in clique-key
// order with the same freshness semantics as SaveAt. It exists for the
// cold-start benchmark's baseline and for producing compatibility
// fixtures; deployments should not write new gob snapshots.
func (inv *Inverted) SaveLegacyGob(w io.Writer, gen uint64) error {
	keys := inv.sortedKeys()
	rows := make([]wireEntry, 0, len(keys))
	for _, k := range keys {
		e := inv.entries[k]
		rows = append(rows, wireEntry{Feats: e.Feats, CorS: e.CorS, Objects: e.Objects, Fresh: e.corsGen == gen, Blocks: e.blocks.rows()})
	}
	return gob.NewEncoder(w).Encode(rows)
}

// LoadStats records how an index was brought into memory, for the
// cold-start benchmark and the obs load gauges. Nil on built (not loaded)
// indexes.
type LoadStats struct {
	Format     string  // "segment" or "gob"
	Bytes      int64   // snapshot size
	WallMillis float64 // wall time of the load
	Workers    int     // resolved loader fan-out
}

// LoadStats returns how this index was loaded, or nil if it was built.
func (inv *Inverted) LoadStats() *LoadStats {
	return inv.loadStats
}

// Load reads an index written by Save (either format; see LoadWorkers).
func Load(r io.Reader) (*Inverted, error) {
	return LoadWorkers(r, 0)
}

// LoadWorkers reads an index snapshot, auto-detecting the format by magic:
// binary segment files (the only format Save writes) decode through the
// parallel segment loader with the given fan-out (0 = NumCPU, 1 = serial);
// anything else is treated as a legacy gob snapshot and decoded serially.
// The result is independent of the worker count.
//
// The FID space must match the corpus the index was built over; Load
// cannot verify that, so pair index files with their dataset files.
// Entries that were fresh at save time are stamped with generation 0 —
// valid for a freshly constructed model over the paired dataset, whose
// generation counter starts at 0. Entries that were already stale when
// saved keep a never-matching stamp, so the indexed search paths recompute
// their weights through the scorer.
func LoadWorkers(r io.Reader, workers int) (*Inverted, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: read snapshot: %w", err)
	}
	start := time.Now()
	var inv *Inverted
	format := "segment"
	if isSegment(data) {
		if inv, err = readSegment(data, workers); err != nil {
			return nil, err
		}
	} else {
		format = "gob"
		if inv, err = loadLegacyGob(data); err != nil {
			return nil, err
		}
	}
	inv.loadStats = &LoadStats{
		Format:     format,
		Bytes:      int64(len(data)),
		WallMillis: float64(time.Since(start)) / float64(time.Millisecond),
		Workers:    par.Workers(workers, len(inv.entries)),
	}
	return inv, nil
}

func isSegment(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == segMagic
}

// loadLegacyGob decodes the pre-segment gob snapshot format and seals the
// result into the arena layout, so a legacy load serves through exactly
// the same memory shape as a segment load.
func loadLegacyGob(data []byte) (*Inverted, error) {
	var rows []wireEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rows); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	inv := &Inverted{entries: make(map[string]*Entry, len(rows))}
	for i := range rows {
		row := rows[i]
		gen := uint64(staleGen)
		if row.Fresh {
			gen = 0
		}
		inv.entries[fig.KeyOf(row.Feats)] = &Entry{Feats: row.Feats, CorS: row.CorS, Objects: row.Objects, blocks: blockSliceOf(row.Blocks), corsGen: gen}
	}
	keys := make([]string, 0, len(inv.entries))
	for k := range inv.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	inv.seal(keys)
	return inv, nil
}

// InspectSnapshot summarises a snapshot in either format without building
// a servable index: header fields, entry/posting/block totals, and — for
// segment files — per-section sizes and checksum status.
func InspectSnapshot(r io.Reader) (*SnapshotInfo, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: read snapshot: %w", err)
	}
	if isSegment(data) {
		return inspectSegment(data)
	}
	var rows []wireEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rows); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	info := &SnapshotInfo{Format: "gob", Bytes: int64(len(data)), Entries: len(rows)}
	for i := range rows {
		info.Feats += int64(len(rows[i].Feats))
		info.Postings += int64(len(rows[i].Objects))
		info.Blocks += int64(len(rows[i].Blocks))
		if rows[i].Fresh {
			info.Fresh++
		}
	}
	return info, nil
}
