package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"figfusion/internal/media"
)

// wireEntry is the gob form of one inverted-list row. Fresh records
// whether the row's CorS matched the corpus statistics when the index was
// saved: an index that received Inserts carries entries whose stored
// weights predate the grown corpus, and Load must not resurrect those as
// authoritative. (Files written before the field existed decode with
// Fresh == false, which errs on the safe side: the indexed paths fall
// back to the scorer instead of serving a possibly diverged weight.)
type wireEntry struct {
	Feats   []media.FID
	CorS    float64
	Objects []media.ObjectID
	Fresh   bool
	// Blocks are the block-max summaries (blocks.go). Added after the
	// field set above shipped: gob decodes files written without it into
	// a nil slice, and BlocksAt treats an entry with no blocks as
	// unprunable — old snapshots load fine and simply search unpruned
	// until the next Build or Insert refreshes them.
	Blocks []Block
}

// Save writes the index to w in gob format. Combined with the dataset's
// own Save, a deployment can persist everything a serving engine needs and
// skip the O(|D|) clique enumeration at startup. Rows are emitted in
// clique-key order so the same index always serializes to the same bytes
// (map iteration order would otherwise leak into the file). Freshness is
// judged against the index's own last refresh generation — correct for an
// index that hears about every model invalidation (Build, or Insert on a
// single-index engine); sharded indexes must use SaveAt.
func (inv *Inverted) Save(w io.Writer) error {
	return inv.SaveAt(w, inv.gen)
}

// SaveAt is Save with the freshness authority made explicit: a row is
// persisted as fresh iff its CorS was computed at generation gen. A shard
// of a partitioned index only refreshes its own entries when an insert
// routes to it, so its internal refresh generation lags the shared model
// whenever another shard ingested last — judging freshness against the lag
// would resurrect weights of an intermediate corpus state as authoritative
// on Load. Callers holding a corpus-global model pass m.Generation().
func (inv *Inverted) SaveAt(w io.Writer, gen uint64) error {
	keys := make([]string, 0, len(inv.entries))
	for k := range inv.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]wireEntry, 0, len(keys))
	for _, k := range keys {
		e := inv.entries[k]
		rows = append(rows, wireEntry{Feats: e.Feats, CorS: e.CorS, Objects: e.Objects, Fresh: e.corsGen == gen, Blocks: e.Blocks})
	}
	return gob.NewEncoder(w).Encode(rows)
}

// Load reads an index written by Save. The FID space must match the corpus
// the index was built over; Load cannot verify that, so pair index files
// with their dataset files. Entries that were fresh at save time are
// stamped with generation 0 — valid for a freshly constructed model over
// the paired dataset, whose generation counter starts at 0. Entries that
// were already stale when saved keep a never-matching stamp, so the
// indexed search paths recompute their weights through the scorer.
func Load(r io.Reader) (*Inverted, error) {
	var rows []wireEntry
	if err := gob.NewDecoder(r).Decode(&rows); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	inv := &Inverted{entries: make(map[string]*Entry, len(rows))}
	for i := range rows {
		row := rows[i]
		key := keyOf(row.Feats)
		gen := uint64(staleGen)
		if row.Fresh {
			gen = 0
		}
		inv.entries[key] = &Entry{Feats: row.Feats, CorS: row.CorS, Objects: row.Objects, Blocks: row.Blocks, corsGen: gen}
	}
	return inv, nil
}

// keyOf mirrors fig.Clique.Key without allocating a Clique.
func keyOf(fids []media.FID) string {
	buf := make([]byte, 4*len(fids))
	for i, fid := range fids {
		v := uint32(fid)
		buf[4*i] = byte(v >> 24)
		buf[4*i+1] = byte(v >> 16)
		buf[4*i+2] = byte(v >> 8)
		buf[4*i+3] = byte(v)
	}
	return string(buf)
}
