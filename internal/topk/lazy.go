package topk

import "figfusion/internal/media"

// LazySource is one ranked list presented incrementally to
// ThresholdMergeLazy. Next yields the list's items best-first under Less
// (score descending, ties by ascending ID) and reports false once the list
// is exhausted; Score is the random-access lookup — the item's score if the
// object is in the list, 0 otherwise — and must stay valid at any cursor
// position, including after exhaustion. The block-max TA path implements
// Next over lazily materialised posting blocks, so postings in blocks whose
// upper bound never reaches the merge frontier are never scored at all.
type LazySource struct {
	Next  func() (Item, bool)
	Score func(id media.ObjectID) float64
}

// ThresholdMergeLazy is ThresholdMerge over incrementally produced lists:
// the same Threshold Algorithm — one sorted-access row across all sources
// per round, random access to every source for each newly seen object, and
// termination once the k-th best aggregate reaches the row's score sum. The
// two functions are step-for-step identical given equal list contents:
// the same rows, the same random-access sums (absent objects add 0.0
// exactly as the map lookup does), the same encounter order at score ties,
// and the same termination round — so their results are byte-identical,
// which is what lets the pruned TA path keep the exactness contract while
// sourcing its rows from block-max cursors.
func ThresholdMergeLazy(sources []LazySource, k int) []Item {
	h := NewHeap(k)
	// ObjectIDs are dense from 0 (media.ObjectID), so a grow-on-demand
	// bitmap replaces the map the eager merge uses: the TA consults it
	// once per sorted-access row and hashing dominated the bookkeeping.
	seen := make([]bool, 0, 1024)
	exhausted := make([]bool, len(sources))
	live := len(sources)
	for live > 0 {
		var threshold float64
		for i := range sources {
			if exhausted[i] {
				continue
			}
			it, ok := sources[i].Next()
			if !ok {
				exhausted[i] = true
				live--
				continue
			}
			threshold += it.Score
			if idx := int(it.ID); idx < len(seen) {
				if seen[idx] {
					continue
				}
			} else {
				grown := make([]bool, idx+1, max(2*len(seen), idx+1))
				copy(grown, seen)
				seen = grown
			}
			seen[it.ID] = true
			var total float64
			for j := range sources {
				total += sources[j].Score(it.ID)
			}
			h.Push(Item{ID: it.ID, Score: total})
		}
		if live == 0 {
			break
		}
		if min, ok := h.Min(); ok && min.Score >= threshold {
			break
		}
	}
	return h.Results()
}
