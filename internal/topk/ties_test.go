package topk

import (
	"math/rand"
	"sort"
	"testing"

	"figfusion/internal/media"
)

// tieLists is a fixture whose aggregate scores tie exactly at the k-th
// position: object 4 aggregates to 3.0, objects 1, 2 and 3 all aggregate
// to exactly 2.0 (sums of the double 1.0, so the tie is bit-exact, not
// approximate).
func tieLists() [][]Item {
	return [][]Item{
		{{ID: 4, Score: 2.0}, {ID: 1, Score: 1.0}, {ID: 2, Score: 1.0}, {ID: 3, Score: 1.0}},
		{{ID: 4, Score: 1.0}, {ID: 1, Score: 1.0}, {ID: 2, Score: 1.0}, {ID: 3, Score: 1.0}},
	}
}

func assertItems(t *testing.T, got, want []Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d items %v, want %d items %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v, want %+v (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

// TestThresholdMergeTieBreaks pins the ranking ThresholdMerge serves when
// several candidates share the exact k-th score: ties order by ascending
// object ID (topk.Less's total order), at every k including the k=1 edge
// and k covering the whole candidate set. Any change to the merge that
// reorders equal-scored candidates — a different heap layout, a different
// encounter order — breaks this pinned output and with it the
// cross-worker and cross-shard byte-parity contracts.
func TestThresholdMergeTieBreaks(t *testing.T) {
	cases := []struct {
		k    int
		want []Item
	}{
		{k: 1, want: []Item{{ID: 4, Score: 3.0}}},
		{k: 2, want: []Item{{ID: 4, Score: 3.0}, {ID: 1, Score: 2.0}}},
		{k: 3, want: []Item{{ID: 4, Score: 3.0}, {ID: 1, Score: 2.0}, {ID: 2, Score: 2.0}}},
		// k = len(candidates): every tied candidate emitted, still in ID order.
		{k: 4, want: []Item{{ID: 4, Score: 3.0}, {ID: 1, Score: 2.0}, {ID: 2, Score: 2.0}, {ID: 3, Score: 2.0}}},
	}
	for _, tc := range cases {
		assertItems(t, ThresholdMerge(tieLists(), tc.k), tc.want)
		assertItems(t, ThresholdMergeLazy(lazyWrap(tieLists()), tc.k), tc.want)
	}
}

// TestThresholdMergeAllTied covers the fully degenerate tie: every
// candidate shares one score, so the output order is ID order alone.
func TestThresholdMergeAllTied(t *testing.T) {
	lists := [][]Item{
		{{ID: 2, Score: 1.0}, {ID: 5, Score: 1.0}, {ID: 9, Score: 1.0}},
	}
	want := []Item{{ID: 2, Score: 1.0}, {ID: 5, Score: 1.0}, {ID: 9, Score: 1.0}}
	assertItems(t, ThresholdMerge(lists, 1), want[:1])
	assertItems(t, ThresholdMerge(lists, 3), want)
	assertItems(t, ThresholdMergeLazy(lazyWrap(lists), 1), want[:1])
	assertItems(t, ThresholdMergeLazy(lazyWrap(lists), 3), want)
}

// lazyWrap presents eager lists through the LazySource interface: Next
// walks the list in order, Score is the map lookup ThresholdMerge itself
// builds. Used to pin ThresholdMergeLazy against ThresholdMerge on
// identical inputs.
func lazyWrap(lists [][]Item) []LazySource {
	sources := make([]LazySource, len(lists))
	for i, l := range lists {
		l := l
		m := make(map[media.ObjectID]float64, len(l))
		for _, it := range l {
			m[it.ID] = it.Score
		}
		cur := 0
		sources[i] = LazySource{
			Next: func() (Item, bool) {
				if cur >= len(l) {
					return Item{}, false
				}
				it := l[cur]
				cur++
				return it, true
			},
			Score: func(id media.ObjectID) float64 { return m[id] },
		}
	}
	return sources
}

// TestThresholdMergeLazyMatchesEager drives both merges over randomized
// list sets (fixed seed) and requires identical output at every k — the
// equivalence the pruned TA path's exactness rests on.
func TestThresholdMergeLazyMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nLists := 1 + rng.Intn(4)
		lists := make([][]Item, nLists)
		for i := range lists {
			n := rng.Intn(12)
			seen := map[media.ObjectID]bool{}
			for j := 0; j < n; j++ {
				id := media.ObjectID(rng.Intn(20))
				if seen[id] {
					continue
				}
				seen[id] = true
				// Coarse scores force frequent exact ties.
				lists[i] = append(lists[i], Item{ID: id, Score: float64(rng.Intn(4)) / 2})
			}
			sort.Slice(lists[i], func(a, b int) bool { return Less(lists[i][a], lists[i][b]) })
		}
		for _, k := range []int{1, 3, 10} {
			want := ThresholdMerge(lists, k)
			got := ThresholdMergeLazy(lazyWrap(lists), k)
			assertItems(t, got, want)
		}
	}
}
