package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"figfusion/internal/media"
)

func TestHeapKeepsBestK(t *testing.T) {
	h := NewHeap(3)
	for i, s := range []float64{5, 1, 9, 3, 7, 2} {
		h.Push(Item{ID: media.ObjectID(i), Score: s})
	}
	got := h.Results()
	wantScores := []float64{9, 7, 5}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, it := range got {
		if it.Score != wantScores[i] {
			t.Errorf("Results[%d] = %v, want score %v", i, it, wantScores[i])
		}
	}
}

func TestHeapFewerThanK(t *testing.T) {
	h := NewHeap(5)
	h.Push(Item{ID: 1, Score: 2})
	h.Push(Item{ID: 2, Score: 1})
	if _, ok := h.Min(); ok {
		t.Error("Min should report !ok while underfull")
	}
	got := h.Results()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("Results = %v", got)
	}
}

func TestHeapTieBreaksByID(t *testing.T) {
	h := NewHeap(2)
	h.Push(Item{ID: 9, Score: 1})
	h.Push(Item{ID: 3, Score: 1})
	h.Push(Item{ID: 6, Score: 1})
	got := h.Results()
	if got[0].ID != 3 || got[1].ID != 6 {
		t.Errorf("tie-break wrong: %v", got)
	}
}

func TestHeapMinK(t *testing.T) {
	h := NewHeap(0) // clamps to 1
	h.Push(Item{ID: 1, Score: 5})
	h.Push(Item{ID: 2, Score: 9})
	got := h.Results()
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("Results = %v", got)
	}
}

func makeList(pairs ...Item) []Item {
	sort.Slice(pairs, func(i, j int) bool { return Less(pairs[i], pairs[j]) })
	return pairs
}

func TestThresholdMergeSimple(t *testing.T) {
	lists := [][]Item{
		makeList(Item{1, 0.9}, Item{2, 0.5}, Item{3, 0.1}),
		makeList(Item{2, 0.8}, Item{4, 0.4}),
	}
	got := ThresholdMerge(lists, 2)
	// Totals: 1→0.9, 2→1.3, 3→0.1, 4→0.4.
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("got %v", got)
	}
	if got[0].Score != 1.3 {
		t.Errorf("score = %v, want 1.3", got[0].Score)
	}
}

func TestThresholdMergeEmptyAndSingle(t *testing.T) {
	if got := ThresholdMerge(nil, 3); len(got) != 0 {
		t.Errorf("empty merge = %v", got)
	}
	if got := ThresholdMerge([][]Item{{}}, 3); len(got) != 0 {
		t.Errorf("merge of empty list = %v", got)
	}
	one := [][]Item{makeList(Item{7, 0.5}, Item{8, 0.3})}
	got := ThresholdMerge(one, 5)
	if len(got) != 2 || got[0].ID != 7 {
		t.Errorf("single-list merge = %v", got)
	}
}

func TestThresholdMergeMatchesFullMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLists := 1 + rng.Intn(5)
		lists := make([][]Item, nLists)
		for i := range lists {
			n := rng.Intn(30)
			seen := make(map[media.ObjectID]bool)
			for j := 0; j < n; j++ {
				id := media.ObjectID(rng.Intn(50))
				if seen[id] {
					continue
				}
				seen[id] = true
				lists[i] = append(lists[i], Item{ID: id, Score: rng.Float64()})
			}
			sort.Slice(lists[i], func(a, b int) bool { return Less(lists[i][a], lists[i][b]) })
		}
		k := 1 + rng.Intn(10)
		ta := ThresholdMerge(lists, k)
		full := FullMerge(lists, k)
		if len(ta) != len(full) {
			return false
		}
		for i := range ta {
			if ta[i].ID != full[i].ID || ta[i].Score != full[i].Score {
				return false
			}
		}
		// Results are sorted best-first.
		for i := 1; i < len(ta); i++ {
			if Less(ta[i], ta[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFullMergeTruncates(t *testing.T) {
	lists := [][]Item{makeList(Item{1, 1}, Item{2, 2}, Item{3, 3})}
	got := FullMerge(lists, 2)
	if len(got) != 2 || got[0].ID != 3 {
		t.Errorf("FullMerge = %v", got)
	}
}

func BenchmarkThresholdMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := make([][]Item, 8)
	for i := range lists {
		for j := 0; j < 500; j++ {
			lists[i] = append(lists[i], Item{ID: media.ObjectID(rng.Intn(5000)), Score: rng.Float64()})
		}
		sort.Slice(lists[i], func(a, b int) bool { return Less(lists[i][a], lists[i][b]) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ThresholdMerge(lists, 10)
	}
}

func BenchmarkFullMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := make([][]Item, 8)
	for i := range lists {
		for j := 0; j < 500; j++ {
			lists[i] = append(lists[i], Item{ID: media.ObjectID(rng.Intn(5000)), Score: rng.Float64()})
		}
		sort.Slice(lists[i], func(a, b int) bool { return Less(lists[i][a], lists[i][b]) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FullMerge(lists, 10)
	}
}
