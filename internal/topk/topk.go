// Package topk provides the top-k machinery of the retrieval pipeline: a
// bounded score heap and Fagin's Threshold Algorithm (TA) [7], which
// Algorithm 1 of the paper uses to merge the per-clique candidate lists
// without examining every posting ("based on an early-termination condition
// and can evaluate top-k queries without examining all the tuples").
package topk

import (
	"container/heap"
	"sort"

	"figfusion/internal/media"
)

// Item is a scored object.
type Item struct {
	ID    media.ObjectID
	Score float64
}

// Less orders items by descending score, breaking ties by ascending ID so
// result lists are deterministic.
func Less(a, b Item) bool {
	//figlint:allow floatcmp -- a total order needs the exact tie-break: an epsilon band here breaks transitivity, and with it sort/heap invariants
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// Heap keeps the k best items seen. The zero value is unusable; construct
// with NewHeap. Not safe for concurrent use.
type Heap struct {
	k     int
	items minHeap
}

// NewHeap returns a heap retaining the k highest-scoring items.
func NewHeap(k int) *Heap {
	if k < 1 {
		k = 1
	}
	return &Heap{k: k}
}

// Push offers an item; it is retained only if it beats the current k-th.
func (h *Heap) Push(it Item) {
	if h.items.Len() < h.k {
		heap.Push(&h.items, it)
		return
	}
	if Less(it, h.items[0]) {
		h.items[0] = it
		heap.Fix(&h.items, 0)
	}
}

// Len returns the number of retained items.
func (h *Heap) Len() int { return h.items.Len() }

// Min returns the current k-th best item; ok is false while the heap holds
// fewer than k items.
func (h *Heap) Min() (Item, bool) {
	if h.items.Len() < h.k {
		return Item{}, false
	}
	return h.items[0], true
}

// Results drains the heap and returns the retained items best-first.
func (h *Heap) Results() []Item {
	out := make([]Item, h.items.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h.items).(Item)
	}
	return out
}

// MergeRanked folds several partial top-k lists (one per scoring worker)
// into one exact top-k. Because Less is a total order (score descending,
// ties by ascending ID), the merged result is independent of how the
// items were partitioned across workers — the property the parallel
// search paths rely on for determinism at any worker count.
func MergeRanked(lists [][]Item, k int) []Item {
	h := NewHeap(k)
	for _, l := range lists {
		for _, it := range l {
			h.Push(it)
		}
	}
	return h.Results()
}

// minHeap is a min-heap under Less (its root is the worst retained item).
type minHeap []Item

func (m minHeap) Len() int            { return len(m) }
func (m minHeap) Less(i, j int) bool  { return Less(m[j], m[i]) }
func (m minHeap) Swap(i, j int)       { m[i], m[j] = m[j], m[i] }
func (m *minHeap) Push(x interface{}) { *m = append(*m, x.(Item)) }
func (m *minHeap) Pop() interface{} {
	old := *m
	n := len(old)
	it := old[n-1]
	*m = old[:n-1]
	return it
}

// ThresholdMerge runs the Threshold Algorithm over several ranked lists,
// aggregating by sum with score 0 for objects absent from a list. Each list
// must be sorted best-first with non-negative scores (the aggregation must
// be monotone for TA's early-termination bound to hold); object IDs must be
// unique within a list. Returns the exact top-k of the aggregate scores.
func ThresholdMerge(lists [][]Item, k int) []Item {
	// Random-access structures.
	maps := make([]map[media.ObjectID]float64, len(lists))
	for i, l := range lists {
		maps[i] = make(map[media.ObjectID]float64, len(l))
		for _, it := range l {
			maps[i][it.ID] = it.Score
		}
	}
	h := NewHeap(k)
	seen := make(map[media.ObjectID]bool)
	maxDepth := 0
	for _, l := range lists {
		if len(l) > maxDepth {
			maxDepth = len(l)
		}
	}
	for depth := 0; depth < maxDepth; depth++ {
		// Sorted access: one row across all lists.
		var threshold float64
		live := false
		for i, l := range lists {
			if depth >= len(l) {
				continue
			}
			live = true
			threshold += l[depth].Score
			id := l[depth].ID
			if seen[id] {
				continue
			}
			seen[id] = true
			// Random access to every other list.
			var total float64
			for _, m := range maps {
				total += m[id]
			}
			h.Push(Item{ID: id, Score: total})
			_ = i
		}
		if !live {
			break
		}
		// Early termination: the k-th best already dominates any unseen
		// object's maximum possible aggregate. (At exact score ties the
		// choice among tied objects follows encounter order, as in the
		// original algorithm.)
		if min, ok := h.Min(); ok && min.Score >= threshold {
			break
		}
	}
	return h.Results()
}

// FullMerge aggregates the lists exhaustively (reference implementation and
// the non-indexed merge path): sum scores per object, return the top k.
func FullMerge(lists [][]Item, k int) []Item {
	totals := make(map[media.ObjectID]float64)
	for _, l := range lists {
		for _, it := range l {
			totals[it.ID] += it.Score
		}
	}
	all := make([]Item, 0, len(totals))
	for id, s := range totals {
		all = append(all, Item{ID: id, Score: s})
	}
	sort.Slice(all, func(i, j int) bool { return Less(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
