package lexicon

import (
	"math"
	"testing"
	"testing/quick"
)

// buildAnimalTaxonomy constructs the running-example hierarchy:
//
//	entity
//	├── living
//	│   ├── animal: hamster, dog, cat
//	│   └── plant: broccoli, tree
//	└── artifact
//	    └── vehicle: car
func buildAnimalTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	tax, err := Generate([]TopicGroup{
		{Name: "animal", Domain: "living", Words: []string{"hamster", "dog", "cat"}},
		{Name: "plant", Domain: "living", Words: []string{"broccoli", "tree"}},
		{Name: "vehicle", Domain: "artifact", Words: []string{"car"}},
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tax
}

func TestWUPIdenticalWord(t *testing.T) {
	tax := buildAnimalTaxonomy(t)
	got, ok := tax.WUP("hamster", "hamster")
	if !ok || got != 1 {
		t.Errorf("WUP(hamster,hamster) = %v,%v want 1,true", got, ok)
	}
}

func TestWUPSameTopicHigherThanCrossTopic(t *testing.T) {
	tax := buildAnimalTaxonomy(t)
	same, _ := tax.WUP("hamster", "dog")        // meet at "animal"
	crossDomain, _ := tax.WUP("hamster", "car") // meet at root
	crossTopic, _ := tax.WUP("hamster", "tree") // meet at "living"
	if !(same > crossTopic && crossTopic > crossDomain) {
		t.Errorf("want WUP ordering same-topic(%v) > same-domain(%v) > cross-domain(%v)",
			same, crossTopic, crossDomain)
	}
}

func TestWUPExactValues(t *testing.T) {
	tax := buildAnimalTaxonomy(t)
	// Depths: root=1, living=2, animal=3, leaf=4.
	// WUP(hamster,dog) = 2*3/(4+4) = 0.75
	if got, _ := tax.WUP("hamster", "dog"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("WUP(hamster,dog) = %v, want 0.75", got)
	}
	// WUP(hamster,tree): LCS=living depth 2 → 2*2/8 = 0.5
	if got, _ := tax.WUP("hamster", "tree"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("WUP(hamster,tree) = %v, want 0.5", got)
	}
	// WUP(hamster,car): LCS=root depth 1 → 2*1/8 = 0.25
	if got, _ := tax.WUP("hamster", "car"); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("WUP(hamster,car) = %v, want 0.25", got)
	}
}

func TestWUPUnknownWord(t *testing.T) {
	tax := buildAnimalTaxonomy(t)
	if _, ok := tax.WUP("hamster", "zebra"); ok {
		t.Error("WUP with unknown word should report !ok")
	}
	if _, ok := tax.WUP("zebra", "quokka"); ok {
		t.Error("WUP with two unknown words should report !ok")
	}
}

func TestWUPSymmetric(t *testing.T) {
	tax := buildAnimalTaxonomy(t)
	words := []string{"hamster", "dog", "cat", "broccoli", "tree", "car"}
	for _, a := range words {
		for _, b := range words {
			ab, _ := tax.WUP(a, b)
			ba, _ := tax.WUP(b, a)
			if ab != ba {
				t.Errorf("WUP(%s,%s)=%v != WUP(%s,%s)=%v", a, b, ab, b, a, ba)
			}
		}
	}
}

func TestLCS(t *testing.T) {
	tax := buildAnimalTaxonomy(t)
	tests := []struct{ c1, c2, want string }{
		{"animal", "plant", "living"},
		{"animal", "vehicle", RootConcept},
		{"animal", "animal", "animal"},
		{"animal/hamster", "animal", "animal"},
	}
	for _, tt := range tests {
		got, ok := tax.LCS(tt.c1, tt.c2)
		if !ok || got != tt.want {
			t.Errorf("LCS(%s,%s) = %v,%v want %v", tt.c1, tt.c2, got, ok, tt.want)
		}
	}
	if _, ok := tax.LCS("animal", "nope"); ok {
		t.Error("LCS with unknown concept should report !ok")
	}
}

func TestAddConceptErrors(t *testing.T) {
	tax := New()
	if err := tax.AddConcept("animal", "ghost"); err == nil {
		t.Error("want error for unknown parent")
	}
	if err := tax.AddConcept("animal", RootConcept); err != nil {
		t.Fatalf("AddConcept: %v", err)
	}
	// Same parent: idempotent.
	if err := tax.AddConcept("animal", RootConcept); err != nil {
		t.Errorf("re-adding with same parent should be a no-op, got %v", err)
	}
	if err := tax.AddConcept("mammal", "animal"); err != nil {
		t.Fatalf("AddConcept: %v", err)
	}
	// Different parent: error.
	if err := tax.AddConcept("animal", "mammal"); err == nil {
		t.Error("want error when re-parenting an existing concept")
	}
}

func TestAddWordErrors(t *testing.T) {
	tax := New()
	if err := tax.AddWord("dog", "animal"); err == nil {
		t.Error("want error for unknown concept")
	}
	mustAdd := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(tax.AddConcept("animal", RootConcept))
	mustAdd(tax.AddConcept("plant", RootConcept))
	mustAdd(tax.AddWord("dog", "animal"))
	if err := tax.AddWord("dog", "animal"); err != nil {
		t.Errorf("re-attaching to same concept should be a no-op, got %v", err)
	}
	if err := tax.AddWord("dog", "plant"); err == nil {
		t.Error("want error when re-attaching a word to another concept")
	}
}

func TestDepths(t *testing.T) {
	tax := buildAnimalTaxonomy(t)
	for _, tt := range []struct {
		concept string
		want    int
	}{
		{RootConcept, 1}, {"living", 2}, {"animal", 3}, {"animal/hamster", 4},
	} {
		got, ok := tax.Depth(tt.concept)
		if !ok || got != tt.want {
			t.Errorf("Depth(%s) = %v,%v want %v", tt.concept, got, ok, tt.want)
		}
	}
}

func TestGenerateSharedWordKeepsFirstAttachment(t *testing.T) {
	tax, err := Generate([]TopicGroup{
		{Name: "animal", Words: []string{"jaguar"}},
		{Name: "vehicle", Words: []string{"jaguar", "car"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := tax.ConceptOf("jaguar")
	if !ok || c != "animal/jaguar" {
		t.Errorf("ConceptOf(jaguar) = %v,%v want animal/jaguar", c, ok)
	}
}

func TestGenerateEmptyName(t *testing.T) {
	if _, err := Generate([]TopicGroup{{Name: "", Words: []string{"x"}}}); err == nil {
		t.Error("want error for empty topic name")
	}
}

func TestWUPRangeProperty(t *testing.T) {
	tax := buildAnimalTaxonomy(t)
	words := []string{"hamster", "dog", "cat", "broccoli", "tree", "car"}
	// WUP is always in (0,1] for known words and WUP(a,a)=1.
	f := func(i, j uint) bool {
		a := words[i%uint(len(words))]
		b := words[j%uint(len(words))]
		v, ok := tax.WUP(a, b)
		if !ok {
			return false
		}
		if a == b && v != 1 {
			return false
		}
		return v > 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkWUP(b *testing.B) {
	tax, err := Generate([]TopicGroup{
		{Name: "animal", Domain: "living", Words: []string{"hamster", "dog", "cat"}},
		{Name: "plant", Domain: "living", Words: []string{"broccoli", "tree"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tax.WUP("hamster", "tree")
	}
}
