// Package lexicon provides the WordNet substitute the FIG model uses to
// decide intra-type edges between textual feature nodes (paper Section 3.2).
//
// The paper computes word–word correlation with the Wu–Palmer (WUP)
// similarity over the WordNet IS-A hierarchy. WordNet itself is a large
// proprietary-licensed lexical database; this package implements the same
// interface over an explicitly constructed rooted taxonomy. The synthetic
// corpus generator builds a taxonomy whose hypernym groups mirror the planted
// topic structure, so semantically related tags receive high WUP scores —
// the property the FIG edge construction depends on.
package lexicon

import (
	"errors"
	"fmt"
)

// RootConcept is the name of the implicit root of every Taxonomy.
const RootConcept = "entity"

// conceptID indexes into Taxonomy.parents/depths.
type conceptID int

// Taxonomy is a rooted IS-A hierarchy of concepts with words attached to
// concepts. It is immutable once handed to concurrent readers; all methods
// except AddConcept and AddWord are safe for concurrent use after building
// completes.
type Taxonomy struct {
	names   []string             // conceptID -> name
	ids     map[string]conceptID // name -> conceptID
	parents []conceptID          // conceptID -> parent (root points to itself)
	depths  []int                // conceptID -> depth, root = 1 (WUP convention)
	words   map[string]conceptID // word -> concept it is attached to
}

// New returns a taxonomy containing only the root concept.
func New() *Taxonomy {
	t := &Taxonomy{
		ids:   make(map[string]conceptID),
		words: make(map[string]conceptID),
	}
	t.names = append(t.names, RootConcept)
	t.ids[RootConcept] = 0
	t.parents = append(t.parents, 0)
	t.depths = append(t.depths, 1)
	return t
}

// ErrUnknownConcept is returned when a referenced concept does not exist.
var ErrUnknownConcept = errors.New("lexicon: unknown concept")

// AddConcept inserts a concept under the named parent. Adding an existing
// concept with the same parent is a no-op; with a different parent it is an
// error, since the hierarchy is a tree.
func (t *Taxonomy) AddConcept(name, parent string) error {
	pid, ok := t.ids[parent]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownConcept, parent)
	}
	if cid, exists := t.ids[name]; exists {
		if t.parents[cid] != pid {
			return fmt.Errorf("lexicon: concept %q already exists under %q", name, t.names[t.parents[cid]])
		}
		return nil
	}
	cid := conceptID(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = cid
	t.parents = append(t.parents, pid)
	t.depths = append(t.depths, t.depths[pid]+1)
	return nil
}

// AddWord attaches a word to a concept. A word may be attached only once;
// re-attaching to the same concept is a no-op.
func (t *Taxonomy) AddWord(word, concept string) error {
	cid, ok := t.ids[concept]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownConcept, concept)
	}
	if prev, exists := t.words[word]; exists {
		if prev != cid {
			return fmt.Errorf("lexicon: word %q already attached to %q", word, t.names[prev])
		}
		return nil
	}
	t.words[word] = cid
	return nil
}

// HasWord reports whether the word is known to the taxonomy.
func (t *Taxonomy) HasWord(word string) bool {
	_, ok := t.words[word]
	return ok
}

// ConceptOf returns the concept a word is attached to.
func (t *Taxonomy) ConceptOf(word string) (string, bool) {
	cid, ok := t.words[word]
	if !ok {
		return "", false
	}
	return t.names[cid], true
}

// Depth returns the WUP depth of a concept (root has depth 1).
func (t *Taxonomy) Depth(concept string) (int, bool) {
	cid, ok := t.ids[concept]
	if !ok {
		return 0, false
	}
	return t.depths[cid], true
}

// Len returns the number of concepts including the root.
func (t *Taxonomy) Len() int { return len(t.names) }

// Words returns the number of attached words.
func (t *Taxonomy) Words() int { return len(t.words) }

// lcs returns the least common subsumer of two concepts.
func (t *Taxonomy) lcs(a, b conceptID) conceptID {
	// Walk the deeper node up until both depths match, then walk both.
	for t.depths[a] > t.depths[b] {
		a = t.parents[a]
	}
	for t.depths[b] > t.depths[a] {
		b = t.parents[b]
	}
	for a != b {
		a = t.parents[a]
		b = t.parents[b]
	}
	return a
}

// LCS returns the least common subsumer concept of two concepts.
func (t *Taxonomy) LCS(c1, c2 string) (string, bool) {
	a, ok1 := t.ids[c1]
	b, ok2 := t.ids[c2]
	if !ok1 || !ok2 {
		return "", false
	}
	return t.names[t.lcs(a, b)], true
}

// WUP computes the Wu–Palmer similarity between two words:
//
//	WUP(w1, w2) = 2·depth(LCS) / (depth(w1) + depth(w2))
//
// where word depth is the depth of the concept the word is attached to.
// The result is in (0, 1]; identical words (or synonyms attached to the same
// concept) score 1. The boolean is false when either word is unknown.
func (t *Taxonomy) WUP(w1, w2 string) (float64, bool) {
	a, ok1 := t.words[w1]
	b, ok2 := t.words[w2]
	if !ok1 || !ok2 {
		return 0, false
	}
	if a == b {
		return 1, true
	}
	l := t.lcs(a, b)
	return 2 * float64(t.depths[l]) / float64(t.depths[a]+t.depths[b]), true
}
