package lexicon

import "fmt"

// TopicGroup describes one hypernym group for taxonomy generation: a set of
// words that share a common parent concept.
type TopicGroup struct {
	// Name of the hypernym concept, e.g. "animal".
	Name string
	// Words attached under the hypernym, e.g. ["hamster", "dog"].
	Words []string
	// Domain optionally groups several topics under an intermediate
	// concept between the root and the hypernym; empty means the hypernym
	// hangs directly off the root.
	Domain string
}

// Generate builds a taxonomy from topic groups. Layout:
//
//	entity → [domain] → topic hypernym → leaf concept per word
//
// Each word gets its own leaf concept so that two words in the same topic
// have WUP = 2·d/(d+1+d+1) with d the hypernym depth — high but below 1 —
// while words from different domains meet only near the root and score low.
// Words listed in several groups keep their first attachment (tags in social
// media are noisy; first wins mirrors the paper's frequency-based cleanup).
func Generate(groups []TopicGroup) (*Taxonomy, error) {
	t := New()
	for _, g := range groups {
		parent := RootConcept
		if g.Domain != "" {
			if err := t.AddConcept(g.Domain, RootConcept); err != nil {
				return nil, err
			}
			parent = g.Domain
		}
		if g.Name == "" {
			return nil, fmt.Errorf("lexicon: topic group with empty name")
		}
		if err := t.AddConcept(g.Name, parent); err != nil {
			return nil, err
		}
		for _, w := range g.Words {
			if t.HasWord(w) {
				continue
			}
			leaf := g.Name + "/" + w
			if err := t.AddConcept(leaf, g.Name); err != nil {
				return nil, err
			}
			if err := t.AddWord(w, leaf); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
