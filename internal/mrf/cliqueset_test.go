package mrf

import (
	"testing"

	"figfusion/internal/fig"
	"figfusion/internal/media"
)

func worldCliques(ids map[string]media.FID) []fig.Clique {
	return []fig.Clique{
		{Feats: []media.FID{ids["hamster"]}},
		{Feats: []media.FID{ids["animal"]}},
		{Feats: []media.FID{ids["hamster"], ids["animal"]}},
		{Feats: []media.FID{ids["hamster"], ids["car"]}},
		{Feats: []media.FID{ids["vegetable"]}},
	}
}

// TestCliqueSetMatchesScorer is the contract the parallel search paths
// rely on: a compiled clique set must reproduce Scorer.Score and
// Scorer.Potential bit-for-bit (same floating-point operation order), for
// every parameterisation — smoothing on/off, CorS weighting on/off, and a
// zero λ that disables a clique size entirely.
func TestCliqueSetMatchesScorer(t *testing.T) {
	c, m, ids := world(t)
	cases := []Params{
		{Lambda: []float64{1, 0.6}, Alpha: 0, UseCorS: false, Delta: 1},
		{Lambda: []float64{1, 0.6}, Alpha: 0.35, UseCorS: false, Delta: 1},
		{Lambda: []float64{1, 0.6}, Alpha: 0.35, UseCorS: true, Delta: 1},
		{Lambda: []float64{1, 0}, Alpha: 0.35, UseCorS: true, Delta: 1},
		DefaultParams(),
	}
	cliques := worldCliques(ids)
	for ci, p := range cases {
		s, err := NewScorer(m, p)
		if err != nil {
			t.Fatal(err)
		}
		cs := s.Compile(cliques, nil)
		if cs.Len() != len(cliques) {
			t.Fatalf("case %d: Len = %d, want %d", ci, cs.Len(), len(cliques))
		}
		sc := cs.NewScratch()
		for i := 0; i < c.Len(); i++ {
			o := c.Object(media.ObjectID(i))
			if got, want := cs.Score(o), s.Score(cliques, o); got != want {
				t.Errorf("case %d object %d: CliqueSet.Score = %v, Scorer.Score = %v", ci, i, got, want)
			}
			if got, want := cs.ScoreScratch(sc, o), s.Score(cliques, o); got != want {
				t.Errorf("case %d object %d: ScoreScratch = %v, Scorer.Score = %v", ci, i, got, want)
			}
			for j := range cliques {
				if got, want := cs.Potential(j, o), s.Potential(cliques[j], o); got != want {
					t.Errorf("case %d object %d clique %d: Potential = %v, want %v", ci, i, j, got, want)
				}
			}
		}
	}
}

// TestCliqueSetExternalWeights checks that Compile applies caller-supplied
// Eq. 9 weights verbatim — the indexed search paths pass the CorS values
// stored in the inverted index through this seam.
func TestCliqueSetExternalWeights(t *testing.T) {
	c, m, ids := world(t)
	p := Params{Lambda: []float64{1, 0.6}, Alpha: 0.35, UseCorS: true, Delta: 1}
	s, err := NewScorer(m, p)
	if err != nil {
		t.Fatal(err)
	}
	cliques := worldCliques(ids)
	weights := make([]float64, len(cliques))
	for i, cl := range cliques {
		weights[i] = s.CorS(cl)
	}
	base := s.Compile(cliques, weights)
	doubled := make([]float64, len(weights))
	for i, w := range weights {
		doubled[i] = 2 * w
	}
	twice := s.Compile(cliques, doubled)
	o := c.Object(0)
	for i := range cliques {
		if got, want := base.Potential(i, o), s.Potential(cliques[i], o); got != want {
			t.Errorf("clique %d: scorer-derived weights diverge: %v vs %v", i, got, want)
		}
		if got, want := twice.Potential(i, o), 2*base.Potential(i, o); got != want {
			t.Errorf("clique %d: doubled weight not applied verbatim: %v vs %v", i, got, want)
		}
	}
}
