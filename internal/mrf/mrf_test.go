package mrf

import (
	"math"
	"testing"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/lexicon"
	"figfusion/internal/media"
)

// world builds a corpus of four objects over topic words plus a taxonomy:
//
//	o0: hamster(2), animal(1)     (pets)
//	o1: hamster(1), vegetable(1)  (pets)
//	o2: car(2), engine(1)         (vehicles)
//	o3: hamster(1), car(1)        (mixed)
func world(t testing.TB) (*media.Corpus, *corr.Model, map[string]media.FID) {
	t.Helper()
	c := media.NewCorpus()
	tf := func(n string) media.Feature { return media.Feature{Kind: media.Text, Name: n} }
	add := func(names []string, counts []int, month int) {
		t.Helper()
		feats := make([]media.Feature, len(names))
		for i, n := range names {
			feats[i] = tf(n)
		}
		if _, err := c.Add(feats, counts, month); err != nil {
			t.Fatal(err)
		}
	}
	add([]string{"hamster", "animal"}, []int{2, 1}, 0)
	add([]string{"hamster", "vegetable"}, []int{1, 1}, 1)
	add([]string{"car", "engine"}, []int{2, 1}, 2)
	add([]string{"hamster", "car"}, []int{1, 1}, 3)
	tax, err := lexicon.Generate([]lexicon.TopicGroup{
		{Name: "pets", Domain: "living", Words: []string{"hamster", "animal", "vegetable"}},
		{Name: "vehicles", Domain: "artifact", Words: []string{"car", "engine"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := corr.NewModel(corr.NewStats(c), tax, nil, nil, nil, nil)
	ids := make(map[string]media.FID)
	for _, n := range []string{"hamster", "animal", "vegetable", "car", "engine"} {
		id, ok := c.Dict.Lookup(tf(n))
		if !ok {
			t.Fatalf("missing %s", n)
		}
		ids[n] = id
	}
	return c, m, ids
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
	bad := []Params{
		{Lambda: nil, Alpha: 0.5, Delta: 0.5},
		{Lambda: []float64{-1}, Alpha: 0.5, Delta: 0.5},
		{Lambda: []float64{1}, Alpha: -0.1, Delta: 0.5},
		{Lambda: []float64{1}, Alpha: 1.1, Delta: 0.5},
		{Lambda: []float64{1}, Alpha: 0.5, Delta: 0},
		{Lambda: []float64{1}, Alpha: 0.5, Delta: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestLambdaFor(t *testing.T) {
	p := Params{Lambda: []float64{0.7, 0.3}}
	if got := p.LambdaFor(1); got != 0.7 {
		t.Errorf("LambdaFor(1) = %v", got)
	}
	if got := p.LambdaFor(2); got != 0.3 {
		t.Errorf("LambdaFor(2) = %v", got)
	}
	if got := p.LambdaFor(3); got != 0 {
		t.Errorf("LambdaFor(3) = %v, want 0 for oversize cliques", got)
	}
	if got := p.LambdaFor(0); got != 0 {
		t.Errorf("LambdaFor(0) = %v, want 0", got)
	}
}

func TestPotentialFrequencyTerm(t *testing.T) {
	c, m, ids := world(t)
	p := Params{Lambda: []float64{1}, Alpha: 0, UseCorS: false, Delta: 1}
	s, err := NewScorer(m, p)
	if err != nil {
		t.Fatal(err)
	}
	o0 := c.Object(0) // hamster(2), animal(1), total 3
	cl := fig.Clique{Feats: []media.FID{ids["hamster"]}}
	// ϕ = λ · freq/|O| = 1 · 2/3.
	if got := s.Potential(cl, o0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Potential = %v, want 2/3", got)
	}
	// Pair clique hamster+animal: min count = 1 → 1/3, but λ for size-2
	// cliques is 0 here.
	pair := fig.Clique{Feats: []media.FID{ids["hamster"], ids["animal"]}}
	if got := s.Potential(pair, o0); got != 0 {
		t.Errorf("pair Potential with 1-entry lambda = %v, want 0", got)
	}
}

func TestPotentialPairUsesMinCount(t *testing.T) {
	c, m, ids := world(t)
	p := Params{Lambda: []float64{0, 1}, Alpha: 0, UseCorS: false, Delta: 1}
	s, err := NewScorer(m, p)
	if err != nil {
		t.Fatal(err)
	}
	o0 := c.Object(0)
	pair := fig.Clique{Feats: []media.FID{ids["hamster"], ids["animal"]}}
	// min(2,1)/3 = 1/3.
	if got := s.Potential(pair, o0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Potential = %v, want 1/3", got)
	}
	// A pair with an absent member has zero frequency term.
	miss := fig.Clique{Feats: []media.FID{ids["hamster"], ids["car"]}}
	if got := s.Potential(miss, o0); got != 0 {
		t.Errorf("Potential with absent feature = %v, want 0 (alpha=0)", got)
	}
}

func TestSmoothingRewardsCorrelatedObjects(t *testing.T) {
	c, m, ids := world(t)
	p := Params{Lambda: []float64{1}, Alpha: 1, UseCorS: false, Delta: 1}
	s, err := NewScorer(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// Query feature "animal" does not occur in o1 (hamster, vegetable) nor
	// in o2 (car, engine), but is taxonomically close to o1's features.
	cl := fig.Clique{Feats: []media.FID{ids["animal"]}}
	scorePets := s.Potential(cl, c.Object(1))
	scoreCars := s.Potential(cl, c.Object(2))
	if !(scorePets > scoreCars) {
		t.Errorf("smoothing should prefer pets object: %v vs %v", scorePets, scoreCars)
	}
}

func TestPotentialCorSWeighting(t *testing.T) {
	c, m, ids := world(t)
	pNo := Params{Lambda: []float64{0, 1}, Alpha: 0, UseCorS: false, Delta: 1}
	pYes := Params{Lambda: []float64{0, 1}, Alpha: 0, UseCorS: true, Delta: 1}
	sNo, err := NewScorer(m, pNo)
	if err != nil {
		t.Fatal(err)
	}
	sYes, err := NewScorer(m, pYes)
	if err != nil {
		t.Fatal(err)
	}
	o0 := c.Object(0)
	pair := fig.Clique{Feats: []media.FID{ids["hamster"], ids["animal"]}}
	corS := sYes.CorS(pair)
	want := sNo.Potential(pair, o0) * corS
	if got := sYes.Potential(pair, o0); math.Abs(got-want) > 1e-12 {
		t.Errorf("CorS weighting: got %v, want %v", got, want)
	}
}

func TestCorSClampedNonNegative(t *testing.T) {
	_, m, ids := world(t)
	s, err := NewScorer(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// hamster and engine never co-occur → negative covariance → clamped 0.
	cl := fig.Clique{Feats: []media.FID{ids["hamster"], ids["engine"]}}
	if got := s.CorS(cl); got != 0 {
		t.Errorf("CorS = %v, want clamp to 0", got)
	}
	// Cached second call agrees.
	if got := s.CorS(cl); got != 0 {
		t.Errorf("cached CorS = %v", got)
	}
}

func TestScoreSumsPotentials(t *testing.T) {
	c, m, ids := world(t)
	s, err := NewScorer(m, Params{Lambda: []float64{1, 1}, Alpha: 0, UseCorS: false, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	o0 := c.Object(0)
	cliques := []fig.Clique{
		{Feats: []media.FID{ids["hamster"]}},
		{Feats: []media.FID{ids["animal"]}},
		{Feats: []media.FID{ids["hamster"], ids["animal"]}},
	}
	var want float64
	for _, cl := range cliques {
		want += s.Potential(cl, o0)
	}
	if got := s.Score(cliques, o0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Score = %v, want %v", got, want)
	}
	if got := s.Score(nil, o0); got != 0 {
		t.Errorf("empty Score = %v, want 0", got)
	}
}

func TestScoreRanksTopicMatchFirst(t *testing.T) {
	c, m, ids := world(t)
	s, err := NewScorer(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Query: a pets object.
	query := []fig.Clique{
		{Feats: []media.FID{ids["hamster"]}},
		{Feats: []media.FID{ids["vegetable"]}},
	}
	pets := s.Score(query, c.Object(1))  // hamster+vegetable
	cars := s.Score(query, c.Object(2))  // car+engine
	mixed := s.Score(query, c.Object(3)) // hamster+car
	if !(pets > mixed && mixed > cars) {
		t.Errorf("ranking wrong: pets=%v mixed=%v cars=%v", pets, mixed, cars)
	}
}

func TestPotentialTemporalDecay(t *testing.T) {
	c, m, ids := world(t)
	p := Params{Lambda: []float64{1}, Alpha: 0, UseCorS: false, Delta: 0.5}
	s, err := NewScorer(m, p)
	if err != nil {
		t.Fatal(err)
	}
	o0 := c.Object(0)
	base := fig.Clique{Feats: []media.FID{ids["hamster"]}, Month: 10}
	now := 12
	undecayed := s.Potential(base, o0)
	got := s.PotentialTemporal(base, o0, now)
	want := undecayed * 0.25 // δ² for 2 months of age
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("temporal = %v, want %v", got, want)
	}
	// Untimed cliques and future cliques do not decay.
	untimed := fig.Clique{Feats: []media.FID{ids["hamster"]}, Month: -1}
	if got := s.PotentialTemporal(untimed, o0, now); math.Abs(got-undecayed) > 1e-12 {
		t.Errorf("untimed clique decayed: %v", got)
	}
	future := fig.Clique{Feats: []media.FID{ids["hamster"]}, Month: 20}
	if got := s.PotentialTemporal(future, o0, now); math.Abs(got-undecayed) > 1e-12 {
		t.Errorf("future clique decayed: %v", got)
	}
	// Delta == 1 short-circuits.
	s1, err := NewScorer(m, Params{Lambda: []float64{1}, Alpha: 0, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s1.PotentialTemporal(base, o0, now); math.Abs(got-s1.Potential(base, o0)) > 1e-12 {
		t.Errorf("delta=1 should not decay, got %v", got)
	}
}

func TestScoreTemporalPrefersRecentInterests(t *testing.T) {
	c, m, ids := world(t)
	s, err := NewScorer(m, Params{Lambda: []float64{1}, Alpha: 0, UseCorS: false, Delta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// Profile: old pets clique (month 0), recent cars clique (month 5).
	profile := []fig.Clique{
		{Feats: []media.FID{ids["hamster"]}, Month: 0},
		{Feats: []media.FID{ids["car"]}, Month: 5},
	}
	now := 6
	pets := s.ScoreTemporal(profile, c.Object(1), now) // hamster+vegetable
	cars := s.ScoreTemporal(profile, c.Object(2), now) // car+engine
	if !(cars > pets) {
		t.Errorf("recent interest should win: cars=%v pets=%v", cars, pets)
	}
	// Without decay the old interest's higher frequency can dominate.
	sFlat, err := NewScorer(m, Params{Lambda: []float64{1}, Alpha: 0, UseCorS: false, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	petsFlat := sFlat.ScoreTemporal(profile, c.Object(1), now)
	if petsFlat <= 0 {
		t.Errorf("flat pets score = %v, want positive", petsFlat)
	}
}

func TestNewScorerRejectsInvalidParams(t *testing.T) {
	_, m, _ := world(t)
	if _, err := NewScorer(m, Params{}); err == nil {
		t.Error("want error for zero params")
	}
}

func TestTrainImprovesObjective(t *testing.T) {
	// Synthetic objective: best at lambda ≈ (0.8, 0.2), alpha = 0.25.
	target := Params{Lambda: []float64{0.8, 0.2}, Alpha: 0.25}
	objective := func(p Params) float64 {
		d := 0.0
		for i := range p.Lambda {
			diff := p.Lambda[i] - target.Lambda[i]
			d += diff * diff
		}
		da := p.Alpha - target.Alpha
		return -(d + da*da)
	}
	base := Params{Lambda: []float64{0.5, 0.5}, Alpha: 0.75, Delta: 1}
	best, score := Train(base, objective, 5)
	if score < objective(base) {
		t.Errorf("training made things worse: %v < %v", score, objective(base))
	}
	if math.Abs(best.Alpha-0.25) > 1e-9 {
		t.Errorf("alpha = %v, want 0.25", best.Alpha)
	}
	var sum float64
	for _, l := range best.Lambda {
		sum += l
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("lambda not normalised: sum=%v", sum)
	}
}

func TestTrainDelta(t *testing.T) {
	base := Params{Lambda: []float64{1}, Alpha: 0, Delta: 1}
	objective := func(p Params) float64 { return -math.Abs(p.Delta - 0.4) }
	best, _ := TrainDelta(base, objective, nil)
	if best.Delta != 0.4 {
		t.Errorf("Delta = %v, want 0.4", best.Delta)
	}
	// Custom grid.
	best2, _ := TrainDelta(base, objective, []float64{0.9, 0.5})
	if best2.Delta != 0.5 {
		t.Errorf("Delta = %v, want 0.5 from custom grid", best2.Delta)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	l := []float64{0, 0, 0, 0}
	normalize(l)
	for _, v := range l {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("normalize zero vector → %v, want uniform", l)
		}
	}
}

func BenchmarkPotential(b *testing.B) {
	c, m, ids := world(b)
	s, err := NewScorer(m, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	o0 := c.Object(0)
	cl := fig.Clique{Feats: []media.FID{ids["hamster"], ids["animal"]}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Potential(cl, o0)
	}
}

func TestCorSSingletonDispersion(t *testing.T) {
	c, m, ids := world(t)
	s, err := NewScorer(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Singleton weight = sd/mean of the feature's count distribution.
	fid := ids["hamster"]
	mean := m.Stats.Mean(fid)
	want := math.Sqrt(m.Stats.Variance(fid)) / mean
	got := s.CorS(fig.Clique{Feats: []media.FID{fid}})
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("singleton CorS = %v, want dispersion %v", got, want)
	}
	// A rarer feature gets a larger singleton weight than a common one:
	// hamster appears in 3 of 4 objects, engine in 1 of 4.
	rare := s.CorS(fig.Clique{Feats: []media.FID{ids["engine"]}})
	common := s.CorS(fig.Clique{Feats: []media.FID{ids["hamster"]}})
	if rare <= common {
		t.Errorf("rare feature weight %v not above common %v", rare, common)
	}
	// Absent features (mean 0) weigh 0.
	if got := s.CorS(fig.Clique{Feats: []media.FID{media.FID(c.Dict.Len() + 9)}}); got != 0 {
		t.Errorf("unknown feature weight = %v, want 0", got)
	}
}

func TestCorSPairIsNormalizedPearson(t *testing.T) {
	c, m, ids := world(t)
	s, err := NewScorer(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	pair := fig.Clique{Feats: []media.FID{ids["hamster"], ids["animal"]}}
	raw := m.Stats.CorS(pair.Feats)
	want := raw / float64(c.Len())
	if want < 0 {
		want = 0
	}
	if got := s.CorS(pair); math.Abs(got-want) > 1e-12 {
		t.Errorf("pair CorS = %v, want %v", got, want)
	}
	if got := s.CorS(pair); got < 0 || got > 1+1e-9 {
		t.Errorf("pair CorS = %v outside Pearson range", got)
	}
}
