// Package mrf implements the probabilistic similarity model of Sections
// 3.3–3.4 and its temporal extension of Section 4. Treating the Feature
// Interaction Graph G′ (the query's FIG with its virtual root replaced by a
// candidate object O_i) as a Markov Random Field, the similarity score is
//
//	P(O_i, O_q) ∝ Σ_{c ∈ C(G′)} ϕ(c)                      (Eq. 6)
//
// with the smoothed potential
//
//	ϕ(c)  = λ_c · [ (1−α)·freq(n_1..n_k | O_i)/|O_i|
//	              + α·Σ_{n_i∈c} Σ_{n_j∈O_i−c} Cor(n_i,n_j)
//	                  / ((|c|−1)·|O_i−c|) ]                (Eq. 7)
//
// optionally weighted by the clique's correlation strength
//
//	ϕ′(c) = CorS(n_1..n_k) · ϕ(c)                          (Eq. 9)
//
// and, for recommendation, decayed by the clique's age
//
//	ϕ_rec(c, t_i) = λ_c · δ^(t_c−t_i) · CorS(·) · P(·|O_r) (Eq. 10)
//
// Following Section 3.4, λ_c is constrained to depend only on the clique
// size |c|, which keeps the MRF hypothesis space trainable; CorS carries the
// per-clique importance. freq(n_1..n_k|O_i) — the appearance frequency of
// the whole feature set in O_i — is the number of complete co-occurrences,
// i.e. the minimum per-feature count (for a single feature this is its
// count). The paper leaves the set-frequency estimator unspecified; the
// minimum is the standard conjunctive choice.
package mrf

import (
	"fmt"
	"math"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/floatcache"
	"figfusion/internal/media"
	"figfusion/internal/numeric"
)

// MaxCliqueFeatures is the largest clique feature count the default λ vector
// covers.
const MaxCliqueFeatures = 4

// Params are the trainable parameters Λ of the MRF plus the model switches.
type Params struct {
	// Lambda[k-1] is λ_c for cliques with k feature nodes (clique size
	// k+1 including the virtual root). Cliques larger than the vector get
	// weight 0.
	Lambda []float64
	// Alpha is the smoothing trade-off of Eq. 7: 0 disables the
	// correlation-smoothing term, 1 uses only it.
	Alpha float64
	// UseCorS enables the Eq. 9 clique-importance weighting.
	UseCorS bool
	// Delta is the temporal decay δ < 1 of Eq. 10; only ScoreTemporal
	// uses it. Delta 1 disables decay.
	Delta float64
}

// DefaultParams mirror the relative clique-size weights that term-dependency
// MRF retrieval settles on (heavily favouring small cliques), with moderate
// smoothing, CorS weighting on, and the paper's best decay δ = 0.4.
func DefaultParams() Params {
	return Params{
		Lambda:  []float64{0.70, 0.20, 0.08, 0.02},
		Alpha:   0.25,
		UseCorS: true,
		Delta:   0.4,
	}
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if len(p.Lambda) == 0 {
		return fmt.Errorf("mrf: empty lambda vector")
	}
	for i, l := range p.Lambda {
		if l < 0 || math.IsNaN(l) {
			return fmt.Errorf("mrf: lambda[%d] = %v must be non-negative", i, l)
		}
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("mrf: alpha = %v out of [0,1]", p.Alpha)
	}
	if p.Delta <= 0 || p.Delta > 1 {
		return fmt.Errorf("mrf: delta = %v out of (0,1]", p.Delta)
	}
	return nil
}

// LambdaFor returns λ_c for a clique with nFeats feature nodes.
func (p Params) LambdaFor(nFeats int) float64 {
	if nFeats < 1 || nFeats > len(p.Lambda) {
		return 0
	}
	return p.Lambda[nFeats-1]
}

// Scorer evaluates clique potentials and object similarity scores. It
// caches CorS per clique (CorS depends only on corpus statistics, not on the
// candidate object) and per-(feature, object) smoothing sums. Candidate
// objects passed to Potential/Score must come from the model's corpus (the
// smoothing cache is keyed by their stable ObjectIDs); query objects may be
// external. Safe for concurrent use: both caches are sharded (per-shard
// RWMutex, keys striped by hash) so concurrent queries do not serialise on
// a global lock, and every entry is stamped with the model's statistics
// generation, so the caches self-invalidate when the corpus grows — even
// in scorers that never hear about the insert (WithParams clones).
type Scorer struct {
	Model  *corr.Model
	Params Params

	// cors caches the Eq. 9 clique weight by canonical clique key.
	cors *floatcache.Cache[string]

	// smooth caches (FID, ObjectID) → Σ_{f_j∈O} Cor(f, f_j). Cliques
	// share features heavily (every clique of a FIG reuses the same
	// nodes), so caching this sum turns the Eq. 7 smoothing term from
	// O(|c|·|O|) correlation evaluations per potential into O(|c|)
	// lookups.
	smooth *floatcache.Cache[uint64]
}

// NewScorer builds a scorer over the correlation model.
func NewScorer(m *corr.Model, p Params) (*Scorer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Scorer{
		Model:  m,
		Params: p,
		cors:   floatcache.New[string](floatcache.HashString),
		smooth: floatcache.New[uint64](floatcache.HashUint64),
	}, nil
}

// WithParams returns a scorer with different parameters sharing this
// scorer's model and its warm CorS and smoothing caches. Both cached
// quantities are parameter-independent — CorS is a pure function of the
// corpus statistics, the smoothing sums a pure function of the correlation
// tables; λ, α and the switches only enter Potential outside the caches —
// and both caches are concurrency-safe and generation-stamped, so clones
// sharing them stay correct across corpus growth. This is what makes the
// λ/α coordinate ascent cheap: every candidate scorer reuses the weights
// and sums already computed instead of refilling cold caches per sweep
// point.
func (s *Scorer) WithParams(p Params) (*Scorer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Scorer{Model: s.Model, Params: p, cors: s.cors, smooth: s.smooth}, nil
}

// CorS returns the cached correlation-strength weight of a clique for the
// Eq. 9 importance weighting ("the larger the CorS, the more important the
// clique"). The weight itself — Eq. 8 normalized by |D| for multi-feature
// cliques, the standardized dispersion sd(n)/mean(n) for singletons,
// clamped non-negative — is defined once in corr.Stats.CliqueWeight; the
// inverted index stores the same quantity per entry, so indexed search
// paths serve it without consulting this cache.
func (s *Scorer) CorS(c fig.Clique) float64 {
	key := c.Key()
	gen := s.Model.Generation()
	if v, ok := s.cors.Get(gen, key); ok {
		return v
	}
	v := s.Model.Stats.CliqueWeight(c.Feats)
	// Discard on a generation change so a value computed from newer
	// statistics is never stamped with the older generation (see the
	// floatcache package comment).
	if s.Model.Generation() == gen {
		s.cors.Put(gen, key, v)
	}
	return v
}

// setFreq returns freq(n_1..n_k | O): the number of complete co-occurrences
// of the clique's feature set in O (minimum per-feature count).
func setFreq(feats []media.FID, o *media.Object) float64 {
	minCount := math.MaxInt32
	for _, fid := range feats {
		c := o.Count(fid)
		if c < minCount {
			minCount = c
		}
		if minCount == 0 {
			return 0
		}
	}
	return float64(minCount)
}

// conditional computes P(n_1..n_k | O_i) of Eq. 7: the smoothed probability
// that the clique's features appear together in the object.
func (s *Scorer) conditional(feats []media.FID, o *media.Object) float64 {
	total := o.TotalCount()
	if total == 0 || len(feats) == 0 {
		return 0
	}
	p := (1 - s.Params.Alpha) * setFreq(feats, o) / float64(total)
	if s.Params.Alpha > 0 {
		p += s.Params.Alpha * s.smoothing(feats, o)
	}
	return p
}

// smoothing computes the second component of Eq. 7: the mean correlation
// between clique features and the object's remaining features,
// Σ_{n_i∈c} Σ_{n_j∈O−c} Cor(n_i, n_j) / ((|c|−1)·|O−c|), where |c|−1 is the
// number of feature nodes in the clique. The inner sum over the whole
// object is served from the per-(feature, object) cache and corrected by
// subtracting the clique features present in O.
func (s *Scorer) smoothing(feats []media.FID, o *media.Object) float64 {
	present := 0
	for _, f := range feats {
		if o.Has(f) {
			present++
		}
	}
	rest := o.Len() - present
	if rest == 0 {
		return 0
	}
	var sum float64
	for _, fi := range feats {
		total := s.featureObjectCor(fi, o)
		// Remove contributions of clique members that are in O.
		for _, fj := range feats {
			if o.Has(fj) {
				total -= s.Model.Cor(fi, fj)
			}
		}
		sum += total
	}
	return sum / (float64(len(feats)) * float64(rest))
}

// featureObjectCor returns Σ_{f_j ∈ O} Cor(f, f_j), cached per (f, O).
func (s *Scorer) featureObjectCor(f media.FID, o *media.Object) float64 {
	key := uint64(uint32(f))<<32 | uint64(uint32(o.ID))
	gen := s.Model.Generation()
	if v, ok := s.smooth.Get(gen, key); ok {
		return v
	}
	var v float64
	for _, fj := range o.Feats {
		v += s.Model.Cor(f, fj)
	}
	if s.Model.Generation() == gen {
		s.smooth.Put(gen, key, v)
	}
	return v
}

// PotentialParts returns the two candidate-dependent components of the
// Eq. 7 conditional for one clique feature set: the set-frequency ratio
// freq(n_1..n_k|O)/|O| and the smoothing mean. They are computed with the
// same arithmetic the scoring paths use, so per-block maxima taken over
// them upper-bound (up to reassociation rounding; see the index package's
// bound inflation) every conditional the clique can produce for those
// postings at any (α, λ, CorS) — which is what lets the inverted index
// store parameter-independent block summaries.
func (s *Scorer) PotentialParts(feats []media.FID, o *media.Object) (sf, sm float64) {
	total := o.TotalCount()
	if total == 0 || len(feats) == 0 {
		return 0, 0
	}
	return setFreq(feats, o) / float64(total), s.smoothing(feats, o)
}

// Potential computes ϕ′(c) for a candidate object: Eq. 7 scaled by λ_c and,
// when enabled, by the Eq. 9 CorS weight.
func (s *Scorer) Potential(c fig.Clique, o *media.Object) float64 {
	lambda := s.Params.LambdaFor(len(c.Feats))
	if numeric.IsZero(lambda) {
		return 0
	}
	phi := lambda * s.conditional(c.Feats, o)
	if s.Params.UseCorS {
		phi *= s.CorS(c)
	}
	return phi
}

// Score computes the Eq. 6 similarity of a candidate object to a query
// represented by its clique set: the sum of clique potentials.
func (s *Scorer) Score(cliques []fig.Clique, o *media.Object) float64 {
	var sum float64
	for _, c := range cliques {
		sum += s.Potential(c, o)
	}
	return sum
}

// PotentialTemporal computes ϕ_rec of Eq. 10 for a timestamped profile
// clique against a candidate object, with the recommendation time nowMonth
// as t_c. Cliques without a timestamp (Month < 0) and future-dated cliques
// decay as age 0.
func (s *Scorer) PotentialTemporal(c fig.Clique, o *media.Object, nowMonth int) float64 {
	phi := s.Potential(c, o)
	if numeric.IsZero(phi) || numeric.Eq(s.Params.Delta, 1) {
		return phi
	}
	age := 0
	if c.Month >= 0 && nowMonth > c.Month {
		age = nowMonth - c.Month
	}
	return phi * math.Pow(s.Params.Delta, float64(age))
}

// ScoreTemporal computes the recommendation score of Section 4: the sum of
// temporally decayed potentials of the profile's timestamped cliques.
func (s *Scorer) ScoreTemporal(cliques []fig.Clique, o *media.Object, nowMonth int) float64 {
	var sum float64
	for _, c := range cliques {
		sum += s.PotentialTemporal(c, o, nowMonth)
	}
	return sum
}

// Reset drops the scorer's memoised CorS and smoothing values eagerly,
// releasing their memory. Correctness no longer depends on calling it:
// both caches are stamped with the model's statistics generation and
// self-invalidate when corr.Model.InvalidateCache advances it.
func (s *Scorer) Reset() {
	s.cors.Reset()
	s.smooth.Reset()
}

// CacheStats returns lifetime hit/miss counts for the CorS and smoothing
// caches — the observability hook the serving metrics expose. Misses are
// exact; hits are a sampled estimate (see floatcache.Cache.Stats).
func (s *Scorer) CacheStats() (corsHits, corsMisses, smoothHits, smoothMisses uint64) {
	corsHits, corsMisses = s.cors.Stats()
	smoothHits, smoothMisses = s.smooth.Stats()
	return
}
