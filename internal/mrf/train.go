package mrf

import (
	"encoding/binary"
	"math"

	"figfusion/internal/numeric"
)

// Objective evaluates a parameter setting and returns a quality score to
// maximise — in this repo, mean Precision@10 over training queries, which is
// the rank-metric-driven training of Metzler & Croft [16] the paper adopts
// (Section 5.2: "we simply adopt the method proposed in [16]").
type Objective func(Params) float64

// Train searches the constrained parameter space of Section 3.4 by
// coordinate ascent: λ is restricted to the simplex over clique sizes and α
// to [0, 1], each swept over a small grid, repeating until no coordinate
// move improves the objective or maxRounds is reached. It returns the best
// parameters found and their objective value. The base parameters supply
// the fixed switches (UseCorS, Delta) and the λ dimensionality.
func Train(base Params, objective Objective, maxRounds int) (Params, float64) {
	// The sweeps revisit parameter points — normalization collapses many
	// grid values onto the same simplex point, and later rounds re-test the
	// incumbent's neighbourhood — so memoise the objective by the exact
	// float bits of the parameters. The ascent's decision sequence is
	// unchanged: a memoised value is the value the objective returned.
	memo := make(map[string]float64)
	eval := func(p Params) float64 {
		k := paramsKey(p)
		if v, ok := memo[k]; ok {
			return v
		}
		v := objective(p)
		memo[k] = v
		return v
	}
	best := clone(base)
	normalize(best.Lambda)
	bestScore := eval(best)

	lambdaGrid := []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}
	alphaGrid := []float64{0, 0.1, 0.25, 0.5, 0.75}

	for round := 0; round < maxRounds; round++ {
		improved := false
		// Sweep each λ coordinate.
		for i := range best.Lambda {
			for _, v := range lambdaGrid {
				cand := clone(best)
				cand.Lambda[i] = v
				normalize(cand.Lambda)
				if score := eval(cand); score > bestScore {
					best, bestScore = cand, score
					improved = true
				}
			}
		}
		// Sweep α.
		for _, a := range alphaGrid {
			cand := clone(best)
			cand.Alpha = a
			if score := eval(cand); score > bestScore {
				best, bestScore = cand, score
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return best, bestScore
}

// TrainDelta sweeps the temporal decay δ of Eq. 10 on a recommendation
// objective (the Figure 10 experiment) and returns the best setting.
func TrainDelta(base Params, objective Objective, grid []float64) (Params, float64) {
	if len(grid) == 0 {
		grid = []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.1}
	}
	best := clone(base)
	bestScore := math.Inf(-1)
	for _, d := range grid {
		cand := clone(base)
		cand.Delta = d
		if score := objective(cand); score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best, bestScore
}

// paramsKey serializes the exact float bits of every trainable parameter
// (plus the switches) as the memoisation key; two parameter settings map to
// the same key iff every field is bit-identical.
func paramsKey(p Params) string {
	buf := make([]byte, 0, 8*(len(p.Lambda)+2)+1)
	for _, l := range p.Lambda {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Alpha))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Delta))
	if p.UseCorS {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return string(buf)
}

func clone(p Params) Params {
	out := p
	out.Lambda = append([]float64(nil), p.Lambda...)
	return out
}

// normalize scales λ onto the probability simplex; an all-zero vector
// becomes uniform.
func normalize(lambda []float64) {
	var sum float64
	for _, l := range lambda {
		sum += l
	}
	if numeric.IsZero(sum) {
		for i := range lambda {
			lambda[i] = 1 / float64(len(lambda))
		}
		return
	}
	for i := range lambda {
		lambda[i] /= sum
	}
}
