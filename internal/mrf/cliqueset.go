package mrf

import (
	"math"
	"sort"
	"sync"

	"figfusion/internal/fig"
	"figfusion/internal/media"
	"figfusion/internal/numeric"
)

// CliqueSet is a query's clique list compiled against one scorer: every
// candidate-independent quantity of the Eq. 7/9 potential — λ_c, the
// Eq. 9 CorS weight, and the clique-internal correlation matrix the
// smoothing correction subtracts — is evaluated once per query instead of
// once per (clique, candidate) pair. On the indexed search path those
// lookups were the hot spot: each one crossed a cache mutex per
// candidate. A CliqueSet is immutable after Compile and safe to share
// across the scoring workers of one query; it computes bit-identical
// scores to Scorer.Score over the same cliques.
type CliqueSet struct {
	s       *Scorer
	cliques []fig.Clique
	lambda  []float64   // λ_c per clique (0 ⇒ the clique is skipped)
	weight  []float64   // Eq. 9 weight per clique
	pairCor [][]float64 // k×k row-major Cor(f_i, f_j) per clique; nil when α = 0
	feats   []media.FID // sorted distinct features of the active cliques
	featIdx [][]int32   // per active clique: positions of its Feats in feats

	// scratch recycles Scratch buffers across the scoring passes that share
	// this compiled query (the shards of a scatter-gather search); it does
	// not alter the compiled state, which stays immutable.
	scratch sync.Pool
}

// Compile precomputes the per-clique state for one query. weights, when
// non-nil, supplies the Eq. 9 weight per clique (the indexed paths pass
// the CorS values stored in the inverted index); a nil weights computes
// them through the scorer's cache. The weights slice must be aligned with
// cliques.
func (s *Scorer) Compile(cliques []fig.Clique, weights []float64) *CliqueSet {
	cs := &CliqueSet{
		s:       s,
		cliques: cliques,
		lambda:  make([]float64, len(cliques)),
	}
	if s.Params.UseCorS {
		if weights != nil {
			cs.weight = weights
		} else {
			cs.weight = make([]float64, len(cliques))
			for i, c := range cliques {
				cs.weight[i] = s.CorS(c)
			}
		}
	}
	smoothed := s.Params.Alpha > 0
	if smoothed {
		cs.pairCor = make([][]float64, len(cliques))
	}
	seen := make(map[media.FID]struct{})
	for i, c := range cliques {
		cs.lambda[i] = s.Params.LambdaFor(len(c.Feats))
		if numeric.IsZero(cs.lambda[i]) {
			continue
		}
		for _, f := range c.Feats {
			if _, ok := seen[f]; !ok {
				seen[f] = struct{}{}
				cs.feats = append(cs.feats, f)
			}
		}
		if !smoothed {
			continue
		}
		k := len(c.Feats)
		m := make([]float64, k*k)
		for a, fi := range c.Feats {
			for b, fj := range c.Feats {
				m[a*k+b] = s.Model.Cor(fi, fj)
			}
		}
		cs.pairCor[i] = m
	}
	// The scratch fill walks feats and a candidate's (sorted) feature list
	// in lockstep, so the distinct features must be sorted too.
	sort.Slice(cs.feats, func(a, b int) bool { return cs.feats[a] < cs.feats[b] })
	pos := make(map[media.FID]int32, len(cs.feats))
	for i, f := range cs.feats {
		pos[f] = int32(i)
	}
	cs.featIdx = make([][]int32, len(cliques))
	for i, c := range cliques {
		if numeric.IsZero(cs.lambda[i]) {
			continue
		}
		idx := make([]int32, len(c.Feats))
		for a, f := range c.Feats {
			idx[a] = pos[f]
		}
		cs.featIdx[i] = idx
	}
	return cs
}

// Len returns the number of compiled cliques.
func (cs *CliqueSet) Len() int { return len(cs.cliques) }

// ScoringParams exposes the parameters this set was compiled against, so
// the pruning layer can evaluate its admission bound with the same α the
// potentials use.
func (cs *CliqueSet) ScoringParams() Params { return cs.s.Params }

// WeightedLambda returns λ_c scaled by the compiled Eq. 9 weight (or λ_c
// alone when CorS weighting is off) for the i-th clique — the
// candidate-independent factor of potentialAt. Multiplying it by an upper
// bound on the Eq. 7 conditional bounds the clique's potential for any
// candidate, up to one reassociation of the λ·cond·w product.
func (cs *CliqueSet) WeightedLambda(i int) float64 {
	lambda := cs.lambda[i]
	if numeric.IsZero(lambda) {
		return 0
	}
	if cs.s.Params.UseCorS {
		lambda *= cs.weight[i]
	}
	return lambda
}

// Score computes the Eq. 6 similarity of a candidate object to the
// compiled query: the sum of clique potentials, identical to
// Scorer.Score over the same cliques.
func (cs *CliqueSet) Score(o *media.Object) float64 {
	var sum float64
	for i := range cs.cliques {
		sum += cs.Potential(i, o)
	}
	return sum
}

// Potential computes ϕ′ of the i-th compiled clique for a candidate:
// Eq. 7 scaled by λ_c and, when enabled, by the precompiled Eq. 9 weight.
func (cs *CliqueSet) Potential(i int, o *media.Object) float64 {
	lambda := cs.lambda[i]
	if numeric.IsZero(lambda) {
		return 0
	}
	phi := lambda * cs.conditional(i, o)
	if cs.s.Params.UseCorS {
		phi *= cs.weight[i]
	}
	return phi
}

// conditional mirrors Scorer.conditional with the compiled state.
func (cs *CliqueSet) conditional(i int, o *media.Object) float64 {
	feats := cs.cliques[i].Feats
	total := o.TotalCount()
	if total == 0 || len(feats) == 0 {
		return 0
	}
	p := (1 - cs.s.Params.Alpha) * setFreq(feats, o) / float64(total)
	if cs.s.Params.Alpha > 0 {
		p += cs.s.Params.Alpha * cs.smoothing(i, o)
	}
	return p
}

// smoothing mirrors Scorer.smoothing, serving the clique-internal
// correlations from the compiled matrix instead of per-candidate
// Model.Cor calls. The iteration and subtraction order match exactly, so
// the floating-point result is bit-identical.
func (cs *CliqueSet) smoothing(i int, o *media.Object) float64 {
	feats := cs.cliques[i].Feats
	present := 0
	for _, f := range feats {
		if o.Has(f) {
			present++
		}
	}
	rest := o.Len() - present
	if rest == 0 {
		return 0
	}
	k := len(feats)
	cors := cs.pairCor[i]
	var sum float64
	for a, fi := range feats {
		total := cs.s.featureObjectCor(fi, o)
		// Remove contributions of clique members that are in O.
		for b, fj := range feats {
			if o.Has(fj) {
				total -= cors[a*k+b]
			}
		}
		sum += total
	}
	return sum / (float64(k) * float64(rest))
}

// Scratch is per-candidate scoring state for one CliqueSet, indexed by the
// set's distinct features: the candidate's feature counts, presence flags,
// and feature–object correlation sums. Filling it once per candidate
// replaces the per-clique binary searches (Count, Has) and smoothing-cache
// lookups that dominated the scoring profile — cliques share features, so
// the same (feature, candidate) state was being fetched once per clique.
// A Scratch belongs to one goroutine; each scoring worker makes its own.
type Scratch struct {
	counts  []int
	present []bool
	cors    []float64
}

// NewScratch returns a scratch sized for this clique set.
func (cs *CliqueSet) NewScratch() *Scratch {
	n := len(cs.feats)
	return &Scratch{
		counts:  make([]int, n),
		present: make([]bool, n),
		cors:    make([]float64, n),
	}
}

// GetScratch returns a pooled scratch for this compiled query, allocating
// one when the pool is empty. Scratches fully overwrite their state on
// every fill, so recycling needs no reset; return with PutScratch.
func (cs *CliqueSet) GetScratch() *Scratch {
	if v := cs.scratch.Get(); v != nil {
		return v.(*Scratch)
	}
	return cs.NewScratch()
}

// PutScratch recycles a scratch obtained from GetScratch. The scratch must
// not be used after return, and must only go back to the CliqueSet that
// issued it (scratch buffers are sized to the compiled feature set).
func (cs *CliqueSet) PutScratch(sc *Scratch) { cs.scratch.Put(sc) }

// fill loads the candidate's state for every distinct query feature: one
// linear merge over the two sorted feature lists for counts and presence,
// and (when smoothing is on) one cache access per feature for the
// feature–object correlation sum.
func (cs *CliqueSet) fill(sc *Scratch, o *media.Object) {
	j := 0
	for i, f := range cs.feats {
		for j < len(o.Feats) && o.Feats[j] < f {
			j++
		}
		if j < len(o.Feats) && o.Feats[j] == f {
			sc.counts[i] = int(o.Counts[j])
			sc.present[i] = true
		} else {
			sc.counts[i] = 0
			sc.present[i] = false
		}
	}
	if cs.s.Params.Alpha > 0 {
		for i, f := range cs.feats {
			sc.cors[i] = cs.s.featureObjectCor(f, o)
		}
	}
}

// ScoreScratch is Score with caller-provided scratch state — the form the
// retrieval workers use. The result is bit-identical to Score (and hence
// to Scorer.Score): the scratch only changes where each operand is read
// from, never the value or the order of the floating-point operations.
func (cs *CliqueSet) ScoreScratch(sc *Scratch, o *media.Object) float64 {
	cs.fill(sc, o)
	var sum float64
	for i := range cs.cliques {
		sum += cs.potentialAt(sc, i, o)
	}
	return sum
}

func (cs *CliqueSet) potentialAt(sc *Scratch, i int, o *media.Object) float64 {
	lambda := cs.lambda[i]
	if numeric.IsZero(lambda) {
		return 0
	}
	phi := lambda * cs.conditionalAt(sc, i, o)
	if cs.s.Params.UseCorS {
		phi *= cs.weight[i]
	}
	return phi
}

// conditionalAt mirrors conditional, reading counts from the scratch.
func (cs *CliqueSet) conditionalAt(sc *Scratch, i int, o *media.Object) float64 {
	feats := cs.featIdx[i]
	total := o.TotalCount()
	if total == 0 || len(feats) == 0 {
		return 0
	}
	minCount := math.MaxInt32
	for _, idx := range feats {
		if c := sc.counts[idx]; c < minCount {
			minCount = c
		}
		if minCount == 0 {
			break
		}
	}
	p := (1 - cs.s.Params.Alpha) * float64(minCount) / float64(total)
	if cs.s.Params.Alpha > 0 {
		p += cs.s.Params.Alpha * cs.smoothingAt(sc, i, o)
	}
	return p
}

// smoothingAt mirrors smoothing, reading presence and feature–object
// correlation sums from the scratch; iteration and subtraction order match
// exactly, so the floating-point result is bit-identical.
func (cs *CliqueSet) smoothingAt(sc *Scratch, i int, o *media.Object) float64 {
	feats := cs.featIdx[i]
	present := 0
	for _, idx := range feats {
		if sc.present[idx] {
			present++
		}
	}
	rest := o.Len() - present
	if rest == 0 {
		return 0
	}
	k := len(feats)
	cors := cs.pairCor[i]
	var sum float64
	for a, idxA := range feats {
		total := sc.cors[idxA]
		for b, idxB := range feats {
			if sc.present[idxB] {
				total -= cors[a*k+b]
			}
		}
		sum += total
	}
	return sum / (float64(k) * float64(rest))
}
