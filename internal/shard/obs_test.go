package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"time"

	"figfusion/internal/media"
	"figfusion/internal/obs"
	"figfusion/internal/retrieval"
	"figfusion/internal/topk"
)

// TestSearchContextCancellation: a cancelled context aborts a sharded
// search between scoring stripes instead of running to completion.
func TestSearchContextCancellation(t *testing.T) {
	d, m := testSystem(t)
	r, err := NewRouter(m, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := d.Corpus.Object(3)

	// Already-expired context: every scoring stripe sees the cancellation
	// on its first check, so the abort is deterministic even on a corpus
	// this small.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items, err := r.SearchContext(ctx, q, 10, q.ID)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if items != nil {
		t.Errorf("cancelled search returned results: %v", items)
	}

	// Deadline flavour: an expired deadline reports DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := r.SearchContext(dctx, q, 10, q.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// A live context must not change results: SearchContext with
	// background context is byte-identical to Search.
	want := r.Search(q, 10, q.ID)
	got, err := r.SearchContext(context.Background(), q, 10, q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(itemBytes(got), itemBytes(want)) {
		t.Error("SearchContext(Background) diverges from Search")
	}
}

// TestSearchContextCancelMidFlight cancels while a stream of sharded
// searches is in progress and checks the stream shuts down with ctx.Err()
// rather than hanging or panicking (the race detector guards the
// goroutine handoff in gather).
func TestSearchContextCancelMidFlight(t *testing.T) {
	d, m := testSystem(t)
	r, err := NewRouter(m, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			q := d.Corpus.Object(media.ObjectID(i % d.Corpus.Len()))
			if _, err := r.SearchContext(ctx, q, 10, q.ID); err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("search loop ended with %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("search loop did not observe cancellation")
	}
}

// TestRouterMetrics: after SetMetrics, sharded searches and routed
// inserts show up under the shard.* instruments, and the per-shard
// fan-out histogram sees one observation per shard per search.
func TestRouterMetrics(t *testing.T) {
	d, m := testSystem(t)
	r, err := NewRouter(m, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r.SetMetrics(reg, obs.NewSlowLog(4, 0)) // threshold 0: every query is "slow"

	const searches = 3
	for i := 0; i < searches; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		r.Search(q, 5, q.ID)
	}
	if _, err := r.Insert([]media.Feature{{Kind: media.Text, Name: "topic00tag00"}}, []int{1}, 1); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["shard.search.total"]; got != searches {
		t.Errorf("shard.search.total = %d, want %d", got, searches)
	}
	if got := snap.Histograms["shard.prepare.latency"].Count; got != searches {
		t.Errorf("prepare observations = %d, want %d", got, searches)
	}
	if got := snap.Histograms["shard.fanout.latency"].Count; got != searches*2 {
		t.Errorf("fanout observations = %d, want %d (one per shard per search)", got, searches*2)
	}
	if got := snap.Histograms["shard.straggler.gap"].Count; got != searches {
		t.Errorf("straggler observations = %d, want %d", got, searches)
	}
	if got := snap.Counters["shard.inserts.total"]; got != 1 {
		t.Errorf("shard.inserts.total = %d, want 1", got)
	}
	perShard := snap.Counters["shard.00.inserts"] + snap.Counters["shard.01.inserts"]
	if perShard != 1 {
		t.Errorf("per-shard insert counters sum to %d, want 1", perShard)
	}
	// Engine-level instruments flow into the same registry.
	if got := snap.Counters["retrieval.search.total"]; got != searches*2 {
		t.Errorf("retrieval.search.total = %d, want %d (each shard runs one sub-search)", got, searches*2)
	}
	// Cache gauges registered by the shared scorer are present and sane.
	for _, name := range []string{"cache.cosine.hits", "cache.cosine.misses"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing", name)
		}
	}
	// The router-level resident-bytes gauge overwrites the per-shard ones
	// and sums across the whole sharded index.
	var wantResident int64
	for _, sh := range r.shards {
		wantResident += sh.eng.Index.MemoryBytes()
	}
	if got := snap.Gauges["index.resident.bytes"]; got != wantResident {
		t.Errorf("index.resident.bytes = %d, want %d (sum over shards)", got, wantResident)
	}
	// A built (not loaded) router has no load stats to expose.
	if _, ok := snap.Gauges["index.load.ms"]; ok {
		t.Error("index.load.ms registered on a built router")
	}
}

// TestRouterLoadGauges: a router restored from snapshots exposes the
// cold-start gauges — total snapshot bytes across shards and the slowest
// shard's load wall time.
func TestRouterLoadGauges(t *testing.T) {
	_, m := testSystem(t)
	r, err := NewRouter(m, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := t.TempDir() + "/snap"
	if _, err := r.Save(base); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(m, Config{Shards: 2}, base)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	loaded.SetMetrics(reg, nil)
	snap := reg.Snapshot()
	var wantBytes, maxMs int64
	for _, sh := range loaded.shards {
		ls := sh.eng.Index.LoadStats()
		if ls == nil {
			t.Fatal("loaded shard has no LoadStats")
		}
		wantBytes += ls.Bytes
		if ms := int64(ls.WallMillis); ms > maxMs {
			maxMs = ms
		}
	}
	if got := snap.Gauges["index.load.bytes"]; got != wantBytes {
		t.Errorf("index.load.bytes = %d, want %d (sum over shards)", got, wantBytes)
	}
	if got, ok := snap.Gauges["index.load.ms"]; !ok || got != maxMs {
		t.Errorf("index.load.ms = %d (present=%v), want %d (slowest shard)", got, ok, maxMs)
	}
	if got, ok := snap.Gauges["index.resident.bytes"]; !ok || got <= 0 {
		t.Errorf("index.resident.bytes = %d (present=%v), want positive", got, ok)
	}
}

// TestNewRouterRejectsEngineMetrics: observability attaches through
// Router.SetMetrics after shard wiring, never through the per-shard
// retrieval config (the donor scorers it would instrument get replaced).
func TestNewRouterRejectsEngineMetrics(t *testing.T) {
	_, m := testSystem(t)
	if _, err := NewRouter(m, Config{Shards: 2, Retrieval: retrieval.Config{Metrics: obs.NewRegistry()}}); err == nil {
		t.Error("Config.Retrieval.Metrics accepted")
	}
	if _, err := NewRouter(m, Config{Shards: 2, Retrieval: retrieval.Config{SlowLog: obs.NewSlowLog(1, 0)}}); err == nil {
		t.Error("Config.Retrieval.SlowLog accepted")
	}
}

// itemBytes flattens ranked items for byte-level comparison.
func itemBytes(items []topk.Item) []byte {
	var buf bytes.Buffer
	for _, it := range items {
		binary.Write(&buf, binary.LittleEndian, int64(it.ID))
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(it.Score))
	}
	return buf.Bytes()
}
