package shard

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestSearchTAContext: the router's TA scatter under an undone context is
// byte-identical to SearchTA, and a pre-cancelled context aborts the
// scatter with ctx.Canceled.
func TestSearchTAContext(t *testing.T) {
	d, m := testSystem(t)
	r, err := NewRouter(m, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := d.Corpus.Object(4)

	want := r.SearchTA(q, 10, q.ID)
	if len(want) == 0 {
		t.Fatal("SearchTA returned nothing; fixture too small")
	}
	got, err := r.SearchTAContext(context.Background(), q, 10, q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(itemBytes(got), itemBytes(want)) {
		t.Error("SearchTAContext(Background) diverges from SearchTA")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items, err := r.SearchTAContext(ctx, q, 10, q.ID)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if items != nil {
		t.Errorf("cancelled scatter returned results: %v", items)
	}
}
