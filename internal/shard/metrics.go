package shard

import (
	"fmt"
	"time"

	"figfusion/internal/obs"
)

// Metric names the router registers. Per-shard insert counters carry the
// shard number (shard.00.inserts, shard.01.inserts, …) so routing skew is
// visible directly in a metrics snapshot.
const (
	metricSearchTotal    = "shard.search.total"
	metricPrepareLatency = "shard.prepare.latency"
	metricFanoutLatency  = "shard.fanout.latency"
	metricStragglerGap   = "shard.straggler.gap"
	metricInsertsTotal   = "shard.inserts.total"
)

// routerMetrics is the router's instrument bundle: scatter-gather fan-out
// latency (one observation per shard per query), the straggler gap (the
// spread between the fastest and slowest shard of one query — the quantity
// that bounds scatter-gather tail latency), query-side prepare latency,
// and insert routing counters. Nil = instrumentation off.
type routerMetrics struct {
	searches  *obs.Counter
	prepare   *obs.Histogram
	fanout    *obs.Histogram
	straggler *obs.Histogram
	inserts   *obs.Counter
	shardIns  []*obs.Counter
}

func newRouterMetrics(reg *obs.Registry, shards int) *routerMetrics {
	if reg == nil {
		return nil
	}
	m := &routerMetrics{
		searches:  reg.Counter(metricSearchTotal),
		prepare:   reg.Histogram(metricPrepareLatency),
		fanout:    reg.Histogram(metricFanoutLatency),
		straggler: reg.Histogram(metricStragglerGap),
		inserts:   reg.Counter(metricInsertsTotal),
		shardIns:  make([]*obs.Counter, shards),
	}
	for i := range m.shardIns {
		m.shardIns[i] = reg.Counter(fmt.Sprintf("shard.%02d.inserts", i))
	}
	return m
}

// begin opens a prepare-stage span; zero time when disabled.
func (m *routerMetrics) begin() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// endPrepare closes the prepare span and counts the query.
func (m *routerMetrics) endPrepare(start time.Time) {
	if m == nil {
		return
	}
	m.prepare.Observe(time.Since(start))
	m.searches.Inc()
}

// observeFanout records the per-shard latencies of one scatter and their
// straggler gap (only meaningful past one shard).
func (m *routerMetrics) observeFanout(durs []time.Duration) {
	if m == nil {
		return
	}
	min, max := durs[0], durs[0]
	for _, d := range durs {
		m.fanout.Observe(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if len(durs) > 1 {
		m.straggler.Observe(max - min)
	}
}

// recordInsert counts one routed insert against its owning shard.
func (m *routerMetrics) recordInsert(shard int) {
	if m == nil {
		return
	}
	m.inserts.Inc()
	m.shardIns[shard].Inc()
}

// SetMetrics attaches (or detaches, with a nil registry) observability:
// router-level fan-out/straggler/insert instruments plus each shard
// engine's per-stage query metrics — all into one shared registry, so
// per-stage histograms aggregate across shards. Call after construction
// or load, never concurrently with serving (the scorer-backed cache
// gauges are registered through the shared shard-0 scorer, which is only
// in place once the router is fully wired).
func (r *Router) SetMetrics(reg *obs.Registry, slow *obs.SlowLog) {
	r.metrics = newRouterMetrics(reg, len(r.shards))
	for _, sh := range r.shards {
		sh.eng.SetMetrics(reg, slow)
	}
	if reg == nil {
		return
	}
	// The per-shard engines each registered index gauges over their own
	// slice of the corpus; overwrite them with corpus-wide aggregates
	// (Func registration is replace-by-name). Resident bytes and snapshot
	// bytes sum across shards; cold-start load time is the slowest shard,
	// since shard snapshots load concurrently at startup.
	shards := r.shards
	reg.Func("index.resident.bytes", func() int64 {
		var total int64
		for _, sh := range shards {
			if sh.eng.Index != nil {
				total += sh.eng.Index.MemoryBytes()
			}
		}
		return total
	})
	var loadMs, loadBytes int64
	loaded := false
	for _, sh := range shards {
		if sh.eng.Index == nil {
			continue
		}
		if ls := sh.eng.Index.LoadStats(); ls != nil {
			loaded = true
			loadBytes += ls.Bytes
			if ms := int64(ls.WallMillis); ms > loadMs {
				loadMs = ms
			}
		}
	}
	if loaded {
		reg.Func("index.load.ms", func() int64 { return loadMs })
		reg.Func("index.load.bytes", func() int64 { return loadBytes })
	}
}
