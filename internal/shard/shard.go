// Package shard implements the scatter-gather serving subsystem: the
// corpus's postings are partitioned across N independent retrieval engines
// by a deterministic hash of the object ID, while every shard shares the
// one corpus-global correlation model and statistics. Sharding therefore
// changes where candidates are generated and scored, never how: each
// candidate's MRF score is computed from the same global statistics a
// single-shard engine would use, so scatter-gather results are
// byte-identical at any shard count (the determinism test pins this at
// 1/2/4/NumCPU shards, before and after routed inserts, and across a
// snapshot round trip).
//
// Concurrency contract: searches fan out under a corpus-statistics read
// lock plus per-shard read locks; a routed insert takes the statistics
// write lock only for the global mutation (corpus append, statistics
// growth, cache invalidation) and then updates the owning shard's index
// under that shard's lock alone, so an insert blocks searches only for the
// short global phase and the one shard it lands on.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"figfusion/internal/corr"
	"figfusion/internal/index"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
	"figfusion/internal/topk"
)

// Config assembles a Router.
type Config struct {
	// Shards is the number of engine shards; 0 and 1 both mean a single
	// shard (the router then adds no goroutine fan-out per query).
	Shards int
	// Retrieval configures each per-shard engine. Index and SkipIndex must
	// be left zero: the router builds (or loads) one index per shard.
	// Metrics and SlowLog must also be left zero — attach observability
	// through Router.SetMetrics once the router is wired, so the cache
	// gauges bind the shared shard-0 scorer rather than the donor scorers
	// discarded during construction. Workers applies within one shard;
	// sharded deployments usually keep it at 1 and let the shard fan-out
	// supply the parallelism.
	Retrieval retrieval.Config
	// Owns restricts the router to a subset of the corpus — the partition
	// predicate of a multi-node deployment, where each node indexes only
	// the objects the cluster assignment routes to it while every node's
	// statistics still cover the whole corpus (scores are corpus-global).
	// nil owns everything (the single-machine mode). Routed inserts always
	// grow the corpus-global statistics; only owned objects are indexed.
	Owns func(media.ObjectID) bool
}

// ShardOf routes an object ID to its owning shard: a splitmix64-style
// finalizer over the ID, reduced modulo the shard count. The function is a
// pure, seedless mapping — the routing contract persisted snapshots rely
// on — so it must never change for a given (id, shards) pair.
func ShardOf(id media.ObjectID, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// shardState is one engine shard: the engine over this shard's postings
// and the lock serializing its index mutation against its reads.
type shardState struct {
	mu      sync.RWMutex
	eng     *retrieval.Engine
	objects int // corpus objects routed to this shard
}

// Router is the scatter-gather front of N engine shards. Construct with
// NewRouter or Load. Safe for concurrent use: searches, health snapshots
// and routed inserts may race freely.
type Router struct {
	model  *corr.Model
	shards []*shardState
	// owns is the partition predicate of a multi-node node (Config.Owns);
	// nil owns the whole corpus.
	owns func(media.ObjectID) bool

	// statsMu guards the corpus-global state (corpus objects, correlation
	// statistics, derived caches) that every search reads throughout
	// scoring: readers hold it shared for a whole scatter-gather, a routed
	// insert holds it exclusively only while growing the statistics.
	statsMu sync.RWMutex
	// insertMu serializes routed inserts end to end. Inserts are inherently
	// sequential (corpus IDs are dense and posting lists append-ordered);
	// serializing them also lets the post-append index update run outside
	// statsMu, where it only ever reads the statistics.
	insertMu sync.Mutex
	// inserts counts routed inserts since construction or load; snapshots
	// stamp it into the manifest alongside the model generation.
	inserts atomic.Uint64
	// metrics is the router-level instrument bundle (nil = off); attach
	// with SetMetrics.
	metrics *routerMetrics
}

// NewRouter partitions the model's corpus across cfg.Shards engines,
// building one ownership-filtered clique index per shard over the shared
// corpus-global statistics. All shards share one MRF scorer (and with it
// the generation-stamped CorS/smoothing caches), so per-candidate scores
// are bit-identical to a single-shard engine's.
func NewRouter(m *corr.Model, cfg Config) (*Router, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	if cfg.Retrieval.Index != nil || cfg.Retrieval.SkipIndex {
		return nil, fmt.Errorf("shard: Retrieval.Index/SkipIndex are managed by the router")
	}
	if cfg.Retrieval.Metrics != nil || cfg.Retrieval.SlowLog != nil {
		return nil, fmt.Errorf("shard: attach observability via Router.SetMetrics, not Retrieval.Metrics")
	}
	r := &Router{model: m, shards: make([]*shardState, n), owns: cfg.Owns}
	counts := r.ownedCounts(n)
	for s := 0; s < n; s++ {
		s := s
		owns := func(id media.ObjectID) bool { return r.ownsObject(id) && ShardOf(id, n) == s }
		inv := index.BuildOwnedWorkers(m, cfg.Retrieval.BuildOpts, cfg.Retrieval.EnumOpts, cfg.Retrieval.Workers, owns)
		if err := r.attach(s, inv, cfg, counts[s]); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ownsObject applies the partition predicate (everything when unset).
func (r *Router) ownsObject(id media.ObjectID) bool {
	return r.owns == nil || r.owns(id)
}

// ownedCounts tallies, in one corpus pass, how many owned objects route to
// each of n local shards.
func (r *Router) ownedCounts(n int) []int {
	counts := make([]int, n)
	corpus := r.model.Stats.Corpus()
	for i := 0; i < corpus.Len(); i++ {
		if id := media.ObjectID(i); r.ownsObject(id) {
			counts[ShardOf(id, n)]++
		}
	}
	return counts
}

// attach wires shard s around a prebuilt (or loaded) per-shard index. The
// first shard's engine donates its scorer to the rest, so every shard
// serves from the same parameter and cache state.
func (r *Router) attach(s int, inv *index.Inverted, cfg Config, objects int) error {
	engCfg := cfg.Retrieval
	engCfg.Index = inv
	eng, err := retrieval.NewEngine(r.model, engCfg)
	if err != nil {
		return fmt.Errorf("shard %d: %w", s, err)
	}
	if s > 0 {
		eng.Scorer = r.shards[0].eng.Scorer
	}
	r.shards[s] = &shardState{eng: eng, objects: objects}
	return nil
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Model returns the shared corpus-global correlation model. Reads of the
// corpus it serves must be pinned with View when inserts may race.
func (r *Router) Model() *corr.Model { return r.model }

// Generation returns the shared model's statistics generation — the stamp
// routed inserts advance and snapshots record.
func (r *Router) Generation() uint64 { return r.model.Generation() }

// Inserts returns the number of routed inserts since construction or load.
func (r *Router) Inserts() uint64 { return r.inserts.Load() }

// View runs fn while the corpus-global state is pinned against routed
// inserts — the hook HTTP handlers use to format corpus objects outside a
// search. fn must not call the router's own search or insert methods
// (recursive read-locking deadlocks once a writer queues).
func (r *Router) View(fn func()) {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	fn()
}

// Search scatter-gathers the indexed MRF search: every shard returns its
// local top-k and the partial lists fold under topk.MergeRanked's total
// order. Shard partitions are disjoint, so the merged list is exactly the
// single-engine top-k, byte for byte. The query-side work — FIG build,
// clique enumeration, MRF compile — is prepared once and shared by every
// shard; only candidate lookup and scoring are per-shard.
func (r *Router) Search(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	out, _ := r.SearchContext(context.Background(), q, k, exclude)
	return out
}

// SearchContext is Search under a context: each shard's scoring honours
// cancellation between stripes (see retrieval.Engine.SearchContext), and a
// done context aborts the scatter with ctx.Err(). With an undone context
// the results are byte-identical to Search.
func (r *Router) SearchContext(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) ([]topk.Item, error) {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	st := r.metrics.begin()
	p := r.shards[0].eng.Prepare(q)
	r.metrics.endPrepare(st)
	return r.gather(k, func(sh *shardState) ([]topk.Item, error) {
		return sh.search(ctx, p, k, exclude)
	})
}

// SearchTA is the scatter-gather form of the literal Algorithm 1 path:
// each shard runs the Threshold Algorithm over its own per-clique lists
// (every posting of an object lives on its owning shard, so per-shard
// aggregates are exact), and the exact per-shard top-k lists merge to the
// exact global top-k.
func (r *Router) SearchTA(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	out, _ := r.SearchTAContext(context.Background(), q, k, exclude)
	return out
}

// SearchTAContext is SearchTA under a context, with SearchContext's
// cancellation contract: a done context aborts the scatter with ctx.Err(),
// an undone one returns results byte-identical to SearchTA.
func (r *Router) SearchTAContext(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) ([]topk.Item, error) {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	st := r.metrics.begin()
	p := r.shards[0].eng.Prepare(q)
	r.metrics.endPrepare(st)
	return r.gather(k, func(sh *shardState) ([]topk.Item, error) {
		return sh.searchTA(ctx, p, k, exclude)
	})
}

// gather runs one search on every shard and folds the per-shard top-k
// lists. With no parallelism to exploit, the scatter runs inline — the
// per-query goroutine fan-out is pure overhead at GOMAXPROCS=1, and the
// fold is order-independent either way. When metrics are attached, each
// shard's latency feeds the fan-out histogram and the per-query max−min
// spread feeds the straggler-gap histogram. Any shard error (only
// cancellation today) aborts the merge.
func (r *Router) gather(k int, run func(*shardState) ([]topk.Item, error)) ([]topk.Item, error) {
	m := r.metrics
	n := len(r.shards)
	partial := make([][]topk.Item, n)
	errs := make([]error, n)
	var durs []time.Duration
	if m != nil {
		durs = make([]time.Duration, n)
	}
	runOne := func(i int, sh *shardState) {
		var st time.Time
		if m != nil {
			st = time.Now()
		}
		partial[i], errs[i] = run(sh)
		if m != nil {
			durs[i] = time.Since(st)
		}
	}
	if n == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i, sh := range r.shards {
			runOne(i, sh)
		}
	} else {
		var wg sync.WaitGroup
		for i, sh := range r.shards {
			wg.Add(1)
			go func(i int, sh *shardState) {
				defer wg.Done()
				runOne(i, sh)
			}(i, sh)
		}
		wg.Wait()
	}
	if m != nil {
		m.observeFanout(durs)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if n == 1 {
		return partial[0], nil
	}
	return topk.MergeRanked(partial, k), nil
}

func (sh *shardState) search(ctx context.Context, p *retrieval.PreparedQuery, k int, exclude media.ObjectID) ([]topk.Item, error) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.eng.SearchPreparedContext(ctx, p, k, exclude)
}

func (sh *shardState) searchTA(ctx context.Context, p *retrieval.PreparedQuery, k int, exclude media.ObjectID) ([]topk.Item, error) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.eng.SearchTAPreparedContext(ctx, p, k, exclude)
}

// Insert routes one new object: the shared corpus and statistics grow
// under the exclusive statistics lock (with cache invalidation advancing
// the model generation, which stamps every downstream cache stale), then
// the object's cliques join the owning shard's index under that shard's
// lock alone. Concurrent searches observe either the pre-insert corpus or
// the post-insert one; between the two phases a search may see the grown
// statistics before the new object is indexed, which only delays the
// object's retrievability, never corrupts a score.
func (r *Router) Insert(feats []media.Feature, counts []int, month int) (*media.Object, error) {
	return r.InsertAt(feats, counts, month, -1)
}

// PreconditionError reports a stamped insert (InsertAt) that found the
// corpus at a different size than the stamp demanded — the divergence
// signal of multi-node routed ingestion: a node that missed an insert
// answers every later stamped insert with this error instead of silently
// assigning the wrong object ID.
type PreconditionError struct {
	Objects int // corpus length found
	Expect  int // corpus length the stamp demanded
}

func (e *PreconditionError) Error() string {
	return fmt.Sprintf("shard: insert precondition failed: corpus holds %d objects but the insert was stamped for %d — node state has diverged", e.Objects, e.Expect)
}

// InsertAt is Insert with a generation stamp: when expect >= 0 the insert
// only applies if the corpus currently holds exactly expect objects (so
// the new object's ID is expect), else it fails with *PreconditionError
// and mutates nothing. A multi-node router stamps every replicated insert
// with its own pre-insert corpus length; a node whose corpus drifted —
// it missed an insert, or received one this router never saw — surfaces
// immediately instead of diverging further. Objects outside the partition
// predicate (Config.Owns) grow the statistics but are not indexed here;
// their postings live on the owning node.
func (r *Router) InsertAt(feats []media.Feature, counts []int, month int, expect int) (*media.Object, error) {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	if expect >= 0 {
		if got := r.corpusLen(); got != expect {
			return nil, &PreconditionError{Objects: got, Expect: expect}
		}
	}
	o, err := r.appendObject(feats, counts, month)
	if err != nil {
		return nil, err
	}
	if r.ownsObject(o.ID) {
		owner := ShardOf(o.ID, len(r.shards))
		if err := r.shards[owner].indexObject(o); err != nil {
			return nil, err
		}
		r.metrics.recordInsert(owner)
	}
	r.inserts.Add(1)
	return o, nil
}

// appendObject performs the corpus-global phase of a routed insert under
// the exclusive statistics lock.
func (r *Router) appendObject(feats []media.Feature, counts []int, month int) (*media.Object, error) {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	corpus := r.model.Stats.Corpus()
	o, err := corpus.Add(feats, counts, month)
	if err != nil {
		return nil, err
	}
	if err := r.model.Stats.Append(o); err != nil {
		return nil, err
	}
	r.model.InvalidateCache()
	// One reset suffices: every shard serves from shard 0's scorer.
	r.shards[0].eng.Scorer.Reset()
	return o, nil
}

// indexObject adds one appended object's cliques to this shard's index.
// It runs outside the statistics lock — FIG construction and CorS
// weighting only read the statistics, and the insert lock keeps any other
// mutation out — so concurrent searches block only on this one shard.
func (sh *shardState) indexObject(o *media.Object) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.eng.IndexObject(o); err != nil {
		return err
	}
	sh.objects++
	return nil
}

// ShardInfo is one shard's health snapshot.
type ShardInfo struct {
	Shard    int `json:"shard"`
	Objects  int `json:"objects"`
	Cliques  int `json:"cliques"`
	Postings int `json:"postings"`
}

// ShardInfos snapshots every shard's object, clique and posting counts —
// the per-shard stats the server's /healthz reports.
func (r *Router) ShardInfos() []ShardInfo {
	infos := make([]ShardInfo, len(r.shards))
	for i, sh := range r.shards {
		infos[i] = sh.info(i)
	}
	return infos
}

func (sh *shardState) info(i int) ShardInfo {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return ShardInfo{
		Shard:    i,
		Objects:  sh.objects,
		Cliques:  sh.eng.Index.NumCliques(),
		Postings: sh.eng.Index.Postings(),
	}
}
