package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"figfusion/internal/corr"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

// TestShardOfPinned pins the routing function's exact values: snapshots
// persist postings per shard, so ShardOf must never change for a given
// (id, shards) pair. If this test fails, the routing hash was altered and
// every existing snapshot set is silently mis-sharded.
func TestShardOfPinned(t *testing.T) {
	cases := []struct {
		id     media.ObjectID
		shards int
		want   int
	}{
		{0, 1, 0}, {12345, 1, 0},
		{0, 2, 0}, {1, 2, 1}, {2, 2, 0}, {3, 2, 0}, {4, 2, 0},
		{150, 2, 1}, {155, 2, 1}, {159, 2, 0},
		{0, 4, 0}, {1, 4, 1}, {2, 4, 2}, {3, 4, 0}, {4, 4, 0},
		{150, 4, 3}, {155, 4, 1}, {159, 4, 2},
	}
	for _, tc := range cases {
		if got := ShardOf(tc.id, tc.shards); got != tc.want {
			t.Errorf("ShardOf(%d, %d) = %d, want %d", tc.id, tc.shards, got, tc.want)
		}
	}
	// Every ID routes in range, and the mapping is total over shard counts.
	for id := media.ObjectID(0); id < 1000; id++ {
		for _, n := range []int{1, 2, 3, 4, 7, 16} {
			if s := ShardOf(id, n); s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, n, s)
			}
		}
	}
}

func TestNewRouterValidation(t *testing.T) {
	d, m := testSystem(t)
	if _, err := NewRouter(m, Config{Shards: 2, Retrieval: retrieval.Config{SkipIndex: true}}); err == nil {
		t.Error("SkipIndex accepted")
	}
	eng, err := retrieval.NewEngine(m, retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter(m, Config{Shards: 2, Retrieval: retrieval.Config{Index: eng.Index}}); err == nil {
		t.Error("preset Index accepted")
	}
	r, err := NewRouter(m, Config{Shards: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 1 {
		t.Errorf("Shards=0 built %d shards, want 1", r.NumShards())
	}
	_ = d
}

// TestShardInfos checks the health snapshot: per-shard object counts
// partition the corpus, postings are non-empty, and a routed insert grows
// exactly the owning shard.
func TestShardInfos(t *testing.T) {
	d, m := testSystem(t)
	r, err := NewRouter(m, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := func() int {
		total := 0
		for _, si := range r.ShardInfos() {
			total += si.Objects
		}
		return total
	}
	if got := sum(); got != d.Corpus.Len() {
		t.Fatalf("shard object counts sum to %d, want %d", got, d.Corpus.Len())
	}
	for _, si := range r.ShardInfos() {
		if si.Objects > 0 && si.Cliques == 0 {
			t.Errorf("shard %d holds %d objects but indexes no cliques", si.Shard, si.Objects)
		}
	}
	before := r.ShardInfos()
	o, err := r.Insert([]media.Feature{{Kind: media.Text, Name: "topic00tag00"}}, []int{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	owner := ShardOf(o.ID, r.NumShards())
	after := r.ShardInfos()
	for i := range after {
		want := before[i].Objects
		if i == owner {
			want++
		}
		if after[i].Objects != want {
			t.Errorf("shard %d objects = %d, want %d (owner %d)", i, after[i].Objects, want, owner)
		}
	}
	if r.Inserts() != 1 {
		t.Errorf("Inserts() = %d, want 1", r.Inserts())
	}
	if r.Generation() == 0 {
		t.Error("generation did not advance on insert")
	}
	// The routed object is immediately retrievable through scatter-gather.
	found := false
	for _, it := range r.Search(o, d.Corpus.Len(), retrieval.NoExclude) {
		if it.ID == o.ID {
			found = true
		}
	}
	if !found {
		t.Error("inserted object not retrievable")
	}
}

func TestLoadValidation(t *testing.T) {
	d, m := testSystem(t)
	r, err := NewRouter(m, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "snap")
	if _, err := r.Save(base); err != nil {
		t.Fatal(err)
	}

	freshModel := func() *corr.Model {
		m2 := d.Model()
		m2.Thresholds = m.Thresholds
		return m2
	}

	// Missing manifest.
	if _, _, err := Load(freshModel(), Config{}, filepath.Join(dir, "nope")); err == nil {
		t.Error("missing manifest accepted")
	}
	// Shard-count mismatch.
	if _, _, err := Load(freshModel(), Config{Shards: 4}, base); err == nil || !strings.Contains(err.Error(), "configured 4 shards") {
		t.Errorf("shard-count mismatch err = %v", err)
	}
	// Corpus-size mismatch.
	sub, err := d.Subset(50)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(sub.Model(), Config{}, base); err == nil || !strings.Contains(err.Error(), "objects") {
		t.Errorf("corpus mismatch err = %v", err)
	}
	// Swapped shard files must fail the routing integrity check.
	f0, f1 := shardFile(base, 0), shardFile(base, 1)
	tmp := filepath.Join(dir, "tmp")
	for _, mv := range [][2]string{{f0, tmp}, {f1, f0}, {tmp, f1}} {
		if err := os.Rename(mv[0], mv[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Load(freshModel(), Config{}, base); err == nil || !strings.Contains(err.Error(), "routes to shard") {
		t.Errorf("swapped shard files err = %v", err)
	}
}
