// Snapshot streaming: the single-connection form of the Save/Load snapshot
// set, used to bootstrap cluster nodes over /v1/admin/snapshot without a
// shared filesystem. The stream is one JSON manifest line followed by each
// shard's FSG1 segment, length-prefixed; integrity rides on the segment
// format's own CRC section trailers, verified by index.Load on the way in.
package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"figfusion/internal/corr"
	"figfusion/internal/index"
)

// streamShardName names shard s inside a streamed manifest. The names never
// touch a filesystem; they exist so a streamed manifest passes the same
// validation as an on-disk one.
func streamShardName(s int) string { return fmt.Sprintf("stream.shard%03d.idx", s) }

// StreamSnapshot writes the router's full snapshot set to w: the manifest
// as a single JSON line, then each shard's segment bytes preceded by a
// little-endian uint64 length. Like Save it holds off routed inserts for
// the duration so one corpus state pairs with every shard segment.
func (r *Router) StreamSnapshot(w io.Writer) error {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	m := &Manifest{
		Version:    manifestVersion,
		Shards:     len(r.shards),
		Objects:    r.corpusLen(),
		Generation: r.model.Generation(),
		Inserts:    r.inserts.Load(),
	}
	for s := range r.shards {
		m.Files = append(m.Files, streamShardName(s))
	}
	raw, err := encodeManifestLine(m)
	if err != nil {
		return err
	}
	if _, err := w.Write(raw); err != nil {
		return err
	}
	var buf bytes.Buffer
	var size [8]byte
	for s, sh := range r.shards {
		buf.Reset()
		if err := sh.stream(&buf, m.Generation); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		binary.LittleEndian.PutUint64(size[:], uint64(buf.Len()))
		if _, err := w.Write(size[:]); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// encodeManifestLine renders a manifest as one newline-terminated JSON line.
func encodeManifestLine(m *Manifest) ([]byte, error) {
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// stream serializes one shard's index into w under its read lock, with the
// same freshness stamp rule as save.
func (sh *shardState) stream(w io.Writer, gen uint64) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.eng.Index.SaveAt(w, gen)
}

// maxStreamSegment caps a single streamed shard segment. Snapshot streams
// arrive over the network; a corrupted or adversarial length prefix must
// not translate into an unbounded allocation.
const maxStreamSegment = 16 << 30

// LoadSnapshotStream rebuilds a router from a stream written by
// StreamSnapshot, with the same model/config contract as Load. Segment
// corruption is caught by the FSG1 section CRCs inside index.Load;
// manifest damage by DecodeManifest.
func LoadSnapshotStream(m *corr.Model, cfg Config, rd io.Reader) (*Router, *Manifest, error) {
	br := bufio.NewReader(rd)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("shard: snapshot stream: reading manifest line: %w", err)
	}
	man, err := DecodeManifest(line, "(snapshot stream)")
	if err != nil {
		return nil, nil, err
	}
	if cfg.Shards != 0 && cfg.Shards != man.Shards {
		return nil, nil, fmt.Errorf("shard: configured %d shards but snapshot has %d", cfg.Shards, man.Shards)
	}
	if cfg.Retrieval.Index != nil || cfg.Retrieval.SkipIndex {
		return nil, nil, fmt.Errorf("shard: Retrieval.Index/SkipIndex are managed by the router")
	}
	if got := m.Stats.Corpus().Len(); got != man.Objects {
		return nil, nil, fmt.Errorf("shard: snapshot cut at %d objects but corpus has %d — pair snapshots with their dataset", man.Objects, got)
	}
	r := &Router{model: m, shards: make([]*shardState, man.Shards), owns: cfg.Owns}
	counts := r.ownedCounts(man.Shards)
	var size [8]byte
	for s := 0; s < man.Shards; s++ {
		if _, err := io.ReadFull(br, size[:]); err != nil {
			return nil, nil, fmt.Errorf("shard: snapshot stream: shard %d length prefix: %w", s, err)
		}
		n := binary.LittleEndian.Uint64(size[:])
		if n > maxStreamSegment {
			return nil, nil, fmt.Errorf("shard: snapshot stream: shard %d claims %d bytes — stream is corrupt", s, n)
		}
		inv, err := index.Load(io.LimitReader(br, int64(n)))
		if err != nil {
			return nil, nil, fmt.Errorf("shard: snapshot stream: shard %d: %w", s, err)
		}
		if err := r.checkRouting(inv, s, man.Shards); err != nil {
			return nil, nil, err
		}
		if err := r.attach(s, inv, cfg, counts[s]); err != nil {
			return nil, nil, err
		}
	}
	return r, man, nil
}
