package shard

import (
	"fmt"
	"sync"
	"testing"

	"figfusion/internal/media"
	"figfusion/internal/retrieval"
)

// TestConcurrentSearchInsert is the -race gate for the router's lock
// protocol: scatter-gather searches, threshold searches, and health
// snapshots race routed inserts and a snapshot save. Correctness of
// results under this interleaving is covered by the parity test; here the
// assertions are only that nothing panics, every search returns a
// well-formed ranking, and all inserts land.
func TestConcurrentSearchInsert(t *testing.T) {
	d, m := testSystem(t)
	r, err := NewRouter(m, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const (
		searchers = 4
		inserts   = 24
	)
	var wg sync.WaitGroup
	errc := make(chan error, searchers+2)
	stop := make(chan struct{})

	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Query objects are fetched under View, as the server does:
				// the corpus slice may be growing under a routed insert.
				var q *media.Object
				r.View(func() { q = d.Corpus.Object(media.ObjectID((g*17 + i) % 150)) })
				var items = r.Search(q, 10, q.ID)
				if g%2 == 0 {
					items = r.SearchTA(q, 10, q.ID)
				}
				for j := 1; j < len(items); j++ {
					if items[j].Score > items[j-1].Score {
						errc <- fmt.Errorf("goroutine %d: unsorted ranking", g)
						return
					}
				}
				if i%8 == 0 {
					total := 0
					for _, si := range r.ShardInfos() {
						total += si.Objects
					}
					if total < 150 {
						errc <- fmt.Errorf("goroutine %d: shard infos sum %d < 150", g, total)
						return
					}
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for j := 0; j < inserts; j++ {
			feats := []media.Feature{
				{Kind: media.Text, Name: fmt.Sprintf("topic%02dtag%02d", j%5, j%8)},
				{Kind: media.Text, Name: fmt.Sprintf("stresstag%02d", j)},
			}
			if _, err := r.Insert(feats, []int{1, 2}, j%6); err != nil {
				errc <- err
				return
			}
			if j == inserts/2 {
				if _, err := r.Save(t.TempDir() + "/snap"); err != nil {
					errc <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := r.Inserts(); got != inserts {
		t.Errorf("Inserts() = %d, want %d", got, inserts)
	}
	q := d.Corpus.Object(0)
	if len(r.Search(q, 10, retrieval.NoExclude)) == 0 {
		t.Error("no results after stress run")
	}
}
