package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"figfusion/internal/corr"
	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/retrieval"
	"figfusion/internal/topk"
)

// searcher is the surface shared by a single engine and a shard router —
// what the parity contract quantifies over.
type searcher interface {
	Search(q *media.Object, k int, exclude media.ObjectID) []topk.Item
	SearchTA(q *media.Object, k int, exclude media.ObjectID) []topk.Item
}

// searchBytes serializes the full Search and SearchTA rankings (IDs and
// scores at full float precision) for a block of query objects.
func searchBytes(sys searcher, corpus *media.Corpus, queries []media.ObjectID) []byte {
	var buf bytes.Buffer
	for _, id := range queries {
		q := corpus.Object(id)
		for _, it := range sys.Search(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d>%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
		for _, it := range sys.SearchTA(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d~%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// testData mirrors the retrieval package's small deterministic corpus.
func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 150
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// testSystem builds one independent copy of the corpus and its trained
// model — each system under comparison gets its own, since inserts mutate
// the corpus in place.
func testSystem(t testing.TB) (*dataset.Dataset, *corr.Model) {
	t.Helper()
	d := testData(t)
	m := d.Model()
	m.TrainThresholds(100, 0.35, rand.New(rand.NewSource(13)))
	return d, m
}

// parityInserts is a fixed mixed batch of routed inserts: existing tags,
// brand-new tags (exercising feature interning), users, and varying months.
func parityInserts() [][]media.Feature {
	var batches [][]media.Feature
	for j := 0; j < 10; j++ {
		feats := []media.Feature{
			{Kind: media.Text, Name: fmt.Sprintf("topic%02dtag%02d", j%5, j%8)},
			{Kind: media.Text, Name: fmt.Sprintf("topic%02dtag%02d", (j+1)%5, (j+3)%8)},
			{Kind: media.Text, Name: fmt.Sprintf("freshtag%02d", j)},
		}
		if j%2 == 0 {
			feats = append(feats, media.Feature{Kind: media.User, Name: fmt.Sprintf("u_t%02d_%02d", j%5, j%8)})
		}
		batches = append(batches, feats)
	}
	return batches
}

func applyInserts(t *testing.T, ins func(feats []media.Feature, counts []int, month int) (*media.Object, error)) {
	t.Helper()
	for j, feats := range parityInserts() {
		counts := make([]int, len(feats))
		for i := range counts {
			counts[i] = 1 + i%2
		}
		if _, err := ins(feats, counts, j%6); err != nil {
			t.Fatal(err)
		}
	}
}

func shardCounts() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	out := counts[:0]
	for _, n := range counts {
		if n >= 1 && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// TestScatterGatherParity is the subsystem's determinism contract: over
// identical corpora, Search and SearchTA results are byte-identical
// between a single engine and routers at 1/2/4/NumCPU shards — before a
// round of routed inserts, after it, and after a snapshot Save/Load round
// trip. Sharding partitions postings and candidate scoring, never scores.
func TestScatterGatherParity(t *testing.T) {
	refD, refM := testSystem(t)
	ref, err := retrieval.NewEngine(refM, retrieval.Config{})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]media.ObjectID, 20)
	for i := range queries {
		queries[i] = media.ObjectID(i)
	}
	refBefore := searchBytes(ref, refD.Corpus, queries)

	type sys struct {
		n       int
		pruning retrieval.PruningMode
		d       *dataset.Dataset
		router  *Router
	}
	var systems []sys
	// Routers run both without pruning and with exact block-max pruning:
	// quantization off, the pruned scatter-gather must stay byte-identical
	// to the unpruned single engine at every shard count and lifecycle
	// step. (Quantized mode is excluded: its candidate selection is shard-
	// partition dependent by design, so its contract is determinism at a
	// fixed topology, covered in the retrieval package.)
	for _, n := range shardCounts() {
		for _, pruning := range []retrieval.PruningMode{retrieval.PruneOff, retrieval.PruneBlockMax} {
			d, m := testSystem(t)
			r, err := NewRouter(m, Config{Shards: n, Retrieval: retrieval.Config{Pruning: pruning}})
			if err != nil {
				t.Fatal(err)
			}
			if got := searchBytes(r, d.Corpus, queries); !bytes.Equal(got, refBefore) {
				t.Fatalf("shards=%d pruning=%v: pre-insert results diverge from single engine (%d vs %d bytes)", n, pruning, len(got), len(refBefore))
			}
			systems = append(systems, sys{n: n, pruning: pruning, d: d, router: r})
		}
	}

	// A round of routed inserts must preserve parity: the single engine
	// ingests through Engine.Insert, each router through its routed path.
	applyInserts(t, ref.Insert)
	for _, s := range systems {
		applyInserts(t, s.router.Insert)
	}
	// Query block now includes inserted objects (IDs past the original
	// corpus) so the freshly indexed postings are exercised too.
	grown := append(append([]media.ObjectID(nil), queries...),
		media.ObjectID(150), media.ObjectID(155), media.ObjectID(159))
	refAfter := searchBytes(ref, refD.Corpus, grown)
	if bytes.Equal(refAfter, refBefore) {
		t.Fatal("inserts did not change reference results; parity check is vacuous")
	}
	for _, s := range systems {
		if got := searchBytes(s.router, s.d.Corpus, grown); !bytes.Equal(got, refAfter) {
			t.Fatalf("shards=%d pruning=%v: post-insert results diverge from single engine", s.n, s.pruning)
		}
	}

	// Snapshot round trip: persist each router's shard set, reload it over
	// a freshly reconstructed model of the same corpus (thresholds carried
	// over, as a deployment's config would), and require the same bytes.
	for _, s := range systems {
		base := filepath.Join(t.TempDir(), "snap")
		man, err := s.router.Save(base)
		if err != nil {
			t.Fatal(err)
		}
		if man.Shards != s.n || man.Objects != s.d.Corpus.Len() {
			t.Fatalf("shards=%d pruning=%v: manifest %+v does not match router", s.n, s.pruning, man)
		}
		m2 := s.d.Model()
		m2.Thresholds = s.router.Model().Thresholds
		r2, man2, err := Load(m2, Config{Retrieval: retrieval.Config{Pruning: s.pruning}}, base)
		if err != nil {
			t.Fatal(err)
		}
		if man2.Shards != s.n {
			t.Fatalf("loaded manifest shards = %d, want %d", man2.Shards, s.n)
		}
		if got := searchBytes(r2, s.d.Corpus, grown); !bytes.Equal(got, refAfter) {
			t.Fatalf("shards=%d pruning=%v: post-roundtrip results diverge from single engine", s.n, s.pruning)
		}
	}
}
