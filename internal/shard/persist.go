// Sharded snapshot persistence: one JSON manifest describing the shard
// layout plus one gob snapshot per shard (written by index.Save). Together
// with the dataset's own Save, a sharded deployment can cold-start without
// the O(|D|) clique enumeration: figdata writes the snapshot set, figserver
// loads it.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"figfusion/internal/corr"
	"figfusion/internal/index"
)

// manifestVersion guards the manifest schema; bump on incompatible change.
const manifestVersion = 1

// Manifest describes one sharded snapshot set. Files are relative to the
// manifest's own directory, in shard order, so the set can be moved as a
// unit. Objects, Generation and Inserts stamp the corpus state the
// snapshot was cut at: Load refuses a corpus of a different size, and a
// loaded snapshot's stored CorS weights are only served while the paired
// model still sits at the generation index.Load restamps them to.
type Manifest struct {
	Version    int      `json:"version"`
	Shards     int      `json:"shards"`
	Objects    int      `json:"objects"`
	Generation uint64   `json:"generation"`
	Inserts    uint64   `json:"inserts"`
	Files      []string `json:"files"`
}

// ManifestPath returns the manifest filename for a snapshot base path.
func ManifestPath(base string) string { return base + ".manifest.json" }

// ManifestSuffix is the filename suffix every manifest carries; tools
// (figdata -inspect) recognise snapshot sets by it.
const ManifestSuffix = ".manifest.json"

// ReadManifest reads and validates a snapshot-set manifest. Every failure
// — unreadable file, truncated or hand-edited JSON, out-of-range fields —
// comes back as a descriptive "shard: manifest" error naming the file and
// the defect, in the style of the index package's segment-corruption
// errors, so a mangled snapshot set diagnoses itself instead of surfacing
// a raw decode error.
func ReadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest: %w", err)
	}
	return DecodeManifest(raw, path)
}

// DecodeManifest parses and validates manifest bytes; name labels errors.
func DecodeManifest(raw []byte, name string) (*Manifest, error) {
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %s", name, describeJSONError(raw, err))
	}
	if err := man.validate(); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", name, err)
	}
	return &man, nil
}

// describeJSONError turns encoding/json's terse decode errors into
// diagnoses: truncation, syntax damage and type mismatches each name the
// byte offset or field so a hand-edited manifest points at its own defect.
func describeJSONError(raw []byte, err error) string {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Sprintf("invalid JSON at byte %d of %d: %v (truncated or hand-edited?)", syn.Offset, len(raw), syn)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return fmt.Sprintf("field %q holds JSON %s, want %s", typ.Field, typ.Value, typ.Type)
	}
	if len(raw) == 0 {
		return "file is empty"
	}
	return err.Error()
}

// validate checks the decoded fields' internal consistency.
func (m *Manifest) validate() error {
	if m.Version != manifestVersion {
		return fmt.Errorf("version %d, want %d", m.Version, manifestVersion)
	}
	if m.Shards < 1 {
		return fmt.Errorf("shard count %d must be >= 1", m.Shards)
	}
	if m.Objects < 0 {
		return fmt.Errorf("object count %d must be >= 0", m.Objects)
	}
	if len(m.Files) != m.Shards {
		return fmt.Errorf("lists %d files for %d shards", len(m.Files), m.Shards)
	}
	seen := make(map[string]int, len(m.Files))
	for i, name := range m.Files {
		if name == "" {
			return fmt.Errorf("file %d has an empty name", i)
		}
		if filepath.Base(name) != name {
			return fmt.Errorf("file %d name %q must be a bare filename relative to the manifest", i, name)
		}
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("file %q listed for both shard %d and shard %d", name, prev, i)
		}
		seen[name] = i
	}
	return nil
}

// shardFile returns the per-shard snapshot filename for a base path.
func shardFile(base string, s int) string { return fmt.Sprintf("%s.shard%03d.idx", base, s) }

// Save writes the router's shards to <base>.shard000.idx … and the
// manifest to <base>.manifest.json, returning the manifest. Routed inserts
// are held off for the duration (the snapshot must pair one corpus state
// with every shard file); searches proceed, pausing per shard only while
// that shard serializes.
func (r *Router) Save(base string) (*Manifest, error) {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	m := &Manifest{
		Version:    manifestVersion,
		Shards:     len(r.shards),
		Objects:    r.corpusLen(),
		Generation: r.model.Generation(),
		Inserts:    r.inserts.Load(),
	}
	for s, sh := range r.shards {
		name := filepath.Base(shardFile(base, s))
		if err := sh.save(shardFile(base, s), m.Generation); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		m.Files = append(m.Files, name)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(ManifestPath(base), raw, 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// corpusLen reads the corpus size under the statistics read lock.
func (r *Router) corpusLen() int {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	return r.model.Stats.Corpus().Len()
}

// save serializes one shard's index under its read lock. Freshness is
// judged against the shared model's generation: a shard's own refresh
// generation lags the model whenever the last insert routed elsewhere, and
// rows refreshed at an intermediate generation must not load as
// authoritative (see index.SaveAt).
func (sh *shardState) save(path string, gen uint64) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sh.eng.Index.SaveAt(f, gen); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load rebuilds a router from a snapshot set written by Save, over a model
// whose corpus must be the one the snapshot was cut from (same size and
// object-ID space; pair snapshot sets with their dataset files). cfg.Shards
// must be zero or match the manifest. As with index.Load, entries that were
// fresh at save time are restamped to generation 0 — authoritative for a
// freshly constructed model over the paired dataset — and stale entries
// keep a never-matching stamp, falling back to the scorer.
func Load(m *corr.Model, cfg Config, base string) (*Router, *Manifest, error) {
	man, err := ReadManifest(ManifestPath(base))
	if err != nil {
		return nil, nil, err
	}
	if cfg.Shards != 0 && cfg.Shards != man.Shards {
		return nil, nil, fmt.Errorf("shard: configured %d shards but snapshot has %d", cfg.Shards, man.Shards)
	}
	if cfg.Retrieval.Index != nil || cfg.Retrieval.SkipIndex {
		return nil, nil, fmt.Errorf("shard: Retrieval.Index/SkipIndex are managed by the router")
	}
	if got := m.Stats.Corpus().Len(); got != man.Objects {
		return nil, nil, fmt.Errorf("shard: snapshot cut at %d objects but corpus has %d — pair snapshots with their dataset", man.Objects, got)
	}
	dir := filepath.Dir(ManifestPath(base))
	r := &Router{model: m, shards: make([]*shardState, man.Shards), owns: cfg.Owns}
	counts := r.ownedCounts(man.Shards)
	for s, name := range man.Files {
		inv, err := loadShardIndex(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if err := r.checkRouting(inv, s, man.Shards); err != nil {
			return nil, nil, err
		}
		if err := r.attach(s, inv, cfg, counts[s]); err != nil {
			return nil, nil, err
		}
	}
	return r, man, nil
}

func loadShardIndex(path string) (*index.Inverted, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return index.Load(f)
}

// checkRouting verifies every posting of a loaded shard file routes to the
// shard it was loaded into and falls inside the router's ownership
// predicate — the cheap integrity check that catches a snapshot set
// reassembled with the wrong shard count, renamed files, or a partition
// snapshot loaded onto the wrong node.
func (r *Router) checkRouting(inv *index.Inverted, s, shards int) error {
	for _, e := range inv.Entries() {
		for _, id := range e.Objects {
			if ShardOf(id, shards) != s {
				return fmt.Errorf("shard: object %d found in shard %d's snapshot but routes to shard %d — snapshot set does not match its manifest", id, s, ShardOf(id, shards))
			}
			if !r.ownsObject(id) {
				return fmt.Errorf("shard: object %d found in shard %d's snapshot but falls outside this node's partition — snapshot belongs to a different node", id, s)
			}
		}
	}
	return nil
}
