// Sharded snapshot persistence: one JSON manifest describing the shard
// layout plus one gob snapshot per shard (written by index.Save). Together
// with the dataset's own Save, a sharded deployment can cold-start without
// the O(|D|) clique enumeration: figdata writes the snapshot set, figserver
// loads it.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"figfusion/internal/corr"
	"figfusion/internal/index"
)

// manifestVersion guards the manifest schema; bump on incompatible change.
const manifestVersion = 1

// Manifest describes one sharded snapshot set. Files are relative to the
// manifest's own directory, in shard order, so the set can be moved as a
// unit. Objects, Generation and Inserts stamp the corpus state the
// snapshot was cut at: Load refuses a corpus of a different size, and a
// loaded snapshot's stored CorS weights are only served while the paired
// model still sits at the generation index.Load restamps them to.
type Manifest struct {
	Version    int      `json:"version"`
	Shards     int      `json:"shards"`
	Objects    int      `json:"objects"`
	Generation uint64   `json:"generation"`
	Inserts    uint64   `json:"inserts"`
	Files      []string `json:"files"`
}

// ManifestPath returns the manifest filename for a snapshot base path.
func ManifestPath(base string) string { return base + ".manifest.json" }

// shardFile returns the per-shard snapshot filename for a base path.
func shardFile(base string, s int) string { return fmt.Sprintf("%s.shard%03d.idx", base, s) }

// Save writes the router's shards to <base>.shard000.idx … and the
// manifest to <base>.manifest.json, returning the manifest. Routed inserts
// are held off for the duration (the snapshot must pair one corpus state
// with every shard file); searches proceed, pausing per shard only while
// that shard serializes.
func (r *Router) Save(base string) (*Manifest, error) {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	m := &Manifest{
		Version:    manifestVersion,
		Shards:     len(r.shards),
		Objects:    r.corpusLen(),
		Generation: r.model.Generation(),
		Inserts:    r.inserts.Load(),
	}
	for s, sh := range r.shards {
		name := filepath.Base(shardFile(base, s))
		if err := sh.save(shardFile(base, s), m.Generation); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		m.Files = append(m.Files, name)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(ManifestPath(base), raw, 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// corpusLen reads the corpus size under the statistics read lock.
func (r *Router) corpusLen() int {
	r.statsMu.RLock()
	defer r.statsMu.RUnlock()
	return r.model.Stats.Corpus().Len()
}

// save serializes one shard's index under its read lock. Freshness is
// judged against the shared model's generation: a shard's own refresh
// generation lags the model whenever the last insert routed elsewhere, and
// rows refreshed at an intermediate generation must not load as
// authoritative (see index.SaveAt).
func (sh *shardState) save(path string, gen uint64) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sh.eng.Index.SaveAt(f, gen); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load rebuilds a router from a snapshot set written by Save, over a model
// whose corpus must be the one the snapshot was cut from (same size and
// object-ID space; pair snapshot sets with their dataset files). cfg.Shards
// must be zero or match the manifest. As with index.Load, entries that were
// fresh at save time are restamped to generation 0 — authoritative for a
// freshly constructed model over the paired dataset — and stale entries
// keep a never-matching stamp, falling back to the scorer.
func Load(m *corr.Model, cfg Config, base string) (*Router, *Manifest, error) {
	raw, err := os.ReadFile(ManifestPath(base))
	if err != nil {
		return nil, nil, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, nil, fmt.Errorf("shard: manifest %s: %w", ManifestPath(base), err)
	}
	if man.Version != manifestVersion {
		return nil, nil, fmt.Errorf("shard: manifest version %d, want %d", man.Version, manifestVersion)
	}
	if man.Shards < 1 || len(man.Files) != man.Shards {
		return nil, nil, fmt.Errorf("shard: manifest lists %d files for %d shards", len(man.Files), man.Shards)
	}
	if cfg.Shards != 0 && cfg.Shards != man.Shards {
		return nil, nil, fmt.Errorf("shard: configured %d shards but snapshot has %d", cfg.Shards, man.Shards)
	}
	if cfg.Retrieval.Index != nil || cfg.Retrieval.SkipIndex {
		return nil, nil, fmt.Errorf("shard: Retrieval.Index/SkipIndex are managed by the router")
	}
	if got := m.Stats.Corpus().Len(); got != man.Objects {
		return nil, nil, fmt.Errorf("shard: snapshot cut at %d objects but corpus has %d — pair snapshots with their dataset", man.Objects, got)
	}
	dir := filepath.Dir(ManifestPath(base))
	r := &Router{model: m, shards: make([]*shardState, man.Shards)}
	counts := r.ownedCounts(man.Shards)
	for s, name := range man.Files {
		inv, err := loadShardIndex(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if err := checkRouting(inv, s, man.Shards); err != nil {
			return nil, nil, err
		}
		if err := r.attach(s, inv, cfg, counts[s]); err != nil {
			return nil, nil, err
		}
	}
	return r, &man, nil
}

func loadShardIndex(path string) (*index.Inverted, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return index.Load(f)
}

// checkRouting verifies every posting of a loaded shard file routes to the
// shard it was loaded into — the cheap integrity check that catches a
// snapshot set reassembled with the wrong shard count or renamed files.
func checkRouting(inv *index.Inverted, s, shards int) error {
	for _, e := range inv.Entries() {
		for _, id := range e.Objects {
			if ShardOf(id, shards) != s {
				return fmt.Errorf("shard: object %d found in shard %d's snapshot but routes to shard %d — snapshot set does not match its manifest", id, s, ShardOf(id, shards))
			}
		}
	}
	return nil
}
