// Package numeric centralizes the floating-point comparison discipline
// figlint's floatcmp analyzer enforces. MRF potentials, CorS weights and
// similarity scores are sums of products of floats whose exact bit
// patterns depend on evaluation order; any semantic comparison of them
// must therefore tolerate rounding noise. The only sanctioned exact
// comparisons are total-order tie-breaks (see topk.Less), which carry
// //figlint:allow pragmas at their use sites.
package numeric

import "math"

// Eps is the default absolute tolerance. Scores in this codebase are
// O(1) quantities (probabilities, cosines, normalized potentials), so an
// absolute tolerance near the double-precision noise floor separates
// "mathematically zero" from "small but meaningful".
const Eps = 1e-12

// IsZero reports whether x is zero up to Eps. Use it for the
// guard-before-divide and feature-disabled sentinels that would
// otherwise compare == 0.
func IsZero(x float64) bool { return math.Abs(x) <= Eps }

// Eq reports whether a and b are equal up to Eps.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// EqTol reports whether a and b are equal up to a caller-chosen
// absolute tolerance.
func EqTol(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// EqRel reports whether a and b are equal up to a relative tolerance of
// Eps scaled by the larger magnitude, with an absolute floor of Eps for
// values near zero. Use it when comparing quantities that may be far
// from O(1).
func EqRel(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= Eps*math.Max(1, scale)
}
