package numeric

import (
	"math"
	"testing"
)

func TestIsZero(t *testing.T) {
	cases := []struct {
		x    float64
		want bool
	}{
		{0, true},
		{Eps, true},
		{-Eps, true},
		{1e-15, true},
		{1e-9, false},
		{1, false},
		{-1, false},
		{math.NaN(), false},
		{math.Inf(1), false},
	}
	for _, c := range cases {
		if got := IsZero(c.x); got != c.want {
			t.Errorf("IsZero(%g) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestEq(t *testing.T) {
	if !Eq(0.1+0.2, 0.3) {
		t.Error("Eq must absorb the canonical 0.1+0.2 rounding error")
	}
	if Eq(1, 1+1e-9) {
		t.Error("Eq must distinguish values separated by far more than Eps")
	}
	if Eq(math.NaN(), math.NaN()) {
		t.Error("NaN equals nothing")
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(1.0, 1.05, 0.1) {
		t.Error("EqTol(1, 1.05, 0.1) should hold")
	}
	if EqTol(1.0, 1.2, 0.1) {
		t.Error("EqTol(1, 1.2, 0.1) should not hold")
	}
}

func TestEqRel(t *testing.T) {
	big := 1e15
	if !EqRel(big, big+1) {
		t.Error("EqRel must scale the tolerance for large magnitudes")
	}
	if Eq(big, big+1) {
		t.Error("absolute Eq should reject the same pair, proving EqRel differs")
	}
	if !EqRel(0, 1e-13) {
		t.Error("EqRel keeps the absolute floor near zero")
	}
}
