package media

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	for _, tt := range []struct {
		k    Kind
		want string
	}{
		{Text, "text"}, {Visual, "visual"}, {User, "user"}, {Kind(9), "Kind(9)"},
	} {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestFeatureString(t *testing.T) {
	f := Feature{Text, "hamster"}
	if got := f.String(); got != "text:hamster" {
		t.Errorf("String = %q", got)
	}
}

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern(Feature{Text, "cat"})
	b := d.Intern(Feature{Text, "dog"})
	again := d.Intern(Feature{Text, "cat"})
	if a == b {
		t.Error("distinct features got same FID")
	}
	if a != again {
		t.Error("re-interning changed FID")
	}
	// Same name, different kind is a different feature.
	u := d.Intern(Feature{User, "cat"})
	if u == a {
		t.Error("kinds must be distinguished")
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if got := d.Feature(a); got != (Feature{Text, "cat"}) {
		t.Errorf("Feature(a) = %v", got)
	}
	if id, ok := d.Lookup(Feature{Text, "dog"}); !ok || id != b {
		t.Errorf("Lookup = %v,%v", id, ok)
	}
	if _, ok := d.Lookup(Feature{Visual, "vw1"}); ok {
		t.Error("Lookup of unknown feature should miss")
	}
}

func TestNewObjectMergesAndSorts(t *testing.T) {
	o := NewObject(7, []FeatureCount{
		{FID: 5, Count: 2}, {FID: 1, Count: 1}, {FID: 5, Count: 3},
	}, 12)
	if o.ID != 7 || o.Month != 12 {
		t.Errorf("ID/Month = %d/%d", o.ID, o.Month)
	}
	if o.Len() != 2 {
		t.Fatalf("Len = %d, want 2", o.Len())
	}
	if !sort.SliceIsSorted(o.Feats, func(i, j int) bool { return o.Feats[i] < o.Feats[j] }) {
		t.Error("Feats not sorted")
	}
	if o.Count(5) != 5 {
		t.Errorf("Count(5) = %d, want 5 (merged)", o.Count(5))
	}
	if o.Count(1) != 1 {
		t.Errorf("Count(1) = %d, want 1", o.Count(1))
	}
	if o.Count(99) != 0 || o.Has(99) {
		t.Error("absent feature should count 0")
	}
	if o.TotalCount() != 6 {
		t.Errorf("TotalCount = %d, want 6", o.TotalCount())
	}
	if o.PrimaryTopic != -1 {
		t.Errorf("PrimaryTopic default = %d, want -1", o.PrimaryTopic)
	}
}

func TestNewObjectCountSaturation(t *testing.T) {
	o := NewObject(0, []FeatureCount{
		{FID: 1, Count: 65535}, {FID: 1, Count: 10},
	}, 0)
	if o.Count(1) != 65535 {
		t.Errorf("Count = %d, want saturation at 65535", o.Count(1))
	}
}

func TestCorpusAdd(t *testing.T) {
	c := NewCorpus()
	o1, err := c.Add(
		[]Feature{{Text, "cat"}, {User, "u1"}},
		[]int{2, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := c.Add(
		[]Feature{{Text, "cat"}, {Text, "dog"}},
		[]int{1, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if o1.ID != 0 || o2.ID != 1 {
		t.Errorf("IDs = %d,%d", o1.ID, o2.ID)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	cat, _ := c.Dict.Lookup(Feature{Text, "cat"})
	dog, _ := c.Dict.Lookup(Feature{Text, "dog"})
	if c.DocFreq(cat) != 2 {
		t.Errorf("DocFreq(cat) = %d, want 2", c.DocFreq(cat))
	}
	if c.DocFreq(dog) != 1 {
		t.Errorf("DocFreq(dog) = %d, want 1", c.DocFreq(dog))
	}
	if c.DocFreq(FID(999)) != 0 {
		t.Error("DocFreq of unknown FID should be 0")
	}
	if got := c.Object(1); got != o2 {
		t.Error("Object(1) mismatch")
	}
	if c.KindOf(cat) != Text {
		t.Errorf("KindOf(cat) = %v", c.KindOf(cat))
	}
}

func TestCorpusAddValidation(t *testing.T) {
	c := NewCorpus()
	if _, err := c.Add([]Feature{{Text, "a"}}, []int{1, 2}, 0); err == nil {
		t.Error("want error on length mismatch")
	}
	if _, err := c.Add([]Feature{{Text, "a"}}, []int{0}, 0); err == nil {
		t.Error("want error on zero count")
	}
	if _, err := c.Add([]Feature{{Text, "a"}}, []int{-1}, 0); err == nil {
		t.Error("want error on negative count")
	}
}

func TestCorpusAddObjectReassignsID(t *testing.T) {
	c := NewCorpus()
	fid := c.Dict.Intern(Feature{Text, "x"})
	o := NewObject(99, []FeatureCount{{FID: fid, Count: 1}}, 0)
	added := c.AddObject(o)
	if added.ID != 0 {
		t.Errorf("ID = %d, want 0", added.ID)
	}
	if c.DocFreq(fid) != 1 {
		t.Errorf("DocFreq = %d, want 1", c.DocFreq(fid))
	}
}

func TestPruneRareFeatures(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 5; i++ {
		if _, err := c.Add([]Feature{{Text, "common"}}, []int{1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Add([]Feature{{Text, "rare"}}, []int{1}, 0); err != nil {
		t.Fatal(err)
	}
	kept := c.PruneRareFeatures(5)
	common, _ := c.Dict.Lookup(Feature{Text, "common"})
	rare, _ := c.Dict.Lookup(Feature{Text, "rare"})
	if !kept[common] {
		t.Error("common feature should be kept")
	}
	if kept[rare] {
		t.Error("rare feature should be pruned")
	}
}

func TestObjectCountProperty(t *testing.T) {
	// For any multiset of feature counts, TotalCount equals the sum of
	// Count over distinct features, and Has agrees with Count>0.
	f := func(raw []uint8) bool {
		fcs := make([]FeatureCount, len(raw))
		for i, r := range raw {
			fcs[i] = FeatureCount{FID: FID(r % 16), Count: uint16(r%7) + 1}
		}
		o := NewObject(0, fcs, 0)
		sum := 0
		for fid := FID(0); fid < 16; fid++ {
			cnt := o.Count(fid)
			if o.Has(fid) != (cnt > 0) {
				return false
			}
			sum += cnt
		}
		return sum == o.TotalCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkObjectCount(b *testing.B) {
	fcs := make([]FeatureCount, 100)
	for i := range fcs {
		fcs[i] = FeatureCount{FID: FID(i * 3), Count: 1}
	}
	o := NewObject(0, fcs, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Count(FID(i % 300))
	}
}

func BenchmarkDictionaryIntern(b *testing.B) {
	d := NewDictionary()
	feats := make([]Feature, 1000)
	for i := range feats {
		feats[i] = Feature{Kind(i % 3), string(rune('a' + i%26))}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Intern(feats[i%len(feats)])
	}
}

func TestUnionObject(t *testing.T) {
	a := NewObject(0, []FeatureCount{{FID: 1, Count: 2}, {FID: 2, Count: 1}}, 3)
	b := NewObject(1, []FeatureCount{{FID: 2, Count: 4}, {FID: 5, Count: 1}}, 5)
	u := UnionObject(9, []*Object{a, b})
	if u.ID != 9 || u.Month != 5 {
		t.Errorf("ID/Month = %d/%d", u.ID, u.Month)
	}
	if u.Count(1) != 2 || u.Count(2) != 5 || u.Count(5) != 1 {
		t.Errorf("counts wrong: %v %v", u.Feats, u.Counts)
	}
	if got := UnionObject(0, nil); got.Len() != 0 || got.Month != 0 {
		t.Errorf("empty union = %v", got)
	}
}
