// Package media defines the multi-modal object model of the paper
// (Section 3.1): a social media database D = {O_i} of objects
// O = ⟨T, V, U⟩ with textual, visual and user features. Features are
// interned into dense integer IDs by a Dictionary so that correlation
// tables, FIGs and inverted indexes can use compact array-backed storage at
// the paper's scale (hundreds of thousands of objects, tens of thousands of
// feature dimensions).
package media

import (
	"fmt"
	"sort"
)

// Kind is the modality of a feature.
type Kind uint8

// The feature modalities. Text, Visual and User are the three types the
// paper extracts from Flickr objects; Audio realises the paper's claim that
// the solution "can be easily extended to facilitate other social media
// environments, such as video and music" for music corpora.
const (
	Text   Kind = iota // tags, titles (after textproc normalisation)
	Visual             // visual words (vision.Vocabulary indices)
	User               // uploaders and users who favourited the object
	Audio              // audio words (audio.Vocabulary indices)
	numKinds
)

// NumKinds is the number of feature modalities.
const NumKinds = int(numKinds)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Text:
		return "text"
	case Visual:
		return "visual"
	case User:
		return "user"
	case Audio:
		return "audio"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Feature is a single modality-qualified feature, e.g. {Text, "hamster"},
// {Visual, "vw17"} or {User, "u42"}.
type Feature struct {
	Kind Kind
	Name string
}

// String implements fmt.Stringer.
func (f Feature) String() string { return f.Kind.String() + ":" + f.Name }

// FID is an interned feature identifier, dense from 0.
type FID int32

// ObjectID identifies an object within a Corpus, dense from 0.
type ObjectID int32

// Dictionary interns Features to FIDs. Interning is append-only; lookups
// are safe for concurrent use once population stops.
type Dictionary struct {
	feats []Feature
	ids   map[Feature]FID
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[Feature]FID)}
}

// Intern returns the FID for f, assigning a new one if needed.
func (d *Dictionary) Intern(f Feature) FID {
	if id, ok := d.ids[f]; ok {
		return id
	}
	id := FID(len(d.feats))
	d.feats = append(d.feats, f)
	d.ids[f] = id
	return id
}

// Lookup returns the FID for f without interning.
func (d *Dictionary) Lookup(f Feature) (FID, bool) {
	id, ok := d.ids[f]
	return id, ok
}

// Feature returns the Feature for an FID.
func (d *Dictionary) Feature(id FID) Feature { return d.feats[id] }

// Len returns the number of interned features.
func (d *Dictionary) Len() int { return len(d.feats) }

// FeatureCount is one feature occurrence count inside an object.
type FeatureCount struct {
	FID   FID
	Count uint16
}

// Object is one multi-modal media object. Feats is sorted by FID and free of
// duplicates; Counts runs parallel to Feats. Month is the object's timestamp
// at the paper's month granularity (months since an arbitrary epoch;
// Section 4 determines all time stamps "in the basis of month").
// PrimaryTopic and Topics carry the planted ground-truth labels of the
// synthetic corpus; they stand in for the paper's human relevance judgments
// and are never visible to the retrieval model itself.
type Object struct {
	ID           ObjectID
	Feats        []FID
	Counts       []uint16
	Month        int
	PrimaryTopic int
	Topics       []int
}

// NewObject builds an object from possibly unsorted, possibly duplicated
// feature counts: duplicates are merged by summing counts.
func NewObject(id ObjectID, fcs []FeatureCount, month int) *Object {
	merged := make(map[FID]uint32, len(fcs))
	for _, fc := range fcs {
		merged[fc.FID] += uint32(fc.Count)
	}
	o := &Object{
		ID:           id,
		Feats:        make([]FID, 0, len(merged)),
		Counts:       make([]uint16, 0, len(merged)),
		Month:        month,
		PrimaryTopic: -1,
	}
	for fid := range merged {
		o.Feats = append(o.Feats, fid)
	}
	sort.Slice(o.Feats, func(i, j int) bool { return o.Feats[i] < o.Feats[j] })
	for _, fid := range o.Feats {
		c := merged[fid]
		if c > 65535 {
			c = 65535
		}
		o.Counts = append(o.Counts, uint16(c))
	}
	return o
}

// Len returns the number of distinct features in the object.
func (o *Object) Len() int { return len(o.Feats) }

// TotalCount returns |O_i|: the total feature occurrence mass of the
// object, the denominator of the frequency term in Eq. 7.
func (o *Object) TotalCount() int {
	total := 0
	for _, c := range o.Counts {
		total += int(c)
	}
	return total
}

// Count returns the occurrence count of fid in the object (0 if absent).
func (o *Object) Count(fid FID) int {
	i := sort.Search(len(o.Feats), func(i int) bool { return o.Feats[i] >= fid })
	if i < len(o.Feats) && o.Feats[i] == fid {
		return int(o.Counts[i])
	}
	return 0
}

// Has reports whether the object contains the feature.
func (o *Object) Has(fid FID) bool { return o.Count(fid) > 0 }

// Corpus is the social media database D plus its feature dictionary.
// Population is single-goroutine; reads are safe for concurrent use once
// population stops.
type Corpus struct {
	Dict    *Dictionary
	Objects []*Object

	docFreq []int32 // FID -> number of objects containing it
}

// NewCorpus returns an empty corpus with a fresh dictionary.
func NewCorpus() *Corpus {
	return &Corpus{Dict: NewDictionary()}
}

// Add appends an object built from features and returns it. The caller
// provides raw Features; Add interns them and merges duplicates.
func (c *Corpus) Add(feats []Feature, counts []int, month int) (*Object, error) {
	if len(feats) != len(counts) {
		return nil, fmt.Errorf("media: %d features but %d counts", len(feats), len(counts))
	}
	fcs := make([]FeatureCount, len(feats))
	for i, f := range feats {
		n := counts[i]
		if n <= 0 {
			return nil, fmt.Errorf("media: non-positive count %d for %v", n, f)
		}
		if n > 65535 {
			n = 65535
		}
		fcs[i] = FeatureCount{FID: c.Dict.Intern(f), Count: uint16(n)}
	}
	o := NewObject(ObjectID(len(c.Objects)), fcs, month)
	c.Objects = append(c.Objects, o)
	c.accountDocFreq(o)
	return o, nil
}

// AddObject appends a pre-built object, reassigning its ID to keep IDs
// dense. The object's FIDs must already belong to c.Dict.
func (c *Corpus) AddObject(o *Object) *Object {
	o.ID = ObjectID(len(c.Objects))
	c.Objects = append(c.Objects, o)
	c.accountDocFreq(o)
	return o
}

func (c *Corpus) accountDocFreq(o *Object) {
	for _, fid := range o.Feats {
		for int(fid) >= len(c.docFreq) {
			c.docFreq = append(c.docFreq, 0)
		}
		c.docFreq[fid]++
	}
}

// Len returns |D|.
func (c *Corpus) Len() int { return len(c.Objects) }

// Object returns the object with the given ID.
func (c *Corpus) Object(id ObjectID) *Object { return c.Objects[id] }

// DocFreq returns the number of objects containing fid.
func (c *Corpus) DocFreq(fid FID) int {
	if int(fid) >= len(c.docFreq) {
		return 0
	}
	return int(c.docFreq[fid])
}

// KindOf returns the modality of an interned feature.
func (c *Corpus) KindOf(fid FID) Kind { return c.Dict.Feature(fid).Kind }

// PruneRareFeatures returns the set of FIDs whose document frequency is at
// least minDF. The paper eliminates tags with corpus frequency below 5 as
// noise or typos (Section 5.1.3); retrieval components consult this set to
// skip pruned features.
func (c *Corpus) PruneRareFeatures(minDF int) map[FID]bool {
	kept := make(map[FID]bool)
	for fid, df := range c.docFreq {
		if int(df) >= minDF {
			kept[FID(fid)] = true
		}
	}
	return kept
}

// UnionObject merges several objects into one "big object" by unioning
// their features and summing counts — the naive profile construction of
// Section 4 ("H_u = ⟨∪T_j, ∪V_j, ∪U_j⟩") that the baseline systems use for
// recommendation. The result carries the given ID and the latest month of
// the inputs (or 0 when empty); topic labels are not merged.
func UnionObject(id ObjectID, objects []*Object) *Object {
	var fcs []FeatureCount
	month := 0
	for _, o := range objects {
		if o.Month > month {
			month = o.Month
		}
		for i, fid := range o.Feats {
			fcs = append(fcs, FeatureCount{FID: fid, Count: o.Counts[i]})
		}
	}
	return NewObject(id, fcs, month)
}
