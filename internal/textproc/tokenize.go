// Package textproc implements the tag preprocessing pipeline the paper
// applies to Flickr textual features (Section 5.1.3): tokenization,
// stop-word removal and stemming. Tags in social media are free-style
// strings; the pipeline normalises them into stable textual feature
// identifiers before correlation analysis.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits free-form text into lower-case word tokens. Tokens are
// maximal runs of letters and digits; everything else is a separator.
// Pure punctuation and empty runs produce no token.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Pipeline bundles the full normalisation chain. The zero value is not
// usable; construct with NewPipeline.
type Pipeline struct {
	stop     map[string]struct{}
	stem     bool
	minLen   int
	keepStop bool
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithoutStemming disables the Porter stemmer stage.
func WithoutStemming() Option { return func(p *Pipeline) { p.stem = false } }

// WithStopWords replaces the default snowball stop list.
func WithStopWords(words []string) Option {
	return func(p *Pipeline) {
		p.stop = make(map[string]struct{}, len(words))
		for _, w := range words {
			p.stop[strings.ToLower(w)] = struct{}{}
		}
	}
}

// KeepStopWords disables stop-word elimination.
func KeepStopWords() Option { return func(p *Pipeline) { p.keepStop = true } }

// WithMinLength drops tokens shorter than n runes after stemming.
func WithMinLength(n int) Option { return func(p *Pipeline) { p.minLen = n } }

// NewPipeline returns a pipeline with the defaults used in the paper's
// preprocessing: snowball stop list, Porter stemming, minimum length 2.
func NewPipeline(opts ...Option) *Pipeline {
	p := &Pipeline{stop: defaultStopSet(), stem: true, minLen: 2}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Normalize runs one raw tag or phrase through the pipeline and returns the
// resulting feature terms (possibly several, possibly none).
func (p *Pipeline) Normalize(raw string) []string {
	toks := Tokenize(raw)
	out := toks[:0]
	for _, t := range toks {
		if !p.keepStop {
			if _, isStop := p.stop[t]; isStop {
				continue
			}
		}
		if p.stem {
			t = Stem(t)
			// A word can stem INTO a stop word ("ans" → "an"); check
			// again after stemming.
			if !p.keepStop {
				if _, isStop := p.stop[t]; isStop {
					continue
				}
			}
		}
		if len([]rune(t)) < p.minLen {
			continue
		}
		out = append(out, t)
	}
	return out
}

// NormalizeAll applies Normalize to every raw string and concatenates the
// results, deduplicating while preserving first-occurrence order.
func (p *Pipeline) NormalizeAll(raws []string) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, raw := range raws {
		for _, t := range p.Normalize(raw) {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	return out
}

// IsStopWord reports whether w is in the pipeline's stop list.
func (p *Pipeline) IsStopWord(w string) bool {
	_, ok := p.stop[strings.ToLower(w)]
	return ok
}
