package textproc

// snowballStopWords is the English snowball stop-word list the paper uses to
// eliminate stop words from Flickr tags (Section 5.1.3).
var snowballStopWords = []string{
	"i", "me", "my", "myself", "we", "our", "ours", "ourselves", "you",
	"your", "yours", "yourself", "yourselves", "he", "him", "his",
	"himself", "she", "her", "hers", "herself", "it", "its", "itself",
	"they", "them", "their", "theirs", "themselves", "what", "which",
	"who", "whom", "this", "that", "these", "those", "am", "is", "are",
	"was", "were", "be", "been", "being", "have", "has", "had", "having",
	"do", "does", "did", "doing", "would", "should", "could", "ought",
	"a", "an", "the", "and", "but", "if", "or", "because", "as", "until",
	"while", "of", "at", "by", "for", "with", "about", "against",
	"between", "into", "through", "during", "before", "after", "above",
	"below", "to", "from", "up", "down", "in", "out", "on", "off",
	"over", "under", "again", "further", "then", "once", "here", "there",
	"when", "where", "why", "how", "all", "any", "both", "each", "few",
	"more", "most", "other", "some", "such", "no", "nor", "not", "only",
	"own", "same", "so", "than", "too", "very", "can", "will", "just",
	"don", "now",
}

func defaultStopSet() map[string]struct{} {
	set := make(map[string]struct{}, len(snowballStopWords))
	for _, w := range snowballStopWords {
		set[w] = struct{}{}
	}
	return set
}

// DefaultStopWords returns a copy of the built-in snowball stop-word list.
func DefaultStopWords() []string {
	out := make([]string, len(snowballStopWords))
	copy(out, snowballStopWords)
	return out
}
