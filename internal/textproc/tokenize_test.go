package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"simple", "Hamster eating broccoli", []string{"hamster", "eating", "broccoli"}},
		{"punctuation", "sunset, tree; car!", []string{"sunset", "tree", "car"}},
		{"empty", "", nil},
		{"only punctuation", "?!,.;", nil},
		{"digits kept", "photo2008 canon5d", []string{"photo2008", "canon5d"}},
		{"mixed case", "MoBo Hamster SYRIAN", []string{"mobo", "hamster", "syrian"}},
		{"unicode separators", "a b\tc", []string{"a", "b", "c"}},
		{"hyphenated splits", "new-york", []string{"new", "york"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Tokenize(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenizeProperties(t *testing.T) {
	// Every produced token is non-empty, lower-case, and alphanumeric.
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				// Lower-cased: ToLower must be a fixed point (some
				// letters have no lower-case form at all).
				if r != unicode.ToLower(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipelineNormalize(t *testing.T) {
	p := NewPipeline()
	got := p.Normalize("the Running hamsters")
	want := []string{"run", "hamster"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
}

func TestPipelineStopWordRemoval(t *testing.T) {
	p := NewPipeline()
	if got := p.Normalize("the of and"); len(got) != 0 {
		t.Errorf("stop words should be removed, got %v", got)
	}
	if !p.IsStopWord("the") {
		t.Error("IsStopWord(the) = false")
	}
	if p.IsStopWord("hamster") {
		t.Error("IsStopWord(hamster) = true")
	}
}

func TestPipelineOptions(t *testing.T) {
	t.Run("without stemming", func(t *testing.T) {
		p := NewPipeline(WithoutStemming())
		got := p.Normalize("running")
		if !reflect.DeepEqual(got, []string{"running"}) {
			t.Errorf("got %v", got)
		}
	})
	t.Run("keep stop words", func(t *testing.T) {
		p := NewPipeline(KeepStopWords(), WithoutStemming())
		got := p.Normalize("the cat")
		if !reflect.DeepEqual(got, []string{"the", "cat"}) {
			t.Errorf("got %v", got)
		}
	})
	t.Run("custom stop words", func(t *testing.T) {
		p := NewPipeline(WithStopWords([]string{"hamster"}), WithoutStemming())
		got := p.Normalize("hamster wheel")
		if !reflect.DeepEqual(got, []string{"wheel"}) {
			t.Errorf("got %v", got)
		}
	})
	t.Run("min length", func(t *testing.T) {
		p := NewPipeline(WithMinLength(5), WithoutStemming())
		got := p.Normalize("cat elephant")
		if !reflect.DeepEqual(got, []string{"elephant"}) {
			t.Errorf("got %v", got)
		}
	})
}

func TestNormalizeAllDeduplicates(t *testing.T) {
	p := NewPipeline(WithoutStemming())
	got := p.NormalizeAll([]string{"cat dog", "dog bird", "cat"})
	want := []string{"cat", "dog", "bird"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NormalizeAll = %v, want %v", got, want)
	}
}

func TestDefaultStopWordsCopy(t *testing.T) {
	a := DefaultStopWords()
	a[0] = "mutated"
	b := DefaultStopWords()
	if b[0] == "mutated" {
		t.Error("DefaultStopWords must return a copy")
	}
}
