package textproc

import (
	"testing"
	"testing/quick"
)

func TestStemKnownForms(t *testing.T) {
	tests := []struct{ in, want string }{
		// Step 1a plurals.
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		// Step 1b.
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		// Step 1c.
		{"happy", "happi"},
		{"sky", "sky"},
		// Step 2.
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"digitizer", "digit"},
		{"operator", "oper"},
		// Step 3.
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		// Step 4.
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"adjustment", "adjust"},
		{"adoption", "adopt"},
		{"communism", "commun"},
		{"activate", "activ"},
		// Step 5.
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		// Domain words from the paper's running example.
		{"hamsters", "hamster"},
		{"eating", "eat"},
		{"vegetables", "veget"},
		{"animals", "anim"},
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"a", "be", "日本"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem should usually be a no-op; verify on a vocabulary of
	// already-stemmed outputs.
	words := []string{"cat", "plaster", "motor", "hop", "tan", "fall",
		"hiss", "fizz", "fail", "file", "oper", "adjust", "adopt"}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not idempotent on %q: %q then %q", w, once, twice)
		}
	}
}

func TestStemNeverGrows(t *testing.T) {
	// The Porter stemmer never makes a lower-case ASCII word longer than
	// input+1 (the +1 from restoring a final 'e' in step 1b).
	f := func(raw string) bool {
		toks := Tokenize(raw)
		for _, w := range toks {
			if len(Stem(w)) > len(w)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "hamsters", "photographing", "generalizations"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
