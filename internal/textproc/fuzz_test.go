package textproc

import (
	"testing"
	"unicode"
)

// FuzzTokenize checks tokenizer invariants on arbitrary input: tokens are
// non-empty, contain no separators, and re-tokenizing a token is identity.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hamster eating broccoli", "MoBo Hamster!", "日本語 tags",
		"a-b_c.d", "123 photo2008", "\x00\xff", "ALL CAPS",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("separator %q inside token %q", r, tok)
				}
			}
			again := Tokenize(tok)
			if len(again) != 1 || again[0] != tok {
				t.Fatalf("re-tokenizing %q gave %v", tok, again)
			}
		}
	})
}

// FuzzStem checks the stemmer never panics, never produces an empty stem
// from a non-empty word, and never grows the word by more than the one
// restored 'e' of step 1b. (Porter stemming is famously NOT idempotent —
// e.g. "aayee" → "aaye" → "aay" → "aai" — so idempotence is deliberately
// not asserted.)
func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "running", "caresses", "sky", "generalizations", "zzzz",
		"agreed", "ied", "sses", "a", "be", "aayee",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		stem := Stem(s)
		if s != "" && stem == "" {
			t.Fatalf("Stem(%q) = empty", s)
		}
		if len(stem) > len(s)+1 {
			t.Fatalf("Stem(%q) grew to %q", s, stem)
		}
		// Non-ASCII or short inputs pass through untouched.
		if len(s) < 3 && stem != s {
			t.Fatalf("short word %q changed to %q", s, stem)
		}
	})
}

// FuzzPipeline checks the full normalisation pipeline never panics and
// never emits stop words.
func FuzzPipeline(f *testing.F) {
	f.Add("the cat runs")
	f.Add("MoBo Hamster Syrian Golden Cream Male Boy")
	f.Add("\t\n!!!")
	p := NewPipeline()
	f.Fuzz(func(t *testing.T, s string) {
		for _, term := range p.Normalize(s) {
			if p.IsStopWord(term) {
				t.Fatalf("stop word %q emitted", term)
			}
			if len([]rune(term)) < 2 {
				t.Fatalf("short term %q emitted", term)
			}
		}
	})
}
