package retrieval

import (
	"context"
	"fmt"
	"math"
	"strings"

	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/obs"
	"figfusion/internal/topk"
)

// PruningMode selects the block-max pruning behaviour of the indexed
// search paths.
type PruningMode int

const (
	// PruneOff disables pruning: the pre-pruning code paths run
	// unchanged. The library default.
	PruneOff PruningMode = iota
	// PruneBlockMax enables the exact pruning layer: the TA path merges
	// posting lists through lazily materialised blocks (postings in
	// blocks whose upper bound never reaches the merge frontier are never
	// scored), and the candidate path's admission gate skips candidates
	// whose summed block maxima cannot beat the current k-th heap score.
	// Results are byte-identical to PruneOff at any worker and shard
	// count; this is the mode the serving binaries default to.
	PruneBlockMax
	// PruneBlockMaxQuantized is PruneBlockMax plus a quantized first
	// scoring pass on the candidate path: clique weights are snapped down
	// to a 16-bit grid, the top 2k survivors under the cheap pass are
	// rescored with the exact CliqueSet, and the exact top k of the
	// survivors is returned. Deterministic at any worker count, but
	// approximate: an object whose exact score ranks in the top k can
	// miss the 2k survivor cut when quantization reorders the tail.
	PruneBlockMaxQuantized
)

// String names the mode as the -pruning flags spell it.
func (m PruningMode) String() string {
	switch m {
	case PruneOff:
		return "off"
	case PruneBlockMax:
		return "blockmax"
	case PruneBlockMaxQuantized:
		return "blockmax-quantized"
	}
	return fmt.Sprintf("PruningMode(%d)", int(m))
}

// ParsePruningMode parses a -pruning flag value (case-insensitive).
func ParsePruningMode(s string) (PruningMode, error) {
	switch strings.ToLower(s) {
	case "off":
		return PruneOff, nil
	case "blockmax":
		return PruneBlockMax, nil
	case "blockmax-quantized", "blockmaxquantized":
		return PruneBlockMaxQuantized, nil
	}
	return PruneOff, fmt.Errorf("retrieval: unknown pruning mode %q (want off, blockmax or blockmax-quantized)", s)
}

// boundSlack is the relative inflation applied to every block-max bound.
// A stored block maximum dominates each posting's conditional components
// in real arithmetic, but the query-time bound multiplies them in a
// different association order than potentialAt (λ·w first versus λ·cond
// first), so the computed bound can round below a computed potential by a
// few ulps (~2⁻⁵⁰ relative). Inflating by one part in 10¹² — twelve
// orders of magnitude above the rounding error, twelve below any score
// difference the tie-break could see — restores a safe inequality without
// ever flipping the comparison for scores that genuinely differ.
const boundSlack = 1e-12

// blockBounds appends one query clique's per-block potential upper bounds
// to dst: for each block, wl·((1−α)·MaxSF + α·MaxSM) plus a slack term
// proportional to the magnitudes of the participating terms (see
// boundSlack and index.Block.MinSM — magnitude-relative slack stays sound
// even when the sf and sm terms cancel). Returns nil when the entry's
// blocks are stale for gen: the caller must treat the clique as
// unboundable and fall back to unpruned behaviour for anything it covers.
func blockBounds(dst []float64, cs *mrf.CliqueSet, ci int, entry *index.Entry, gen uint64) []float64 {
	blocks, ok := entry.BlocksAt(gen)
	if !ok {
		return nil
	}
	alpha := cs.ScoringParams().Alpha
	wl := cs.WeightedLambda(ci)
	for bi := 0; bi < blocks.Len(); bi++ {
		sfTerm := (1 - alpha) * blocks.MaxSF[bi]
		smMag := blocks.MaxSM[bi]
		if -blocks.MinSM[bi] > smMag {
			smMag = -blocks.MinSM[bi]
		}
		if smMag < 0 {
			smMag = 0
		}
		u := wl*(sfTerm+alpha*blocks.MaxSM[bi]) + wl*(sfTerm+alpha*smMag)*boundSlack
		dst = append(dst, u)
	}
	return dst
}

// admissionEligible reports whether the candidate-path admission gate is
// sound for this engine configuration. The gate's bound sums block maxima
// over the cliques whose posting lists contain the candidate — a
// member-only bound. Two things can put score mass outside it:
//
//   - α > 0: every query clique, member or not, contributes its smoothing
//     term to every candidate. That mass is corpus-wide (it depends on
//     the candidate's full feature list), so no per-posting summary can
//     bound it; measurement on the generated corpora shows it dominating
//     (the sound member+residual bound prunes nothing at the default α).
//   - Truncated FIGs (MaxNodes, MaxCliques): an object can then contain a
//     clique's features without appearing in its posting list, giving a
//     non-member a positive set-frequency term the bound never sees.
//
// With α = 0 and untruncated enumeration, a non-member's contribution is
// exactly zero and the member-only bound is sound. The TA path has no
// such restriction — its aggregate is member-only by definition.
func admissionEligible(p mrf.Params, bopts fig.Options, eopts fig.EnumerateOptions) bool {
	return !(p.Alpha > 0) && bopts.MaxNodes == 0 && eopts.MaxCliques == 0
}

// admissionBounds builds the per-entry block-bound table the count-merge
// consumes, reusing the accumulator's pooled backing storage. A nil row
// marks a clique whose blocks are stale (or whose entry is nil) — any
// candidate drawing on it becomes unboundable. Rows are aligned with
// a.entries.
func (a *candAccum) admissionBounds(cs *mrf.CliqueSet, gen uint64) [][]float64 {
	total := 0
	for _, entry := range a.entries {
		if entry != nil {
			total += (len(entry.Objects) + index.BlockLen - 1) / index.BlockLen
		}
	}
	if cap(a.ubBack) < total {
		a.ubBack = make([]float64, 0, total)
	}
	a.ubBack = a.ubBack[:0]
	a.ub = a.ub[:0]
	for i, entry := range a.entries {
		if entry == nil {
			a.ub = append(a.ub, nil)
			continue
		}
		start := len(a.ubBack)
		filled := blockBounds(a.ubBack, cs, i, entry, gen)
		if filled == nil {
			a.ub = append(a.ub, nil)
			continue
		}
		a.ubBack = filled
		a.ub = append(a.ub, a.ubBack[start:len(a.ubBack):len(a.ubBack)])
	}
	return a.ub
}

// quantizeWeights snaps the Eq. 9 clique weights down onto a 16-bit grid
// spanning [0, max(w)]: the first-pass weights of PruneBlockMaxQuantized.
// Rounding down (never up) keeps every quantized potential at or below
// its exact counterpart, so the admission gate's exact-weight bounds
// remain sound for the quantized pass and the surviving set is a
// deterministic function of the query alone — independent of worker
// count. The grid step max(w)/65535 bounds the per-clique weight error,
// the quantity DESIGN.md's error analysis starts from.
func quantizeWeights(w []float64) []float64 {
	var maxW float64
	for _, v := range w {
		if v > maxW {
			maxW = v
		}
	}
	q := make([]float64, len(w))
	if maxW <= 0 {
		return q
	}
	step := maxW / 65535
	for i, v := range w {
		n := math.Floor(v / step)
		if n > 65535 {
			n = 65535
		}
		if n < 0 {
			n = 0
		}
		q[i] = n * step
	}
	return q
}

// lazyShared is the state all of one query's lazy cursors share. The
// merge is single-goroutine, so plain fields suffice: once poll observes
// a done context the cancelled flag flips and every cursor reports
// exhaustion, unwinding the merge without scoring another posting.
type lazyShared struct {
	ctx       context.Context
	done      <-chan struct{}
	cancelled bool
}

// poll checks the context (only when it is cancellable) and latches the
// result. Called once per materialised block — at most index.BlockLen
// potentials between checks, the same cancellation latency class as
// cancelStride.
func (s *lazyShared) poll() bool {
	if s.cancelled {
		return true
	}
	if s.done != nil && s.ctx.Err() != nil {
		s.cancelled = true
	}
	return s.cancelled
}

// lazyElem is one pending element of a cursor's frontier heap: a
// materialised posting (block < 0) or a still-summarised block carrying
// its upper bound and first object ID. The heap orders by (score
// descending, ID ascending) — topk.Less extended to blocks — which makes
// the emitted posting stream exactly the sorted order the eager path
// produces: a block always surfaces before any posting whose score its
// bound could dominate, and at exact score ties the ID comparison is
// decisive because a block's postings all carry IDs at or above its
// MinID.
type lazyElem struct {
	score float64
	id    media.ObjectID
	block int32
}

func lazyLess(a, b lazyElem) bool {
	//figlint:allow floatcmp -- mirrors topk.Less: the frontier needs the exact total order, an epsilon band breaks the heap invariant
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// lazyCursor walks one clique's posting list best-first, materialising
// blocks only when their upper bound reaches the frontier. It implements
// topk.LazySource for the pruned TA path.
type lazyCursor struct {
	shared  *lazyShared
	cs      *mrf.CliqueSet
	ci      int
	entry   *index.Entry
	corpus  *media.Corpus
	exclude media.ObjectID
	h       []lazyElem
	ub      []float64        // per-block upper bounds; nil when summaries are stale
	scored  [][]float64      // per-block potential memo, filled by materialize
	slab    []float64        // backing store for scored, one slice per cursor
	minIDs  []media.ObjectID // per-block first posting ID, from the summaries
	maxIDs  []media.ObjectID // per-block last posting ID; random access searches this
	nBlocks int
	nMat    int
	// filter is a 1024-bit membership filter over the posting IDs (bit
	// id mod 1024). Most TA random accesses ask about objects that are
	// not in this clique's list; a clear bit answers the miss with two
	// loads instead of a binary search. Set bits are conservative — a
	// collision just falls through to the exact lookup.
	filter [16]uint64
}

// pushElem / popTop maintain the frontier as a hand-rolled binary heap —
// container/heap would box every posting into an interface value, undoing
// the allocation discipline the scoring paths keep.
func (c *lazyCursor) pushElem(e lazyElem) {
	c.h = append(c.h, e)
	i := len(c.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !lazyLess(c.h[i], c.h[parent]) {
			break
		}
		c.h[i], c.h[parent] = c.h[parent], c.h[i]
		i = parent
	}
}

func (c *lazyCursor) popTop() lazyElem {
	top := c.h[0]
	last := len(c.h) - 1
	c.h[0] = c.h[last]
	c.h = c.h[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= len(c.h) {
			break
		}
		best := left
		if right := left + 1; right < len(c.h) && lazyLess(c.h[right], c.h[left]) {
			best = right
		}
		if !lazyLess(c.h[best], c.h[i]) {
			break
		}
		c.h[i], c.h[best] = c.h[best], c.h[i]
		i = best
	}
	return top
}

// materialize scores one block's postings into the frontier, applying the
// same exclusion and positive-score filters as the eager list builder. The
// raw potentials are memoised per block so the TA random accesses (score)
// never recompute what the merge already paid for.
func (c *lazyCursor) materialize(bi int32) {
	if c.shared.poll() {
		return
	}
	c.nMat++
	lo := int(bi) * index.BlockLen
	hi := lo + index.BlockLen
	if hi > len(c.entry.Objects) {
		hi = len(c.entry.Objects)
	}
	if c.slab == nil {
		c.slab = make([]float64, len(c.entry.Objects))
	}
	memo := c.slab[lo:hi:hi]
	for j, oid := range c.entry.Objects[lo:hi] {
		if oid == c.exclude {
			continue
		}
		p := c.cs.Potential(c.ci, c.corpus.Object(oid))
		memo[j] = p
		if p <= 0 {
			continue
		}
		c.pushElem(lazyElem{score: p, id: oid, block: -1})
	}
	c.scored[bi] = memo
}

// next yields the cursor's postings in exact topk.Less order: whenever a
// block tops the frontier its postings are materialised and re-enter the
// ordering with their true scores, so no posting is ever emitted while a
// block that could dominate it remains summarised. Blocks whose bound is
// ≤ 0 were dropped at init — every posting they hold scores ≤ 0 and the
// eager path would have filtered it too.
func (c *lazyCursor) next() (topk.Item, bool) {
	for len(c.h) > 0 {
		if c.shared.cancelled {
			return topk.Item{}, false
		}
		top := c.popTop()
		if top.block >= 0 {
			c.materialize(top.block)
			continue
		}
		return topk.Item{ID: top.id, Score: top.score}, true
	}
	return topk.Item{}, false
}

// score is the TA random access: the posting's potential if the object is
// in this clique's list (and would have survived the eager path's
// filters), 0 otherwise. Valid at any cursor position — it consults the
// full posting list, not the frontier.
func (c *lazyCursor) score(id media.ObjectID) float64 {
	if c.shared.cancelled || id == c.exclude {
		return 0
	}
	if c.filter[(uint32(id)>>6)&15]&(1<<(uint32(id)&63)) == 0 {
		return 0
	}
	objs := c.entry.Objects
	if c.maxIDs != nil {
		// Block-first random access: a hand-rolled binary search over
		// the per-block max IDs — a tiny, cache-resident array — picks
		// the one block that could hold the object, and the decision
		// finishes inside it. Most TA random accesses miss (the object
		// is not in this clique's list); they end right here, past the
		// last block or in the ID gap before the block's first posting,
		// without ever touching the posting list. A block whose bound
		// is ≤ 0 also answers 0 without scoring: the bound dominates
		// every potential inside it, so the eager path would have
		// filtered the posting too.
		bs := c.maxIDs
		lo, hi := 0, len(bs)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bs[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bi := lo
		if bi == len(bs) || id < c.minIDs[bi] {
			return 0
		}
		if c.ub[bi] <= 0 {
			return 0
		}
		blo := bi * index.BlockLen
		bhi := blo + index.BlockLen
		if bhi > len(objs) {
			bhi = len(objs)
		}
		lo, hi = blo, bhi
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if objs[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == bhi || objs[lo] != id {
			return 0
		}
		if memo := c.scored[bi]; memo != nil {
			// The memoised value is the identical float the merge
			// computed — returning it preserves byte-exactness.
			if p := memo[lo-blo]; p > 0 {
				return p
			}
			return 0
		}
	} else {
		// Stale summaries: membership by binary search over the full
		// posting list, the unpruned lookup.
		lo, hi := 0, len(objs)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if objs[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(objs) || objs[lo] != id {
			return 0
		}
	}
	p := c.cs.Potential(c.ci, c.corpus.Object(id))
	if p <= 0 {
		return 0
	}
	return p
}

// searchTALazy is the block-max TA path: one lazy cursor per indexed query
// clique feeds topk.ThresholdMergeLazy, which is step-for-step the
// Threshold Algorithm of the eager path. Because each cursor emits its
// postings in exactly the order the eager sorted lists hold them (see
// lazyElem), the result is byte-identical to cliqueLists +
// topk.ThresholdMerge — the exactness contract — while postings in blocks
// the threshold never reaches are never scored at all. Lists whose block
// summaries are stale (untouched entries after an Insert, or a pre-blocks
// snapshot) are materialised eagerly, which is precisely the unpruned
// behaviour for that list. Cancellation is polled once per materialised
// block (≤ index.BlockLen postings, comparable to cancelStride) and once
// per stale-list stride.
func (e *Engine) searchTALazy(ctx context.Context, cs *mrf.CliqueSet, entries []*index.Entry, exclude media.ObjectID, k int, tr *obs.QueryTrace) ([]topk.Item, error) {
	corpus := e.Model.Stats.Corpus()
	gen := e.Model.Generation()
	done := ctx.Done()
	shared := &lazyShared{ctx: ctx, done: done}
	cursors := make([]*lazyCursor, 0, len(entries))
	cnt := 0
	for i, entry := range entries {
		if entry == nil {
			continue
		}
		c := &lazyCursor{shared: shared, cs: cs, ci: i, entry: entry, corpus: corpus, exclude: exclude}
		for _, oid := range entry.Objects {
			c.filter[(uint32(oid)>>6)&15] |= 1 << (uint32(oid) & 63)
		}
		ub := blockBounds(nil, cs, i, entry, gen)
		if ub == nil {
			for _, oid := range entry.Objects {
				if done != nil && cnt%cancelStride == 0 && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				cnt++
				if oid == exclude {
					continue
				}
				p := cs.Potential(i, corpus.Object(oid))
				if p <= 0 {
					continue
				}
				c.pushElem(lazyElem{score: p, id: oid, block: -1})
			}
		} else {
			c.nBlocks = len(ub)
			c.ub = ub
			c.scored = make([][]float64, len(ub))
			// The columnar summaries alias straight in as the cursor's
			// random-access search arrays — no per-query copy.
			blocks, _ := entry.BlocksAt(gen)
			c.minIDs, c.maxIDs = blocks.MinID, blocks.MaxID
			for bi, u := range ub {
				if u <= 0 {
					continue
				}
				c.pushElem(lazyElem{score: u, id: entry.Objects[bi*index.BlockLen], block: int32(bi)})
			}
		}
		cursors = append(cursors, c)
	}
	sources := make([]topk.LazySource, len(cursors))
	for i, c := range cursors {
		sources[i] = topk.LazySource{Next: c.next, Score: c.score}
	}
	out := topk.ThresholdMergeLazy(sources, k)
	if shared.cancelled {
		return nil, ctx.Err()
	}
	skipped := 0
	for _, c := range cursors {
		skipped += c.nBlocks - c.nMat
	}
	tr.AddPruneBlocks(skipped)
	return out, nil
}
