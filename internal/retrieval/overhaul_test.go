package retrieval

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
)

func cloneFeatures(d *dataset.Dataset, src *media.Object) ([]media.Feature, []int) {
	feats := make([]media.Feature, len(src.Feats))
	counts := make([]int, len(src.Feats))
	for i, fid := range src.Feats {
		feats[i] = d.Corpus.Dict.Feature(fid)
		counts[i] = int(src.Counts[i])
	}
	return feats, counts
}

// TestWithParamsCloneSeesInserts is the stale-cache regression test for
// engines cloned with WithParams: clones share the correlation model but
// carry their own scorer, so an Insert through the original — which resets
// only the original's scorer — must still invalidate the clone's warm
// caches (via the model's generation counter). Before the generation
// stamp, the clone kept serving pre-insert cosines, CorS weights and
// smoothing sums.
func TestWithParamsCloneSeesInserts(t *testing.T) {
	d := testData(t)
	a := newEngine(t, d, Config{})
	params := a.Scorer.Params
	params.Alpha = 0.25 // the kind of variant a training sweep runs
	clone, err := a.WithParams(params)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every cache in the clone's scorer (and the shared model).
	for i := 0; i < 5; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		clone.Search(q, 10, q.ID)
		clone.SearchScan(q, 10, q.ID)
	}
	src := d.Corpus.Object(7)
	feats, counts := cloneFeatures(d, src)
	if _, err := a.Insert(feats, counts, src.Month); err != nil {
		t.Fatal(err)
	}
	// Ground truth: a fresh scorer over the grown corpus with the clone's
	// parameters. The warm clone must match it exactly.
	fresh, err := a.WithParams(params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		want := fresh.Search(q, 10, q.ID)
		got := clone.Search(q, 10, q.ID)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results from warm clone, %d from fresh scorer", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d rank %d: warm clone served stale cache: got %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestEntryCorSMatchesScorer pins the satellite contract of the indexed
// search paths: the Eq. 9 weight they serve for every query clique equals
// — exactly, not approximately — the weight the scorer would compute at
// query time, so serving it from the index cannot change a single score
// bit. The contract must survive Engine.Insert: CliqueWeight is
// corpus-global, so after an insert every stored CorS the insert did not
// refresh is stale, and the weight resolution must detect that and fall
// back to the scorer instead of serving the pre-insert value (the
// regression this half of the test guards).
func TestEntryCorSMatchesScorer(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})

	// checkServedWeights compares the weight the indexed paths would
	// serve (compile's resolution) against a brand-new scorer over the
	// corpus as it currently stands, and reports how many of the checked
	// entries were served from the index versus the stale-entry fallback.
	checkServedWeights := func(label string) (checked, stale int) {
		t.Helper()
		fresh, err := mrf.NewScorer(e.Model, e.Scorer.Params)
		if err != nil {
			t.Fatal(err)
		}
		gen := e.Model.Generation()
		for i := 0; i < 20; i++ {
			q := d.Corpus.Object(media.ObjectID(i))
			for _, c := range e.QueryCliques(q) {
				entry, ok := e.Index.Lookup(c)
				if !ok {
					continue
				}
				if got, want := e.cliqueWeight(c, entry, gen), fresh.CorS(c); got != want {
					t.Fatalf("%s: clique %v: served weight %v != scorer CorS %v", label, c.Feats, got, want)
				}
				if _, ok := entry.CorSAt(gen); !ok {
					stale++
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no indexed query cliques checked", label)
		}
		return checked, stale
	}

	if _, stale := checkServedWeights("fresh index"); stale != 0 {
		t.Fatalf("fresh index: %d entries unexpectedly stale", stale)
	}

	// Grow the corpus through the engine. Insert refreshes only the
	// inserted object's cliques, so the second pass must exercise the
	// stale-entry fallback on at least some entries to mean anything.
	src := d.Corpus.Object(3)
	feats, counts := cloneFeatures(d, src)
	if _, err := e.Insert(feats, counts, src.Month); err != nil {
		t.Fatal(err)
	}
	checked, stale := checkServedWeights("after insert")
	if stale == 0 || stale == checked {
		t.Fatalf("after insert: %d of %d entries stale; want a mix of refreshed and fallback entries", stale, checked)
	}

	// End to end: indexed Search through the live (partially stale) index
	// must match an engine rebuilt from scratch over the grown corpus.
	rebuilt := newEngine(t, d, Config{})
	for i := 0; i < 10; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		want := rebuilt.Search(q, 10, q.ID)
		got := e.Search(q, 10, q.ID)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results from live engine, %d from rebuilt engine", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d rank %d: live engine served stale index weight: got %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// workerRunBytes serializes every search path's ranked IDs and scores for
// one engine configuration.
func workerRunBytes(t *testing.T, d *dataset.Dataset, workers, candidateCap int, pruning PruningMode) []byte {
	t.Helper()
	e := newEngine(t, d, Config{Workers: workers, CandidateCap: candidateCap, Pruning: pruning})
	var buf bytes.Buffer
	for i := 0; i < 20; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		for _, it := range e.Search(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d>%d@%.17g ", q.ID, it.ID, it.Score)
		}
		for _, it := range e.SearchTA(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d#%d@%.17g ", q.ID, it.ID, it.Score)
		}
		for _, it := range e.SearchScan(q, 10, q.ID) {
			fmt.Fprintf(&buf, "%d|%d@%.17g ", q.ID, it.ID, it.Score)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestSearchDeterministicAcrossWorkers: every search path must return
// byte-identical rankings and scores at any scoring fan-out, with and
// without the candidate cap, in every pruning mode — the partial top-k
// merge under topk.Less's total order makes worker partitioning
// unobservable, and the pruning layer's bounds are striping-independent.
// The exact pruning mode must additionally match the unpruned bytes;
// quantized mode is held to worker determinism only (its first pass
// legitimately selects different rescoring candidates than exact merge).
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	d := testData(t)
	for _, candidateCap := range []int{0, 20} {
		exact := workerRunBytes(t, d, 1, candidateCap, PruneOff)
		for _, pruning := range []PruningMode{PruneOff, PruneBlockMax, PruneBlockMaxQuantized} {
			base := workerRunBytes(t, d, 1, candidateCap, pruning)
			if pruning != PruneBlockMaxQuantized && !bytes.Equal(base, exact) {
				t.Fatalf("cap=%d pruning=%v: workers=1 diverges from unpruned", candidateCap, pruning)
			}
			for _, w := range []int{2, 4, runtime.NumCPU()} {
				if got := workerRunBytes(t, d, w, candidateCap, pruning); !bytes.Equal(base, got) {
					t.Fatalf("cap=%d pruning=%v: workers=%d diverges from workers=1", candidateCap, pruning, w)
				}
			}
		}
	}
}

// TestCandidateMergeMatchesMap cross-checks the multi-way count-merge
// against a straightforward map-based union over the same posting lists.
func TestCandidateMergeMatchesMap(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	for i := 0; i < 10; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		cliques := e.QueryCliques(q)
		acc := getAccum()
		acc.lookup(e.Index, cliques)
		got := acc.merge(q.ID, 0, nil)

		counts := make(map[media.ObjectID]int)
		for _, c := range cliques {
			entry, ok := e.Index.Lookup(c)
			if !ok {
				continue
			}
			for _, oid := range entry.Objects {
				if oid != q.ID {
					counts[oid]++
				}
			}
		}
		if len(got) != len(counts) {
			t.Fatalf("query %d: merge found %d candidates, map %d", i, len(got), len(counts))
		}
		for j, oid := range got {
			if j > 0 && got[j-1] >= oid {
				t.Fatalf("query %d: candidates not strictly ascending at %d", i, j)
			}
			if int(acc.counts[j]) != counts[oid] {
				t.Fatalf("query %d object %d: merge count %d, map count %d", i, oid, acc.counts[j], counts[oid])
			}
			if _, ok := counts[oid]; !ok {
				t.Fatalf("query %d: spurious candidate %d", i, oid)
			}
		}
		putAccum(acc)
	}
}

var benchSink int

func BenchmarkCandidateSet(b *testing.B) {
	d := testData(b)
	e := newEngine(b, d, Config{})
	cliques := e.QueryCliques(d.Corpus.Object(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := getAccum()
		acc.lookup(e.Index, cliques)
		benchSink = len(acc.merge(NoExclude, 0, nil))
		putAccum(acc)
	}
}

func BenchmarkConcurrentSearch(b *testing.B) {
	d := testData(b)
	e := newEngine(b, d, Config{})
	queries := make([]*media.Object, 8)
	for i := range queries {
		queries[i] = d.Corpus.Object(media.ObjectID(i))
	}
	gs := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		gs = append(gs, n)
	}
	for _, g := range gs {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < b.N; i += g {
						q := queries[i%len(queries)]
						benchSink = len(e.Search(q, 10, q.ID))
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
