package retrieval

import (
	"context"
	"errors"
	"testing"

	"figfusion/internal/topk"
)

// TestTAContextParity: each TA-family context variant with an undone
// context is byte-identical to its plain form, and a pre-cancelled
// context aborts with ctx.Canceled and no results.
func TestTAContextParity(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	q := d.Corpus.Object(5)
	p := e.Prepare(q)

	cases := []struct {
		name  string
		plain func() []topk.Item
		ctxed func(context.Context) ([]topk.Item, error)
	}{
		{
			"SearchTA",
			func() []topk.Item { return e.SearchTA(q, 8, q.ID) },
			func(ctx context.Context) ([]topk.Item, error) { return e.SearchTAContext(ctx, q, 8, q.ID) },
		},
		{
			"SearchTAPrepared",
			func() []topk.Item { return e.SearchTAPrepared(p, 8, q.ID) },
			func(ctx context.Context) ([]topk.Item, error) { return e.SearchTAPreparedContext(ctx, p, 8, q.ID) },
		},
		{
			"SearchMergeFull",
			func() []topk.Item { return e.SearchMergeFull(q, 8, q.ID) },
			func(ctx context.Context) ([]topk.Item, error) { return e.SearchMergeFullContext(ctx, q, 8, q.ID) },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := c.plain()
			if len(want) == 0 {
				t.Fatal("plain search returned nothing; fixture too small")
			}
			got, err := c.ctxed(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("rank %d: context variant %v vs plain %v", i, got[i], want[i])
				}
			}

			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			items, err := c.ctxed(cctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if items != nil {
				t.Errorf("cancelled search returned results: %v", items)
			}
		})
	}
}

// TestTAContextParityParallel repeats the parity check with a multi-worker
// engine, exercising cliqueLists' striped path and its cancelled-stripe
// abort.
func TestTAContextParityParallel(t *testing.T) {
	d := testData(t)
	serial := newEngine(t, d, Config{})
	parallel := newEngine(t, d, Config{Workers: 4})
	q := d.Corpus.Object(9)

	want := serial.SearchTA(q, 8, q.ID)
	got, err := parallel.SearchTAContext(context.Background(), q, 8, q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rank %d: 4 workers %v vs serial %v", i, got[i], want[i])
		}
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := parallel.SearchTAContext(cctx, q, 8, q.ID); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
