package retrieval

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"figfusion/internal/dataset"
	"figfusion/internal/index"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/obs"
	"figfusion/internal/topk"
)

// pruneEngine builds an engine with the given config; alpha >= 0 swaps in
// a parameter clone with that smoothing weight (alpha = 0 is the
// configuration where the candidate admission gate is provably sound and
// therefore active).
func pruneEngine(t *testing.T, d *dataset.Dataset, cfg Config, alpha float64) *Engine {
	t.Helper()
	e := newEngine(t, d, cfg)
	if alpha >= 0 {
		params := e.Scorer.Params
		params.Alpha = alpha
		var err error
		e, err = e.WithParams(params)
		if err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// pruneRunBytes serializes the ranked IDs and exact scores of every
// indexed search path — direct, prepared, TA and prepared TA — over a
// fixed query set. Byte equality of two such transcripts is the pruning
// exactness contract.
func pruneRunBytes(t *testing.T, d *dataset.Dataset, e *Engine, queries int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < queries; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		p := e.Prepare(q)
		for pi, items := range [][]topk.Item{
			e.Search(q, 10, q.ID),
			e.SearchPrepared(p, 10, q.ID),
			e.SearchTA(q, 10, q.ID),
			e.SearchTAPrepared(p, 10, q.ID),
		} {
			for _, it := range items {
				fmt.Fprintf(&buf, "%d/%d>%d@%.17g ", pi, q.ID, it.ID, it.Score)
			}
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestBlockMaxParity is the exactness gate of the tentpole: with
// quantization off, the pruned engine's results are byte-identical to the
// unpruned engine's on every indexed search path, at every worker count,
// with and without the candidate cap, at the default smoothing weight
// (where only the TA block skipping engages) and at alpha = 0 (where the
// candidate admission gate engages too).
func TestBlockMaxParity(t *testing.T) {
	d := testData(t)
	for _, alpha := range []float64{-1, 0} {
		for _, cap := range []int{0, 20} {
			base := pruneRunBytes(t, d, pruneEngine(t, d, Config{CandidateCap: cap}, alpha), 20)
			for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
				e := pruneEngine(t, d, Config{Workers: w, CandidateCap: cap, Pruning: PruneBlockMax}, alpha)
				if got := pruneRunBytes(t, d, e, 20); !bytes.Equal(base, got) {
					t.Fatalf("alpha=%v cap=%d workers=%d: blockmax diverges from unpruned", alpha, cap, w)
				}
			}
		}
	}
}

// TestBlockMaxParityAcrossSnapshotAndInsert walks the pruned engine
// through the index lifecycle: a snapshot round trip (summaries persist
// and keep pruning), then an insert (touched summaries refresh, untouched
// ones go stale and must stop pruning rather than serve pre-insert
// bounds). At every step the pruned transcript must equal the unpruned
// one.
func TestBlockMaxParityAcrossSnapshotAndInsert(t *testing.T) {
	d := testData(t)
	for _, alpha := range []float64{-1, 0} {
		off := pruneEngine(t, d, Config{}, alpha)
		bm := pruneEngine(t, d, Config{Pruning: PruneBlockMax}, alpha)
		if !bytes.Equal(pruneRunBytes(t, d, off, 20), pruneRunBytes(t, d, bm, 20)) {
			t.Fatalf("alpha=%v: fresh index: blockmax diverges", alpha)
		}

		// Snapshot round trip while the model is still at generation 0, so
		// the loaded summaries come back fresh and actually prune.
		var buf bytes.Buffer
		if err := bm.Index.SaveAt(&buf, bm.Model.Generation()); err != nil {
			t.Fatal(err)
		}
		loaded, err := index.Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		lbm := pruneEngine(t, d, Config{Index: loaded, Pruning: PruneBlockMax}, alpha)
		if !bytes.Equal(pruneRunBytes(t, d, off, 20), pruneRunBytes(t, d, lbm, 20)) {
			t.Fatalf("alpha=%v: loaded index: blockmax diverges", alpha)
		}

		// Insert through the pruned engine; mirror the object into the
		// other engines so all three serve the same corpus AND the same
		// statistics. The engines own separate models over the shared
		// corpus, so each mirror needs the full routed-ingestion sequence
		// (stats append, cache invalidation, scorer reset, index) — the
		// same steps Engine.Insert runs, minus the corpus.Add that already
		// happened once.
		src := d.Corpus.Object(5)
		feats, counts := cloneFeatures(d, src)
		o, err := bm.Insert(feats, counts, src.Month)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []*Engine{off, lbm} {
			if err := e.Model.Stats.Append(o); err != nil {
				t.Fatal(err)
			}
			e.Model.InvalidateCache()
			e.Scorer.Reset()
			if err := e.IndexObject(o); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(pruneRunBytes(t, d, off, 20), pruneRunBytes(t, d, bm, 20)) {
			t.Fatalf("alpha=%v: after insert: blockmax diverges", alpha)
		}
		// The loaded index's untouched entries are now stale at the grown
		// generation: pruning must degrade to exact unpruned scoring, not
		// serve pre-insert bounds.
		if !bytes.Equal(pruneRunBytes(t, d, off, 20), pruneRunBytes(t, d, lbm, 20)) {
			t.Fatalf("alpha=%v: stale loaded index after insert: blockmax diverges", alpha)
		}
	}
}

// TestQuantizedDeterministicAcrossWorkers: the quantized first pass keeps
// worker-count determinism (floored weights keep every quantized score
// under its exact-weight admission bound, so the gate never depends on the
// striping), and exact rescoring keeps the final scores bit-exact MRF
// scores.
func TestQuantizedDeterministicAcrossWorkers(t *testing.T) {
	d := testData(t)
	for _, alpha := range []float64{-1, 0} {
		base := pruneRunBytes(t, d, pruneEngine(t, d, Config{Workers: 1, Pruning: PruneBlockMaxQuantized}, alpha), 20)
		if len(bytes.TrimSpace(base)) == 0 {
			t.Fatalf("alpha=%v: quantized engine returned no results", alpha)
		}
		for _, w := range []int{2, 4, runtime.NumCPU()} {
			e := pruneEngine(t, d, Config{Workers: w, Pruning: PruneBlockMaxQuantized}, alpha)
			if got := pruneRunBytes(t, d, e, 20); !bytes.Equal(base, got) {
				t.Fatalf("alpha=%v: quantized workers=%d diverges from workers=1", alpha, w)
			}
		}
	}
}

// TestQuantizedScoresAreExact: whatever the quantized first pass selects,
// the served scores come from the exact clique set — each returned item's
// score equals the unpruned engine's score for the same object.
func TestQuantizedScoresAreExact(t *testing.T) {
	d := testData(t)
	off := pruneEngine(t, d, Config{}, -1)
	qz := pruneEngine(t, d, Config{Pruning: PruneBlockMaxQuantized}, -1)
	for i := 0; i < 20; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		exact := map[media.ObjectID]float64{}
		for _, it := range off.Search(q, 50, q.ID) {
			exact[it.ID] = it.Score
		}
		for _, it := range qz.Search(q, 10, q.ID) {
			want, ok := exact[it.ID]
			if !ok {
				// Outside the unpruned top-50: quantization picked a far
				// candidate; rescoring still makes its score exact, but we
				// cannot cross-check it here.
				continue
			}
			if it.Score != want {
				t.Fatalf("query %d object %d: quantized served %v, exact score is %v", i, it.ID, it.Score, want)
			}
		}
	}
}

// TestPruneCounters: the admission gate and the block skipper report their
// work through the retrieval.prune.* registry counters — and actually do
// work on this corpus (nonzero skips), which is what the perf claim and
// the /v1/metrics surface rest on.
func TestPruneCounters(t *testing.T) {
	d := testData(t)
	params := mrf.DefaultParams()
	params.Alpha = 0 // candidate gate requires the smoothing-free config
	reg := obs.NewRegistry()
	e := newEngine(t, d, Config{Params: params, Pruning: PruneBlockMax, Metrics: reg})
	for i := 0; i < 20; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		e.Search(q, 5, q.ID)
		e.SearchTA(q, 5, q.ID)
	}
	admitted := reg.Counter("retrieval.prune.candidates.admitted").Value()
	skipped := reg.Counter("retrieval.prune.candidates.skipped").Value()
	blocks := reg.Counter("retrieval.prune.blocks.skipped").Value()
	if admitted == 0 {
		t.Error("no candidates admitted through the gate")
	}
	if skipped == 0 {
		t.Error("admission gate never skipped a candidate")
	}
	if blocks == 0 {
		t.Error("lazy TA never skipped a block")
	}
}

// TestPruningOffNoCounters: with pruning off the engine must not touch the
// prune counters (the gate work is genuinely absent, not merely invisible).
func TestPruningOffNoCounters(t *testing.T) {
	d := testData(t)
	reg := obs.NewRegistry()
	e := newEngine(t, d, Config{Metrics: reg})
	for i := 0; i < 5; i++ {
		q := d.Corpus.Object(media.ObjectID(i))
		e.Search(q, 5, q.ID)
		e.SearchTA(q, 5, q.ID)
	}
	for _, name := range []string{
		"retrieval.prune.candidates.admitted",
		"retrieval.prune.candidates.skipped",
		"retrieval.prune.blocks.skipped",
	} {
		if v := reg.Counter(name).Value(); v != 0 {
			t.Errorf("%s = %d with pruning off", name, v)
		}
	}
}

func TestParsePruningMode(t *testing.T) {
	cases := map[string]PruningMode{
		"off":                PruneOff,
		"OFF":                PruneOff,
		"blockmax":           PruneBlockMax,
		"BlockMax":           PruneBlockMax,
		"blockmax-quantized": PruneBlockMaxQuantized,
		"blockmaxquantized":  PruneBlockMaxQuantized,
	}
	for in, want := range cases {
		got, err := ParsePruningMode(in)
		if err != nil || got != want {
			t.Errorf("ParsePruningMode(%q) = %v, %v; want %v", in, got, err, want)
		}
		if rt, err := ParsePruningMode(want.String()); err != nil || rt != want {
			t.Errorf("round trip of %v failed: %v, %v", want, rt, err)
		}
	}
	if _, err := ParsePruningMode("wand"); err == nil {
		t.Error("unknown mode accepted")
	}
}
