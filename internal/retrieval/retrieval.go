// Package retrieval implements the social media retrieval engine of
// Sections 3.3–3.5. A query object is converted to its Feature Interaction
// Graph, the graph's cliques are extracted, and candidates are ranked by the
// MRF similarity score. Two search paths are provided:
//
//   - Search — Algorithm 1: probe the clique inverted index for each query
//     clique, score the candidates of each list with the potential function,
//     and merge the ranked lists with the Threshold Algorithm. Objects
//     sharing no clique with the query are pruned, which is the index's
//     (paper-prescribed) approximation.
//   - SearchScan — the sequential comparison of Section 3.5's first stage:
//     score every database object, used as the exactness reference and the
//     no-index ablation.
package retrieval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/topk"
)

// NoExclude disables query-object exclusion in Search calls.
const NoExclude = media.ObjectID(-1)

// Config assembles an Engine.
type Config struct {
	// Params are the MRF parameters; zero value means mrf.DefaultParams.
	Params mrf.Params
	// BuildOpts configure FIG construction for both indexing and queries.
	BuildOpts fig.Options
	// EnumOpts configure clique enumeration for both indexing and queries.
	EnumOpts fig.EnumerateOptions
	// SkipIndex suppresses inverted-index construction; Search then
	// falls back to SearchScan. Used by scan-only ablations.
	SkipIndex bool
	// Index, when non-nil, is used instead of building one — e.g. an
	// index persisted by a previous run. It must have been built over the
	// same corpus (FID and ObjectID spaces) with the same Build/Enum
	// options.
	Index *index.Inverted
	// CandidateCap bounds how many index candidates receive the full MRF
	// score per query (0 = unlimited). When the candidate set exceeds the
	// cap, candidates are pre-ranked by the number of query cliques they
	// share — the cheap evidence the index provides for free — and only
	// the top CandidateCap are scored. This two-stage refinement bounds
	// query latency at large |D| at a small recall cost (see the
	// BenchmarkAblationCandidateCap ablation).
	CandidateCap int
}

// Engine is a retrieval engine over one corpus. Safe for concurrent
// searches once constructed.
type Engine struct {
	Model  *corr.Model
	Scorer *mrf.Scorer
	Index  *index.Inverted

	buildOpts    fig.Options
	enumOpts     fig.EnumerateOptions
	candidateCap int
}

// NewEngine trains nothing by itself: it wires the correlation model,
// scorer and (unless skipped) the clique inverted index.
func NewEngine(m *corr.Model, cfg Config) (*Engine, error) {
	params := cfg.Params
	if len(params.Lambda) == 0 {
		params = mrf.DefaultParams()
	}
	scorer, err := mrf.NewScorer(m, params)
	if err != nil {
		return nil, fmt.Errorf("retrieval: %w", err)
	}
	e := &Engine{
		Model:        m,
		Scorer:       scorer,
		buildOpts:    cfg.BuildOpts,
		enumOpts:     cfg.EnumOpts,
		candidateCap: cfg.CandidateCap,
	}
	switch {
	case cfg.Index != nil:
		e.Index = cfg.Index
	case !cfg.SkipIndex:
		e.Index = index.Build(m, cfg.BuildOpts, cfg.EnumOpts)
	}
	return e, nil
}

// WithParams returns an engine sharing this engine's model and inverted
// index but scoring with different MRF parameters. The index stores only
// postings and CorS values, which do not depend on Λ, so parameter training
// can sweep candidates without rebuilding it.
func (e *Engine) WithParams(params mrf.Params) (*Engine, error) {
	scorer, err := mrf.NewScorer(e.Model, params)
	if err != nil {
		return nil, fmt.Errorf("retrieval: %w", err)
	}
	clone := *e
	clone.Scorer = scorer
	return &clone, nil
}

// QueryCliques converts a query object to its FIG clique set (Algorithm 1,
// lines 4–5).
func (e *Engine) QueryCliques(q *media.Object) []fig.Clique {
	g := fig.Build(q, e.Model, e.buildOpts)
	return g.Cliques(e.enumOpts)
}

// Search returns the top-k objects most similar to the query. Following
// Section 3.5 ("we find the objects from the database which share some same
// cliques as the query object, and compute the similarity score"), the
// inverted index generates the candidate set — the union of the query
// cliques' posting lists — and each candidate receives the full MRF score.
// Objects sharing no clique with the query are pruned, which is the
// index's (paper-prescribed) approximation. exclude removes one object
// (normally the query itself, when it comes from the corpus) from the
// results; pass NoExclude to keep everything.
func (e *Engine) Search(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	if e.Index == nil {
		return e.SearchScan(q, k, exclude)
	}
	cliques := e.QueryCliques(q)
	candidates := e.candidateSet(cliques, exclude)
	corpus := e.Model.Stats.Corpus()
	h := topk.NewHeap(k)
	for _, oid := range candidates {
		if s := e.Scorer.Score(cliques, corpus.Object(oid)); s > 0 {
			h.Push(topk.Item{ID: oid, Score: s})
		}
	}
	return h.Results()
}

// candidateSet unions the posting lists of the query cliques. When the
// union exceeds the configured CandidateCap, candidates are pre-ranked by
// shared-clique count (ties by ID) and truncated.
func (e *Engine) candidateSet(cliques []fig.Clique, exclude media.ObjectID) []media.ObjectID {
	counts := make(map[media.ObjectID]int)
	var out []media.ObjectID
	for _, c := range cliques {
		entry, ok := e.Index.Lookup(c)
		if !ok {
			continue
		}
		for _, oid := range entry.Objects {
			if oid == exclude {
				continue
			}
			if counts[oid] == 0 {
				out = append(out, oid)
			}
			counts[oid]++
		}
	}
	if e.candidateCap <= 0 || len(out) <= e.candidateCap {
		return out
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out[:e.candidateCap]
}

// SearchTA is the literal Algorithm 1 variant: every query clique's posting
// list becomes a ranked candidate list scored by that clique's potential
// alone, and the lists are merged with the Threshold Algorithm. It trades
// the cross-clique smoothing mass of Search for cheaper scoring; the
// ablation benchmarks compare the two.
func (e *Engine) SearchTA(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	if e.Index == nil {
		return e.SearchScan(q, k, exclude)
	}
	cliques := e.QueryCliques(q)
	corpus := e.Model.Stats.Corpus()
	lists := make([][]topk.Item, 0, len(cliques))
	for _, c := range cliques {
		entry, ok := e.Index.Lookup(c)
		if !ok {
			continue
		}
		list := make([]topk.Item, 0, len(entry.Objects))
		for _, oid := range entry.Objects {
			if oid == exclude {
				continue
			}
			score := e.Scorer.Potential(c, corpus.Object(oid))
			if score <= 0 {
				continue
			}
			list = append(list, topk.Item{ID: oid, Score: score})
		}
		sortItems(list)
		lists = append(lists, list)
	}
	return topk.ThresholdMerge(lists, k)
}

// SearchScan ranks every database object by the full MRF score — the
// sequential comparison path. Scoring fans out across CPUs; results are
// deterministic (ties break by object ID).
func (e *Engine) SearchScan(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	cliques := e.QueryCliques(q)
	corpus := e.Model.Stats.Corpus()
	n := corpus.Len()
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		h := topk.NewHeap(k)
		for _, o := range corpus.Objects {
			if o.ID == exclude {
				continue
			}
			if s := e.Scorer.Score(cliques, o); s > 0 {
				h.Push(topk.Item{ID: o.ID, Score: s})
			}
		}
		return h.Results()
	}
	partial := make([][]topk.Item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := topk.NewHeap(k)
			for i := w; i < n; i += workers {
				o := corpus.Object(media.ObjectID(i))
				if o.ID == exclude {
					continue
				}
				if s := e.Scorer.Score(cliques, o); s > 0 {
					h.Push(topk.Item{ID: o.ID, Score: s})
				}
			}
			partial[w] = h.Results()
		}(w)
	}
	wg.Wait()
	h := topk.NewHeap(k)
	for _, items := range partial {
		for _, it := range items {
			h.Push(it)
		}
	}
	return h.Results()
}

// SearchMergeFull is the no-TA ablation of SearchTA: identical per-clique
// candidate lists but an exhaustive merge instead of threshold termination.
func (e *Engine) SearchMergeFull(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	if e.Index == nil {
		return e.SearchScan(q, k, exclude)
	}
	cliques := e.QueryCliques(q)
	corpus := e.Model.Stats.Corpus()
	lists := make([][]topk.Item, 0, len(cliques))
	for _, c := range cliques {
		entry, ok := e.Index.Lookup(c)
		if !ok {
			continue
		}
		list := make([]topk.Item, 0, len(entry.Objects))
		for _, oid := range entry.Objects {
			if oid == exclude {
				continue
			}
			score := e.Scorer.Potential(c, corpus.Object(oid))
			if score <= 0 {
				continue
			}
			list = append(list, topk.Item{ID: oid, Score: score})
		}
		lists = append(lists, list)
	}
	return topk.FullMerge(lists, k)
}

func sortItems(items []topk.Item) {
	// Insertion sort is enough for typical posting lengths; fall back to
	// heap-based ordering for long lists.
	if len(items) < 64 {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && topk.Less(items[j], items[j-1]); j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
		return
	}
	h := topk.NewHeap(len(items))
	for _, it := range items {
		h.Push(it)
	}
	copy(items, h.Results())
}

// Insert ingests one new object into a live engine without a rebuild — the
// growth path of a social media database (the paper cites 2 million new
// Flickr images per day). The object joins the corpus, the correlation
// statistics grow incrementally, the object's cliques are added to the
// inverted index, and the corpus-global memoisation caches (cosines, CorS,
// smoothing sums) are dropped since every global statistic shifted.
// Trained thresholds and Λ parameters are kept; retrain periodically if the
// corpus distribution drifts. Not safe to call concurrently with searches.
func (e *Engine) Insert(feats []media.Feature, counts []int, month int) (*media.Object, error) {
	corpus := e.Model.Stats.Corpus()
	o, err := corpus.Add(feats, counts, month)
	if err != nil {
		return nil, err
	}
	if err := e.Model.Stats.Append(o); err != nil {
		return nil, err
	}
	e.Model.InvalidateCache()
	e.Scorer.Reset()
	if e.Index != nil {
		g := fig.Build(o, e.Model, e.buildOpts)
		if err := e.Index.Insert(o.ID, g.Cliques(e.enumOpts), e.Model.Stats); err != nil {
			return nil, err
		}
	}
	return o, nil
}
