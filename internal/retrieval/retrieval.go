// Package retrieval implements the social media retrieval engine of
// Sections 3.3–3.5. A query object is converted to its Feature Interaction
// Graph, the graph's cliques are extracted, and candidates are ranked by the
// MRF similarity score. Two search paths are provided:
//
//   - Search — Algorithm 1: probe the clique inverted index for each query
//     clique, score the candidates of each list with the potential function,
//     and merge the ranked lists with the Threshold Algorithm. Objects
//     sharing no clique with the query are pruned, which is the index's
//     (paper-prescribed) approximation.
//   - SearchScan — the sequential comparison of Section 3.5's first stage:
//     score every database object, used as the exactness reference and the
//     no-index ablation.
package retrieval

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"figfusion/internal/corr"
	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/media"
	"figfusion/internal/mrf"
	"figfusion/internal/obs"
	"figfusion/internal/topk"
)

// NoExclude disables query-object exclusion in Search calls.
const NoExclude = media.ObjectID(-1)

// Config assembles an Engine.
type Config struct {
	// Params are the MRF parameters; zero value means mrf.DefaultParams.
	Params mrf.Params
	// BuildOpts configure FIG construction for both indexing and queries.
	BuildOpts fig.Options
	// EnumOpts configure clique enumeration for both indexing and queries.
	EnumOpts fig.EnumerateOptions
	// SkipIndex suppresses inverted-index construction; Search then
	// falls back to SearchScan. Used by scan-only ablations.
	SkipIndex bool
	// Index, when non-nil, is used instead of building one — e.g. an
	// index persisted by a previous run. It must have been built over the
	// same corpus (FID and ObjectID spaces) with the same Build/Enum
	// options.
	Index *index.Inverted
	// CandidateCap bounds how many index candidates receive the full MRF
	// score per query (0 = unlimited). When the candidate set exceeds the
	// cap, candidates are pre-ranked by the number of query cliques they
	// share — the cheap evidence the index provides for free — and only
	// the top CandidateCap are scored. This two-stage refinement bounds
	// query latency at large |D| at a small recall cost (see the
	// BenchmarkAblationCandidateCap ablation).
	CandidateCap int
	// Workers bounds the scoring fan-out of one query (Search, SearchTA,
	// SearchMergeFull and SearchScan stripe their candidate scoring over
	// this many goroutines) and of the index build (FIG construction and
	// entry weighting); 0 means runtime.NumCPU(). Results are
	// deterministic at any worker count — partial top-k lists merge under
	// the total order of topk.Less, and the build's parallel stages write
	// disjoint slots with order-stable reductions.
	Workers int
	// Metrics, when non-nil, attaches per-query observability: stage
	// latency histograms, path counters, candidate volume, and cache
	// hit/miss gauges, all registered by name (see metrics.go). Nil — the
	// default — is the no-op mode: searches pay only an untaken branch.
	Metrics *obs.Registry
	// SlowLog, when non-nil (and Metrics is set), receives finished query
	// traces that crossed its threshold.
	SlowLog *obs.SlowLog
	// Pruning selects the block-max pruning mode of the indexed search
	// paths (see PruningMode). The zero value is PruneOff — the exact
	// pre-pruning behaviour — matching the library's
	// no-surprises default; the serving binaries opt into PruneBlockMax,
	// which is byte-identical by construction (the exactness contract the
	// parity tests pin) but skips posting blocks and candidates whose
	// block-max bounds cannot reach the k-th score.
	Pruning PruningMode
}

// Engine is a retrieval engine over one corpus. Safe for concurrent
// searches once constructed.
type Engine struct {
	Model  *corr.Model
	Scorer *mrf.Scorer
	Index  *index.Inverted

	buildOpts    fig.Options
	enumOpts     fig.EnumerateOptions
	candidateCap int
	workers      int
	pruning      PruningMode
	gateEligible bool          // admission gate soundness precondition (see admissionEligible)
	metrics      *queryMetrics // nil = no-op instrumentation
}

// NewEngine trains nothing by itself: it wires the correlation model,
// scorer and (unless skipped) the clique inverted index.
func NewEngine(m *corr.Model, cfg Config) (*Engine, error) {
	params := cfg.Params
	if len(params.Lambda) == 0 {
		params = mrf.DefaultParams()
	}
	scorer, err := mrf.NewScorer(m, params)
	if err != nil {
		return nil, fmt.Errorf("retrieval: %w", err)
	}
	e := &Engine{
		Model:        m,
		Scorer:       scorer,
		buildOpts:    cfg.BuildOpts,
		enumOpts:     cfg.EnumOpts,
		candidateCap: cfg.CandidateCap,
		workers:      cfg.Workers,
		pruning:      cfg.Pruning,
		gateEligible: admissionEligible(params, cfg.BuildOpts, cfg.EnumOpts),
	}
	switch {
	case cfg.Index != nil:
		e.Index = cfg.Index
	case !cfg.SkipIndex:
		e.Index = index.BuildWorkers(m, cfg.BuildOpts, cfg.EnumOpts, cfg.Workers)
	}
	e.SetMetrics(cfg.Metrics, cfg.SlowLog)
	return e, nil
}

// WithParams returns an engine sharing this engine's model and inverted
// index but scoring with different MRF parameters. The index stores only
// postings and CorS values, which do not depend on Λ, so parameter training
// can sweep candidates without rebuilding it. The clone's scorer also
// shares this engine's warm CorS and smoothing caches (both are
// parameter-independent and generation-stamped; see mrf.Scorer.WithParams),
// which is what keeps the λ/α coordinate ascent from refilling cold caches
// at every sweep point.
func (e *Engine) WithParams(params mrf.Params) (*Engine, error) {
	scorer, err := e.Scorer.WithParams(params)
	if err != nil {
		return nil, fmt.Errorf("retrieval: %w", err)
	}
	clone := *e
	clone.Scorer = scorer
	clone.gateEligible = admissionEligible(params, e.buildOpts, e.enumOpts)
	return &clone, nil
}

// QueryCliques converts a query object to its FIG clique set (Algorithm 1,
// lines 4–5).
func (e *Engine) QueryCliques(q *media.Object) []fig.Clique {
	g := fig.Build(q, e.Model, e.buildOpts)
	return g.Cliques(e.enumOpts)
}

// Search returns the top-k objects most similar to the query. Following
// Section 3.5 ("we find the objects from the database which share some same
// cliques as the query object, and compute the similarity score"), the
// inverted index generates the candidate set — the union of the query
// cliques' posting lists — and each candidate receives the full MRF score.
// Objects sharing no clique with the query are pruned, which is the
// index's (paper-prescribed) approximation. exclude removes one object
// (normally the query itself, when it comes from the corpus) from the
// results; pass NoExclude to keep everything.
func (e *Engine) Search(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	// context.Background is never cancelled, so the context path adds no
	// cancellation checks (done channel is nil) and cannot return an error.
	out, _ := e.SearchContext(context.Background(), q, k, exclude)
	return out
}

// SearchContext is Search under a context: cancellation and deadline are
// honoured between scoring stripes (every cancelStride candidates per
// worker), returning ctx.Err() with no results once the context is done.
// With an undone context the results are byte-identical to Search.
func (e *Engine) SearchContext(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) ([]topk.Item, error) {
	if e.Index == nil {
		return e.SearchScanContext(ctx, q, k, exclude)
	}
	tr := e.metrics.begin(obs.PathIndex)
	st := tr.Begin()
	cliques := e.QueryCliques(q)
	tr.End(obs.StagePrepare, st)
	acc := getAccum()
	defer putAccum(acc)
	st = tr.Begin()
	acc.lookup(e.Index, cliques)
	tr.End(obs.StageGather, st)
	// Compile before the candidate merge (the pre-pruning order was the
	// reverse): the admission bounds the gated merge accumulates are
	// priced with the compiled clique weights.
	st = tr.Begin()
	cs, csq := e.compileModes(cliques, acc.entries)
	tr.End(obs.StagePrepare, st)
	st = tr.Begin()
	candidates, bounds := e.mergeCandidates(acc, cs, exclude)
	tr.End(obs.StageGather, st)
	tr.SetCandidates(len(candidates))
	out, err := e.runScoring(ctx, cs, csq, candidates, bounds, k, tr)
	e.metrics.finish(tr)
	return out, err
}

// mergeCandidates runs the count-merge, with the block-max admission
// bounds attached when the engine prunes and the gate is sound for its
// configuration (bounds comes back nil otherwise, disabling the gate).
func (e *Engine) mergeCandidates(acc *candAccum, cs *mrf.CliqueSet, exclude media.ObjectID) ([]media.ObjectID, []float64) {
	var ub [][]float64
	if e.pruning != PruneOff && e.gateEligible {
		ub = acc.admissionBounds(cs, e.Model.Generation())
	}
	candidates := acc.merge(exclude, e.candidateCap, ub)
	if ub == nil {
		return candidates, nil
	}
	return candidates, acc.candBounds()
}

// PreparedQuery is a query compiled once and searched many times: the FIG
// clique enumeration and the MRF compile — the per-query work that does
// not depend on any index — are hoisted out so a scatter-gather router can
// pay them once per query instead of once per shard. Prepare and the
// Prepared searches are read-only on engine and model; a Prepared query is
// invalidated by any corpus mutation (its compiled weights are
// generation-stamped at prepare time).
type PreparedQuery struct {
	query   *media.Object
	cliques []fig.Clique
	keys    []string // index keys, precomputed so shard lookups do not re-encode
	cs      *mrf.CliqueSet
	// csq is the quantized first-pass clique set, non-nil only when the
	// preparing engine runs PruneBlockMaxQuantized with CorS weighting.
	csq *mrf.CliqueSet
}

// Prepare compiles a query for repeated SearchPrepared/SearchTAPrepared
// calls. Clique weights are served from the scorer's generation-stamped
// cache — the same corr.Stats.CliqueWeight the index stores, so prepared
// searches score identically to Search (see cliqueWeight).
func (e *Engine) Prepare(q *media.Object) *PreparedQuery {
	cliques := e.QueryCliques(q)
	keys := make([]string, len(cliques))
	for i, c := range cliques {
		keys[i] = c.Key()
	}
	var weights []float64
	if e.Scorer.Params.UseCorS {
		weights = make([]float64, len(cliques))
		for i, c := range cliques {
			weights[i] = e.Scorer.CorS(c)
		}
	}
	var csq *mrf.CliqueSet
	if e.pruning == PruneBlockMaxQuantized && weights != nil {
		csq = e.Scorer.Compile(cliques, quantizeWeights(weights))
	}
	return &PreparedQuery{query: q, cliques: cliques, keys: keys, cs: e.Scorer.Compile(cliques, weights), csq: csq}
}

// SearchPrepared is Search with the query-side work already done: only the
// candidate lookup against this engine's index and the candidate scoring
// remain. Results are byte-identical to Search on the same engine.
func (e *Engine) SearchPrepared(p *PreparedQuery, k int, exclude media.ObjectID) []topk.Item {
	out, _ := e.SearchPreparedContext(context.Background(), p, k, exclude)
	return out
}

// SearchPreparedContext is SearchPrepared under a context — the per-shard
// leg of the router's SearchContext. The prepare stage was paid in
// Prepare, so the trace records only gather/score/merge.
func (e *Engine) SearchPreparedContext(ctx context.Context, p *PreparedQuery, k int, exclude media.ObjectID) ([]topk.Item, error) {
	if e.Index == nil {
		return e.SearchScanContext(ctx, p.query, k, exclude)
	}
	tr := e.metrics.begin(obs.PathIndex)
	acc := getAccum()
	defer putAccum(acc)
	st := tr.Begin()
	acc.lookupKeys(e.Index, p.keys)
	candidates, bounds := e.mergeCandidates(acc, p.cs, exclude)
	tr.End(obs.StageGather, st)
	tr.SetCandidates(len(candidates))
	out, err := e.runScoring(ctx, p.cs, p.csq, candidates, bounds, k, tr)
	e.metrics.finish(tr)
	return out, err
}

// SearchTAPrepared is SearchTA with the query-side work already done.
func (e *Engine) SearchTAPrepared(p *PreparedQuery, k int, exclude media.ObjectID) []topk.Item {
	out, _ := e.SearchTAPreparedContext(context.Background(), p, k, exclude)
	return out
}

// SearchTAPreparedContext is SearchTAPrepared under a context — the
// per-shard leg of the router's SearchTAContext. Cancellation follows the
// SearchContext contract: on a done context the partial lists are
// discarded and ctx.Err() comes back.
func (e *Engine) SearchTAPreparedContext(ctx context.Context, p *PreparedQuery, k int, exclude media.ObjectID) ([]topk.Item, error) {
	if e.Index == nil {
		return e.SearchScanContext(ctx, p.query, k, exclude)
	}
	tr := e.metrics.begin(obs.PathTA)
	acc := getAccum()
	defer putAccum(acc)
	st := tr.Begin()
	acc.lookupKeys(e.Index, p.keys)
	tr.End(obs.StageGather, st)
	if e.pruning != PruneOff {
		// Block-max path: byte-identical results (quantization never
		// applies to TA — its per-list scores would change without a
		// rescoring stage to repair them), lazily materialised blocks.
		// Scoring and merging interleave, so both accrue to StageScore.
		st = tr.Begin()
		out, err := e.searchTALazy(ctx, p.cs, acc.entries, exclude, k, tr)
		tr.End(obs.StageScore, st)
		e.metrics.finish(tr)
		return out, err
	}
	st = tr.Begin()
	lists, err := e.cliqueLists(ctx, p.cs, acc.entries, exclude, true)
	tr.End(obs.StageScore, st)
	if err != nil {
		e.metrics.finish(tr)
		return nil, err
	}
	st = tr.Begin()
	out := topk.ThresholdMerge(lists, k)
	tr.End(obs.StageMerge, st)
	e.metrics.finish(tr)
	return out, nil
}

// compile builds the query's compiled clique set, serving the Eq. 9 CorS
// weights from the inverted index where the clique is indexed (the stored
// value is exactly corr.Stats.CliqueWeight, the quantity the scorer would
// recompute) and falling back to the scorer's cache for unindexed cliques
// — or for indexed cliques whose stored weight predates the current
// statistics generation (after an Insert, entries the insert did not touch
// hold weights of the pre-insert corpus; serving those would make the
// indexed paths diverge from the scorer and from SearchScan). entries must
// be aligned with cliques, nil marking an unindexed clique.
func (e *Engine) compile(cliques []fig.Clique, entries []*index.Entry) *mrf.CliqueSet {
	return e.Scorer.Compile(cliques, e.queryWeights(cliques, entries))
}

// compileModes is compile plus, under PruneBlockMaxQuantized, the
// quantized first-pass clique set over the same cliques (nil in every
// other mode, and when CorS weighting is off — there are then no weights
// to quantize and the mode degrades to exact PruneBlockMax behaviour).
func (e *Engine) compileModes(cliques []fig.Clique, entries []*index.Entry) (cs, csq *mrf.CliqueSet) {
	weights := e.queryWeights(cliques, entries)
	cs = e.Scorer.Compile(cliques, weights)
	if e.pruning == PruneBlockMaxQuantized && weights != nil {
		csq = e.Scorer.Compile(cliques, quantizeWeights(weights))
	}
	return cs, csq
}

// queryWeights resolves the Eq. 9 weight of every query clique (see
// cliqueWeight); nil when CorS weighting is off.
func (e *Engine) queryWeights(cliques []fig.Clique, entries []*index.Entry) []float64 {
	if !e.Scorer.Params.UseCorS {
		return nil
	}
	gen := e.Model.Generation()
	weights := make([]float64, len(cliques))
	for i, c := range cliques {
		weights[i] = e.cliqueWeight(c, entries[i], gen)
	}
	return weights
}

// cliqueWeight resolves one query clique's Eq. 9 weight at the given
// statistics generation: the index-stored value when it is current, the
// scorer's (generation-stamped) cache otherwise. Both sources compute
// corr.Stats.CliqueWeight, so which one serves is unobservable in scores.
func (e *Engine) cliqueWeight(c fig.Clique, entry *index.Entry, gen uint64) float64 {
	if entry != nil {
		if w, ok := entry.CorSAt(gen); ok {
			return w
		}
	}
	return e.Scorer.CorS(c)
}

// cancelStride is how many candidates a scoring loop processes between
// context checks. Scoring one candidate costs microseconds, so a stride of
// 64 bounds cancellation latency well under a millisecond while keeping
// the per-candidate overhead to a predictable-taken branch.
const cancelStride = 64

// runScoring is the scoring stage behind the indexed search paths. In the
// exact modes (csq nil) it is scoreCandidates directly. Under
// PruneBlockMaxQuantized it runs the two-pass pipeline: a first pass over
// the quantized clique set keeps the top 2k — quantization only perturbs
// the ordering near ties, so doubling k gives the exact ranking ample
// room to survive the approximate pass — then the survivors are rescored
// serially with the exact clique set and the true top k is taken from the
// exact scores. The admission gate is sound against the quantized scores
// because quantized weights are floored: every quantized potential is
// bounded by its exact-weight admission bound.
func (e *Engine) runScoring(ctx context.Context, cs, csq *mrf.CliqueSet, candidates []media.ObjectID, bounds []float64, k int, tr *obs.QueryTrace) ([]topk.Item, error) {
	if csq == nil {
		return e.scoreCandidates(ctx, cs, candidates, bounds, k, tr)
	}
	first, err := e.scoreCandidates(ctx, csq, candidates, bounds, 2*k, tr)
	if err != nil {
		return nil, err
	}
	corpus := e.Model.Stats.Corpus()
	sc := cs.GetScratch()
	defer cs.PutScratch(sc)
	st := tr.Begin()
	h := topk.NewHeap(k)
	for _, it := range first {
		if s := cs.ScoreScratch(sc, corpus.Object(it.ID)); s > 0 {
			h.Push(topk.Item{ID: it.ID, Score: s})
		}
	}
	out := h.Results()
	tr.End(obs.StageMerge, st)
	return out, nil
}

// scoreCandidates applies the full compiled MRF score to every candidate
// and keeps the top k. With more than one configured worker and enough
// candidates to matter, scoring stripes across goroutines; the partial
// top-k lists merge under topk.Less's total order, so the result is
// byte-identical at any worker count. Cancellation is checked every
// cancelStride candidates per stripe — only when the context is
// cancellable (done channel non-nil), so Background-context searches pay
// nothing.
//
// bounds, when non-nil, is the per-candidate admission bound aligned with
// candidates: a candidate whose bound is strictly below the current local
// heap's k-th score is skipped without being scored. Each worker gates
// against its own heap, whose k-th score is at most the global one, so a
// candidate skipped under any striping would also lose the global heap —
// results stay byte-identical at every worker count, gated or not.
func (e *Engine) scoreCandidates(ctx context.Context, cs *mrf.CliqueSet, candidates []media.ObjectID, bounds []float64, k int, tr *obs.QueryTrace) ([]topk.Item, error) {
	corpus := e.Model.Stats.Corpus()
	done := ctx.Done()
	workers := e.workerCount(len(candidates))
	if workers <= 1 || len(candidates) < 2*workers {
		sc := cs.GetScratch()
		defer cs.PutScratch(sc)
		st := tr.Begin()
		h := topk.NewHeap(k)
		skipped := 0
		for i, oid := range candidates {
			if done != nil && i%cancelStride == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if bounds != nil {
				if min, ok := h.Min(); ok && bounds[i] < min.Score {
					skipped++
					continue
				}
			}
			if s := cs.ScoreScratch(sc, corpus.Object(oid)); s > 0 {
				h.Push(topk.Item{ID: oid, Score: s})
			}
		}
		tr.End(obs.StageScore, st)
		if bounds != nil {
			tr.AddPruneCandidates(len(candidates)-skipped, skipped)
		}
		st = tr.Begin()
		out := h.Results()
		tr.End(obs.StageMerge, st)
		return out, nil
	}
	partial := make([][]topk.Item, workers)
	skips := make([]int, workers)
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	st := tr.Begin()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := cs.GetScratch()
			defer cs.PutScratch(sc)
			h := topk.NewHeap(k)
			n := 0
			skipped := 0
			for i := w; i < len(candidates); i += workers {
				if done != nil && n%cancelStride == 0 && ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				n++
				if bounds != nil {
					if min, ok := h.Min(); ok && bounds[i] < min.Score {
						skipped++
						continue
					}
				}
				oid := candidates[i]
				if s := cs.ScoreScratch(sc, corpus.Object(oid)); s > 0 {
					h.Push(topk.Item{ID: oid, Score: s})
				}
			}
			partial[w] = h.Results()
			skips[w] = skipped
		}(w)
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	tr.End(obs.StageScore, st)
	if bounds != nil {
		skipped := 0
		for _, sk := range skips {
			skipped += sk
		}
		tr.AddPruneCandidates(len(candidates)-skipped, skipped)
	}
	st = tr.Begin()
	out := topk.MergeRanked(partial, k)
	tr.End(obs.StageMerge, st)
	return out, nil
}

// workerCount resolves the configured scoring fan-out against the size of
// the work at hand.
func (e *Engine) workerCount(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SearchTA is the literal Algorithm 1 variant: every query clique's posting
// list becomes a ranked candidate list scored by that clique's potential
// alone, and the lists are merged with the Threshold Algorithm. It trades
// the cross-clique smoothing mass of Search for cheaper scoring; the
// ablation benchmarks compare the two.
func (e *Engine) SearchTA(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	out, _ := e.SearchTAContext(context.Background(), q, k, exclude)
	return out
}

// SearchTAContext is SearchTA under a context, with the same cancellation
// contract as SearchContext: checked every cancelStride postings while the
// per-clique lists build, partial work discarded on cancellation.
func (e *Engine) SearchTAContext(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) ([]topk.Item, error) {
	if e.Index == nil {
		return e.SearchScanContext(ctx, q, k, exclude)
	}
	tr := e.metrics.begin(obs.PathTA)
	st := tr.Begin()
	cliques := e.QueryCliques(q)
	tr.End(obs.StagePrepare, st)
	acc := getAccum()
	defer putAccum(acc)
	st = tr.Begin()
	acc.lookup(e.Index, cliques)
	tr.End(obs.StageGather, st)
	st = tr.Begin()
	cs := e.compile(cliques, acc.entries)
	tr.End(obs.StagePrepare, st)
	if e.pruning != PruneOff {
		st = tr.Begin()
		out, err := e.searchTALazy(ctx, cs, acc.entries, exclude, k, tr)
		tr.End(obs.StageScore, st)
		e.metrics.finish(tr)
		return out, err
	}
	st = tr.Begin()
	lists, err := e.cliqueLists(ctx, cs, acc.entries, exclude, true)
	tr.End(obs.StageScore, st)
	if err != nil {
		e.metrics.finish(tr)
		return nil, err
	}
	st = tr.Begin()
	out := topk.ThresholdMerge(lists, k)
	tr.End(obs.StageMerge, st)
	e.metrics.finish(tr)
	return out, nil
}

// cliqueLists scores each indexed query clique's posting list with that
// clique's potential alone — Algorithm 1's per-list scores. Lists come back
// in clique order (the order ThresholdMerge visits them, which matters at
// exact score ties); cliques without an index entry are skipped, matching
// the previous sequential construction. When sorted is set each list is
// ranked best-first, as TA requires. List construction stripes across the
// configured workers since the lists are independent. Cancellation is
// checked every cancelStride postings per stripe (the counter carries
// across lists so short posting lists still hit the check), only when the
// context is cancellable — Background-context callers pay nothing.
func (e *Engine) cliqueLists(ctx context.Context, cs *mrf.CliqueSet, entries []*index.Entry, exclude media.ObjectID, sorted bool) ([][]topk.Item, error) {
	corpus := e.Model.Stats.Corpus()
	done := ctx.Done()
	slots := make([][]topk.Item, len(entries))
	fill := func(i, cnt int) (int, bool) {
		entry := entries[i]
		list := make([]topk.Item, 0, len(entry.Objects))
		for _, oid := range entry.Objects {
			if done != nil && cnt%cancelStride == 0 && ctx.Err() != nil {
				return cnt, false
			}
			cnt++
			if oid == exclude {
				continue
			}
			score := cs.Potential(i, corpus.Object(oid))
			if score <= 0 {
				continue
			}
			list = append(list, topk.Item{ID: oid, Score: score})
		}
		if sorted {
			sortItems(list)
		}
		slots[i] = list
		return cnt, true
	}
	workers := e.workerCount(len(entries))
	if workers <= 1 {
		cnt := 0
		for i := range entries {
			if entries[i] == nil {
				continue
			}
			var ok bool
			if cnt, ok = fill(i, cnt); !ok {
				return nil, ctx.Err()
			}
		}
	} else {
		var cancelled atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cnt := 0
				for i := w; i < len(entries); i += workers {
					if entries[i] == nil {
						continue
					}
					var ok bool
					if cnt, ok = fill(i, cnt); !ok {
						cancelled.Store(true)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if cancelled.Load() {
			return nil, ctx.Err()
		}
	}
	lists := make([][]topk.Item, 0, len(entries))
	for i := range entries {
		if entries[i] != nil {
			lists = append(lists, slots[i])
		}
	}
	return lists, nil
}

// SearchScan ranks every database object by the full MRF score — the
// sequential comparison path. Scoring fans out across CPUs; results are
// deterministic (ties break by object ID).
func (e *Engine) SearchScan(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	out, _ := e.SearchScanContext(context.Background(), q, k, exclude)
	return out
}

// SearchScanContext is SearchScan under a context, with the same
// cancellation contract as SearchContext.
func (e *Engine) SearchScanContext(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) ([]topk.Item, error) {
	tr := e.metrics.begin(obs.PathScan)
	st := tr.Begin()
	cliques := e.QueryCliques(q)
	// The scan path is the exactness reference: weights come from the
	// scorer (nil ⇒ computed through its cache), never the index.
	cs := e.Scorer.Compile(cliques, nil)
	tr.End(obs.StagePrepare, st)
	corpus := e.Model.Stats.Corpus()
	n := corpus.Len()
	tr.SetCandidates(n)
	done := ctx.Done()
	workers := e.workerCount(n)
	if workers <= 1 {
		sc := cs.NewScratch()
		st = tr.Begin()
		h := topk.NewHeap(k)
		for i, o := range corpus.Objects {
			if done != nil && i%cancelStride == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if o.ID == exclude {
				continue
			}
			if s := cs.ScoreScratch(sc, o); s > 0 {
				h.Push(topk.Item{ID: o.ID, Score: s})
			}
		}
		tr.End(obs.StageScore, st)
		st = tr.Begin()
		out := h.Results()
		tr.End(obs.StageMerge, st)
		e.metrics.finish(tr)
		return out, nil
	}
	partial := make([][]topk.Item, workers)
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	st = tr.Begin()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := cs.NewScratch()
			h := topk.NewHeap(k)
			cnt := 0
			for i := w; i < n; i += workers {
				if done != nil && cnt%cancelStride == 0 && ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				cnt++
				o := corpus.Object(media.ObjectID(i))
				if o.ID == exclude {
					continue
				}
				if s := cs.ScoreScratch(sc, o); s > 0 {
					h.Push(topk.Item{ID: o.ID, Score: s})
				}
			}
			partial[w] = h.Results()
		}(w)
	}
	wg.Wait()
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	tr.End(obs.StageScore, st)
	st = tr.Begin()
	out := topk.MergeRanked(partial, k)
	tr.End(obs.StageMerge, st)
	e.metrics.finish(tr)
	return out, nil
}

// SearchMergeFull is the no-TA ablation of SearchTA: identical per-clique
// candidate lists but an exhaustive merge instead of threshold termination.
func (e *Engine) SearchMergeFull(q *media.Object, k int, exclude media.ObjectID) []topk.Item {
	out, _ := e.SearchMergeFullContext(context.Background(), q, k, exclude)
	return out
}

// SearchMergeFullContext is SearchMergeFull under a context, sharing
// cliqueLists' cancellation behaviour with the TA path.
func (e *Engine) SearchMergeFullContext(ctx context.Context, q *media.Object, k int, exclude media.ObjectID) ([]topk.Item, error) {
	if e.Index == nil {
		return e.SearchScanContext(ctx, q, k, exclude)
	}
	cliques := e.QueryCliques(q)
	acc := getAccum()
	defer putAccum(acc)
	acc.lookup(e.Index, cliques)
	cs := e.compile(cliques, acc.entries)
	lists, err := e.cliqueLists(ctx, cs, acc.entries, exclude, false)
	if err != nil {
		return nil, err
	}
	return topk.FullMerge(lists, k), nil
}

func sortItems(items []topk.Item) {
	// Insertion sort is enough for typical posting lengths; fall back to
	// heap-based ordering for long lists.
	if len(items) < 64 {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && topk.Less(items[j], items[j-1]); j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
		return
	}
	h := topk.NewHeap(len(items))
	for _, it := range items {
		h.Push(it)
	}
	copy(items, h.Results())
}

// Insert ingests one new object into a live engine without a rebuild — the
// growth path of a social media database (the paper cites 2 million new
// Flickr images per day). The object joins the corpus, the correlation
// statistics grow incrementally, the object's cliques are added to the
// inverted index, and the corpus-global memoisation caches (cosines, CorS,
// smoothing sums) are dropped since every global statistic shifted.
// Trained thresholds and Λ parameters are kept; retrain periodically if the
// corpus distribution drifts. Not safe to call concurrently with searches.
func (e *Engine) Insert(feats []media.Feature, counts []int, month int) (*media.Object, error) {
	corpus := e.Model.Stats.Corpus()
	o, err := corpus.Add(feats, counts, month)
	if err != nil {
		return nil, err
	}
	if err := e.Model.Stats.Append(o); err != nil {
		return nil, err
	}
	e.Model.InvalidateCache()
	e.Scorer.Reset()
	if err := e.IndexObject(o); err != nil {
		return nil, err
	}
	return o, nil
}

// IndexObject adds one existing corpus object's cliques to the engine's
// inverted index (a no-op for index-less engines), using the same FIG
// construction and enumeration options as the build, so the object's
// cliques line up with the indexed ones. The corpus statistics must
// already include the object (its CorS weights are computed from them).
// Routed ingestion uses this directly: the shard router appends the
// object to the shared corpus-global statistics once and then indexes it
// on its owning shard alone. Not safe to call concurrently with searches
// on the same engine.
func (e *Engine) IndexObject(o *media.Object) error {
	if e.Index == nil {
		return nil
	}
	g := fig.Build(o, e.Model, e.buildOpts)
	return e.Index.Insert(o.ID, g.Cliques(e.enumOpts), e.Model)
}
