// Full-pipeline build determinism: the ISSUE acceptance test lives in an
// external test package because the λ-training objective needs
// internal/eval, which imports retrieval.
package retrieval_test

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"figfusion/internal/corr"
	"figfusion/internal/dataset"
	"figfusion/internal/eval"
	"figfusion/internal/mrf"
	"figfusion/internal/retrieval"
)

// buildOutcome captures everything the offline build path produces: the
// persisted index bytes, the trained correlation thresholds, and the λ/α
// parameters the coordinate ascent lands on (with its objective value).
type buildOutcome struct {
	indexBytes []byte
	thresholds corr.Thresholds
	params     mrf.Params
	objective  float64
}

// buildPipelineAt runs the complete offline pipeline — dataset generation
// (vocabulary k-means inside), threshold training, index build, λ/α
// coordinate ascent — with every stage pinned to the given fan-out.
func buildPipelineAt(t *testing.T, workers int) buildOutcome {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 150
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 24
	cfg.UsersPerTopic = 8
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 8
	cfg.Workers = workers
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Model()
	m.TrainThresholdsWorkers(100, 0.35, rand.New(rand.NewSource(13)), workers)
	e, err := retrieval.NewEngine(m, retrieval.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	queries := d.SampleQueries(6, rand.New(rand.NewSource(7)))
	objective := func(p mrf.Params) float64 {
		cand, err := e.WithParams(p)
		if err != nil {
			return -1
		}
		prec := eval.RetrievalPrecisionWorkers(eval.FIGSystem{Engine: cand}, d.Corpus, queries,
			[]int{10}, dataset.Relevant, workers)
		return prec[10]
	}
	best, score := mrf.Train(e.Scorer.Params, objective, 1)
	var buf bytes.Buffer
	if err := e.Index.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buildOutcome{
		indexBytes: buf.Bytes(),
		thresholds: m.Thresholds,
		params:     best,
		objective:  score,
	}
}

func sameParams(a, b mrf.Params) bool {
	if len(a.Lambda) != len(b.Lambda) || a.UseCorS != b.UseCorS {
		return false
	}
	for i := range a.Lambda {
		if math.Float64bits(a.Lambda[i]) != math.Float64bits(b.Lambda[i]) {
			return false
		}
	}
	return math.Float64bits(a.Alpha) == math.Float64bits(b.Alpha) &&
		math.Float64bits(a.Delta) == math.Float64bits(b.Delta)
}

// TestBuildDeterministicAcrossWorkers is the build-path determinism
// contract end to end: a full engine build — vocabulary k-means, threshold
// training, clique index with Eq. 9 weights, trained λ/α — must persist to
// byte-identical index bytes and land on bit-identical trained parameters
// at Workers = 1, 2 and NumCPU. Every parallel stage only fills fixed
// per-item slots; rng draws and floating-point reductions stay serial.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build per worker count")
	}
	ref := buildPipelineAt(t, 1)
	counts := []int{2, runtime.NumCPU()}
	if runtime.NumCPU() == 2 {
		counts = []int{2, 4}
	}
	for _, w := range counts {
		got := buildPipelineAt(t, w)
		if !bytes.Equal(got.indexBytes, ref.indexBytes) {
			at := len(ref.indexBytes)
			for i := 0; i < len(got.indexBytes) && i < len(ref.indexBytes); i++ {
				if got.indexBytes[i] != ref.indexBytes[i] {
					at = i
					break
				}
			}
			t.Errorf("workers=%d: persisted index differs from serial build (lengths %d vs %d, first difference at byte %d)",
				w, len(got.indexBytes), len(ref.indexBytes), at)
		}
		if got.thresholds != ref.thresholds {
			t.Errorf("workers=%d: trained thresholds differ:\n got %v\nwant %v", w, got.thresholds, ref.thresholds)
		}
		if !sameParams(got.params, ref.params) {
			t.Errorf("workers=%d: trained params differ:\n got %+v\nwant %+v", w, got.params, ref.params)
		}
		if math.Float64bits(got.objective) != math.Float64bits(ref.objective) {
			t.Errorf("workers=%d: training objective differs: %v vs %v", w, got.objective, ref.objective)
		}
	}
}

// TestStressConcurrentTrainingObjective is the -race probe for the λ-search
// fan-out: many goroutines evaluate the training objective — each cloning
// the engine via WithParams (shared caches) and fanning queries out — over
// one shared engine and corpus.
func TestStressConcurrentTrainingObjective(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.NumObjects = 120
	cfg.NumTopics = 5
	cfg.TagsPerTopic = 8
	cfg.NoiseTags = 16
	cfg.UsersPerTopic = 6
	cfg.VisualVocab = 12
	cfg.VocabTrainImages = 40
	cfg.ImageBlocks = 2
	cfg.KMeansIters = 6
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Model()
	e, err := retrieval.NewEngine(m, retrieval.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := d.SampleQueries(4, rand.New(rand.NewSource(7)))
	evalAt := func(p mrf.Params) float64 {
		cand, err := e.WithParams(p)
		if err != nil {
			t.Error(err)
			return -1
		}
		return eval.RetrievalPrecisionWorkers(eval.FIGSystem{Engine: cand}, d.Corpus, queries,
			[]int{10}, dataset.Relevant, 4)[10]
	}
	base := e.Scorer.Params
	want := evalAt(base)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := base
			p.Lambda = append([]float64(nil), base.Lambda...)
			if len(p.Lambda) > 0 {
				p.Lambda[g%len(p.Lambda)] *= 1 + 0.1*float64(g%3)
			}
			for round := 0; round < 3; round++ {
				evalAt(p)
				if got := evalAt(base); math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("goroutine %d round %d: base objective drifted: %v vs %v", g, round, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
