package retrieval

import (
	"figfusion/internal/obs"
)

// Metric names the engine registers. Per-stage histograms additionally
// carry the obs.Stage suffixes (retrieval.stage.prepare, .gather, .score,
// .merge). All durations are recorded in nanoseconds and snapshot in ms.
const (
	metricSearchTotal      = "retrieval.search.total"
	metricPathPrefix       = "retrieval.search.path." // + index | ta | scan
	metricCandidatesScored = "retrieval.candidates.scored"
	metricSearchLatency    = "retrieval.search.latency"
	metricStagePrefix      = "retrieval.stage." // + prepare | gather | score | merge
	metricPruneAdmitted    = "retrieval.prune.candidates.admitted"
	metricPruneSkipped     = "retrieval.prune.candidates.skipped"
	metricPruneBlocks      = "retrieval.prune.blocks.skipped"
)

// queryMetrics is the engine's instrument bundle, resolved once against a
// registry so the hot path records through preallocated instruments with
// no name lookups. A nil *queryMetrics (no registry attached) makes every
// recording call a nil-check no-op — the library-user mode.
type queryMetrics struct {
	searches   *obs.Counter
	pathIndex  *obs.Counter
	pathTA     *obs.Counter
	pathScan   *obs.Counter
	candidates *obs.Counter
	pruneAdm   *obs.Counter
	pruneSkip  *obs.Counter
	pruneBlk   *obs.Counter
	stages     [obs.NumStages]*obs.Histogram
	latency    *obs.Histogram
	slow       *obs.SlowLog
}

func newQueryMetrics(reg *obs.Registry, slow *obs.SlowLog) *queryMetrics {
	if reg == nil {
		return nil
	}
	m := &queryMetrics{
		searches:   reg.Counter(metricSearchTotal),
		pathIndex:  reg.Counter(metricPathPrefix + obs.PathIndex),
		pathTA:     reg.Counter(metricPathPrefix + obs.PathTA),
		pathScan:   reg.Counter(metricPathPrefix + obs.PathScan),
		candidates: reg.Counter(metricCandidatesScored),
		pruneAdm:   reg.Counter(metricPruneAdmitted),
		pruneSkip:  reg.Counter(metricPruneSkipped),
		pruneBlk:   reg.Counter(metricPruneBlocks),
		latency:    reg.Histogram(metricSearchLatency),
		slow:       slow,
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		m.stages[s] = reg.Histogram(metricStagePrefix + s.String())
	}
	return m
}

// begin opens a trace for one query when metrics are attached; the
// returned trace is nil otherwise, and every obs.QueryTrace method is
// nil-safe, so call sites need no second branch.
func (m *queryMetrics) begin(path string) *obs.QueryTrace {
	if m == nil {
		return nil
	}
	return obs.NewTrace(path)
}

// finish stamps and records a finished trace: path and stage instruments,
// total latency, candidate volume, and the slow-query log.
func (m *queryMetrics) finish(tr *obs.QueryTrace) {
	if m == nil || tr == nil {
		return
	}
	tr.Finish()
	m.searches.Inc()
	switch tr.Path {
	case obs.PathIndex:
		m.pathIndex.Inc()
	case obs.PathTA:
		m.pathTA.Inc()
	case obs.PathScan:
		m.pathScan.Inc()
	}
	m.candidates.Add(uint64(tr.Candidates))
	m.pruneAdm.Add(uint64(tr.PruneAdmitted))
	m.pruneSkip.Add(uint64(tr.PruneSkipped))
	m.pruneBlk.Add(uint64(tr.PruneBlocks))
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if d := tr.Stages[s]; d > 0 {
			m.stages[s].Observe(d)
		}
	}
	m.latency.Observe(tr.Total)
	m.slow.Record(tr)
}

// SetMetrics attaches (or, with a nil registry, detaches) observability to
// the engine: per-query stage instruments plus func gauges exposing the
// hit/miss statistics of the model's cosine cache and the scorer's
// CorS/smoothing caches. Not safe to call concurrently with searches;
// attach at construction (retrieval.Config.Metrics) or server startup.
func (e *Engine) SetMetrics(reg *obs.Registry, slow *obs.SlowLog) {
	e.metrics = newQueryMetrics(reg, slow)
	if reg == nil {
		return
	}
	model, scorer := e.Model, e.Scorer
	reg.Func("cache.cosine.hits", func() int64 { h, _ := model.CacheStats(); return int64(h) })
	reg.Func("cache.cosine.misses", func() int64 { _, m := model.CacheStats(); return int64(m) })
	reg.Func("cache.cors.hits", func() int64 { h, _, _, _ := scorer.CacheStats(); return int64(h) })
	reg.Func("cache.cors.misses", func() int64 { _, m, _, _ := scorer.CacheStats(); return int64(m) })
	reg.Func("cache.smooth.hits", func() int64 { _, _, h, _ := scorer.CacheStats(); return int64(h) })
	reg.Func("cache.smooth.misses", func() int64 { _, _, _, m := scorer.CacheStats(); return int64(m) })
	if idx := e.Index; idx != nil {
		reg.Func("index.resident.bytes", func() int64 { return idx.MemoryBytes() })
		if ls := idx.LoadStats(); ls != nil {
			reg.Func("index.load.ms", func() int64 { return int64(ls.WallMillis) })
			reg.Func("index.load.bytes", func() int64 { return ls.Bytes })
		}
	}
}
