package retrieval

import (
	"math"
	"sort"
	"sync"

	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/media"
)

// candAccum is the per-query scratch state of candidate generation: the
// query cliques' index entries, their posting-list cursors, and the merged
// candidate IDs with shared-clique counts. Accumulators are pooled —
// candidate generation runs once per query on the serving path, and the
// maps this replaced were the query path's largest steady-state allocation.
type candAccum struct {
	entries []*index.Entry
	lists   [][]media.ObjectID
	listEnt []int32 // listEnt[li] = index into entries for lists[li]
	cursors []int
	heap    []int32
	ids     []media.ObjectID
	counts  []int32
	order   []int32
	capped  []media.ObjectID

	// Admission-gate state (nil/empty when pruning is off): per-entry
	// block bound rows backed by ubBack, and the per-candidate bound
	// aligned with ids (cappedB with capped).
	ub      [][]float64
	ubBack  []float64
	bounds  []float64
	cappedB []float64
	usedCap bool
}

var accumPool = sync.Pool{New: func() interface{} { return new(candAccum) }}

func getAccum() *candAccum { return accumPool.Get().(*candAccum) }

// maxPooledCands bounds the candidate-scaled capacity a pooled accumulator
// may retain. The candidate slices grow with the query's posting-list
// union, so one adversarially broad query (no CandidateCap) would
// otherwise pin its peak allocation in the pool forever; slices beyond the
// bound are released to the GC instead of being recycled.
const maxPooledCands = 1 << 16

func putAccum(a *candAccum) {
	// Drop references into the index so pooled accumulators do not pin
	// posting lists of a retired index; keep the scalar slices' capacity.
	for i := range a.entries {
		a.entries[i] = nil
	}
	for i := range a.lists {
		a.lists[i] = nil
	}
	for i := range a.ub {
		a.ub[i] = nil
	}
	a.entries = a.entries[:0]
	a.lists = a.lists[:0]
	a.listEnt = a.listEnt[:0]
	a.cursors = a.cursors[:0]
	a.heap = a.heap[:0]
	a.ub = a.ub[:0]
	a.ubBack = a.ubBack[:0]
	if cap(a.ids) > maxPooledCands {
		a.ids, a.counts, a.order, a.capped = nil, nil, nil, nil
		a.bounds, a.cappedB = nil, nil
	} else {
		a.ids = a.ids[:0]
		a.counts = a.counts[:0]
		a.order = a.order[:0]
		a.capped = a.capped[:0]
		a.bounds = a.bounds[:0]
		a.cappedB = a.cappedB[:0]
	}
	accumPool.Put(a)
}

// lookup resolves each query clique to its index entry (nil when the
// clique is not indexed) and collects the non-empty posting lists.
func (a *candAccum) lookup(inv *index.Inverted, cliques []fig.Clique) {
	for _, c := range cliques {
		a.add(inv.Lookup(c))
	}
}

// lookupKeys is lookup over precomputed clique keys — the prepared-query
// path, where encoding each clique's key once per shard would repeat the
// allocation the preparation already paid.
func (a *candAccum) lookupKeys(inv *index.Inverted, keys []string) {
	for _, k := range keys {
		a.add(inv.LookupKey(k))
	}
}

func (a *candAccum) add(entry *index.Entry, ok bool) {
	if !ok {
		a.entries = append(a.entries, nil)
		return
	}
	a.entries = append(a.entries, entry)
	if len(entry.Objects) > 0 {
		a.lists = append(a.lists, entry.Objects)
		a.listEnt = append(a.listEnt, int32(len(a.entries)-1))
	}
}

// merge performs a multi-way count-merge over the sorted posting lists:
// a min-heap over the list heads emits every distinct candidate in
// ascending ID order together with the number of query cliques containing
// it — the per-query count map this replaces allocated and hashed on
// every posting, and a head-scan per candidate would be O(candidates ×
// lists); the heap keeps it O(total postings × log lists). When the
// candidate set exceeds the cap, candidates are pre-ranked by
// shared-clique count (ties by ascending ID, as before) and truncated.
// The returned slice is owned by the accumulator and valid until putAccum.
//
// ub, when non-nil, is the admissionBounds table: the merge then also
// accumulates each candidate's block-max admission bound — the sum, over
// the lists containing it, of the bound of the block its cursor sits in —
// into a slice aligned with the returned candidates (a.bounds, or
// a.cappedB when capped; read through candBounds). A candidate touching a
// clique with a nil bound row gets +Inf: it can never be skipped. The
// gate costs one slice read and one add per (candidate, containing list),
// paid inside a merge that was already touching that state.
func (a *candAccum) merge(exclude media.ObjectID, limit int, ub [][]float64) []media.ObjectID {
	if len(a.lists) == 0 {
		return nil
	}
	if cap(a.cursors) < len(a.lists) {
		a.cursors = make([]int, len(a.lists))
	}
	a.cursors = a.cursors[:len(a.lists)]
	for i := range a.cursors {
		a.cursors[i] = 0
	}
	a.heap = a.heap[:0]
	for li := range a.lists {
		a.heap = append(a.heap, int32(li))
	}
	for i := len(a.heap)/2 - 1; i >= 0; i-- {
		a.siftDown(i)
	}
	for len(a.heap) > 0 {
		min := a.head(a.heap[0])
		var count int32
		var bound float64
		unbounded := false
		// Drain every list whose head equals min: advance its cursor and
		// restore the heap (or drop the list once exhausted).
		for len(a.heap) > 0 && a.head(a.heap[0]) == min {
			li := a.heap[0]
			if ub != nil {
				if row := ub[a.listEnt[li]]; row != nil {
					bound += row[a.cursors[li]/index.BlockLen]
				} else {
					unbounded = true
				}
			}
			a.cursors[li]++
			count++
			if a.cursors[li] < len(a.lists[li]) {
				a.siftDown(0)
			} else {
				last := len(a.heap) - 1
				a.heap[0] = a.heap[last]
				a.heap = a.heap[:last]
				if len(a.heap) > 1 {
					a.siftDown(0)
				}
			}
		}
		if min == exclude {
			continue
		}
		a.ids = append(a.ids, min)
		a.counts = append(a.counts, count)
		if ub != nil {
			if unbounded {
				bound = math.Inf(1)
			}
			a.bounds = append(a.bounds, bound)
		}
	}
	if limit <= 0 || len(a.ids) <= limit {
		a.usedCap = false
		return a.ids
	}
	a.usedCap = true
	// Two-stage refinement: keep the cap candidates sharing the most
	// query cliques. a.ids is ascending, so index order is ID order and
	// the tie-break stays by ascending ID.
	a.order = a.order[:0]
	for i := range a.ids {
		a.order = append(a.order, int32(i))
	}
	sort.Slice(a.order, func(x, y int) bool {
		cx, cy := a.counts[a.order[x]], a.counts[a.order[y]]
		if cx != cy {
			return cx > cy
		}
		return a.order[x] < a.order[y]
	})
	a.capped = a.capped[:0]
	a.cappedB = a.cappedB[:0]
	for _, idx := range a.order[:limit] {
		a.capped = append(a.capped, a.ids[idx])
		if ub != nil {
			a.cappedB = append(a.cappedB, a.bounds[idx])
		}
	}
	return a.capped
}

// candBounds returns the admission bounds aligned with the candidate
// slice the preceding merge returned — following the capped permutation
// when the merge truncated. Only meaningful when that merge ran with a
// non-nil ub table.
func (a *candAccum) candBounds() []float64 {
	if a.usedCap {
		return a.cappedB
	}
	return a.bounds
}

// head returns the ObjectID at list li's cursor; only called for lists
// still on the heap, whose cursors are in bounds by construction.
func (a *candAccum) head(li int32) media.ObjectID {
	return a.lists[li][a.cursors[li]]
}

// siftDown restores the min-heap property (ordered by head ObjectID) from
// position i downward.
func (a *candAccum) siftDown(i int) {
	n := len(a.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && a.head(a.heap[right]) < a.head(a.heap[left]) {
			smallest = right
		}
		if a.head(a.heap[i]) <= a.head(a.heap[smallest]) {
			return
		}
		a.heap[i], a.heap[smallest] = a.heap[smallest], a.heap[i]
		i = smallest
	}
}
