package retrieval

import (
	"sort"
	"sync"

	"figfusion/internal/fig"
	"figfusion/internal/index"
	"figfusion/internal/media"
)

// candAccum is the per-query scratch state of candidate generation: the
// query cliques' index entries, their posting-list cursors, and the merged
// candidate IDs with shared-clique counts. Accumulators are pooled —
// candidate generation runs once per query on the serving path, and the
// maps this replaced were the query path's largest steady-state allocation.
type candAccum struct {
	entries []*index.Entry
	lists   [][]media.ObjectID
	cursors []int
	ids     []media.ObjectID
	counts  []int32
	order   []int32
	capped  []media.ObjectID
}

var accumPool = sync.Pool{New: func() interface{} { return new(candAccum) }}

func getAccum() *candAccum { return accumPool.Get().(*candAccum) }

func putAccum(a *candAccum) {
	// Drop references into the index so pooled accumulators do not pin
	// posting lists of a retired index; keep the scalar slices' capacity.
	for i := range a.entries {
		a.entries[i] = nil
	}
	for i := range a.lists {
		a.lists[i] = nil
	}
	a.entries = a.entries[:0]
	a.lists = a.lists[:0]
	a.cursors = a.cursors[:0]
	a.ids = a.ids[:0]
	a.counts = a.counts[:0]
	a.order = a.order[:0]
	a.capped = a.capped[:0]
	accumPool.Put(a)
}

// lookup resolves each query clique to its index entry (nil when the
// clique is not indexed) and collects the non-empty posting lists.
func (a *candAccum) lookup(inv *index.Inverted, cliques []fig.Clique) {
	for _, c := range cliques {
		entry, ok := inv.Lookup(c)
		if !ok {
			a.entries = append(a.entries, nil)
			continue
		}
		a.entries = append(a.entries, entry)
		if len(entry.Objects) > 0 {
			a.lists = append(a.lists, entry.Objects)
		}
	}
}

// merge performs a multi-way count-merge over the sorted posting lists:
// one pass emits every distinct candidate in ascending ID order together
// with the number of query cliques containing it — the per-query count
// map this replaces allocated and hashed on every posting. When the
// candidate set exceeds the cap, candidates are pre-ranked by shared-clique
// count (ties by ascending ID, as before) and truncated. The returned
// slice is owned by the accumulator and valid until putAccum.
func (a *candAccum) merge(exclude media.ObjectID, limit int) []media.ObjectID {
	if len(a.lists) == 0 {
		return nil
	}
	if cap(a.cursors) < len(a.lists) {
		a.cursors = make([]int, len(a.lists))
	}
	a.cursors = a.cursors[:len(a.lists)]
	for i := range a.cursors {
		a.cursors[i] = 0
	}
	for {
		var min media.ObjectID
		found := false
		for li, l := range a.lists {
			cu := a.cursors[li]
			if cu >= len(l) {
				continue
			}
			if id := l[cu]; !found || id < min {
				min, found = id, true
			}
		}
		if !found {
			break
		}
		var count int32
		for li, l := range a.lists {
			if cu := a.cursors[li]; cu < len(l) && l[cu] == min {
				a.cursors[li]++
				count++
			}
		}
		if min == exclude {
			continue
		}
		a.ids = append(a.ids, min)
		a.counts = append(a.counts, count)
	}
	if limit <= 0 || len(a.ids) <= limit {
		return a.ids
	}
	// Two-stage refinement: keep the cap candidates sharing the most
	// query cliques. a.ids is ascending, so index order is ID order and
	// the tie-break stays by ascending ID.
	a.order = a.order[:0]
	for i := range a.ids {
		a.order = append(a.order, int32(i))
	}
	sort.Slice(a.order, func(x, y int) bool {
		cx, cy := a.counts[a.order[x]], a.counts[a.order[y]]
		if cx != cy {
			return cx > cy
		}
		return a.order[x] < a.order[y]
	})
	a.capped = a.capped[:0]
	for _, idx := range a.order[:limit] {
		a.capped = append(a.capped, a.ids[idx])
	}
	return a.capped
}
