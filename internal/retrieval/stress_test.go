package retrieval

import (
	"sync"
	"sync/atomic"
	"testing"

	"figfusion/internal/media"
)

// TestStressConcurrentSearchPaths hammers every read path of a shared
// engine from many goroutines at once. Run under the race detector
// (`make race`, CI) it proves the documented contract that an Engine is
// safe for concurrent searches — including the lazily filled CorS and
// smoothing caches behind the scorer's mutexes and the parallel
// SearchScan fan-out.
func TestStressConcurrentSearchPaths(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	const (
		workers = 8
		rounds  = 6
	)
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := d.Corpus.Object(media.ObjectID((w*rounds + r) % d.Corpus.Len()))
				switch r % 4 {
				case 0:
					if len(e.Search(q, 5, q.ID)) == 0 {
						t.Error("Search returned nothing")
						return
					}
				case 1:
					e.SearchTA(q, 5, q.ID)
				case 2:
					e.SearchScan(q, 5, q.ID)
				case 3:
					e.SearchMergeFull(q, 5, q.ID)
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := done.Load(); got != workers*rounds {
		t.Fatalf("completed %d searches, want %d", got, workers*rounds)
	}
}

// TestStressSharedScorerCaches aims the contention specifically at the
// scorer's memoisation maps: every goroutine scores the same block of
// queries, so almost every cache access after the first is a read hit
// racing concurrent fills.
func TestStressSharedScorerCaches(t *testing.T) {
	d := testData(t)
	e := newEngine(t, d, Config{})
	queries := make([]*media.Object, 6)
	for i := range queries {
		queries[i] = d.Corpus.Object(media.ObjectID(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries {
				cliques := e.QueryCliques(q)
				for i := 0; i < 10; i++ {
					e.Scorer.Score(cliques, d.Corpus.Object(media.ObjectID(i)))
				}
			}
		}()
	}
	wg.Wait()
}
